(* Record/replay and coredump: direct unit coverage for lib/core/replay.ml
   and lib/core/coredump.ml, plus one span-annotated record/replay
   round-trip through the tracer. *)

module Clock = Aurora_sim.Clock
module Machine = Aurora_kern.Machine
module Syscall = Aurora_kern.Syscall
module Wire = Aurora_objstore.Wire
module Group = Aurora_core.Group
module Sls = Aurora_core.Sls
module Replay = Aurora_core.Replay
module Coredump = Aurora_core.Coredump
module Trace = Aurora_obs.Trace

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  m = 0 || go 0

let entry_eq (a : Replay.entry) (b : Replay.entry) =
  match (a, b) with
  | Replay.Recv_msg (f1, p1), Replay.Recv_msg (f2, p2) -> f1 = f2 && p1 = p2
  | Replay.Clock_read v1, Replay.Clock_read v2 -> v1 = v2
  | _ -> false

let entry_pp fmt (e : Replay.entry) =
  match e with
  | Replay.Recv_msg (fd, p) -> Format.fprintf fmt "Recv_msg (%d, %S)" fd p
  | Replay.Clock_read v -> Format.fprintf fmt "Clock_read %d" v

let entry_t = Alcotest.testable entry_pp entry_eq

(* A booted system with one process, a connected socketpair, and an
   attached group — the recording fixture. *)
let fixture () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let p = Syscall.spawn m ~name:"recorded" in
  let sfda, sfdb = Syscall.socketpair m p in
  let group = Sls.attach sys [ p ] in
  (sys, m, p, sfda, sfdb, group)

(* Entry serialization ------------------------------------------------------ *)

let test_entry_roundtrip () =
  List.iter
    (fun e ->
      Alcotest.check entry_t "round-trips" e
        (Replay.entry_of_string (Replay.entry_to_string e)))
    [
      Replay.Recv_msg (0, "");
      Replay.Recv_msg (7, "payload with \x00 bytes \xff");
      Replay.Clock_read 0;
      Replay.Clock_read 123_456_789_012;
    ]

let test_entry_corrupt_kind () =
  let w = Wire.writer () in
  Wire.u8 w 9;
  let s = Bytes.to_string (Wire.contents w) in
  Alcotest.(check bool) "bad kind rejected" true
    (try
       ignore (Replay.entry_of_string s);
       false
     with Wire.Corrupt _ -> true)

(* Recorder ----------------------------------------------------------------- *)

let test_recorder_logs_inputs () =
  let sys, m, p, sfda, sfdb, group = fixture () in
  let rec_ = Replay.Recorder.attach group in
  Alcotest.(check int) "log starts empty" 0 (Replay.Recorder.log_length rec_);
  ignore (Syscall.write m p ~fd:sfda "hello");
  (match Replay.Recorder.recv_msg rec_ p ~fd:sfdb with
  | Some got -> Alcotest.(check string) "payload delivered" "hello" got
  | None -> Alcotest.fail "receive returned nothing");
  Alcotest.(check int) "receive logged" 1 (Replay.Recorder.log_length rec_);
  (* An empty socket records nothing. *)
  (match Replay.Recorder.recv_msg rec_ p ~fd:sfdb with
  | None -> ()
  | Some _ -> Alcotest.fail "empty socket produced a payload");
  Alcotest.(check int) "empty receive not logged" 1 (Replay.Recorder.log_length rec_);
  let clk = m.Machine.clock in
  Clock.advance clk 500;
  (* The sample is taken before the log append charges journal I/O time,
     so it equals the clock at call entry. *)
  let before = Clock.now clk in
  let v = Replay.Recorder.read_clock rec_ in
  Alcotest.(check int) "clock sample is current" before v;
  Alcotest.(check int) "clock read logged" 2 (Replay.Recorder.log_length rec_);
  (* Checkpoint truncation: the journal empties and the recovered log is
     empty too. *)
  ignore (Group.checkpoint ~wait_durable:true group);
  Replay.Recorder.on_checkpoint rec_;
  Alcotest.(check int) "truncated at checkpoint" 0 (Replay.Recorder.log_length rec_);
  ignore (Group.checkpoint ~wait_durable:true group);
  Alcotest.(check int) "recovered log empty after truncate" 0
    (List.length
       (Replay.recover ~store:sys.Sls.store
          ~journal_id:(Replay.Recorder.journal_id rec_)))

let test_recover_matches_log () =
  let sys, m, p, sfda, sfdb, group = fixture () in
  let rec_ = Replay.Recorder.attach group in
  ignore (Syscall.write m p ~fd:sfda "one");
  ignore (Syscall.write m p ~fd:sfda "two");
  let r1 = Replay.Recorder.recv_msg rec_ p ~fd:sfdb in
  let clk = m.Machine.clock in
  Clock.advance clk 1_000;
  let t1 = Replay.Recorder.read_clock rec_ in
  let r2 = Replay.Recorder.recv_msg rec_ p ~fd:sfdb in
  Alcotest.(check (option string)) "first receive" (Some "one") r1;
  Alcotest.(check (option string)) "second receive" (Some "two") r2;
  ignore (Group.checkpoint ~wait_durable:true group);
  let entries =
    Replay.recover ~store:sys.Sls.store
      ~journal_id:(Replay.Recorder.journal_id rec_)
  in
  Alcotest.(check (list entry_t)) "recovered log matches recording"
    [
      Replay.Recv_msg (sfdb, "one");
      Replay.Clock_read t1;
      Replay.Recv_msg (sfdb, "two");
    ]
    entries;
  Alcotest.(check int) "unknown journal id recovers nothing" 0
    (List.length (Replay.recover ~store:sys.Sls.store ~journal_id:999_999))

(* Replayer ----------------------------------------------------------------- *)

let test_replayer_feeds_entries () =
  let rp =
    Replay.Replayer.create
      [
        Replay.Recv_msg (5, "a");
        Replay.Clock_read 10;
        Replay.Recv_msg (5, "b");
        Replay.Recv_msg (8, "other");
      ]
  in
  Alcotest.(check int) "all entries pending" 4 (Replay.Replayer.remaining rp);
  (* Per-source streams: the clock read is answered out of line without
     disturbing the receive order. *)
  Alcotest.(check (option int)) "clock replay" (Some 10)
    (Replay.Replayer.read_clock rp);
  Alcotest.(check (option string)) "fd 5 first" (Some "a")
    (Replay.Replayer.recv_msg rp ~fd:5);
  Alcotest.(check (option string)) "fd 8 skips fd 5 entries" (Some "other")
    (Replay.Replayer.recv_msg rp ~fd:8);
  Alcotest.(check (option string)) "fd 5 second" (Some "b")
    (Replay.Replayer.recv_msg rp ~fd:5);
  Alcotest.(check int) "log exhausted" 0 (Replay.Replayer.remaining rp);
  Alcotest.(check (option string)) "exhausted log resumes live" None
    (Replay.Replayer.recv_msg rp ~fd:5);
  Alcotest.(check (option int)) "no clock entries left" None
    (Replay.Replayer.read_clock rp)

(* Span-annotated record/replay round-trip: the recorded inputs replay
   to the same values, and the recorder's trace instants land inside the
   annotating span. *)
let test_replay_roundtrip_traced () =
  let sys, m, p, sfda, sfdb, group = fixture () in
  let clk = m.Machine.clock in
  Trace.enable ~capacity:1024 ~clock:clk ();
  let rec_ = Replay.Recorder.attach group in
  let recorded =
    Trace.with_span ~cat:"replay" ~name:"record-window" (fun () ->
        ignore (Syscall.write m p ~fd:sfda "input-1");
        let a = Replay.Recorder.recv_msg rec_ p ~fd:sfdb in
        Clock.advance clk 2_000;
        let t = Replay.Recorder.read_clock rec_ in
        ignore (Syscall.write m p ~fd:sfda "input-2");
        let b = Replay.Recorder.recv_msg rec_ p ~fd:sfdb in
        (a, t, b))
  in
  ignore (Group.checkpoint ~wait_durable:true group);
  let events = Trace.events () in
  Trace.disable ();
  let a, t, b = recorded in
  (* The trace: record instants strictly inside the Begin/End pair. *)
  let span_ts name ph =
    match
      List.find_opt
        (fun e -> e.Trace.ev_ph = ph && e.Trace.ev_name = name)
        events
    with
    | Some e -> e.Trace.ev_ts
    | None -> Alcotest.failf "span event %s missing" name
  in
  let b_ts = span_ts "record-window" Trace.Begin in
  let e_ts = span_ts "record-window" Trace.End in
  let records =
    List.filter
      (fun e -> e.Trace.ev_cat = "replay" && e.Trace.ev_name = "record")
      events
  in
  Alcotest.(check int) "three inputs traced" 3 (List.length records);
  List.iter
    (fun e ->
      Alcotest.(check bool) "record instant inside the span" true
        (e.Trace.ev_ts >= b_ts && e.Trace.ev_ts <= e_ts))
    records;
  (* The replay: recovered entries reproduce the recorded values. *)
  let entries =
    Replay.recover ~store:sys.Sls.store
      ~journal_id:(Replay.Recorder.journal_id rec_)
  in
  Alcotest.(check int) "three entries recovered" 3 (List.length entries);
  let rp = Replay.Replayer.create entries in
  Alcotest.(check (option string)) "replayed input-1" a
    (Replay.Replayer.recv_msg rp ~fd:sfdb);
  Alcotest.(check (option int)) "replayed clock" (Some t)
    (Replay.Replayer.read_clock rp);
  Alcotest.(check (option string)) "replayed input-2" b
    (Replay.Replayer.recv_msg rp ~fd:sfdb)

(* Coredump ----------------------------------------------------------------- *)

let test_coredump_renders_checkpoint () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let p = Syscall.spawn m ~name:"dumped" in
  let _rd, _wr = Syscall.pipe m p in
  ignore (Syscall.mmap_anon p ~npages:4);
  let group = Sls.attach sys [ p ] in
  let stats = Group.checkpoint ~wait_durable:true group in
  let dump = Coredump.dump ~store:sys.Sls.store ~epoch:stats.Group.epoch in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "dump mentions %S" needle)
        true (contains dump needle))
    [
      Printf.sprintf "checkpoint %d" stats.Group.epoch;
      "Program Headers";
      "  LOAD oid=";
      "  NOTE ";
      "Threads:";
      "Process";
      "(dumped)";
      "    Thread";
      "rip=";
    ]

let () =
  Trace.disable ();
  Alcotest.run "replay"
    [
      ( "entries",
        [
          Alcotest.test_case "round-trip" `Quick test_entry_roundtrip;
          Alcotest.test_case "corrupt kind rejected" `Quick test_entry_corrupt_kind;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "logs receives and clock reads" `Quick
            test_recorder_logs_inputs;
          Alcotest.test_case "recover matches the recording" `Quick
            test_recover_matches_log;
        ] );
      ( "replayer",
        [
          Alcotest.test_case "feeds recorded values per source" `Quick
            test_replayer_feeds_entries;
          Alcotest.test_case "traced record/replay round-trip" `Quick
            test_replay_roundtrip_traced;
        ] );
      ( "coredump",
        [
          Alcotest.test_case "renders a checkpoint" `Quick
            test_coredump_renders_checkpoint;
        ] );
    ]
