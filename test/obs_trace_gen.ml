(* Golden-trace generator.

   Runs the standard faultsim workload against a fresh store with the
   tracer enabled and prints the text export.  Because the simulation is
   fully deterministic, the trace is an executable specification of the
   checkpoint pipeline's control flow and virtual timing: any change to
   phase ordering, cost charging, or flush batching shows up as a diff.

   `dune build @obs` diffs the output against obs_golden.expected.
   After an intentional pipeline change, refresh the fixture with
   `dune build @obs-golden-promote --auto-promote`. *)

module Clock = Aurora_sim.Clock
module Striped = Aurora_block.Striped
module Store = Aurora_objstore.Store
module Workload = Aurora_faultsim.Workload
module Trace = Aurora_obs.Trace

let () =
  let clock = Clock.create () in
  let dev = Striped.create () in
  let store = Store.format ~dev ~clock in
  Trace.enable ~capacity:(1 lsl 18) ~clock ();
  let r = Workload.runner store in
  List.iter (Workload.run_op r) Workload.standard;
  Store.wait_durable store;
  if Trace.dropped () > 0 then (
    prerr_endline "obs_trace_gen: ring buffer overflowed; raise capacity";
    exit 1);
  print_string (Trace.export_text ())
