(* Incremental OS-state checkpointing: generation-stamp discipline, the
   skip machinery, delta-aware manifests, and the [~full:true] escape
   hatch.  The qcheck trace property is the load-bearing one: any
   serialized mutation that fails to bump its owner's stamp makes the
   incremental epoch diverge from a forced-full one. *)

module Clock = Aurora_sim.Clock
module Striped = Aurora_block.Striped
module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Thread = Aurora_kern.Thread
module Syscall = Aurora_kern.Syscall
module Fdesc = Aurora_kern.Fdesc
module Pipe = Aurora_kern.Pipe
module Socket = Aurora_kern.Socket
module Kqueue = Aurora_kern.Kqueue
module Pty = Aurora_kern.Pty
module Vnode = Aurora_kern.Vnode
module Vm_space = Aurora_vm.Vm_space
module Page = Aurora_vm.Page
module Store = Aurora_objstore.Store
module Serial = Aurora_core.Serial
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Restore = Aurora_core.Restore

(* The delta guard: objects_serialized must equal the mutated set, exactly. *)
let test_skip_counters () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let p = Syscall.spawn m ~name:"app" in
  let pipes = List.init 3 (fun _ -> Syscall.pipe m p) in
  ignore (Syscall.mmap_anon p ~npages:4);
  let group = Sls.attach sys [ p ] in
  (* 1 proc + 6 descriptions + 3 pipes. *)
  let c1 = Group.checkpoint ~wait_durable:true group in
  Alcotest.(check int) "first cycle serializes all" 10 c1.Group.objects_serialized;
  Alcotest.(check int) "first cycle skips none" 0 c1.Group.objects_skipped;
  Alcotest.(check bool) "first cycle stages meta" true (c1.Group.meta_bytes_written > 0);
  (* Clean interval: everything skipped, nothing staged. *)
  let c2 = Group.checkpoint ~wait_durable:true group in
  Alcotest.(check int) "clean cycle serializes none" 0 c2.Group.objects_serialized;
  Alcotest.(check int) "clean cycle skips all" 10 c2.Group.objects_skipped;
  Alcotest.(check int) "clean cycle stages no meta" 0 c2.Group.meta_bytes_written;
  (* Dirty exactly one pipe: the delta is that one object. *)
  let _, w1 = List.nth pipes 1 in
  ignore (Syscall.write m p ~fd:w1 "ping");
  let c3 = Group.checkpoint ~wait_durable:true group in
  Alcotest.(check int) "delta cycle serializes the dirty pipe" 1
    c3.Group.objects_serialized;
  Alcotest.(check int) "delta cycle skips the rest" 9 c3.Group.objects_skipped;
  Alcotest.(check bool) "delta meta well below full meta" true
    (c3.Group.meta_bytes_written * 4 < c1.Group.meta_bytes_written);
  (* The escape hatch re-serializes everything. *)
  let c4 = Group.checkpoint ~wait_durable:true ~full:true group in
  Alcotest.(check int) "full cycle serializes all" 10 c4.Group.objects_serialized;
  Alcotest.(check int) "full cycle skips none" 0 c4.Group.objects_skipped

(* Stamp discipline of the per-kind mutators the trace generator below
   doesn't reach. *)
let test_generation_bumps () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let p = Syscall.spawn m ~name:"app" in
  let kq_fd = Syscall.kqueue m p in
  let kq =
    match (Syscall.fd_exn p kq_fd).Fdesc.kind with
    | Fdesc.Kqueue_fd k -> k
    | _ -> assert false
  in
  let g0 = Kqueue.generation kq in
  Syscall.kevent_register p ~fd:kq_fd
    { Kqueue.ident = 1; filter = Kqueue.Ev_read; flags = 0; udata = 7 };
  Alcotest.(check bool) "kevent_register bumps" true (Kqueue.generation kq > g0);
  let mfd = Syscall.posix_openpt m p in
  let pty =
    match (Syscall.fd_exn p mfd).Fdesc.kind with
    | Fdesc.Pty_master_fd t -> t
    | _ -> assert false
  in
  let g0 = Pty.generation pty in
  Pty.master_write pty "echo hi";
  Alcotest.(check bool) "master_write bumps" true (Pty.generation pty > g0);
  let g1 = Pty.generation pty in
  Pty.set_termios pty ~echo:false ~canonical:false ~baud:9600;
  Alcotest.(check bool) "set_termios bumps" true (Pty.generation pty > g1);
  let fda, fdb = Syscall.socketpair m p in
  let sa, sb =
    match
      ((Syscall.fd_exn p fda).Fdesc.kind, (Syscall.fd_exn p fdb).Fdesc.kind)
    with
    | Fdesc.Socket_fd a, Fdesc.Socket_fd b -> (a, b)
    | _ -> assert false
  in
  let ga0 = Socket.generation sa and gb0 = Socket.generation sb in
  ignore (Syscall.write m p ~fd:fda "msg");
  Alcotest.(check bool) "send bumps the receiving peer" true
    (Socket.generation sb > gb0);
  let ga1 = Socket.generation sa in
  Socket.set_option sa "nodelay" 1;
  Alcotest.(check bool) "set_option bumps" true (Socket.generation sa > ga1);
  ignore ga0;
  let ep0 = Process.effective_generation p in
  let e = Syscall.mmap_anon p ~npages:2 in
  Alcotest.(check bool) "mmap bumps the layout stamp" true
    (Process.effective_generation p > ep0);
  let ep1 = Process.effective_generation p in
  Syscall.munmap p e;
  Alcotest.(check bool) "munmap keeps the layout stamp monotonic" true
    (Process.effective_generation p > ep1)

(* A serialized mutation with no stamp bump is exactly what the negative
   control injects: the incremental pass must miss it (restore-vs-model
   divergence detected), and [~full:true] must cure it. *)
let test_unstamped_mutation_control () =
  let run ~cure =
    let sys = Sls.boot () in
    let m = sys.Sls.machine in
    let p = Syscall.spawn m ~name:"app" in
    let r, w = Syscall.pipe m p in
    ignore (Syscall.write m p ~fd:w "v1");
    let group = Sls.attach sys [ p ] in
    ignore (Group.checkpoint ~wait_durable:true group);
    let pipe =
      match (Syscall.fd_exn p r).Fdesc.kind with
      | Fdesc.Pipe_read pi -> pi
      | _ -> assert false
    in
    (* Rogue in-place mutation: no generation bump. *)
    Pipe.unstamped_poke_for_tests pipe "v2";
    ignore (Group.checkpoint ~wait_durable:true ~full:cure group);
    let sys', result = Sls.reboot_and_restore sys in
    match result.Restore.procs with
    | [ p' ] -> Syscall.read sys'.Sls.machine p' ~fd:r ~len:2
    | _ -> Alcotest.fail "expected 1 process"
  in
  Alcotest.(check string)
    "incremental pass misses the unstamped mutation (stale restore)" "v1"
    (run ~cure:false);
  Alcotest.(check string) "full pass captures it" "v2" (run ~cure:true)

(* Store-level: the delta-maintained manifest rows must match the
   reference full-walk implementation, across carried objects, replaced
   pages and meta-only updates. *)
let test_manifest_entries_match_reference () =
  let clock = Clock.create () in
  let dev = Striped.create () in
  let store = Store.format ~dev ~clock in
  let payload c = Bytes.make 128 c in
  let check_equiv what =
    let reference =
      Store.staging_manifest_source store
      |> List.map (fun src ->
             let e = Serial.manifest_entry_of_source src in
             ( e.Serial.i_me_oid,
               e.Serial.i_me_kind,
               e.Serial.i_me_meta_crc,
               e.Serial.i_me_pages,
               e.Serial.i_me_pages_crc ))
    in
    Alcotest.(check (list (pair int (pair string (pair int (pair int int))))))
      what
      (List.map (fun (a, b, c, d, e) -> (a, (b, (c, (d, e))))) reference)
      (List.map
         (fun (a, b, c, d, e) -> (a, (b, (c, (d, e)))))
         (Store.staging_manifest_entries store))
  in
  let o1 = Store.alloc_oid store in
  let o2 = Store.alloc_oid store in
  let o3 = Store.alloc_oid store in
  ignore (Store.begin_checkpoint store);
  Store.put_object store ~oid:o1 ~kind:"proc" ~meta:"proc-meta-1";
  Store.put_pages store ~oid:o1 [ (0, payload 'a'); (40, payload 'b') ];
  Store.put_object store ~oid:o2 ~kind:"memory" ~meta:"";
  Store.put_pages store ~oid:o2 (List.init 20 (fun i -> (i * 3, payload 'm')));
  check_equiv "first epoch: all staged";
  ignore (Store.commit_checkpoint store);
  Store.wait_durable store;
  ignore (Store.begin_checkpoint store);
  (* o1 carried untouched; o2 replaces some pages and adds others; o3 new. *)
  Store.put_pages store ~oid:o2
    [ (0, payload 'x'); (3, payload 'y'); (100, payload 'z') ];
  Store.put_object store ~oid:o3 ~kind:"pipe" ~meta:"pipe-meta";
  check_equiv "second epoch: carried + page deltas + new object";
  ignore (Store.commit_checkpoint store);
  Store.wait_durable store;
  ignore (Store.begin_checkpoint store);
  (* Meta-only restage of o1; o2/o3 carried from their commit-maintained
     cache rows. *)
  Store.put_object store ~oid:o1 ~kind:"proc" ~meta:"proc-meta-2";
  check_equiv "third epoch: meta-only update over warm rows";
  ignore (Store.commit_checkpoint store);
  Store.wait_durable store

(* Random syscall traces: every mutation must bump the owning stamp, and
   the trace's incremental epoch must be byte-identical (meta and page
   checksums) to a forced-full epoch taken immediately after. *)

type op =
  | Pwrite of int * string
  | Pread of int * int
  | Swrite of string
  | Sread
  | Fwrite of string
  | Seek of int
  | Sig of int
  | Cwd of int
  | Mtouch of int
  | Ckpt

let op_gen =
  let open QCheck.Gen in
  frequency
    [
      (4, map2 (fun i s -> Pwrite (i, s)) (int_bound 1) (string_size ~gen:(char_range 'a' 'z') (int_range 1 24)));
      (3, map2 (fun i n -> Pread (i, n)) (int_bound 1) (int_range 1 16));
      (2, map (fun s -> Swrite s) (string_size ~gen:(char_range 'a' 'z') (int_range 1 12)));
      (2, return Sread);
      (3, map (fun s -> Fwrite s) (string_size ~gen:(char_range 'a' 'z') (int_range 1 32)));
      (2, map (fun o -> Seek o) (int_bound 64));
      (2, map (fun s -> Sig (1 + s)) (int_bound 10));
      (1, map (fun c -> Cwd c) (int_bound 5));
      (3, map (fun i -> Mtouch i) (int_bound 7));
      (2, return Ckpt);
    ]

let trace_arb =
  QCheck.make
    ~print:(fun ops -> string_of_int (List.length ops) ^ " ops")
    QCheck.Gen.(list_size (int_range 5 40) op_gen)

let run_trace ops =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let p = Syscall.spawn m ~name:"traced" in
  let pipes = [| Syscall.pipe m p; Syscall.pipe m p |] in
  let pipe_of i =
    match (Syscall.fd_exn p (fst pipes.(i))).Fdesc.kind with
    | Fdesc.Pipe_read pi -> pi
    | _ -> assert false
  in
  let sfda, sfdb = Syscall.socketpair m p in
  let sock_b =
    match (Syscall.fd_exn p sfdb).Fdesc.kind with
    | Fdesc.Socket_fd s -> s
    | _ -> assert false
  in
  let ffd = Syscall.open_file m p ~path:"/trace.dat" ~create:true in
  let fdesc = Syscall.fd_exn p ffd in
  let vn =
    match fdesc.Fdesc.kind with
    | Fdesc.Vnode_file { vn; _ } -> vn
    | _ -> assert false
  in
  let mem = Syscall.mmap_anon p ~npages:8 in
  let addr = Vm_space.addr_of_entry mem in
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  List.iter
    (fun op ->
      match op with
      | Pwrite (i, s) ->
          let g0 = Pipe.generation (pipe_of i) in
          ignore (Syscall.write m p ~fd:(snd pipes.(i)) s);
          if Pipe.generation (pipe_of i) <= g0 then
            QCheck.Test.fail_report "pipe write did not bump the stamp"
      | Pread (i, n) ->
          let pi = pipe_of i in
          let g0 = Pipe.generation pi in
          let got = Syscall.read m p ~fd:(fst pipes.(i)) ~len:n in
          if got <> "" && Pipe.generation pi <= g0 then
            QCheck.Test.fail_report "pipe read did not bump the stamp"
      | Swrite s ->
          let g0 = Socket.generation sock_b in
          ignore (Syscall.write m p ~fd:sfda s);
          if Socket.generation sock_b <= g0 then
            QCheck.Test.fail_report "socket send did not bump the peer stamp"
      | Sread -> ignore (Syscall.recv_msg m p ~fd:sfdb)
      | Fwrite s ->
          let gv = Vnode.generation vn and gd = Fdesc.generation fdesc in
          ignore (Syscall.write m p ~fd:ffd s);
          if Vnode.generation vn <= gv then
            QCheck.Test.fail_report "file write did not bump the vnode stamp";
          if Fdesc.generation fdesc <= gd then
            QCheck.Test.fail_report "file write did not bump the offset stamp"
      | Seek off ->
          let old =
            match fdesc.Fdesc.kind with
            | Fdesc.Vnode_file { offset; _ } -> offset
            | _ -> assert false
          in
          let gd = Fdesc.generation fdesc in
          ignore (Syscall.lseek p ~fd:ffd ~off);
          if off <> old && Fdesc.generation fdesc <= gd then
            QCheck.Test.fail_report "lseek did not bump the description stamp"
      | Sig signo ->
          let pending = List.mem signo p.Process.pending_signals in
          let g0 = Process.effective_generation p in
          ignore (Syscall.kill m ~pid:p.Process.pid_global ~signo);
          if (not pending) && Process.effective_generation p <= g0 then
            QCheck.Test.fail_report "signal did not bump the process stamp"
      | Cwd c -> Process.set_cwd p (Printf.sprintf "/dir%d" c)
      | Mtouch i ->
          Vm_space.touch_write p.Process.space
            ~addr:(addr + (i * Page.logical_size))
            ~len:Page.logical_size
      | Ckpt -> ignore (Group.checkpoint ~wait_durable:true group))
    ops;
  (* The equality oracle: incremental epoch vs forced-full epoch with no
     mutations in between. *)
  let e1 = (Group.checkpoint ~wait_durable:true group).Group.epoch in
  let c2 = Group.checkpoint ~wait_durable:true ~full:true group in
  let e2 = c2.Group.epoch in
  if c2.Group.objects_skipped <> 0 then
    QCheck.Test.fail_report "full cycle must not skip";
  let objs1 = Store.objects_at sys.Sls.store ~epoch:e1 in
  let objs2 = Store.objects_at sys.Sls.store ~epoch:e2 in
  if objs1 <> objs2 then
    QCheck.Test.fail_report "incremental and full epochs hold different objects";
  List.iter
    (fun (oid, kind) ->
      if kind <> Serial.kind_manifest then begin
        let m1 = Store.read_meta sys.Sls.store ~epoch:e1 ~oid in
        let m2 = Store.read_meta sys.Sls.store ~epoch:e2 ~oid in
        if m1 <> m2 then
          QCheck.Test.fail_report
            (Printf.sprintf "meta of oid %d (%s) diverged from forced-full" oid
               kind);
        let p1 = Store.page_crcs sys.Sls.store ~epoch:e1 ~oid in
        let p2 = Store.page_crcs sys.Sls.store ~epoch:e2 ~oid in
        if p1 <> p2 then
          QCheck.Test.fail_report
            (Printf.sprintf "pages of oid %d (%s) diverged from forced-full" oid
               kind)
      end)
    objs2;
  true

let trace_property =
  QCheck.Test.make ~count:60 ~name:"incremental equals forced-full on random traces"
    trace_arb run_trace

let () =
  Alcotest.run "aurora_incremental"
    [
      ( "incremental checkpointing",
        [
          Alcotest.test_case "skip counters track the delta" `Quick
            test_skip_counters;
          Alcotest.test_case "mutators bump generation stamps" `Quick
            test_generation_bumps;
          Alcotest.test_case "unstamped mutation control" `Quick
            test_unstamped_mutation_control;
          Alcotest.test_case "delta manifest matches reference" `Quick
            test_manifest_entries_match_reference;
          QCheck_alcotest.to_alcotest trace_property;
        ] );
    ]
