(* Golden-trace generator for the HTTP serving tier under a speculative
   checkpoint.

   Boots the event-loop HTTP server (lib/apps/http_sim), establishes
   connections and serves foreground requests under the tracer, then
   takes one speculative checkpoint whose run hook keeps serving dynamic
   requests on a spare core — so http request spans
   (accept/parse/route/respond) genuinely coexist with the checkpoint's
   phase spans in one timeline.

   The generator itself enforces the structural claims the fixture
   freezes, exiting nonzero on violation:

   - the stop-phase children partition the stop window exactly:
     stop_ns from ckpt_stats = quiesce + collapse + validate + shadow +
     resume, and those plus speculate and flush sum to the epoch span;
   - the hook served a nonzero number of requests, and their parse and
     route spans are timestamped inside the ckpt:speculate span.

   `dune build @obs` diffs the output against obs_http_golden.expected;
   refresh after an intentional change with
   `dune build @obs-golden-promote --auto-promote`. *)

module Clock = Aurora_sim.Clock
module Resource = Aurora_sim.Resource
module Machine = Aurora_kern.Machine
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Trace = Aurora_obs.Trace
module Http_load = Aurora_workloads.Http_load
module Http_sim = Aurora_apps.Http_sim

let fail fmt =
  Printf.ksprintf (fun s -> prerr_endline ("obs_http_trace_gen: " ^ s); exit 1) fmt

let span_durs name events =
  let durs = ref [] in
  let stack = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.ev_ph with
      | Trace.Begin -> stack := (e.Trace.ev_name, e.Trace.ev_ts) :: !stack
      | Trace.End -> (
          match !stack with
          | (n, t) :: rest ->
              stack := rest;
              if n = name then durs := (t, e.Trace.ev_ts - t) :: !durs
          | [] -> ())
      | _ -> ())
    events;
  List.rev !durs

let contains line sub =
  let n = String.length line and m = String.length sub in
  let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
  m = 0 || go 0

let () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let clk = m.Machine.clock in
  let srv = Http_sim.create ~machine:m ~workers:2 () in
  let group = Sls.attach sys [ Http_sim.proc srv ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  Group.set_speculative group true;
  (* Dirty a loaded server's worth of state before enabling the tracer —
     a connection table and the whole dynamic arena — so speculative
     serialization is long enough to open soft-quiesce yield windows (one
     per 50 us of serialize work) without flooding the fixture. *)
  let extras = Array.init 16 (fun _ -> Http_sim.connect srv) in
  Array.iter (fun c -> Http_sim.keepalive srv c) extras;
  for i = 0 to 63 do
    ignore
      (Http_sim.feed srv extras.(i mod 16) ~now:(Clock.now clk)
         (Http_sim.request (Http_load.Dynamic i)))
  done;
  Trace.enable ~capacity:(1 lsl 16) ~clock:clk ();
  (* Foreground traffic under trace: accepts and a request per
     connection, so the fixture shows the serving path on its own before
     the epoch opens. *)
  let conns = Array.init 2 (fun _ -> Http_sim.connect srv) in
  Array.iteri
    (fun i c ->
      ignore
        (Http_sim.feed srv c ~now:(Clock.now clk)
           (Http_sim.request (Http_load.Static i))))
    conns;
  Array.iter (fun c -> Http_sim.keepalive srv c) conns;
  (* The soft-quiesce run hook keeps serving on a spare core. *)
  let spare = Resource.create ~name:"httpd-spare-core" in
  let hook_conn = Http_sim.connect srv in
  let hook_reqs = ref 0 in
  let hook_resps = ref 0 in
  Machine.set_run_hook m
    (Some
       (fun window_ns ->
         let n = max 1 (window_ns / 200_000) in
         for _ = 1 to n do
           let route = Http_load.Dynamic (!hook_reqs mod 8) in
           incr hook_reqs;
           let rs =
             Http_sim.feed srv hook_conn ~now:(Clock.now clk) ~on:spare
               (Http_sim.request route)
           in
           hook_resps := !hook_resps + List.length rs
         done));
  let stats = Group.checkpoint ~wait_durable:true group in
  Machine.set_run_hook m None;
  if Trace.dropped () > 0 then fail "ring buffer overflowed; raise capacity";
  if !hook_resps = 0 then fail "no requests served during speculation windows";
  (* Slice to the final (speculative) epoch. *)
  let events = Trace.events () in
  let last_epoch_start = ref 0 in
  List.iteri
    (fun i (e : Trace.event) ->
      if e.Trace.ev_ph = Trace.Begin && e.Trace.ev_name = "epoch" then
        last_epoch_start := i)
    events;
  let epoch_events = List.filteri (fun i _ -> i >= !last_epoch_start) events in
  let one name =
    match span_durs name epoch_events with
    | [ (t, d) ] -> (t, d)
    | l ->
        fail "expected exactly one %s span in the final epoch, got %d" name
          (List.length l)
  in
  let _, epoch_d = one "epoch" in
  let spec_t, spec_d = one "speculate" in
  let _, quiesce_d = one "quiesce" in
  let _, collapse_d = one "collapse" in
  let _, validate_d = one "validate" in
  let _, shadow_d = one "shadow" in
  let _, resume_d = one "resume" in
  let _, flush_d = one "flush" in
  let stop_sum = quiesce_d + collapse_d + validate_d + shadow_d + resume_d in
  if stats.Group.stop_ns <> stop_sum then
    fail "stop phases do not partition the stop window: stop_ns %d <> %d"
      stats.Group.stop_ns stop_sum;
  if epoch_d <> spec_d + stop_sum + flush_d then
    fail "epoch span %d <> speculate %d + stop %d + flush %d" epoch_d spec_d
      stop_sum flush_d;
  (* Every hook request's parse and route span started inside
     ckpt:speculate: the server really was serving while the checkpoint
     serialized. *)
  let http_in_spec = ref 0 in
  List.iter
    (fun (e : Trace.event) ->
      if
        e.Trace.ev_ph = Trace.Complete
        && (e.Trace.ev_name = "parse" || e.Trace.ev_name = "route")
        && e.Trace.ev_ts >= spec_t
      then begin
        if e.Trace.ev_ts > spec_t + spec_d then
          fail "%s span at %d outside speculate [%d, %d]" e.Trace.ev_name
            e.Trace.ev_ts spec_t (spec_t + spec_d);
        incr http_in_spec
      end)
    events;
  if !http_in_spec < 2 * !hook_resps then
    fail "only %d http spans inside speculate for %d hook responses"
      !http_in_spec !hook_resps;
  Printf.printf
    "http tier under speculative checkpoint: %d requests served inside \
     ckpt:speculate\n"
    !hook_resps;
  Printf.printf
    "stop partition: quiesce+collapse+validate+shadow+resume = stop_ns = %d ns\n"
    stop_sum;
  Printf.printf "epoch = speculate + stop + flush = %d ns\n\n" epoch_d;
  (* The frozen artifact: the full timeline — foreground accepts and
     request spans, then the speculative epoch with hook-served requests
     interleaved into its phases. *)
  let text = Trace.export_text () in
  let lines = String.split_on_char '\n' text in
  let start = ref (-1) in
  List.iteri (fun i l -> if !start < 0 && contains l "http:accept" then start := i) lines;
  if !start < 0 then fail "no http:accept span in trace";
  print_string (String.concat "\n" (List.filteri (fun i _ -> i >= !start) lines))
