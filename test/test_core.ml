module Clock = Aurora_sim.Clock
module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Thread = Aurora_kern.Thread
module Syscall = Aurora_kern.Syscall
module Fdesc = Aurora_kern.Fdesc
module Kqueue = Aurora_kern.Kqueue
module Vm_space = Aurora_vm.Vm_space
module Vm_map = Aurora_vm.Vm_map
module Page = Aurora_vm.Page
module Store = Aurora_objstore.Store
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Api = Aurora_core.Api
module Restore = Aurora_core.Restore
module Extsync = Aurora_core.Extsync
module Coredump = Aurora_core.Coredump
module Migrate = Aurora_core.Migrate

let spawn_with_memory sys ~name ~npages =
  let p = Syscall.spawn sys.Sls.machine ~name in
  let e = Syscall.mmap_anon p ~npages in
  (p, e, Vm_space.addr_of_entry e)

let test_checkpoint_restore_memory () =
  let sys = Sls.boot () in
  let p, _e, addr = spawn_with_memory sys ~name:"app" ~npages:8 in
  Vm_space.write_string p.Process.space ~addr "the persistent state";
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  let sys', result = Sls.reboot_and_restore sys in
  ignore sys';
  match result.Restore.procs with
  | [ p' ] ->
      Alcotest.(check string) "memory content restored" "the persistent state"
        (Vm_space.read_string p'.Process.space ~addr ~len:20);
      Alcotest.(check int) "local pid preserved" p.Process.pid_local p'.Process.pid_local
  | l -> Alcotest.failf "expected 1 process, got %d" (List.length l)

let test_restore_is_from_durable_bytes_only () =
  (* Post-checkpoint writes must NOT appear after the crash. *)
  let sys = Sls.boot () in
  let p, _e, addr = spawn_with_memory sys ~name:"app" ~npages:4 in
  Vm_space.write_string p.Process.space ~addr "committed";
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  Vm_space.write_string p.Process.space ~addr "uncommitt";
  let _sys', result = Sls.reboot_and_restore sys in
  match result.Restore.procs with
  | [ p' ] ->
      Alcotest.(check string) "only durable state survives" "committed"
        (Vm_space.read_string p'.Process.space ~addr ~len:9)
  | _ -> Alcotest.fail "expected 1 process"

let test_incremental_checkpoints_flush_only_dirty () =
  let sys = Sls.boot () in
  let p, _e, addr = spawn_with_memory sys ~name:"app" ~npages:64 in
  Vm_space.touch_write p.Process.space ~addr ~len:(64 * Page.logical_size);
  let group = Sls.attach sys [ p ] in
  let s1 = Group.checkpoint ~wait_durable:true group in
  Alcotest.(check bool)
    (Printf.sprintf "first flush has all pages (%d)" s1.Group.pages_flushed)
    true (s1.Group.pages_flushed >= 64);
  (* Dirty three pages; the next checkpoint must flush roughly three. *)
  Vm_space.touch_write p.Process.space ~addr ~len:(3 * Page.logical_size);
  let s2 = Group.checkpoint ~wait_durable:true group in
  Alcotest.(check int) "incremental flush" 3 s2.Group.pages_flushed;
  (* A clean interval flushes nothing. *)
  let s3 = Group.checkpoint ~wait_durable:true group in
  Alcotest.(check int) "clean flush" 0 s3.Group.pages_flushed

let test_incremental_content_correct_after_many_epochs () =
  let sys = Sls.boot () in
  let p, _e, addr = spawn_with_memory sys ~name:"app" ~npages:4 in
  let group = Sls.attach sys [ p ] in
  for i = 0 to 9 do
    Vm_space.write_string p.Process.space ~addr:(addr + (i * 17)) (Printf.sprintf "v%02d" i);
    ignore (Group.checkpoint ~wait_durable:true group)
  done;
  let _sys', result = Sls.reboot_and_restore sys in
  match result.Restore.procs with
  | [ p' ] ->
      for i = 0 to 9 do
        Alcotest.(check string)
          (Printf.sprintf "write %d visible" i)
          (Printf.sprintf "v%02d" i)
          (Vm_space.read_string p'.Process.space ~addr:(addr + (i * 17)) ~len:3)
      done
  | _ -> Alcotest.fail "expected 1 process"

let test_cpu_state_roundtrip () =
  let sys = Sls.boot () in
  let p, _e, _addr = spawn_with_memory sys ~name:"app" ~npages:1 in
  let thr = Process.main_thread p in
  thr.Thread.regs.Thread.rip <- 0xdeadbeef;
  thr.Thread.regs.Thread.rsp <- 0x7fffcafe;
  thr.Thread.regs.Thread.gp.(5) <- 424242;
  Bytes.set thr.Thread.regs.Thread.fpu 10 'F';
  thr.Thread.sigmask <- 0b1010;
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  let _sys', result = Sls.reboot_and_restore sys in
  match result.Restore.procs with
  | [ p' ] ->
      let thr' = Process.main_thread p' in
      Alcotest.(check int) "rip" 0xdeadbeef thr'.Thread.regs.Thread.rip;
      Alcotest.(check int) "rsp" 0x7fffcafe thr'.Thread.regs.Thread.rsp;
      Alcotest.(check int) "gp5" 424242 thr'.Thread.regs.Thread.gp.(5);
      Alcotest.(check char) "fpu" 'F' (Bytes.get thr'.Thread.regs.Thread.fpu 10);
      Alcotest.(check int) "sigmask" 0b1010 thr'.Thread.sigmask;
      Alcotest.(check int) "same local tid" thr.Thread.tid_local thr'.Thread.tid_local
  | _ -> Alcotest.fail "expected 1 process"

let test_fork_fd_sharing_survives_restore () =
  (* Paper section 5.1's example: shared offsets must still be shared after
     restore; separate opens must stay separate. *)
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let parent = Syscall.spawn m ~name:"parent" in
  let fd = Syscall.open_file m parent ~path:"/f" ~create:true in
  ignore (Syscall.write m parent ~fd "abcdefghij");
  ignore (Syscall.lseek parent ~fd ~off:0);
  let child = Syscall.fork m parent in
  let other = Syscall.spawn m ~name:"other" in
  let fd_other = Syscall.open_file m other ~path:"/f" ~create:false in
  let group = Sls.attach sys [ parent; child; other ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  let sys', result = Sls.reboot_and_restore sys in
  let m' = sys'.Sls.machine in
  (match result.Restore.procs with
  | [ parent'; child'; other' ] ->
      (* Reading via the child moves the parent's offset (same description). *)
      Alcotest.(check string) "child reads" "abcd" (Syscall.read m' child' ~fd ~len:4);
      Alcotest.(check string) "parent offset shared" "efgh"
        (Syscall.read m' parent' ~fd ~len:4);
      (* The separate open still has its own offset at 0. *)
      Alcotest.(check string) "other's offset independent" "abcd"
        (Syscall.read m' other' ~fd:fd_other ~len:4)
  | l -> Alcotest.failf "expected 3 processes, got %d" (List.length l))

let test_process_tree_restored () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let parent = Syscall.spawn m ~name:"parent" in
  Syscall.setsid parent;
  let child = Syscall.fork m parent in
  let group = Sls.attach sys [ parent; child ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  let sys', result = Sls.reboot_and_restore sys in
  match result.Restore.procs with
  | [ parent'; child' ] ->
      Alcotest.(check int) "ppid relinked" parent'.Process.pid_global child'.Process.ppid;
      Alcotest.(check bool) "child in parent's children" true
        (List.mem child'.Process.pid_global parent'.Process.children);
      Alcotest.(check int) "session preserved" parent.Process.sid parent'.Process.sid;
      Alcotest.(check int) "pgid preserved" child.Process.pgid child'.Process.pgid;
      (* The restored child can exit and be reaped in the new machine. *)
      Syscall.exit sys'.Sls.machine child' ~code:3;
      (match Syscall.waitpid sys'.Sls.machine parent' with
      | Some (_, 3) -> ()
      | Some (_, c) -> Alcotest.failf "wrong exit code %d" c
      | None -> Alcotest.fail "waitpid found nothing")
  | _ -> Alcotest.fail "expected 2 processes"

let test_pipe_content_restored () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let p = Syscall.spawn m ~name:"p" in
  let rd, wr = Syscall.pipe m p in
  ignore (Syscall.write m p ~fd:wr "in flight bytes");
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  let sys', result = Sls.reboot_and_restore sys in
  match result.Restore.procs with
  | [ p' ] ->
      Alcotest.(check string) "pipe buffer restored" "in flight bytes"
        (Syscall.read sys'.Sls.machine p' ~fd:rd ~len:100);
      ignore wr
  | _ -> Alcotest.fail "expected 1 process"

let test_socketpair_and_inflight_rights_restored () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let p = Syscall.spawn m ~name:"p" in
  let a, b = Syscall.socketpair m p in
  let file_fd = Syscall.open_file m p ~path:"/payload" ~create:true in
  ignore (Syscall.write m p ~fd:file_fd "visible through rights");
  ignore (Syscall.lseek p ~fd:file_fd ~off:0);
  (* The message with the descriptor is in flight at checkpoint time. *)
  Syscall.send_msg m p ~fd:a ~fds:[ file_fd ] "take this";
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  let sys', result = Sls.reboot_and_restore sys in
  let m' = sys'.Sls.machine in
  match result.Restore.procs with
  | [ p' ] -> (
      match Syscall.recv_msg m' p' ~fd:b with
      | Some (data, [ got_fd ]) ->
          Alcotest.(check string) "message data" "take this" data;
          Alcotest.(check string) "in-flight descriptor works" "visible"
            (Syscall.read m' p' ~fd:got_fd ~len:7)
      | Some (_, fds) -> Alcotest.failf "expected 1 right, got %d" (List.length fds)
      | None -> Alcotest.fail "in-flight message lost")
  | _ -> Alcotest.fail "expected 1 process"

let test_kqueue_and_pty_restored () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let p = Syscall.spawn m ~name:"p" in
  let kq = Syscall.kqueue m p in
  Syscall.kevent_register p ~fd:kq
    { Kqueue.ident = 9; filter = Kqueue.Ev_read; flags = 1; udata = 77 };
  let master = Syscall.posix_openpt m p in
  let slave = Syscall.open_pty_slave m p ~master_fd:master in
  ignore (Syscall.write m p ~fd:master "typed before crash");
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  let sys', result = Sls.reboot_and_restore sys in
  let m' = sys'.Sls.machine in
  match result.Restore.procs with
  | [ p' ] ->
      (match (Syscall.fd_exn p' kq).Fdesc.kind with
      | Fdesc.Kqueue_fd k ->
          Alcotest.(check int) "kqueue event count" 1 (Kqueue.event_count k);
          let ev = List.hd (Kqueue.events k) in
          Alcotest.(check int) "kqueue udata" 77 ev.Kqueue.udata
      | _ -> Alcotest.fail "kqueue fd wrong kind");
      Alcotest.(check string) "pty input buffer restored" "typed before crash"
        (Syscall.read m' p' ~fd:slave ~len:100)
  | _ -> Alcotest.fail "expected 1 process"

let test_shared_memory_restored_shared () =
  (* Two processes sharing a POSIX shm segment must still share after
     restore: a write by one is visible to the other. *)
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let a = Syscall.spawn m ~name:"a" in
  let b = Syscall.spawn m ~name:"b" in
  let fda = Syscall.shm_open m a ~name:"/seg" ~npages:2 in
  let fdb = Syscall.shm_open m b ~name:"/seg" ~npages:2 in
  let ea = Syscall.mmap_shm a ~fd:fda in
  let eb = Syscall.mmap_shm b ~fd:fdb in
  let addr_a = Vm_space.addr_of_entry ea and addr_b = Vm_space.addr_of_entry eb in
  Vm_space.write_string a.Process.space ~addr:addr_a "before";
  let group = Sls.attach sys [ a; b ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  let _sys', result = Sls.reboot_and_restore sys in
  match result.Restore.procs with
  | [ a'; b' ] ->
      Alcotest.(check string) "content restored" "before"
        (Vm_space.read_string b'.Process.space ~addr:addr_b ~len:6);
      Vm_space.write_string a'.Process.space ~addr:addr_a "after!";
      Alcotest.(check string) "still shared after restore" "after!"
        (Vm_space.read_string b'.Process.space ~addr:addr_b ~len:6)
  | _ -> Alcotest.fail "expected 2 processes"

let test_anonymous_file_survives () =
  (* The headline Aurora FS property: an open-but-unlinked file is
     restored; a conventional FS would have reclaimed it. *)
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let p = Syscall.spawn m ~name:"p" in
  let fd = Syscall.open_file m p ~path:"/scratch" ~create:true in
  ignore (Syscall.write m p ~fd "temporary but precious");
  ignore (Syscall.unlink m ~path:"/scratch");
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  let sys', result = Sls.reboot_and_restore sys in
  let m' = sys'.Sls.machine in
  match result.Restore.procs with
  | [ p' ] ->
      ignore (Syscall.lseek p' ~fd ~off:0);
      Alcotest.(check string) "anonymous file content" "temporary but precious"
        (Syscall.read m' p' ~fd ~len:100);
      (* And it has no name. *)
      Alcotest.(check bool) "name is gone" true
        (try
           ignore (Syscall.open_file m' p' ~path:"/scratch" ~create:false);
           false
         with Syscall.Err "ENOENT" -> true)
  | _ -> Alcotest.fail "expected 1 process"

let test_ephemeral_process_sigchld () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let parent = Syscall.spawn m ~name:"parent" in
  let worker = Syscall.fork m parent in
  worker.Process.ephemeral <- true;
  let group = Sls.attach sys [ parent; worker ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  let _sys', result = Sls.reboot_and_restore sys in
  match result.Restore.procs with
  | [ parent' ] ->
      Alcotest.(check (option int)) "parent got SIGCHLD" (Some Process.sigchld)
        (Process.take_signal parent')
  | l -> Alcotest.failf "only the parent should be restored (got %d)" (List.length l)

let test_time_travel_restore () =
  let sys = Sls.boot () in
  let p, _e, addr = spawn_with_memory sys ~name:"app" ~npages:2 in
  let group = Sls.attach sys [ p ] in
  Vm_space.write_string p.Process.space ~addr "one";
  let s1 = Group.checkpoint ~wait_durable:true group in
  Group.name_checkpoint group "v1";
  Vm_space.write_string p.Process.space ~addr "two";
  let _s2 = Group.checkpoint ~wait_durable:true group in
  (* Restore the older epoch by number (sls restore of history). *)
  let m2 = Machine.create () in
  let result =
    Restore.restore ~machine:m2 ~store:sys.Sls.store ~epoch:s1.Group.epoch ()
  in
  (match result.Restore.procs with
  | [ p' ] ->
      Alcotest.(check string) "older epoch content" "one"
        (Vm_space.read_string p'.Process.space ~addr ~len:3)
  | _ -> Alcotest.fail "expected 1 process");
  Alcotest.(check (list (pair string int))) "named checkpoint recorded"
    [ ("v1", s1.Group.epoch) ]
    (Group.named_checkpoints group)

let test_lazy_restore_contents_equal () =
  let sys = Sls.boot () in
  let p, _e, addr = spawn_with_memory sys ~name:"app" ~npages:32 in
  Vm_space.write_string p.Process.space ~addr "lazy but correct";
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  let _sys', result = Sls.reboot_and_restore ~lazy_pages:true sys in
  match result.Restore.procs with
  | [ p' ] ->
      Alcotest.(check string) "lazy restore content" "lazy but correct"
        (Vm_space.read_string p'.Process.space ~addr ~len:16)
  | _ -> Alcotest.fail "expected 1 process"

let test_lazy_restore_faster () =
  let measure ~lazy_pages =
    let sys = Sls.boot () in
    let p, _e, addr = spawn_with_memory sys ~name:"app" ~npages:4096 in
    Vm_space.touch_write p.Process.space ~addr ~len:(4096 * Page.logical_size);
    let group = Sls.attach sys [ p ] in
    ignore (Group.checkpoint ~wait_durable:true group);
    let _sys', result = Sls.reboot_and_restore ~lazy_pages sys in
    result.Restore.restore_ns
  in
  let full = measure ~lazy_pages:false in
  let lzy = measure ~lazy_pages:true in
  Alcotest.(check bool)
    (Printf.sprintf "lazy (%d ns) much faster than full (%d ns)" lzy full)
    true
    (lzy * 3 < full)

let test_mctl_exclusion () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let p = Syscall.spawn m ~name:"app" in
  let keep = Syscall.mmap_anon p ~npages:2 in
  let scratch = Syscall.mmap_anon p ~npages:2 in
  let keep_addr = Vm_space.addr_of_entry keep in
  let scratch_addr = Vm_space.addr_of_entry scratch in
  Vm_space.write_string p.Process.space ~addr:keep_addr "keep";
  Vm_space.write_string p.Process.space ~addr:scratch_addr "drop";
  Api.sls_mctl scratch ~persist:false;
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  let _sys', result = Sls.reboot_and_restore sys in
  match result.Restore.procs with
  | [ p' ] ->
      Alcotest.(check string) "included region restored" "keep"
        (Vm_space.read_string p'.Process.space ~addr:keep_addr ~len:4);
      Alcotest.(check bool) "excluded region not restored" true
        (try
           ignore (Vm_space.read_byte p'.Process.space ~addr:scratch_addr);
           false
         with Vm_space.Fault _ -> true)
  | _ -> Alcotest.fail "expected 1 process"

let test_memckpt_atomic_region () =
  let sys = Sls.boot () in
  let p, e, addr = spawn_with_memory sys ~name:"app" ~npages:16 in
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  Vm_space.write_string p.Process.space ~addr "atomic region data";
  let stats = Api.sls_memckpt group e in
  Api.sls_barrier group;
  Alcotest.(check bool) "flushed the dirty page" true (stats.Group.pages_flushed >= 1);
  (* Atomic checkpoints skip quiesce + OS serialization: cheaper than a
     full one (Table 5). *)
  Alcotest.(check int) "no os serialization" 0 stats.Group.os_serialize_ns;
  let _sys', result = Sls.reboot_and_restore sys in
  match result.Restore.procs with
  | [ p' ] ->
      Alcotest.(check string) "region composes onto full checkpoint"
        "atomic region data"
        (Vm_space.read_string p'.Process.space ~addr ~len:18)
  | _ -> Alcotest.fail "expected 1 process"

let test_memckpt_shared_region () =
  (* sls_memckpt of a region shared by two processes: both sharers' PTEs
     are handled and both see each other's writes afterwards. *)
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let a = Syscall.spawn m ~name:"a" in
  let b = Syscall.spawn m ~name:"b" in
  let fda = Syscall.shm_open m a ~name:"/region" ~npages:8 in
  let fdb = Syscall.shm_open m b ~name:"/region" ~npages:8 in
  let ea = Syscall.mmap_shm a ~fd:fda in
  let eb = Syscall.mmap_shm b ~fd:fdb in
  let group = Sls.attach sys [ a; b ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  Vm_space.write_string a.Process.space ~addr:(Vm_space.addr_of_entry ea) "v1";
  let stats = Api.sls_memckpt group ea in
  Alcotest.(check bool) "dirty page flushed" true (stats.Group.pages_flushed >= 1);
  (* Sharing still live after the atomic checkpoint. *)
  Vm_space.write_string b.Process.space ~addr:(Vm_space.addr_of_entry eb) "v2";
  Alcotest.(check string) "a sees b's post-memckpt write" "v2"
    (Vm_space.read_string a.Process.space ~addr:(Vm_space.addr_of_entry ea) ~len:2)

(* ckpt_stats contract (group.mli): the stop window always contains the
   quiesce and — on speculative cycles — the validation pass, so
   stop_ns >= quiesce_ns + validate_ns holds in every checkpoint mode;
   stop-the-world cycles report validate_ns = 0. *)
let test_stop_window_stats_invariant () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let p = Syscall.spawn m ~name:"inv" in
  let _rd, wr = Syscall.pipe m p in
  let group = Sls.attach sys [ p ] in
  let check_mode what (c : Group.ckpt_stats) =
    Alcotest.(check bool) (what ^ ": stop_ns >= quiesce_ns + validate_ns") true
      (c.Group.stop_ns >= c.Group.quiesce_ns + c.Group.validate_ns)
  in
  check_mode "initial full" (Group.checkpoint ~wait_durable:true group);
  ignore (Syscall.write m p ~fd:wr "a");
  let stw = Group.checkpoint group in
  check_mode "incremental stop-the-world" stw;
  Alcotest.(check int) "stw reports no validation pass" 0 stw.Group.validate_ns;
  ignore (Syscall.write m p ~fd:wr "b");
  let spec = Group.checkpoint ~speculative:true group in
  check_mode "speculative" spec;
  Alcotest.(check bool) "speculative cycle accounted a validation pass" true
    (spec.Group.validate_ns > 0);
  ignore (Syscall.write m p ~fd:wr "c");
  check_mode "forced full" (Group.checkpoint ~full:true group)

let test_replayer_interleaved_fds () =
  let open Aurora_core.Replay in
  let log =
    [
      Recv_msg (3, "a1");
      Recv_msg (7, "b1");
      Clock_read 111;
      Recv_msg (3, "a2");
      Recv_msg (7, "b2");
    ]
  in
  let r = Replayer.create log in
  (* Re-execution may consume the fds in a different interleaving. *)
  Alcotest.(check (option string)) "fd7 first" (Some "b1") (Replayer.recv_msg r ~fd:7);
  Alcotest.(check (option string)) "fd3" (Some "a1") (Replayer.recv_msg r ~fd:3);
  Alcotest.(check (option int)) "clock" (Some 111) (Replayer.read_clock r);
  Alcotest.(check (option string)) "fd3 again" (Some "a2") (Replayer.recv_msg r ~fd:3);
  Alcotest.(check (option string)) "fd7 again" (Some "b2") (Replayer.recv_msg r ~fd:7);
  Alcotest.(check int) "exhausted" 0 (Replayer.remaining r)

let test_migrate_stream_accessors () =
  let sys = Sls.boot () in
  let p, _e, _addr = spawn_with_memory sys ~name:"app" ~npages:4 in
  let group = Sls.attach sys [ p ] in
  let stats = Group.checkpoint ~wait_durable:true group in
  let stream = Migrate.serialize ~store:sys.Sls.store ~epoch:stats.Group.epoch in
  Alcotest.(check int) "stream size accessor" (String.length stream)
    (Migrate.stream_size stream);
  let t = Migrate.transfer_time_ns ~bytes:(Migrate.stream_size stream) in
  Alcotest.(check bool) "transfer time sane" true (t > 0 && t < 1_000_000_000)

let test_store_error_paths () =
  let sys = Sls.boot () in
  let p, _e, _addr = spawn_with_memory sys ~name:"app" ~npages:1 in
  let group = Sls.attach sys [ p ] in
  let stats = Group.checkpoint ~wait_durable:true group in
  let store = sys.Sls.store in
  Alcotest.(check bool) "unknown epoch raises" true
    (try
       ignore (Store.objects_at store ~epoch:999);
       false
     with Store.Corrupt_store _ -> true);
  Alcotest.(check bool) "unknown oid raises" true
    (try
       ignore (Store.read_meta store ~epoch:stats.Group.epoch ~oid:424242);
       false
     with Store.Corrupt_store _ -> true);
  Store.reserve_oids store ~upto:1000;
  Alcotest.(check bool) "reserve respected" true (Store.alloc_oid store > 1000)

let test_journal_api () =
  let sys = Sls.boot () in
  let p, _e, _addr = spawn_with_memory sys ~name:"db" ~npages:4 in
  let group = Sls.attach sys [ p ] in
  let j = Api.sls_journal_open group ~size:(1024 * 1024) in
  Api.sls_journal group j "put k1 v1";
  Api.sls_journal group j "put k2 v2";
  (* Journal appends are synchronous: durable the moment they return. *)
  Sls.crash sys;
  let m2 = Machine.create () in
  let store2 =
    Store.recover ~dev:sys.Sls.device ~clock:m2.Machine.clock
  in
  (match Store.journal_find store2 (Api.journal_id j) with
  | Some j2 ->
      Alcotest.(check (list string)) "journal recovered after crash"
        [ "put k1 v1"; "put k2 v2" ]
        (Store.journal_records store2 j2)
  | None -> Alcotest.fail "journal lost");
  ignore group

let test_fdctl () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let p = Syscall.spawn m ~name:"srv" in
  let fd = Syscall.socket m p Aurora_kern.Socket.Inet Aurora_kern.Socket.Tcp in
  Alcotest.(check bool) "ext sync on by default" true (Syscall.fd_exn p fd).Fdesc.ext_sync;
  Api.sls_fdctl p ~fd ~ext_sync:false;
  Alcotest.(check bool) "disabled" false (Syscall.fd_exn p fd).Fdesc.ext_sync

let test_extsync_buffering () =
  let es = Extsync.create () in
  let delivered = ref [] in
  let send tag epoch =
    Extsync.buffer es ~epoch
      { Extsync.tag; deliver = (fun ~release_time -> delivered := (tag, release_time) :: !delivered) }
  in
  send "m1" 1;
  send "m2" 1;
  send "m3" 2;
  Alcotest.(check int) "buffered" 3 (Extsync.pending es);
  let n = Extsync.release_up_to es ~epoch:1 ~now:5000 in
  Alcotest.(check int) "released epoch 1" 2 n;
  Alcotest.(check (list (pair string int))) "order and release time"
    [ ("m1", 5000); ("m2", 5000) ]
    (List.rev !delivered);
  Alcotest.(check int) "m3 still held" 1 (Extsync.pending es);
  Alcotest.(check int) "crash drops unreleased" 1 (Extsync.drop_all es)

let test_coredump () =
  let sys = Sls.boot () in
  let p, _e, addr = spawn_with_memory sys ~name:"dumpme" ~npages:2 in
  Vm_space.write_string p.Process.space ~addr "x";
  let group = Sls.attach sys [ p ] in
  let stats = Group.checkpoint ~wait_durable:true group in
  let dump = Coredump.dump ~store:sys.Sls.store ~epoch:stats.Group.epoch in
  let contains needle =
    let re = Str.regexp_string needle in
    try
      ignore (Str.search_forward re dump 0);
      true
    with Not_found -> false
  in
  Alcotest.(check bool) "mentions the process" true (contains "dumpme");
  Alcotest.(check bool) "has LOAD segments" true (contains "LOAD");
  Alcotest.(check bool) "has thread registers" true (contains "rip=")

let test_migration_between_machines () =
  let src = Sls.boot () in
  let p, _e, addr = spawn_with_memory src ~name:"traveler" ~npages:8 in
  Vm_space.write_string p.Process.space ~addr "crossing machines";
  let group = Sls.attach src [ p ] in
  let stats = Group.checkpoint ~wait_durable:true group in
  let stream = Migrate.serialize ~store:src.Sls.store ~epoch:stats.Group.epoch in
  Alcotest.(check bool) "stream is nonempty" true (Migrate.stream_size stream > 0);
  (* Receive on a fresh machine. *)
  let dst = Sls.boot () in
  Clock.advance dst.Sls.machine.Machine.clock
    (Migrate.transfer_time_ns ~bytes:(Migrate.stream_size stream));
  let epoch' = Migrate.install ~store:dst.Sls.store stream in
  let result = Restore.restore ~machine:dst.Sls.machine ~store:dst.Sls.store ~epoch:epoch' () in
  match result.Restore.procs with
  | [ p' ] ->
      Alcotest.(check string) "migrated intact" "crossing machines"
        (Vm_space.read_string p'.Process.space ~addr ~len:17)
  | _ -> Alcotest.fail "expected 1 process"

let test_detach_makes_ephemeral () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let a = Syscall.spawn m ~name:"a" in
  let b = Syscall.spawn m ~name:"b" in
  let group = Sls.attach sys [ a; b ] in
  Group.detach_process group b;
  ignore (Group.checkpoint ~wait_durable:true group);
  let _sys', result = Sls.reboot_and_restore sys in
  Alcotest.(check int) "only attached processes restored" 1
    (List.length result.Restore.procs)

let test_checkpoint_after_restore_is_incremental () =
  let sys = Sls.boot () in
  let p, _e, addr = spawn_with_memory sys ~name:"app" ~npages:32 in
  Vm_space.touch_write p.Process.space ~addr ~len:(32 * Page.logical_size);
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  let sys', result = Sls.reboot_and_restore sys in
  let group' = result.Restore.group in
  (match result.Restore.procs with
  | [ p' ] -> Vm_space.write_string p'.Process.space ~addr "post-restore"
  | _ -> Alcotest.fail "expected 1 process");
  let stats = Group.checkpoint ~wait_durable:true group' in
  Alcotest.(check bool)
    (Printf.sprintf "incremental after restore (%d pages)" stats.Group.pages_flushed)
    true
    (stats.Group.pages_flushed <= 2);
  (* And the re-checkpointed state survives another crash. *)
  let _sys'', result2 = Sls.reboot_and_restore sys' in
  match result2.Restore.procs with
  | [ p'' ] ->
      Alcotest.(check string) "second-generation restore" "post-restore"
        (Vm_space.read_string p''.Process.space ~addr ~len:12)
  | _ -> Alcotest.fail "expected 1 process"

let test_mem_only_then_full_preserves_data () =
  (* Regression: a memory-only checkpoint rotates the shadow before any
     persisted checkpoint has flushed the logical object; the following
     full checkpoint must still write the original pages out. *)
  let sys = Sls.boot () in
  let p, _e, addr = spawn_with_memory sys ~name:"app" ~npages:8 in
  Vm_space.write_string p.Process.space ~addr "original state";
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint_mem_only group);
  ignore (Group.checkpoint ~wait_durable:true group);
  let _sys', result = Sls.reboot_and_restore sys in
  (match result.Restore.procs with
  | [ p' ] ->
      Alcotest.(check string) "pre-mem-only data survives" "original state"
        (Vm_space.read_string p'.Process.space ~addr ~len:14)
  | _ -> Alcotest.fail "expected 1 process")

let test_unreferenced_sysv_shm_survives () =
  (* A SysV segment with no open descriptor anywhere must still be
     checkpointed (it lives in the global namespace). *)
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let p = Syscall.spawn m ~name:"p" in
  let seg = Syscall.shmget m ~key:77 ~npages:2 in
  let e = Syscall.shmat p seg in
  let addr = Vm_space.addr_of_entry e in
  Vm_space.write_string p.Process.space ~addr "sysv data";
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  let sys', result = Sls.reboot_and_restore sys in
  (match result.Restore.procs with
  | [ p' ] ->
      Alcotest.(check string) "mapping restored" "sysv data"
        (Vm_space.read_string p'.Process.space ~addr ~len:9);
      (* And the segment is back in the namespace: a fresh shmat sees the
         same memory. *)
      let seg' = Syscall.shmget sys'.Sls.machine ~key:77 ~npages:2 in
      let q = Syscall.spawn sys'.Sls.machine ~name:"q" in
      let e' = Syscall.shmat q seg' in
      Alcotest.(check string) "namespace relinked" "sysv data"
        (Vm_space.read_string q.Process.space ~addr:(Vm_space.addr_of_entry e') ~len:9)
  | _ -> Alcotest.fail "expected 1 process")

let test_run_for_takes_periodic_checkpoints () =
  let sys = Sls.boot () in
  let p, _e, _addr = spawn_with_memory sys ~name:"app" ~npages:2 in
  let group = Sls.attach ~period_ns:10_000_000 sys [ p ] in
  Group.run_for group 100_000_000;
  (* 100 ms at 100 Hz: about ten checkpoints. *)
  let n = List.length (Store.checkpoint_epochs sys.Sls.store) in
  Alcotest.(check bool) (Printf.sprintf "~10 checkpoints (%d)" n) true (n >= 9 && n <= 11)

module Serial = Aurora_core.Serial

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"proc image serialization round-trips" ~count:200
         QCheck.(
           quad small_nat small_nat
             (small_list (pair small_nat small_nat))
             (small_list small_nat))
         (fun (pid, ppid, fds, pending) ->
           let image =
             {
               Serial.i_pid_local = pid;
               i_ppid_local = ppid;
               i_pgid = pid;
               i_sid = 1;
               i_name = Printf.sprintf "proc-%d" pid;
               i_ephemeral = pid mod 2 = 0;
               i_cwd = "/";
               i_threads =
                 [
                   {
                     Serial.i_tid_local = 100;
                     i_regs =
                       {
                         Serial.i_rip = 0xdead;
                         i_rsp = 0xbeef;
                         i_rflags = 0x202;
                         i_gp = Array.init 14 (fun i -> i * pid);
                         i_fpu = String.make 64 'f';
                       };
                     i_sigmask = 7;
                     i_pending = pending;
                     i_priority = 120;
                   };
                 ];
               i_fds = fds;
               i_entries = [];
               i_proc_pending = pending;
               i_aio_reads = List.map (fun (a, b) -> (a, b, a + b)) fds;
             }
           in
           Serial.proc_of_string (Serial.proc_to_string image) = image));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"socket image serialization round-trips" ~count:200
         QCheck.(
           pair (small_list (pair small_string small_nat))
             (small_list (pair small_string (small_list small_nat))))
         (fun (opts, msgs) ->
           let msg_images =
             List.map
               (fun (data, oids) -> { Serial.i_msg_data = data; i_ctl_oids = oids })
               msgs
           in
           let image =
             {
               Serial.i_domain = 0;
               i_proto = 1;
               i_laddr = Some ("10.0.0.1", 80);
               i_raddr = None;
               i_opts = opts;
               i_tcp = 2;
               i_snd_seq = 12345;
               i_rcv_seq = 54321;
               i_peer_oid = 7;
               i_recvq = msg_images;
               i_sendq = [];
             }
           in
           Serial.socket_of_string (Serial.socket_to_string image) = image));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"restore equals model at every crash point" ~count:15
         QCheck.(
           list_of_size (Gen.int_range 1 6)
             (list_of_size (Gen.int_range 1 8)
                (pair (int_range 0 (8 * 4096 - 10)) (string_of_size (Gen.return 4)))))
         (fun epochs_of_writes ->
           (* Apply batches of writes, checkpointing after each; crash at
              the end; the restored state must equal the model of all
              batches. *)
           let sys = Sls.boot () in
           let p = Syscall.spawn sys.Sls.machine ~name:"app" in
           let e = Syscall.mmap_anon p ~npages:8 in
           let base = Vm_space.addr_of_entry e in
           let group = Sls.attach sys [ p ] in
           (* The model must reflect compact page payloads: byte [off]
              lives at payload slot [off mod payload_size] of its page, so
              different in-page offsets can alias (see Page). *)
           let slot off =
             ((off / Page.logical_size) * Page.payload_size)
             + (off mod Page.logical_size mod Page.payload_size)
           in
           let model = Hashtbl.create 64 in
           let reader_addr = Hashtbl.create 64 in
           List.iter
             (fun batch ->
               List.iter
                 (fun (off, data) ->
                   Vm_space.write_string p.Process.space ~addr:(base + off) data;
                   String.iteri
                     (fun i c ->
                       Hashtbl.replace model (slot (off + i)) c;
                       Hashtbl.replace reader_addr (slot (off + i)) (base + off + i))
                     data)
                 batch;
               ignore (Group.checkpoint ~wait_durable:true group))
             epochs_of_writes;
           let _sys', result = Sls.reboot_and_restore sys in
           match result.Restore.procs with
           | [ p' ] ->
               Hashtbl.fold
                 (fun key c ok ->
                   let addr = Hashtbl.find reader_addr key in
                   ok && Vm_space.read_byte p'.Process.space ~addr = c)
                 model true
           | _ -> false));
  ]

(* Serial image round-trips for every image type ------------------------------- *)

let sample_proc =
  {
    Serial.i_pid_local = 4;
    i_ppid_local = 1;
    i_pgid = 4;
    i_sid = 1;
    i_name = "svc";
    i_ephemeral = false;
    i_cwd = "/tmp";
    i_threads =
      [
        {
          Serial.i_tid_local = 100;
          i_regs =
            {
              Serial.i_rip = 0x1000;
              i_rsp = 0x2000;
              i_rflags = 0x202;
              i_gp = Array.init 14 (fun i -> i);
              i_fpu = String.make 64 'f';
            };
          i_sigmask = 0;
          i_pending = [ 17 ];
          i_priority = 120;
        };
      ];
    i_fds = [ (0, 7); (1, 8) ];
    i_entries =
      [
        {
          Serial.i_start_vpn = 16;
          i_npages = 4;
          i_read = true;
          i_write = true;
          i_exec = false;
          i_shared = false;
          i_excluded = false;
          i_obj_oid = 9;
          i_obj_pgoff = 0;
        };
      ];
    i_proc_pending = [];
    i_aio_reads = [ (3, 0, 64) ];
  }

let sample_manifest =
  let entries =
    [
      Serial.manifest_entry_of_source (3, "sls.memobj", "meta-a", [ (0, 17); (1, 99) ]);
      Serial.manifest_entry_of_source (5, "sls.proc", "meta-b", []);
    ]
  in
  { Serial.i_m_epoch = 12; i_m_count = 2; i_m_entries = entries }

let roundtrip_qcheck_tests =
  let t name gen image_of roundtrip =
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name ~count:200 gen (fun x -> roundtrip (image_of x)))
  in
  [
    t "fdesc image round-trips"
      QCheck.(triple (int_bound 8) small_nat bool)
      (fun (variant, n, b) ->
        let kind =
          match variant with
          | 0 -> Serial.I_vnode { inode = n; offset = n * 3; append = b }
          | 1 -> Serial.I_pipe_r n
          | 2 -> Serial.I_pipe_w n
          | 3 -> Serial.I_socket n
          | 4 -> Serial.I_kqueue n
          | 5 -> Serial.I_pty_m n
          | 6 -> Serial.I_pty_s n
          | 7 -> Serial.I_shm n
          | _ -> Serial.I_device (Printf.sprintf "dev-%d" n)
        in
        { Serial.i_kind = kind; i_ext_sync = b })
      (fun i -> Serial.fdesc_of_string (Serial.fdesc_to_string i) = i);
    t "pipe image round-trips"
      QCheck.(triple small_string bool bool)
      (fun (data, rd, wr) -> { Serial.i_data = data; i_rd_open = rd; i_wr_open = wr })
      (fun i -> Serial.pipe_of_string (Serial.pipe_to_string i) = i);
    t "kqueue image round-trips"
      QCheck.(small_list (quad small_nat small_nat small_nat small_nat))
      (List.map (fun (a, b, c, d) ->
           { Serial.i_ident = a; i_filter = b; i_flags = c; i_udata = d }))
      (fun evs -> Serial.kqueue_of_string (Serial.kqueue_to_string evs) = evs);
    t "pty image round-trips"
      QCheck.(quad small_nat bool small_string small_string)
      (fun (u, echo, input, output) ->
        {
          Serial.i_unit = u;
          i_echo = echo;
          i_canonical = not echo;
          i_baud = 115200;
          i_input = input;
          i_output = output;
        })
      (fun i -> Serial.pty_of_string (Serial.pty_to_string i) = i);
    t "shm image round-trips"
      QCheck.(triple bool small_string small_nat)
      (fun (posix, name, n) ->
        {
          Serial.i_shm_kind = (if posix then Either.Left name else Either.Right n);
          i_npages = n + 1;
          i_backing_oid = n * 2;
        })
      (fun i -> Serial.shm_of_string (Serial.shm_to_string i) = i);
    t "memobj image round-trips"
      QCheck.(pair (option small_nat) bool)
      (fun (parent, anon) -> { Serial.i_parent_oid = parent; i_anon = anon })
      (fun i -> Serial.memobj_of_string (Serial.memobj_to_string i) = i);
    t "group image round-trips"
      QCheck.(
        quad (small_list small_nat) small_nat
          (small_list (pair small_string small_nat))
          (small_list small_nat))
      (fun (oids, period, names, parents) ->
        {
          Serial.i_proc_oids = oids;
          i_period = period;
          i_ext_sync_on = period mod 2 = 0;
          i_name_ckpts = names;
          i_ephemeral_parents = parents;
        })
      (fun i -> Serial.group_of_string (Serial.group_to_string i) = i);
    t "manifest image round-trips"
      QCheck.(
        pair small_nat
          (small_list
             (triple small_nat small_string (small_list (pair small_nat small_nat)))))
      (fun (epoch, sources) ->
        let entries =
          List.mapi
            (fun i (oid, meta, crcs) ->
              Serial.manifest_entry_of_source (oid + (i * 1000), "sls.kind", meta, crcs))
            sources
        in
        {
          Serial.i_m_epoch = epoch;
          i_m_count = List.length entries;
          i_m_entries = entries;
        })
      (fun i -> Serial.manifest_of_string (Serial.manifest_to_string i) = i);
  ]

(* Hardened parsers: truncation and bit-flips surface [Serial.Malformed],
   never [Failure] or [Invalid_argument]. *)
let test_parsers_raise_typed_malformed () =
  let samples =
    [
      ("proc", Serial.proc_to_string sample_proc,
       fun s -> ignore (Serial.proc_of_string s));
      ( "fdesc",
        Serial.fdesc_to_string
          { Serial.i_kind = Serial.I_vnode { inode = 3; offset = 10; append = true };
            i_ext_sync = true },
        fun s -> ignore (Serial.fdesc_of_string s) );
      ( "pipe",
        Serial.pipe_to_string
          { Serial.i_data = "buffered"; i_rd_open = true; i_wr_open = false },
        fun s -> ignore (Serial.pipe_of_string s) );
      ( "socket",
        Serial.socket_to_string
          {
            Serial.i_domain = 1;
            i_proto = 1;
            i_laddr = Some ("10.0.0.1", 80);
            i_raddr = None;
            i_opts = [ ("nodelay", 1) ];
            i_tcp = 2;
            i_snd_seq = 5;
            i_rcv_seq = 6;
            i_peer_oid = 0;
            i_recvq = [ { Serial.i_msg_data = "m"; i_ctl_oids = [ 4 ] } ];
            i_sendq = [];
          },
        fun s -> ignore (Serial.socket_of_string s) );
      ( "kqueue",
        Serial.kqueue_to_string
          [ { Serial.i_ident = 1; i_filter = 2; i_flags = 3; i_udata = 4 } ],
        fun s -> ignore (Serial.kqueue_of_string s) );
      ( "pty",
        Serial.pty_to_string
          {
            Serial.i_unit = 1;
            i_echo = true;
            i_canonical = false;
            i_baud = 9600;
            i_input = "in";
            i_output = "out";
          },
        fun s -> ignore (Serial.pty_of_string s) );
      ( "shm",
        Serial.shm_to_string
          { Serial.i_shm_kind = Either.Left "seg"; i_npages = 2; i_backing_oid = 5 },
        fun s -> ignore (Serial.shm_of_string s) );
      ( "memobj",
        Serial.memobj_to_string { Serial.i_parent_oid = Some 2; i_anon = true },
        fun s -> ignore (Serial.memobj_of_string s) );
      ( "group",
        Serial.group_to_string
          {
            Serial.i_proc_oids = [ 1; 2 ];
            i_period = 10_000_000;
            i_ext_sync_on = true;
            i_name_ckpts = [ ("v1", 3) ];
            i_ephemeral_parents = [ 2 ];
          },
        fun s -> ignore (Serial.group_of_string s) );
      ("manifest", Serial.manifest_to_string sample_manifest,
       fun s -> ignore (Serial.manifest_of_string s));
    ]
  in
  List.iter
    (fun (kind, valid, parse) ->
      (* Every strict prefix: truncation mid-field must be typed. *)
      for len = 0 to String.length valid - 1 do
        match parse (String.sub valid 0 len) with
        | () -> ()
        | exception Serial.Malformed _ -> ()
        | exception e ->
            Alcotest.fail
              (Printf.sprintf "%s truncated at %d raised %s" kind len
                 (Printexc.to_string e))
      done;
      (* Every single-byte flip: parses or fails typed, never crashes. *)
      String.iteri
        (fun i _ ->
          let b = Bytes.of_string valid in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x41));
          match parse (Bytes.to_string b) with
          | () -> ()
          | exception Serial.Malformed _ -> ()
          | exception e ->
              Alcotest.fail
                (Printf.sprintf "%s flipped byte %d raised %s" kind i
                   (Printexc.to_string e)))
        valid)
    samples

let test_parse_check_dispatch () =
  (match Serial.parse_check ~kind:Serial.kind_proc (Serial.proc_to_string sample_proc) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("valid proc rejected: " ^ e));
  (match Serial.parse_check ~kind:Serial.kind_proc "garbage" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "garbage proc accepted");
  (* Unknown kinds (fs.*, memory) are not image-parseable: accepted as-is. *)
  match Serial.parse_check ~kind:"fs.namespace" "anything" with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("unknown kind rejected: " ^ e)

(* Replication frames ----------------------------------------------------------- *)

let test_shipment_frames () =
  let body = "stream-bytes-go-here" in
  let frame =
    Migrate.seal_shipment ~seq:3 ~base:1 ~epoch:2 ~manifest_oid:44 ~count:5
      ~summary:0xBEEF body
  in
  (match Migrate.open_shipment frame with
  | Ok sh ->
      Alcotest.(check int) "seq" 3 sh.Migrate.sh_seq;
      Alcotest.(check int) "base" 1 sh.Migrate.sh_base;
      Alcotest.(check int) "epoch" 2 sh.Migrate.sh_epoch;
      Alcotest.(check int) "manifest oid" 44 sh.Migrate.sh_manifest_oid;
      Alcotest.(check int) "count" 5 sh.Migrate.sh_count;
      Alcotest.(check int) "summary" 0xBEEF sh.Migrate.sh_summary;
      Alcotest.(check string) "body" body sh.Migrate.sh_body
  | Error e -> Alcotest.fail ("valid frame rejected: " ^ e));
  (* Any single flipped byte is caught by the trailer CRC. *)
  String.iteri
    (fun i _ ->
      let b = Bytes.of_string frame in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
      match Migrate.open_shipment (Bytes.to_string b) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "flip at %d went unnoticed" i))
    frame;
  (match Migrate.open_shipment "abc" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "3-byte frame accepted");
  (* An ack frame is not a shipment: valid CRC, wrong magic. *)
  let ack = Migrate.seal_ack ~seq:3 ~epoch:2 ~ok:true ~reason:"" in
  (match Migrate.open_shipment ack with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ack parsed as shipment");
  match Migrate.open_ack ack with
  | Ok a ->
      Alcotest.(check int) "ack seq" 3 a.Migrate.ack_seq;
      Alcotest.(check bool) "ack ok" true a.Migrate.ack_ok
  | Error e -> Alcotest.fail ("valid ack rejected: " ^ e)

(* External synchrony: the discarded window --------------------------------------- *)

let test_extsync_drop_after () =
  let t = Extsync.create () in
  let released = ref [] in
  let buffer epoch tag =
    Extsync.buffer t ~epoch
      { Extsync.tag; deliver = (fun ~release_time:_ -> released := tag :: !released) }
  in
  buffer 1 "a";
  buffer 2 "b";
  buffer 3 "c";
  buffer 3 "d";
  (* Failover recovered epoch 2: exactly the epoch-3 window vanishes. *)
  Alcotest.(check int) "dropped the window" 2 (Extsync.drop_after t ~epoch:2);
  Alcotest.(check int) "older survive" 2 (Extsync.pending t);
  ignore (Extsync.release_up_to t ~epoch:2 ~now:99);
  Alcotest.(check (list string)) "released in order" [ "a"; "b" ] (List.rev !released)

(* Verified restore and epoch fallback -------------------------------------------- *)

let test_verify_epoch_and_fallback () =
  let sys = Sls.boot () in
  let p, _e, addr = spawn_with_memory sys ~name:"app" ~npages:8 in
  let group = Sls.attach sys [ p ] in
  Vm_space.write_string p.Process.space ~addr "gen-1";
  ignore (Group.checkpoint ~wait_durable:true group);
  Vm_space.write_string p.Process.space ~addr "gen-2";
  ignore (Group.checkpoint ~wait_durable:true group);
  let store = sys.Sls.store in
  let newest = Store.last_complete_epoch store in
  (match Restore.verify_epoch ~store ~epoch:newest with
  | Ok m ->
      Alcotest.(check int) "manifest names its epoch" newest m.Serial.i_m_epoch;
      Alcotest.(check bool) "covers the epoch's objects" true (m.Serial.i_m_count > 0)
  | Error e -> Alcotest.fail ("healthy epoch rejected: " ^ e));
  (* Corrupt the newest epoch's memory-object metadata: verification must
     fail there and verified restore must fall back to gen-1. *)
  let victim =
    match
      List.find_opt
        (fun (_, kind) -> kind = Serial.kind_memobj)
        (Store.objects_at store ~epoch:newest)
    with
    | Some (oid, _) -> oid
    | None -> Alcotest.fail "no memobj in checkpoint"
  in
  Store.corrupt_meta_for_tests store ~epoch:newest ~oid:victim;
  (match Restore.verify_epoch ~store ~epoch:newest with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted epoch verified");
  match Restore.restore_verified ~machine:(Machine.create ()) ~store () with
  | Error e -> Alcotest.fail ("fallback found nothing: " ^ Restore.pp_restore_error e)
  | Ok v -> (
      Alcotest.(check bool) "older epoch restored" true (v.Restore.vr_epoch < newest);
      Alcotest.(check bool) "the corrupted epoch was skipped" true
        (List.exists
           (fun (a : Restore.attempt) -> a.Restore.at_epoch = newest)
           v.Restore.vr_skipped);
      match v.Restore.vr_result.Restore.procs with
      | [ p' ] ->
          Alcotest.(check string) "previous generation" "gen-1"
            (Vm_space.read_string p'.Process.space ~addr ~len:5)
      | _ -> Alcotest.fail "expected 1 process")

let test_restore_verified_empty_store () =
  let sys = Sls.boot () in
  match Restore.restore_verified ~machine:(Machine.create ()) ~store:sys.Sls.store () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "restored from a store with no group checkpoint"

(* HA edge cases ------------------------------------------------------------------- *)

module Ha = Aurora_core.Ha
module Link = Aurora_net.Link

let ha_fixture () =
  let sys = Sls.boot () in
  let p, _e, addr = spawn_with_memory sys ~name:"svc" ~npages:8 in
  Vm_space.touch_write p.Process.space ~addr ~len:(8 * 4096);
  let group = Sls.attach sys [ p ] in
  let standby = Sls.boot () in
  (sys, p, addr, group, standby)

let checkpoint_round group p ~addr r =
  Vm_space.write_string p.Process.space ~addr (Printf.sprintf "round-%d" r);
  ignore (Group.checkpoint ~wait_durable:true group)

let test_ha_failover_before_replicate () =
  let _sys, _p, _addr, group, standby = ha_fixture () in
  let ha = Ha.create ~primary:group ~standby_store:standby.Sls.store () in
  (match Ha.failover_verified ha ~machine:(Machine.create ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "failover succeeded with nothing shipped");
  match Ha.failover ha ~machine:(Machine.create ()) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure"

let test_ha_lag_recovers_shipped_epoch () =
  let _sys, p, addr, group, standby = ha_fixture () in
  let ha = Ha.create ~primary:group ~standby_store:standby.Sls.store () in
  checkpoint_round group p ~addr 1;
  ignore (Ha.replicate_result ha);
  checkpoint_round group p ~addr 2;
  ignore (Ha.replicate_result ha);
  (* Round 3 checkpoints but never replicates: the primary dies lagging. *)
  checkpoint_round group p ~addr 3;
  Alcotest.(check int) "one epoch of lag" 1 (Ha.lag_epochs ha);
  match Ha.failover_verified ha ~machine:(Machine.create ()) with
  | Error e -> Alcotest.fail (Restore.pp_restore_error e)
  | Ok report -> (
      Alcotest.(check int) "recovered the shipped epoch, not the latest"
        (Ha.shipped_epoch ha) report.Ha.fo_source_epoch;
      match report.Ha.fo_restore.Restore.vr_result.Restore.procs with
      | [ p' ] ->
          Alcotest.(check string) "round-2 state" "round-2"
            (Vm_space.read_string p'.Process.space ~addr ~len:7)
      | _ -> Alcotest.fail "expected 1 process")

let test_ha_double_failover_idempotent () =
  let _sys, p, addr, group, standby = ha_fixture () in
  let ha = Ha.create ~primary:group ~standby_store:standby.Sls.store () in
  checkpoint_round group p ~addr 1;
  ignore (Ha.replicate_result ha);
  checkpoint_round group p ~addr 2;
  ignore (Ha.replicate_result ha);
  let fo () =
    match Ha.failover_verified ha ~machine:(Machine.create ()) with
    | Error e -> Alcotest.fail (Restore.pp_restore_error e)
    | Ok report -> (
        match report.Ha.fo_restore.Restore.vr_result.Restore.procs with
        | [ p' ] ->
            ( report.Ha.fo_source_epoch,
              Vm_space.read_string p'.Process.space ~addr ~len:7 )
        | _ -> Alcotest.fail "expected 1 process")
  in
  let first = fo () in
  let second = fo () in
  Alcotest.(check (pair int string)) "same epoch, same state" first second;
  Alcotest.(check string) "round-2 state" "round-2" (snd first)

let test_ha_replication_over_lossy_link () =
  let _sys, p, addr, group, standby = ha_fixture () in
  let link = Link.create ~name:"lossy" () in
  Link.set_faults link ~seed:1905 (Link.lossy_profile 0.25);
  let ha = Ha.create ~link ~primary:group ~standby_store:standby.Sls.store () in
  for r = 1 to 8 do
    checkpoint_round group p ~addr r;
    match Ha.replicate_result ha with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (Printf.sprintf "round %d not acknowledged: %s" r e)
  done;
  Alcotest.(check int) "standby current" 0 (Ha.lag_epochs ha);
  let s = Ha.stats ha in
  Alcotest.(check int) "every epoch shipped" 8 s.Ha.ha_shipments;
  Alcotest.(check bool)
    (Printf.sprintf "faults forced retransmits (%d)" s.Ha.ha_retransmits)
    true
    (s.Ha.ha_retransmits > 0);
  (* And the recovered state is the last round despite the chaos. *)
  match Ha.failover_verified ha ~machine:(Machine.create ()) with
  | Error e -> Alcotest.fail (Restore.pp_restore_error e)
  | Ok report -> (
      match report.Ha.fo_restore.Restore.vr_result.Restore.procs with
      | [ p' ] ->
          Alcotest.(check string) "round-8 state" "round-8"
            (Vm_space.read_string p'.Process.space ~addr ~len:7)
      | _ -> Alcotest.fail "expected 1 process")

let test_ha_partition_outwaited () =
  let sys, p, addr, group, standby = ha_fixture () in
  let link = Link.create ~name:"partitioned" () in
  let ha = Ha.create ~link ~primary:group ~standby_store:standby.Sls.store () in
  checkpoint_round group p ~addr 1;
  (* Cut the cable for 5 ms of virtual time right before the shipment. *)
  let now = Clock.now sys.Sls.machine.Machine.clock in
  Link.partition link ~now ~duration:5_000_000;
  (match Ha.replicate_result ha with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("partition not outwaited: " ^ e));
  Alcotest.(check int) "standby current after heal" 0 (Ha.lag_epochs ha);
  Alcotest.(check bool) "retransmitted across the partition" true
    ((Ha.stats ha).Ha.ha_retransmits > 0);
  Alcotest.(check bool) "primary clock crossed the heal" true
    (Clock.now sys.Sls.machine.Machine.clock > now + 5_000_000)

let test_ha_standby_rejects_divergent_state () =
  let _sys, p, addr, group, standby = ha_fixture () in
  let ha = Ha.create ~primary:group ~standby_store:standby.Sls.store () in
  checkpoint_round group p ~addr 1;
  (match Ha.replicate_result ha with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* Silently corrupt the standby's carried metadata (every object: the
     page-granular delta re-ships only what changed, so the untouched
     ones are composed from this corrupted state).  The next delta's
     digest cannot match the primary's manifest, so the standby must
     refuse and the epoch must not count as shipped. *)
  let store = standby.Sls.store in
  let newest = Store.last_complete_epoch store in
  List.iter
    (fun (oid, kind) ->
      if kind <> Serial.kind_manifest then
        Store.corrupt_meta_for_tests store ~epoch:newest ~oid)
    (Store.objects_at store ~epoch:newest);
  let shipped_before = Ha.shipped_epoch ha in
  checkpoint_round group p ~addr 2;
  (match Ha.replicate_result ha with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "standby installed a divergent epoch");
  Alcotest.(check int) "shipped epoch did not advance" shipped_before
    (Ha.shipped_epoch ha);
  Alcotest.(check bool) "reject counted" true ((Ha.stats ha).Ha.ha_verify_rejects > 0)

(* Extsync drop_after edges -------------------------------------------------------- *)

let test_extsync_drop_after_edges () =
  (* Epoch 0: nothing was ever quorum-committed, so everything is the
     discarded window. *)
  let t = Extsync.create () in
  Alcotest.(check int) "empty outbox drops nothing" 0 (Extsync.drop_after t ~epoch:0);
  let buffer t epoch tag = Extsync.buffer t ~epoch { Extsync.tag; deliver = (fun ~release_time:_ -> ()) } in
  buffer t 1 "a";
  buffer t 2 "b";
  Alcotest.(check int) "epoch 0 drops everything" 2 (Extsync.drop_after t ~epoch:0);
  Alcotest.(check int) "nothing pending" 0 (Extsync.pending t);
  (* Double failover: the second recovers an even older epoch, so its
     window extends the first's — each drop is exact, never double. *)
  let t = Extsync.create () in
  List.iteri (fun i tag -> buffer t (i + 1) tag) [ "a"; "b"; "c"; "d" ];
  Alcotest.(check int) "first failover at 3 drops one" 1 (Extsync.drop_after t ~epoch:3);
  Alcotest.(check int) "second failover at 2 drops one more" 1
    (Extsync.drop_after t ~epoch:2);
  Alcotest.(check int) "the surviving window" 2 (Extsync.pending t);
  Alcotest.(check int) "same epoch again drops nothing" 0 (Extsync.drop_after t ~epoch:2);
  (* After a rejoin catch-up the outbox buffers against newer epochs;
     a later failover at the catch-up epoch keeps exactly those. *)
  let t = Extsync.create () in
  buffer t 2 "pre";
  buffer t 7 "post-catchup";
  buffer t 9 "window";
  Alcotest.(check int) "failover at the catch-up epoch" 1 (Extsync.drop_after t ~epoch:7);
  Alcotest.(check int) "released up to the catch-up epoch" 2
    (Extsync.release_up_to t ~epoch:7 ~now:1);
  Alcotest.(check int) "outbox drained" 0 (Extsync.pending t)

(* Fallback across consecutive corrupt epochs ------------------------------------- *)

let test_restore_fallback_two_corrupt_epochs () =
  let sys = Sls.boot () in
  let p, _e, addr = spawn_with_memory sys ~name:"app" ~npages:8 in
  let group = Sls.attach sys [ p ] in
  for r = 1 to 3 do
    Vm_space.write_string p.Process.space ~addr (Printf.sprintf "gen-%d" r);
    ignore (Group.checkpoint ~wait_durable:true group)
  done;
  let store = sys.Sls.store in
  let epochs =
    Store.checkpoint_epochs store |> List.sort (fun a b -> compare b a)
  in
  let e3, e2 =
    match epochs with a :: b :: _ -> (a, b) | _ -> Alcotest.fail "need 3 epochs"
  in
  (* Corrupt the two newest epochs differently: metadata in one, page
     payload in the other — the fallback loop must skip both. *)
  let victim epoch =
    match
      List.find_opt
        (fun (_, kind) -> kind = Serial.kind_memobj)
        (Store.objects_at store ~epoch)
    with
    | Some (oid, _) -> oid
    | None -> Alcotest.fail "no memobj in checkpoint"
  in
  Store.corrupt_meta_for_tests store ~epoch:e3 ~oid:(victim e3);
  Store.corrupt_page_for_tests store ~epoch:e2 ~oid:(victim e2);
  match Restore.restore_verified ~machine:(Machine.create ()) ~store () with
  | Error e -> Alcotest.fail ("fallback found nothing: " ^ Restore.pp_restore_error e)
  | Ok v -> (
      Alcotest.(check int) "skipped both corrupt epochs" 2
        (List.length v.Restore.vr_skipped);
      Alcotest.(check bool) "newest skipped" true
        (List.exists (fun (a : Restore.attempt) -> a.Restore.at_epoch = e3)
           v.Restore.vr_skipped);
      Alcotest.(check bool) "second newest skipped" true
        (List.exists (fun (a : Restore.attempt) -> a.Restore.at_epoch = e2)
           v.Restore.vr_skipped);
      match v.Restore.vr_result.Restore.procs with
      | [ p' ] ->
          Alcotest.(check string) "oldest generation survives" "gen-1"
            (Vm_space.read_string p'.Process.space ~addr ~len:5)
      | _ -> Alcotest.fail "expected 1 process")

(* HA backoff accounting ----------------------------------------------------------- *)

let test_ha_backoff_accounted () =
  let _sys, p, addr, group, standby = ha_fixture () in
  let link = Link.create ~name:"lossy" () in
  Link.set_faults link ~seed:77 (Link.lossy_profile 0.3);
  let ha = Ha.create ~link ~primary:group ~standby_store:standby.Sls.store () in
  for r = 1 to 6 do
    checkpoint_round group p ~addr r;
    ignore (Ha.replicate_result ha)
  done;
  let s = Ha.stats ha in
  Alcotest.(check bool) "losses forced retransmits" true (s.Ha.ha_retransmits > 0);
  Alcotest.(check bool)
    (Printf.sprintf "backoff time accounted (%d ns)" s.Ha.ha_backoff_ns)
    true
    (s.Ha.ha_backoff_ns > 0)

(* Quorum replica set -------------------------------------------------------------- *)

module Replica_set = Aurora_core.Replica_set

let rset_fixture ?(n = 3) ?outbox ?(fault = fun _ _ -> ()) () =
  let sys = Sls.boot () in
  let p, _e, addr = spawn_with_memory sys ~name:"svc" ~npages:8 in
  Vm_space.touch_write p.Process.space ~addr ~len:(8 * 4096);
  let group = Sls.attach sys [ p ] in
  let standbys =
    List.init n (fun i ->
        let link = Link.create ~name:(Printf.sprintf "rset-%d" i) () in
        fault i link;
        ((Sls.boot ()).Sls.store, link))
  in
  let rs = Replica_set.create ?outbox ~seed:9 ~primary:group ~standbys () in
  (sys, p, addr, group, rs, List.map fst standbys)

let rset_round group p ~addr rs r =
  Vm_space.write_string p.Process.space ~addr (Printf.sprintf "round-%d" r);
  ignore (Group.checkpoint ~wait_durable:true group);
  Replica_set.ship rs

let test_rset_pipeline_all_current () =
  let _sys, p, addr, group, rs, _stores = rset_fixture () in
  for r = 1 to 4 do
    rset_round group p ~addr rs r
  done;
  Alcotest.(check bool) "drained" true (Replica_set.drain rs `All);
  Alcotest.(check int) "quorum at the newest epoch"
    (Replica_set.last_logged_epoch rs)
    (Replica_set.quorum_epoch rs);
  List.iter
    (fun (v : Replica_set.standby_view) ->
      Alcotest.(check bool)
        (Printf.sprintf "standby %d healthy" v.Replica_set.sv_idx)
        true
        (v.Replica_set.sv_health = Replica_set.Healthy);
      Alcotest.(check int)
        (Printf.sprintf "standby %d current" v.Replica_set.sv_idx)
        0 v.Replica_set.sv_lag_epochs)
    (Replica_set.views rs);
  let s = Replica_set.stats rs in
  Alcotest.(check int) "four epochs logged" 4 s.Replica_set.rs_epochs_logged;
  Alcotest.(check int) "every standby acked every epoch" 12
    s.Replica_set.rs_acked_total

let test_rset_minority_kill_and_election () =
  let outbox = Extsync.create () in
  let released = ref [] in
  let _sys, p, addr, group, rs, _stores = rset_fixture ~outbox () in
  for r = 1 to 5 do
    rset_round group p ~addr rs r;
    Extsync.buffer outbox
      ~epoch:(Group.last_epoch group)
      {
        Extsync.tag = Printf.sprintf "m%d" r;
        deliver = (fun ~release_time:_ -> released := r :: !released);
      };
    if r = 3 then Replica_set.kill rs 1
  done;
  Alcotest.(check bool) "quorum reached with a dead minority" true
    (Replica_set.drain rs `Quorum);
  Replica_set.pump rs;
  (* The primary dies; the two survivors elect. *)
  match
    Replica_set.elect_and_failover rs ~survivors:[ 0; 2 ]
      ~machine:(Machine.create ())
  with
  | Error e -> Alcotest.fail e
  | Ok rep -> (
      Alcotest.(check int) "both survivors voted" 2
        (List.length rep.Replica_set.el_votes);
      Alcotest.(check bool) "winner no older than quorum" true
        (rep.Replica_set.el_source_epoch >= Replica_set.quorum_epoch rs);
      Alcotest.(check bool) "no released message from the lost window" true
        (List.for_all (fun r -> r <= 5) !released);
      match rep.Replica_set.el_restore.Restore.vr_result.Restore.procs with
      | [ p' ] ->
          Alcotest.(check string) "last round's state" "round-5"
            (Vm_space.read_string p'.Process.space ~addr ~len:7)
      | _ -> Alcotest.fail "expected 1 process")

let test_rset_evict_and_rejoin () =
  (* Standby 0's link silently eats every frame: unlike a declared
     partition (whose heal time the backoff waits out), pure loss burns
     retransmit attempts until the health machine evicts; the other two
     standbys carry the quorum meanwhile.  A rejoin catch-up over the
     healed link brings it back to current. *)
  let dark = ref None in
  let _sys, p, addr, group, rs, _stores =
    rset_fixture
      ~fault:(fun i link ->
        if i = 0 then begin
          dark := Some link;
          Link.set_faults link ~seed:5 { Link.no_faults with p_drop = 1.0 }
        end)
      ()
  in
  for r = 1 to 4 do
    rset_round group p ~addr rs r
  done;
  (* `All treats an evicted standby as settled, so this drain runs the
     dark standby out of retransmit attempts instead of stopping at
     quorum. *)
  Alcotest.(check bool) "drained around the dark standby" true
    (Replica_set.drain rs `All);
  let v0 = Replica_set.view rs 0 in
  Alcotest.(check bool) "dark standby evicted" true
    (v0.Replica_set.sv_health = Replica_set.Evicted);
  Alcotest.(check int) "evicted standby acked nothing" 0
    v0.Replica_set.sv_acked_epoch;
  Alcotest.(check int) "quorum reached regardless"
    (Replica_set.last_logged_epoch rs)
    (Replica_set.quorum_epoch rs);
  (* Heal, rejoin, and the catch-up delta covers the whole gap. *)
  (match !dark with
  | Some link -> Link.set_faults link ~seed:5 Link.no_faults
  | None -> Alcotest.fail "fixture never faulted standby 0");
  Replica_set.rejoin rs 0;
  Alcotest.(check bool) "all current after rejoin" true
    (Replica_set.drain rs `All);
  let v0 = Replica_set.view rs 0 in
  Alcotest.(check bool) "rejoined standby healthy" true
    (v0.Replica_set.sv_health = Replica_set.Healthy);
  Alcotest.(check int) "rejoined standby current"
    (Replica_set.last_logged_epoch rs)
    v0.Replica_set.sv_acked_epoch;
  let s = Replica_set.stats rs in
  Alcotest.(check bool) "eviction counted" true (s.Replica_set.rs_evictions > 0);
  Alcotest.(check int) "one rejoin" 1 s.Replica_set.rs_rejoins

let test_rset_divergent_standby_evicted () =
  let _sys, p, addr, group, rs, stores = rset_fixture () in
  rset_round group p ~addr rs 1;
  Alcotest.(check bool) "first epoch everywhere" true (Replica_set.drain rs `All);
  (* Corrupt standby 0's installed state: the next composed delta cannot
     match the manifest digest, the standby nacks, and the sender must
     evict it — retransmission cannot fix divergence. *)
  let store0 = List.hd stores in
  let newest = Store.last_complete_epoch store0 in
  List.iter
    (fun (oid, kind) ->
      if kind <> Serial.kind_manifest then
        Store.corrupt_meta_for_tests store0 ~epoch:newest ~oid)
    (Store.objects_at store0 ~epoch:newest);
  rset_round group p ~addr rs 2;
  Alcotest.(check bool) "quorum survives one divergent standby" true
    (Replica_set.drain rs `Quorum);
  let v0 = Replica_set.view rs 0 in
  Alcotest.(check bool) "divergent standby evicted" true
    (v0.Replica_set.sv_health = Replica_set.Evicted);
  Alcotest.(check bool) "reject counted" true
    (v0.Replica_set.sv_verify_rejects > 0);
  (* The healthy majority is unaffected. *)
  Alcotest.(check int) "quorum at the newest epoch"
    (Replica_set.last_logged_epoch rs)
    (Replica_set.quorum_epoch rs)

let test_rset_migration_live () =
  let sys = Sls.boot () in
  let p, _e, addr = spawn_with_memory sys ~name:"svc" ~npages:8 in
  Vm_space.touch_write p.Process.space ~addr ~len:(8 * 4096);
  let group = Sls.attach sys [ p ] in
  let target = Sls.boot () in
  let workload r =
    Vm_space.write_string p.Process.space ~addr (Printf.sprintf "round-%d" r)
  in
  match
    Replica_set.migrate_live ~primary:group ~target_store:target.Sls.store
      ~machine:(Machine.create ()) ~workload ()
  with
  | Error e -> Alcotest.fail e
  | Ok rep ->
      Alcotest.(check bool) "byte-identical target" true
        rep.Replica_set.mig_identical;
      Alcotest.(check bool) "downtime within two checkpoint periods" true
        (rep.Replica_set.mig_downtime_ns <= 2 * Group.period_ns group);
      Alcotest.(check bool) "pre-copy converged" true
        (rep.Replica_set.mig_final_bytes <= rep.Replica_set.mig_precopy_bytes)

let () =
  Alcotest.run "aurora_core"
    [
      ( "memory",
        [
          Alcotest.test_case "checkpoint/restore" `Quick test_checkpoint_restore_memory;
          Alcotest.test_case "durable bytes only" `Quick test_restore_is_from_durable_bytes_only;
          Alcotest.test_case "incremental flush" `Quick test_incremental_checkpoints_flush_only_dirty;
          Alcotest.test_case "many epochs" `Quick test_incremental_content_correct_after_many_epochs;
          Alcotest.test_case "cpu state" `Quick test_cpu_state_roundtrip;
        ] );
      ( "posix",
        [
          Alcotest.test_case "fork fd sharing" `Quick test_fork_fd_sharing_survives_restore;
          Alcotest.test_case "process tree" `Quick test_process_tree_restored;
          Alcotest.test_case "pipe" `Quick test_pipe_content_restored;
          Alcotest.test_case "in-flight SCM_RIGHTS" `Quick test_socketpair_and_inflight_rights_restored;
          Alcotest.test_case "kqueue and pty" `Quick test_kqueue_and_pty_restored;
          Alcotest.test_case "shared memory" `Quick test_shared_memory_restored_shared;
          Alcotest.test_case "anonymous file" `Quick test_anonymous_file_survives;
          Alcotest.test_case "ephemeral SIGCHLD" `Quick test_ephemeral_process_sigchld;
        ] );
      ( "history",
        [
          Alcotest.test_case "time travel" `Quick test_time_travel_restore;
          Alcotest.test_case "lazy restore content" `Quick test_lazy_restore_contents_equal;
          Alcotest.test_case "lazy restore faster" `Quick test_lazy_restore_faster;
        ] );
      ( "api",
        [
          Alcotest.test_case "mctl exclusion" `Quick test_mctl_exclusion;
          Alcotest.test_case "memckpt atomic region" `Quick test_memckpt_atomic_region;
          Alcotest.test_case "journal" `Quick test_journal_api;
          Alcotest.test_case "memckpt shared region" `Quick test_memckpt_shared_region;
          Alcotest.test_case "replayer interleaving" `Quick test_replayer_interleaved_fds;
          Alcotest.test_case "migrate accessors" `Quick test_migrate_stream_accessors;
          Alcotest.test_case "store error paths" `Quick test_store_error_paths;
          Alcotest.test_case "fdctl" `Quick test_fdctl;
          Alcotest.test_case "external synchrony" `Quick test_extsync_buffering;
          Alcotest.test_case "extsync discarded window" `Quick test_extsync_drop_after;
          Alcotest.test_case "extsync drop_after edges" `Quick
            test_extsync_drop_after_edges;
          Alcotest.test_case "typed malformed parsers" `Quick
            test_parsers_raise_typed_malformed;
          Alcotest.test_case "parse_check dispatch" `Quick test_parse_check_dispatch;
          Alcotest.test_case "shipment frames" `Quick test_shipment_frames;
        ] );
      ( "tools",
        [
          Alcotest.test_case "coredump" `Quick test_coredump;
          Alcotest.test_case "migration" `Quick test_migration_between_machines;
          Alcotest.test_case "detach" `Quick test_detach_makes_ephemeral;
        ] );
      ( "continuity",
        [
          Alcotest.test_case "incremental after restore" `Quick test_checkpoint_after_restore_is_incremental;
          Alcotest.test_case "mem-only then full" `Quick test_mem_only_then_full_preserves_data;
          Alcotest.test_case "unreferenced sysv shm" `Quick test_unreferenced_sysv_shm_survives;
          Alcotest.test_case "periodic driver" `Quick test_run_for_takes_periodic_checkpoints;
          Alcotest.test_case "stop-window stats invariant" `Quick
            test_stop_window_stats_invariant;
        ] );
      ( "verified restore",
        [
          Alcotest.test_case "manifest verify and fallback" `Quick
            test_verify_epoch_and_fallback;
          Alcotest.test_case "empty store" `Quick test_restore_verified_empty_store;
          Alcotest.test_case "fallback across two corrupt epochs" `Quick
            test_restore_fallback_two_corrupt_epochs;
        ] );
      ( "high availability",
        [
          Alcotest.test_case "failover before replicate" `Quick
            test_ha_failover_before_replicate;
          Alcotest.test_case "lag recovers shipped epoch" `Quick
            test_ha_lag_recovers_shipped_epoch;
          Alcotest.test_case "double failover idempotent" `Quick
            test_ha_double_failover_idempotent;
          Alcotest.test_case "replication over lossy link" `Quick
            test_ha_replication_over_lossy_link;
          Alcotest.test_case "partition outwaited" `Quick test_ha_partition_outwaited;
          Alcotest.test_case "standby rejects divergent state" `Quick
            test_ha_standby_rejects_divergent_state;
          Alcotest.test_case "backoff time accounted" `Quick
            test_ha_backoff_accounted;
        ] );
      ( "quorum replication",
        [
          Alcotest.test_case "pipeline all current" `Quick
            test_rset_pipeline_all_current;
          Alcotest.test_case "minority kill and election" `Quick
            test_rset_minority_kill_and_election;
          Alcotest.test_case "evict and rejoin" `Quick test_rset_evict_and_rejoin;
          Alcotest.test_case "divergent standby evicted" `Quick
            test_rset_divergent_standby_evicted;
          Alcotest.test_case "live migration" `Quick test_rset_migration_live;
        ] );
      ("properties", qcheck_tests @ roundtrip_qcheck_tests);
    ]
