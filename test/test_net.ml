module Link = Aurora_net.Link

let payload = String.init 200 (fun i -> Char.chr (i mod 256))

let transmit_n link ~n =
  List.concat
    (List.init n (fun i ->
         Link.transmit link ~now:(i * 1_000_000) ~payload ()))

let test_faultfree_delivery () =
  let link = Link.create () in
  let ds = Link.transmit link ~now:0 ~payload () in
  (match ds with
  | [ d ] ->
      Alcotest.(check string) "payload intact" payload d.Link.d_payload;
      Alcotest.(check bool) "arrival after send" true (d.Link.d_arrival > 0)
  | _ -> Alcotest.fail "expected exactly one delivery");
  let s = Link.stats link in
  Alcotest.(check int) "sent" 1 s.Link.l_sent;
  Alcotest.(check int) "delivered" 1 s.Link.l_delivered;
  Alcotest.(check int) "dropped" 0 s.Link.l_dropped

let test_deterministic_replay () =
  let run () =
    let link = Link.create () in
    Link.set_faults link ~seed:7 (Link.lossy_profile 0.3);
    List.map
      (fun (d : Link.delivery) -> (d.Link.d_arrival, d.Link.d_payload))
      (transmit_n link ~n:50)
  in
  Alcotest.(check bool) "same seed, same deliveries" true (run () = run ())

let test_fault_kinds_observed () =
  let link = Link.create () in
  Link.set_faults link ~seed:11 (Link.lossy_profile 0.3);
  let ds = transmit_n link ~n:200 in
  let s = Link.stats link in
  Alcotest.(check int) "sent" 200 s.Link.l_sent;
  Alcotest.(check bool) "drops happened" true (s.Link.l_dropped > 0);
  Alcotest.(check bool) "duplicates happened" true (s.Link.l_duplicated > 0);
  Alcotest.(check bool) "corruptions happened" true (s.Link.l_corrupted > 0);
  Alcotest.(check bool) "reorders happened" true (s.Link.l_reordered > 0);
  Alcotest.(check int) "accounting adds up" s.Link.l_delivered (List.length ds);
  Alcotest.(check int) "dropped + delivered - dup = sent" s.Link.l_sent
    (s.Link.l_dropped + s.Link.l_delivered - s.Link.l_duplicated);
  (* Corrupted copies differ from the original in at least one byte. *)
  Alcotest.(check bool) "some payload differs" true
    (List.exists (fun d -> d.Link.d_payload <> payload) ds)

let test_duplicate_copies_are_late () =
  let link = Link.create () in
  Link.set_faults link ~seed:3
    { Link.no_faults with p_duplicate = 1.0 };
  match Link.transmit link ~now:0 ~payload () with
  | [ a; b ] ->
      Alcotest.(check bool) "second copy strictly later" true
        (b.Link.d_arrival > a.Link.d_arrival);
      Alcotest.(check string) "same bytes" a.Link.d_payload b.Link.d_payload
  | ds -> Alcotest.fail (Printf.sprintf "expected 2 deliveries, got %d" (List.length ds))

let test_partition_blackout_and_heal () =
  let link = Link.create () in
  Link.partition link ~now:1_000 ~duration:10_000;
  Alcotest.(check int) "heal time" 11_000 (Link.partitioned_until link);
  Alcotest.(check (list (pair string int))) "inside the window: nothing" []
    (List.map
       (fun (d : Link.delivery) -> (d.Link.d_payload, d.Link.d_arrival))
       (Link.transmit link ~now:5_000 ~payload ()));
  Alcotest.(check int) "partition drop counted" 1
    (Link.stats link).Link.l_partition_drops;
  Alcotest.(check int) "after the heal: delivery" 1
    (List.length (Link.transmit link ~now:20_000 ~payload ()))

let test_reset_clears_state_and_replays () =
  let link = Link.create () in
  Link.set_faults link ~seed:7 (Link.lossy_profile 0.3);
  Link.partition link ~now:0 ~duration:1_000_000;
  Alcotest.(check bool) "partition active" true (Link.partitioned_until link > 0);
  Link.reset link;
  Alcotest.(check int) "partition cleared" 0 (Link.partitioned_until link);
  let first =
    List.map (fun (d : Link.delivery) -> d.Link.d_arrival) (transmit_n link ~n:30)
  in
  Alcotest.(check bool) "stats accumulated" true ((Link.stats link).Link.l_sent > 0);
  Link.reset link;
  Alcotest.(check int) "counters cleared" 0 (Link.stats link).Link.l_sent;
  (* Same seed, same queue state: the decision sequence replays, so the
     whole run (including resource queueing) is reproducible. *)
  let second =
    List.map (fun (d : Link.delivery) -> d.Link.d_arrival) (transmit_n link ~n:30)
  in
  Alcotest.(check bool) "decision sequence replays" true (first = second)

let test_partition_at_scripted () =
  let link = Link.create () in
  Link.partition_at link ~at:10_000 ~duration:5_000;
  Link.partition_at link ~at:40_000 ~duration:2_000;
  Alcotest.(check (list (pair int int)))
    "windows recorded"
    [ (10_000, 15_000); (40_000, 42_000) ]
    (Link.scheduled_partitions link);
  (* Before the window: clean delivery. *)
  Alcotest.(check int) "before window delivers" 1
    (List.length (Link.transmit link ~now:0 ~payload ()));
  (* Inside the window: the link is dark, no dice involved. *)
  Alcotest.(check int) "inside window drops" 0
    (List.length (Link.transmit link ~now:12_000 ~payload ()));
  Alcotest.(check int) "partition drop counted" 1
    (Link.stats link).Link.l_partition_drops;
  (* After the heal: clean again, until the second window. *)
  Alcotest.(check int) "after heal delivers" 1
    (List.length (Link.transmit link ~now:20_000 ~payload ()));
  Alcotest.(check int) "second window drops" 0
    (List.length (Link.transmit link ~now:41_000 ~payload ()))

let test_partition_at_survives_reset () =
  (* Scripted windows are part of the deterministic scenario, like the
     fault profile: reset replays the run, it does not unschedule. *)
  let link = Link.create () in
  Link.partition_at link ~at:5_000 ~duration:5_000;
  Alcotest.(check int) "window active" 0
    (List.length (Link.transmit link ~now:6_000 ~payload ()));
  Link.reset link;
  Alcotest.(check (list (pair int int)))
    "still scheduled after reset"
    [ (5_000, 10_000) ]
    (Link.scheduled_partitions link);
  Alcotest.(check int) "window still active after reset" 0
    (List.length (Link.transmit link ~now:6_000 ~payload ()));
  Alcotest.(check int) "outside window delivers" 1
    (List.length (Link.transmit link ~now:20_000 ~payload ()))

let test_retransmit_marked () =
  let link = Link.create () in
  ignore (Link.transmit link ~now:0 ~payload ());
  ignore (Link.transmit link ~retransmit:true ~now:1_000_000 ~payload ());
  let s = Link.stats link in
  Alcotest.(check int) "sent counts both" 2 s.Link.l_sent;
  Alcotest.(check int) "one retransmit" 1 s.Link.l_retransmits

let () =
  Alcotest.run "aurora_net"
    [
      ( "link faults",
        [
          Alcotest.test_case "fault-free delivery" `Quick test_faultfree_delivery;
          Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
          Alcotest.test_case "fault kinds observed" `Quick test_fault_kinds_observed;
          Alcotest.test_case "duplicate copies late" `Quick test_duplicate_copies_are_late;
          Alcotest.test_case "partition blackout" `Quick test_partition_blackout_and_heal;
          Alcotest.test_case "reset clears and replays" `Quick
            test_reset_clears_state_and_replays;
          Alcotest.test_case "retransmit marked" `Quick test_retransmit_marked;
          Alcotest.test_case "scripted partition windows" `Quick
            test_partition_at_scripted;
          Alcotest.test_case "scripted windows survive reset" `Quick
            test_partition_at_survives_reset;
        ] );
    ]
