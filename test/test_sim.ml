module Clock = Aurora_sim.Clock
module Event_queue = Aurora_sim.Event_queue
module Resource = Aurora_sim.Resource
module Cost = Aurora_sim.Cost

let test_clock_advances () =
  let c = Clock.create () in
  Alcotest.(check int) "starts at zero" 0 (Clock.now c);
  Clock.advance c 100;
  Alcotest.(check int) "advanced" 100 (Clock.now c);
  Clock.advance_to c 50;
  Alcotest.(check int) "advance_to past is no-op" 100 (Clock.now c);
  Clock.advance_to c 400;
  Alcotest.(check int) "advance_to future" 400 (Clock.now c);
  Alcotest.(check int) "elapsed" 300 (Clock.elapsed_since c 100)

let test_eventq_ordering () =
  let q = Event_queue.create () in
  Event_queue.schedule q ~time:30 "c";
  Event_queue.schedule q ~time:10 "a";
  Event_queue.schedule q ~time:20 "b";
  let order = List.init 3 (fun _ -> Option.get (Event_queue.pop q)) in
  Alcotest.(check (list (pair int string)))
    "time order"
    [ (10, "a"); (20, "b"); (30, "c") ]
    order

let test_eventq_fifo_ties () =
  let q = Event_queue.create () in
  Event_queue.schedule q ~time:5 "first";
  Event_queue.schedule q ~time:5 "second";
  Event_queue.schedule q ~time:5 "third";
  let order = List.init 3 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list string)) "insertion order" [ "first"; "second"; "third" ] order

let test_eventq_run_until () =
  let q = Event_queue.create () in
  let clock = Clock.create () in
  let seen = ref [] in
  Event_queue.schedule q ~time:10 1;
  Event_queue.schedule q ~time:20 2;
  Event_queue.schedule q ~time:99 3;
  Event_queue.run q ~clock ~handler:(fun _ v -> seen := v :: !seen) ~until:50;
  Alcotest.(check (list int)) "only events before the bound" [ 2; 1 ] !seen;
  Alcotest.(check int) "clock follows events" 20 (Clock.now clock);
  Alcotest.(check int) "late event stays queued" 1 (Event_queue.length q)

let test_eventq_handler_schedules () =
  let q = Event_queue.create () in
  let clock = Clock.create () in
  let count = ref 0 in
  Event_queue.schedule q ~time:1 ();
  Event_queue.run q ~clock
    ~handler:(fun time () ->
      incr count;
      if !count < 5 then Event_queue.schedule q ~time:(time + 10) ())
    ~until:1000;
  Alcotest.(check int) "cascade ran" 5 !count;
  Alcotest.(check int) "final time" 41 (Clock.now clock)

let test_eventq_grows () =
  let q = Event_queue.create () in
  for i = 0 to 499 do
    Event_queue.schedule q ~time:(500 - i) i
  done;
  Alcotest.(check int) "length" 500 (Event_queue.length q);
  let prev = ref min_int in
  let sorted = ref true in
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (t, _) ->
        if t < !prev then sorted := false;
        prev := t;
        drain ()
  in
  drain ();
  Alcotest.(check bool) "drained in order" true !sorted

let test_resource_queueing () =
  let r = Resource.create ~name:"dev" in
  let c1 = Resource.submit r ~now:0 ~duration:100 in
  Alcotest.(check int) "first starts immediately" 100 c1;
  let c2 = Resource.submit r ~now:10 ~duration:100 in
  Alcotest.(check int) "second queues" 200 c2;
  let c3 = Resource.submit r ~now:500 ~duration:50 in
  Alcotest.(check int) "idle gap resets" 550 c3

let test_resource_reset () =
  let r = Resource.create ~name:"dev" in
  ignore (Resource.submit r ~now:0 ~duration:1000);
  Resource.reset r;
  Alcotest.(check int) "reset" 0 (Resource.next_free r)

let test_resource_busy_until () =
  let r = Resource.create ~name:"d" in
  Alcotest.(check int) "idle" 0 (Resource.busy_until r);
  ignore (Resource.submit r ~now:5 ~duration:10);
  Alcotest.(check int) "busy" 15 (Resource.busy_until r);
  Alcotest.(check string) "name" "d" (Resource.name r)

(* Regression: per-submission queue wait must come from the submission's
   own (start, completion) pair, not from reading [busy_until] around the
   call.  With two consumers sharing the queue, busy_until-derived wait
   bills consumer A's backlog to consumer B — exactly the cross-tenant
   misattribution the fleet spans exposed. *)
let test_resource_submit_timed () =
  let r = Resource.create ~name:"d" in
  (* Idle queue: starts immediately, zero wait. *)
  let s1, c1 = Resource.submit_timed r ~now:100 ~duration:50 in
  Alcotest.(check int) "idle start" 100 s1;
  Alcotest.(check int) "idle completion" 150 c1;
  Alcotest.(check int) "idle wait" 0 (s1 - 100);
  (* Tenant A queues a large burst... *)
  let s2, c2 = Resource.submit_timed r ~now:110 ~duration:1000 in
  Alcotest.(check int) "A waits behind first job" 40 (s2 - 110);
  Alcotest.(check int) "A completion" 1150 c2;
  (* ...and tenant B's own wait is the full backlog at ITS submit time,
     not whatever busy_until happened to read before A submitted. *)
  let s3, c3 = Resource.submit_timed r ~now:120 ~duration:10 in
  Alcotest.(check int) "B start" 1150 s3;
  Alcotest.(check int) "B wait is own delay" 1030 (s3 - 120);
  Alcotest.(check int) "B completion" 1160 c3;
  (* submit is submit_timed's completion. *)
  let c4 = Resource.submit r ~now:0 ~duration:5 in
  Alcotest.(check int) "submit = snd submit_timed" 1165 c4

let test_cost_transfer () =
  (* 1 GiB at 1 GiB/s = 1 second. *)
  let gib = 1024 * 1024 * 1024 in
  let ns = Cost.transfer_time ~bandwidth:gib gib in
  Alcotest.(check int) "1s" 1_000_000_000 ns;
  Alcotest.(check int) "zero bytes" 0 (Cost.transfer_time ~bandwidth:gib 0)

let test_cost_journal_anchor () =
  (* The calibration target from Table 5: one 4 KiB journal page in ~28 us. *)
  let t =
    Cost.nvme_sync_write_latency
    + Cost.transfer_time ~bandwidth:Cost.journal_stream_bandwidth 4096
  in
  Alcotest.(check bool)
    (Printf.sprintf "4KiB journal ~28us (got %dns)" t)
    true
    (t > 25_000 && t < 31_000)

let test_cost_criu_anchor () =
  (* Table 1: copying 500 MB at the CRIU rate takes ~413 ms. *)
  let t = Cost.transfer_time ~bandwidth:Cost.criu_copy_bandwidth (500 * 1024 * 1024) in
  Alcotest.(check bool)
    (Printf.sprintf "500MB CRIU copy ~400ms (got %dns)" t)
    true
    (t > 350_000_000 && t < 480_000_000)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"resource completions are monotone" ~count:300
         QCheck.(list_of_size (Gen.int_range 1 30) (pair (int_range 0 1000) (int_range 0 100)))
         (fun jobs ->
           let r = Resource.create ~name:"x" in
           let jobs = List.sort (fun (a, _) (b, _) -> compare a b) jobs in
           let completions = List.map (fun (now, d) -> Resource.submit r ~now ~duration:d) jobs in
           let rec monotone = function
             | a :: (b :: _ as rest) -> a <= b && monotone rest
             | _ -> true
           in
           monotone completions));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"event queue pops in time order" ~count:300
         QCheck.(list_of_size (Gen.int_range 0 100) (int_range 0 10_000))
         (fun times ->
           let q = Event_queue.create () in
           List.iter (fun time -> Event_queue.schedule q ~time ()) times;
           let rec drain prev =
             match Event_queue.pop q with
             | None -> true
             | Some (t, ()) -> t >= prev && drain t
           in
           drain min_int));
  ]

let () =
  Alcotest.run "aurora_sim"
    [
      ("clock", [ Alcotest.test_case "advance" `Quick test_clock_advances ]);
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_eventq_ordering;
          Alcotest.test_case "fifo ties" `Quick test_eventq_fifo_ties;
          Alcotest.test_case "run until" `Quick test_eventq_run_until;
          Alcotest.test_case "handler schedules" `Quick test_eventq_handler_schedules;
          Alcotest.test_case "heap growth" `Quick test_eventq_grows;
        ] );
      ( "resource",
        [
          Alcotest.test_case "queueing" `Quick test_resource_queueing;
          Alcotest.test_case "reset" `Quick test_resource_reset;
          Alcotest.test_case "busy until" `Quick test_resource_busy_until;
          Alcotest.test_case "submit timed attribution" `Quick test_resource_submit_timed;
        ] );
      ( "cost",
        [
          Alcotest.test_case "transfer time" `Quick test_cost_transfer;
          Alcotest.test_case "journal anchor" `Quick test_cost_journal_anchor;
          Alcotest.test_case "criu anchor" `Quick test_cost_criu_anchor;
        ] );
      ("properties", qcheck_tests);
    ]
