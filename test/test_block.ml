module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost
module Device = Aurora_block.Device
module Fault = Aurora_block.Fault
module Striped = Aurora_block.Striped

let bytes_of s = Bytes.of_string s

let test_device_write_read () =
  let d = Device.create ~name:"nvme0" in
  let clock = Clock.create () in
  ignore (Device.write d ~now:0 ~off:100 (bytes_of "hello"));
  let got = Device.read d ~clock ~off:100 ~len:5 in
  Alcotest.(check string) "readback" "hello" (Bytes.to_string got)

let test_device_unwritten_zero () =
  let d = Device.create ~name:"nvme0" in
  let got = Device.read_nocharge d ~off:8192 ~len:4 in
  Alcotest.(check string) "zeroes" "\000\000\000\000" (Bytes.to_string got)

let test_device_cross_sector () =
  let d = Device.create ~name:"nvme0" in
  let data = String.init 10000 (fun i -> Char.chr (i mod 256)) in
  ignore (Device.write d ~now:0 ~off:4000 (bytes_of data));
  let got = Device.read_nocharge d ~off:4000 ~len:10000 in
  Alcotest.(check string) "cross-sector roundtrip" data (Bytes.to_string got)

let test_device_overwrite_order () =
  let d = Device.create ~name:"nvme0" in
  let clock = Clock.create () in
  ignore (Device.write d ~now:0 ~off:0 (bytes_of "aaaa"));
  ignore (Device.write d ~now:0 ~off:2 (bytes_of "bb"));
  Device.settle d ~clock;
  let got = Device.read_nocharge d ~off:0 ~len:4 in
  Alcotest.(check string) "last writer wins" "aabb" (Bytes.to_string got)

let test_device_crash_discards_inflight () =
  let d = Device.create ~name:"nvme0" in
  let c1 = Device.write d ~now:0 ~off:0 (bytes_of "durable!") in
  (* Second write submitted just before the crash: still in the queue. *)
  let _c2 = Device.write d ~now:c1 ~off:0 (bytes_of "vanishes") in
  Device.crash d ~now:c1;
  let got = Device.read_nocharge d ~off:0 ~len:8 in
  Alcotest.(check string) "first write survived" "durable!" (Bytes.to_string got)

let test_device_crash_at_zero_loses_all () =
  let d = Device.create ~name:"nvme0" in
  ignore (Device.write d ~now:0 ~off:0 (bytes_of "gone"));
  Device.crash d ~now:0;
  let got = Device.read_nocharge d ~off:0 ~len:4 in
  Alcotest.(check string) "nothing durable" "\000\000\000\000" (Bytes.to_string got)

let test_device_write_timing () =
  let d = Device.create ~name:"nvme0" in
  let c = Device.write d ~now:0 ~off:0 (Bytes.make 4096 'x') in
  let expected =
    Cost.nvme_write_latency + Cost.transfer_time ~bandwidth:Cost.nvme_device_bandwidth 4096
  in
  Alcotest.(check int) "latency + transfer" expected c

let test_device_queueing_serializes () =
  let d = Device.create ~name:"nvme0" in
  let c1 = Device.write d ~now:0 ~off:0 (Bytes.make 4096 'x') in
  let c2 = Device.write d ~now:0 ~off:4096 (Bytes.make 4096 'y') in
  Alcotest.(check bool) "second queues behind first" true (c2 > c1)

let test_device_charge_parameter () =
  let d = Device.create ~name:"nvme0" in
  (* 64 payload bytes charged as a full logical page. *)
  let c = Device.write ~charge:4096 d ~now:0 ~off:0 (Bytes.make 64 'p') in
  let expected =
    Cost.nvme_write_latency + Cost.transfer_time ~bandwidth:Cost.nvme_device_bandwidth 4096
  in
  Alcotest.(check int) "charged logical size" expected c

let test_device_stats () =
  let d = Device.create ~name:"nvme0" in
  ignore (Device.write d ~now:0 ~off:0 (Bytes.make 100 'x'));
  ignore (Device.write d ~now:0 ~off:200 (Bytes.make 50 'y'));
  Alcotest.(check int) "bytes written" 150 (Device.bytes_written d);
  Alcotest.(check int) "write ops" 2 (Device.write_ops d);
  Device.reset_stats d;
  Alcotest.(check int) "reset" 0 (Device.bytes_written d)

let test_striped_roundtrip () =
  let s = Striped.create () in
  let clock = Clock.create () in
  let data = String.init 300_000 (fun i -> Char.chr ((i * 7) mod 256)) in
  ignore (Striped.write s ~now:0 ~off:1234 (bytes_of data));
  Striped.settle s ~clock;
  let got = Striped.read_nocharge s ~off:1234 ~len:300_000 in
  Alcotest.(check bool) "multi-stripe roundtrip" true (Bytes.to_string got = data)

let test_striped_parallelism () =
  (* A 1 MiB write across 4 devices should complete much faster than on 1. *)
  let striped = Striped.create ~devices:4 () in
  let single = Striped.create ~devices:1 () in
  let big = Bytes.make (1024 * 1024) 'z' in
  let c4 = Striped.write striped ~now:0 ~off:0 big in
  let c1 = Striped.write single ~now:0 ~off:0 big in
  Alcotest.(check bool)
    (Printf.sprintf "4-way faster (%d vs %d)" c4 c1)
    true
    (c4 * 3 < c1 * 2)

let test_striped_crash () =
  let s = Striped.create () in
  let c1 = Striped.write s ~now:0 ~off:0 (bytes_of "before-crash-data") in
  let _ = Striped.write s ~now:c1 ~off:0 (bytes_of "after-crash-write") in
  Striped.crash s ~now:c1;
  let got = Striped.read_nocharge s ~off:0 ~len:17 in
  Alcotest.(check string) "durable data survives" "before-crash-data" (Bytes.to_string got)

let test_striped_charge_fragments () =
  let s = Striped.create () in
  let clock = Clock.create () in
  (* 64-byte payload standing for a 4 KiB page. *)
  ignore (Striped.write ~charge:4096 s ~now:0 ~off:65536 (Bytes.make 64 'q'));
  Striped.settle s ~clock;
  let got = Striped.read_nocharge s ~off:65536 ~len:64 in
  Alcotest.(check string) "payload stored" (String.make 64 'q') (Bytes.to_string got)

(* One vectored extent spanning several stripes: every segment lands at
   its extent-relative offset (including segments crossing stripe
   boundaries) and the gaps stay zero. *)
let test_write_vec_roundtrip () =
  let s = Striped.create () in
  let clock = Clock.create () in
  let stripe = Cost.nvme_stripe_size in
  let seg rel str = (rel, Bytes.of_string str) in
  let boundary = String.init 64 (fun i -> Char.chr (65 + i)) in
  let segments =
    [|
      seg 0 "head";
      seg 4096 "mid-block";
      (* Crosses the stripe-0/stripe-1 device boundary. *)
      seg (stripe - 32) boundary;
      seg (3 * stripe) "far";
    |]
  in
  ignore (Striped.write_vec s ~now:0 ~off:0 ~len:(4 * stripe) segments);
  Striped.settle s ~clock;
  let check name off expect =
    Alcotest.(check string)
      name expect
      (Bytes.to_string (Striped.read_nocharge s ~off ~len:(String.length expect)))
  in
  check "head" 0 "head";
  check "mid-block" 4096 "mid-block";
  check "stripe boundary" (stripe - 32) boundary;
  check "far stripe" (3 * stripe) "far";
  check "gap stays zero" 64 "\000\000\000\000"

(* Unsorted segments are handled (sorted on a copy) identically. *)
let test_write_vec_unsorted () =
  let s = Striped.create () in
  let clock = Clock.create () in
  let segments = [| (8192, Bytes.of_string "bbbb"); (0, Bytes.of_string "aaaa") |] in
  ignore (Striped.write_vec s ~now:0 ~off:0 ~len:16384 segments);
  Striped.settle s ~clock;
  Alcotest.(check string) "low segment" "aaaa"
    (Bytes.to_string (Striped.read_nocharge s ~off:0 ~len:4));
  Alcotest.(check string) "high segment" "bbbb"
    (Bytes.to_string (Striped.read_nocharge s ~off:8192 ~len:4))

(* The whole point of the coalesced flush: an extent costs one submission
   per member device, however many blocks it covers, while the per-block
   path costs one per block — and the single trailing latency makes the
   extent finish sooner. *)
let test_write_vec_one_submission_per_device () =
  let stripe = Cost.nvme_stripe_size in
  let nblocks = (8 * stripe) / 4096 in
  let segments =
    Array.init nblocks (fun i -> (i * 4096, Bytes.make 64 'v'))
  in
  let vec = Striped.create () in
  let cv = Striped.write_vec vec ~now:0 ~off:0 ~len:(8 * stripe) segments in
  Alcotest.(check int) "one op per device" 4 (Striped.write_ops vec);
  let plain = Striped.create () in
  let cp = ref 0 in
  Array.iter
    (fun (rel, data) ->
      let c = Striped.write ~charge:4096 plain ~now:0 ~off:rel data in
      if c > !cp then cp := c)
    segments;
  Alcotest.(check int) "one op per block" nblocks (Striped.write_ops plain);
  (* Latency trails the queue in this model, so a deep per-block queue
     already streams at bandwidth: the extent's virtual time matches it
     up to per-call rounding of transfer_time.  The batching win is the
     submission count above (per-command host overhead). *)
  Alcotest.(check bool) "extent streams at device bandwidth" true
    (cv <= !cp + nblocks)

(* Crash semantics: an extent's segments share one completion time — a
   crash before it discards all of them, a crash at it keeps all. *)
let test_write_vec_crash_atomicity () =
  let run crash_at =
    let s = Striped.create () in
    let segments = [| (0, Bytes.of_string "aaaa"); (4096, Bytes.of_string "bbbb") |] in
    let c = Striped.write_vec s ~now:0 ~off:0 ~len:8192 segments in
    Striped.crash s ~now:(crash_at c);
    ( Bytes.to_string (Striped.read_nocharge s ~off:0 ~len:4),
      Bytes.to_string (Striped.read_nocharge s ~off:4096 ~len:4) )
  in
  let a, b = run (fun c -> c) in
  Alcotest.(check (pair string string)) "crash at completion keeps both"
    ("aaaa", "bbbb") (a, b);
  let a, b = run (fun c -> c - 1) in
  Alcotest.(check (pair string string)) "crash before completion loses both"
    ("\000\000\000\000", "\000\000\000\000") (a, b)

(* Crash models a reboot: host-side counters restart with the machine, and
   with the in-flight queue discarded nothing is pending, so durable_until
   must read 0 (regression: stats used to survive the crash). *)
let test_crash_resets_stats () =
  let d = Device.create ~name:"nvme0" in
  let c = Device.write d ~now:0 ~off:0 (Bytes.make 4096 'x') in
  ignore (Device.write d ~now:c ~off:4096 (Bytes.make 4096 'y'));
  Alcotest.(check int) "ops before crash" 2 (Device.write_ops d);
  Alcotest.(check bool) "pending durability" true (Device.durable_until d > 0);
  Device.crash d ~now:c;
  Alcotest.(check int) "write ops reset" 0 (Device.write_ops d);
  Alcotest.(check int) "bytes written reset" 0 (Device.bytes_written d);
  Alcotest.(check int) "bytes read reset" 0 (Device.bytes_read d);
  Alcotest.(check int) "nothing in flight" 0 (Device.durable_until d);
  (* The durable prefix itself survives the reboot. *)
  Alcotest.(check string) "durable data kept" (String.make 4 'x')
    (Bytes.to_string (Device.read_nocharge d ~off:0 ~len:4))

(* import_sectors replaces a used device's state wholesale: stale committed
   sectors, queued writes and counters must all go, exactly as crash does
   (regression: importing over a device with pending writes used to leak
   both the old bytes and the old accounting). *)
let test_import_sectors_resets_used_device () =
  let clock = Clock.create () in
  let src = Device.create ~name:"src" in
  ignore (Device.write src ~now:0 ~off:0 (Bytes.of_string "imported"));
  Device.settle src ~clock;
  let image = Device.export_sectors src in
  let dst = Device.create ~name:"dst" in
  ignore (Device.write dst ~now:0 ~off:0 (Bytes.of_string "old-committed"));
  Device.settle dst ~clock;
  (* Leave a write in flight so the import has a queue to discard. *)
  ignore (Device.write dst ~now:(Clock.now clock) ~off:8192 (Bytes.of_string "queued"));
  Device.import_sectors dst image;
  Alcotest.(check string) "imported bytes visible" "imported"
    (Bytes.to_string (Device.read_nocharge dst ~off:0 ~len:8));
  Alcotest.(check string) "stale committed bytes gone" "\000\000\000\000\000"
    (Bytes.to_string (Device.read_nocharge dst ~off:8 ~len:5));
  Alcotest.(check string) "queued write discarded" "\000\000\000\000\000\000"
    (Bytes.to_string (Device.read_nocharge dst ~off:8192 ~len:6));
  Alcotest.(check int) "stats reset" 0 (Device.write_ops dst);
  Alcotest.(check int) "nothing in flight" 0 (Device.durable_until dst)

(* Torn vectored writes: a fault that keeps only a prefix of each device's
   submission tears the extent along per-device segment order — the lowest
   device-local offsets survive, later segments vanish — and tearing one
   member of a stripe-spanning extent leaves the other members' data
   intact (multi-device partial landing). *)
let test_write_vec_torn_prefix_per_device () =
  let stripe = Cost.nvme_stripe_size in
  let s = Striped.create () in
  let f = Fault.create () in
  f.Fault.on_write <- (fun _ -> Fault.Torn 1);
  Striped.set_fault s (Some f);
  (* Two segments per member device; deliberately unsorted input, so the
     torn prefix also proves segments are sorted before tearing. *)
  let seg d k = ((d * stripe) + (k * 4096), Bytes.make 64 (Char.chr (65 + (2 * d) + k))) in
  let segments = [| seg 2 1; seg 0 0; seg 3 0; seg 1 1; seg 0 1; seg 2 0; seg 1 0; seg 3 1 |] in
  let c = Striped.write_vec s ~now:0 ~off:0 ~len:(4 * stripe) segments in
  Striped.set_fault s None;
  Striped.crash s ~now:c;
  for d = 0 to 3 do
    let first = Bytes.to_string (Striped.read_nocharge s ~off:(d * stripe) ~len:64) in
    let second =
      Bytes.to_string (Striped.read_nocharge s ~off:((d * stripe) + 4096) ~len:64)
    in
    Alcotest.(check string)
      (Printf.sprintf "device %d keeps its lowest-offset segment" d)
      (String.make 64 (Char.chr (65 + (2 * d)))) first;
    Alcotest.(check string)
      (Printf.sprintf "device %d loses its later segment" d)
      (String.make 64 '\000') second
  done

(* Dropping one member's submission loses exactly that member's slice of a
   stripe-spanning extent, including the tail of a segment that crosses
   the stripe boundary mid-payload. *)
let test_write_vec_drop_one_device () =
  let stripe = Cost.nvme_stripe_size in
  let s = Striped.create () in
  let f = Fault.create () in
  f.Fault.on_write <-
    (fun (info : Fault.write_info) ->
      if info.w_dev = "nvme1" then Fault.Drop else Fault.Land);
  Striped.set_fault s (Some f);
  (* One segment crossing the stripe-0/stripe-1 boundary: its head lands
     on nvme0, its tail is on the dropped device. *)
  let boundary = Bytes.of_string (String.init 64 (fun i -> Char.chr (97 + (i mod 26)))) in
  let segments = [| (stripe - 32, boundary); ((2 * stripe) + 100, Bytes.make 16 'z') |] in
  let c = Striped.write_vec s ~now:0 ~off:0 ~len:(3 * stripe) segments in
  Striped.set_fault s None;
  Striped.crash s ~now:c;
  Alcotest.(check string) "head half on nvme0 landed"
    (String.init 32 (fun i -> Char.chr (97 + (i mod 26))))
    (Bytes.to_string (Striped.read_nocharge s ~off:(stripe - 32) ~len:32));
  Alcotest.(check string) "tail half on dropped nvme1 lost" (String.make 32 '\000')
    (Bytes.to_string (Striped.read_nocharge s ~off:stripe ~len:32));
  Alcotest.(check string) "nvme2 segment landed" (String.make 16 'z')
    (Bytes.to_string (Striped.read_nocharge s ~off:((2 * stripe) + 100) ~len:16))

let test_image_save_load () =
  let s = Striped.create () in
  let clock = Clock.create () in
  let data = String.init 200_000 (fun i -> Char.chr ((i * 13) mod 256)) in
  ignore (Striped.write s ~now:0 ~off:5000 (Bytes.of_string data));
  Clock.advance clock 123_456_789;
  let path = Filename.temp_file "aurora" ".img" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Striped.save_file s ~clock path;
      let s2, saved_time = Striped.load_file path in
      Alcotest.(check int) "virtual time persisted" (Clock.now clock) saved_time;
      Alcotest.(check bool) "bytes identical" true
        (Bytes.to_string (Striped.read_nocharge s2 ~off:5000 ~len:200_000) = data))

let test_image_bad_file () =
  let path = Filename.temp_file "aurora" ".img" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not an image";
      close_out oc;
      Alcotest.(check bool) "rejected" true
        (try
           ignore (Striped.load_file path);
           false
         with Failure _ | End_of_file -> true))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"device write/read roundtrip" ~count:200
         QCheck.(pair (int_range 0 100_000) (string_of_size (Gen.int_range 1 5000)))
         (fun (off, data) ->
           let d = Device.create ~name:"q" in
           let clock = Clock.create () in
           ignore (Device.write d ~now:0 ~off (Bytes.of_string data));
           Device.settle d ~clock;
           Bytes.to_string (Device.read_nocharge d ~off ~len:(String.length data)) = data));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"striped write/read roundtrip across stripes" ~count:100
         QCheck.(pair (int_range 0 500_000) (string_of_size (Gen.int_range 1 200_000)))
         (fun (off, data) ->
           let s = Striped.create () in
           let clock = Clock.create () in
           ignore (Striped.write s ~now:0 ~off (Bytes.of_string data));
           Striped.settle s ~clock;
           Bytes.to_string (Striped.read_nocharge s ~off ~len:(String.length data)) = data));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"crash preserves prefix determinism" ~count:100
         QCheck.(list_of_size (Gen.int_range 1 20) (string_of_size (Gen.return 64)))
         (fun writes ->
           (* Writes land at disjoint offsets; crashing after the k-th
              completion preserves exactly the first k writes. *)
           let d = Device.create ~name:"q" in
           let completions =
             List.mapi
               (fun i data -> Device.write d ~now:0 ~off:(i * 64) (Bytes.of_string data))
               writes
           in
           let k = List.length writes / 2 in
           let kth = List.nth completions (max 0 (k - 1)) in
           Device.crash d ~now:(if k = 0 then -1 else kth);
           List.for_all2
             (fun i data ->
               let got = Bytes.to_string (Device.read_nocharge d ~off:(i * 64) ~len:64) in
               if i < k then got = data else got = String.make 64 '\000')
             (List.init (List.length writes) Fun.id)
             writes));
  ]

let () =
  Alcotest.run "aurora_block"
    [
      ( "device",
        [
          Alcotest.test_case "write/read" `Quick test_device_write_read;
          Alcotest.test_case "unwritten reads zero" `Quick test_device_unwritten_zero;
          Alcotest.test_case "cross-sector" `Quick test_device_cross_sector;
          Alcotest.test_case "overwrite order" `Quick test_device_overwrite_order;
          Alcotest.test_case "crash discards inflight" `Quick test_device_crash_discards_inflight;
          Alcotest.test_case "crash at zero" `Quick test_device_crash_at_zero_loses_all;
          Alcotest.test_case "write timing" `Quick test_device_write_timing;
          Alcotest.test_case "queue serializes" `Quick test_device_queueing_serializes;
          Alcotest.test_case "charge parameter" `Quick test_device_charge_parameter;
          Alcotest.test_case "stats" `Quick test_device_stats;
          Alcotest.test_case "crash resets stats" `Quick test_crash_resets_stats;
          Alcotest.test_case "import resets used device" `Quick
            test_import_sectors_resets_used_device;
        ] );
      ( "striped",
        [
          Alcotest.test_case "roundtrip" `Quick test_striped_roundtrip;
          Alcotest.test_case "parallelism" `Quick test_striped_parallelism;
          Alcotest.test_case "crash" `Quick test_striped_crash;
          Alcotest.test_case "charge fragments" `Quick test_striped_charge_fragments;
          Alcotest.test_case "write_vec roundtrip" `Quick test_write_vec_roundtrip;
          Alcotest.test_case "write_vec unsorted" `Quick test_write_vec_unsorted;
          Alcotest.test_case "write_vec submissions" `Quick
            test_write_vec_one_submission_per_device;
          Alcotest.test_case "write_vec crash atomicity" `Quick
            test_write_vec_crash_atomicity;
          Alcotest.test_case "write_vec torn prefix" `Quick
            test_write_vec_torn_prefix_per_device;
          Alcotest.test_case "write_vec dropped device" `Quick
            test_write_vec_drop_one_device;
          Alcotest.test_case "image save/load" `Quick test_image_save_load;
          Alcotest.test_case "image bad file" `Quick test_image_bad_file;
        ] );
      ("properties", qcheck_tests);
    ]
