module Clock = Aurora_sim.Clock
module Striped = Aurora_block.Striped
module Fault = Aurora_block.Fault
module Store = Aurora_objstore.Store
module Rng = Aurora_util.Rng
module Workload = Aurora_faultsim.Workload
module Model = Aurora_faultsim.Model
module Injector = Aurora_faultsim.Injector
module Torture = Aurora_faultsim.Torture

(* Acceptance criterion: the crash-point enumerator covers every device
   submission boundary of the standard multi-checkpoint + prune + journal
   workload — hundreds of crash points — and recovery matches the pure
   reference model at every one of them. *)
let test_enumerate_standard () =
  let r = Torture.enumerate Workload.standard in
  List.iter
    (fun f -> Printf.printf "FAIL %s\n%!" (Torture.pp_failure f))
    r.Torture.r_failures;
  Alcotest.(check int) "no failures" 0 (List.length r.Torture.r_failures);
  Alcotest.(check bool)
    (Printf.sprintf "covers many boundaries (%d)" r.Torture.r_boundaries)
    true
    (r.Torture.r_boundaries >= 50);
  Alcotest.(check int) "three crash modes per boundary"
    (3 * r.Torture.r_boundaries) r.Torture.r_crash_points;
  Alcotest.(check bool)
    (Printf.sprintf "hundreds of crash points (%d)" r.Torture.r_crash_points)
    true
    (r.Torture.r_crash_points >= 200)

(* The speculative arm rewrites every checkpoint into stale-prelude +
   newest-wins corrections — the validator's conflict-splice shape — and
   the enumerator must still find recovery consistent at every device
   submission boundary (never a half-spliced image). *)
let test_enumerate_speculative_arm () =
  let r = Torture.enumerate (Workload.speculative_arm Workload.standard) in
  List.iter
    (fun f -> Printf.printf "FAIL %s\n%!" (Torture.pp_failure f))
    r.Torture.r_failures;
  Alcotest.(check int) "no failures" 0 (List.length r.Torture.r_failures);
  Alcotest.(check bool)
    (Printf.sprintf "covers many boundaries (%d)" r.Torture.r_boundaries)
    true
    (r.Torture.r_boundaries >= 50)

(* Acceptance criterion: a deliberately injected ordering bug — the
   superblock submitted before the checkpoint record completes — must be
   caught by the same enumeration. *)
let test_enumerate_catches_misorder () =
  let r = Torture.enumerate ~misorder:true Workload.standard in
  Alcotest.(check bool)
    (Printf.sprintf "metadata-before-data bug caught (%d failures)"
       (List.length r.Torture.r_failures))
    true
    (r.Torture.r_failures <> [])

(* The reference model shadows the live store op for op, not only after
   recovery. *)
let test_model_tracks_live_store () =
  let clock = Clock.create () in
  let dev = Striped.create () in
  let store = Store.format ~dev ~clock in
  let runner = Workload.runner store in
  let model = Model.create () in
  List.iteri
    (fun i op ->
      Workload.run_op runner op;
      Model.apply model op;
      Alcotest.(check string)
        (Printf.sprintf "state after op %d (%s)" i (Workload.op_to_string op))
        (Model.render model) (Torture.observe store))
    Workload.standard

let test_sweep_read_errors () =
  let s = Torture.sweep ~seed:7 ~runs:3 (Injector.read_errors_profile 0.1) in
  Alcotest.(check int) "every observation matches the model" s.Torture.s_runs
    s.Torture.s_final_matches;
  Alcotest.(check bool)
    (Printf.sprintf "retries absorbed transient errors (%d)" s.Torture.s_read_faults)
    true
    (s.Torture.s_read_faults > 0)

let test_sweep_write_loss_terminates () =
  let s = Torture.sweep ~seed:11 ~runs:3 (Injector.write_loss_profile 0.15) in
  Alcotest.(check int) "every run classified" s.Torture.s_runs
    (s.Torture.s_final_matches + s.Torture.s_detected + s.Torture.s_degraded)

(* The crash_at injector fires at exactly the requested global boundary. *)
let test_crash_at_boundary_index () =
  let dev = Striped.create () in
  Striped.set_fault dev (Some (Injector.crash_at ~index:3));
  let raised =
    try
      for i = 0 to 9 do
        ignore (Striped.write dev ~now:0 ~off:(i * 4096) (Bytes.make 64 'x'))
      done;
      None
    with Fault.Crash_point { index; _ } -> Some index
  in
  Striped.set_fault dev None;
  Alcotest.(check (option int)) "third submission" (Some 3) raised;
  (* Submissions 1 and 2 were issued, 3 was not. *)
  Alcotest.(check int) "two writes issued" 2 (Striped.write_ops dev)

let derive_ops seed =
  Workload.gen_ops (Rng.create seed) ~n:14 ~max_oid:6 ~max_pages:12

(* State-machine property: random op sequences keep the real store and the
   pure model in lockstep, and a crash at full durability recovers to the
   model's final state byte for byte.  A failing seed prints the full
   replayable op trace. *)
let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"random ops: store shadows model, crash/recover matches final state"
         ~count:20
         (QCheck.make
            ~print:(fun seed ->
              Printf.sprintf "seed=%d, replayable op trace:\n%s" seed
                (Workload.ops_to_string (derive_ops seed)))
            QCheck.Gen.(int_bound 1_000_000))
         (fun seed ->
           let ops = derive_ops seed in
           let clock = Clock.create () in
           let dev = Striped.create () in
           let store = Store.format ~dev ~clock in
           let runner = Workload.runner store in
           let model = Model.create () in
           List.for_all
             (fun op ->
               Workload.run_op runner op;
               Model.apply model op;
               Torture.observe store = Model.render model)
             ops
           && begin
                Store.wait_durable store;
                Striped.settle dev ~clock;
                Striped.crash dev ~now:(Clock.now clock);
                let store2 = Store.recover ~dev ~clock:(Clock.create ()) in
                Torture.observe store2 = Model.render model
              end));
  ]

module Ha_torture = Aurora_faultsim.Ha_torture

let test_ha_torture_run () =
  let r = Ha_torture.run ~seed:2026 ~rounds:5 ~rate:0.08 () in
  Alcotest.(check bool) (Ha_torture.pp_run r) true r.Ha_torture.hr_ok

(* Same torture under speculative soft-quiesce checkpoints, with the
   mid-window mutator forcing conflict splices into every shipped epoch:
   failover must still land on a model-consistent epoch. *)
let test_ha_torture_run_speculative () =
  let r = Ha_torture.run ~speculative:true ~seed:2026 ~rounds:5 ~rate:0.08 () in
  Alcotest.(check bool) (Ha_torture.pp_run r) true r.Ha_torture.hr_ok

let test_ha_torture_negative_controls () =
  (match Ha_torture.negative_control ~seed:1 ~mode:Ha_torture.Meta with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("meta control: " ^ e));
  match Ha_torture.negative_control ~seed:1 ~mode:Ha_torture.Page with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("page control: " ^ e)

let () =
  Alcotest.run "aurora_faultsim"
    [
      ( "enumeration",
        [
          Alcotest.test_case "standard workload clean" `Quick test_enumerate_standard;
          Alcotest.test_case "speculative splice arm clean" `Quick
            test_enumerate_speculative_arm;
          Alcotest.test_case "catches misorder bug" `Quick test_enumerate_catches_misorder;
        ] );
      ( "model",
        [
          Alcotest.test_case "tracks live store" `Quick test_model_tracks_live_store;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "read errors absorbed" `Quick test_sweep_read_errors;
          Alcotest.test_case "write loss terminates" `Quick test_sweep_write_loss_terminates;
        ] );
      ( "injector",
        [ Alcotest.test_case "crash_at boundary" `Quick test_crash_at_boundary_index ] );
      ( "ha torture",
        [
          Alcotest.test_case "faulty run recovers model state" `Quick
            test_ha_torture_run;
          Alcotest.test_case "speculative run recovers model state" `Quick
            test_ha_torture_run_speculative;
          Alcotest.test_case "negative controls skip corruption" `Quick
            test_ha_torture_negative_controls;
        ] );
      ("properties", qcheck_tests);
    ]
