module Clock = Aurora_sim.Clock
module Striped = Aurora_block.Striped
module Fault = Aurora_block.Fault
module Store = Aurora_objstore.Store
module Rng = Aurora_util.Rng
module Workload = Aurora_faultsim.Workload
module Model = Aurora_faultsim.Model
module Injector = Aurora_faultsim.Injector
module Torture = Aurora_faultsim.Torture

(* Acceptance criterion: the crash-point enumerator covers every device
   submission boundary of the standard multi-checkpoint + prune + journal
   workload — hundreds of crash points — and recovery matches the pure
   reference model at every one of them. *)
let test_enumerate_standard () =
  let r = Torture.enumerate Workload.standard in
  List.iter
    (fun f -> Printf.printf "FAIL %s\n%!" (Torture.pp_failure f))
    r.Torture.r_failures;
  Alcotest.(check int) "no failures" 0 (List.length r.Torture.r_failures);
  Alcotest.(check bool)
    (Printf.sprintf "covers many boundaries (%d)" r.Torture.r_boundaries)
    true
    (r.Torture.r_boundaries >= 50);
  Alcotest.(check int) "three crash modes per boundary"
    (3 * r.Torture.r_boundaries) r.Torture.r_crash_points;
  Alcotest.(check bool)
    (Printf.sprintf "hundreds of crash points (%d)" r.Torture.r_crash_points)
    true
    (r.Torture.r_crash_points >= 200)

(* The speculative arm rewrites every checkpoint into stale-prelude +
   newest-wins corrections — the validator's conflict-splice shape — and
   the enumerator must still find recovery consistent at every device
   submission boundary (never a half-spliced image). *)
let test_enumerate_speculative_arm () =
  let r = Torture.enumerate (Workload.speculative_arm Workload.standard) in
  List.iter
    (fun f -> Printf.printf "FAIL %s\n%!" (Torture.pp_failure f))
    r.Torture.r_failures;
  Alcotest.(check int) "no failures" 0 (List.length r.Torture.r_failures);
  Alcotest.(check bool)
    (Printf.sprintf "covers many boundaries (%d)" r.Torture.r_boundaries)
    true
    (r.Torture.r_boundaries >= 50)

(* Acceptance criterion: a deliberately injected ordering bug — the
   superblock submitted before the checkpoint record completes — must be
   caught by the same enumeration. *)
let test_enumerate_catches_misorder () =
  let r = Torture.enumerate ~misorder:true Workload.standard in
  Alcotest.(check bool)
    (Printf.sprintf "metadata-before-data bug caught (%d failures)"
       (List.length r.Torture.r_failures))
    true
    (r.Torture.r_failures <> [])

(* The reference model shadows the live store op for op, not only after
   recovery. *)
let test_model_tracks_live_store () =
  let clock = Clock.create () in
  let dev = Striped.create () in
  let store = Store.format ~dev ~clock in
  let runner = Workload.runner store in
  let model = Model.create () in
  List.iteri
    (fun i op ->
      Workload.run_op runner op;
      Model.apply model op;
      Alcotest.(check string)
        (Printf.sprintf "state after op %d (%s)" i (Workload.op_to_string op))
        (Model.render model) (Torture.observe store))
    Workload.standard

let test_sweep_read_errors () =
  let s = Torture.sweep ~seed:7 ~runs:3 (Injector.read_errors_profile 0.1) in
  Alcotest.(check int) "every observation matches the model" s.Torture.s_runs
    s.Torture.s_final_matches;
  Alcotest.(check bool)
    (Printf.sprintf "retries absorbed transient errors (%d)" s.Torture.s_read_faults)
    true
    (s.Torture.s_read_faults > 0)

let test_sweep_write_loss_terminates () =
  let s = Torture.sweep ~seed:11 ~runs:3 (Injector.write_loss_profile 0.15) in
  Alcotest.(check int) "every run classified" s.Torture.s_runs
    (s.Torture.s_final_matches + s.Torture.s_detected + s.Torture.s_degraded)

(* The crash_at injector fires at exactly the requested global boundary. *)
let test_crash_at_boundary_index () =
  let dev = Striped.create () in
  Striped.set_fault dev (Some (Injector.crash_at ~index:3));
  let raised =
    try
      for i = 0 to 9 do
        ignore (Striped.write dev ~now:0 ~off:(i * 4096) (Bytes.make 64 'x'))
      done;
      None
    with Fault.Crash_point { index; _ } -> Some index
  in
  Striped.set_fault dev None;
  Alcotest.(check (option int)) "third submission" (Some 3) raised;
  (* Submissions 1 and 2 were issued, 3 was not. *)
  Alcotest.(check int) "two writes issued" 2 (Striped.write_ops dev)

let derive_ops seed =
  Workload.gen_ops (Rng.create seed) ~n:14 ~max_oid:6 ~max_pages:12

(* State-machine property: random op sequences keep the real store and the
   pure model in lockstep, and a crash at full durability recovers to the
   model's final state byte for byte.  A failing seed prints the full
   replayable op trace. *)
let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"random ops: store shadows model, crash/recover matches final state"
         ~count:20
         (QCheck.make
            ~print:(fun seed ->
              Printf.sprintf "seed=%d, replayable op trace:\n%s" seed
                (Workload.ops_to_string (derive_ops seed)))
            QCheck.Gen.(int_bound 1_000_000))
         (fun seed ->
           let ops = derive_ops seed in
           let clock = Clock.create () in
           let dev = Striped.create () in
           let store = Store.format ~dev ~clock in
           let runner = Workload.runner store in
           let model = Model.create () in
           List.for_all
             (fun op ->
               Workload.run_op runner op;
               Model.apply model op;
               Torture.observe store = Model.render model)
             ops
           && begin
                Store.wait_durable store;
                Striped.settle dev ~clock;
                Striped.crash dev ~now:(Clock.now clock);
                let store2 = Store.recover ~dev ~clock:(Clock.create ()) in
                Torture.observe store2 = Model.render model
              end));
  ]

(* Kernel-driven recorded profiles (ISSUE 10) ----------------------------- *)

(* The fork-bomb recorder projects a real process tree — pipes spanning
   parent/child, COW divergence, exits — into plain ops; enumeration must
   find recovery consistent at every boundary, and the recording itself
   must not shrink below the checked-in coverage floor (mirrors the
   @torture gate). *)
let test_fork_bomb_enumerates_clean () =
  let ops = Workload.fork_bomb () in
  let r = Torture.enumerate ops in
  List.iter
    (fun f -> Printf.printf "FAIL %s\n%!" (Torture.pp_failure f))
    r.Torture.r_failures;
  Alcotest.(check int) "no failures" 0 (List.length r.Torture.r_failures);
  Alcotest.(check bool)
    (Printf.sprintf "coverage floor (%d boundaries)" r.Torture.r_boundaries)
    true
    (r.Torture.r_boundaries >= 60);
  let r' = Torture.enumerate (Workload.speculative_arm ops) in
  Alcotest.(check int) "speculative arm: no failures" 0
    (List.length r'.Torture.r_failures)

let test_shm_ring_enumerates_clean () =
  let ops = Workload.shm_ring () in
  let r = Torture.enumerate ops in
  List.iter
    (fun f -> Printf.printf "FAIL %s\n%!" (Torture.pp_failure f))
    r.Torture.r_failures;
  Alcotest.(check int) "no failures" 0 (List.length r.Torture.r_failures);
  Alcotest.(check bool)
    (Printf.sprintf "coverage floor (%d boundaries)" r.Torture.r_boundaries)
    true
    (r.Torture.r_boundaries >= 40)

(* Satellite: the seqlock invariant holds on every model snapshot of the
   ring workload — and on the state actually recovered from crashes
   injected between the producer's publish and the consumer's read.  A
   restored ring must never expose a half-written record: an in-flight
   publication is recognizable by its odd sequence stamp, so a reader
   skips it. *)
let test_shm_ring_never_exposes_torn_record () =
  let ops = Workload.shm_ring () in
  let model = Model.create () in
  let checked = ref 0 in
  List.iter
    (fun op ->
      Model.apply model op;
      match Workload.shm_ring_check (Model.render model) with
      | Ok n -> checked := max !checked n
      | Error e -> Alcotest.failf "model snapshot: %s" e)
    ops;
  Alcotest.(check bool)
    (Printf.sprintf "checked several snapshots (%d)" !checked)
    true (!checked >= 4);
  (* Now the real thing: replay against a store, crash at every device
     submission boundary, recover, and hold the recovered bytes to the
     same invariant. *)
  let boundaries =
    let clock = Clock.create () in
    let dev = Striped.create () in
    let store = Store.format ~dev ~clock in
    let fault, _ = Injector.counting () in
    Striped.set_fault dev (Some fault);
    let runner = Workload.runner store in
    List.iter (Workload.run_op runner) ops;
    Store.wait_durable store;
    Striped.settle dev ~clock;
    Striped.set_fault dev None;
    Fault.submissions fault
  in
  Alcotest.(check bool)
    (Printf.sprintf "ring workload has boundaries (%d)" boundaries)
    true (boundaries > 10);
  let crashes = ref 0 in
  for index = 1 to boundaries do
    let clock = Clock.create () in
    let dev = Striped.create () in
    let store = Store.format ~dev ~clock in
    let runner = Workload.runner store in
    Striped.set_fault dev (Some (Injector.crash_at ~index));
    (try List.iter (Workload.run_op runner) ops
     with Fault.Crash_point _ -> incr crashes);
    Striped.set_fault dev None;
    Striped.crash dev ~now:(Clock.now clock);
    let store' = Store.recover ~dev ~clock:(Clock.create ()) in
    match Workload.shm_ring_check (Torture.observe store') with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "crash at boundary %d: %s" index e
  done;
  Alcotest.(check bool)
    (Printf.sprintf "crashes actually fired (%d)" !crashes)
    true
    (!crashes > 0)

(* A corrupted render must trip the checker (negative control: the
   invariant is falsifiable). *)
let test_shm_ring_check_catches_corruption () =
  let ops = Workload.shm_ring () in
  let model = Model.create () in
  List.iter (Model.apply model) ops;
  let r = Model.render model in
  (* Flip the first body page (vpn 6) fill char in the last snapshot. *)
  let i = ref (-1) in
  String.iteri
    (fun j _ -> if j + 2 <= String.length r && String.sub r j 2 = "6:" then i := j)
    r;
  Alcotest.(check bool) "found a body page" true (!i >= 0);
  let b = Bytes.of_string r in
  Bytes.set b (!i + 2) '!';
  match Workload.shm_ring_check (Bytes.to_string b) with
  | Ok _ -> Alcotest.fail "checker accepted a torn body"
  | Error _ -> ()

module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Syscall = Aurora_kern.Syscall
module Process = Aurora_kern.Process
module Restore = Aurora_core.Restore
module Vm_space = Aurora_vm.Vm_space
module Vm_page = Aurora_vm.Page

(* Full-stack fork-family property: random fork/write/exit/checkpoint
   interleavings on a live SLS system, then crash and restore — every
   surviving process's pages must come back byte-identical to its own
   write history, however the COW sharing fell across checkpoint
   boundaries. *)
let fam_qcheck =
  let npages = 6 in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"fork family under checkpoints: restore is byte-identical per process"
       ~count:12
       (QCheck.make
          ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
          QCheck.Gen.(int_bound 1_000_000))
       (fun seed ->
         let rng = Rng.create seed in
         let sys = Sls.boot () in
         let m = sys.Sls.machine in
         let root = Syscall.spawn m ~name:"fam" in
         let arena = Syscall.mmap_anon root ~npages in
         let base = Aurora_vm.Vm_space.addr_of_entry arena in
         (* Pages hold [Page.payload_size] real bytes and fold larger
            offsets onto them, so the shadow model keys on folded slots. *)
         let key off =
           ((off / Vm_page.logical_size) * Vm_page.payload_size)
           + (off mod Vm_page.payload_size)
         in
         let addr_of_key k =
           base
           + ((k / Vm_page.payload_size) * Vm_page.logical_size)
           + (k mod Vm_page.payload_size)
         in
         let group = Sls.attach sys [ root ] in
         (* (proc, parent pid, shadow byte model) per live member *)
         let fam = ref [ (root, -1, Hashtbl.create 32) ] in
         let ok = ref true in
         for i = 0 to 23 do
           match Rng.int rng 8 with
           | 0 when List.length !fam < 5 ->
               let parent, _, model =
                 List.nth !fam (Rng.int rng (List.length !fam))
               in
               let child = Syscall.fork m parent in
               Group.add_process group child;
               fam :=
                 !fam
                 @ [ (child, parent.Process.pid_global, Hashtbl.copy model) ]
           | 1 when List.length !fam > 1 -> (
               (* Exit a leaf and let its parent reap it. *)
               let leaves =
                 List.filter
                   (fun (p, _, _) ->
                     p != root
                     && not
                          (List.exists
                             (fun (_, pp, _) -> pp = p.Process.pid_global)
                             !fam))
                   !fam
               in
               match leaves with
               | [] -> ()
               | _ ->
                   let p, pp, _ = List.nth leaves (Rng.int rng (List.length leaves)) in
                   Syscall.exit m p ~code:0;
                   (match
                      List.find_opt (fun (q, _, _) -> q.Process.pid_global = pp) !fam
                    with
                   | Some (parent, _, _) -> ignore (Syscall.waitpid m parent)
                   | None -> ());
                   fam := List.filter (fun (q, _, _) -> q != p) !fam)
           | 2 -> ignore (Group.checkpoint ~wait_durable:true group)
           | _ ->
               let p, _, model =
                 List.nth !fam (Rng.int rng (List.length !fam))
               in
               let off = Rng.int rng (npages * Vm_page.logical_size) in
               let c = Char.chr (Char.code 'a' + (i mod 26)) in
               Vm_space.write_byte p.Process.space ~addr:(base + off) c;
               Hashtbl.replace model (key off) c
         done;
         ignore (Group.checkpoint ~wait_durable:true group);
         let _sys', result = Sls.reboot_and_restore sys in
         List.iter
           (fun (p, _, model) ->
             match
               List.find_opt
                 (fun q -> q.Process.pid_local = p.Process.pid_local)
                 result.Restore.procs
             with
             | None -> ok := false
             | Some q ->
                 Hashtbl.iter
                   (fun k c ->
                     if Vm_space.read_byte q.Process.space ~addr:(addr_of_key k) <> c
                     then ok := false)
                   model)
           !fam;
         !ok))

module Ha_torture = Aurora_faultsim.Ha_torture

let test_ha_torture_run () =
  let r = Ha_torture.run ~seed:2026 ~rounds:5 ~rate:0.08 () in
  Alcotest.(check bool) (Ha_torture.pp_run r) true r.Ha_torture.hr_ok

(* Same torture under speculative soft-quiesce checkpoints, with the
   mid-window mutator forcing conflict splices into every shipped epoch:
   failover must still land on a model-consistent epoch. *)
let test_ha_torture_run_speculative () =
  let r = Ha_torture.run ~speculative:true ~seed:2026 ~rounds:5 ~rate:0.08 () in
  Alcotest.(check bool) (Ha_torture.pp_run r) true r.Ha_torture.hr_ok

let test_ha_torture_negative_controls () =
  (match Ha_torture.negative_control ~seed:1 ~mode:Ha_torture.Meta with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("meta control: " ^ e));
  match Ha_torture.negative_control ~seed:1 ~mode:Ha_torture.Page with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("page control: " ^ e)

let () =
  Alcotest.run "aurora_faultsim"
    [
      ( "enumeration",
        [
          Alcotest.test_case "standard workload clean" `Quick test_enumerate_standard;
          Alcotest.test_case "speculative splice arm clean" `Quick
            test_enumerate_speculative_arm;
          Alcotest.test_case "catches misorder bug" `Quick test_enumerate_catches_misorder;
          Alcotest.test_case "fork-bomb profile clean" `Quick
            test_fork_bomb_enumerates_clean;
          Alcotest.test_case "shm-ring profile clean" `Quick
            test_shm_ring_enumerates_clean;
        ] );
      ( "posix stressors",
        [
          Alcotest.test_case "shm ring never exposes torn record" `Slow
            test_shm_ring_never_exposes_torn_record;
          Alcotest.test_case "shm ring checker is falsifiable" `Quick
            test_shm_ring_check_catches_corruption;
          fam_qcheck;
        ] );
      ( "model",
        [
          Alcotest.test_case "tracks live store" `Quick test_model_tracks_live_store;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "read errors absorbed" `Quick test_sweep_read_errors;
          Alcotest.test_case "write loss terminates" `Quick test_sweep_write_loss_terminates;
        ] );
      ( "injector",
        [ Alcotest.test_case "crash_at boundary" `Quick test_crash_at_boundary_index ] );
      ( "ha torture",
        [
          Alcotest.test_case "faulty run recovers model state" `Quick
            test_ha_torture_run;
          Alcotest.test_case "speculative run recovers model state" `Quick
            test_ha_torture_run_speculative;
          Alcotest.test_case "negative controls skip corruption" `Quick
            test_ha_torture_negative_controls;
        ] );
      ("properties", qcheck_tests);
    ]
