(* Observability: tracer mechanics, metrics registry, golden-trace
   determinism, and trace/metrics-vs-stats consistency properties. *)

module Clock = Aurora_sim.Clock
module Striped = Aurora_block.Striped
module Store = Aurora_objstore.Store
module Workload = Aurora_faultsim.Workload
module Rng = Aurora_util.Rng
module Histogram = Aurora_util.Histogram
module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Syscall = Aurora_kern.Syscall
module Vm_space = Aurora_vm.Vm_space
module Group = Aurora_core.Group
module Sls = Aurora_core.Sls
module Trace = Aurora_obs.Trace
module Metrics = Aurora_obs.Metrics

(* The tracer and the registry are process-wide singletons shared by the
   whole alcotest run; every test leaves both disabled. *)
let quiesce_obs () =
  Trace.disable ();
  Metrics.set_enabled false

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  m = 0 || go 0

let arg_int e key =
  match List.assoc_opt key e.Trace.ev_args with
  | Some (Trace.Int v) -> v
  | _ -> Alcotest.failf "event %s missing int arg %S" e.Trace.ev_name key

(* Histogram percentile interpolation ------------------------------------- *)

let test_interp_empty () =
  let h = Histogram.create () in
  Alcotest.(check (float 0.0)) "empty p50" 0.0 (Histogram.percentile_interp h 50.0);
  Alcotest.(check (float 0.0)) "empty p0" 0.0 (Histogram.percentile_interp h 0.0)

let test_interp_single () =
  let h = Histogram.create () in
  Histogram.add h 42.0;
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "single-sample p%g" p)
        42.0
        (Histogram.percentile_interp h p))
    [ 0.0; 50.0; 99.0; 100.0 ]

let test_interp_two () =
  let h = Histogram.create () in
  Histogram.add h 20.0;
  Histogram.add h 10.0;
  Alcotest.(check (float 1e-9)) "p0 is min" 10.0 (Histogram.percentile_interp h 0.0);
  Alcotest.(check (float 1e-9)) "p25 blends" 12.5 (Histogram.percentile_interp h 25.0);
  Alcotest.(check (float 1e-9)) "p50 is midpoint" 15.0 (Histogram.percentile_interp h 50.0);
  Alcotest.(check (float 1e-9)) "p100 is max" 20.0 (Histogram.percentile_interp h 100.0);
  (* Out-of-range percentiles clamp instead of indexing out of bounds. *)
  Alcotest.(check (float 1e-9)) "p<0 clamps" 10.0 (Histogram.percentile_interp h (-5.0));
  Alcotest.(check (float 1e-9)) "p>100 clamps" 20.0 (Histogram.percentile_interp h 200.0)

let test_interp_hundred () =
  let h = Histogram.create () in
  for i = 1 to 100 do
    Histogram.add h (float_of_int i)
  done;
  Alcotest.(check (float 1e-9)) "interp p50" 50.5 (Histogram.percentile_interp h 50.0);
  Alcotest.(check (float 1e-6)) "interp p99" 99.01 (Histogram.percentile_interp h 99.0);
  Alcotest.(check (float 1e-9)) "interp p100" 100.0 (Histogram.percentile_interp h 100.0);
  (* The historical nearest-rank accessor keeps its pinned semantics. *)
  Alcotest.(check (float 1e-9)) "nearest-rank p50 unchanged" 50.0 (Histogram.percentile h 50.0)

(* Tracer mechanics -------------------------------------------------------- *)

let test_disabled_noop () =
  quiesce_obs ();
  Alcotest.(check bool) "is_on" false (Trace.is_on ());
  Alcotest.(check int) "with_span passes value through" 7
    (Trace.with_span ~cat:"t" ~name:"x" (fun () -> 7));
  Trace.instant ~cat:"t" "nothing";
  Trace.complete ~ts:1 ~dur:2 ~cat:"t" "nothing";
  Trace.counter ~cat:"t" ~name:"n" 3;
  Alcotest.(check int) "no events buffered" 0 (List.length (Trace.events ()));
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped ())

let test_span_nesting () =
  let clock = Clock.create () in
  Trace.enable ~capacity:64 ~clock ();
  Trace.with_span ~cat:"t" ~name:"outer" (fun () ->
      Clock.advance clock 10;
      Trace.with_span ~cat:"t" ~name:"inner" (fun () -> Clock.advance clock 5);
      Trace.instant ~cat:"t" "mark");
  let evs = Trace.events () in
  let shape =
    List.map (fun e -> (e.Trace.ev_ph, e.Trace.ev_name, e.Trace.ev_ts)) evs
  in
  Alcotest.(check int) "five events" 5 (List.length evs);
  (match shape with
  | [
   (Trace.Begin, "outer", 0);
   (Trace.Begin, "inner", 10);
   (Trace.End, "inner", 15);
   (Trace.Instant, "mark", 15);
   (Trace.End, "outer", 15);
  ] ->
      ()
  | _ -> Alcotest.fail "unexpected span shape");
  let text = Trace.export_text () in
  let json = Trace.export_json () in
  quiesce_obs ();
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "text export mentions %S" needle)
        true
        (contains text needle))
    [ "> t:outer"; "> t:inner"; "< t:inner"; "! t:mark" ];
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json export mentions %S" needle)
        true
        (contains json needle))
    [ "\"traceEvents\""; "\"ph\":\"B\""; "\"ph\":\"E\""; "\"name\":\"outer\"" ]

let test_span_exception_safe () =
  let clock = Clock.create () in
  Trace.enable ~capacity:16 ~clock ();
  (try
     Trace.with_span ~cat:"t" ~name:"boom" (fun () ->
         Clock.advance clock 3;
         failwith "expected")
   with Failure _ -> ());
  let evs = Trace.events () in
  quiesce_obs ();
  match List.map (fun e -> (e.Trace.ev_ph, e.Trace.ev_name)) evs with
  | [ (Trace.Begin, "boom"); (Trace.End, "boom") ] -> ()
  | _ -> Alcotest.fail "span not closed on exception"

let test_ring_overflow () =
  let clock = Clock.create () in
  Trace.enable ~capacity:4 ~clock ();
  for i = 0 to 5 do
    Clock.advance clock 1;
    Trace.instant ~cat:"t" (Printf.sprintf "i%d" i)
  done;
  let evs = Trace.events () in
  Alcotest.(check int) "buffer holds capacity" 4 (List.length evs);
  Alcotest.(check int) "overflow counted" 2 (Trace.dropped ());
  Alcotest.(check (list string)) "oldest dropped first"
    [ "i2"; "i3"; "i4"; "i5" ]
    (List.map (fun e -> e.Trace.ev_name) evs);
  Trace.reset ();
  Alcotest.(check int) "reset empties buffer" 0 (List.length (Trace.events ()));
  Alcotest.(check int) "reset clears dropped" 0 (Trace.dropped ());
  quiesce_obs ()

let test_complete_and_counter () =
  let clock = Clock.create () in
  Trace.enable ~capacity:16 ~clock ();
  Trace.complete ~ts:5 ~dur:7 ~cat:"t" "window" ~args:[ ("k", Trace.Int 9) ];
  Trace.counter ~cat:"t" ~name:"depth" 3;
  let evs = Trace.events () in
  quiesce_obs ();
  match evs with
  | [ c; k ] ->
      Alcotest.(check int) "explicit ts" 5 c.Trace.ev_ts;
      Alcotest.(check int) "explicit dur" 7 c.Trace.ev_dur;
      Alcotest.(check bool) "complete phase" true (c.Trace.ev_ph = Trace.Complete);
      Alcotest.(check int) "complete arg" 9 (arg_int c "k");
      Alcotest.(check bool) "counter phase" true (k.Trace.ev_ph = Trace.Counter);
      Alcotest.(check int) "counter value arg" 3 (arg_int k "value")
  | _ -> Alcotest.fail "expected exactly two events"

(* Metrics registry --------------------------------------------------------- *)

let test_metrics_registry () =
  quiesce_obs ();
  Metrics.reset ();
  let c = Metrics.counter "tm.counter" in
  Metrics.incr c;
  Alcotest.(check int) "disabled incr is a no-op" 0 (Metrics.value c);
  Metrics.set_enabled true;
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "counts when enabled" 5 (Metrics.value c);
  Alcotest.(check int) "registration is idempotent" 5
    (Metrics.value (Metrics.counter "tm.counter"));
  let g = Metrics.gauge "tm.gauge" in
  Metrics.set_gauge g 17;
  Alcotest.(check int) "gauge holds" 17 (Metrics.gauge_value g);
  let h = Metrics.histogram "tm.hist" in
  List.iter (fun v -> Metrics.observe h (float_of_int v)) [ 10; 20; 30; 40 ];
  let n, p50, _, mx = Metrics.summary h in
  Alcotest.(check int) "histogram count" 4 n;
  Alcotest.(check (float 1e-9)) "histogram p50 interpolates" 25.0 p50;
  Alcotest.(check (float 1e-9)) "histogram max" 40.0 mx;
  Alcotest.(check bool) "kind mismatch rejected" true
    (try
       ignore (Metrics.counter "tm.hist");
       false
     with Invalid_argument _ -> true);
  let report = Metrics.report () in
  Alcotest.(check bool) "report lists the counter" true
    (contains report "tm.counter");
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes counters" 0 (Metrics.value c);
  let n, _, _, _ = Metrics.summary h in
  Alcotest.(check int) "reset empties histograms" 0 n;
  quiesce_obs ()

(* Golden-trace determinism ------------------------------------------------- *)

(* Run [ops] on a fresh deterministic store under the tracer; return both
   exports. *)
let trace_of_ops ops =
  let clock = Clock.create () in
  let dev = Striped.create () in
  let store = Store.format ~dev ~clock in
  Trace.enable ~capacity:(1 lsl 18) ~clock ();
  let r = Workload.runner store in
  List.iter (Workload.run_op r) ops;
  Store.wait_durable store;
  Alcotest.(check int) "trace fits the ring buffer" 0 (Trace.dropped ());
  let text = Trace.export_text () in
  let json = Trace.export_json () in
  quiesce_obs ();
  (text, json)

let test_golden_standard_deterministic () =
  let t1, j1 = trace_of_ops Workload.standard in
  let t2, j2 = trace_of_ops Workload.standard in
  Alcotest.(check bool) "trace is non-trivial" true (String.length t1 > 1000);
  Alcotest.(check string) "text export byte-identical" t1 t2;
  Alcotest.(check string) "json export byte-identical" j1 j2;
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "pipeline phase %S traced" needle)
        true
        (contains t1 needle))
    [ "store:begin_checkpoint"; "store:commit.data"; "store:commit.records";
      "store:commit.superblock"; "store:flush_window"; "store:prune";
      "blk:write_vec"; "dev:extent" ]

let test_golden_seeded_deterministic () =
  let ops seed = Workload.gen_ops (Rng.create seed) ~n:40 ~max_oid:6 ~max_pages:12 in
  let t1, j1 = trace_of_ops (ops 42) in
  let t2, j2 = trace_of_ops (ops 42) in
  Alcotest.(check string) "same seed, same text" t1 t2;
  Alcotest.(check string) "same seed, same json" j1 j2;
  (* Negative control: a different seed must produce a different trace. *)
  let t3, _ = trace_of_ops (ops 43) in
  Alcotest.(check bool) "seed change changes the trace" true (t1 <> t3)

(* Metrics/trace vs store counters ------------------------------------------ *)

(* On a random workload, three independent accounting paths must agree:
   the store's per-epoch [flush_stats], the global metrics registry, and
   the per-epoch [store:flush_window] trace events. *)
let prop_store_consistency seed =
  let ops = Workload.gen_ops (Rng.create seed) ~n:30 ~max_oid:6 ~max_pages:10 in
  Metrics.reset ();
  Metrics.set_enabled true;
  let clock = Clock.create () in
  let dev = Striped.create () in
  let store = Store.format ~dev ~clock in
  Trace.enable ~capacity:(1 lsl 18) ~clock ();
  let r = Workload.runner store in
  let commits = ref 0 and sum_pages = ref 0 and sum_writes = ref 0 in
  List.iter
    (fun op ->
      Workload.run_op r op;
      match op with
      | Workload.Checkpoint _ ->
          incr commits;
          let s = Store.flush_stats store in
          sum_pages := !sum_pages + s.Store.fs_pages;
          sum_writes := !sum_writes + s.Store.fs_dev_writes
      | _ -> ())
    ops;
  Store.wait_durable store;
  let events = Trace.events () in
  let dropped = Trace.dropped () in
  let mval name = Metrics.value (Metrics.counter name) in
  let m_commits = mval "store.commits" in
  let m_pages = mval "store.pages_staged" in
  let m_dev = mval "dev.submissions" in
  quiesce_obs ();
  if dropped <> 0 then QCheck.Test.fail_report "trace ring overflowed";
  if m_commits <> !commits then
    QCheck.Test.fail_reportf "store.commits %d <> %d commits" m_commits !commits;
  if m_pages <> !sum_pages then
    QCheck.Test.fail_reportf "store.pages_staged %d <> flush_stats sum %d" m_pages
      !sum_pages;
  (* Every device submission in this workload is a write, so the metric
     must agree with the device's own op counter. *)
  if m_dev <> Striped.write_ops dev then
    QCheck.Test.fail_reportf "dev.submissions %d <> device write_ops %d" m_dev
      (Striped.write_ops dev);
  let windows =
    List.filter
      (fun e -> e.Trace.ev_ph = Trace.Complete && e.Trace.ev_name = "flush_window")
      events
  in
  if List.length windows <> !commits then
    QCheck.Test.fail_reportf "%d flush_window events <> %d commits"
      (List.length windows) !commits;
  let ev_pages = List.fold_left (fun a e -> a + arg_int e "pages") 0 windows in
  let ev_writes =
    List.fold_left (fun a e -> a + arg_int e "dev_writes") 0 windows
  in
  if ev_pages <> !sum_pages then
    QCheck.Test.fail_reportf "trace pages %d <> flush_stats pages %d" ev_pages
      !sum_pages;
  if ev_writes <> !sum_writes then
    QCheck.Test.fail_reportf "trace dev_writes %d <> flush_stats dev_writes %d"
      ev_writes !sum_writes;
  true

(* The group checkpoint path: per-epoch ckpt_stats vs the ckpt.obj event
   stream vs the cumulative metrics, over a seeded random workload. *)
let test_group_consistency () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let clk = m.Machine.clock in
  let p = Syscall.spawn m ~name:"obs" in
  let _rd, wr = Syscall.pipe m p in
  let mem = Syscall.mmap_anon p ~npages:32 in
  let addr = Vm_space.addr_of_entry mem in
  let group = Sls.attach sys [ p ] in
  Metrics.reset ();
  Metrics.set_enabled true;
  Trace.enable ~capacity:(1 lsl 16) ~clock:clk ();
  let rng = Rng.create 7 in
  let epochs = 8 in
  let tot_ser = ref 0 and tot_meta = ref 0 and tot_skip = ref 0 in
  for i = 1 to epochs do
    if Rng.bool rng then
      ignore (Syscall.write m p ~fd:wr (String.make (Rng.int_in rng 1 64) 'x'));
    Vm_space.touch_write p.Process.space
      ~addr:(addr + (Rng.int rng 24 * 4096))
      ~len:(Rng.int_in rng 1 8 * 4096);
    (* Window the event stream to this epoch. *)
    Trace.reset ();
    let stats = Group.checkpoint ~wait_durable:true group in
    let events = Trace.events () in
    let with_name n =
      List.filter
        (fun e -> e.Trace.ev_cat = "ckpt.obj" && e.Trace.ev_name = n)
        events
    in
    let serialized = with_name "serialize" in
    Alcotest.(check int)
      (Printf.sprintf "epoch %d: serialize events match stats" i)
      stats.Group.objects_serialized
      (List.length serialized);
    Alcotest.(check int)
      (Printf.sprintf "epoch %d: skip events match stats" i)
      stats.Group.objects_skipped
      (List.length (with_name "skip"));
    Alcotest.(check int)
      (Printf.sprintf "epoch %d: traced bytes match meta_bytes_written" i)
      stats.Group.meta_bytes_written
      (List.fold_left (fun a e -> a + arg_int e "bytes") 0 serialized);
    tot_ser := !tot_ser + stats.Group.objects_serialized;
    tot_meta := !tot_meta + stats.Group.meta_bytes_written;
    tot_skip := !tot_skip + stats.Group.objects_skipped
  done;
  let mval name = Metrics.value (Metrics.counter name) in
  let m_epochs = mval "ckpt.epochs" in
  let m_ser = mval "ckpt.objects_serialized" in
  let m_skip = mval "ckpt.objects_skipped" in
  let m_meta = mval "ckpt.meta_bytes" in
  quiesce_obs ();
  Alcotest.(check int) "epoch counter" epochs m_epochs;
  Alcotest.(check int) "cumulative objects_serialized" !tot_ser m_ser;
  Alcotest.(check int) "cumulative objects_skipped" !tot_skip m_skip;
  Alcotest.(check int) "cumulative meta bytes" !tot_meta m_meta

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"store metrics/trace/stats agree on random workloads"
         ~count:25
         QCheck.(make ~print:string_of_int Gen.(int_bound 1_000_000))
         prop_store_consistency);
  ]

let () =
  quiesce_obs ();
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "interp empty" `Quick test_interp_empty;
          Alcotest.test_case "interp single sample" `Quick test_interp_single;
          Alcotest.test_case "interp two samples" `Quick test_interp_two;
          Alcotest.test_case "interp 1..100" `Quick test_interp_hundred;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "spans nest" `Quick test_span_nesting;
          Alcotest.test_case "spans close on exception" `Quick test_span_exception_safe;
          Alcotest.test_case "ring overflow drops oldest" `Quick test_ring_overflow;
          Alcotest.test_case "complete and counter events" `Quick test_complete_and_counter;
        ] );
      ("metrics", [ Alcotest.test_case "registry" `Quick test_metrics_registry ]);
      ( "determinism",
        [
          Alcotest.test_case "standard workload is byte-identical" `Quick
            test_golden_standard_deterministic;
          Alcotest.test_case "seeded workload: same seed same trace" `Quick
            test_golden_seeded_deterministic;
        ] );
      ( "consistency",
        Alcotest.test_case "group ckpt_stats vs trace vs metrics" `Quick
          test_group_consistency
        :: qcheck_tests );
    ]
