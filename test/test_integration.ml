(* Full-system integration tests: scenarios that cross every layer —
   kernel, VM, object store, file system, orchestrator — plus the
   memory-overcommit (swap) and external-synchrony paths. *)

module Clock = Aurora_sim.Clock
module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Syscall = Aurora_kern.Syscall
module Vm_space = Aurora_vm.Vm_space
module Vm_object = Aurora_vm.Vm_object
module Vm_map = Aurora_vm.Vm_map
module Page = Aurora_vm.Page
module Store = Aurora_objstore.Store
module Wire = Aurora_objstore.Wire
module Striped = Aurora_block.Striped
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Api = Aurora_core.Api
module Restore = Aurora_core.Restore
module Migrate = Aurora_core.Migrate
module Memcached_bench = Aurora_apps.Memcached_bench

(* Swap / memory overcommitment (paper section 6) ------------------------- *)

let test_swap_evict_and_fault_back () =
  let sys = Sls.boot () in
  let p = Syscall.spawn sys.Sls.machine ~name:"bigapp" in
  let e = Syscall.mmap_anon p ~npages:256 in
  let addr = Vm_space.addr_of_entry e in
  Vm_space.write_string p.Process.space ~addr "swap me out";
  Vm_space.touch_write p.Process.space ~addr:(addr + 4096) ~len:(255 * 4096);
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  (* The next checkpoint collapses the flushed pages into the logical
     object, making them evictable. *)
  ignore (Group.checkpoint ~wait_durable:true group);
  let before = Group.resident_group_pages group in
  let evicted = Group.evict_clean_pages group ~target:200 in
  Alcotest.(check int) "evicted the target" 200 evicted;
  Alcotest.(check int) "resident set shrank" (before - 200)
    (Group.resident_group_pages group);
  (* Faulting the data back is transparent and correct. *)
  let stats_before = (Vm_space.stats p.Process.space).Vm_space.pageins in
  Alcotest.(check string) "content pages back in" "swap me out"
    (Vm_space.read_string p.Process.space ~addr ~len:11);
  Alcotest.(check bool) "pager was used" true
    ((Vm_space.stats p.Process.space).Vm_space.pageins > stats_before)

let test_swap_eviction_is_zero_copy () =
  (* Evicting clean pages issues no device writes: they are already in
     the checkpoint (the paper's unified data path). *)
  let sys = Sls.boot () in
  let p = Syscall.spawn sys.Sls.machine ~name:"app" in
  let e = Syscall.mmap_anon p ~npages:64 in
  Vm_space.touch_write p.Process.space ~addr:(Vm_space.addr_of_entry e) ~len:(64 * 4096);
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  ignore (Group.checkpoint ~wait_durable:true group);
  Striped.settle sys.Sls.device ~clock:sys.Sls.machine.Machine.clock;
  let written_before = Striped.bytes_written sys.Sls.device in
  ignore (Group.evict_clean_pages group ~target:64);
  Alcotest.(check int) "no write IO for eviction" written_before
    (Striped.bytes_written sys.Sls.device)

let test_swapped_pages_survive_checkpoint_and_crash () =
  let sys = Sls.boot () in
  let p = Syscall.spawn sys.Sls.machine ~name:"app" in
  let e = Syscall.mmap_anon p ~npages:32 in
  let addr = Vm_space.addr_of_entry e in
  Vm_space.write_string p.Process.space ~addr "evicted but durable";
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  ignore (Group.checkpoint ~wait_durable:true group);
  ignore (Group.evict_clean_pages group ~target:32);
  (* More checkpoints with the pages evicted: the store versions must
     carry the content forward untouched. *)
  Vm_space.write_string p.Process.space ~addr:(addr + 8192) "new data";
  ignore (Group.checkpoint ~wait_durable:true group);
  let _sys', result = Sls.reboot_and_restore sys in
  match result.Restore.procs with
  | [ p' ] ->
      Alcotest.(check string) "evicted page content survived" "evicted but durable"
        (Vm_space.read_string p'.Process.space ~addr ~len:19);
      Alcotest.(check string) "post-eviction write survived" "new data"
        (Vm_space.read_string p'.Process.space ~addr:(addr + 8192) ~len:8)
  | _ -> Alcotest.fail "expected 1 process"

let test_lazy_restore_demand_pages_through_pager () =
  let sys = Sls.boot () in
  let p = Syscall.spawn sys.Sls.machine ~name:"app" in
  let e = Syscall.mmap_anon p ~npages:128 in
  let addr = Vm_space.addr_of_entry e in
  Vm_space.touch_write p.Process.space ~addr ~len:(128 * 4096);
  Vm_space.write_string p.Process.space ~addr "demand paged";
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  let _sys', result = Sls.reboot_and_restore ~lazy_pages:true sys in
  match result.Restore.procs with
  | [ p' ] ->
      (* Nothing resident until touched. *)
      Alcotest.(check int) "no pages resident after lazy restore" 0
        (Vm_space.resident_pages p'.Process.space);
      Alcotest.(check string) "fault brings the page in" "demand paged"
        (Vm_space.read_string p'.Process.space ~addr ~len:12);
      Alcotest.(check bool) "exactly the touched page came in" true
        (Vm_space.resident_pages p'.Process.space <= 2)
  | _ -> Alcotest.fail "expected 1 process"

let test_madvise_guides_eviction () =
  let sys = Sls.boot () in
  let p = Syscall.spawn sys.Sls.machine ~name:"app" in
  let keep = Syscall.mmap_anon p ~npages:32 in
  let scratch = Syscall.mmap_anon p ~npages:32 in
  Vm_space.touch_write p.Process.space ~addr:(Vm_space.addr_of_entry keep) ~len:(32 * 4096);
  Vm_space.touch_write p.Process.space ~addr:(Vm_space.addr_of_entry scratch)
    ~len:(32 * 4096);
  Syscall.madvise_dontneed p scratch true;
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  ignore (Group.checkpoint ~wait_durable:true group);
  ignore (Group.evict_clean_pages group ~target:32);
  (* The madvised region was drained first; the other stayed resident.
     (After two checkpoints each region's logical object holds its 32
     pages.) *)
  let resident_of (e : Vm_map.entry) =
    let rec bottom o =
      match Vm_object.parent o with None -> o | Some q -> bottom q
    in
    Vm_object.resident_pages (bottom e.Vm_map.obj)
  in
  Alcotest.(check int) "scratch evicted" 0 (resident_of scratch);
  Alcotest.(check int) "keep untouched" 32 (resident_of keep)

(* External synchrony end to end ------------------------------------------- *)

let test_ext_sync_delays_sets_only () =
  let run ext_sync =
    Memcached_bench.run
      {
        Memcached_bench.period_ns = Some 10_000_000;
        load = Memcached_bench.Open_poisson 50_000.0;
        duration_ns = 100_000_000;
        nkeys = 50_000;
        seed = 5;
        ext_sync;
      }
  in
  let off = run false and on = run true in
  Alcotest.(check bool)
    (Printf.sprintf "SETs wait ~period/2 (%.0f vs %.0f ns)"
       on.Memcached_bench.avg_set_latency_ns off.Memcached_bench.avg_set_latency_ns)
    true
    (on.Memcached_bench.avg_set_latency_ns
    > 10.0 *. off.Memcached_bench.avg_set_latency_ns);
  let get_ratio =
    on.Memcached_bench.avg_get_latency_ns /. off.Memcached_bench.avg_get_latency_ns
  in
  Alcotest.(check bool)
    (Printf.sprintf "GETs unaffected (ratio %.2f)" get_ratio)
    true
    (get_ratio > 0.8 && get_ratio < 1.2)

(* A multi-process application across every object kind ------------------- *)

let test_kitchen_sink_application () =
  (* A parent with a worker child, shared memory between them, a pipe, a
     UNIX socket pair with an in-flight message, open files (one
     anonymous), and a kqueue — checkpoint, crash, restore, verify it all
     still works and still shares. *)
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let parent = Syscall.spawn m ~name:"main" in
  let heap = Syscall.mmap_anon parent ~npages:32 in
  let heap_addr = Vm_space.addr_of_entry heap in
  Vm_space.write_string parent.Process.space ~addr:heap_addr "heap state";
  let shm_fd = Syscall.shm_open m parent ~name:"/bus" ~npages:4 in
  let shm_map = Syscall.mmap_shm parent ~fd:shm_fd in
  let shm_addr = Vm_space.addr_of_entry shm_map in
  let rd, wr = Syscall.pipe m parent in
  let sock_a, sock_b = Syscall.socketpair m parent in
  let log_fd = Syscall.open_file m parent ~path:"/log" ~create:true in
  ignore (Syscall.write m parent ~fd:log_fd "log line\n");
  let tmp_fd = Syscall.open_file m parent ~path:"/tmpdata" ~create:true in
  ignore (Syscall.write m parent ~fd:tmp_fd "scratch");
  ignore (Syscall.unlink m ~path:"/tmpdata");
  let child = Syscall.fork m parent in
  let shm_fd_child = Syscall.shm_open m child ~name:"/bus" ~npages:4 in
  let shm_map_child = Syscall.mmap_shm child ~fd:shm_fd_child in
  Vm_space.write_string child.Process.space
    ~addr:(Vm_space.addr_of_entry shm_map_child)
    "from child";
  ignore (Syscall.write m child ~fd:wr "pipe msg");
  Syscall.send_msg m parent ~fd:sock_a "in flight";
  let group = Sls.attach sys [ parent; child ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  let sys', result = Sls.reboot_and_restore sys in
  let m' = sys'.Sls.machine in
  match result.Restore.procs with
  | [ parent'; child' ] ->
      Alcotest.(check string) "heap" "heap state"
        (Vm_space.read_string parent'.Process.space ~addr:heap_addr ~len:10);
      Alcotest.(check string) "shared memory written by child" "from child"
        (Vm_space.read_string parent'.Process.space ~addr:shm_addr ~len:10);
      (* Sharing is still live: parent writes, child reads. *)
      Vm_space.write_string parent'.Process.space ~addr:shm_addr "rt sharing";
      Alcotest.(check string) "shm still shared" "rt sharing"
        (Vm_space.read_string child'.Process.space
           ~addr:(Vm_space.addr_of_entry shm_map_child)
           ~len:10);
      Alcotest.(check string) "pipe payload" "pipe msg"
        (Syscall.read m' parent' ~fd:rd ~len:64);
      (match Syscall.recv_msg m' parent' ~fd:sock_b with
      | Some (data, _) -> Alcotest.(check string) "socket message" "in flight" data
      | None -> Alcotest.fail "socket message lost");
      ignore (Syscall.lseek parent' ~fd:log_fd ~off:0);
      Alcotest.(check string) "named file" "log line\n"
        (Syscall.read m' parent' ~fd:log_fd ~len:64);
      ignore (Syscall.lseek parent' ~fd:tmp_fd ~off:0);
      Alcotest.(check string) "anonymous file" "scratch"
        (Syscall.read m' parent' ~fd:tmp_fd ~len:64);
      (* And the restored tree keeps running: fork a new child. *)
      let grandchild = Syscall.fork m' parent' in
      Syscall.exit m' grandchild ~code:0;
      Alcotest.(check bool) "restored app can fork and reap" true
        (Syscall.waitpid m' parent' <> None)
  | l -> Alcotest.failf "expected 2 processes, got %d" (List.length l)

let test_continuous_operation_across_crashes () =
  (* Three generations of crash/restore, each making progress; every
     generation's writes must be visible at the end. *)
  let sys = ref (Sls.boot ()) in
  let p = Syscall.spawn !sys.Sls.machine ~name:"journal-keeper" in
  let e = Syscall.mmap_anon p ~npages:16 in
  let addr = Vm_space.addr_of_entry e in
  let group = ref (Sls.attach !sys [ p ]) in
  let current = ref p in
  for generation = 0 to 2 do
    Vm_space.write_string !current.Process.space ~addr:(addr + (generation * 100))
      (Printf.sprintf "gen-%d" generation);
    ignore (Group.checkpoint ~wait_durable:true !group);
    let sys', result = Sls.reboot_and_restore !sys in
    sys := sys';
    group := result.Restore.group;
    current := List.hd result.Restore.procs
  done;
  for generation = 0 to 2 do
    Alcotest.(check string)
      (Printf.sprintf "generation %d visible" generation)
      (Printf.sprintf "gen-%d" generation)
      (Vm_space.read_string !current.Process.space ~addr:(addr + (generation * 100)) ~len:5)
  done

let test_pid_collision_scoped_signals () =
  (* Two restored groups can both contain "local pid 1"; a signal sent by
     a member must reach its own group's process (paper section 5.3's
     virtualization). *)
  let make_image () =
    let sys = Sls.boot () in
    let parent = Syscall.spawn sys.Sls.machine ~name:"leader" in
    Syscall.setsid parent;
    let child = Syscall.fork sys.Sls.machine parent in
    let group = Sls.attach sys [ parent; child ] in
    ignore (Group.checkpoint ~wait_durable:true group);
    Migrate.serialize ~store:sys.Sls.store
      ~epoch:(Store.last_complete_epoch sys.Sls.store)
  in
  let img_a = make_image () and img_b = make_image () in
  (* Install both applications on one machine. *)
  let host = Sls.boot () in
  let ea = Migrate.install ~store:host.Sls.store img_a in
  let ra = Restore.restore ~machine:host.Sls.machine ~store:host.Sls.store ~epoch:ea () in
  let eb = Migrate.install ~store:host.Sls.store img_b in
  let rb = Restore.restore ~machine:host.Sls.machine ~store:host.Sls.store ~epoch:eb () in
  let parent_a = List.hd ra.Restore.procs and child_a = List.nth ra.Restore.procs 1 in
  let parent_b = List.hd rb.Restore.procs and child_b = List.nth rb.Restore.procs 1 in
  Alcotest.(check int) "local pids collide" parent_a.Process.pid_local
    parent_b.Process.pid_local;
  (* A's parent signals A's child by local pid; B's child stays clean. *)
  ignore child_a;
  Alcotest.(check bool) "signal delivered" true
    (Syscall.kill ~by:parent_a host.Sls.machine ~pid:child_a.Process.pid_local ~signo:10);
  Alcotest.(check (option int)) "A's child got it" (Some 10) (Process.take_signal child_a);
  Alcotest.(check (option int)) "B's child did not" None (Process.take_signal child_b);
  ignore parent_b

let test_attach_new_process_to_running_group () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let a = Syscall.spawn m ~name:"first" in
  let group = Sls.attach sys [ a ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  (* A new worker joins the group mid-flight. *)
  let b = Syscall.spawn m ~name:"joined" in
  let e = Syscall.mmap_anon b ~npages:4 in
  Vm_space.write_string b.Process.space ~addr:(Vm_space.addr_of_entry e) "late joiner";
  Group.add_process group b;
  ignore (Group.checkpoint ~wait_durable:true group);
  let _sys', result = Sls.reboot_and_restore sys in
  Alcotest.(check int) "both restored" 2 (List.length result.Restore.procs);
  let b' =
    List.find (fun p -> p.Process.name = "joined") result.Restore.procs
  in
  Alcotest.(check string) "joiner's state" "late joiner"
    (Vm_space.read_string b'.Process.space ~addr:(Vm_space.addr_of_entry e) ~len:11)

let test_bounded_history_under_continuous_checkpointing () =
  (* Continuous 100 Hz persistence with periodic pruning keeps the store
     footprint bounded — the "history limited only by available storage"
     knob exercised the other way. *)
  let sys = Sls.boot () in
  let p = Syscall.spawn sys.Sls.machine ~name:"app" in
  let e = Syscall.mmap_anon p ~npages:64 in
  let addr = Vm_space.addr_of_entry e in
  let group = Sls.attach sys [ p ] in
  let high_water = ref 0 in
  for round = 1 to 30 do
    Vm_space.touch_write p.Process.space ~addr:(addr + (round mod 8 * 4096)) ~len:4096;
    ignore (Group.checkpoint ~wait_durable:true group);
    if round mod 5 = 0 then ignore (Store.prune_history sys.Sls.store ~keep:3);
    high_water := max !high_water (Store.blocks_allocated sys.Sls.store)
  done;
  let final = Store.blocks_allocated sys.Sls.store in
  Alcotest.(check bool)
    (Printf.sprintf "space bounded (final %d vs high water %d)" final !high_water)
    true
    (final <= !high_water && !high_water < 4000);
  (* And the latest state still restores. *)
  let _sys', result = Sls.reboot_and_restore sys in
  Alcotest.(check int) "restorable" 1 (List.length result.Restore.procs)

let test_mmap_file_unified_page_cache () =
  (* Files and memory are one: a store through a MAP_SHARED mapping is
     visible to read(2), persists with the checkpoint, and the restored
     process sees it both ways. *)
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let p = Syscall.spawn m ~name:"editor" in
  let fd = Syscall.open_file m p ~path:"/doc" ~create:true in
  ignore (Syscall.write m p ~fd (String.make 8192 '.'));
  let e = Syscall.mmap_file p ~fd ~npages:2 in
  let addr = Vm_space.addr_of_entry e in
  (* Store through memory... *)
  Vm_space.write_string p.Process.space ~addr "mmap wrote this";
  (* ...visible to read(2) immediately. *)
  ignore (Syscall.lseek p ~fd ~off:0);
  Alcotest.(check string) "unified page cache" "mmap wrote this"
    (Syscall.read m p ~fd ~len:15);
  (* And write(2) is visible through the mapping. *)
  ignore (Syscall.lseek p ~fd ~off:4096);
  ignore (Syscall.write m p ~fd "syscall wrote");
  Alcotest.(check string) "other direction" "syscall wrote"
    (Vm_space.read_string p.Process.space ~addr:(addr + 4096) ~len:13);
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  let sys', result = Sls.reboot_and_restore sys in
  match result.Restore.procs with
  | [ p' ] ->
      (* The memory store survived through the file object. *)
      ignore (Syscall.lseek p' ~fd ~off:0);
      Alcotest.(check string) "mmap store persisted" "mmap wrote this"
        (Syscall.read sys'.Sls.machine p' ~fd ~len:15);
      (* The mapping is back and still unified. *)
      Alcotest.(check string) "mapping restored" "mmap wrote this"
        (Vm_space.read_string p'.Process.space ~addr ~len:15);
      Vm_space.write_string p'.Process.space ~addr "post-restore edit";
      ignore (Syscall.lseek p' ~fd ~off:0);
      Alcotest.(check string) "still unified after restore" "post-restore edit"
        (Syscall.read sys'.Sls.machine p' ~fd ~len:17)
  | _ -> Alcotest.fail "expected 1 process"

let test_suspend_resume () =
  (* sls suspend: the application exists only in the store; sls resume
     brings it back on the same machine. *)
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let p = Syscall.spawn m ~name:"suspended-app" in
  let e = Syscall.mmap_anon p ~npages:8 in
  let addr = Vm_space.addr_of_entry e in
  Vm_space.write_string p.Process.space ~addr "parked state";
  let group = Sls.attach sys [ p ] in
  let epoch = Group.suspend group in
  Alcotest.(check bool) "gone from the machine" true
    (Machine.proc m p.Process.pid_global = None);
  let result = Restore.restore ~machine:m ~store:sys.Sls.store ~epoch () in
  (match result.Restore.procs with
  | [ p' ] ->
      Alcotest.(check string) "resumed with its state" "parked state"
        (Vm_space.read_string p'.Process.space ~addr ~len:12);
      Alcotest.(check int) "same local pid" p.Process.pid_local p'.Process.pid_local;
      Alcotest.(check bool) "fresh global pid" true
        (p'.Process.pid_global <> p.Process.pid_global)
  | _ -> Alcotest.fail "expected 1 process")

(* Chaos: random application lifecycles against a model ---------------------- *)

type chaos_op =
  | C_write of int * int  (* region index, slot *)
  | C_fork
  | C_open_write of int  (* file index *)
  | C_checkpoint
  | C_crash_restore

let chaos_gen =
  QCheck.Gen.(
    list_size (int_range 5 25)
      (frequency
         [
           (5, map2 (fun r s -> C_write (r, s)) (int_range 0 2) (int_range 0 31));
           (1, return C_fork);
           (2, map (fun f -> C_open_write f) (int_range 0 3));
           (3, return C_checkpoint);
           (1, return C_crash_restore);
         ]))

let chaos_prop ops =
  (* A model tracks what every durable byte should be; after every crash
     the restored world must match the model at the last checkpoint. *)
  let sys = ref (Sls.boot ()) in
  let root = Syscall.spawn !sys.Sls.machine ~name:"chaos-root" in
  let regions =
    List.init 3 (fun _ -> Vm_space.addr_of_entry (Syscall.mmap_anon root ~npages:32))
  in
  let group = ref (Sls.attach !sys [ root ]) in
  let current = ref root in
  let live_model = Hashtbl.create 64 in (* (region, slot) -> char *)
  let file_model = Hashtbl.create 8 in (* file index -> content *)
  let durable_mem = ref [] and durable_files = ref [] in
  let counter = ref 0 in
  let ok = ref true in
  let apply = function
    | C_write (r, slot) ->
        incr counter;
        let c = Char.chr (33 + (!counter mod 90)) in
        Vm_space.write_byte !current.Process.space
          ~addr:(List.nth regions r + (slot * Page.logical_size))
          c;
        Hashtbl.replace live_model (r, slot) c
    | C_fork ->
        (* Forked children stay out of the group: ephemeral workers. *)
        let child = Syscall.fork !sys.Sls.machine !current in
        Syscall.exit !sys.Sls.machine child ~code:0;
        ignore (Syscall.waitpid !sys.Sls.machine !current)
    | C_open_write f ->
        incr counter;
        let path = Printf.sprintf "/chaos/file%d" f in
        let content = Printf.sprintf "content-%d" !counter in
        let fd = Syscall.open_file !sys.Sls.machine !current ~path ~create:true in
        ignore (Syscall.write !sys.Sls.machine !current ~fd content);
        Syscall.close !current fd;
        Hashtbl.replace file_model f content
    | C_checkpoint ->
        ignore (Group.checkpoint ~wait_durable:true !group);
        durable_mem := Hashtbl.fold (fun k v acc -> (k, v) :: acc) live_model [];
        durable_files := Hashtbl.fold (fun k v acc -> (k, v) :: acc) file_model []
    | C_crash_restore ->
        if Store.last_complete_epoch !sys.Sls.store > 0 then begin
          let sys', result = Sls.reboot_and_restore !sys in
          sys := sys';
          group := result.Restore.group;
          (match result.Restore.procs with
          | p :: _ -> current := p
          | [] -> ok := false);
          (* The world reverts to the last durable point. *)
          Hashtbl.reset live_model;
          List.iter (fun (k, v) -> Hashtbl.replace live_model k v) !durable_mem;
          Hashtbl.reset file_model;
          List.iter (fun (k, v) -> Hashtbl.replace file_model k v) !durable_files;
          (* Verify memory... *)
          Hashtbl.iter
            (fun (r, slot) c ->
              if
                Vm_space.read_byte !current.Process.space
                  ~addr:(List.nth regions r + (slot * Page.logical_size))
                <> c
              then ok := false)
            live_model;
          (* ...and files. *)
          Hashtbl.iter
            (fun f content ->
              let path = Printf.sprintf "/chaos/file%d" f in
              try
                let fd = Syscall.open_file !sys.Sls.machine !current ~path ~create:false in
                if Syscall.read !sys.Sls.machine !current ~fd ~len:100 <> content then
                  ok := false
              with Syscall.Err _ -> ok := false)
            file_model
        end
  in
  List.iter apply ops;
  !ok

(* TCP across checkpoints (paper section 5.3) ------------------------------- *)

let test_tcp_accept_queue_dropped_established_kept () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let server = Syscall.spawn m ~name:"server" in
  let listen_fd = Syscall.socket m server Aurora_kern.Socket.Inet Aurora_kern.Socket.Tcp in
  Syscall.bind server ~fd:listen_fd { Aurora_kern.Socket.host = "10.0.0.1"; port = 80 };
  Syscall.listen server ~fd:listen_fd;
  let client = Syscall.spawn m ~name:"client" in
  (* One connection is fully established before the checkpoint... *)
  let c1 = Syscall.socket m client Aurora_kern.Socket.Inet Aurora_kern.Socket.Tcp in
  Alcotest.(check bool) "syn accepted" true
    (Syscall.tcp_connect m client ~fd:c1 { Aurora_kern.Socket.host = "10.0.0.1"; port = 80 });
  let conn_fd =
    match Syscall.accept m server ~fd:listen_fd with
    | Some fd -> fd
    | None -> Alcotest.fail "accept failed"
  in
  ignore (Syscall.write m server ~fd:conn_fd "hello client");
  (* ...another is still sitting in the accept queue (SYN only). *)
  let c2 = Syscall.socket m client Aurora_kern.Socket.Inet Aurora_kern.Socket.Tcp in
  ignore
    (Syscall.tcp_connect m client ~fd:c2 { Aurora_kern.Socket.host = "10.0.0.1"; port = 80 });
  let group = Sls.attach sys [ server; client ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  let sys', result = Sls.reboot_and_restore sys in
  let m' = sys'.Sls.machine in
  match result.Restore.procs with
  | [ server'; client' ] ->
      (* The established connection survived with its buffers and its
         sequence state. *)
      Alcotest.(check string) "established data" "hello client"
        (Syscall.read m' client' ~fd:c1 ~len:64);
      (match (Syscall.fd_exn server' conn_fd).Aurora_kern.Fdesc.kind with
      | Aurora_kern.Fdesc.Socket_fd s -> (
          match Aurora_kern.Socket.tcp_state s with
          | Aurora_kern.Socket.Tcp_established _ -> ()
          | _ -> Alcotest.fail "connection lost its established state")
      | _ -> Alcotest.fail "wrong fd kind");
      (* The pending SYN was dropped: accept finds nothing, and the client
         simply retries, as real clients do. *)
      Alcotest.(check (option int)) "accept queue dropped" None
        (Syscall.accept m' server' ~fd:listen_fd);
      Alcotest.(check bool) "client retry succeeds" true
        (Syscall.tcp_connect m' client' ~fd:c2
           { Aurora_kern.Socket.host = "10.0.0.1"; port = 80 });
      Alcotest.(check bool) "retried connection accepted" true
        (Syscall.accept m' server' ~fd:listen_fd <> None)
  | _ -> Alcotest.fail "expected 2 processes"

let test_multithreaded_process_roundtrip () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let p = Syscall.spawn m ~name:"threads" in
  for i = 1 to 7 do
    let thr = Syscall.spawn_thread m p in
    Aurora_kern.Thread.set_rip thr (0x1000 * i);
    Aurora_kern.Thread.set_sigmask thr i
  done;
  (* One thread is asleep in a syscall at checkpoint time. *)
  (List.nth p.Process.threads 3).Aurora_kern.Thread.state <-
    Aurora_kern.Thread.Sleeping_syscall "poll";
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  let _sys', result = Sls.reboot_and_restore sys in
  match result.Restore.procs with
  | [ p' ] ->
      Alcotest.(check int) "all threads restored" 8 (List.length p'.Process.threads);
      List.iteri
        (fun i (thr : Aurora_kern.Thread.t) ->
          if i > 0 then begin
            Alcotest.(check int)
              (Printf.sprintf "thread %d rip" i)
              ((0x1000 * i) - if i = 3 then Aurora_kern.Thread.syscall_insn_len else 0)
              thr.Aurora_kern.Thread.regs.Aurora_kern.Thread.rip;
            Alcotest.(check int) "sigmask" i thr.Aurora_kern.Thread.sigmask
          end)
        p'.Process.threads
  | _ -> Alcotest.fail "expected 1 process"

(* Asynchronous I/O across checkpoints (paper section 5.3) ----------------- *)

let test_aio_write_delays_checkpoint_completion () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let p = Syscall.spawn m ~name:"db" in
  let fd = Syscall.open_file m p ~path:"/wal" ~create:true in
  let group = Sls.attach sys [ p ] in
  ignore (Syscall.aio_write m p ~fd ~off:0 "in-flight write");
  let stats = Group.checkpoint group in
  (* The checkpoint is not durable before the AIO completes. *)
  let pending = Syscall.aio_pending m p in
  (match pending with
  | [ aio ] ->
      Alcotest.(check bool) "durable_at covers the aio" true
        (stats.Group.durable_at >= aio.Aurora_kern.Aio.done_at)
  | _ -> Alcotest.fail "expected one pending aio");
  (* Once the AIO-inclusive durability point passes, a crash is safe. *)
  Clock.advance_to m.Machine.clock stats.Group.durable_at;
  let _sys', result = Sls.reboot_and_restore sys in
  match result.Restore.procs with
  | [ p' ] ->
      ignore (Syscall.lseek p' ~fd ~off:0);
      Alcotest.(check string) "aio data checkpointed" "in-flight write"
        (Syscall.read m p' ~fd ~len:64)
  | _ -> Alcotest.fail "expected 1 process"

let test_aio_read_reissued_on_restore () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let p = Syscall.spawn m ~name:"reader" in
  let fd = Syscall.open_file m p ~path:"/data" ~create:true in
  ignore (Syscall.write m p ~fd "read me back");
  let id = Syscall.aio_read m p ~fd ~off:0 ~len:12 in
  ignore id;
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  let sys', result = Sls.reboot_and_restore sys in
  match result.Restore.procs with
  | [ p' ] -> (
      (* The read was reissued in the new machine; completing it returns
         the data as if the crash never happened. *)
      match Syscall.aio_pending sys'.Sls.machine p' with
      | [ aio ] ->
          Alcotest.(check string) "reissued read returns data" "read me back"
            (Syscall.aio_complete sys'.Sls.machine p' ~id:aio.Aurora_kern.Aio.aio_id)
      | l -> Alcotest.failf "expected 1 reissued aio, got %d" (List.length l))
  | _ -> Alcotest.fail "expected 1 process"

let test_device_mapping_reinjected () =
  (* A read-only device mapping (the HPET / vDSO) is re-injected fresh at
     restore rather than restored from the image (section 5.3). *)
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let p = Syscall.spawn m ~name:"timekeeper" in
  ignore (Syscall.open_device m p ~name:"hpet0");
  let dev_obj = Vm_object.create (Vm_object.Device_backed "hpet0") in
  ignore
    (Vm_space.map_object p.Process.space ~obj:dev_obj ~obj_pgoff:0 ~npages:1
       ~prot:Vm_map.prot_ro);
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  let _sys', result = Sls.reboot_and_restore sys in
  match result.Restore.procs with
  | [ p' ] ->
      let has_device =
        List.exists
          (fun (e : Vm_map.entry) ->
            match Vm_object.kind e.Vm_map.obj with
            | Vm_object.Device_backed _ -> true
            | Vm_object.Anonymous | Vm_object.Vnode_backed _ -> false)
          (Vm_map.entries (Vm_space.map p'.Process.space))
      in
      Alcotest.(check bool) "device mapping re-injected" true has_device;
      (match Process.fd p' 0 with
      | Some d -> Alcotest.(check string) "device fd kind" "device" (Aurora_kern.Fdesc.kind_name d)
      | None -> Alcotest.fail "device fd missing")
  | _ -> Alcotest.fail "expected 1 process"

let test_two_consistency_groups_one_store () =
  (* Two independent applications (containers) on one machine, each its
     own consistency group, checkpointing into the shared store at their
     own cadence; each restores independently after the crash. *)
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let mk name text =
    let p = Syscall.spawn m ~name in
    let e = Syscall.mmap_anon p ~npages:8 in
    let addr = Vm_space.addr_of_entry e in
    Vm_space.write_string p.Process.space ~addr text;
    (p, addr)
  in
  let pa, addr_a = mk "container-a" "alpha state" in
  let pb, addr_b = mk "container-b" "beta state!" in
  let ga = Sls.attach sys [ pa ] in
  let gb = Sls.attach sys [ pb ] in
  ignore (Group.checkpoint ~wait_durable:true ga);
  ignore (Group.checkpoint ~wait_durable:true gb);
  (* A checkpoints again; B's state carries forward untouched. *)
  Vm_space.write_string pa.Process.space ~addr:addr_a "alpha v2 !!";
  ignore (Group.checkpoint ~wait_durable:true ga);
  Sls.crash sys;
  let machine = Machine.create () in
  let store = Store.recover ~dev:sys.Sls.device ~clock:machine.Machine.clock in
  let epoch = Store.last_complete_epoch store in
  let groups = Restore.groups_at ~store ~epoch in
  Alcotest.(check int) "two groups in the checkpoint" 2 (List.length groups);
  (* Restoring without choosing is ambiguous. *)
  Alcotest.(check bool) "ambiguity rejected" true
    (try
       ignore (Restore.restore ~machine ~store ());
       false
     with Failure _ -> true);
  let restore_group oid =
    let m2 = Machine.create () in
    (Restore.restore ~machine:m2 ~store ~group_oid:oid ()).Restore.procs
  in
  let contents =
    List.map
      (fun (oid, _) ->
        match restore_group oid with
        | [ p ] ->
            let addr =
              if p.Process.name = "container-a" then addr_a else addr_b
            in
            (p.Process.name, Vm_space.read_string p.Process.space ~addr ~len:11)
        | _ -> Alcotest.fail "expected one process per group")
      groups
    |> List.sort compare
  in
  Alcotest.(check (list (pair string string)))
    "both groups restore their own state"
    [ ("container-a", "alpha v2 !!"); ("container-b", "beta state!") ]
    contents

let test_multi_round_precopy_migration () =
  (* Three pre-copy rounds: the stream shrinks every round as the dirty
     set stabilizes, and the destination resumes the final state. *)
  let src = Sls.boot () in
  let p = Syscall.spawn src.Sls.machine ~name:"svc" in
  let e = Syscall.mmap_anon p ~npages:512 in
  let addr = Vm_space.addr_of_entry e in
  Vm_space.touch_write p.Process.space ~addr ~len:(512 * 4096);
  let group = Sls.attach src [ p ] in
  let dst = Sls.boot () in
  let prev_epoch = ref 0 in
  let sizes =
    List.map
      (fun round ->
        Vm_space.write_string p.Process.space ~addr (Printf.sprintf "round-%d!" round);
        (* A shrinking dirty set with round-distinct contents. *)
        let dirty_pages = 64 / (round * round) in
        for i = 0 to dirty_pages - 1 do
          Vm_space.write_byte p.Process.space
            ~addr:(addr + ((i + 1) * 4096) + round)
            (Char.chr (Char.code 'a' + round))
        done;
        let stats = Group.checkpoint ~wait_durable:true group in
        let stream =
          if !prev_epoch = 0 then
            Migrate.serialize ~store:src.Sls.store ~epoch:stats.Group.epoch
          else
            Migrate.serialize_incremental ~store:src.Sls.store ~base:!prev_epoch
              ~epoch:stats.Group.epoch
        in
        prev_epoch := stats.Group.epoch;
        ignore (Migrate.install ~store:dst.Sls.store stream);
        Migrate.stream_size stream)
      [ 1; 2; 3 ]
  in
  (match sizes with
  | [ s1; s2; s3 ] ->
      Alcotest.(check bool)
        (Printf.sprintf "monotone shrinking stream (%d %d %d)" s1 s2 s3)
        true
        (s1 > s2 && s2 > s3)
  | _ -> Alcotest.fail "expected three rounds");
  let result = Restore.restore ~machine:dst.Sls.machine ~store:dst.Sls.store () in
  match result.Restore.procs with
  | [ p' ] ->
      Alcotest.(check string) "final round state" "round-3!"
        (Vm_space.read_string p'.Process.space ~addr ~len:8)
  | _ -> Alcotest.fail "expected 1 process"

let test_coredump_multiprocess () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let parent = Syscall.spawn m ~name:"web-main" in
  let child = Syscall.fork m parent in
  ignore (Syscall.pipe m parent);
  let group = Sls.attach sys [ parent; child ] in
  let stats = Group.checkpoint ~wait_durable:true group in
  let dump = Aurora_core.Coredump.dump ~store:sys.Sls.store ~epoch:stats.Group.epoch in
  let count needle =
    let re = Str.regexp_string needle in
    let rec go pos acc =
      match Str.search_forward re dump pos with
      | p -> go (p + 1) (acc + 1)
      | exception Not_found -> acc
    in
    go 0 0
  in
  Alcotest.(check int) "two process sections" 2 (count "Process ");
  Alcotest.(check bool) "pipe note present" true (count "sls.pipe" >= 1)

(* Record/replay bounded by checkpoints ------------------------------------ *)

let test_record_replay_roundtrip () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let p = Syscall.spawn m ~name:"deterministic-app" in
  let a, b = Syscall.socketpair m p in
  let group = Sls.attach sys [ p ] in
  let recorder = Aurora_core.Replay.Recorder.attach group in
  ignore (Group.checkpoint ~wait_durable:true group);
  Aurora_core.Replay.Recorder.on_checkpoint recorder;
  (* The app consumes non-deterministic inputs, recorded as it goes. *)
  Syscall.send_msg m p ~fd:a "input-1";
  Syscall.send_msg m p ~fd:a "input-2";
  let r1 = Aurora_core.Replay.Recorder.recv_msg recorder p ~fd:b in
  let t1 = Aurora_core.Replay.Recorder.read_clock recorder in
  let r2 = Aurora_core.Replay.Recorder.recv_msg recorder p ~fd:b in
  Alcotest.(check (option string)) "live input 1" (Some "input-1") r1;
  Alcotest.(check (option string)) "live input 2" (Some "input-2") r2;
  Alcotest.(check int) "three entries since checkpoint" 3
    (Aurora_core.Replay.Recorder.log_length recorder);
  let jid = Aurora_core.Replay.Recorder.journal_id recorder in
  (* Crash.  Restore the checkpoint and replay the log: identical
     execution. *)
  Sls.crash sys;
  let machine = Machine.create () in
  let store = Store.recover ~dev:sys.Sls.device ~clock:machine.Machine.clock in
  let log = Aurora_core.Replay.recover ~store ~journal_id:jid in
  Alcotest.(check int) "log recovered" 3 (List.length log);
  let replayer = Aurora_core.Replay.Replayer.create log in
  Alcotest.(check (option string)) "replayed input 1" (Some "input-1")
    (Aurora_core.Replay.Replayer.recv_msg replayer ~fd:b);
  Alcotest.(check (option int)) "replayed clock" (Some t1)
    (Aurora_core.Replay.Replayer.read_clock replayer);
  Alcotest.(check (option string)) "replayed input 2" (Some "input-2")
    (Aurora_core.Replay.Replayer.recv_msg replayer ~fd:b);
  (* Log exhausted: live execution resumes. *)
  Alcotest.(check (option string)) "log exhausted" None
    (Aurora_core.Replay.Replayer.recv_msg replayer ~fd:b)

let test_record_log_bounded_by_checkpoints () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let p = Syscall.spawn m ~name:"app" in
  let a, b = Syscall.socketpair m p in
  let group = Sls.attach sys [ p ] in
  let recorder = Aurora_core.Replay.Recorder.attach group in
  for round = 1 to 10 do
    for i = 1 to 50 do
      Syscall.send_msg m p ~fd:a (Printf.sprintf "%d-%d" round i);
      ignore (Aurora_core.Replay.Recorder.recv_msg recorder p ~fd:b)
    done;
    ignore (Group.checkpoint ~wait_durable:true group);
    Aurora_core.Replay.Recorder.on_checkpoint recorder
  done;
  (* 500 inputs recorded, but the retained log is empty: each checkpoint
     superseded the inputs before it. *)
  Alcotest.(check int) "log truncated at checkpoints" 0
    (Aurora_core.Replay.Recorder.log_length recorder)

(* High availability by continuous checkpoint shipping --------------------- *)

let test_ha_failover () =
  let primary_sys = Sls.boot () in
  let p = Syscall.spawn primary_sys.Sls.machine ~name:"service" in
  let e = Syscall.mmap_anon p ~npages:64 in
  let addr = Vm_space.addr_of_entry e in
  Vm_space.touch_write p.Process.space ~addr ~len:(64 * 4096);
  let group = Sls.attach primary_sys [ p ] in
  let standby_sys = Sls.boot () in
  let ha = Aurora_core.Ha.create ~primary:group ~standby_store:standby_sys.Sls.store () in
  (* Steady state: checkpoint, replicate, repeat. *)
  let first_bytes = ref 0 and later_bytes = ref 0 in
  for round = 1 to 5 do
    Vm_space.write_string p.Process.space ~addr (Printf.sprintf "round-%d" round);
    ignore (Group.checkpoint ~wait_durable:true group);
    let b = match Aurora_core.Ha.replicate_result ha with Ok b -> b | Error e -> Alcotest.fail e in
    if round = 1 then first_bytes := b else later_bytes := !later_bytes + b
  done;
  Alcotest.(check int) "standby is current" 0 (Aurora_core.Ha.lag_epochs ha);
  (* Incremental rounds ship far less than the initial full stream. *)
  Alcotest.(check bool)
    (Printf.sprintf "deltas are small (%d first vs %d for 4 later)" !first_bytes !later_bytes)
    true
    (!later_bytes * 4 < !first_bytes);
  (* The primary machine AND its devices are destroyed; only the standby
     survives. *)
  let takeover = Machine.create () in
  let result = Aurora_core.Ha.failover ha ~machine:takeover in
  (match result.Restore.procs with
  | [ p' ] ->
      Alcotest.(check string) "standby has the last replicated state" "round-5"
        (Vm_space.read_string p'.Process.space ~addr ~len:7)
  | _ -> Alcotest.fail "expected 1 process");
  (* The recovery point is explicit: anything after the last replicate
     would be lost — write one more round without replicating. *)
  Vm_space.write_string p.Process.space ~addr "round-6";
  ignore (Group.checkpoint ~wait_durable:true group);
  Alcotest.(check int) "one epoch of lag" 1 (Aurora_core.Ha.lag_epochs ha)

(* Store robustness -------------------------------------------------------- *)

let test_wire_fuzz_rejects_garbage () =
  (* Random bytes must never crash the parsers with anything other than
     the typed corruption exceptions. *)
  let rng = Aurora_util.Rng.create 99 in
  for _ = 1 to 2000 do
    let len = Aurora_util.Rng.int rng 200 in
    let garbage =
      Bytes.init len (fun _ -> Char.chr (Aurora_util.Rng.int rng 256))
    in
    let r = Wire.reader garbage in
    (try ignore (Wire.rstr r) with Wire.Corrupt _ -> ());
    (try ignore (Wire.rlist r Wire.ru64) with Wire.Corrupt _ -> ())
  done;
  (* The high-level image parsers surface exactly one typed exception. *)
  for _ = 1 to 500 do
    let len = Aurora_util.Rng.int rng 100 in
    let garbage =
      String.init len (fun _ -> Char.chr (Aurora_util.Rng.int rng 256))
    in
    List.iter
      (fun parse ->
        try ignore (parse garbage) with Aurora_core.Serial.Malformed _ -> ())
      [
        (fun s -> ignore (Aurora_core.Serial.proc_of_string s));
        (fun s -> ignore (Aurora_core.Serial.socket_of_string s));
        (fun s -> ignore (Aurora_core.Serial.fdesc_of_string s));
        (fun s -> ignore (Aurora_core.Serial.group_of_string s));
      ]
  done;
  Alcotest.(check pass) "no unexpected exceptions" () ()

let test_migrate_stream_fuzz () =
  let rng = Aurora_util.Rng.create 7 in
  for _ = 1 to 200 do
    let len = Aurora_util.Rng.int rng 400 in
    let garbage =
      String.init len (fun _ -> Char.chr (Aurora_util.Rng.int rng 256))
    in
    let sys = lazy (Sls.boot ()) in
    match Migrate.install ~store:(Lazy.force sys).Sls.store garbage with
    | _ -> Alcotest.fail "garbage stream accepted"
    | exception Failure _ -> ()
    | exception Wire.Corrupt _ -> ()
  done;
  Alcotest.(check pass) "garbage streams rejected" () ()

let test_history_prune_preserves_latest_restorability () =
  let sys = Sls.boot () in
  let p = Syscall.spawn sys.Sls.machine ~name:"app" in
  let e = Syscall.mmap_anon p ~npages:8 in
  let addr = Vm_space.addr_of_entry e in
  let group = Sls.attach sys [ p ] in
  for i = 1 to 12 do
    Vm_space.write_string p.Process.space ~addr (Printf.sprintf "state-%02d" i);
    ignore (Group.checkpoint ~wait_durable:true group)
  done;
  ignore (Store.prune_history sys.Sls.store ~keep:3);
  let _sys', result = Sls.reboot_and_restore sys in
  match result.Restore.procs with
  | [ p' ] ->
      Alcotest.(check string) "latest state restorable after pruning" "state-12"
        (Vm_space.read_string p'.Process.space ~addr ~len:8)
  | _ -> Alcotest.fail "expected 1 process"

let test_journal_and_checkpoint_interleaving () =
  (* The Aurora API pattern: journal between checkpoints; after a crash
     the journal records since the last checkpoint are exactly the
     recovery log. *)
  let sys = Sls.boot () in
  let p = Syscall.spawn sys.Sls.machine ~name:"db" in
  let group = Sls.attach sys [ p ] in
  let j = Api.sls_journal_open group ~size:(1024 * 1024) in
  Api.sls_journal group j "op-1";
  Api.sls_journal group j "op-2";
  ignore (Group.checkpoint ~wait_durable:true group);
  Api.sls_journal_truncate group j;
  Api.sls_journal group j "op-3";
  Sls.crash sys;
  let machine = Machine.create () in
  let store = Store.recover ~dev:sys.Sls.device ~clock:machine.Machine.clock in
  (match Store.journal_find store (Api.journal_id j) with
  | Some j' ->
      Alcotest.(check (list string)) "only post-checkpoint records" [ "op-3" ]
        (Store.journal_records store j')
  | None -> Alcotest.fail "journal lost");
  Alcotest.(check bool) "checkpoint present" true (Store.last_complete_epoch store > 0)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"chaos: random lifecycles match the model" ~count:20
         (QCheck.make chaos_gen)
         chaos_prop);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"evict/touch interleavings preserve content" ~count:15
         QCheck.(list_of_size (Gen.int_range 1 20) (pair bool (int_range 0 63)))
         (fun actions ->
           (* Interleave page evictions with reads/writes at random; every
              read must see the last written value for its slot. *)
           let sys = Sls.boot () in
           let p = Syscall.spawn sys.Sls.machine ~name:"app" in
           let e = Syscall.mmap_anon p ~npages:64 in
           let addr = Vm_space.addr_of_entry e in
           Vm_space.touch_write p.Process.space ~addr ~len:(64 * 4096);
           let group = Sls.attach sys [ p ] in
           ignore (Group.checkpoint ~wait_durable:true group);
           ignore (Group.checkpoint ~wait_durable:true group);
           let model = Hashtbl.create 64 in
           List.for_all
             (fun (evict, slot) ->
               if evict then begin
                 ignore (Group.checkpoint ~wait_durable:true group);
                 ignore (Group.checkpoint ~wait_durable:true group);
                 ignore (Group.evict_clean_pages group ~target:32);
                 true
               end
               else begin
                 let a = addr + (slot * 4096) in
                 let c = Char.chr (Char.code 'a' + (slot mod 26)) in
                 Vm_space.write_byte p.Process.space ~addr:a c;
                 Hashtbl.replace model slot c;
                 Hashtbl.fold
                   (fun s c ok ->
                     ok
                     && Vm_space.read_byte p.Process.space ~addr:(addr + (s * 4096)) = c)
                   model true
               end)
             actions));
  ]

let () =
  Alcotest.run "aurora_integration"
    [
      ( "swap",
        [
          Alcotest.test_case "evict and fault back" `Quick test_swap_evict_and_fault_back;
          Alcotest.test_case "zero-copy eviction" `Quick test_swap_eviction_is_zero_copy;
          Alcotest.test_case "evicted pages survive crash" `Quick
            test_swapped_pages_survive_checkpoint_and_crash;
          Alcotest.test_case "lazy restore demand paging" `Quick
            test_lazy_restore_demand_pages_through_pager;
          Alcotest.test_case "madvise guides eviction" `Quick test_madvise_guides_eviction;
        ] );
      ( "external synchrony",
        [ Alcotest.test_case "delays sets only" `Slow test_ext_sync_delays_sets_only ] );
      ( "scenarios",
        [
          Alcotest.test_case "kitchen sink" `Quick test_kitchen_sink_application;
          Alcotest.test_case "crash generations" `Quick test_continuous_operation_across_crashes;
          Alcotest.test_case "journal interleaving" `Quick test_journal_and_checkpoint_interleaving;
          Alcotest.test_case "two groups one store" `Quick test_two_consistency_groups_one_store;
          Alcotest.test_case "suspend/resume" `Quick test_suspend_resume;
          Alcotest.test_case "mmap file unified" `Quick test_mmap_file_unified_page_cache;
          Alcotest.test_case "scoped pid signals" `Quick test_pid_collision_scoped_signals;
          Alcotest.test_case "late attach" `Quick test_attach_new_process_to_running_group;
          Alcotest.test_case "bounded history" `Quick test_bounded_history_under_continuous_checkpointing;
          Alcotest.test_case "prune then restore" `Quick test_history_prune_preserves_latest_restorability;
        ] );
      ("high availability", [ Alcotest.test_case "failover" `Quick test_ha_failover ]);
      ( "migration",
        [
          Alcotest.test_case "multi-round pre-copy" `Quick test_multi_round_precopy_migration;
          Alcotest.test_case "coredump multiprocess" `Quick test_coredump_multiprocess;
        ] );
      ( "record/replay",
        [
          Alcotest.test_case "roundtrip" `Quick test_record_replay_roundtrip;
          Alcotest.test_case "log bounded" `Quick test_record_log_bounded_by_checkpoints;
        ] );
      ( "tcp and threads",
        [
          Alcotest.test_case "accept queue semantics" `Quick
            test_tcp_accept_queue_dropped_established_kept;
          Alcotest.test_case "multithreaded roundtrip" `Quick
            test_multithreaded_process_roundtrip;
        ] );
      ( "aio and devices",
        [
          Alcotest.test_case "aio write delays durability" `Quick
            test_aio_write_delays_checkpoint_completion;
          Alcotest.test_case "aio read reissued" `Quick test_aio_read_reissued_on_restore;
          Alcotest.test_case "device mapping re-injected" `Quick test_device_mapping_reinjected;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "wire fuzz" `Quick test_wire_fuzz_rejects_garbage;
          Alcotest.test_case "migrate stream fuzz" `Quick test_migrate_stream_fuzz;
        ] );
      ("properties", qcheck_tests);
    ]
