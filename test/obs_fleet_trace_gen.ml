(* Two-tenant fleet golden-trace generator.

   Boots a two-tenant fleet on one clock, traces two checkpoint periods of
   the staggered scheduler, and prints the text timeline.  The fixture is
   an executable proof that the TDM schedule partitions the clock: tenant
   t0's flush spans sit inside its own window and t1's inside the other,
   with no overlap — and every device span carries the tenant attribution
   arg threaded through the shared arbiter lane.

   `dune build @obs` diffs the output against obs_fleet_golden.expected;
   refresh after an intentional scheduling change with
   `dune build @obs-golden-promote --auto-promote`. *)

module Fleet = Aurora_core.Fleet
module Trace = Aurora_obs.Trace

let period = 10_000_000 (* 10 ms *)

let () =
  let f = Fleet.create ~period_ns:period [ Fleet.default_spec "t0"; Fleet.default_spec "t1" ] in
  Trace.enable ~capacity:(1 lsl 16) ~clock:(Fleet.clock f) ();
  Fleet.run_for f ~duration:(2 * period);
  if Trace.dropped () > 0 then (
    prerr_endline "obs_fleet_trace_gen: ring buffer overflowed; raise capacity";
    exit 1);
  let r = Fleet.report f in
  if r.Fleet.r_collisions <> 0 then (
    Printf.eprintf "obs_fleet_trace_gen: %d flush-window collisions\n" r.Fleet.r_collisions;
    exit 1);
  print_string (Trace.export_text ())
