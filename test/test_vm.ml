module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost
module Page = Aurora_vm.Page
module Vm_object = Aurora_vm.Vm_object
module Pmap = Aurora_vm.Pmap
module Vm_map = Aurora_vm.Vm_map
module Vm_space = Aurora_vm.Vm_space

let test_page_roundtrip () =
  let p = Page.alloc () in
  Page.set p 0 'a';
  Page.set p 4095 'z';
  Alcotest.(check char) "first byte" 'a' (Page.get p 0);
  Alcotest.(check char) "folded offset" 'z' (Page.get p (4095 mod 64 + 64 * 10));
  let q = Page.copy p in
  Alcotest.(check bool) "copy content equal" true (Page.equal_content p q);
  Alcotest.(check bool) "copy identity differs" false (Page.id p = Page.id q);
  Page.set q 0 'b';
  Alcotest.(check char) "copies independent" 'a' (Page.get p 0)

let test_page_payload () =
  let p = Page.alloc_init (fun i -> Char.chr (i mod 256)) in
  let payload = Page.blit_payload p in
  Alcotest.(check int) "payload size" Page.payload_size (Bytes.length payload);
  let q = Page.alloc () in
  Page.load_payload q payload;
  Alcotest.(check bool) "load restores content" true (Page.equal_content p q)

let test_object_shadow_lookup () =
  let clock = Clock.create () in
  let base = Vm_object.create Vm_object.Anonymous in
  let p0 = Page.alloc () in
  Page.set p0 0 'b';
  Vm_object.insert_page base 0 p0;
  let shadow = Vm_object.shadow ~clock base in
  Alcotest.(check int) "chain length" 2 (Vm_object.chain_length shadow);
  (match Vm_object.lookup ~clock shadow 0 with
  | Some (p, src) ->
      Alcotest.(check bool) "found in parent" true (src == base);
      Alcotest.(check char) "content" 'b' (Page.get p 0)
  | None -> Alcotest.fail "page not found through shadow");
  (* A private page in the shadow wins over the parent's. *)
  let priv = Page.alloc () in
  Page.set priv 0 's';
  Vm_object.insert_page shadow 0 priv;
  match Vm_object.lookup ~clock shadow 0 with
  | Some (p, src) ->
      Alcotest.(check bool) "found in shadow" true (src == shadow);
      Alcotest.(check char) "shadow content wins" 's' (Page.get p 0)
  | None -> Alcotest.fail "page not found"

let test_object_lookup_charges_hops () =
  let clock = Clock.create () in
  let base = Vm_object.create Vm_object.Anonymous in
  Vm_object.insert_page base 3 (Page.alloc ());
  let s1 = Vm_object.shadow ~clock base in
  let s2 = Vm_object.shadow ~clock s1 in
  let before = Clock.now clock in
  ignore (Vm_object.lookup ~clock s2 3);
  Alcotest.(check int) "two hops charged" (2 * Cost.shadow_chain_hop)
    (Clock.now clock - before)

let make_chain ~parent_pages ~shadow_pages =
  let clock = Clock.create () in
  let base = Vm_object.create Vm_object.Anonymous in
  for i = 0 to parent_pages - 1 do
    Vm_object.insert_page base i (Page.alloc ())
  done;
  let shadow = Vm_object.shadow ~clock base in
  for i = 0 to shadow_pages - 1 do
    let p = Page.alloc () in
    Page.set p 0 'S';
    Vm_object.insert_page shadow i p
  done;
  (clock, base, shadow)

let test_collapse_stock_direction () =
  let clock, _base, shadow = make_chain ~parent_pages:100 ~shadow_pages:3 in
  let survivor = Vm_object.collapse ~clock ~direction:Vm_object.Stock_freebsd shadow in
  Alcotest.(check bool) "shadow survives" true (survivor == shadow);
  (* Moves = parent pages without a shadow version. *)
  Alcotest.(check int) "moves" 97 (Vm_object.pages_moved_by_last_collapse ());
  Alcotest.(check int) "all pages present" 100 (Vm_object.resident_pages survivor);
  Alcotest.(check int) "chain collapsed" 1 (Vm_object.chain_length survivor)

let test_collapse_aurora_direction () =
  let clock, base, shadow = make_chain ~parent_pages:100 ~shadow_pages:3 in
  let survivor = Vm_object.collapse ~clock ~direction:Vm_object.Aurora_reverse shadow in
  Alcotest.(check bool) "parent survives" true (survivor == base);
  Alcotest.(check int) "moves only shadow pages" 3 (Vm_object.pages_moved_by_last_collapse ());
  Alcotest.(check int) "all pages present" 100 (Vm_object.resident_pages survivor);
  (* The shadow's version of overlapping pages wins in both directions. *)
  match Vm_object.lookup ~clock survivor 0 with
  | Some (p, _) -> Alcotest.(check char) "shadow version wins" 'S' (Page.get p 0)
  | None -> Alcotest.fail "page missing after collapse"

let test_collapse_directions_agree () =
  let content survivor clock n =
    List.init n (fun i ->
        match Vm_object.lookup ~clock survivor i with
        | Some (p, _) -> Some (Page.get p 0)
        | None -> None)
  in
  let clock1, _, sh1 = make_chain ~parent_pages:20 ~shadow_pages:7 in
  let s1 = Vm_object.collapse ~clock:clock1 ~direction:Vm_object.Stock_freebsd sh1 in
  let clock2, _, sh2 = make_chain ~parent_pages:20 ~shadow_pages:7 in
  let s2 = Vm_object.collapse ~clock:clock2 ~direction:Vm_object.Aurora_reverse sh2 in
  Alcotest.(check bool)
    "both directions yield the same logical content" true
    (content s1 clock1 20 = content s2 clock2 20)

let test_collapse_cost_asymmetry () =
  (* The paper's optimization: with a big parent and a small shadow, the
     reverse collapse is much cheaper. *)
  let clock1, _, sh1 = make_chain ~parent_pages:10_000 ~shadow_pages:10 in
  let t0 = Clock.now clock1 in
  ignore (Vm_object.collapse ~clock:clock1 ~direction:Vm_object.Stock_freebsd sh1);
  let stock_cost = Clock.now clock1 - t0 in
  let clock2, _, sh2 = make_chain ~parent_pages:10_000 ~shadow_pages:10 in
  let t0 = Clock.now clock2 in
  ignore (Vm_object.collapse ~clock:clock2 ~direction:Vm_object.Aurora_reverse sh2);
  let aurora_cost = Clock.now clock2 - t0 in
  Alcotest.(check bool)
    (Printf.sprintf "reverse collapse cheaper (%d vs %d)" aurora_cost stock_cost)
    true
    (aurora_cost * 100 < stock_cost)

let test_pmap_downgrade () =
  let clock = Clock.create () in
  let pm = Pmap.create () in
  for v = 0 to 9 do
    Pmap.install pm v (Page.alloc ()) ~writable:(v mod 2 = 0)
  done;
  let before = Clock.now clock in
  let n = Pmap.downgrade_range pm ~clock ~vpn:0 ~npages:10 in
  Alcotest.(check int) "downgraded the writable half" 5 n;
  Alcotest.(check int) "charged per page" (5 * Cost.cow_mark_page) (Clock.now clock - before);
  Alcotest.(check int) "no writable PTEs left" 0 (Pmap.writable_count pm)

let test_space_write_read () =
  let clock = Clock.create () in
  let s = Vm_space.create ~clock in
  let e = Vm_space.map_anonymous s ~npages:4 ~prot:Vm_map.prot_rw in
  let addr = Vm_space.addr_of_entry e in
  Vm_space.write_string s ~addr "hello vm";
  Alcotest.(check string) "roundtrip" "hello vm" (Vm_space.read_string s ~addr ~len:8)

let test_space_zero_fill () =
  let clock = Clock.create () in
  let s = Vm_space.create ~clock in
  let e = Vm_space.map_anonymous s ~npages:1 ~prot:Vm_map.prot_rw in
  let addr = Vm_space.addr_of_entry e in
  Alcotest.(check char) "zero filled" '\000' (Vm_space.read_byte s ~addr);
  Alcotest.(check int) "zero fill counted" 1 (Vm_space.stats s).Vm_space.zero_fills

let test_space_fault_on_unmapped () =
  let clock = Clock.create () in
  let s = Vm_space.create ~clock in
  Alcotest.check_raises "unmapped faults" (Vm_space.Fault "no mapping at vpn 0")
    (fun () -> ignore (Vm_space.read_byte s ~addr:42))

let test_space_write_to_readonly_faults () =
  let clock = Clock.create () in
  let s = Vm_space.create ~clock in
  let e = Vm_space.map_anonymous s ~npages:1 ~prot:Vm_map.prot_ro in
  let addr = Vm_space.addr_of_entry e in
  Alcotest.check_raises "read-only faults"
    (Vm_space.Fault "write to read-only mapping") (fun () ->
      Vm_space.write_byte s ~addr 'x')

let test_space_cow_isolation_after_fork () =
  let clock = Clock.create () in
  let parent = Vm_space.create ~clock in
  let e = Vm_space.map_anonymous parent ~npages:2 ~prot:Vm_map.prot_rw in
  let addr = Vm_space.addr_of_entry e in
  Vm_space.write_string parent ~addr "orig";
  let child = Vm_space.fork parent in
  (* Child sees the parent's pre-fork data... *)
  Alcotest.(check string) "inherited" "orig" (Vm_space.read_string child ~addr ~len:4);
  (* ...and writes diverge both ways. *)
  Vm_space.write_string child ~addr "kid!";
  Alcotest.(check string) "parent unaffected" "orig" (Vm_space.read_string parent ~addr ~len:4);
  Vm_space.write_string parent ~addr "dad!";
  Alcotest.(check string) "child unaffected" "kid!" (Vm_space.read_string child ~addr ~len:4);
  Alcotest.(check bool) "cow faults happened" true ((Vm_space.stats child).Vm_space.cow_faults > 0)

let test_space_shared_mapping_fork () =
  let clock = Clock.create () in
  let parent = Vm_space.create ~clock in
  let obj = Vm_object.create Vm_object.Anonymous in
  let e =
    Vm_space.map_object ~shared:true parent ~obj ~obj_pgoff:0 ~npages:1
      ~prot:Vm_map.prot_rw
  in
  let addr = Vm_space.addr_of_entry e in
  let child = Vm_space.fork parent in
  Vm_space.write_string parent ~addr "shared";
  Alcotest.(check string) "child sees parent write" "shared"
    (Vm_space.read_string child ~addr ~len:6)

let test_space_shared_stale_pte_refault () =
  (* Two spaces map the same object; after a system shadow is interposed,
     a write by one must become visible to the other even though it had a
     cached PTE. *)
  let clock = Clock.create () in
  let a = Vm_space.create ~clock and b = Vm_space.create ~clock in
  let obj = Vm_object.create Vm_object.Anonymous in
  let ea = Vm_space.map_object ~shared:true a ~obj ~obj_pgoff:0 ~npages:1 ~prot:Vm_map.prot_rw in
  let eb = Vm_space.map_object ~shared:true b ~obj ~obj_pgoff:0 ~npages:1 ~prot:Vm_map.prot_rw in
  let addr_a = Vm_space.addr_of_entry ea and addr_b = Vm_space.addr_of_entry eb in
  Vm_space.write_byte a ~addr:addr_a 'x';
  Alcotest.(check char) "b caches PTE" 'x' (Vm_space.read_byte b ~addr:addr_b);
  (* Interpose a shadow above the shared object in both spaces. *)
  let shadow = Vm_object.shadow ~clock obj in
  ignore (Vm_space.replace_object a ~old_obj:obj ~new_obj:shadow);
  ignore (Vm_space.replace_object b ~old_obj:obj ~new_obj:shadow);
  Vm_space.write_byte a ~addr:addr_a 'y';
  Alcotest.(check char) "b sees post-shadow write" 'y' (Vm_space.read_byte b ~addr:addr_b);
  Alcotest.(check bool) "b paid a refault" true
    ((Vm_space.stats b).Vm_space.stale_refaults > 0
    || (Vm_space.stats b).Vm_space.soft_faults > 1)

let test_space_replace_object_charges_marking () =
  let clock = Clock.create () in
  let s = Vm_space.create ~clock in
  let e = Vm_space.map_anonymous s ~npages:64 ~prot:Vm_map.prot_rw in
  let addr = Vm_space.addr_of_entry e in
  Vm_space.touch_write s ~addr ~len:(64 * Page.logical_size);
  let obj = e.Vm_map.obj in
  let shadow = Vm_object.shadow ~clock obj in
  let before = Clock.now clock in
  let n = Vm_space.replace_object s ~old_obj:obj ~new_obj:shadow in
  Alcotest.(check int) "all dirty PTEs downgraded" 64 n;
  Alcotest.(check bool) "charged" true (Clock.now clock - before >= 64 * Cost.cow_mark_page)

let test_space_dirty_top_pages () =
  let clock = Clock.create () in
  let s = Vm_space.create ~clock in
  let e = Vm_space.map_anonymous s ~npages:16 ~prot:Vm_map.prot_rw in
  let addr = Vm_space.addr_of_entry e in
  Vm_space.touch_write s ~addr ~len:(5 * Page.logical_size);
  Alcotest.(check int) "five dirty pages" 5 (Vm_space.dirty_top_pages s);
  (* After interposing a shadow, the top is clean again. *)
  let obj = e.Vm_map.obj in
  let shadow = Vm_object.shadow ~clock obj in
  ignore (Vm_space.replace_object s ~old_obj:obj ~new_obj:shadow);
  Alcotest.(check int) "clean after shadowing" 0 (Vm_space.dirty_top_pages s);
  Vm_space.touch_write s ~addr ~len:(2 * Page.logical_size);
  Alcotest.(check int) "two new dirty pages" 2 (Vm_space.dirty_top_pages s)

let test_space_excluded_entries_not_shadowed () =
  let clock = Clock.create () in
  let s = Vm_space.create ~clock in
  let e1 = Vm_space.map_anonymous s ~npages:1 ~prot:Vm_map.prot_rw in
  let e2 = Vm_space.map_anonymous s ~npages:1 ~prot:Vm_map.prot_rw in
  e2.Vm_map.excluded <- true;
  ignore e1;
  Alcotest.(check int) "only one object to shadow" 1 (List.length (Vm_space.unique_objects s))

let test_map_object_nonzero_pgoff () =
  (* A window into the middle of an object: index translation must hold
     for reads, writes and COW. *)
  let clock = Clock.create () in
  let s = Vm_space.create ~clock in
  let obj = Vm_object.create Vm_object.Anonymous in
  let p5 = Page.alloc () in
  Page.set p5 0 'F';
  Vm_object.insert_page obj 5 p5;
  let e = Vm_space.map_object s ~obj ~obj_pgoff:4 ~npages:4 ~prot:Vm_map.prot_rw in
  let addr = Vm_space.addr_of_entry e in
  (* Entry page 1 = object page 5. *)
  Alcotest.(check char) "window translation" 'F'
    (Vm_space.read_byte s ~addr:(addr + Page.logical_size));
  Vm_space.write_byte s ~addr:(addr + (2 * Page.logical_size)) 'W';
  Alcotest.(check bool) "write landed at object page 6" true
    (match Vm_object.find_local obj 6 with
    | Some p -> Page.get p 0 = 'W'
    | None -> false)

let test_unmap_drops_translations () =
  let clock = Clock.create () in
  let s = Vm_space.create ~clock in
  let e = Vm_space.map_anonymous s ~npages:2 ~prot:Vm_map.prot_rw in
  let addr = Vm_space.addr_of_entry e in
  Vm_space.write_byte s ~addr 'x';
  Vm_space.unmap s e;
  Alcotest.(check bool) "faults after unmap" true
    (try
       ignore (Vm_space.read_byte s ~addr);
       false
     with Vm_space.Fault _ -> true);
  Alcotest.(check int) "no stale PTEs" 0 (Pmap.resident (Vm_space.pmap s))

let qcheck_tests =
  [
    (* A fork FAMILY, not just one parent/child pair: random interleavings
       of forks (of any member), writes (to any member) and
       checkpoint-style shadow rotations must leave every member's bytes
       exactly its own write history resolved through however many COW
       shadow levels the run built up.  Rotation is the checkpoint
       pipeline's interposition and must be content-transparent. *)
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"fork family: COW byte identity under random forks/writes/rotations"
         ~count:60
         QCheck.(
           list_of_size (Gen.int_range 1 60)
             (triple (int_range 0 9) (int_range 0 5) (int_range 0 (8 * 4096 - 1))))
         (fun ops ->
           let clock = Clock.create () in
           let root = Vm_space.create ~clock in
           let e = Vm_space.map_anonymous root ~npages:8 ~prot:Vm_map.prot_rw in
           let base = Vm_space.addr_of_entry e in
           (* Shadow model per member: folded page slot -> last char written
              there.  Pages hold [Page.payload_size] real bytes and fold
              larger offsets onto them, so two offsets in one page can
              alias — the model must key on the folded slot. *)
           let key off =
             ((off / Page.logical_size) * Page.payload_size)
             + (off mod Page.payload_size)
           in
           let addr_of_key k =
             base
             + ((k / Page.payload_size) * Page.logical_size)
             + (k mod Page.payload_size)
           in
           let family = ref [ (root, Hashtbl.create 64) ] in
           List.iteri
             (fun i (tag, who, off) ->
               let space, model = List.nth !family (who mod List.length !family) in
               match tag with
               | 0 | 1 when List.length !family < 6 ->
                   let child = Vm_space.fork space in
                   family := !family @ [ (child, Hashtbl.copy model) ]
               | 2 -> (
                   (* Checkpoint rotation: interpose a fresh shadow above
                      this member's top object. *)
                   match Vm_space.unique_objects space with
                   | obj :: _ ->
                       let sh = Vm_object.shadow ~clock obj in
                       ignore (Vm_space.replace_object space ~old_obj:obj ~new_obj:sh)
                   | [] -> ())
               | _ ->
                   let c = Char.chr (Char.code 'a' + (i mod 26)) in
                   Vm_space.write_byte space ~addr:(base + off) c;
                   Hashtbl.replace model (key off) c)
             ops;
           List.for_all
             (fun (space, model) ->
               Hashtbl.fold
                 (fun k c ok ->
                   ok && Vm_space.read_byte space ~addr:(addr_of_key k) = c)
                 model true)
             !family));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"space write/read roundtrip at random offsets" ~count:200
         QCheck.(pair (int_range 0 (16 * 4096 - 32)) (string_of_size (Gen.int_range 1 32)))
         (fun (off, data) ->
           let clock = Clock.create () in
           let s = Vm_space.create ~clock in
           let e = Vm_space.map_anonymous s ~npages:16 ~prot:Vm_map.prot_rw in
           let addr = Vm_space.addr_of_entry e + off in
           Vm_space.write_string s ~addr data;
           Vm_space.read_string s ~addr ~len:(String.length data) = data));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"collapse preserves content for random overlaps" ~count:200
         QCheck.(pair (list_of_size (Gen.int_range 0 30) (int_range 0 49)) bool)
         (fun (shadow_idxs, stock) ->
           let clock = Clock.create () in
           let base = Vm_object.create Vm_object.Anonymous in
           for i = 0 to 49 do
             let p = Page.alloc () in
             Page.set p 0 'P';
             Vm_object.insert_page base i p
           done;
           let shadow = Vm_object.shadow ~clock base in
           List.iter
             (fun i ->
               let p = Page.alloc () in
               Page.set p 0 'S';
               Vm_object.insert_page shadow i p)
             shadow_idxs;
           let expected =
             List.init 50 (fun i -> if List.mem i shadow_idxs then 'S' else 'P')
           in
           let direction =
             if stock then Vm_object.Stock_freebsd else Vm_object.Aurora_reverse
           in
           let survivor = Vm_object.collapse ~clock ~direction shadow in
           let got =
             List.init 50 (fun i ->
                 match Vm_object.lookup ~clock survivor i with
                 | Some (p, _) -> Page.get p 0
                 | None -> '?')
           in
           got = expected));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"fork isolation under random write interleavings" ~count:100
         QCheck.(list_of_size (Gen.int_range 1 40) (pair bool (int_range 0 (4 * 4096 - 1))))
         (fun writes ->
           let clock = Clock.create () in
           let parent = Vm_space.create ~clock in
           let e = Vm_space.map_anonymous parent ~npages:4 ~prot:Vm_map.prot_rw in
           let base = Vm_space.addr_of_entry e in
           let child = Vm_space.fork parent in
           (* Model of expected contents: parent and child byte maps. *)
           let pmodel = Hashtbl.create 64 and cmodel = Hashtbl.create 64 in
           List.iter
             (fun (to_child, off) ->
               let c = if to_child then 'c' else 'p' in
               let space, model = if to_child then (child, cmodel) else (parent, pmodel) in
               Vm_space.write_byte space ~addr:(base + off) c;
               Hashtbl.replace model off c)
             writes;
           let check space model =
             Hashtbl.fold
               (fun off c ok -> ok && Vm_space.read_byte space ~addr:(base + off) = c)
               model true
           in
           check parent pmodel && check child cmodel));
    (* The dirty-bit harvest feeding incremental checkpoints is only as
       good as the PTE transitions that stamp it: every path that installs
       a writable translation on a write fault must set the bit (a soft
       fault, a COW copy, a zero fill, a refault after fork/shadow
       downgrade), reads must not, and a mutation that bypasses the fault
       path entirely — the unstamped poke — must stay invisible, which is
       exactly why the serializer treats it as the negative control. *)
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"pmap dirty bits: fork/COW/shm/rotation leave the exact dirty set"
         ~count:100
         QCheck.(
           list_of_size (Gen.int_range 1 40)
             (pair (int_range 0 8) (int_range 0 7)))
         (fun ops ->
           let clock = Clock.create () in
           let s = Vm_space.create ~clock in
           let e = Vm_space.map_anonymous s ~npages:8 ~prot:Vm_map.prot_rw in
           let base = Vm_space.addr_of_entry e in
           let model = Hashtbl.create 8 in
           (* Parallel model of the double-buffered speculation plane:
              writes stamp both planes, but harvesting one must never
              disturb the other. *)
           let smodel = Hashtbl.create 8 in
           let ok = ref true in
           let dirty_now () = Pmap.dirty_vpns (Vm_space.pmap s) in
           let spec_now () = Pmap.spec_dirty_vpns (Vm_space.pmap s) in
           let sorted tbl =
             Hashtbl.fold (fun v () acc -> v :: acc) tbl [] |> List.sort compare
           in
           let model_sorted () = sorted model in
           List.iter
             (fun (op, pg) ->
               let vpn = e.Vm_map.start_vpn + pg in
               match op with
               | 0 ->
                   (* Write: whichever fault path resolves it (soft, COW,
                      zero-fill, downgrade refault) must stamp the bit. *)
                   Vm_space.write_byte s ~addr:(base + (pg * 4096)) 'w';
                   Hashtbl.replace model vpn ();
                   Hashtbl.replace smodel vpn ()
               | 1 ->
                   (* Read: never dirties, even when it installs a PTE. *)
                   ignore (Vm_space.read_byte s ~addr:(base + (pg * 4096)))
               | 2 ->
                   (* Harvest: the hardware-set bits are exactly the model. *)
                   if dirty_now () <> model_sorted () then ok := false;
                   Pmap.clear_dirty (Vm_space.pmap s);
                   Hashtbl.reset model;
                   (* The incremental harvest must not disturb the spec
                      plane. *)
                   if spec_now () <> sorted smodel then ok := false
               | 3 ->
                   (* Fork downgrades the parent's PTEs but keeps their
                      dirty bits: the pre-fork dirty set must survive. *)
                   ignore (Vm_space.fork s);
                   if dirty_now () <> model_sorted () then ok := false
               | 4 ->
                   (* Checkpoint shadow rotation: downgrade + TLB flush
                      drop the region's translations, and their dirty bits
                      with them (the harvest runs before rotation in a
                      real checkpoint cycle). *)
                   let obj = e.Vm_map.obj in
                   let sh = Vm_object.shadow ~clock obj in
                   ignore (Vm_space.replace_object s ~old_obj:obj ~new_obj:sh);
                   for v = e.Vm_map.start_vpn to e.Vm_map.start_vpn + 7 do
                     Hashtbl.remove model v;
                     Hashtbl.remove smodel v
                   done
               | 5 ->
                   (* shm map/write/unmap: the shared window dirties while
                      mapped and takes its bits away when unmapped. *)
                   let obj = Vm_object.create Vm_object.Anonymous in
                   let she =
                     Vm_space.map_object ~shared:true s ~obj ~obj_pgoff:0
                       ~npages:1 ~prot:Vm_map.prot_rw
                   in
                   let svpn = she.Vm_map.start_vpn in
                   Vm_space.write_byte s ~addr:(svpn * 4096) 's';
                   if not (List.mem svpn (dirty_now ())) then ok := false;
                   if not (List.mem svpn (spec_now ())) then ok := false;
                   Vm_space.unmap s she;
                   if List.mem svpn (dirty_now ()) then ok := false;
                   if List.mem svpn (spec_now ()) then ok := false
               | 7 ->
                   (* Speculative harvest: drains exactly the spec model
                      and leaves the incremental plane untouched — the
                      double-buffering the checkpoint pipeline relies on
                      when speculation and incremental harvests
                      interleave. *)
                   let before = dirty_now () in
                   if Pmap.spec_drain (Vm_space.pmap s) <> sorted smodel then
                     ok := false;
                   Hashtbl.reset smodel;
                   if dirty_now () <> before then ok := false
               | 8 ->
                   (* Re-arming speculation clears only the spec plane. *)
                   let before = dirty_now () in
                   Pmap.spec_clear (Vm_space.pmap s);
                   Hashtbl.reset smodel;
                   if dirty_now () <> before then ok := false
               | _ ->
                   (* Unstamped poke: mutate the resolved page behind the
                      pmap's back.  The dirty bit must NOT appear — this
                      is the mutation class incremental harvests cannot
                      see, so it must never look like they could. *)
                   ignore (Vm_space.read_byte s ~addr:(base + (pg * 4096)));
                   (match Pmap.find (Vm_space.pmap s) vpn with
                   | Some pte -> Page.set pte.Pmap.page 5 '!'
                   | None -> ok := false);
                   if (not (Hashtbl.mem model vpn)) && List.mem vpn (dirty_now ())
                   then ok := false;
                   if (not (Hashtbl.mem smodel vpn)) && List.mem vpn (spec_now ())
                   then ok := false)
             ops;
           !ok));
  ]

let () =
  Alcotest.run "aurora_vm"
    [
      ( "page",
        [
          Alcotest.test_case "roundtrip" `Quick test_page_roundtrip;
          Alcotest.test_case "payload" `Quick test_page_payload;
        ] );
      ( "vm_object",
        [
          Alcotest.test_case "shadow lookup" `Quick test_object_shadow_lookup;
          Alcotest.test_case "lookup charges hops" `Quick test_object_lookup_charges_hops;
          Alcotest.test_case "collapse stock" `Quick test_collapse_stock_direction;
          Alcotest.test_case "collapse aurora" `Quick test_collapse_aurora_direction;
          Alcotest.test_case "directions agree" `Quick test_collapse_directions_agree;
          Alcotest.test_case "cost asymmetry" `Quick test_collapse_cost_asymmetry;
        ] );
      ("pmap", [ Alcotest.test_case "downgrade" `Quick test_pmap_downgrade ]);
      ( "vm_space",
        [
          Alcotest.test_case "write/read" `Quick test_space_write_read;
          Alcotest.test_case "zero fill" `Quick test_space_zero_fill;
          Alcotest.test_case "unmapped faults" `Quick test_space_fault_on_unmapped;
          Alcotest.test_case "read-only faults" `Quick test_space_write_to_readonly_faults;
          Alcotest.test_case "fork COW isolation" `Quick test_space_cow_isolation_after_fork;
          Alcotest.test_case "fork shared mapping" `Quick test_space_shared_mapping_fork;
          Alcotest.test_case "shared stale PTE refault" `Quick test_space_shared_stale_pte_refault;
          Alcotest.test_case "replace charges marking" `Quick test_space_replace_object_charges_marking;
          Alcotest.test_case "dirty top pages" `Quick test_space_dirty_top_pages;
          Alcotest.test_case "excluded not shadowed" `Quick test_space_excluded_entries_not_shadowed;
          Alcotest.test_case "nonzero pgoff window" `Quick test_map_object_nonzero_pgoff;
          Alcotest.test_case "unmap drops PTEs" `Quick test_unmap_drops_translations;
        ] );
      ("properties", qcheck_tests);
    ]
