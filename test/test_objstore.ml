module Clock = Aurora_sim.Clock
module Striped = Aurora_block.Striped
module Fault = Aurora_block.Fault
module Wire = Aurora_objstore.Wire
module Store = Aurora_objstore.Store

let payload c = Bytes.make 64 c

let fresh () =
  let clock = Clock.create () in
  let dev = Striped.create () in
  let store = Store.format ~dev ~clock in
  (clock, dev, store)

let test_wire_roundtrip () =
  let w = Wire.writer () in
  Wire.u8 w 200;
  Wire.u32 w 123456;
  Wire.u64 w 987654321012;
  Wire.str w "hello";
  Wire.list w (fun x -> Wire.u32 w x) [ 1; 2; 3 ];
  let r = Wire.reader (Wire.contents w) in
  Alcotest.(check int) "u8" 200 (Wire.ru8 r);
  Alcotest.(check int) "u32" 123456 (Wire.ru32 r);
  Alcotest.(check int) "u64" 987654321012 (Wire.ru64 r);
  Alcotest.(check string) "str" "hello" (Wire.rstr r);
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ] (Wire.rlist r Wire.ru32);
  Alcotest.(check int) "consumed" 0 (Wire.remaining r)

let test_wire_short_read_raises () =
  let r = Wire.reader (Bytes.make 2 'x') in
  Alcotest.(check bool) "raises Corrupt" true
    (try
       ignore (Wire.ru64 r);
       false
     with Wire.Corrupt _ -> true)

let test_checkpoint_roundtrip () =
  let _clock, _dev, store = fresh () in
  let oid = Store.alloc_oid store in
  let epoch = Store.begin_checkpoint store in
  Store.put_object store ~oid ~kind:"proc" ~meta:"serialized-proc-state";
  Store.put_pages store ~oid [ (0, payload 'a'); (7, payload 'b') ];
  ignore (Store.commit_checkpoint store);
  Store.wait_durable store;
  Alcotest.(check int) "epoch complete" epoch (Store.last_complete_epoch store);
  Alcotest.(check string) "meta" "serialized-proc-state" (Store.read_meta store ~epoch ~oid);
  Alcotest.(check (list int)) "page indices" [ 0; 7 ] (Store.page_indices store ~epoch ~oid);
  (match Store.read_page store ~epoch ~oid ~idx:7 with
  | Some data -> Alcotest.(check bytes) "page content" (payload 'b') data
  | None -> Alcotest.fail "page 7 missing");
  Alcotest.(check (option bytes)) "absent page" None (Store.read_page store ~epoch ~oid ~idx:3)

let test_incremental_cow () =
  let _clock, _dev, store = fresh () in
  let oid = Store.alloc_oid store in
  let e1 = Store.begin_checkpoint store in
  Store.put_object store ~oid ~kind:"memory" ~meta:"";
  Store.put_pages store ~oid [ (0, payload 'x'); (1, payload 'y') ];
  ignore (Store.commit_checkpoint store);
  let e2 = Store.begin_checkpoint store in
  (* Only page 1 dirty in the second epoch. *)
  Store.put_pages store ~oid [ (1, payload 'Y') ];
  ignore (Store.commit_checkpoint store);
  Store.wait_durable store;
  (* Old epoch still reads the old data; new epoch merges. *)
  Alcotest.(check (option bytes)) "e1 page1 old" (Some (payload 'y'))
    (Store.read_page store ~epoch:e1 ~oid ~idx:1);
  Alcotest.(check (option bytes)) "e2 page1 new" (Some (payload 'Y'))
    (Store.read_page store ~epoch:e2 ~oid ~idx:1);
  Alcotest.(check (option bytes)) "e2 page0 carried over" (Some (payload 'x'))
    (Store.read_page store ~epoch:e2 ~oid ~idx:0)

let test_unchanged_object_carries_forward () =
  let _clock, _dev, store = fresh () in
  let oid_a = Store.alloc_oid store in
  let oid_b = Store.alloc_oid store in
  let _e1 = Store.begin_checkpoint store in
  Store.put_object store ~oid:oid_a ~kind:"vnode" ~meta:"A";
  Store.put_object store ~oid:oid_b ~kind:"vnode" ~meta:"B";
  ignore (Store.commit_checkpoint store);
  let e2 = Store.begin_checkpoint store in
  Store.put_object store ~oid:oid_a ~kind:"vnode" ~meta:"A2";
  ignore (Store.commit_checkpoint store);
  Store.wait_durable store;
  Alcotest.(check string) "updated object" "A2" (Store.read_meta store ~epoch:e2 ~oid:oid_a);
  Alcotest.(check string) "untouched object still present" "B"
    (Store.read_meta store ~epoch:e2 ~oid:oid_b);
  Alcotest.(check int) "table lists both" 2 (List.length (Store.objects_at store ~epoch:e2))

let test_recovery_after_clean_shutdown () =
  let clock, dev, store = fresh () in
  let oid = Store.alloc_oid store in
  let epoch = Store.begin_checkpoint store in
  Store.put_object store ~oid ~kind:"proc" ~meta:"state-bytes";
  Store.put_pages store ~oid [ (5, payload 'q') ];
  ignore (Store.commit_checkpoint store);
  Store.wait_durable store;
  Striped.settle dev ~clock;
  (* Mount a brand-new store instance from the device bytes alone. *)
  let store2 = Store.recover ~dev ~clock in
  Alcotest.(check int) "epoch recovered" epoch (Store.last_complete_epoch store2);
  Alcotest.(check string) "meta recovered" "state-bytes"
    (Store.read_meta store2 ~epoch ~oid);
  Alcotest.(check (option bytes)) "page recovered" (Some (payload 'q'))
    (Store.read_page store2 ~epoch ~oid ~idx:5)

let test_crash_mid_checkpoint_keeps_previous () =
  let clock, dev, store = fresh () in
  let oid = Store.alloc_oid store in
  let e1 = Store.begin_checkpoint store in
  Store.put_object store ~oid ~kind:"memory" ~meta:"good";
  Store.put_pages store ~oid [ (0, payload 'g') ];
  ignore (Store.commit_checkpoint store);
  Store.wait_durable store;
  let durable_point = Clock.now clock in
  (* Second checkpoint: submit but crash before it becomes durable. *)
  ignore (Store.begin_checkpoint store);
  Store.put_object store ~oid ~kind:"memory" ~meta:"torn";
  Store.put_pages store ~oid [ (0, payload 't') ];
  ignore (Store.commit_checkpoint store);
  Striped.crash dev ~now:durable_point;
  let store2 = Store.recover ~dev ~clock in
  Alcotest.(check int) "previous checkpoint found" e1 (Store.last_complete_epoch store2);
  Alcotest.(check string) "no torn state" "good" (Store.read_meta store2 ~epoch:e1 ~oid);
  Alcotest.(check (option bytes)) "old page intact" (Some (payload 'g'))
    (Store.read_page store2 ~epoch:e1 ~oid ~idx:0)

let test_crash_before_any_checkpoint () =
  let clock, dev, store = fresh () in
  ignore store;
  Striped.settle dev ~clock;
  Striped.crash dev ~now:(Clock.now clock);
  let store2 = Store.recover ~dev ~clock in
  Alcotest.(check int) "empty store" 0 (Store.last_complete_epoch store2)

let test_recover_uninitialized_device_fails () =
  let clock = Clock.create () in
  let dev = Striped.create () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Store.recover ~dev ~clock);
       false
     with Store.Corrupt_store _ -> true)

let test_journal_append_and_scan () =
  let _clock, _dev, store = fresh () in
  let j = Store.journal_create store ~size:(256 * 1024) in
  Store.journal_append store j "record-one";
  Store.journal_append store j "record-two";
  Store.journal_append store j "record-three";
  Alcotest.(check (list string)) "scan finds records"
    [ "record-one"; "record-two"; "record-three" ]
    (Store.journal_records store j)

let test_journal_truncate () =
  let _clock, _dev, store = fresh () in
  let j = Store.journal_create store ~size:(64 * 1024) in
  Store.journal_append store j "old";
  Store.journal_truncate store j;
  Alcotest.(check (list string)) "empty after truncate" [] (Store.journal_records store j);
  Store.journal_append store j "new";
  Alcotest.(check (list string)) "appends after truncate" [ "new" ]
    (Store.journal_records store j)

let test_journal_survives_crash () =
  let clock, dev, store = fresh () in
  let j = Store.journal_create store ~size:(64 * 1024) in
  Store.journal_append store j "committed-write";
  (* journal_append is synchronous: already durable at this clock. *)
  Striped.crash dev ~now:(Clock.now clock);
  let store2 = Store.recover ~dev ~clock in
  match Store.journal_find store2 (Store.journal_id j) with
  | Some j2 ->
      Alcotest.(check (list string)) "records recovered" [ "committed-write" ]
        (Store.journal_records store2 j2)
  | None -> Alcotest.fail "journal registry lost"

let test_journal_timing_anchor () =
  (* Table 5: a synchronous 4 KiB journal write costs ~28 us. *)
  let clock, _dev, store = fresh () in
  let j = Store.journal_create store ~size:(1024 * 1024) in
  let before = Clock.now clock in
  Store.journal_append store j (String.make 4096 'w');
  let cost = Clock.now clock - before in
  Alcotest.(check bool)
    (Printf.sprintf "4KiB journal ~28us (got %dns)" cost)
    true
    (cost > 24_000 && cost < 35_000)

let test_prune_history_frees_blocks () =
  let _clock, _dev, store = fresh () in
  let oid = Store.alloc_oid store in
  for i = 1 to 10 do
    ignore (Store.begin_checkpoint store);
    Store.put_object store ~oid ~kind:"memory" ~meta:(string_of_int i);
    Store.put_pages store ~oid [ (i, payload 'p') ];
    ignore (Store.commit_checkpoint store)
  done;
  Store.wait_durable store;
  Alcotest.(check int) "ten epochs retained" 10 (List.length (Store.checkpoint_epochs store));
  let freed = Store.prune_history store ~keep:2 in
  Alcotest.(check int) "two epochs left" 2 (List.length (Store.checkpoint_epochs store));
  Alcotest.(check bool) (Printf.sprintf "freed blocks (%d)" freed) true (freed > 0);
  (* The kept epochs still read correctly. *)
  match Store.checkpoint_epochs store with
  | [ e9; e10 ] ->
      Alcotest.(check string) "meta of kept epoch" "9" (Store.read_meta store ~epoch:e9 ~oid);
      Alcotest.(check string) "meta of latest" "10" (Store.read_meta store ~epoch:e10 ~oid)
  | other -> Alcotest.failf "unexpected epochs: %d" (List.length other)

let test_history_is_time_travel () =
  (* Every epoch remains restorable: the execution-history property. *)
  let _clock, _dev, store = fresh () in
  let oid = Store.alloc_oid store in
  let epochs =
    List.init 5 (fun i ->
        let e = Store.begin_checkpoint store in
        Store.put_object store ~oid ~kind:"memory" ~meta:"";
        Store.put_pages store ~oid [ (0, payload (Char.chr (Char.code 'a' + i))) ];
        ignore (Store.commit_checkpoint store);
        e)
  in
  Store.wait_durable store;
  List.iteri
    (fun i e ->
      Alcotest.(check (option bytes))
        (Printf.sprintf "epoch %d content" e)
        (Some (payload (Char.chr (Char.code 'a' + i))))
        (Store.read_page store ~epoch:e ~oid ~idx:0))
    epochs

let test_leaf_span_boundaries () =
  (* Page indices straddling radix-leaf boundaries must round-trip and
     stay independent across epochs. *)
  let _clock, _dev, store = fresh () in
  let oid = Store.alloc_oid store in
  let span = Store.leaf_span in
  let idxs = [ 0; span - 1; span; span + 1; (2 * span) - 1; 2 * span; 977 ] in
  ignore (Store.begin_checkpoint store);
  Store.put_object store ~oid ~kind:"memory" ~meta:"";
  Store.put_pages store ~oid (List.map (fun i -> (i, payload 'x')) idxs);
  ignore (Store.commit_checkpoint store);
  (* Update only the page at the boundary; neighbours must carry over. *)
  let e2 = Store.begin_checkpoint store in
  Store.put_pages store ~oid [ (span, payload 'Y') ];
  ignore (Store.commit_checkpoint store);
  Store.wait_durable store;
  List.iter
    (fun i ->
      let expected = if i = span then payload 'Y' else payload 'x' in
      Alcotest.(check (option bytes))
        (Printf.sprintf "page %d" i)
        (Some expected)
        (Store.read_page store ~epoch:e2 ~oid ~idx:i))
    idxs;
  Alcotest.(check (list int)) "indices" (List.sort compare idxs)
    (Store.page_indices store ~epoch:e2 ~oid)

let test_full_leaf_fits_a_block () =
  (* A completely full leaf must serialize within one block (regression:
     the original span overflowed and recovery failed). *)
  let clock, dev, store = fresh () in
  let oid = Store.alloc_oid store in
  ignore (Store.begin_checkpoint store);
  Store.put_object store ~oid ~kind:"memory" ~meta:"";
  Store.put_pages store ~oid
    (List.init Store.leaf_span (fun i -> (i, payload 'f')));
  ignore (Store.commit_checkpoint store);
  Store.wait_durable store;
  Striped.crash dev ~now:(Clock.now clock);
  let store2 = Store.recover ~dev ~clock in
  Alcotest.(check int) "all pages recovered" Store.leaf_span
    (List.length (Store.page_indices store2 ~epoch:1 ~oid))

let test_many_objects_one_checkpoint () =
  let clock, dev, store = fresh () in
  let oids = List.init 500 (fun _ -> Store.alloc_oid store) in
  ignore (Store.begin_checkpoint store);
  List.iteri
    (fun i oid ->
      Store.put_object store ~oid ~kind:"obj" ~meta:(string_of_int i);
      Store.put_pages store ~oid [ (i, payload (Char.chr (32 + (i mod 90)))) ])
    oids;
  ignore (Store.commit_checkpoint store);
  Store.wait_durable store;
  Striped.crash dev ~now:(Clock.now clock);
  let store2 = Store.recover ~dev ~clock in
  Alcotest.(check int) "all objects recovered" 500
    (List.length (Store.objects_at store2 ~epoch:1));
  List.iteri
    (fun i oid ->
      Alcotest.(check string) "meta" (string_of_int i)
        (Store.read_meta store2 ~epoch:1 ~oid))
    oids

let test_journal_generation_isolation () =
  (* Regression for the stale-record bug: a truncated journal must never
     replay records from a previous generation, whatever the sizes. *)
  let _clock, _dev, store = fresh () in
  let j = Store.journal_create store ~size:(64 * 1024) in
  Store.journal_append store j "a-long-first-generation-record";
  Store.journal_append store j "second";
  Store.journal_truncate store j;
  Store.journal_append store j "x";
  Alcotest.(check (list string)) "only generation-2 records" [ "x" ]
    (Store.journal_records store j);
  Store.journal_truncate store j;
  Alcotest.(check (list string)) "empty third generation" []
    (Store.journal_records store j)

let test_prune_then_crash_recover () =
  (* Regression: pruning frees and reuses blocks; the recovery chain walk
     must stop at the oldest retained record instead of following a prev
     pointer into reused space. *)
  let clock, dev, store = fresh () in
  let oid = Store.alloc_oid store in
  for i = 1 to 20 do
    ignore (Store.begin_checkpoint store);
    Store.put_object store ~oid ~kind:"memory" ~meta:(string_of_int i);
    Store.put_pages store ~oid [ (i mod 7, payload 'p') ];
    ignore (Store.commit_checkpoint store);
    if i mod 6 = 0 then ignore (Store.prune_history store ~keep:2)
  done;
  Store.wait_durable store;
  Striped.crash dev ~now:(Clock.now clock);
  let store2 = Store.recover ~dev ~clock in
  Alcotest.(check int) "latest epoch" 20 (Store.last_complete_epoch store2);
  Alcotest.(check string) "latest meta" "20" (Store.read_meta store2 ~epoch:20 ~oid);
  (* Only post-prune history survives the walk. *)
  Alcotest.(check bool) "history bounded" true
    (List.length (Store.checkpoint_epochs store2) <= 4);
  (* Continue checkpointing on the recovered store. *)
  ignore (Store.begin_checkpoint store2);
  Store.put_object store2 ~oid ~kind:"memory" ~meta:"post-crash";
  ignore (Store.commit_checkpoint store2);
  Store.wait_durable store2;
  Alcotest.(check string) "post-recovery checkpoint works" "post-crash"
    (Store.read_meta store2 ~epoch:(Store.last_complete_epoch store2) ~oid)

let test_double_begin_rejected () =
  let _clock, _dev, store = fresh () in
  ignore (Store.begin_checkpoint store);
  Alcotest.(check bool) "second begin rejected" true
    (try
       ignore (Store.begin_checkpoint store);
       false
     with Invalid_argument _ -> true)

(* Newest-wins staging: re-staging a page index replaces its payload in
   place — both within one put_pages call and across calls in the same
   epoch — and commit stores exactly one entry per index. *)
let test_put_pages_newest_wins () =
  let _clock, _dev, store = fresh () in
  let oid = Store.alloc_oid store in
  let e = Store.begin_checkpoint store in
  Store.put_object store ~oid ~kind:"memory" ~meta:"";
  Store.put_pages store ~oid [ (7, payload 'a'); (7, payload 'b') ];
  Store.put_pages store ~oid [ (9, payload 'x') ];
  Store.put_pages store ~oid [ (9, payload 'y'); (11, payload 'z') ];
  ignore (Store.commit_checkpoint store);
  let page idx =
    match Store.read_page store ~epoch:e ~oid ~idx with
    | Some data -> Bytes.to_string data
    | None -> "<missing>"
  in
  Alcotest.(check string) "later entry of one call wins"
    (Bytes.to_string (payload 'b')) (page 7);
  Alcotest.(check string) "later call wins" (Bytes.to_string (payload 'y')) (page 9);
  Alcotest.(check string) "untouched index kept" (Bytes.to_string (payload 'z'))
    (page 11);
  Alcotest.(check (list int)) "one entry per staged index" [ 7; 9; 11 ]
    (List.sort compare (Store.page_indices store ~epoch:e ~oid));
  let fs = Store.flush_stats store in
  Alcotest.(check int) "dedup happened at staging time" 3 fs.Store.fs_pages

(* Transient read errors are absorbed by the store's retry/backoff policy:
   the caller sees clean data, the fault counter records the absorbed
   attempts, and the backoff is charged in virtual time. *)
let test_read_retry_absorbs_transients () =
  let clock, dev, store = fresh () in
  let oid = Store.alloc_oid store in
  let e = Store.begin_checkpoint store in
  Store.put_object store ~oid ~kind:"memory" ~meta:"m";
  Store.put_pages store ~oid [ (4, payload 'r') ];
  ignore (Store.commit_checkpoint store);
  Store.wait_durable store;
  let f = Fault.create () in
  let remaining = ref 2 in
  f.Fault.on_read <-
    (fun _ ->
      if !remaining > 0 then begin
        decr remaining;
        Fault.Fail
      end
      else Fault.Clean);
  Striped.set_fault dev (Some f);
  let before = Clock.now clock in
  Alcotest.(check (option bytes)) "read succeeds through faults"
    (Some (payload 'r'))
    (Store.read_page store ~epoch:e ~oid ~idx:4);
  Alcotest.(check int) "both faults absorbed and counted" 2 (Store.read_faults store);
  Alcotest.(check bool) "backoff charged in virtual time" true
    (Clock.now clock - before >= 40_000);
  (* With retries disabled the same fault surfaces to the caller. *)
  f.Fault.on_read <- (fun _ -> Fault.Fail);
  Store.set_read_policy store ~retries:0 ~backoff_ns:20_000;
  Alcotest.(check bool) "zero retries propagates Io_error" true
    (try
       ignore (Store.read_page store ~epoch:e ~oid ~idx:4);
       false
     with Fault.Io_error _ -> true);
  Striped.set_fault dev None

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"coalesced flush: crash/recover preserves every retained epoch"
         ~count:20
         QCheck.(
           pair
             (list_of_size (Gen.int_range 2 5)
                (list_of_size (Gen.int_range 1 60)
                   (pair (int_range 0 900) printable_char)))
             (int_range 0 3))
         (fun (epochs_spec, keep_extra) ->
           let clock = Clock.create () in
           let dev = Striped.create () in
           let store = Store.format ~dev ~clock in
           let oid = Store.alloc_oid store in
           List.iter
             (fun pages ->
               ignore (Store.begin_checkpoint store);
               Store.put_object store ~oid ~kind:"memory" ~meta:"equiv";
               Store.put_pages store ~oid
                 (List.map (fun (idx, c) -> (idx, payload c)) pages);
               ignore (Store.commit_checkpoint store))
             epochs_spec;
           (* Pruning also exercises leaf-cache invalidation of freed
              blocks before the crash. *)
           ignore (Store.prune_history store ~keep:(1 + keep_extra));
           Store.wait_durable store;
           let epochs = Store.checkpoint_epochs store in
           let before =
             List.map
               (fun e ->
                 ( e,
                   Store.read_meta store ~epoch:e ~oid,
                   Store.read_pages store ~epoch:e ~oid ))
               epochs
           in
           Striped.crash dev ~now:(Clock.now clock);
           let store2 = Store.recover ~dev ~clock in
           Store.checkpoint_epochs store2 = epochs
           && List.for_all
                (fun (e, meta, pages) ->
                  Store.read_meta store2 ~epoch:e ~oid = meta
                  && Store.read_pages store2 ~epoch:e ~oid = pages)
                before));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"prune atomicity: crash around the prune record is all-or-nothing"
         ~count:20
         QCheck.(
           pair
             (list_of_size (Gen.int_range 3 6)
                (list_of_size (Gen.int_range 1 30)
                   (pair (int_range 0 600) printable_char)))
             (int_range 1 2))
         (fun (epochs_spec, keep) ->
           (* Build the same history twice; prune_history returns with the
              clock advanced exactly to its superblock's completion, so
              [now - 1] crashes with the prune record submitted but not
              durable and [now] crashes with it just durable. *)
           let build () =
             let clock = Clock.create () in
             let dev = Striped.create () in
             let store = Store.format ~dev ~clock in
             let oid = Store.alloc_oid store in
             List.iter
               (fun pages ->
                 ignore (Store.begin_checkpoint store);
                 Store.put_object store ~oid ~kind:"memory" ~meta:"m";
                 Store.put_pages store ~oid
                   (List.map (fun (idx, c) -> (idx, payload c)) pages);
                 ignore (Store.commit_checkpoint store))
               epochs_spec;
             Store.wait_durable store;
             (clock, dev, store, oid)
           in
           let snapshot store oid =
             List.map
               (fun e ->
                 ( e,
                   Store.read_meta store ~epoch:e ~oid,
                   Store.read_pages store ~epoch:e ~oid ))
               (Store.checkpoint_epochs store)
           in
           (* Prune record lost: the full pre-prune history recovers —
              freed-in-memory blocks were never overwritten on disk. *)
           let clock_a, dev_a, store_a, oid_a = build () in
           let before_a = snapshot store_a oid_a in
           ignore (Store.prune_history store_a ~keep);
           Striped.crash dev_a ~now:(Clock.now clock_a - 1);
           let ra = Store.recover ~dev:dev_a ~clock:(Clock.create ()) in
           let ok_a = snapshot ra oid_a = before_a in
           (* Prune record durable: exactly the kept suffix recovers. *)
           let clock_b, dev_b, store_b, oid_b = build () in
           ignore (Store.prune_history store_b ~keep);
           let after_b = snapshot store_b oid_b in
           Striped.crash dev_b ~now:(Clock.now clock_b);
           let rb = Store.recover ~dev:dev_b ~clock:(Clock.create ()) in
           let ok_b =
             snapshot rb oid_b = after_b
             && List.length (Store.checkpoint_epochs rb) = keep
           in
           (* Both recoveries rebuild the content-addressed index from the
              durable leaves: its refcounts must match a fresh walk. *)
           ok_a && ok_b
           && Store.content_index_consistent ra
           && Store.content_index_consistent rb));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"mid-epoch prune: dedup-referenced pages survive the sweep"
         ~count:20
         QCheck.(
           triple
             (list_of_size (Gen.int_range 3 5)
                (list_of_size (Gen.int_range 1 25)
                   (pair (int_range 0 400) printable_char)))
             (list_of_size (Gen.int_range 1 25) (pair (int_range 0 400) printable_char))
             (int_range 1 2))
         (fun (epochs_spec, staged, keep) ->
           (* A checkpoint is staged, a prune runs mid-epoch, then the
              commit dedups its pages — several byte-identical to payloads
              the dropped epochs wrote.  Matches may only land on
              locations the kept epochs still reach, so every page must
              read back correctly before and after a crash, and the
              content index must agree with the durable leaves. *)
           let clock = Clock.create () in
           let dev = Striped.create () in
           let store = Store.format ~dev ~clock in
           let oid = Store.alloc_oid store in
           List.iter
             (fun pages ->
               ignore (Store.begin_checkpoint store);
               Store.put_object store ~oid ~kind:"memory" ~meta:"m";
               Store.put_pages store ~oid
                 (List.map (fun (idx, c) -> (idx, payload c)) pages);
               ignore (Store.commit_checkpoint store))
             epochs_spec;
           Store.wait_durable store;
           let e = Store.begin_checkpoint store in
           Store.put_object store ~oid ~kind:"memory" ~meta:"mid";
           (* Re-stage early epochs' exact payloads (dedup bait pointing
              into soon-pruned history) plus this epoch's fresh pages. *)
           let bait =
             List.concat (match epochs_spec with p :: _ -> [ p ] | [] -> [])
           in
           let pages = bait @ staged in
           Store.put_pages store ~oid
             (List.map (fun (idx, c) -> (idx, payload c)) pages);
           ignore (Store.prune_history store ~keep);
           ignore (Store.commit_checkpoint store);
           Store.wait_durable store;
           (* Latest content per index: staged list wins over bait. *)
           let model = Hashtbl.create 64 in
           List.iter (fun (idx, c) -> Hashtbl.replace model idx c) pages;
           let check st =
             Hashtbl.fold
               (fun idx c ok ->
                 ok
                 && Store.read_page st ~epoch:e ~oid ~idx = Some (payload c))
               model true
             && Store.content_index_consistent st
           in
           let ok_live = check store in
           Striped.crash dev ~now:(Clock.now clock);
           let r = Store.recover ~dev ~clock:(Clock.create ()) in
           ok_live && check r));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"dedup+delta epochs restore byte-identically to a forced-full epoch"
         ~count:30
         QCheck.(
           list_of_size (Gen.int_range 2 5)
             (list_of_size (Gen.int_range 1 30)
                (pair (int_range 0 350) printable_char)))
         (fun epochs_spec ->
           (* Store A accumulates the state as delta epochs with dedup and
              compression on (the repeated single-char payloads dedup
              heavily); store B writes the composed final state in one
              epoch with both off — the whole-page baseline layout.  The
              two must be byte-identical page for page, before and after A
              crashes and recovers. *)
           let clock_a = Clock.create () in
           let dev_a = Striped.create () in
           let a = Store.format ~dev:dev_a ~clock:clock_a in
           let oid = Store.alloc_oid a in
           List.iter
             (fun pages ->
               ignore (Store.begin_checkpoint a);
               Store.put_object a ~oid ~kind:"memory" ~meta:"delta";
               Store.put_pages a ~oid
                 (List.map (fun (idx, c) -> (idx, payload c)) pages);
               ignore (Store.commit_checkpoint a))
             epochs_spec;
           Store.wait_durable a;
           let model = Hashtbl.create 64 in
           List.iter
             (List.iter (fun (idx, c) -> Hashtbl.replace model idx c))
             epochs_spec;
           let full = Hashtbl.fold (fun idx c acc -> (idx, payload c) :: acc) model [] in
           let _clock_b, _dev_b, b = fresh () in
           Store.set_content_dedup b false;
           Store.set_compression b false;
           let oid_b = Store.alloc_oid b in
           let eb = Store.begin_checkpoint b in
           Store.put_object b ~oid:oid_b ~kind:"memory" ~meta:"full";
           Store.put_pages b ~oid:oid_b full;
           ignore (Store.commit_checkpoint b);
           Store.wait_durable b;
           let ea = Store.last_complete_epoch a in
           let pages_of st ~epoch ~oid = Store.read_pages st ~epoch ~oid in
           let want = pages_of b ~epoch:eb ~oid:oid_b in
           let ok_live = pages_of a ~epoch:ea ~oid = want in
           Striped.crash dev_a ~now:(Clock.now clock_a);
           let ra = Store.recover ~dev:dev_a ~clock:(Clock.create ()) in
           ok_live
           && pages_of ra ~epoch:ea ~oid = want
           && Store.content_index_consistent ra));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"store round-trips random page sets over epochs" ~count:40
         QCheck.(
           list_of_size (Gen.int_range 1 6)
             (list_of_size (Gen.int_range 0 20) (pair (int_range 0 600) printable_char)))
         (fun epochs_spec ->
           let _clock, _dev, store = fresh () in
           let oid = Store.alloc_oid store in
           (* Model: latest content per page index. *)
           let model = Hashtbl.create 64 in
           let ok = ref true in
           List.iter
             (fun pages ->
               let e = Store.begin_checkpoint store in
               Store.put_object store ~oid ~kind:"memory" ~meta:"";
               Store.put_pages store ~oid
                 (List.map (fun (idx, c) -> (idx, payload c)) pages);
               ignore (Store.commit_checkpoint store);
               List.iter (fun (idx, c) -> Hashtbl.replace model idx c) pages;
               Hashtbl.iter
                 (fun idx c ->
                   match Store.read_page store ~epoch:e ~oid ~idx with
                   | Some data -> if data <> payload c then ok := false
                   | None -> ok := false)
                 model)
             epochs_spec;
           !ok));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"recovery equals pre-crash durable state" ~count:30
         QCheck.(list_of_size (Gen.int_range 1 8) (string_of_size (Gen.int_range 1 50)))
         (fun metas ->
           let clock = Clock.create () in
           let dev = Striped.create () in
           let store = Store.format ~dev ~clock in
           let oid = Store.alloc_oid store in
           List.iter
             (fun meta ->
               ignore (Store.begin_checkpoint store);
               Store.put_object store ~oid ~kind:"blob" ~meta;
               ignore (Store.commit_checkpoint store))
             metas;
           Store.wait_durable store;
           let last = Store.last_complete_epoch store in
           Striped.crash dev ~now:(Clock.now clock);
           let store2 = Store.recover ~dev ~clock in
           Store.last_complete_epoch store2 = last
           && Store.read_meta store2 ~epoch:last ~oid = List.nth metas (List.length metas - 1)));
  ]

let () =
  Alcotest.run "aurora_objstore"
    [
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "short read" `Quick test_wire_short_read_raises;
        ] );
      ( "checkpoints",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "incremental COW" `Quick test_incremental_cow;
          Alcotest.test_case "carry forward" `Quick test_unchanged_object_carries_forward;
          Alcotest.test_case "double begin" `Quick test_double_begin_rejected;
          Alcotest.test_case "put_pages newest wins" `Quick test_put_pages_newest_wins;
          Alcotest.test_case "history time travel" `Quick test_history_is_time_travel;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "clean shutdown" `Quick test_recovery_after_clean_shutdown;
          Alcotest.test_case "crash mid-checkpoint" `Quick test_crash_mid_checkpoint_keeps_previous;
          Alcotest.test_case "crash before first" `Quick test_crash_before_any_checkpoint;
          Alcotest.test_case "uninitialized device" `Quick test_recover_uninitialized_device_fails;
          Alcotest.test_case "read retry absorbs transients" `Quick
            test_read_retry_absorbs_transients;
        ] );
      ( "journal",
        [
          Alcotest.test_case "append and scan" `Quick test_journal_append_and_scan;
          Alcotest.test_case "truncate" `Quick test_journal_truncate;
          Alcotest.test_case "crash survival" `Quick test_journal_survives_crash;
          Alcotest.test_case "timing anchor" `Quick test_journal_timing_anchor;
        ] );
      ("history", [ Alcotest.test_case "prune frees blocks" `Quick test_prune_history_frees_blocks ]);
      ( "boundaries",
        [
          Alcotest.test_case "leaf span" `Quick test_leaf_span_boundaries;
          Alcotest.test_case "full leaf" `Quick test_full_leaf_fits_a_block;
          Alcotest.test_case "many objects" `Quick test_many_objects_one_checkpoint;
          Alcotest.test_case "journal generations" `Quick test_journal_generation_isolation;
          Alcotest.test_case "prune/crash/recover" `Quick test_prune_then_crash_recover;
        ] );
      ("properties", qcheck_tests);
    ]
