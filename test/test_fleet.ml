(* Multi-tenant fleet checkpointing: arbiter windows and admission,
   per-tenant lane attribution, the staggered fleet scheduler, and the
   load-bearing qcheck isolation property — N groups checkpointing
   interleaved on one clock restore byte-identically to the same group
   run alone on a private store. *)

module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost
module Striped = Aurora_block.Striped
module Arbiter = Aurora_block.Arbiter
module Vm_space = Aurora_vm.Vm_space
module Page = Aurora_vm.Page
module Syscall = Aurora_kern.Syscall
module Process = Aurora_kern.Process
module Store = Aurora_objstore.Store
module Group = Aurora_core.Group
module Fleet = Aurora_core.Fleet
module Trace = Aurora_obs.Trace

let period = 10_000_000 (* 10 ms *)
let bw = Cost.nvme_stripe_devices * Cost.nvme_device_bandwidth

(* Arbiter ---------------------------------------------------------------- *)

let test_windows_partition () =
  let a = Arbiter.create ~name:"lane" ~bandwidth:bw ~period_ns:period in
  let t1 = Arbiter.register a ~name:"t1" () in
  let t2 = Arbiter.register a ~name:"t2" ~weight:3 () in
  let o1, w1 = Arbiter.window a t1 in
  let o2, w2 = Arbiter.window a t2 in
  Alcotest.(check int) "t1 offset" 0 o1;
  Alcotest.(check int) "t1 width" (period / 4) w1;
  Alcotest.(check int) "t2 offset" (period / 4) o2;
  Alcotest.(check int) "t2 width" (3 * period / 4) w2;
  (* Windows tile the period in registration order: no overlap. *)
  Alcotest.(check bool) "disjoint" true (o1 + w1 <= o2);
  Alcotest.(check bool) "within period" true (o2 + w2 <= period)

let test_admission () =
  let a = Arbiter.create ~name:"lane" ~bandwidth:bw ~period_ns:period in
  let t1 = Arbiter.register a ~name:"t1" () in
  let t2 = Arbiter.register a ~name:"t2" () in
  let _, w1 = Arbiter.window a t1 in
  let small = 4096 in
  (* At its own window start a small epoch is admitted. *)
  (match Arbiter.admit a t1 ~now:0 ~est_bytes:small with
  | Arbiter.Admit -> ()
  | _ -> Alcotest.fail "small epoch at window start must be admitted");
  (* Inside the OTHER tenant's window the epoch is delayed to the next
     opening of its own window, never rejected. *)
  let o2, _ = Arbiter.window a t2 in
  (match Arbiter.admit a t1 ~now:o2 ~est_bytes:small with
  | Arbiter.Delay d ->
      Alcotest.(check bool) "delay positive" true (d > 0);
      (* Landing time is inside t1's window of the next period. *)
      let land_ = (o2 + d) mod period in
      let o1, ww1 = Arbiter.window a t1 in
      Alcotest.(check bool) "delay lands in own window" true
        (land_ >= o1 && land_ + Cost.transfer_time ~bandwidth:bw small <= o1 + ww1)
  | _ -> Alcotest.fail "epoch outside its window must be delayed");
  (* An epoch whose flush cannot fit any window of this tenant is
     rejected outright. *)
  let huge = (w1 / 1_000_000_000 + 1) * bw + bw in
  (match Arbiter.admit a t1 ~now:0 ~est_bytes:huge with
  | Arbiter.Reject -> ()
  | _ -> Alcotest.fail "over-window epoch must be rejected");
  Arbiter.note_delayed a t1;
  Arbiter.note_rejected a t1;
  let s = Arbiter.stats a t1 in
  Alcotest.(check int) "delayed counted" 1 s.Arbiter.ts_delayed;
  Alcotest.(check int) "rejected counted" 1 s.Arbiter.ts_rejected

let test_lane_attribution () =
  let a = Arbiter.create ~name:"lane" ~bandwidth:bw ~period_ns:period in
  let t1 = Arbiter.register a ~name:"t1" () in
  let t2 = Arbiter.register a ~name:"t2" () in
  let big = 8 * 1024 * 1024 in
  let c1 = Arbiter.submit a t1 ~now:0 ~bytes:big in
  (* t2 submits while t1's grant occupies the lane: the wait is billed to
     t2 (it suffered it) and the service to each grant's owner. *)
  let c2 = Arbiter.submit a t2 ~now:0 ~bytes:big in
  Alcotest.(check bool) "lane is FCFS" true (c2 > c1);
  let s1 = Arbiter.stats a t1 and s2 = Arbiter.stats a t2 in
  Alcotest.(check int) "t1 no wait" 0 s1.Arbiter.ts_wait_ns;
  Alcotest.(check int) "t2 waits t1's service" s1.Arbiter.ts_busy_ns
    s2.Arbiter.ts_wait_ns;
  Alcotest.(check int) "t1 bytes" big s1.Arbiter.ts_bytes;
  Alcotest.(check int) "grants" 1 s2.Arbiter.ts_grants;
  Alcotest.(check bool) "accounting identity" true (Arbiter.accounting_ok a);
  Alcotest.(check int) "lane busy is the sum"
    (s1.Arbiter.ts_busy_ns + s2.Arbiter.ts_busy_ns)
    (Arbiter.lane_busy_ns a)

(* Priority-lane span attribution (the PR's bugfix) ------------------------ *)

(* Regression: a priority-lane submission runs on its own arbitration, not
   behind the shared FCFS queue — its span must show qwait=0 with the full
   window as service, even when another consumer has the queue backed up.
   The old busy_until-derived math billed that other consumer's backlog to
   the priority write. *)
let test_priority_qwait_zero () =
  let clock = Clock.create () in
  let dev = Striped.create () in
  Trace.enable ~capacity:4096 ~clock ();
  (* Back the device queues up with a large plain write... *)
  let _ = Striped.write dev ~now:0 ~off:0 (Bytes.create (1 lsl 20)) in
  (* ...then submit on the priority lane while the backlog drains. *)
  let _ =
    Striped.write_priority dev ~now:0 ~off:(1 lsl 21) (Bytes.create 64)
      ~completion:Cost.nvme_sync_write_latency
  in
  let text = Trace.export_text () in
  Trace.disable ();
  let prio_lines =
    String.split_on_char '\n' text
    |> List.filter (fun l ->
           let re = Str.regexp_string "dev:priority" in
           try
             ignore (Str.search_forward re l 0);
             true
           with Not_found -> false)
  in
  Alcotest.(check bool) "priority event traced" true (prio_lines <> []);
  List.iter
    (fun l ->
      let has_zero =
        try
          ignore (Str.search_forward (Str.regexp_string "qwait=0 ") (l ^ " ") 0);
          true
        with Not_found -> false
      in
      if not has_zero then
        Alcotest.failf "priority span billed foreign queue wait: %s" l)
    prio_lines

(* Fleet scheduler --------------------------------------------------------- *)

let test_fleet_smoke () =
  let specs =
    List.init 4 (fun i -> Fleet.default_spec (Printf.sprintf "t%d" i))
  in
  let f = Fleet.create ~period_ns:period specs in
  Fleet.run_for f ~duration:(20 * period);
  let r = Fleet.report f in
  Alcotest.(check bool) "made progress" true (r.Fleet.r_epochs > 0);
  List.iter
    (fun tr ->
      Alcotest.(check bool)
        (tr.Fleet.tr_name ^ " checkpointed")
        true (tr.Fleet.tr_epochs > 0))
    r.Fleet.r_tenants;
  Alcotest.(check int) "no flush-window collisions" 0 r.Fleet.r_collisions;
  Alcotest.(check bool) "fair" true (r.Fleet.r_jain >= 0.9);
  Alcotest.(check bool) "lane accounting identity" true r.Fleet.r_accounting_ok

let test_fleet_staggered_offsets () =
  let specs = List.init 3 (fun i -> Fleet.default_spec (Printf.sprintf "s%d" i)) in
  let f = Fleet.create ~period_ns:period specs in
  (* Three equal-weight tenants: each owns a third of the period and the
     scheduler launches each epoch at its own offset. *)
  Fleet.run_for f ~duration:(6 * period);
  let r = Fleet.report f in
  Alcotest.(check int) "collisions" 0 r.Fleet.r_collisions;
  (* Epoch counts stay within one of each other (no starvation); exactly
     one apart is the phase effect of the staggered offsets against the
     run's end time. *)
  let counts = List.map (fun tr -> tr.Fleet.tr_epochs) r.Fleet.r_tenants in
  let mn = List.fold_left min max_int counts
  and mx = List.fold_left max 0 counts in
  Alcotest.(check bool) "all tenants progress" true (mn > 0);
  Alcotest.(check bool)
    (Printf.sprintf "epoch spread <= 1 (min %d, max %d)" mn mx)
    true
    (mx - mn <= 1)

let test_jain () =
  Alcotest.(check (float 1e-9)) "uniform" 1.0 (Fleet.jain [ 3.; 3.; 3. ]);
  Alcotest.(check (float 1e-9)) "empty" 1.0 (Fleet.jain []);
  Alcotest.(check (float 1e-9)) "one-hot" 0.25 (Fleet.jain [ 1.; 0.; 0.; 0. ])

(* Cross-tenant isolation (qcheck) ----------------------------------------- *)

(* A mutation trace drives a tenant's workload surface through its
   handles; [Ck] checkpoints.  The same trace applied to the tenant inside
   an interleaved fleet and to an identically constructed solo tenant must
   produce byte-identical stores, epoch for epoch. *)
type mop = Rw of int * int | Touch of int * int | Ck

let mop_to_string = function
  | Rw (h, p) -> Printf.sprintf "Rw(%d,%d)" h p
  | Touch (h, pg) -> Printf.sprintf "Touch(%d,%d)" h pg
  | Ck -> "Ck"

let gen_mop =
  QCheck.Gen.(
    frequency
      [
        (3, map2 (fun a b -> Rw (a, b)) (int_bound 7) (int_bound 7));
        (3, map2 (fun a b -> Touch (a, b)) (int_bound 7) (int_bound 15));
        (1, return Ck);
      ])

let arb_trace =
  QCheck.make
    ~print:(fun t -> String.concat ";" (List.map mop_to_string t))
    QCheck.Gen.(list_size (int_range 4 16) gen_mop)

let apply_mop ~machine ~handles op =
  let handles = Array.of_list handles in
  let nh = Array.length handles in
  match op with
  | Rw (hi, pi) ->
      let h = handles.(hi mod nh) in
      let np = Array.length h.Fleet.ph_pipes in
      if np > 0 then begin
        let rd, wr = h.Fleet.ph_pipes.(pi mod np) in
        ignore (Syscall.write machine h.Fleet.ph_proc ~fd:wr "q");
        ignore (Syscall.read machine h.Fleet.ph_proc ~fd:rd ~len:1)
      end
  | Touch (hi, pg) ->
      let h = handles.(hi mod nh) in
      let spec_pages = 4 (* default_spec arena *) in
      Vm_space.touch_write h.Fleet.ph_proc.Process.space
        ~addr:(h.Fleet.ph_arena_addr + (pg mod spec_pages * Page.logical_size))
        ~len:1
  | Ck -> ()

(* Canonical byte-level render of every checkpoint epoch of a store. *)
let render_store store =
  let b = Buffer.create 4096 in
  List.iter
    (fun epoch ->
      Buffer.add_string b (Printf.sprintf "E%d\n" epoch);
      List.iter
        (fun (oid, kind) ->
          let meta = Store.read_meta store ~epoch ~oid in
          let crcs =
            Store.page_crcs store ~epoch ~oid
            |> List.map (fun (i, c) -> Printf.sprintf "%d:%d" i c)
            |> String.concat ","
          in
          Buffer.add_string b
            (Printf.sprintf "O%d|%s|%s|%s\n" oid kind (String.escaped meta) crcs))
        (Store.objects_at store ~epoch))
    (Store.checkpoint_epochs store);
  Buffer.contents b

let isolation_prop traces =
  let n = List.length traces in
  let specs = List.init n (fun i -> Fleet.default_spec (Printf.sprintf "q%d" i)) in
  let fleet = Fleet.create ~period_ns:period specs in
  let traces_a = Array.of_list traces in
  (* Interleave the tenants' traces round-robin op by op, checkpointing
     through the fleet (shared clock, shared arbiter lane). *)
  let idx = Array.make n 0 in
  let remaining = ref n in
  let arrays = Array.map Array.of_list traces_a in
  while !remaining > 0 do
    remaining := 0;
    for i = 0 to n - 1 do
      let ops = arrays.(i) in
      if idx.(i) < Array.length ops then begin
        (match ops.(idx.(i)) with
        | Ck -> ignore (Fleet.checkpoint_now fleet i)
        | op ->
            apply_mop ~machine:(Fleet.machine fleet i)
              ~handles:(Fleet.handles fleet i) op);
        idx.(i) <- idx.(i) + 1;
        if idx.(i) < Array.length ops then incr remaining
      end
    done
  done;
  for i = 0 to n - 1 do
    ignore (Fleet.checkpoint_now ~wait_durable:true fleet i)
  done;
  (* Each tenant alone on a private store, same construction, same trace. *)
  List.iteri
    (fun i trace ->
      let s = Fleet.solo ~period_ns:period (List.nth specs i) in
      List.iter
        (fun op ->
          match op with
          | Ck -> ignore (Group.checkpoint s.Fleet.so_group)
          | op ->
              apply_mop ~machine:s.Fleet.so_machine ~handles:s.Fleet.so_handles op)
        trace;
      ignore (Group.checkpoint ~wait_durable:true s.Fleet.so_group);
      let fleet_r = render_store (Fleet.store fleet i) in
      let solo_r = render_store s.Fleet.so_store in
      if fleet_r <> solo_r then
        QCheck.Test.fail_reportf
          "tenant %d diverged from its solo run:\n--- fleet ---\n%s--- solo ---\n%s"
          i fleet_r solo_r)
    traces;
  true

let isolation_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"interleaved tenants restore byte-identically"
       ~count:15
       (QCheck.list_of_size (QCheck.Gen.return 3) arb_trace)
       isolation_prop)

let () =
  Alcotest.run "fleet"
    [
      ( "arbiter",
        [
          Alcotest.test_case "windows partition the period" `Quick
            test_windows_partition;
          Alcotest.test_case "admission decisions" `Quick test_admission;
          Alcotest.test_case "lane attribution" `Quick test_lane_attribution;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "priority lane qwait is zero" `Quick
            test_priority_qwait_zero;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "smoke" `Quick test_fleet_smoke;
          Alcotest.test_case "staggered, no starvation" `Quick
            test_fleet_staggered_offsets;
          Alcotest.test_case "jain index" `Quick test_jain;
        ] );
      ("isolation", [ isolation_test ]);
    ]
