(* Golden-trace generator for speculative soft-quiesce epochs.

   Runs one stop-the-world epoch and then two speculative epochs of a
   deterministic kernel workload under the tracer, with a run hook that
   makes application progress (and emits "app:progress" instants)
   whenever a soft-quiesce yield window opens.  The generator itself
   enforces the two structural claims the golden fixture freezes:

   - the ckpt:speculate span overlaps workload execution: the hook ran a
     nonzero number of ops, and every one of its instants has a
     timestamp inside the speculate span;
   - the stop-phase children still partition the stop window exactly:
     stop_ns from ckpt_stats equals quiesce + collapse + validate +
     shadow + resume from the trace, and those plus speculate and flush
     sum to the epoch span.

   `dune build @obs` diffs the output against obs_spec_golden.expected;
   refresh after an intentional change with
   `dune build @obs-golden-promote --auto-promote`. *)

module Clock = Aurora_sim.Clock
module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Syscall = Aurora_kern.Syscall
module Vm_space = Aurora_vm.Vm_space
module Page = Aurora_vm.Page
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Trace = Aurora_obs.Trace

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("obs_spec_trace_gen: " ^ s); exit 1) fmt

let span_durs name events =
  let durs = ref [] in
  let stack = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.ev_ph with
      | Trace.Begin -> stack := (e.Trace.ev_name, e.Trace.ev_ts) :: !stack
      | Trace.End -> (
          match !stack with
          | (n, t) :: rest ->
              stack := rest;
              if n = name then durs := (t, e.Trace.ev_ts - t) :: !durs
          | [] -> ())
      | _ -> ())
    events;
  List.rev !durs

let contains line sub =
  let n = String.length line and m = String.length sub in
  let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
  m = 0 || go 0

let () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let p = Syscall.spawn m ~name:"spec" in
  let pipes = Array.init 8 (fun _ -> Syscall.pipe m p) in
  let socks = Array.init 32 (fun _ -> Syscall.socketpair m p) in
  let mem = Syscall.mmap_anon p ~npages:16 in
  let addr = Vm_space.addr_of_entry mem in
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  let dirty_all () =
    Array.iter (fun (_, wr) -> ignore (Syscall.write m p ~fd:wr "d")) pipes;
    Array.iter (fun (a, _) -> ignore (Syscall.write m p ~fd:a "d")) socks;
    Vm_space.touch_write p.Process.space ~addr ~len:(4 * Page.logical_size)
  in
  let clk = m.Machine.clock in
  Trace.enable ~capacity:(1 lsl 16) ~clock:clk ();
  (* One stop-the-world epoch for contrast, then speculative ones. *)
  dirty_all ();
  ignore (Group.checkpoint ~wait_durable:true group);
  Group.set_speculative group true;
  let hook_ops = ref 0 in
  Machine.set_run_hook m
    (Some
       (fun _ns ->
         incr hook_ops;
         Trace.instant ~cat:"app" "progress";
         ignore
           (Syscall.write m p ~fd:(snd pipes.(!hook_ops mod 8)) "mid");
         Vm_space.touch_write p.Process.space
           ~addr:(addr + (!hook_ops mod 16 * Page.logical_size))
           ~len:Page.logical_size));
  dirty_all ();
  ignore (Group.checkpoint ~wait_durable:true group);
  dirty_all ();
  let stats = Group.checkpoint ~wait_durable:true group in
  Machine.set_run_hook m None;
  if Trace.dropped () > 0 then fail "ring buffer overflowed; raise capacity";
  if !hook_ops = 0 then fail "no app progress during speculation windows";
  (* Slice to the final epoch, as span names differ per cycle shape. *)
  let events = Trace.events () in
  let last_epoch_start = ref 0 in
  List.iteri
    (fun i (e : Trace.event) ->
      if e.Trace.ev_ph = Trace.Begin && e.Trace.ev_name = "epoch" then
        last_epoch_start := i)
    events;
  let events = List.filteri (fun i _ -> i >= !last_epoch_start) events in
  let one name =
    match span_durs name events with
    | [ (t, d) ] -> (t, d)
    | l -> fail "expected exactly one %s span in the final epoch, got %d" name (List.length l)
  in
  let _, epoch_d = one "epoch" in
  let spec_t, spec_d = one "speculate" in
  let _, quiesce_d = one "quiesce" in
  let _, collapse_d = one "collapse" in
  let _, validate_d = one "validate" in
  let _, shadow_d = one "shadow" in
  let _, resume_d = one "resume" in
  let _, flush_d = one "flush" in
  let stop_sum = quiesce_d + collapse_d + validate_d + shadow_d + resume_d in
  if stats.Group.stop_ns <> stop_sum then
    fail "stop phases do not partition the stop window: stop_ns %d <> %d"
      stats.Group.stop_ns stop_sum;
  if epoch_d <> spec_d + stop_sum + flush_d then
    fail "epoch span %d <> speculate %d + stop %d + flush %d" epoch_d spec_d
      stop_sum flush_d;
  (* Every app-progress instant of the final epoch lies inside the
     speculate span: the workload ran while the checkpoint serialized. *)
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.ev_ph = Trace.Instant && e.Trace.ev_name = "progress" then
        if e.Trace.ev_ts < spec_t || e.Trace.ev_ts > spec_t + spec_d then
          fail "app progress instant at %d outside speculate [%d, %d]"
            e.Trace.ev_ts spec_t (spec_t + spec_d))
    events;
  Printf.printf "speculate overlaps execution: %d app ops inside ckpt:speculate\n"
    !hook_ops;
  Printf.printf
    "stop partition: quiesce+collapse+validate+shadow+resume = stop_ns = %d ns\n"
    stop_sum;
  Printf.printf "epoch = speculate + stop + flush = %d ns\n\n" epoch_d;
  (* The frozen artifact: the final speculative epoch's text timeline. *)
  let text = Trace.export_text () in
  let lines = String.split_on_char '\n' text in
  let start = ref (-1) in
  List.iteri (fun i l -> if contains l "> ckpt:epoch" then start := i) lines;
  if !start < 0 then fail "no ckpt:epoch span in trace";
  print_string
    (String.concat "\n" (List.filteri (fun i _ -> i >= !start) lines))
