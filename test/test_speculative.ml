(* Speculative soft-quiesce checkpoints: the committed image must be
   byte-identical to stop-the-world over the same trace, mutations landing
   mid-speculation must be re-copied by the validator (and only
   stamp-visible ones — the unstamped poke is the negative control), and a
   crash during the soft window must recover to the previous epoch, never
   a half-spliced image. *)

module Clock = Aurora_sim.Clock
module Striped = Aurora_block.Striped
module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Syscall = Aurora_kern.Syscall
module Fdesc = Aurora_kern.Fdesc
module Pipe = Aurora_kern.Pipe
module Vm_space = Aurora_vm.Vm_space
module Page = Aurora_vm.Page
module Store = Aurora_objstore.Store
module Serial = Aurora_core.Serial
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Restore = Aurora_core.Restore

type world = {
  sys : Sls.system;
  m : Machine.t;
  p : Process.t;
  group : Group.t;
  pipes : (int * int) array;
  socks : (int * int) array;
  addr : int;
}

(* A process with enough kernel objects that an incremental serialize
   pass comfortably exceeds the soft-quiesce yield quantum once they are
   all dirty, so concurrency windows actually open. *)
let make_world ?(npipes = 8) ?(nsocks = 32) () =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let p = Syscall.spawn m ~name:"spec" in
  let pipes = Array.init npipes (fun _ -> Syscall.pipe m p) in
  let socks = Array.init nsocks (fun _ -> Syscall.socketpair m p) in
  let mem = Syscall.mmap_anon p ~npages:32 in
  let addr = Vm_space.addr_of_entry mem in
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  { sys; m; p; group; pipes; socks; addr }

let dirty_everything w =
  Array.iter (fun (_, wr) -> ignore (Syscall.write w.m w.p ~fd:wr "pre")) w.pipes;
  Array.iter (fun (a, _) -> ignore (Syscall.write w.m w.p ~fd:a "pre")) w.socks;
  Vm_space.touch_write w.p.Process.space ~addr:w.addr ~len:(8 * Page.logical_size)

let pipe_of w i =
  match (Syscall.fd_exn w.p (fst w.pipes.(i))).Fdesc.kind with
  | Fdesc.Pipe_read pi -> pi
  | _ -> assert false

(* The byte-identity oracle from test_incremental, verbatim: epoch [e1]
   and a forced-full epoch [e2] with no mutations in between must hold
   the same objects, metadata and page checksums. *)
let check_epochs_identical ~what sys e1 e2 =
  let objs1 = Store.objects_at sys.Sls.store ~epoch:e1 in
  let objs2 = Store.objects_at sys.Sls.store ~epoch:e2 in
  Alcotest.(check (list (pair int string)))
    (what ^ ": same object set") objs2 objs1;
  List.iter
    (fun (oid, kind) ->
      if kind <> Serial.kind_manifest then begin
        Alcotest.(check string)
          (Printf.sprintf "%s: meta of oid %d (%s)" what oid kind)
          (Store.read_meta sys.Sls.store ~epoch:e2 ~oid)
          (Store.read_meta sys.Sls.store ~epoch:e1 ~oid);
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "%s: pages of oid %d (%s)" what oid kind)
          (Store.page_crcs sys.Sls.store ~epoch:e2 ~oid)
          (Store.page_crcs sys.Sls.store ~epoch:e1 ~oid)
      end)
    objs2

(* Tentpole: the soft window makes real application progress (the run
   hook fires), conflicts are detected and re-copied, the stats keep
   their documented invariant, and the image is byte-identical to a
   forced-full checkpoint taken immediately after. *)
let test_speculative_identity_with_conflicts () =
  let w = make_world () in
  dirty_everything w;
  let ops = ref 0 in
  Machine.set_run_hook w.m
    (Some
       (fun _ns ->
         incr ops;
         let i = !ops in
         ignore
           (Syscall.write w.m w.p
              ~fd:(snd w.pipes.(i mod Array.length w.pipes))
              "mid");
         ignore
           (Syscall.write w.m w.p
              ~fd:(fst w.socks.(i mod Array.length w.socks))
              "mid");
         Vm_space.touch_write w.p.Process.space
           ~addr:(w.addr + (i mod 32 * Page.logical_size))
           ~len:Page.logical_size));
  let c = Group.checkpoint ~wait_durable:true ~speculative:true w.group in
  Alcotest.(check bool) "workload progressed during speculation" true (!ops > 0);
  Alcotest.(check bool) "speculation window has nonzero duration" true
    (c.Group.speculate_ns > 0);
  Alcotest.(check bool) "mid-speculation mutations were re-copied" true
    (c.Group.conflict_objects > 0);
  Alcotest.(check bool) "stop_ns covers quiesce + validation" true
    (c.Group.stop_ns >= c.Group.quiesce_ns + c.Group.validate_ns);
  Machine.set_run_hook w.m None;
  let c2 = Group.checkpoint ~wait_durable:true ~full:true w.group in
  Alcotest.(check int) "full cycle skips nothing" 0 c2.Group.objects_skipped;
  check_epochs_identical ~what:"speculative vs full" w.sys c.Group.epoch
    c2.Group.epoch

(* Stop-the-world cycles must report inert speculation stats. *)
let test_stw_stats_inert () =
  let w = make_world ~npipes:2 ~nsocks:2 () in
  dirty_everything w;
  let c = Group.checkpoint ~wait_durable:true w.group in
  Alcotest.(check int) "no speculate time" 0 c.Group.speculate_ns;
  Alcotest.(check int) "no validate time" 0 c.Group.validate_ns;
  Alcotest.(check int) "no conflict objects" 0 c.Group.conflict_objects;
  Alcotest.(check int) "no conflict pages" 0 c.Group.conflict_pages

(* Satellite: the double-count hazard.  A pipe serialized early in the
   soft pass and then written mid-window carries a moved stamp; the
   generation-stamp rule must re-serialize it in the validation pass (the
   speculatively staged image is stale), so the restored pipe holds both
   writes. *)
let test_respeculated_object_not_skipped () =
  let w = make_world () in
  ignore (Syscall.write w.m w.p ~fd:(snd w.pipes.(0)) "early");
  dirty_everything w;
  let fired = ref false in
  Machine.set_run_hook w.m
    (Some
       (fun _ns ->
         if not !fired then begin
           fired := true;
           ignore (Syscall.write w.m w.p ~fd:(snd w.pipes.(0)) "late")
         end));
  let c = Group.checkpoint ~wait_durable:true ~speculative:true w.group in
  Machine.set_run_hook w.m None;
  Alcotest.(check bool) "the mid-window write fired" true !fired;
  Alcotest.(check bool) "conflict set includes the re-written pipe" true
    (c.Group.conflict_objects > 0);
  let sys', result = Sls.reboot_and_restore w.sys in
  match result.Restore.procs with
  | [ p' ] ->
      Alcotest.(check string) "restored pipe holds both writes" "earlyprelate"
        (Syscall.read sys'.Sls.machine p' ~fd:(fst w.pipes.(0)) ~len:32)
  | _ -> Alcotest.fail "expected 1 restored process"

(* Negative control: an unstamped in-place poke during the window is the
   mutation class the stamp rule cannot see.  The validator must keep the
   speculative (pre-poke) image — matching what an incremental
   stop-the-world checkpoint restores. *)
let test_unstamped_poke_keeps_speculative_image () =
  let w = make_world () in
  ignore (Syscall.write w.m w.p ~fd:(snd w.pipes.(0)) "early");
  dirty_everything w;
  let fired = ref false in
  Machine.set_run_hook w.m
    (Some
       (fun _ns ->
         if not !fired then begin
           fired := true;
           Pipe.unstamped_poke_for_tests (pipe_of w 0) "poked!"
         end));
  ignore (Group.checkpoint ~wait_durable:true ~speculative:true w.group);
  Machine.set_run_hook w.m None;
  Alcotest.(check bool) "the poke fired mid-window" true !fired;
  let sys', result = Sls.reboot_and_restore w.sys in
  match result.Restore.procs with
  | [ p' ] ->
      Alcotest.(check string) "restore keeps the pre-poke speculative image"
        "earlypre"
        (Syscall.read sys'.Sls.machine p' ~fd:(fst w.pipes.(0)) ~len:32)
  | _ -> Alcotest.fail "expected 1 restored process"

(* A power failure in the middle of the soft window: nothing of the
   speculative staging is durable, so recovery lands exactly on the
   previous epoch. *)
let test_crash_during_speculation_recovers_previous_epoch () =
  let w = make_world () in
  let e_prev = Group.last_epoch w.group in
  dirty_everything w;
  let t_mid = ref 0 in
  Machine.set_run_hook w.m
    (Some (fun _ns -> if !t_mid = 0 then t_mid := Clock.now w.m.Machine.clock));
  let c = Group.checkpoint ~wait_durable:true ~speculative:true w.group in
  Machine.set_run_hook w.m None;
  Alcotest.(check bool) "hook recorded a mid-speculation instant" true
    (!t_mid > 0 && !t_mid < Clock.now w.m.Machine.clock);
  Alcotest.(check bool) "the speculative epoch did commit" true
    (c.Group.epoch > e_prev);
  (* Crash with the durable horizon frozen mid-speculation. *)
  Striped.crash w.sys.Sls.device ~now:!t_mid;
  let machine = Machine.create () in
  Clock.advance_to machine.Machine.clock !t_mid;
  let store = Store.recover ~dev:w.sys.Sls.device ~clock:machine.Machine.clock in
  Alcotest.(check int) "recovery lands on the pre-speculation epoch" e_prev
    (Store.last_complete_epoch store);
  let result = Restore.restore ~machine ~store () in
  Alcotest.(check int) "previous epoch restores cleanly" 1
    (List.length result.Restore.procs)

(* Random traces under speculation: interleave application ops (some from
   inside the soft window via the run hook, including structural
   fork-free map/unmap churn) with speculative checkpoints, then compare
   the final speculative epoch byte-for-byte against a forced-full one.
   Mirrors test_incremental's trace property with ~speculative:true. *)

type op =
  | Pwrite of int * string
  | Pread of int * int
  | Swrite of int * string
  | Mtouch of int
  | Sig of int
  | Ckpt

let op_gen =
  let open QCheck.Gen in
  frequency
    [
      ( 4,
        map2
          (fun i s -> Pwrite (i, s))
          (int_bound 3)
          (string_size ~gen:(char_range 'a' 'z') (int_range 1 24)) );
      (2, map2 (fun i n -> Pread (i, n)) (int_bound 3) (int_range 1 16));
      ( 4,
        map2
          (fun i s -> Swrite (i, s))
          (int_bound 7)
          (string_size ~gen:(char_range 'a' 'z') (int_range 1 12)) );
      (4, map (fun i -> Mtouch i) (int_bound 31));
      (1, map (fun s -> Sig (1 + s)) (int_bound 10));
      (3, return Ckpt);
    ]

let trace_arb =
  QCheck.make
    ~print:(fun (ops, structural) ->
      Printf.sprintf "%d ops%s" (List.length ops)
        (if structural then " +structural" else ""))
    QCheck.Gen.(pair (list_size (int_range 5 40) op_gen) bool)

let run_spec_trace (ops, structural) =
  let w = make_world ~npipes:4 ~nsocks:8 () in
  dirty_everything w;
  let hooked = ref 0 in
  Machine.set_run_hook w.m
    (Some
       (fun _ns ->
         incr hooked;
         let i = !hooked in
         ignore
           (Syscall.write w.m w.p
              ~fd:(snd w.pipes.(i mod Array.length w.pipes))
              "hk");
         Vm_space.touch_write w.p.Process.space
           ~addr:(w.addr + (i mod 32 * Page.logical_size))
           ~len:Page.logical_size;
         if structural && i mod 3 = 0 then begin
           (* Structural churn mid-window: the validator must fall back
              to discarding the speculative page staging. *)
           let e = Syscall.mmap_anon w.p ~npages:1 in
           Syscall.munmap w.p e
         end))
    ;
  List.iter
    (fun op ->
      match op with
      | Pwrite (i, s) -> ignore (Syscall.write w.m w.p ~fd:(snd w.pipes.(i)) s)
      | Pread (i, n) ->
          ignore (Syscall.read w.m w.p ~fd:(fst w.pipes.(i)) ~len:n)
      | Swrite (i, s) -> ignore (Syscall.write w.m w.p ~fd:(fst w.socks.(i)) s)
      | Mtouch i ->
          Vm_space.touch_write w.p.Process.space
            ~addr:(w.addr + (i * Page.logical_size))
            ~len:Page.logical_size
      | Sig signo -> ignore (Syscall.kill w.m ~pid:w.p.Process.pid_global ~signo)
      | Ckpt ->
          ignore (Group.checkpoint ~wait_durable:true ~speculative:true w.group))
    ops;
  let c1 = Group.checkpoint ~wait_durable:true ~speculative:true w.group in
  Machine.set_run_hook w.m None;
  let c2 = Group.checkpoint ~wait_durable:true ~full:true w.group in
  if c2.Group.objects_skipped <> 0 then
    QCheck.Test.fail_report "full cycle must not skip";
  if c1.Group.stop_ns < c1.Group.quiesce_ns + c1.Group.validate_ns then
    QCheck.Test.fail_report "stop_ns < quiesce_ns + validate_ns";
  let e1 = c1.Group.epoch and e2 = c2.Group.epoch in
  let objs1 = Store.objects_at w.sys.Sls.store ~epoch:e1 in
  let objs2 = Store.objects_at w.sys.Sls.store ~epoch:e2 in
  if objs1 <> objs2 then
    QCheck.Test.fail_report "speculative and full epochs hold different objects";
  List.iter
    (fun (oid, kind) ->
      if kind <> Serial.kind_manifest then begin
        if
          Store.read_meta w.sys.Sls.store ~epoch:e1 ~oid
          <> Store.read_meta w.sys.Sls.store ~epoch:e2 ~oid
        then
          QCheck.Test.fail_report
            (Printf.sprintf "meta of oid %d (%s) diverged from forced-full" oid
               kind);
        if
          Store.page_crcs w.sys.Sls.store ~epoch:e1 ~oid
          <> Store.page_crcs w.sys.Sls.store ~epoch:e2 ~oid
        then
          QCheck.Test.fail_report
            (Printf.sprintf "pages of oid %d (%s) diverged from forced-full" oid
               kind)
      end)
    objs2;
  true

let spec_trace_property =
  QCheck.Test.make ~count:40
    ~name:"speculative epoch equals forced-full on random traces" trace_arb
    run_spec_trace

let () =
  Alcotest.run "aurora_speculative"
    [
      ( "speculative soft-quiesce",
        [
          Alcotest.test_case "identity with mid-window conflicts" `Quick
            test_speculative_identity_with_conflicts;
          Alcotest.test_case "stop-the-world stats inert" `Quick
            test_stw_stats_inert;
          Alcotest.test_case "re-speculated object not skipped" `Quick
            test_respeculated_object_not_skipped;
          Alcotest.test_case "unstamped poke keeps speculative image" `Quick
            test_unstamped_poke_keeps_speculative_image;
          Alcotest.test_case "crash mid-speculation recovers previous epoch"
            `Quick test_crash_during_speculation_recovers_previous_epoch;
          QCheck_alcotest.to_alcotest spec_trace_property;
        ] );
    ]
