(** The Aurora object store: a copy-on-write store of first-class objects.

    Every POSIX object, memory object and file checkpointed by the SLS
    becomes an object here, named by a 64-bit identifier.  Checkpoints map
    one-to-one onto application checkpoints (section 7): a checkpoint is a
    record listing every live object's current version; unchanged objects
    carry their previous version forward, and memory objects share
    unchanged data blocks between versions through per-object radix page
    maps — no log cleaning, no garbage-collection pauses on the write path.

    {2 On-store format}

    Block 0 holds the superblock (magic, last complete checkpoint, journal
    registry).  A checkpoint commit orders its writes like a real COW file
    system: object data and version records first, then the checkpoint
    record, then the superblock — so a crash anywhere leaves the previous
    checkpoint intact, and {!recover} finds the last complete checkpoint by
    reading exactly what is durable on the device.

    {2 Non-COW journals}

    [sls_journal] regions are preallocated block ranges updated in place
    with synchronous appends (a 4 KiB append costs ~28 µs, Table 5) and
    recovered by scanning self-describing records. *)

type t

exception Corrupt_store of string

val block_size : int
val leaf_span : int
(** Pages covered by one radix leaf block. *)

(** {1 Lifecycle} *)

val format : dev:Aurora_block.Striped.t -> clock:Aurora_sim.Clock.t -> t
(** Initialize an empty store on the device (writes the superblock). *)

val recover : dev:Aurora_block.Striped.t -> clock:Aurora_sim.Clock.t -> t
(** Mount after a crash or reboot: parses the superblock and the last
    complete checkpoint's records off the device.  Raises
    {!Corrupt_store} if no valid superblock is found. *)

val clock : t -> Aurora_sim.Clock.t
val device : t -> Aurora_block.Striped.t
val alloc_oid : t -> int

val reserve_oids : t -> upto:int -> unit
(** Ensure future allocations exceed [upto] (migration installs objects
    with their source identifiers). *)

(** {1 Checkpointing} *)

val begin_checkpoint : t -> int
(** Open a staging epoch; returns its number.  At most one staging epoch
    may be open. *)

val put_object : t -> oid:int -> kind:string -> meta:string -> unit
(** Stage the serialized state of an object for the open epoch. *)

val put_pages : t -> oid:int -> (int * bytes) list -> unit
(** Stage dirty page payloads [(page index, payload)] for a memory
    object.  Pages not mentioned carry over from the previous version
    (copy-on-write).  Staging the same index again — in the same call or a
    later one — replaces the payload in O(1): the newest staged version of
    a page wins, decided here rather than at commit time. *)

val commit_checkpoint : t -> int
(** Write out the staged epoch asynchronously; returns the virtual time at
    which the checkpoint is fully durable (superblock written).  The
    caller decides whether to wait (sls_barrier) or continue running.

    The flush is coalesced: each object's fresh data blocks are sorted,
    allocated as contiguous extents and submitted as a handful of
    stripe-spanning vectored writes ({!Aurora_block.Striped.write_vec});
    rewritten radix leaves and version records ride extents of their own.
    A 10k-dirty-page epoch issues O(extents) device submissions instead of
    O(pages). *)

type flush_stats = {
  fs_epoch : int;  (** epoch the stats describe *)
  fs_extents : int;  (** coalesced extents submitted *)
  fs_extent_blocks : int;  (** blocks carried by those extents *)
  fs_coalesced_bytes : int;  (** logical bytes submitted through extents *)
  fs_dev_writes : int;  (** device-queue submissions the commit issued *)
  fs_leaf_hits : int;  (** leaf-cache hits during the epoch *)
  fs_leaf_misses : int;  (** leaf-cache misses (device read + parse) *)
  fs_alloc_calls : int;  (** allocator invocations (extents count once) *)
  fs_pages : int;  (** distinct dirty pages flushed *)
  fs_pages_deduped : int;
      (** staged pages resolved against the content index (no data write) *)
  fs_bytes_written : int;
      (** device bytes the whole commit wrote: data, leaves, records,
          superblock *)
  fs_compress_ns : int;  (** modeled CPU time hashing + compressing *)
  fs_comp_in : int;  (** payload bytes entering the compressor *)
  fs_comp_out : int;  (** stored bytes after compression (incl. stores
          kept raw because coding did not shrink them) *)
}

val flush_stats : t -> flush_stats
(** Statistics of the most recently committed epoch's flush pipeline. *)

(** {1 Page-granular dedup and compression}

    The flush path keys every staged payload by its {!Aurora_util.Hash64}
    content hash: a page whose (hash, length, CRC) triple already names a
    live stored location is recorded in the radix leaf as a reference to
    that location and never re-flushed.  The index is {e derived} state —
    rebuilt wholesale from the durable leaves at {!recover} and after
    {!prune_history} — so its refcounts are crash-atomic by construction.
    Payloads that do flush are RLE-coded when that shrinks them, packed
    back-to-back into extents, and charged compression CPU time by
    compressibility class ({!Aurora_util.Rle.cls}). *)

val set_content_dedup : t -> bool -> unit
(** Default on.  Turning dedup on rebuilds the index from the retained
    epochs; turning it off clears it (benchmark A/B baseline). *)

val set_compression : t -> bool -> unit
(** Default on.  Off restores the block-per-page layout with full-block
    write charges (benchmark A/B baseline). *)

val content_index_size : t -> int
(** Distinct content hashes the index currently tracks. *)

val content_index_consistent : t -> bool
(** Check the incrementally maintained refcounts against a fresh walk of
    the durable leaves: every index entry must be backed by live leaf
    entries at exactly its recorded location, counted once per distinct
    leaf block.  Property tests call this after crash/recover cycles and
    mid-epoch prunes.  Always true when dedup is off. *)

(** {1 Fault tolerance} *)

val set_read_policy : t -> retries:int -> backoff_ns:int -> unit
(** Transient-read-error policy: a charged read raising
    {!Aurora_block.Fault.Io_error} is retried up to [retries] times, with
    exponential backoff starting at [backoff_ns] of virtual time.  The
    default is 4 retries from 20 µs.  A range that keeps failing re-raises
    the error to the caller. *)

val read_faults : t -> int
(** Transient read errors absorbed by retries over the store's lifetime. *)

val set_torture_misorder : t -> bool -> unit
(** TESTING ONLY: when set, {!commit_checkpoint} submits the superblock at
    commit start instead of after the checkpoint record completes — the
    classic metadata-before-data ordering bug.  Exists so the
    crash-consistency torture harness can demonstrate that it catches the
    resulting corruption; never set it outside tests. *)

val durable_at : t -> int
(** Durability time of the most recently committed checkpoint. *)

val wait_durable : t -> unit
(** Advance the clock to {!durable_at}. *)

val last_complete_epoch : t -> int
(** 0 when no checkpoint has committed. *)

val checkpoint_epochs : t -> int list
(** All retained complete epochs, oldest first (the execution history). *)

(** {1 Reading} *)

val objects_at : t -> epoch:int -> (int * string) list
(** [(oid, kind)] of every object in the checkpoint. *)

val read_meta : t -> epoch:int -> oid:int -> string
val read_page : t -> epoch:int -> oid:int -> idx:int -> bytes option
val read_pages : t -> epoch:int -> oid:int -> (int * bytes) list
(** All resident pages, charged as device reads. *)

val page_indices : t -> epoch:int -> oid:int -> int list

(** {1 Verification}

    Every flushed page carries a CRC-32 in its radix-leaf entry, computed
    once at flush time.  Checkpoint manifests are built from these
    checksums, and restore verification compares them against both the
    manifest and a deep re-read of the data blocks. *)

val page_crcs : t -> epoch:int -> oid:int -> (int * int) list
(** [(page index, payload CRC-32)] of every resident page, from the leaf
    entries alone (no data-block reads, no device charge). *)

val staging_manifest_source : t -> (int * string * string * (int * int) list) list
(** [(oid, kind, meta, page_crcs)] of every object the open staging epoch
    will contain once committed — carried objects included, previous
    leaves merged with staged payloads exactly as commit merges them.
    Invalid outside [begin_checkpoint] .. [commit_checkpoint]. *)

val staging_manifest_entries : t -> (int * string * int * int * int) list
(** [(oid, kind, meta CRC-32, page count, pages fingerprint)] for the same
    composed state as {!staging_manifest_source}, but summarized and
    computed incrementally: carried (unchanged) objects come from a
    manifest-row cache maintained at commit in O(1) each, and staged
    objects pay only for the leaves their dirty pages touch.  The
    fingerprint is the order-independent XOR fold used by
    [Serial.pages_fingerprint].  Sorted by oid; invalid outside
    [begin_checkpoint] .. [commit_checkpoint]. *)

val corrupt_meta_for_tests : t -> epoch:int -> oid:int -> unit
(** TESTING ONLY: flip a byte of the object's committed metadata in the
    given epoch's table (other epochs sharing the version are unharmed) —
    the negative control proving manifest verification detects it. *)

val corrupt_page_for_tests : t -> epoch:int -> oid:int -> unit
(** TESTING ONLY: overwrite the device block of one of the object's pages
    with garbage.  Data blocks are shared across epochs by COW, so
    corrupt a page that the target epoch wrote freshly. *)

(** {1 Journals} *)

type journal

val journal_create : t -> size:int -> journal
val journal_id : journal -> int
val journal_find : t -> int -> journal option
val journal_append : t -> journal -> string -> unit
(** Synchronous in-place append; the caller's clock advances to the
    flush's completion. *)

val journal_truncate : t -> journal -> unit
val journal_records : t -> journal -> string list
(** Parse the journal's records off the device (recovery path). *)

(** {1 History and space} *)

val prune_history : t -> keep:int -> int
(** Drop the oldest checkpoints beyond [keep]; returns freed blocks. *)

val blocks_allocated : t -> int
val blocks_free : t -> int
