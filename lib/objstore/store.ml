module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost
module Crc32 = Aurora_util.Crc32
module Hash64 = Aurora_util.Hash64
module Rle = Aurora_util.Rle
module Resource = Aurora_sim.Resource
module Striped = Aurora_block.Striped
module IntMap = Map.Make (Int)
module Otrace = Aurora_obs.Trace
module Ometrics = Aurora_obs.Metrics

let m_store_commits = Ometrics.counter "store.commits"
let m_store_pages = Ometrics.counter "store.pages_staged"
let m_store_deduped = Ometrics.counter "store.pages_deduped"
let m_store_extents = Ometrics.counter "store.extents"
let h_store_flush_window = Ometrics.histogram "store.flush_window_ns"

exception Corrupt_store of string

let block_size = 4096
(* 100 entries x 37 bytes + header fits one 4 KiB block. *)
let leaf_span = 100
let magic = "AURSTORE"
let superblock_block = 0

(* Largest coalesced extent, in blocks (Cost.nvme_max_extent_bytes). *)
let max_extent_blocks = max 1 (Cost.nvme_max_extent_bytes / block_size)

(* Parsed-leaf cache entries kept before the cache is recycled wholesale. *)
let leaf_cache_capacity = 65_536

(* In-memory view of one committed object version.  [leaves] maps leaf
   index -> leaf block; pruning recovers a version's blocks by
   reachability through the leaves, so versions carry no ownership
   lists. *)
type version = {
  v_kind : string;
  v_meta : string;
  v_block : int; (* first block of the serialized version record *)
  v_leaves : int IntMap.t;
}

type epoch_info = {
  e_epoch : int;
  e_record_block : int;
  e_table : (int, version) Hashtbl.t; (* oid -> version *)
}

type staged = {
  mutable s_kind : string;
  mutable s_meta : string;
  s_pages : (int, bytes) Hashtbl.t; (* page index -> newest payload *)
}

type journal = {
  j_id : int;
  j_start : int; (* first block *)
  j_blocks : int;
  mutable j_head : int; (* append offset in bytes within the journal *)
  mutable j_gen : int;
      (* truncation generation: records from earlier generations that
         survive beyond the new head are stale and must not be replayed *)
}

type flush_stats = {
  fs_epoch : int;
  fs_extents : int;
  fs_extent_blocks : int;
  fs_coalesced_bytes : int;
  fs_dev_writes : int;
  fs_leaf_hits : int;
  fs_leaf_misses : int;
  fs_alloc_calls : int;
  fs_pages : int;
  fs_pages_deduped : int;
  fs_bytes_written : int;
  fs_compress_ns : int;
  fs_comp_in : int;
  fs_comp_out : int;
}

let empty_flush_stats =
  {
    fs_epoch = 0;
    fs_extents = 0;
    fs_extent_blocks = 0;
    fs_coalesced_bytes = 0;
    fs_dev_writes = 0;
    fs_leaf_hits = 0;
    fs_leaf_misses = 0;
    fs_alloc_calls = 0;
    fs_pages = 0;
    fs_pages_deduped = 0;
    fs_bytes_written = 0;
    fs_compress_ns = 0;
    fs_comp_in = 0;
    fs_comp_out = 0;
  }

(* Cached manifest row of one object's last committed version: everything a
   checkpoint manifest needs, maintained incrementally at commit so staging
   a manifest never re-walks the leaves of carried (unchanged) objects. *)
type mrow = { r_kind : string; r_meta_crc : int; r_npages : int; r_fp : int }

let zero_row = { r_kind = "memory"; r_meta_crc = 0; r_npages = 0; r_fp = 0 }

(* One page's order-independent fingerprint contribution; the XOR fold over
   these must stay bit-identical to Serial.pages_fingerprint.  Hash64.pair
   mixes the index before the fold, so duplicate page contents at
   different indices no longer cancel (the old CRC/XOR fold's latent
   false-skip hazard). *)
let fp_one idx crc = Hash64.pair idx crc

(* One stored page: where its bytes live ([p_blk] + byte offset [p_off],
   [p_clen] stored bytes, possibly RLE-coded), and the identity of the
   original payload ([p_olen], CRC-32, content hash).  The checksum and
   hash are always over the ORIGINAL payload, so manifests, restore
   verification and the incremental-vs-full oracle are unaffected by how
   the bytes happen to be stored. *)
type pent = {
  p_idx : int;
  p_blk : int;
  p_off : int;
  p_clen : int;
  p_olen : int;
  p_comp : bool;
  p_crc : int;
  p_hash : int;
}

(* Blocks covered by a stored page (it may straddle block boundaries
   inside its packed extent). *)
let pent_blocks p f =
  for b = p.p_blk to p.p_blk + ((p.p_off + max 1 p.p_clen - 1) / block_size) do
    f b
  done

(* One content-index entry: a stored page location keyed by content hash.
   [c_refs] counts the leaf entries (across all retained epochs, each
   leaf counted once) that reference the location; the index is derived
   state, rebuilt from the durable leaves at recovery and after pruning,
   so it is crash-consistent by construction. *)
type centry = {
  c_blk : int;
  c_off : int;
  c_clen : int;
  c_olen : int;
  c_comp : bool;
  c_crc : int;
  mutable c_refs : int;
}

type t = {
  dev : Striped.t;
  clk : Clock.t;
  jqueue : Resource.t; (* serializes synchronous journal appends *)
  mutable next_oid : int;
  mutable next_block : int;
  free_set : (int, unit) Hashtbl.t; (* reusable single blocks, O(1) dedup *)
  mutable free_stack : int list; (* LIFO over [free_set]; may hold stale ids *)
  mutable freed : int;
  leaf_cache : (int, pent list) Hashtbl.t;
      (* leaf block -> parsed entries.  Leaf blocks are COW (written once),
         so the cache is exact as long as freed blocks are invalidated
         before reuse (free_block) and a recovered instance starts cold. *)
  content : (int, centry) Hashtbl.t;
      (* content hash -> stored location: the content-addressed page
         index.  A flush-path page whose (hash, olen, crc) triple already
         appears here is recorded as a leaf reference to the existing
         location and never re-written. *)
  mutable dedup_on : bool;
  mutable compress_on : bool;
  rows : (int, mrow) Hashtbl.t;
      (* oid -> manifest row of the newest committed epoch; updated at
         commit_checkpoint (the single choke point every epoch passes
         through, including migration installs), recomputed lazily from
         the version's leaves when cold (post-recovery). *)
  mutable epochs : epoch_info list; (* oldest first *)
  mutable current_epoch : int;
  mutable staging : (int, staged) Hashtbl.t option;
  mutable staging_epoch : int;
  mutable data_done : int; (* completion time of staged data writes *)
  mutable durable : int; (* completion time of the last superblock write *)
  mutable journals : journal list;
  mutable oldest_retained : int; (* chain-walk bound after pruning; 0 = all *)
  (* Flush-pipeline statistics, reset at begin_checkpoint and snapshotted
     into [last_flush] by commit_checkpoint. *)
  mutable stat_extents : int;
  mutable stat_extent_blocks : int;
  mutable stat_coalesced_bytes : int;
  mutable stat_leaf_hits : int;
  mutable stat_leaf_misses : int;
  mutable stat_alloc_calls : int;
  mutable stat_pages : int;
  mutable stat_pages_deduped : int;
  mutable stat_compress_ns : int;
  mutable stat_comp_in : int;
  mutable stat_comp_out : int;
  mutable stat_dev_base : int;
  mutable stat_bytes_base : int;
  mutable last_flush : flush_stats;
  (* Transient-read-error policy: a charged read that raises
     Fault.Io_error is retried up to [read_retries] times, backing off
     exponentially from [read_backoff] ns of virtual time. *)
  mutable read_retries : int;
  mutable read_backoff : int;
  mutable stat_read_faults : int;
  (* DELIBERATE BUG KNOB, for torture-harness validation only: submit the
     superblock at commit start instead of after the checkpoint record
     completes, breaking the data -> record -> superblock write ordering. *)
  mutable torture_misorder : bool;
}

(* Block allocation -------------------------------------------------------- *)

let alloc_block t =
  t.stat_alloc_calls <- t.stat_alloc_calls + 1;
  let rec pop () =
    match t.free_stack with
    | [] ->
        let b = t.next_block in
        t.next_block <- t.next_block + 1;
        b
    | b :: rest ->
        t.free_stack <- rest;
        (* Stale stack entries (absorbed into the frontier) are skipped:
           membership lives in [free_set]. *)
        if b < t.next_block && Hashtbl.mem t.free_set b then begin
          Hashtbl.remove t.free_set b;
          b
        end
        else pop ()
  in
  pop ()

(* Extents carve from the frontier only: every free-set block lies below
   the frontier, so an extent can never overlap the single-block reuse
   path. *)
let alloc_extent t n =
  t.stat_alloc_calls <- t.stat_alloc_calls + 1;
  let b = t.next_block in
  t.next_block <- t.next_block + n;
  b

let alloc_contiguous t n = alloc_extent t n

let free_block t b =
  (* Double frees and out-of-range blocks are dropped: the free set is a
     set, and handing the same block to two allocations would corrupt the
     store. *)
  if b > 0 && b < t.next_block && not (Hashtbl.mem t.free_set b) then begin
    Hashtbl.remove t.leaf_cache b;
    if b = t.next_block - 1 then begin
      (* Reclaim the frontier (and any free run below it): keeps future
         extents long and contiguous. *)
      t.next_block <- b;
      let rec absorb () =
        let a = t.next_block - 1 in
        if a > 0 && Hashtbl.mem t.free_set a then begin
          Hashtbl.remove t.free_set a;
          t.next_block <- a;
          absorb ()
        end
      in
      absorb ()
    end
    else begin
      Hashtbl.replace t.free_set b ();
      t.free_stack <- b :: t.free_stack
    end;
    t.freed <- t.freed + 1
  end

let off_of_block b = b * block_size

(* Superblock --------------------------------------------------------------- *)

let write_superblock t ~now ~last_epoch ~record_block =
  let w = Wire.writer () in
  Wire.str w magic;
  Wire.u64 w last_epoch;
  Wire.u64 w record_block;
  Wire.u64 w t.next_block;
  Wire.u64 w t.next_oid;
  Wire.u64 w t.oldest_retained;
  Wire.list w
    (fun j ->
      Wire.u64 w j.j_id;
      Wire.u64 w j.j_start;
      Wire.u64 w j.j_blocks;
      Wire.u64 w j.j_gen)
    t.journals;
  Striped.write t.dev ~now ~off:(off_of_block superblock_block) (Wire.contents w)

(* Version records ----------------------------------------------------------- *)

let serialize_version ~oid ~epoch v =
  let w = Wire.writer () in
  Wire.u8 w 0xA2;
  Wire.u64 w oid;
  Wire.u64 w epoch;
  Wire.str w v.v_kind;
  Wire.str w v.v_meta;
  Wire.list w
    (fun (leaf_idx, blk) ->
      Wire.u32 w leaf_idx;
      Wire.u64 w blk)
    (IntMap.bindings v.v_leaves);
  Wire.contents w

let parse_version data =
  let r = Wire.reader data in
  if Wire.ru8 r <> 0xA2 then raise (Corrupt_store "bad version magic");
  let oid = Wire.ru64 r in
  let _epoch = Wire.ru64 r in
  let kind = Wire.rstr r in
  let meta = Wire.rstr r in
  let leaves =
    Wire.rlist r (fun r ->
        let leaf_idx = Wire.ru32 r in
        let blk = Wire.ru64 r in
        (leaf_idx, blk))
    |> List.fold_left (fun m (leaf_idx, blk) -> IntMap.add leaf_idx blk m) IntMap.empty
  in
  (oid, kind, meta, leaves)

(* Leaf blocks: a leaf covers page indices [k*leaf_span, (k+1)*leaf_span) and
   stores (index, data block) pairs for the resident ones. *)

(* A leaf entry records a stored page's packed location, coding flag and
   the original payload's length, CRC-32 and content hash: payloads are
   variable-sized (compact for anonymous memory, full for file pages);
   the checksum, computed once when the page is flushed, is what
   checkpoint manifests and restore verification compare against without
   re-reading data blocks, and the hash is what lets recovery rebuild
   the content-addressed index without any data reads. *)
let serialize_leaf entries =
  let w = Wire.writer () in
  Wire.u8 w 0xA3;
  Wire.list w
    (fun p ->
      Wire.u32 w p.p_idx;
      Wire.u64 w p.p_blk;
      Wire.u32 w p.p_off;
      Wire.u32 w p.p_clen;
      Wire.u32 w p.p_olen;
      Wire.u8 w (Bool.to_int p.p_comp);
      Wire.u32 w p.p_crc;
      Wire.u64 w p.p_hash)
    entries;
  Wire.contents w

let parse_leaf data =
  let r = Wire.reader data in
  if Wire.ru8 r <> 0xA3 then raise (Corrupt_store "bad leaf magic");
  Wire.rlist r (fun r ->
      let p_idx = Wire.ru32 r in
      let p_blk = Wire.ru64 r in
      let p_off = Wire.ru32 r in
      let p_clen = Wire.ru32 r in
      let p_olen = Wire.ru32 r in
      let p_comp = Wire.ru8 r <> 0 in
      let p_crc = Wire.ru32 r in
      let p_hash = Wire.ru64 r in
      { p_idx; p_blk; p_off; p_clen; p_olen; p_comp; p_crc; p_hash })

let read_block_nocharge t blk = Striped.read_nocharge t.dev ~off:(off_of_block blk) ~len:block_size

(* Charged reads retry transient device errors with exponential backoff in
   virtual time; a persistently failing range surfaces the last error. *)
let retried_read t f =
  let rec go attempt backoff =
    try f ()
    with Aurora_block.Fault.Io_error _ when attempt < t.read_retries ->
      t.stat_read_faults <- t.stat_read_faults + 1;
      Clock.advance t.clk backoff;
      go (attempt + 1) (2 * backoff)
  in
  go 0 t.read_backoff

let read_blocks t ~blk ~nblocks =
  retried_read t (fun () ->
      Striped.read t.dev ~clock:t.clk ~off:(off_of_block blk) ~len:(nblocks * block_size))

(* Leaf cache ----------------------------------------------------------------- *)

let cache_leaf t blk entries =
  if Hashtbl.length t.leaf_cache >= leaf_cache_capacity then
    Hashtbl.reset t.leaf_cache;
  Hashtbl.replace t.leaf_cache blk entries

(* Parsed entries of [blk] without charging device time (housekeeping and
   commit paths). *)
let cached_leaf t blk =
  match Hashtbl.find_opt t.leaf_cache blk with
  | Some entries ->
      t.stat_leaf_hits <- t.stat_leaf_hits + 1;
      entries
  | None ->
      t.stat_leaf_misses <- t.stat_leaf_misses + 1;
      let entries = parse_leaf (read_block_nocharge t blk) in
      cache_leaf t blk entries;
      entries

(* Lifecycle ------------------------------------------------------------------ *)

let fresh dev clk =
  {
    dev;
    clk;
    jqueue = Resource.create ~name:"journal";
    next_oid = 0;
    next_block = 1;
    free_set = Hashtbl.create 1024;
    free_stack = [];
    freed = 0;
    leaf_cache = Hashtbl.create 1024;
    content = Hashtbl.create 4096;
    dedup_on = true;
    compress_on = true;
    rows = Hashtbl.create 1024;
    epochs = [];
    current_epoch = 0;
    staging = None;
    staging_epoch = 0;
    data_done = 0;
    durable = 0;
    journals = [];
    oldest_retained = 0;
    stat_extents = 0;
    stat_extent_blocks = 0;
    stat_coalesced_bytes = 0;
    stat_leaf_hits = 0;
    stat_leaf_misses = 0;
    stat_alloc_calls = 0;
    stat_pages = 0;
    stat_pages_deduped = 0;
    stat_compress_ns = 0;
    stat_comp_in = 0;
    stat_comp_out = 0;
    stat_dev_base = 0;
    stat_bytes_base = 0;
    last_flush = empty_flush_stats;
    read_retries = 4;
    read_backoff = 20_000;
    stat_read_faults = 0;
    torture_misorder = false;
  }

let format ~dev ~clock =
  let t = fresh dev clock in
  let c = write_superblock t ~now:(Clock.now clock) ~last_epoch:0 ~record_block:0 in
  Clock.advance_to clock c;
  Striped.settle dev ~clock;
  t

let clock t = t.clk
let device t = t.dev

let alloc_oid t =
  t.next_oid <- t.next_oid + 1;
  t.next_oid

let reserve_oids t ~upto = if upto > t.next_oid then t.next_oid <- upto

(* Checkpoint records ----------------------------------------------------------- *)

let serialize_record ~epoch ~prev_block table =
  let w = Wire.writer () in
  Wire.u8 w 0xA1;
  Wire.u64 w epoch;
  Wire.u64 w prev_block;
  Wire.list w
    (fun (oid, vblock) ->
      Wire.u64 w oid;
      Wire.u64 w vblock)
    table;
  Wire.contents w

let parse_record data =
  let r = Wire.reader data in
  if Wire.ru8 r <> 0xA1 then raise (Corrupt_store "bad record magic");
  let epoch = Wire.ru64 r in
  let prev = Wire.ru64 r in
  let table =
    Wire.rlist r (fun r ->
        let oid = Wire.ru64 r in
        let vblock = Wire.ru64 r in
        (oid, vblock))
  in
  (epoch, prev, table)

let blocks_of_len len = max 1 ((len + block_size - 1) / block_size)

(* Write [items : (payload, nblocks) array] as one coalesced extent carved
   from the frontier; returns (first block, completion time). *)
let write_extent t ~now items =
  let total = Array.fold_left (fun acc (_, n) -> acc + n) 0 items in
  let base = alloc_extent t total in
  let segments = Array.make (Array.length items) (0, Bytes.empty) in
  let blkoff = ref 0 in
  Array.iteri
    (fun i (payload, n) ->
      segments.(i) <- (!blkoff * block_size, payload);
      blkoff := !blkoff + n)
    items;
  let c =
    Striped.write_vec t.dev ~now ~off:(off_of_block base)
      ~len:(total * block_size) segments
  in
  t.stat_extents <- t.stat_extents + 1;
  t.stat_extent_blocks <- t.stat_extent_blocks + total;
  t.stat_coalesced_bytes <- t.stat_coalesced_bytes + (total * block_size);
  (base, c)

(* Write [items] as a run of coalesced extents split at [max_extent_blocks];
   [emit i blk] reports the first block assigned to item [i].  Returns the
   latest completion time. *)
let write_extents_chunked t ~now items emit =
  let n = Array.length items in
  let completion = ref now in
  let i = ref 0 in
  while !i < n do
    let j = ref !i and blks = ref 0 in
    while
      !j < n && (!blks = 0 || !blks + snd items.(!j) <= max_extent_blocks)
    do
      blks := !blks + snd items.(!j);
      incr j
    done;
    let base, c = write_extent t ~now (Array.sub items !i (!j - !i)) in
    if c > !completion then completion := c;
    let blkoff = ref 0 in
    for k = !i to !j - 1 do
      emit k (base + !blkoff);
      blkoff := !blkoff + snd items.(k)
    done;
    i := !j
  done;
  !completion

(* Write a variable-length record into freshly allocated contiguous blocks;
   returns (first block, completion time, blocks used). *)
let write_record t ~now data =
  let n = blocks_of_len (Bytes.length data) in
  let blk = if n = 1 then alloc_block t else alloc_extent t n in
  let c = Striped.write t.dev ~now ~off:(off_of_block blk) data in
  (blk, c, List.init n (fun i -> blk + i))

let last_epoch_info t =
  match List.rev t.epochs with [] -> None | e :: _ -> Some e

let begin_checkpoint t =
  if t.staging <> None then invalid_arg "Store.begin_checkpoint: already staging";
  (* Housekeeping: fold already-durable writes into the committed device
     state so the in-flight lists stay short on long runs. *)
  Striped.apply_durable t.dev ~now:(Clock.now t.clk);
  t.current_epoch <- t.current_epoch + 1;
  t.staging <- Some (Hashtbl.create 64);
  t.staging_epoch <- t.current_epoch;
  t.data_done <- Clock.now t.clk;
  t.stat_extents <- 0;
  t.stat_extent_blocks <- 0;
  t.stat_coalesced_bytes <- 0;
  t.stat_leaf_hits <- 0;
  t.stat_leaf_misses <- 0;
  t.stat_alloc_calls <- 0;
  t.stat_pages <- 0;
  t.stat_pages_deduped <- 0;
  t.stat_compress_ns <- 0;
  t.stat_comp_in <- 0;
  t.stat_comp_out <- 0;
  t.stat_dev_base <- Striped.write_ops t.dev;
  t.stat_bytes_base <- Striped.bytes_written t.dev;
  Otrace.instant ~cat:"store" "begin_checkpoint"
    ~args:[ ("epoch", Otrace.Int t.current_epoch) ];
  t.current_epoch

let staging_exn t =
  match t.staging with
  | Some s -> s
  | None -> invalid_arg "Store: no checkpoint in progress"

let staged_for t oid =
  let s = staging_exn t in
  match Hashtbl.find_opt s oid with
  | Some st -> st
  | None ->
      let st = { s_kind = ""; s_meta = ""; s_pages = Hashtbl.create 64 } in
      Hashtbl.replace s oid st;
      st

let put_object t ~oid ~kind ~meta =
  let st = staged_for t oid in
  st.s_kind <- kind;
  st.s_meta <- meta

(* Newest-wins dedup happens here, at staging time: re-staging a page index
   replaces its payload in O(1), so commit never scans for duplicates. *)
let put_pages t ~oid pages =
  let st = staged_for t oid in
  List.iter (fun (idx, payload) -> Hashtbl.replace st.s_pages idx payload) pages

(* Plan of one staged page after the flush path's CPU pass. *)
type page_plan =
  | P_ref of centry (* content already durable: leaf reference only *)
  | P_alias of int (* identical to plan slot [k] of this same batch *)
  | P_write of { stored : bytes; comp : bool }

let class_bandwidth = function
  | Rle.Zero -> Cost.compress_zero_bandwidth
  | Rle.Text -> Cost.compress_text_bandwidth
  | Rle.Binary -> Cost.compress_binary_bandwidth
  | Rle.Random -> Cost.compress_random_bandwidth

(* Write [stored.(k)] payloads packed back-to-back at byte granularity
   into frontier extents sealed at the max extent size; a payload never
   straddles two separately allocated extents, so every stored page is
   device-contiguous.  Returns per-payload (block, byte offset) and the
   latest completion. *)
let write_packed t ~now stored =
  let n = Array.length stored in
  let locs = Array.make n (0, 0) in
  let completion = ref now in
  let i = ref 0 in
  while !i < n do
    let j = ref !i and bytes = ref 0 in
    while
      !j < n
      && (!bytes = 0 || !bytes + Bytes.length stored.(!j) <= Cost.nvme_max_extent_bytes)
    do
      bytes := !bytes + Bytes.length stored.(!j);
      incr j
    done;
    let nblocks = blocks_of_len !bytes in
    let base = alloc_extent t nblocks in
    let buf = Bytes.create !bytes in
    let off = ref 0 in
    for k = !i to !j - 1 do
      let p = stored.(k) in
      Bytes.blit p 0 buf !off (Bytes.length p);
      locs.(k) <- (base + (!off / block_size), !off mod block_size);
      off := !off + Bytes.length p
    done;
    let c = Striped.write t.dev ~now ~off:(off_of_block base) buf in
    if c > !completion then completion := c;
    t.stat_extents <- t.stat_extents + 1;
    t.stat_extent_blocks <- t.stat_extent_blocks + nblocks;
    t.stat_coalesced_bytes <- t.stat_coalesced_bytes + !bytes;
    i := !j
  done;
  (locs, !completion)

(* Merge staged dirty pages into the previous version's leaves.  The CPU
   pass hashes every payload, probes the content-addressed index (a hit
   — same hash, original length and CRC — becomes a leaf reference to
   the already-stored bytes and is never re-flushed) and RLE-codes the
   misses; the surviving payloads are packed into byte-granular frontier
   extents and submitted only once that CPU work is done, so the flush
   window models compress-then-write.  Only the touched leaves are
   rebuilt (from the leaf cache when warm) and go out as one coalesced
   extent. *)
(* Besides the merged leaves, data completion time and the CPU-pass end
   time (threaded into the next object's submissions: one flush thread),
   returns the object's manifest deltas: the XOR-fold fingerprint
   adjustment (replaced carried entries folded out, fresh entries folded
   in) and the net page-count change, so commit can update the
   manifest-row cache without re-walking untouched leaves. *)
let build_version t ~now ~prev st =
  let prev_leaves = match prev with Some v -> v.v_leaves | None -> IntMap.empty in
  let npages = Hashtbl.length st.s_pages in
  if npages = 0 then (prev_leaves, now, now, 0, 0)
  else begin
    let fp_delta = ref 0 in
    let n_delta = ref 0 in
    let completion = ref now in
    (* 1. Sort the fresh pages in place (no list churn on the hot path). *)
    let fresh = Array.make npages (0, Bytes.empty) in
    let fill = ref 0 in
    Hashtbl.iter
      (fun idx payload ->
        fresh.(!fill) <- (idx, payload);
        incr fill)
      st.s_pages;
    Array.sort (fun (a, _) (b, _) -> compare (a : int) b) fresh;
    t.stat_pages <- t.stat_pages + npages;
    (* 2. CPU pass: hash, dedup-probe, compress. *)
    let cpu = ref now in
    let idents = Array.make npages (0, 0, 0) in
    let plans = Array.make npages (P_alias 0) in
    let batch = Hashtbl.create 16 in
    Array.iteri
      (fun k (_, payload) ->
        let olen = Bytes.length payload in
        let crc = Crc32.of_bytes payload in
        let hash = Hash64.of_bytes payload in
        idents.(k) <- (hash, olen, crc);
        if t.dedup_on then
          cpu := !cpu + Cost.transfer_time ~bandwidth:Cost.page_hash_bandwidth olen;
        let dedup_hit =
          if not t.dedup_on then None
          else
            match Hashtbl.find_opt t.content hash with
            | Some ce when ce.c_olen = olen && ce.c_crc = crc -> Some ce
            | Some _ | None -> None
        in
        match dedup_hit with
        | Some ce ->
            t.stat_pages_deduped <- t.stat_pages_deduped + 1;
            plans.(k) <- P_ref ce
        | None -> (
            match
              if t.dedup_on then Hashtbl.find_opt batch (hash, olen, crc)
              else None
            with
            | Some k0 ->
                t.stat_pages_deduped <- t.stat_pages_deduped + 1;
                plans.(k) <- P_alias k0
            | None ->
                if t.dedup_on then Hashtbl.replace batch (hash, olen, crc) k;
                let stored, comp =
                  if not t.compress_on then (payload, false)
                  else begin
                    cpu :=
                      !cpu
                      + Cost.transfer_time
                          ~bandwidth:(class_bandwidth (Rle.classify payload))
                          olen;
                    match Rle.compress payload with
                    | Some c -> (c, true)
                    | None -> (payload, false)
                  end
                in
                t.stat_comp_in <- t.stat_comp_in + olen;
                t.stat_comp_out <- t.stat_comp_out + Bytes.length stored;
                plans.(k) <- P_write { stored; comp }))
      fresh;
    t.stat_compress_ns <- t.stat_compress_ns + (!cpu - now);
    (* 3. Submit the surviving payloads once the CPU pass is done.  With
       compression off the legacy block-per-page layout (and its
       full-block device charge) is kept, as the pre-dedup baseline. *)
    let write_slots = ref [] in
    Array.iteri
      (fun k plan -> match plan with P_write _ -> write_slots := k :: !write_slots | _ -> ())
      plans;
    let write_slots = Array.of_list (List.rev !write_slots) in
    let stored_of k =
      match plans.(k) with
      | P_write { stored; _ } -> stored
      | P_ref _ | P_alias _ -> assert false
    in
    let locs = Array.make (Array.length write_slots) (0, 0) in
    if Array.length write_slots > 0 then begin
      if t.compress_on then begin
        let c, ls =
          let stored = Array.map stored_of write_slots in
          let ls, c = write_packed t ~now:!cpu stored in
          (c, ls)
        in
        Array.blit ls 0 locs 0 (Array.length ls);
        if c > !completion then completion := c
      end
      else begin
        let items = Array.map (fun k -> (stored_of k, 1)) write_slots in
        let c =
          write_extents_chunked t ~now:!cpu items (fun i blk -> locs.(i) <- (blk, 0))
        in
        if c > !completion then completion := c
      end
    end;
    (* Resolve every plan slot to its stored location and register fresh
       locations in the content index. *)
    let slot_of = Hashtbl.create 16 in
    Array.iteri (fun i k -> Hashtbl.replace slot_of k i) write_slots;
    let loc_of k =
      match plans.(k) with
      | P_ref ce -> (ce.c_blk, ce.c_off, ce.c_clen, ce.c_comp)
      | P_alias k0 ->
          let blk, off = locs.(Hashtbl.find slot_of k0) in
          let stored = stored_of k0 in
          let comp = match plans.(k0) with P_write { comp; _ } -> comp | _ -> assert false in
          (blk, off, Bytes.length stored, comp)
      | P_write { stored; comp } ->
          let blk, off = locs.(Hashtbl.find slot_of k) in
          (blk, off, Bytes.length stored, comp)
    in
    if t.dedup_on then
      Array.iter
        (fun k ->
          let hash, olen, crc = idents.(k) in
          let blk, off, clen, comp = loc_of k in
          Hashtbl.replace t.content hash
            { c_blk = blk; c_off = off; c_clen = clen; c_olen = olen; c_comp = comp;
              c_crc = crc; c_refs = 0 })
        write_slots;
    (* 4. Rebuild the touched leaves.  [fresh] is sorted by page index, so
       each leaf's dirty pages are one contiguous run of the array, and
       dirty-membership for carried-entry filtering is a binary search in
       that run. *)
    let mem_run lo hi idx =
      let l = ref lo and h = ref hi in
      let found = ref false in
      while (not !found) && !l < !h do
        let m = (!l + !h) / 2 in
        let v = fst fresh.(m) in
        if v = idx then found := true
        else if v < idx then l := m + 1
        else h := m
      done;
      !found
    in
    let rebuilt = ref [] in
    let i = ref 0 in
    while !i < npages do
      let leaf_idx = fst fresh.(!i) / leaf_span in
      let j = ref !i in
      while !j < npages && fst fresh.(!j) / leaf_span = leaf_idx do incr j done;
      (* Carry over this leaf's unchanged entries; replaced entries are
         simply dropped (their blocks stay reachable from older epochs
         until pruning sweeps them). *)
      let old_entries =
        match IntMap.find_opt leaf_idx prev_leaves with
        | None -> []
        | Some blk -> cached_leaf t blk
      in
      let carried = ref [] in
      List.iter
        (fun p ->
          if not (mem_run !i !j p.p_idx) then carried := p :: !carried
          else begin
            (* Replaced: fold the old entry's contribution back out. *)
            fp_delta := !fp_delta lxor fp_one p.p_idx p.p_crc;
            decr n_delta
          end)
        old_entries;
      let fresh_entries = ref [] in
      for k = !j - 1 downto !i do
        let idx, _ = fresh.(k) in
        let hash, olen, crc = idents.(k) in
        let blk, off, clen, comp = loc_of k in
        fp_delta := !fp_delta lxor fp_one idx crc;
        incr n_delta;
        fresh_entries :=
          { p_idx = idx; p_blk = blk; p_off = off; p_clen = clen; p_olen = olen;
            p_comp = comp; p_crc = crc; p_hash = hash }
          :: !fresh_entries
      done;
      let entries =
        List.sort compare (List.rev_append !carried !fresh_entries)
      in
      rebuilt := (leaf_idx, entries) :: !rebuilt;
      i := !j
    done;
    let rebuilt = Array.of_list (List.rev !rebuilt) in
    (* 5. Coalesced extents for the rewritten leaves (write-through into
       the cache).  Every entry of a new leaf — fresh and carried alike —
       counts one more reference on its content-index location: the
       index's refcounts mirror "entries across distinct live leaf
       blocks", which is exactly what recovery and pruning rebuild from
       the durable leaves. *)
    let leaf_items =
      Array.map (fun (_, entries) -> (serialize_leaf entries, 1)) rebuilt
    in
    let leaves = ref prev_leaves in
    let c =
      write_extents_chunked t ~now:!cpu leaf_items (fun k blk ->
          let leaf_idx, entries = rebuilt.(k) in
          cache_leaf t blk entries;
          if t.dedup_on then
            List.iter
              (fun p ->
                match Hashtbl.find_opt t.content p.p_hash with
                | Some ce when ce.c_blk = p.p_blk && ce.c_off = p.p_off ->
                    ce.c_refs <- ce.c_refs + 1
                | Some _ | None -> ())
              entries;
          leaves := IntMap.add leaf_idx blk !leaves)
    in
    if c > !completion then completion := c;
    (!leaves, !completion, !cpu, !fp_delta, !n_delta)
  end

(* Manifest row of a committed version, from the cache when warm.  The cold
   path (first touch after recovery) walks the version's leaves once and
   memoizes the result. *)
let committed_row t oid v =
  match Hashtbl.find_opt t.rows oid with
  | Some r -> r
  | None ->
      let npages = ref 0 and fp = ref 0 in
      IntMap.iter
        (fun _ leaf_blk ->
          List.iter
            (fun p ->
              incr npages;
              fp := !fp lxor fp_one p.p_idx p.p_crc)
            (cached_leaf t leaf_blk))
        v.v_leaves;
      let r =
        {
          r_kind = v.v_kind;
          r_meta_crc = Crc32.of_string v.v_meta;
          r_npages = !npages;
          r_fp = !fp;
        }
      in
      Hashtbl.replace t.rows oid r;
      r

let commit_checkpoint t =
  let s = staging_exn t in
  let now = Clock.now t.clk in
  let epoch = t.staging_epoch in
  let prev_table =
    match last_epoch_info t with
    | Some e -> e.e_table
    | None -> Hashtbl.create 0
  in
  let new_table : (int, version) Hashtbl.t = Hashtbl.copy prev_table in
  let data_done = ref now in
  (* One flush thread does the hashing and compression: each object's
     submissions go out when the CPU pass reaches it. *)
  let cpu_now = ref now in
  (* Data and leaf extents for every staged object, in oid order. *)
  let staged_list =
    Hashtbl.fold (fun oid st acc -> (oid, st) :: acc) s [] |> List.sort compare
  in
  let pending =
    Otrace.with_span ~cat:"store" ~name:"commit.data"
      ~args:[ ("epoch", Otrace.Int epoch); ("staged", Otrace.Int (List.length staged_list)) ]
    @@ fun () ->
    List.map
      (fun (oid, st) ->
        let prev = Hashtbl.find_opt prev_table oid in
        let kind =
          if st.s_kind <> "" then st.s_kind
          else match prev with Some v -> v.v_kind | None -> "memory"
        in
        let meta =
          if st.s_meta <> "" then st.s_meta
          else match prev with Some v -> v.v_meta | None -> ""
        in
        (* Base row first (it may lazily walk the previous version), then
           apply this commit's deltas so the cache tracks the new epoch. *)
        let base =
          match prev with Some v -> committed_row t oid v | None -> zero_row
        in
        let leaves, c, cpu_end, fp_delta, n_delta =
          build_version t ~now:!cpu_now ~prev st
        in
        cpu_now := cpu_end;
        if c > !data_done then data_done := c;
        Hashtbl.replace t.rows oid
          {
            r_kind = kind;
            r_meta_crc =
              (if st.s_meta <> "" then Crc32.of_string st.s_meta
               else base.r_meta_crc);
            r_npages = base.r_npages + n_delta;
            r_fp = base.r_fp lxor fp_delta;
          };
        (oid, { v_kind = kind; v_meta = meta; v_block = 0; v_leaves = leaves }))
      staged_list
  in
  (* Version records ride coalesced extents too: one vectored submission
     covers many objects' records. *)
  let flush_records batch =
    match batch with
    | [] -> ()
    | _ ->
        let base, c =
          write_extent t ~now
            (Array.of_list
               (List.map (fun (_, _, payload, nb) -> (payload, nb)) batch))
        in
        if c > !data_done then data_done := c;
        ignore
          (List.fold_left
             (fun blkoff (oid, v, _, nb) ->
               Hashtbl.replace new_table oid { v with v_block = base + blkoff };
               blkoff + nb)
             0 batch)
  in
  let rec batch_records acc nblocks = function
    | [] -> flush_records (List.rev acc)
    | (oid, v) :: rest ->
        let payload = serialize_version ~oid ~epoch v in
        let nb = blocks_of_len (Bytes.length payload) in
        if nblocks > 0 && nblocks + nb > max_extent_blocks then begin
          flush_records (List.rev acc);
          batch_records [ (oid, v, payload, nb) ] nb rest
        end
        else batch_records ((oid, v, payload, nb) :: acc) (nblocks + nb) rest
  in
  Otrace.with_span ~cat:"store" ~name:"commit.records" (fun () ->
      batch_records [] 0 pending);
  (* Checkpoint record after all object data (write ordering). *)
  let table_list =
    Hashtbl.fold (fun oid v acc -> (oid, v.v_block) :: acc) new_table []
    |> List.sort compare
  in
  let prev_block =
    match last_epoch_info t with Some e -> e.e_record_block | None -> 0
  in
  let record = serialize_record ~epoch ~prev_block table_list in
  let rblock, rc, _rblocks =
    Otrace.with_span ~cat:"store" ~name:"commit.record" (fun () ->
        write_record t ~now:!data_done record)
  in
  (* Superblock strictly after the record.  The torture knob submits it at
     commit start instead — metadata racing ahead of data — so the
     crash-point enumerator can demonstrate it catches ordering bugs. *)
  let sb_submit = if t.torture_misorder then now else rc in
  let sc =
    Otrace.with_span ~cat:"store" ~name:"commit.superblock" (fun () ->
        write_superblock t ~now:sb_submit ~last_epoch:epoch ~record_block:rblock)
  in
  t.epochs <-
    t.epochs @ [ { e_epoch = epoch; e_record_block = rblock; e_table = new_table } ];
  t.staging <- None;
  t.durable <- sc;
  t.last_flush <-
    {
      fs_epoch = epoch;
      fs_extents = t.stat_extents;
      fs_extent_blocks = t.stat_extent_blocks;
      fs_coalesced_bytes = t.stat_coalesced_bytes;
      fs_dev_writes = Striped.write_ops t.dev - t.stat_dev_base;
      fs_leaf_hits = t.stat_leaf_hits;
      fs_leaf_misses = t.stat_leaf_misses;
      fs_alloc_calls = t.stat_alloc_calls;
      fs_pages = t.stat_pages;
      fs_pages_deduped = t.stat_pages_deduped;
      fs_bytes_written = Striped.bytes_written t.dev - t.stat_bytes_base;
      fs_compress_ns = t.stat_compress_ns;
      fs_comp_in = t.stat_comp_in;
      fs_comp_out = t.stat_comp_out;
    };
  if Otrace.is_on () || Ometrics.is_enabled () then begin
    Ometrics.incr m_store_commits;
    Ometrics.incr ~by:t.stat_pages m_store_pages;
    Ometrics.incr ~by:t.stat_pages_deduped m_store_deduped;
    Ometrics.incr ~by:t.stat_extents m_store_extents;
    Ometrics.observe_ns h_store_flush_window (sc - now);
    Otrace.instant ~cat:"store" "dedup"
      ~args:
        [
          ("epoch", Otrace.Int epoch);
          ("staged", Otrace.Int t.stat_pages);
          ("deduped", Otrace.Int t.stat_pages_deduped);
        ];
    Otrace.instant ~cat:"store" "compress"
      ~args:
        [
          ("epoch", Otrace.Int epoch);
          ("bytes_in", Otrace.Int t.stat_comp_in);
          ("bytes_out", Otrace.Int t.stat_comp_out);
          ("cpu_ns", Otrace.Int t.stat_compress_ns);
        ];
    (* The asynchronous durability tail: submissions went out at [now],
       the epoch is on stable storage at [sc]. *)
    Otrace.complete ~ts:now ~dur:(sc - now) ~cat:"store" "flush_window"
      ~args:
        [
          ("epoch", Otrace.Int epoch);
          ("pages", Otrace.Int t.stat_pages);
          ("deduped", Otrace.Int t.stat_pages_deduped);
          ("extents", Otrace.Int t.stat_extents);
          ("dev_writes", Otrace.Int t.last_flush.fs_dev_writes);
          ("bytes", Otrace.Int t.last_flush.fs_bytes_written);
        ]
  end;
  sc

let flush_stats t = t.last_flush
let durable_at t = t.durable
let wait_durable t = Clock.advance_to t.clk t.durable

let set_read_policy t ~retries ~backoff_ns =
  if retries < 0 || backoff_ns < 0 then invalid_arg "Store.set_read_policy";
  t.read_retries <- retries;
  t.read_backoff <- backoff_ns

let read_faults t = t.stat_read_faults
let set_torture_misorder t flag = t.torture_misorder <- flag

let last_complete_epoch t =
  match last_epoch_info t with Some e -> e.e_epoch | None -> 0

let checkpoint_epochs t = List.map (fun e -> e.e_epoch) t.epochs

(* Content-addressed index maintenance ------------------------------------- *)

(* Walk every distinct leaf block live in the retained epochs.  Version
   tables share version records across epochs (commit copies the table),
   so the same leaf block appears under several epochs; each is visited
   once. *)
let iter_live_leaves t f =
  let seen = Hashtbl.create 1024 in
  List.iter
    (fun e ->
      Hashtbl.iter
        (fun _ v ->
          IntMap.iter
            (fun _ leaf_blk ->
              if not (Hashtbl.mem seen leaf_blk) then begin
                Hashtbl.replace seen leaf_blk ();
                f (cached_leaf t leaf_blk)
              end)
            v.v_leaves)
        e.e_table)
    t.epochs

(* Rebuild the content index purely from the durable leaves: entries
   carry the hash, so no data blocks are read.  Because this is the only
   source of truth after a crash (recover) and after a prune reshapes the
   reachable set, the index's refcounts are crash-atomic by construction:
   there is no moment where a leaf is durable but its index entry could
   be lost, or vice versa. *)
let rebuild_content_index t =
  Hashtbl.reset t.content;
  if t.dedup_on then
    iter_live_leaves t (fun entries ->
        List.iter
          (fun p ->
            match Hashtbl.find_opt t.content p.p_hash with
            | Some ce ->
                if ce.c_blk = p.p_blk && ce.c_off = p.p_off then
                  ce.c_refs <- ce.c_refs + 1
            | None ->
                Hashtbl.replace t.content p.p_hash
                  {
                    c_blk = p.p_blk;
                    c_off = p.p_off;
                    c_clen = p.p_clen;
                    c_olen = p.p_olen;
                    c_comp = p.p_comp;
                    c_crc = p.p_crc;
                    c_refs = 1;
                  })
          entries)

let set_content_dedup t flag =
  if flag <> t.dedup_on then begin
    t.dedup_on <- flag;
    rebuild_content_index t
  end

let set_compression t flag = t.compress_on <- flag
let content_index_size t = Hashtbl.length t.content

(* Check the incrementally maintained index against the durable leaves:
   every entry must point at a location some live leaf entry stores the
   same content at, with a refcount equal to the number of live leaf
   entries (distinct leaf blocks counted once) referencing exactly that
   location.  The crash-atomicity property tests recover a store and
   call this. *)
let content_index_consistent t =
  (not t.dedup_on)
  ||
  let counts = Hashtbl.create 1024 in
  iter_live_leaves t (fun entries ->
      List.iter
        (fun p ->
          let key = (p.p_hash, p.p_blk, p.p_off) in
          Hashtbl.replace counts key
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
        entries);
  Hashtbl.fold
    (fun hash ce ok ->
      ok
      && Hashtbl.find_opt counts (hash, ce.c_blk, ce.c_off) = Some ce.c_refs)
    t.content true

(* Recovery ---------------------------------------------------------------------- *)

let recover ~dev ~clock =
  let t = fresh dev clock in
  let sb =
    retried_read t (fun () ->
        Striped.read dev ~clock ~off:(off_of_block superblock_block) ~len:block_size)
  in
  let r = Wire.reader sb in
  let m = try Wire.rstr r with Wire.Corrupt _ -> "" in
  if m <> magic then raise (Corrupt_store "no superblock");
  let last_epoch = Wire.ru64 r in
  let record_block = Wire.ru64 r in
  t.next_block <- Wire.ru64 r;
  t.next_oid <- Wire.ru64 r;
  t.oldest_retained <- Wire.ru64 r;
  t.journals <-
    Wire.rlist r (fun r ->
        let j_id = Wire.ru64 r in
        let j_start = Wire.ru64 r in
        let j_blocks = Wire.ru64 r in
        let j_gen = Wire.ru64 r in
        { j_id; j_start; j_blocks; j_head = 0; j_gen });
  t.current_epoch <- last_epoch;
  (* Walk the record chain, oldest last; rebuild every retained epoch. *)
  let rec walk block acc =
    if block = 0 then acc
    else begin
      (* Records may span blocks; read generously (table of ~thousands). *)
      let data = read_blocks t ~blk:block ~nblocks:64 in
      let epoch, prev, table_list = parse_record data in
      (* Pruned epochs' blocks may have been reused: stop at the oldest
         retained record instead of following its prev pointer. *)
      let prev = if epoch <= t.oldest_retained then 0 else prev in
      let table = Hashtbl.create (List.length table_list) in
      List.iter
        (fun (oid, vblock) ->
          let vdata = read_blocks t ~blk:vblock ~nblocks:64 in
          let v_oid, kind, meta, leaves = parse_version vdata in
          if v_oid <> oid then raise (Corrupt_store "version/oid mismatch");
          Hashtbl.replace table oid
            { v_kind = kind; v_meta = meta; v_block = vblock; v_leaves = leaves })
        table_list;
      walk prev ({ e_epoch = epoch; e_record_block = block; e_table = table } :: acc)
    end
  in
  t.epochs <- walk record_block [];
  (* Warm the leaf cache over the retained leaves, so the first
     post-recovery incremental commit doesn't re-parse every leaf. *)
  List.iter
    (fun e ->
      Hashtbl.iter
        (fun _ v ->
          IntMap.iter
            (fun _ leaf_blk -> ignore (cached_leaf t leaf_blk))
            v.v_leaves)
        e.e_table)
    t.epochs;
  (* The content index is derived state: rebuild it from the leaves just
     parsed, so dedup after a crash only ever references durable pages. *)
  rebuild_content_index t;
  (* Journal heads are recovered lazily by scanning; see journal_records. *)
  t

(* Reading ------------------------------------------------------------------------- *)

let epoch_info t epoch =
  match List.find_opt (fun e -> e.e_epoch = epoch) t.epochs with
  | Some e -> e
  | None -> raise (Corrupt_store (Printf.sprintf "unknown epoch %d" epoch))

let version_exn t ~epoch ~oid =
  match Hashtbl.find_opt (epoch_info t epoch).e_table oid with
  | Some v -> v
  | None -> raise (Corrupt_store (Printf.sprintf "oid %d not in epoch %d" oid epoch))

let objects_at t ~epoch =
  Hashtbl.fold (fun oid v acc -> (oid, v.v_kind) :: acc) (epoch_info t epoch).e_table []
  |> List.sort compare

let read_meta t ~epoch ~oid = (version_exn t ~epoch ~oid).v_meta

(* Charged leaf fetch: the device read is still paid (the cache holds
   parsed entries, not a page-cache residency guarantee), but a warm cache
   skips the re-parse. *)
let leaf_entries_charged t blk =
  let data = read_blocks t ~blk ~nblocks:1 in
  match Hashtbl.find_opt t.leaf_cache blk with
  | Some entries ->
      t.stat_leaf_hits <- t.stat_leaf_hits + 1;
      entries
  | None ->
      t.stat_leaf_misses <- t.stat_leaf_misses + 1;
      let entries = parse_leaf data in
      cache_leaf t blk entries;
      entries

(* Recover a page's original payload from its stored (possibly RLE-coded)
   bytes; a stream that does not decode cleanly is store corruption, not
   a programming error — restore verification catches it as such. *)
let decode_payload p stored =
  if not p.p_comp then stored
  else
    try Rle.decompress ~olen:p.p_olen stored
    with Invalid_argument _ ->
      raise (Corrupt_store (Printf.sprintf "page %d: corrupt coded payload" p.p_idx))

let read_page t ~epoch ~oid ~idx =
  let v = version_exn t ~epoch ~oid in
  match IntMap.find_opt (idx / leaf_span) v.v_leaves with
  | None -> None
  | Some leaf_blk -> (
      match
        List.find_opt (fun p -> p.p_idx = idx) (leaf_entries_charged t leaf_blk)
      with
      | None -> None
      | Some p ->
          let stored =
            retried_read t (fun () ->
                Striped.read t.dev ~clock:t.clk
                  ~off:(off_of_block p.p_blk + p.p_off)
                  ~len:p.p_clen)
          in
          if p.p_comp then
            Clock.advance t.clk
              (Cost.transfer_time ~bandwidth:Cost.decompress_bandwidth p.p_olen);
          Some (decode_payload p stored))

(* Bulk page reads are issued at depth (restore, migration): charge one
   leaf I/O plus a streamed read of the pages' stored bytes instead of a
   full device round trip per page; decompression time is charged once
   per leaf over the coded pages' original bytes. *)
let read_pages t ~epoch ~oid =
  let v = version_exn t ~epoch ~oid in
  IntMap.fold
    (fun _ leaf_blk acc ->
      let entries = leaf_entries_charged t leaf_blk in
      let stored_bytes =
        List.fold_left (fun a p -> a + p.p_clen) 0 entries
      in
      Striped.charge_read t.dev ~clock:t.clk ~bytes:stored_bytes;
      let coded_olen =
        List.fold_left (fun a p -> if p.p_comp then a + p.p_olen else a) 0 entries
      in
      if coded_olen > 0 then
        Clock.advance t.clk
          (Cost.transfer_time ~bandwidth:Cost.decompress_bandwidth coded_olen);
      List.fold_left
        (fun acc p ->
          let stored =
            Striped.read_nocharge t.dev
              ~off:(off_of_block p.p_blk + p.p_off)
              ~len:p.p_clen
          in
          (p.p_idx, decode_payload p stored) :: acc)
        acc entries)
    v.v_leaves []
  |> List.sort compare

let page_indices t ~epoch ~oid =
  let v = version_exn t ~epoch ~oid in
  IntMap.fold
    (fun _ leaf_blk acc ->
      List.fold_left (fun acc p -> p.p_idx :: acc) acc (cached_leaf t leaf_blk))
    v.v_leaves []
  |> List.sort compare

(* Journals --------------------------------------------------------------------------- *)

let journal_id j = j.j_id
let journal_find t id = List.find_opt (fun j -> j.j_id = id) t.journals

let journal_create t ~size =
  let nblocks = blocks_of_len size in
  let start = alloc_contiguous t nblocks in
  let id = List.length t.journals + 1 in
  let j = { j_id = id; j_start = start; j_blocks = nblocks; j_head = 0; j_gen = 0 } in
  t.journals <- t.journals @ [ j ];
  (* The registry lives in the superblock; persist it synchronously so the
     journal survives a crash that happens before the next checkpoint. *)
  let c =
    write_superblock t ~now:(Clock.now t.clk)
      ~last_epoch:(last_complete_epoch t)
      ~record_block:(match last_epoch_info t with Some e -> e.e_record_block | None -> 0)
  in
  Clock.advance_to t.clk c;
  j

let journal_capacity j = j.j_blocks * block_size

let journal_append t j data =
  let w = Wire.writer () in
  Wire.u8 w 0xA4;
  Wire.u32 w j.j_gen;
  Wire.str w data;
  let payload = Wire.contents w in
  let len = Bytes.length payload in
  if j.j_head + len > journal_capacity j then invalid_arg "journal full";
  let now = Clock.now t.clk in
  (* The device write carries the real bytes; the visible latency is the
     synchronous single-stream append path (26 us + bytes at ~2.6 GiB/s,
     the Table 5 journal column).  Synchronous appends ride the device's
     priority lane: they do not wait behind queued background checkpoint
     flushes, and the payload becomes durable exactly at the acknowledged
     sync completion (write_priority), so a crash can never catch a
     sync-acknowledged record still volatile — the crash-point enumerator
     checks precisely this. *)
  let sync_done =
    Resource.submit t.jqueue ~now
      ~duration:
        (Cost.nvme_sync_write_latency
        + Cost.transfer_time ~bandwidth:Cost.journal_stream_bandwidth len)
  in
  ignore
    (Striped.write_priority t.dev ~now ~off:(off_of_block j.j_start + j.j_head)
       payload ~completion:sync_done);
  j.j_head <- j.j_head + len;
  Clock.advance_to t.clk sync_done

let journal_truncate t j =
  j.j_head <- 0;
  (* Bump the generation so stale records beyond the new head are never
     replayed, and persist it (superblock) before invalidating the first
     header — the standard WAL-reset ordering. *)
  j.j_gen <- j.j_gen + 1;
  let sb_done =
    write_superblock t ~now:(Clock.now t.clk)
      ~last_epoch:(last_complete_epoch t)
      ~record_block:
        (match last_epoch_info t with Some e -> e.e_record_block | None -> 0)
  in
  Clock.advance_to t.clk sb_done;
  let c =
    Striped.write t.dev ~now:(Clock.now t.clk) ~off:(off_of_block j.j_start)
      (Bytes.make 8 '\000')
  in
  Clock.advance_to t.clk c

let journal_records t j =
  let data =
    retried_read t (fun () ->
        Striped.read t.dev ~clock:t.clk ~off:(off_of_block j.j_start)
          ~len:(journal_capacity j))
  in
  let r = Wire.reader data in
  let rec scan acc =
    if Wire.remaining r < 9 then List.rev acc
    else
      let tag = Wire.ru8 r in
      if tag <> 0xA4 then List.rev acc
      else
        match
          let gen = Wire.ru32 r in
          (gen, Wire.rstr r)
        with
        | gen, s when gen = j.j_gen -> scan (s :: acc)
        | _, _ -> List.rev acc
        | exception Wire.Corrupt _ -> List.rev acc
  in
  scan []

(* History ------------------------------------------------------------------------------- *)

(* Every block reachable from one epoch: its checkpoint record, each
   version record, each leaf, and each data block.  Computed structurally
   so it is exact even for a store instance rebuilt by recovery. *)
let reachable_blocks t e =
  let out = Hashtbl.create 256 in
  let add_record blk len =
    for i = 0 to blocks_of_len len - 1 do
      Hashtbl.replace out (blk + i) ()
    done
  in
  let table_list =
    Hashtbl.fold (fun oid v acc -> (oid, v.v_block) :: acc) e.e_table []
  in
  add_record e.e_record_block
    (Bytes.length (serialize_record ~epoch:e.e_epoch ~prev_block:0 table_list));
  Hashtbl.iter
    (fun oid v ->
      add_record v.v_block
        (Bytes.length (serialize_version ~oid ~epoch:e.e_epoch v));
      IntMap.iter
        (fun _ leaf_blk ->
          Hashtbl.replace out leaf_blk ();
          List.iter
            (fun p -> pent_blocks p (fun b -> Hashtbl.replace out b ()))
            (cached_leaf t leaf_blk))
        v.v_leaves)
    e.e_table;
  out

let prune_history t ~keep =
  let n = List.length t.epochs in
  if n <= keep then 0
  else begin
    Otrace.with_span ~cat:"store" ~name:"prune"
      ~args:[ ("keep", Otrace.Int keep); ("epochs", Otrace.Int n) ]
    @@ fun () ->
    let drop = n - keep in
    let dropped, kept =
      let rec split i acc = function
        | rest when i = drop -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | e :: rest -> split (i + 1) (e :: acc) rest
      in
      split 0 [] t.epochs
    in
    (* Mark everything the kept epochs reach, sweep what only the dropped
       epochs reached. *)
    let live = Hashtbl.create 1024 in
    List.iter
      (fun e -> Hashtbl.iter (fun b () -> Hashtbl.replace live b ()) (reachable_blocks t e))
      kept;
    (* Deduplicate across the dropped epochs: several of them typically
       share blocks, and a block must enter the free list exactly once. *)
    let candidates = Hashtbl.create 1024 in
    List.iter
      (fun e ->
        Hashtbl.iter
          (fun b () -> Hashtbl.replace candidates b ())
          (reachable_blocks t e))
      dropped;
    let freed = ref 0 in
    Hashtbl.iter
      (fun b () ->
        if not (Hashtbl.mem live b) then begin
          (* free_block also invalidates the leaf cache for [b], so a
             reused block can never serve stale parsed entries. *)
          free_block t b;
          incr freed
        end)
      candidates;
    t.epochs <- kept;
    (match kept with
    | e :: _ -> t.oldest_retained <- e.e_epoch
    | [] -> ());
    (* Drop pruned locations from the content index before anything can
       dedup against them; rebuilding from the kept leaves also restores
       exact refcounts without ever decrementing through a window where a
       crash could leave the count wrong. *)
    rebuild_content_index t;
    (* Persist the new chain bound so recovery never follows a prev
       pointer into reused blocks. *)
    let c =
      write_superblock t ~now:(Clock.now t.clk)
        ~last_epoch:(last_complete_epoch t)
        ~record_block:
          (match last_epoch_info t with Some e -> e.e_record_block | None -> 0)
    in
    Clock.advance_to t.clk c;
    !freed
  end

let blocks_allocated t = t.next_block - Hashtbl.length t.free_set
let blocks_free t = Hashtbl.length t.free_set

(* Verification ------------------------------------------------------------------------ *)

let page_crcs t ~epoch ~oid =
  let v = version_exn t ~epoch ~oid in
  IntMap.fold
    (fun _ leaf_blk acc ->
      List.fold_left
        (fun acc p -> (p.p_idx, p.p_crc) :: acc)
        acc (cached_leaf t leaf_blk))
    v.v_leaves []
  |> List.sort compare

(* What the open staging epoch will contain once committed: carried
   objects included, with per-page checksums merged the same way
   [commit_checkpoint] merges leaves (previous leaves overridden by staged
   payloads).  The SLS builds the epoch's manifest from this, *before*
   commit, so the manifest is part of the very epoch it describes. *)
let staging_manifest_source t =
  let s = staging_exn t in
  let prev_table =
    match last_epoch_info t with
    | Some e -> e.e_table
    | None -> Hashtbl.create 0
  in
  let oids = Hashtbl.create 64 in
  Hashtbl.iter (fun oid _ -> Hashtbl.replace oids oid ()) prev_table;
  Hashtbl.iter (fun oid _ -> Hashtbl.replace oids oid ()) s;
  Hashtbl.fold
    (fun oid () acc ->
      let st = Hashtbl.find_opt s oid in
      let prev = Hashtbl.find_opt prev_table oid in
      let kind =
        match st with
        | Some st when st.s_kind <> "" -> st.s_kind
        | _ -> ( match prev with Some v -> v.v_kind | None -> "memory")
      in
      let meta =
        match st with
        | Some st when st.s_meta <> "" -> st.s_meta
        | _ -> ( match prev with Some v -> v.v_meta | None -> "")
      in
      let crcs = Hashtbl.create 16 in
      (match prev with
      | None -> ()
      | Some v ->
          IntMap.iter
            (fun _ leaf_blk ->
              List.iter
                (fun p -> Hashtbl.replace crcs p.p_idx p.p_crc)
                (cached_leaf t leaf_blk))
            v.v_leaves);
      (match st with
      | None -> ()
      | Some st ->
          Hashtbl.iter
            (fun idx payload -> Hashtbl.replace crcs idx (Crc32.of_bytes payload))
            st.s_pages);
      let pages =
        Hashtbl.fold (fun idx crc acc -> (idx, crc) :: acc) crcs []
        |> List.sort compare
      in
      (oid, kind, meta, pages) :: acc)
    oids []
  |> List.sort compare

(* Delta-aware manifest: same composed state as [staging_manifest_source]
   but summarized — (oid, kind, meta crc, page count, pages fingerprint).
   Carried objects cost O(1) via the manifest-row cache; staged objects pay
   only for the leaves their dirty pages touch.  This is what makes the
   manifest affordable when an incremental checkpoint skips most of the
   group: the full source walk is O(union of all objects' pages).
   [staging_manifest_source] stays as the reference implementation the
   tests check this against. *)
let staging_manifest_entries t =
  let s = staging_exn t in
  let prev_table =
    match last_epoch_info t with
    | Some e -> e.e_table
    | None -> Hashtbl.create 0
  in
  let acc = ref [] in
  Hashtbl.iter
    (fun oid v ->
      if not (Hashtbl.mem s oid) then begin
        let r = committed_row t oid v in
        acc := (oid, r.r_kind, r.r_meta_crc, r.r_npages, r.r_fp) :: !acc
      end)
    prev_table;
  Hashtbl.iter
    (fun oid st ->
      let prev = Hashtbl.find_opt prev_table oid in
      let base =
        match prev with Some v -> committed_row t oid v | None -> zero_row
      in
      let kind = if st.s_kind <> "" then st.s_kind else base.r_kind in
      let meta_crc =
        if st.s_meta <> "" then Crc32.of_string st.s_meta else base.r_meta_crc
      in
      let fp = ref base.r_fp and npages = ref base.r_npages in
      if Hashtbl.length st.s_pages > 0 then begin
        (* Group the staged page indexes per leaf so each touched leaf of
           the previous version is walked once to fold out the entries the
           staged pages replace. *)
        let by_leaf = Hashtbl.create 8 in
        Hashtbl.iter
          (fun idx _ ->
            let l = idx / leaf_span in
            let idxs =
              match Hashtbl.find_opt by_leaf l with
              | Some idxs -> idxs
              | None ->
                  let idxs = Hashtbl.create 16 in
                  Hashtbl.replace by_leaf l idxs;
                  idxs
            in
            Hashtbl.replace idxs idx ())
          st.s_pages;
        Hashtbl.iter
          (fun leaf_idx idxs ->
            match prev with
            | None -> ()
            | Some v -> (
                match IntMap.find_opt leaf_idx v.v_leaves with
                | None -> ()
                | Some blk ->
                    List.iter
                      (fun p ->
                        if Hashtbl.mem idxs p.p_idx then begin
                          fp := !fp lxor fp_one p.p_idx p.p_crc;
                          decr npages
                        end)
                      (cached_leaf t blk)))
          by_leaf;
        Hashtbl.iter
          (fun idx payload ->
            fp := !fp lxor fp_one idx (Crc32.of_bytes payload);
            incr npages)
          st.s_pages
      end;
      acc := (oid, kind, meta_crc, !npages, !fp) :: !acc)
    s;
  List.sort compare !acc

(* Deliberate-corruption knobs, torture-harness counterparts of
   [set_torture_misorder]: they exist so the negative-control tests can
   prove that manifest verification and epoch fallback actually fire. *)

let corrupt_meta_for_tests t ~epoch ~oid =
  let e = epoch_info t epoch in
  match Hashtbl.find_opt e.e_table oid with
  | None -> raise (Corrupt_store (Printf.sprintf "oid %d not in epoch %d" oid epoch))
  | Some v ->
      let meta =
        if v.v_meta = "" then "\x01"
        else begin
          let b = Bytes.of_string v.v_meta in
          Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
          Bytes.to_string b
        end
      in
      (* Version records are shared across epoch tables by commit's
         table copy; replacing the binding corrupts this epoch only. *)
      Hashtbl.replace e.e_table oid { v with v_meta = meta }

let corrupt_page_for_tests t ~epoch ~oid =
  let v = version_exn t ~epoch ~oid in
  let entry =
    IntMap.fold
      (fun _ leaf_blk acc ->
        match acc with
        | Some _ -> acc
        | None -> ( match cached_leaf t leaf_blk with e :: _ -> Some e | [] -> None))
      v.v_leaves None
  in
  match entry with
  | None -> invalid_arg "Store.corrupt_page_for_tests: object has no pages"
  | Some p ->
      let garbage =
        Bytes.init (max p.p_clen 1) (fun i -> Char.chr ((i * 7 + 0xEE) land 0xFF))
      in
      let c =
        Striped.write t.dev ~now:(Clock.now t.clk)
          ~off:(off_of_block p.p_blk + p.p_off)
          garbage
      in
      Clock.advance_to t.clk c
