type writer = Buffer.t

let writer () = Buffer.create 256
let u8 w v = Buffer.add_uint8 w (v land 0xff)

let u32 w v =
  assert (v >= 0 && v < 0x1_0000_0000);
  Buffer.add_int32_le w (Int32.of_int v)

let u64 w v = Buffer.add_int64_le w (Int64.of_int v)

let str w s =
  u32 w (String.length s);
  Buffer.add_string w s

let list w f l =
  u32 w (List.length l);
  List.iter f l

let contents w = Buffer.to_bytes w

type reader = { data : bytes; mutable pos : int }

exception Corrupt of string

let reader data = { data; pos = 0 }

let need r n =
  if r.pos + n > Bytes.length r.data then
    raise (Corrupt (Printf.sprintf "short read at %d (+%d of %d)" r.pos n (Bytes.length r.data)))

let ru8 r =
  need r 1;
  let v = Bytes.get_uint8 r.data r.pos in
  r.pos <- r.pos + 1;
  v

let ru32 r =
  need r 4;
  let v = Int32.to_int (Bytes.get_int32_le r.data r.pos) land 0xffff_ffff in
  r.pos <- r.pos + 4;
  v

let ru64 r =
  need r 8;
  let v = Int64.to_int (Bytes.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let rstr r =
  let n = ru32 r in
  need r n;
  let s = Bytes.sub_string r.data r.pos n in
  r.pos <- r.pos + n;
  s

let rlist r f =
  let n = ru32 r in
  List.init n (fun _ -> f r)

let remaining r = Bytes.length r.data - r.pos
let pos r = r.pos
