(** Binary serialization for on-store records.

    Everything the object store persists (superblock, checkpoint records,
    object versions) goes through this little-endian, length-prefixed
    format, and recovery parses the exact bytes back off the simulated
    device — there is no in-memory shortcut on the recovery path. *)

(** {1 Writing} *)

type writer

val writer : unit -> writer
val u8 : writer -> int -> unit
val u32 : writer -> int -> unit
val u64 : writer -> int -> unit
val str : writer -> string -> unit
(** Length-prefixed. *)

val list : writer -> ('a -> unit) -> 'a list -> unit
(** Count-prefixed; the callback writes each element. *)

val contents : writer -> bytes

(** {1 Reading} *)

type reader

exception Corrupt of string

val reader : bytes -> reader
val ru8 : reader -> int
val ru32 : reader -> int
val ru64 : reader -> int
val rstr : reader -> string
val rlist : reader -> (reader -> 'a) -> 'a list
val remaining : reader -> int

val pos : reader -> int
(** Current byte offset, for error reporting. *)
