module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost

exception Fault of string

type stats = {
  mutable soft_faults : int;
  mutable cow_faults : int;
  mutable zero_fills : int;
  mutable stale_refaults : int;
  mutable pageins : int;
}

type t = {
  clk : Clock.t;
  vmap : Vm_map.t;
  phys : Pmap.t;
  st : stats;
  (* Speculative-checkpoint epoch: while set, structural address-space
     changes (fork's shadow swing, unmap discarding spec-dirty PTEs)
     cannot be expressed as per-page conflicts, so they latch
     [spec_structural] and the validator falls back to a full re-copy of
     the harvested objects. *)
  mutable spec_epoch : bool;
  mutable spec_structural : bool;
}

let create ~clock =
  {
    clk = clock;
    vmap = Vm_map.create ();
    phys = Pmap.create ();
    st =
      {
        soft_faults = 0;
        cow_faults = 0;
        zero_fills = 0;
        stale_refaults = 0;
        pageins = 0;
      };
    spec_epoch = false;
    spec_structural = false;
  }

let clock t = t.clk
let map t = t.vmap
let pmap t = t.phys
let stats t = t.st

let map_anonymous t ~npages ~prot =
  let obj = Vm_object.create Vm_object.Anonymous in
  let vpn = Vm_map.find_free_range t.vmap ~npages in
  Vm_map.map t.vmap ~vpn ~npages ~prot ~obj ~obj_pgoff:0

let map_object ?shared t ~obj ~obj_pgoff ~npages ~prot =
  Vm_object.ref_ obj;
  let vpn = Vm_map.find_free_range t.vmap ~npages in
  Vm_map.map ?shared t.vmap ~vpn ~npages ~prot ~obj ~obj_pgoff

let unmap t entry =
  if t.spec_epoch then t.spec_structural <- true;
  Pmap.remove_range t.phys ~vpn:entry.Vm_map.start_vpn ~npages:entry.Vm_map.npages;
  Vm_map.unmap t.vmap entry

let addr_of_entry (e : Vm_map.entry) = e.start_vpn * Page.logical_size

(* Uncharged chain walk used to validate cached PTEs; the charged walk in
   Vm_object.lookup models the fault path only. *)
let lookup_nocharge obj idx =
  let rec walk o =
    match Vm_object.find_local o idx with
    | Some page -> Some (page, o)
    | None -> ( match Vm_object.parent o with None -> None | Some p -> walk p)
  in
  walk obj

let entry_of_vpn t vpn =
  match Vm_map.find t.vmap vpn with
  | Some e -> e
  | None -> raise (Fault (Printf.sprintf "no mapping at vpn %#x" vpn))

let obj_index (e : Vm_map.entry) vpn = vpn - e.start_vpn + e.obj_pgoff

(* Resolve a fault: find or create the page, install a PTE, charge the
   appropriate cost.  Returns the page the access should hit. *)
let rec handle_fault t (e : Vm_map.entry) vpn ~write =
  let idx = obj_index e vpn in
  (match Vm_object.kind e.obj with
  | Vm_object.Device_backed _ when write -> raise (Fault "write to device mapping")
  | Vm_object.Anonymous | Vm_object.Vnode_backed _ | Vm_object.Device_backed _ -> ());
  match Vm_object.lookup ~clock:t.clk e.obj idx with
  | Some (page, src) when src == e.obj ->
      (* Resident in the top object: plain soft fault. *)
      t.st.soft_faults <- t.st.soft_faults + 1;
      Clock.advance t.clk Cost.soft_fault;
      Pmap.install t.phys vpn page ~writable:(write && e.prot.write) ~dirty:write;
      page
  | Some (page, _ancestor) ->
      if write then begin
        (* COW: copy into the top object. *)
        t.st.cow_faults <- t.st.cow_faults + 1;
        Clock.advance t.clk Cost.cow_fault;
        let private_page = Page.copy page in
        Vm_object.insert_page e.obj idx private_page;
        Pmap.install t.phys vpn private_page ~writable:true ~dirty:true;
        private_page
      end
      else begin
        (* Ancestor pages map read-only so a later write still faults. *)
        t.st.soft_faults <- t.st.soft_faults + 1;
        Clock.advance t.clk Cost.soft_fault;
        Pmap.install t.phys vpn page ~writable:false;
        page
      end
  | None -> (
      (* The chain has no resident page.  A pager along the chain (swap,
         lazy restore) supplies the payload; otherwise zero-fill into the
         top object. *)
      let rec find_pager obj =
        match Vm_object.pager obj with
        | Some pager -> (
            match pager idx with
            | Some payload -> Some (obj, payload)
            | None -> (
                match Vm_object.parent obj with
                | None -> None
                | Some p -> find_pager p))
        | None -> (
            match Vm_object.parent obj with
            | None -> None
            | Some p -> find_pager p)
      in
      match find_pager e.obj with
      | Some (owner, payload) ->
          (* Page-in at the pager's level so sharers see it too; the I/O
             cost was charged by the pager itself.  Retry the fault: the
             page may still need a COW copy into the top. *)
          t.st.pageins <- t.st.pageins + 1;
          let page = Page.alloc_sized ~payload:(Bytes.length payload) in
          Page.load_payload page payload;
          Vm_object.insert_page owner idx page;
          handle_fault t e vpn ~write
      | None ->
          t.st.zero_fills <- t.st.zero_fills + 1;
          Clock.advance t.clk Cost.soft_fault;
          let page = Page.alloc () in
          Vm_object.insert_page e.obj idx page;
          Pmap.install t.phys vpn page ~writable:(write && e.prot.write)
            ~dirty:write;
          page)

let access t ~vpn ~write =
  let e = entry_of_vpn t vpn in
  if write && not e.prot.write then raise (Fault "write to read-only mapping");
  if (not write) && not e.prot.read then raise (Fault "read from PROT_NONE mapping");
  match Pmap.find t.phys vpn with
  | Some pte -> (
      (* Validate the cached translation: a sharer's COW or a checkpoint
         collapse may have changed which page backs this address. *)
      let idx = obj_index e vpn in
      match lookup_nocharge e.obj idx with
      | Some (page, _) when Page.id page = Page.id pte.page ->
          if write && not pte.writable then
            (* Downgraded by checkpoint shadowing or fork: refault. *)
            handle_fault t e vpn ~write:true
          else begin
            if write then begin
              pte.dirty <- true;
              pte.spec_dirty <- true
            end;
            pte.page
          end
      | Some _ | None ->
          t.st.stale_refaults <- t.st.stale_refaults + 1;
          Pmap.remove t.phys vpn;
          handle_fault t e vpn ~write)
  | None ->
      (* handle_fault stamps the dirty bit on write-fault installs. *)
      handle_fault t e vpn ~write

let split_addr addr = (addr / Page.logical_size, addr mod Page.logical_size)

let write_byte t ~addr c =
  let vpn, off = split_addr addr in
  let page = access t ~vpn ~write:true in
  Page.set page off c

let read_byte t ~addr =
  let vpn, off = split_addr addr in
  let page = access t ~vpn ~write:false in
  Page.get page off

let write_string t ~addr s =
  String.iteri (fun i c -> write_byte t ~addr:(addr + i) c) s

let read_string t ~addr ~len = String.init len (fun i -> read_byte t ~addr:(addr + i))

let touch_write t ~addr ~len =
  let first = addr / Page.logical_size
  and last = (addr + len - 1) / Page.logical_size in
  for vpn = first to last do
    let page = access t ~vpn ~write:true in
    (* One byte per page keeps content checks meaningful without paying a
       per-byte loop on multi-MiB regions. *)
    Page.set page 0 'd'
  done

let touch_read t ~addr ~len =
  let first = addr / Page.logical_size
  and last = (addr + len - 1) / Page.logical_size in
  for vpn = first to last do
    ignore (access t ~vpn ~write:false)
  done

(* Layout stamp for incremental checkpoints: moves on any map/unmap and on
   any in-place entry mutation (mprotect, sls_mctl exclusion, fork's object
   swing).  Shadow interposition via [replace_object] deliberately does not
   move it — the serialized image names the stable memory-object oid. *)
let layout_generation t =
  List.fold_left
    (fun acc (e : Vm_map.entry) -> acc + e.Vm_map.e_gen)
    (Vm_map.generation t.vmap)
    (Vm_map.entries t.vmap)

let shadowable (e : Vm_map.entry) =
  (not e.excluded) && e.prot.write
  &&
  match Vm_object.kind e.obj with
  | Vm_object.Anonymous -> true
  | Vm_object.Vnode_backed _ | Vm_object.Device_backed _ ->
      (* The Aurora FS provides COW for file-backed memory; devices are
         read-only. *)
      false

let unique_objects t =
  let seen = Hashtbl.create 16 in
  List.fold_left
    (fun acc (e : Vm_map.entry) ->
      if shadowable e && not (Hashtbl.mem seen (Vm_object.id e.obj)) then begin
        Hashtbl.replace seen (Vm_object.id e.obj) ();
        e.obj :: acc
      end
      else acc)
    [] (Vm_map.entries t.vmap)
  |> List.rev

let replace_object t ~old_obj ~new_obj =
  let downgraded = ref 0 in
  List.iter
    (fun (e : Vm_map.entry) ->
      if e.obj == old_obj then begin
        e.obj <- new_obj;
        (* The page-table walk that clears writable bits is the stop-time
           marking cost... *)
        downgraded :=
          !downgraded
          + Pmap.downgrade_range t.phys ~clock:t.clk ~vpn:e.start_vpn
              ~npages:e.npages;
        (* ...and the accompanying TLB flush invalidates every cached
           translation of the region: reads refault too after a
           checkpoint ("applications frequently fault in pages because
           system shadowing flushes the TLB", section 6). *)
        Pmap.remove_range t.phys ~vpn:e.start_vpn ~npages:e.npages
      end)
    (Vm_map.entries t.vmap);
  !downgraded

let fork t =
  if t.spec_epoch then t.spec_structural <- true;
  let child = create ~clock:t.clk in
  List.iter
    (fun (e : Vm_map.entry) ->
      if e.shared then begin
        Vm_object.ref_ e.obj;
        ignore
          (Vm_map.map ~shared:true child.vmap ~vpn:e.start_vpn ~npages:e.npages
             ~prot:e.prot ~obj:e.obj ~obj_pgoff:e.obj_pgoff)
      end
      else if not e.prot.write then begin
        (* Read-only private regions (text) can alias the same object. *)
        Vm_object.ref_ e.obj;
        ignore
          (Vm_map.map child.vmap ~vpn:e.start_vpn ~npages:e.npages ~prot:e.prot
             ~obj:e.obj ~obj_pgoff:e.obj_pgoff)
      end
      else begin
        (* Symmetric shadowing: the old object becomes a shared read-only
           backing object; parent and child each write into a private
           shadow above it. *)
        let backing = e.obj in
        let parent_shadow = Vm_object.shadow ~clock:t.clk backing in
        Vm_object.ref_ backing;
        let child_shadow = Vm_object.shadow ~clock:t.clk backing in
        e.obj <- parent_shadow;
        (* Unlike checkpoint shadow rotation, fork changes which memory
           object this entry is recorded against: stamp it. *)
        Vm_map.touch_entry e;
        ignore
          (Pmap.downgrade_range t.phys ~clock:t.clk ~vpn:e.start_vpn
             ~npages:e.npages);
        ignore
          (Vm_map.map child.vmap ~vpn:e.start_vpn ~npages:e.npages ~prot:e.prot
             ~obj:child_shadow ~obj_pgoff:e.obj_pgoff)
      end)
    (Vm_map.entries t.vmap);
  child

let resident_pages t =
  let seen = Hashtbl.create 16 in
  let total = ref 0 in
  let rec count_chain obj =
    if not (Hashtbl.mem seen (Vm_object.id obj)) then begin
      Hashtbl.replace seen (Vm_object.id obj) ();
      total := !total + Vm_object.resident_pages obj;
      match Vm_object.parent obj with None -> () | Some p -> count_chain p
    end
  in
  List.iter (fun (e : Vm_map.entry) -> count_chain e.obj) (Vm_map.entries t.vmap);
  !total

let dirty_top_pages t =
  let seen = Hashtbl.create 16 in
  List.fold_left
    (fun acc (e : Vm_map.entry) ->
      if
        e.prot.write
        && (not e.excluded)
        && not (Hashtbl.mem seen (Vm_object.id e.obj))
      then begin
        Hashtbl.replace seen (Vm_object.id e.obj) ();
        acc + Vm_object.resident_pages e.obj
      end
      else acc)
    0 (Vm_map.entries t.vmap)

(* Speculative-checkpoint epoch ------------------------------------------ *)

let spec_begin t =
  t.spec_epoch <- true;
  t.spec_structural <- false;
  Pmap.spec_clear t.phys

let spec_drain t = Pmap.spec_drain t.phys
let spec_structural t = t.spec_structural

let spec_end t =
  t.spec_epoch <- false;
  t.spec_structural <- false
