let logical_size = 4096
let payload_size = 64

(* [digest] memoizes the 62-bit content hash and compressibility class;
   every mutation path resets it to [None]. *)
type t = {
  pid : int;
  mutable data : bytes;
  mutable digest : (int * Aurora_util.Rle.cls) option;
}

let next_id = ref 0

let fresh_id () =
  incr next_id;
  !next_id

let alloc_sized ~payload =
  assert (payload > 0 && payload <= logical_size);
  { pid = fresh_id (); data = Bytes.make payload '\000'; digest = None }

let alloc () = alloc_sized ~payload:payload_size
let alloc_full () = alloc_sized ~payload:logical_size

let alloc_init f =
  { pid = fresh_id (); data = Bytes.init payload_size f; digest = None }

let id t = t.pid
let payload_length t = Bytes.length t.data
let copy t = { pid = fresh_id (); data = Bytes.copy t.data; digest = t.digest }

let fold t off =
  assert (off >= 0 && off < logical_size);
  off mod Bytes.length t.data

let get t off = Bytes.get t.data (fold t off)

let set t off c =
  t.digest <- None;
  Bytes.set t.data (fold t off) c

let blit_payload t = Bytes.copy t.data

let load_payload t b =
  t.digest <- None;
  t.data <- Bytes.copy b

let equal_content a b = Bytes.equal a.data b.data

let force_digest t =
  match t.digest with
  | Some d -> d
  | None ->
      let d =
        (Aurora_util.Hash64.of_bytes t.data, Aurora_util.Rle.classify t.data)
      in
      t.digest <- Some d;
      d

let content_hash t = fst (force_digest t)
let comp_class t = snd (force_digest t)
let fingerprint = content_hash
