(** Physical pages.

    A page logically holds 4 KiB ({!logical_size}).  To keep multi-GiB
    benchmark working sets affordable in a test process, pages carry a
    variable-sized {e payload}: anonymous memory uses a compact
    {!payload_size}-byte payload (byte offsets fold into it, so distinct
    small writes stay distinguishable), while file pages use a faithful
    full-size payload ({!alloc_full}) because file contents must round-trip
    exactly through read/write.  Every cost calculation and on-store layout
    uses the logical size; every content-correctness check (COW isolation,
    checkpoint/restore round trips, crash recovery) uses the payload, which
    is real byte data flowing end to end through the object store and the
    block devices. *)

type t

val logical_size : int
(** 4096. *)

val payload_size : int
(** 64: the default compact payload. *)

val alloc : unit -> t
(** A fresh zero page with the compact payload. *)

val alloc_full : unit -> t
(** A fresh zero page whose payload is the full logical size (file data). *)

val alloc_sized : payload:int -> t

val alloc_init : (int -> char) -> t
(** A fresh compact page with payload byte [i] = [f i]. *)

val id : t -> int
(** Unique identity; survives moves between VM objects but not copies. *)

val payload_length : t -> int

val copy : t -> t
(** A fresh page with the same payload (used by COW faults). *)

val get : t -> int -> char
(** [get p off] with [off] a logical offset in [0, logical_size). *)

val set : t -> int -> char -> unit

val blit_payload : t -> bytes
(** A copy of the payload (what the object store persists). *)

val load_payload : t -> bytes -> unit
(** Replace the payload (restore path); adopts the input's length. *)

val equal_content : t -> t -> bool

val content_hash : t -> int
(** The {!Aurora_util.Hash64} digest of the payload, memoized and
    invalidated on every mutation.  This is the same hash the object
    store's content-addressed page index keys on. *)

val comp_class : t -> Aurora_util.Rle.cls
(** Compressibility class of the payload (memoized with the hash); the
    cost model charges flush-path compression time by this class. *)

val fingerprint : t -> int
(** Alias of {!content_hash}; kept for property tests. *)
