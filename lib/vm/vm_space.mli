(** A process address space: VM map + pmap + fault handler.

    This module implements the memory semantics the SLS relies on:

    - demand paging with zero-fill of anonymous memory;
    - copy-on-write through shadow chains (a write to a page resident in an
      ancestor object copies it into the entry's top object);
    - pmap caching with hardware-faithful invalidation costs — a PTE made
      stale by a sharer's copy-on-write, or downgraded by checkpoint
      shadowing, costs a fault to reestablish;
    - fork with Mach-style symmetric shadowing of private writable regions.

    All addresses in the byte-level API are virtual byte addresses; page
    numbers appear in the mapping API. *)

exception Fault of string
(** Raised on access outside any mapping, write to a read-only or
    device-backed region, etc. *)

type stats = {
  mutable soft_faults : int;
  mutable cow_faults : int;
  mutable zero_fills : int;
  mutable stale_refaults : int;
  mutable pageins : int;  (** faults satisfied by a pager (swap / lazy restore) *)
}

type t

val create : clock:Aurora_sim.Clock.t -> t

val clock : t -> Aurora_sim.Clock.t
val map : t -> Vm_map.t
val pmap : t -> Pmap.t
val stats : t -> stats

(** {1 Mapping} *)

val map_anonymous : t -> npages:int -> prot:Vm_map.prot -> Vm_map.entry
(** Map fresh anonymous zero-fill memory at a free range. *)

val map_object :
  ?shared:bool ->
  t ->
  obj:Vm_object.t ->
  obj_pgoff:int ->
  npages:int ->
  prot:Vm_map.prot ->
  Vm_map.entry
(** Map an existing object (shared memory, file mappings); takes a new
    reference on the object. *)

val unmap : t -> Vm_map.entry -> unit

(** {1 Access} *)

val addr_of_entry : Vm_map.entry -> int
(** Byte address of the entry's start. *)

val write_byte : t -> addr:int -> char -> unit
val read_byte : t -> addr:int -> char

val write_string : t -> addr:int -> string -> unit
val read_string : t -> addr:int -> len:int -> string

val touch_write : t -> addr:int -> len:int -> unit
(** Dirty every page in the range by writing one byte per page; the cheap
    bulk path used by workload generators. *)

val touch_read : t -> addr:int -> len:int -> unit

(** {1 Checkpoint support} *)

val layout_generation : t -> int
(** Monotonic stamp over the serialized entry list: the map-level stamp
    (map/unmap; unmap folds the dead entry's stamp in so the sum never
    regresses) plus every live entry's stamp (mprotect, exclusion flips,
    fork's object swing).  Checkpoint shadow interposition does not move
    it. *)

val unique_objects : t -> Vm_object.t list
(** Distinct top objects of non-excluded writable anonymous entries — the
    set system shadowing must cover for this space. *)

val replace_object : t -> old_obj:Vm_object.t -> new_obj:Vm_object.t -> int
(** Point every entry backed by [old_obj] at [new_obj]: the writable PTEs
    in the affected ranges are downgraded (charging the per-page
    COW-marking cost) and then every PTE of the ranges is dropped — the
    TLB flush — so reads and writes alike refault after a checkpoint.
    Returns the number of PTEs that were writable.  Used when interposing
    a system shadow, where [new_obj] is [shadow old_obj]. *)

val fork : t -> t
(** A child address space: shared entries alias the same objects; private
    writable entries get symmetric shadows (parent and child each shadow
    the previously shared object). *)

val resident_pages : t -> int
(** Unique resident pages reachable from this space's objects. *)

val dirty_top_pages : t -> int
(** Pages resident in the top objects of writable entries — the dirty set
    the next incremental checkpoint must flush. *)

(** {1 Speculative soft-quiesce}

    While a speculative checkpoint serializes pages without stopping the
    workload, the space tracks a second, independently cleared dirty-bit
    plane plus a structural-hazard latch.  See {!Pmap.spec_dirty_vpns}. *)

val spec_begin : t -> unit
(** Arm the speculation epoch: clears the spec dirty plane and the
    structural latch.  The incremental plane is untouched. *)

val spec_drain : t -> int list
(** VPNs written since the last drain (ascending); clears their spec
    bits so the next drain reports only the following window. *)

val spec_structural : t -> bool
(** True if a fork or unmap happened during the armed epoch: per-page
    conflict tracking is no longer sound (PTEs carrying spec bits were
    discarded or entries swung to new shadow objects), and the validator
    must re-copy harvested objects wholesale. *)

val spec_end : t -> unit
(** Disarm; clears the structural latch. *)
