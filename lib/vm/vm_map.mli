(** The VM map: the list of regions mapped in an address space.

    Each entry covers a contiguous virtual page range, carries protection
    bits and checkpoint-control flags, and is backed by exactly one VM
    object (possibly at an offset, and possibly shared with other maps). *)

type prot = { read : bool; write : bool; exec : bool }

val prot_rw : prot
val prot_ro : prot
val prot_rx : prot

type entry = {
  mutable start_vpn : int;
  mutable npages : int;
  mutable prot : prot;
  mutable obj : Vm_object.t;
  mutable obj_pgoff : int;  (** page offset of the entry within the object *)
  mutable shared : bool;
      (** shared mapping: fork children reference the same object instead of
          getting copy-on-write semantics *)
  mutable excluded : bool;  (** excluded from checkpoints via [sls_mctl] *)
  mutable evict_first : bool;
      (** madvise(MADV_DONTNEED-style) hint: prefer this region when the
          swap policy needs victims (paper section 6) *)
  mutable e_gen : int;
      (** per-entry mutation stamp; bump via [touch_entry] (or the setters)
          whenever a serialized entry field changes in place *)
}

type t

val create : unit -> t

val generation : t -> int
(** Map-level layout stamp: bumped by every [map]/[unmap].  Together with
    the per-entry stamps this covers the serialized entry list. *)

val touch_entry : entry -> unit

val set_excluded : entry -> bool -> unit
(** Flip the checkpoint-exclusion flag ([sls_mctl]), stamping on change. *)

val set_prot : entry -> prot -> unit
(** mprotect: change protection bits, stamping on change. *)

val entries : t -> entry list
(** In ascending address order. *)

val entry_count : t -> int

val map :
  ?shared:bool ->
  t ->
  vpn:int ->
  npages:int ->
  prot:prot ->
  obj:Vm_object.t ->
  obj_pgoff:int ->
  entry
(** Insert a new entry.  Raises [Invalid_argument] on overlap with an
    existing entry. *)

val unmap : t -> entry -> unit
(** Remove the entry and drop its object reference. *)

val find : t -> int -> entry option
(** The entry containing virtual page [vpn], if any. *)

val find_free_range : t -> npages:int -> int
(** A free virtual page range of the requested size (simple first-fit above
    the highest mapping). *)

val total_pages : t -> int
(** Sum of entry sizes (the mapped virtual footprint). *)
