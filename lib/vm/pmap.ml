module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost

(* Two dirty-bit planes per PTE.  [dirty] is the incremental-checkpoint
   plane harvested (and cleared) inside the stop window; [spec_dirty] is
   a second, independently-cleared plane for the speculative soft
   quiesce: the speculation phase clears it before harvesting pages, and
   any write landing mid-serialize reappears there as a page conflict.
   Keeping the planes separate means arming/draining speculation can
   never perturb the dirty set the incremental path observes. *)
type pte = {
  mutable page : Page.t;
  mutable writable : bool;
  mutable dirty : bool;
  mutable spec_dirty : bool;
}

type t = { ptes : (int, pte) Hashtbl.t }

let create () = { ptes = Hashtbl.create 256 }
let find t vpn = Hashtbl.find_opt t.ptes vpn

let install ?(dirty = false) t vpn page ~writable =
  Hashtbl.replace t.ptes vpn { page; writable; dirty; spec_dirty = dirty }

let dirty_vpns t =
  Hashtbl.fold (fun v pte acc -> if pte.dirty then v :: acc else acc) t.ptes []
  |> List.sort compare

let clear_dirty t =
  Hashtbl.iter (fun _ pte -> pte.dirty <- false) t.ptes

let spec_dirty_vpns t =
  Hashtbl.fold
    (fun v pte acc -> if pte.spec_dirty then v :: acc else acc)
    t.ptes []
  |> List.sort compare

let spec_clear t = Hashtbl.iter (fun _ pte -> pte.spec_dirty <- false) t.ptes

(* Collect-and-rearm in one pass: refinement rounds re-copy the pages
   written since the previous drain, so each drain resets the plane for
   the next window. *)
let spec_drain t =
  Hashtbl.fold
    (fun v pte acc ->
      if pte.spec_dirty then begin
        pte.spec_dirty <- false;
        v :: acc
      end
      else acc)
    t.ptes []
  |> List.sort compare

let remove t vpn = Hashtbl.remove t.ptes vpn

let remove_range t ~vpn ~npages =
  for v = vpn to vpn + npages - 1 do
    Hashtbl.remove t.ptes v
  done

let downgrade_range t ~clock ~vpn ~npages =
  let count = ref 0 in
  (* Walk whichever side is smaller: the range or the installed PTEs. *)
  if npages < Hashtbl.length t.ptes then
    for v = vpn to vpn + npages - 1 do
      match Hashtbl.find_opt t.ptes v with
      | Some pte when pte.writable ->
          pte.writable <- false;
          incr count
      | Some _ | None -> ()
    done
  else
    Hashtbl.iter
      (fun v pte ->
        if v >= vpn && v < vpn + npages && pte.writable then begin
          pte.writable <- false;
          incr count
        end)
      t.ptes;
  Clock.advance clock (!count * Cost.cow_mark_page);
  !count

let resident t = Hashtbl.length t.ptes

let writable_count t =
  Hashtbl.fold (fun _ pte acc -> if pte.writable then acc + 1 else acc) t.ptes 0

let iter t f = Hashtbl.iter f t.ptes
let clear t = Hashtbl.reset t.ptes
