module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost

type pte = { mutable page : Page.t; mutable writable : bool; mutable dirty : bool }
type t = { ptes : (int, pte) Hashtbl.t }

let create () = { ptes = Hashtbl.create 256 }
let find t vpn = Hashtbl.find_opt t.ptes vpn

let install ?(dirty = false) t vpn page ~writable =
  Hashtbl.replace t.ptes vpn { page; writable; dirty }

let dirty_vpns t =
  Hashtbl.fold (fun v pte acc -> if pte.dirty then v :: acc else acc) t.ptes []
  |> List.sort compare

let clear_dirty t =
  Hashtbl.iter (fun _ pte -> pte.dirty <- false) t.ptes

let remove t vpn = Hashtbl.remove t.ptes vpn

let remove_range t ~vpn ~npages =
  for v = vpn to vpn + npages - 1 do
    Hashtbl.remove t.ptes v
  done

let downgrade_range t ~clock ~vpn ~npages =
  let count = ref 0 in
  (* Walk whichever side is smaller: the range or the installed PTEs. *)
  if npages < Hashtbl.length t.ptes then
    for v = vpn to vpn + npages - 1 do
      match Hashtbl.find_opt t.ptes v with
      | Some pte when pte.writable ->
          pte.writable <- false;
          incr count
      | Some _ | None -> ()
    done
  else
    Hashtbl.iter
      (fun v pte ->
        if v >= vpn && v < vpn + npages && pte.writable then begin
          pte.writable <- false;
          incr count
        end)
      t.ptes;
  Clock.advance clock (!count * Cost.cow_mark_page);
  !count

let resident t = Hashtbl.length t.ptes

let writable_count t =
  Hashtbl.fold (fun _ pte acc -> if pte.writable then acc + 1 else acc) t.ptes 0

let iter t f = Hashtbl.iter f t.ptes
let clear t = Hashtbl.reset t.ptes
