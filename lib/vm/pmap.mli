(** The physical map: simulated hardware page tables.

    The pmap is a cache of the VM map (the paper's Figure 2): entries can be
    discarded and rebuilt from the VM objects at any time.  A PTE caches the
    page resolved by a previous fault plus its writable bit; the dirty bit
    records hardware-set modification state used by incremental
    checkpointing.

    Addresses are in page units (virtual page numbers). *)

type pte = {
  mutable page : Page.t;
  mutable writable : bool;
  mutable dirty : bool;
  mutable spec_dirty : bool;
}

type t

val create : unit -> t

val find : t -> int -> pte option
val install : ?dirty:bool -> t -> int -> Page.t -> writable:bool -> unit
(** Install a translation.  [dirty] (default false) pre-sets the
    modified bit: a write fault dirties the page in the same trap that
    installs the PTE, so the fault handler must stamp it here or the
    write would be invisible to the next dirty-bit harvest. *)

val remove : t -> int -> unit

val dirty_vpns : t -> int list
(** VPNs whose PTE has the dirty bit set, ascending. *)

val clear_dirty : t -> unit
(** Clear every dirty bit (checkpoint harvest end). *)

val spec_dirty_vpns : t -> int list
(** VPNs whose PTE has the {e speculative} dirty bit set, ascending.
    The spec plane is double-buffered against [dirty]: both bits are set
    by the same write paths, but clearing one plane never touches the
    other, so a speculative harvest cannot race the incremental path. *)

val spec_clear : t -> unit
(** Clear every speculative dirty bit (speculation-phase arm). *)

val spec_drain : t -> int list
(** Atomically collect the spec-dirty VPNs (ascending) and clear their
    bits, re-arming the plane for the next refinement window. *)

val remove_range : t -> vpn:int -> npages:int -> unit

val downgrade_range : t -> clock:Aurora_sim.Clock.t -> vpn:int -> npages:int -> int
(** Clear the writable bit of every writable PTE in the range, charging
    {!Aurora_sim.Cost.cow_mark_page} each; returns the number downgraded.
    This is the linear page-table walk that dominates checkpoint stop time
    (Table 5). *)

val resident : t -> int
(** Number of installed PTEs. *)

val writable_count : t -> int

val iter : t -> (int -> pte -> unit) -> unit

val clear : t -> unit
(** Drop every PTE (the page tables are ephemeral; used by restore). *)
