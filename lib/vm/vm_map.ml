type prot = { read : bool; write : bool; exec : bool }

let prot_rw = { read = true; write = true; exec = false }
let prot_ro = { read = true; write = false; exec = false }
let prot_rx = { read = true; write = false; exec = true }

type entry = {
  mutable start_vpn : int;
  mutable npages : int;
  mutable prot : prot;
  mutable obj : Vm_object.t;
  mutable obj_pgoff : int;
  mutable shared : bool;
  mutable excluded : bool;
  mutable evict_first : bool;
  mutable e_gen : int;
}

type t = {
  mutable ents : entry list; (* ascending by start_vpn *)
  mutable map_gen : int;
}

let create () = { ents = []; map_gen = 0 }
let entries t = t.ents
let entry_count t = List.length t.ents
let generation t = t.map_gen

let touch_entry e = e.e_gen <- e.e_gen + 1

let set_excluded e v =
  if e.excluded <> v then touch_entry e;
  e.excluded <- v

let set_prot e p =
  if e.prot <> p then touch_entry e;
  e.prot <- p

let overlaps a_start a_n b_start b_n =
  a_start < b_start + b_n && b_start < a_start + a_n

let map ?(shared = false) t ~vpn ~npages ~prot ~obj ~obj_pgoff =
  assert (npages > 0);
  if List.exists (fun e -> overlaps vpn npages e.start_vpn e.npages) t.ents then
    invalid_arg "Vm_map.map: overlapping mapping";
  let e =
    {
      start_vpn = vpn;
      npages;
      prot;
      obj;
      obj_pgoff;
      shared;
      excluded = false;
      evict_first = false;
      e_gen = 0;
    }
  in
  let rec insert = function
    | [] -> [ e ]
    | hd :: tl when hd.start_vpn < vpn -> hd :: insert tl
    | rest -> e :: rest
  in
  t.ents <- insert t.ents;
  t.map_gen <- t.map_gen + 1;
  e

let unmap t entry =
  Vm_object.unref entry.obj;
  t.ents <- List.filter (fun e -> e != entry) t.ents;
  (* Absorb the departing entry's stamp so the space-level sum of
     [map_gen + Σ e_gen] stays monotonic across unmaps. *)
  t.map_gen <- t.map_gen + 1 + entry.e_gen

let find t vpn =
  List.find_opt (fun e -> vpn >= e.start_vpn && vpn < e.start_vpn + e.npages) t.ents

let find_free_range t ~npages =
  ignore npages;
  let top =
    List.fold_left (fun acc e -> max acc (e.start_vpn + e.npages)) 0x1000 t.ents
  in
  top

let total_pages t = List.fold_left (fun acc e -> acc + e.npages) 0 t.ents
