(** Named metrics: counters, gauges, and latency histograms.

    A process-wide registry, off by default.  Instrumentation sites
    obtain handles once at module initialization ([let m = Metrics.counter
    "dev.submissions"]) and record through them; when the registry is
    disabled a record is a single branch, so handles can live in hot
    paths.  Histograms store exact samples ({!Aurora_util.Histogram})
    and report interpolated percentiles plus a log2-bucketed shape in
    {!report}.

    Registration is idempotent by name: asking for an existing metric
    returns the same handle (asking with a different kind raises
    [Invalid_argument]), so tests and instrumentation sites can share
    handles by name alone. *)

type counter
type gauge
type histogram

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1) when the registry is enabled; otherwise one
    branch. *)

val value : counter -> int

val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int

val observe : histogram -> float -> unit
val observe_ns : histogram -> int -> unit
val samples : histogram -> Aurora_util.Histogram.t

val summary : histogram -> int * float * float * float
(** [(count, p50, p99, max)] with interpolated percentiles; all zeros
    when empty. *)

val reset : unit -> unit
(** Zero every counter and gauge and clear every histogram (handles stay
    valid; the enabled flag is untouched). *)

val report : unit -> string
(** Text report: counters and gauges in registration order, then one
    block per histogram with count, p50/p99 (interpolated), max, and a
    sparse log2 bucket listing. *)
