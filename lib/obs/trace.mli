(** Span tracing over the virtual clock.

    A Dapper-style tracer for the checkpoint pipeline: spans nest, carry
    a category and key/value arguments, and are stamped from the
    simulator's virtual clock, so a trace is a deterministic function of
    the workload — two runs with the same seed export byte-identical
    traces.  Events land in a fixed-capacity ring buffer (oldest events
    are dropped and counted once full) and export either as Chrome
    trace-event JSON (load in [chrome://tracing] / Perfetto) or as an
    indented text timeline.

    The tracer is a process-wide singleton and is {e off} by default.
    Every recording entry point first checks the singleton: when
    disabled, [with_span] is a single branch plus the call to the traced
    thunk, and the other entry points are a single branch — cheap enough
    to leave in every hot path (gated by [bench/obs_overhead.exe]).
    Call sites that must compute arguments should guard with {!is_on} so
    argument construction is also skipped when disabled. *)

type arg = Int of int | Str of string

type phase =
  | Begin  (** span open ([ph:"B"]) *)
  | End  (** span close ([ph:"E"]) *)
  | Instant  (** point event ([ph:"i"]) *)
  | Complete  (** explicit-duration event ([ph:"X"]) *)
  | Counter  (** sampled value ([ph:"C"]) *)

type event = {
  ev_ts : int;  (** virtual nanoseconds *)
  ev_dur : int;  (** [Complete] events only; 0 otherwise *)
  ev_ph : phase;
  ev_cat : string;
  ev_name : string;
  ev_args : (string * arg) list;
}

val enable : ?capacity:int -> clock:Aurora_sim.Clock.t -> unit -> unit
(** Turn the tracer on, stamping events from [clock].  [capacity]
    (default 65536) bounds the ring buffer.  Replaces any previous
    tracer and discards its events. *)

val disable : unit -> unit
(** Turn the tracer off and discard all buffered events. *)

val is_on : unit -> bool

val with_span :
  ?args:(string * arg) list -> cat:string -> name:string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span: a [Begin] event at the current virtual
    time, the thunk, an [End] event at the (possibly advanced) virtual
    time.  Exception-safe: the span is closed even if the thunk raises.
    When the tracer is off this is one branch and a call. *)

val instant : ?ts:int -> ?args:(string * arg) list -> cat:string -> string -> unit
(** A point event, at virtual-now unless [ts] is given (events recorded
    from a clock other than the tracer's, e.g. an HA standby). *)

val complete :
  ts:int -> dur:int -> ?args:(string * arg) list -> cat:string -> string -> unit
(** An explicit-timestamp, explicit-duration event — the shape for
    asynchronous windows whose completion trails the submitting code
    (device submissions, the checkpoint flush-to-durable window). *)

val counter : ?ts:int -> cat:string -> name:string -> int -> unit
(** A sampled counter value (renders as a stacked chart in Chrome). *)

val events : unit -> event list
(** Buffered events, oldest first.  Empty when disabled. *)

val dropped : unit -> int
(** Events evicted from the ring since {!enable}/{!reset}. *)

val reset : unit -> unit
(** Discard buffered events but keep the tracer enabled. *)

val export_json : unit -> string
(** Chrome trace-event JSON ([{"traceEvents": [...]}]); timestamps are
    integer virtual nanoseconds (the file declares
    ["displayTimeUnit": "ns"]). *)

val export_text : unit -> string
(** Indented text timeline: one line per event, [Begin]/[End] pairs
    rendered as a nested tree with per-span virtual durations. *)
