module Histogram = Aurora_util.Histogram

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : int }
type histogram = { h_name : string; h_samples : Histogram.t }
type metric = C of counter | G of gauge | H of histogram

let enabled = ref false
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

(* Registration order, for a deterministic report. *)
let order : string list ref = ref []

let set_enabled b = enabled := b
let is_enabled () = !enabled

let register name make =
  match Hashtbl.find_opt registry name with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.replace registry name m;
      order := name :: !order;
      m

let counter name =
  match register name (fun () -> C { c_name = name; c_value = 0 }) with
  | C c -> c
  | _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter")

let gauge name =
  match register name (fun () -> G { g_name = name; g_value = 0 }) with
  | G g -> g
  | _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge")

let histogram name =
  match register name (fun () -> H { h_name = name; h_samples = Histogram.create () }) with
  | H h -> h
  | _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram")

let incr ?(by = 1) c = if !enabled then c.c_value <- c.c_value + by
let value c = c.c_value
let set_gauge g v = if !enabled then g.g_value <- v
let gauge_value g = g.g_value
let observe h x = if !enabled then Histogram.add h.h_samples x
let observe_ns h n = observe h (float_of_int n)
let samples h = h.h_samples

let summary h =
  let s = h.h_samples in
  ( Histogram.count s,
    Histogram.percentile_interp s 50.0,
    Histogram.percentile_interp s 99.0,
    Histogram.max s )

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> c.c_value <- 0
      | G g -> g.g_value <- 0
      | H h -> Histogram.clear h.h_samples)
    registry

(* Power-of-two buckets of a sample set: [(k, count)] meaning
   [2^k <= x < 2^(k+1)] (k = 0 collects everything below 2). *)
let log2_buckets s =
  let tbl = Hashtbl.create 16 in
  ignore
    (Histogram.fold
       (fun () x ->
         let k =
           if x < 2.0 then 0
           else int_of_float (Float.log2 x)
         in
         Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
       () s);
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let report () =
  let b = Buffer.create 1024 in
  let names = List.rev !order in
  List.iter
    (fun name ->
      match Hashtbl.find registry name with
      | C c -> Printf.bprintf b "counter %-32s %d\n" c.c_name c.c_value
      | G g -> Printf.bprintf b "gauge   %-32s %d\n" g.g_name g.g_value
      | H h ->
          let count, p50, p99, mx = summary h in
          Printf.bprintf b "hist    %-32s n=%d p50=%.0f p99=%.0f max=%.0f\n"
            h.h_name count p50 p99 mx;
          List.iter
            (fun (k, n) -> Printf.bprintf b "          2^%-2d %d\n" k n)
            (log2_buckets h.h_samples))
    names;
  Buffer.contents b
