module Clock = Aurora_sim.Clock

type arg = Int of int | Str of string
type phase = Begin | End | Instant | Complete | Counter

type event = {
  ev_ts : int;
  ev_dur : int;
  ev_ph : phase;
  ev_cat : string;
  ev_name : string;
  ev_args : (string * arg) list;
}

type st = {
  clock : Clock.t;
  buf : event array;
  mutable head : int;  (* index of the oldest buffered event *)
  mutable len : int;
  mutable dropped : int;
}

(* The singleton: [None] means disabled, and every recording entry point
   is a single match on this ref. *)
let state : st option ref = ref None

let null_event =
  { ev_ts = 0; ev_dur = 0; ev_ph = Instant; ev_cat = ""; ev_name = ""; ev_args = [] }

let enable ?(capacity = 65536) ~clock () =
  state :=
    Some
      {
        clock;
        buf = Array.make (Stdlib.max 1 capacity) null_event;
        head = 0;
        len = 0;
        dropped = 0;
      }

let disable () = state := None
let is_on () = match !state with None -> false | Some _ -> true

let push st ev =
  let cap = Array.length st.buf in
  if st.len = cap then begin
    st.buf.(st.head) <- ev;
    st.head <- (st.head + 1) mod cap;
    st.dropped <- st.dropped + 1
  end
  else begin
    st.buf.((st.head + st.len) mod cap) <- ev;
    st.len <- st.len + 1
  end

let with_span ?(args = []) ~cat ~name f =
  match !state with
  | None -> f ()
  | Some st ->
      push st
        {
          ev_ts = Clock.now st.clock;
          ev_dur = 0;
          ev_ph = Begin;
          ev_cat = cat;
          ev_name = name;
          ev_args = args;
        };
      let finish () =
        push st
          {
            ev_ts = Clock.now st.clock;
            ev_dur = 0;
            ev_ph = End;
            ev_cat = cat;
            ev_name = name;
            ev_args = [];
          }
      in
      (match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e)

let instant ?ts ?(args = []) ~cat name =
  match !state with
  | None -> ()
  | Some st ->
      let ts = match ts with Some t -> t | None -> Clock.now st.clock in
      push st
        { ev_ts = ts; ev_dur = 0; ev_ph = Instant; ev_cat = cat; ev_name = name; ev_args = args }

let complete ~ts ~dur ?(args = []) ~cat name =
  match !state with
  | None -> ()
  | Some st ->
      push st
        { ev_ts = ts; ev_dur = dur; ev_ph = Complete; ev_cat = cat; ev_name = name; ev_args = args }

let counter ?ts ~cat ~name v =
  match !state with
  | None -> ()
  | Some st ->
      let ts = match ts with Some t -> t | None -> Clock.now st.clock in
      push st
        {
          ev_ts = ts;
          ev_dur = 0;
          ev_ph = Counter;
          ev_cat = cat;
          ev_name = name;
          ev_args = [ ("value", Int v) ];
        }

let events () =
  match !state with
  | None -> []
  | Some st ->
      let cap = Array.length st.buf in
      List.init st.len (fun i -> st.buf.((st.head + i) mod cap))

let dropped () = match !state with None -> 0 | Some st -> st.dropped

let reset () =
  match !state with
  | None -> ()
  | Some st ->
      st.head <- 0;
      st.len <- 0;
      st.dropped <- 0

(* ---- export ---- *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let ph_letter = function
  | Begin -> "B"
  | End -> "E"
  | Instant -> "i"
  | Complete -> "X"
  | Counter -> "C"

let json_args b args =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      json_escape b k;
      Buffer.add_string b "\":";
      match v with
      | Int n -> Buffer.add_string b (string_of_int n)
      | Str s ->
          Buffer.add_char b '"';
          json_escape b s;
          Buffer.add_char b '"')
    args;
  Buffer.add_char b '}'

let export_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b "{\"ph\":\"";
      Buffer.add_string b (ph_letter ev.ev_ph);
      Buffer.add_string b "\",\"ts\":";
      Buffer.add_string b (string_of_int ev.ev_ts);
      if ev.ev_ph = Complete then begin
        Buffer.add_string b ",\"dur\":";
        Buffer.add_string b (string_of_int ev.ev_dur)
      end;
      Buffer.add_string b ",\"pid\":1,\"tid\":1,\"cat\":\"";
      json_escape b ev.ev_cat;
      Buffer.add_string b "\",\"name\":\"";
      json_escape b ev.ev_name;
      Buffer.add_string b "\",\"args\":";
      json_args b ev.ev_args;
      Buffer.add_char b '}')
    (events ());
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let text_args b args =
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ' ';
      Buffer.add_string b k;
      Buffer.add_char b '=';
      match v with
      | Int n -> Buffer.add_string b (string_of_int n)
      | Str s -> Buffer.add_string b s)
    args

let export_text () =
  let b = Buffer.create 4096 in
  let indent d =
    for _ = 1 to d do
      Buffer.add_string b "  "
    done
  in
  let depth = ref 0 in
  let stack = ref [] in
  List.iter
    (fun ev ->
      match ev.ev_ph with
      | Begin ->
          Printf.bprintf b "@%-12d " ev.ev_ts;
          indent !depth;
          Printf.bprintf b "> %s:%s" ev.ev_cat ev.ev_name;
          text_args b ev.ev_args;
          Buffer.add_char b '\n';
          stack := ev.ev_ts :: !stack;
          incr depth
      | End ->
          let t0 = match !stack with [] -> ev.ev_ts | t :: rest -> stack := rest; t in
          depth := Stdlib.max 0 (!depth - 1);
          Printf.bprintf b "@%-12d " ev.ev_ts;
          indent !depth;
          Printf.bprintf b "< %s:%s dur=%d\n" ev.ev_cat ev.ev_name (ev.ev_ts - t0)
      | Instant ->
          Printf.bprintf b "@%-12d " ev.ev_ts;
          indent !depth;
          Printf.bprintf b "! %s:%s" ev.ev_cat ev.ev_name;
          text_args b ev.ev_args;
          Buffer.add_char b '\n'
      | Complete ->
          Printf.bprintf b "@%-12d " ev.ev_ts;
          indent !depth;
          Printf.bprintf b "* %s:%s dur=%d" ev.ev_cat ev.ev_name ev.ev_dur;
          text_args b ev.ev_args;
          Buffer.add_char b '\n'
      | Counter ->
          Printf.bprintf b "@%-12d " ev.ev_ts;
          indent !depth;
          Printf.bprintf b "C %s:%s" ev.ev_cat ev.ev_name;
          text_args b ev.ev_args;
          Buffer.add_char b '\n')
    (events ());
  Buffer.contents b
