(** The calibrated cost model.

    Every constant is a virtual-time charge in nanoseconds (or a bandwidth in
    bytes per second).  The values are calibrated so that the composed costs
    land on the measurements the paper reports for its testbed (dual Xeon
    Silver 4116, 4x Intel Optane 900P striped at 64 KiB, 10 GbE); the
    comment next to each constant records the paper anchor it was derived
    from.  See DESIGN.md section 6. *)

(** {1 CPU and memory} *)

val cache_miss : int
(** One memory-latency pointer chase; ~90 ns on the paper's Xeon. *)

val lock_acquire : int
(** Uncontended lock acquire/release pair. *)

val page_copy : int
(** Copying one 4 KiB page within memory (~9 GiB/s streaming). *)

val memory_copy_bandwidth : int
(** Bulk streaming copy bandwidth, bytes/s. *)

(** {1 Virtual memory operations} *)

val cow_mark_page : int
(** Marking one PTE copy-on-write during checkpoint stop.  Anchor: Table 5,
    1 GiB dirty incremental checkpoint = 6.1 ms => ~23 ns/page. *)

val soft_fault : int
(** Page-fault trap + shadow lookup + PTE install, no copy. *)

val cow_fault : int
(** Write fault that allocates and copies a private page into the top
    shadow. *)

val shadow_chain_hop : int
(** Extra object lookup per additional level in a shadow chain. *)

val tlb_shootdown : int
(** Per-checkpoint TLB invalidation broadcast. *)

val ipi_roundtrip : int
(** Forcing all cores of a consistency group to the kernel boundary
    (quiesce).  Anchors the gap between atomic and incremental checkpoints in
    Table 5 together with OS-state serialization. *)

val collapse_page_move : int
(** Moving one page between VM objects during a collapse (hash removal,
    insertion, PTE fixups). *)

(** {1 POSIX object serialization atoms (Table 4 anchors)} *)

val obj_serialize_base : int
(** Locking and copying the fixed fields of one kernel object (~1.2 µs:
    pipes and vnodes checkpoint in ~1.7 µs total). *)

val obj_restore_base : int
(** Recreating one kernel object (~2 µs). *)

val kqueue_per_event : int
(** Per-event lock+copy; 1024 events => ~34 µs (Table 4: 35.2 µs). *)

val sysv_namespace_scan : int
(** Scanning the global System V namespace (Table 4: SysV shm 14.9 µs vs
    POSIX shm 4.5 µs). *)

val devfs_lock : int
(** Device-filesystem locking when recreating a pseudoterminal (Table 4:
    pty restore 30.2 µs). *)

val shm_shadow_setup : int
(** Shadowing a shared-memory object during checkpoint (included in the
    POSIX shm checkpoint figure). *)

val socket_buffer_scan_per_kib : int
(** Parsing a socket buffer for in-flight control messages. *)

val proc_serialize : int
(** Process structure: credentials, pgrp/session links, limits. *)

val thread_serialize : int
(** Thread: signal masks, pending signals, scheduling state. *)

val cpu_state_copy : int
(** Registers off the kernel stack + FPU/vector state. *)

val vm_entry_serialize : int
(** One VM map entry (range, protection, madvise hints, object ref). *)

val vnode_path_lookup : int
(** namei + name-cache lookup; the cost Aurora avoids by referencing inode
    numbers (ablation: bench vnode-by-path). *)

val ckpt_dirty_check : int
(** Comparing one object's generation stamp against the record of its last
    persisted image (a lock + one cache line).  Charged instead of the
    serialize atoms when an incremental checkpoint skips a clean object. *)

(** {1 Orchestrator} *)

val syscall_overhead : int
(** Entering/leaving the kernel for an Aurora API call. *)

val shadow_object_setup : int
(** Interposing one system shadow above a VM object. *)

val ckpt_record_write : int
(** Initiating the on-disk checkpoint record (object-table delta +
    checkpoint descriptor).  Anchor: Table 5 atomic base ~80 µs. *)

val async_flush_setup : int
(** Building the dirty-page list and queueing the asynchronous writes. *)

val orchestrator_barrier : int
(** Serialization barriers across the OS for one consistency-group
    checkpoint (coordinating object writers, section 4.1).  Together with
    quiesce, OS-state serialization and flush setup this composes the
    ~185 us incremental-checkpoint floor of Table 5. *)

val restore_object_link : int
(** Relinking one restored object into the process (fd table slot, map
    entry). *)

(** {1 Storage devices} *)

val nvme_read_latency : int
val nvme_write_latency : int

val nvme_sync_write_latency : int
(** Synchronous write incl. flush; anchor: journal 4 KiB = 28 µs. *)

val nvme_device_bandwidth : int
(** Per-device streaming bandwidth, bytes/s (Optane 900P class). *)

val nvme_stripe_devices : int
(** 4 devices striped at 64 KiB, as in the paper's testbed. *)

val nvme_stripe_size : int

val journal_stream_bandwidth : int
(** Sustained synchronous journal append bandwidth; anchor: 1 GiB journaled
    write = 417 ms => ~2.6 GiB/s. *)

val nvme_max_extent_bytes : int
(** Largest single vectored submission the flush pipeline coalesces (4 MiB,
    1024 blocks): the sweet spot where per-I/O latency has fully amortized
    against the stripe's streaming bandwidth; larger extents are split so
    no single submission monopolizes the device queues. *)

(** {1 Page-granular checkpointing: hashing and compression}

    Charged by the object store's flush path, per page payload, keyed on
    {!Aurora_util.Rle.cls}.  Hashing is xxHash-class single-core
    throughput; compression bandwidths are LZ4-class, split by how hard
    the match finder works per input byte. *)

val page_hash_bandwidth : int
(** Content-hash throughput over the original payload, bytes/s. *)

val compress_zero_bandwidth : int
(** Constant pages: one run, near-memcpy streaming. *)

val compress_text_bandwidth : int
(** Highly repetitive payloads (>=2x reduction). *)

val compress_binary_bandwidth : int
(** Mildly compressible payloads (>=10% reduction). *)

val compress_random_bandwidth : int
(** Incompressible payloads: the early-bailout scan only. *)

val decompress_bandwidth : int
(** Decompression on the read/restore path, bytes/s of original data. *)

(** {1 CRIU and RDB baselines (Table 1 / Table 7 anchors)} *)

val criu_per_object_inference : int
(** Per-kernel-object cost of CRIU's userspace traversal and sharing
    inference (procfs reads, parasite-code injection amortized).  Anchor:
    Table 1 OS-state copy = 49 ms for a 500 MB Redis. *)

val criu_copy_bandwidth : int
(** CRIU page-copy bandwidth while the target is stopped.  Anchor: 413 ms
    for 500 MB => ~1.2 GiB/s. *)

val criu_io_bandwidth : int
(** CRIU image-write bandwidth (no flush).  Anchor: 350 ms for 500 MB. *)

val fork_cow_per_page : int
(** Marking one page COW in fork (Redis RDB; 500 MiB fork stop ~8 ms). *)

val rdb_serialize_bandwidth : int
(** Redis RDB child serialization + write bandwidth.  Anchor: ~300 ms for
    500 MB. *)

(** {1 Network (10 GbE)} *)

val net_one_way_latency : int
(** Application-observed one-way latency over the 10 GbE testbed: NIC,
    interrupt coalescing and both network stacks.  Anchor: Figure 5's
    baseline average of 157 us at 120 kops/s. *)

val net_bandwidth : int
(** Link bandwidth, bytes/s. *)

val net_per_message_cpu : int
(** Socket send/receive CPU cost per message. *)

(** {1 Composite helpers} *)

val copy_time : int -> int
(** [copy_time bytes] at {!memory_copy_bandwidth}. *)

val transfer_time : bandwidth:int -> int -> int
(** [transfer_time ~bandwidth bytes] in nanoseconds. *)
