(** Global mutation log for kernel-object generation stamps.

    Armed only during a speculative checkpoint's soft-quiesce window:
    every generation bump on a kernel object appends a (kind, id) note,
    letting the validator re-serialize the O(mutations) conflict set
    instead of dirty-checking the whole object graph inside the stop
    window.  Process/thread mutations are deliberately not logged; the
    validator diffs [Process.effective_generation] per member instead. *)

val kind_pipe : int
val kind_socket : int
val kind_kqueue : int
val kind_pty : int
val kind_shm : int
val kind_fdesc : int

val arm : unit -> unit
(** Start logging; clears any stale entries. *)

val disarm : unit -> unit
(** Stop logging and drop pending entries. *)

val note : kind:int -> id:int -> unit
(** O(1) when disarmed (a single flag test) so steady-state kernels pay
    nothing for the hook. *)

val drain : unit -> (int * int) list
(** Pending notes since the last drain, deduplicated, oldest first.
    Leaves the log armed. *)

val pending_count : unit -> int
