(** A first-come-first-served queued resource.

    Models a device (an NVMe namespace, a network link, a CPU serving
    requests) that serves one request at a time.  Work submitted while the
    resource is busy queues behind it; the returned completion time reflects
    the queueing delay.  The resource does not advance any clock itself —
    callers decide whether to block (advance the clock to the completion
    time) or to continue and observe the completion later, which is how the
    orchestrator models asynchronous checkpoint flushing. *)

type t

val create : name:string -> t

val name : t -> string

val next_free : t -> int
(** The earliest virtual time at which newly submitted work can start. *)

val busy_until : t -> int
(** Alias of {!next_free}; reads better at call sites that wait for drain. *)

val submit : t -> now:int -> duration:int -> int
(** [submit t ~now ~duration] enqueues work of the given duration at virtual
    time [now] and returns its completion time:
    [max now (next_free t) + duration]. *)

val submit_timed : t -> now:int -> duration:int -> int * int
(** Like {!submit} but returns [(start, completion)] where
    [start = max now (next_free t)] is when this submission's service
    begins.  [start - now] is therefore the queueing delay of {e this}
    submission — the value per-consumer accounting must use.  Deriving it
    from {!busy_until} after the fact conflates it with work other
    consumers queued in the meantime. *)

val reset : t -> unit
(** Forget all queued work (used between benchmark runs). *)
