(* CPU and memory *)
let cache_miss = 90
let lock_acquire = 30
let page_copy = 450
let memory_copy_bandwidth = 9 * 1024 * 1024 * 1024

(* Virtual memory *)
let cow_mark_page = 23
let soft_fault = 1_400
let cow_fault = 2_100
let shadow_chain_hop = 150
let tlb_shootdown = 4_000
let ipi_roundtrip = 6_000
let collapse_page_move = 260

(* POSIX object serialization atoms *)
let obj_serialize_base = 1_200
let obj_restore_base = 2_000
let kqueue_per_event = 33
let sysv_namespace_scan = 10_400
let devfs_lock = 28_200
let shm_shadow_setup = 2_800
let socket_buffer_scan_per_kib = 350
let proc_serialize = 9_000
let thread_serialize = 3_200
let cpu_state_copy = 900
let vm_entry_serialize = 450
let vnode_path_lookup = 11_000
let ckpt_dirty_check = 100

(* Orchestrator *)
let syscall_overhead = 1_500
let shadow_object_setup = 600
let ckpt_record_write = 26_000
let async_flush_setup = 42_000
let orchestrator_barrier = 115_000
let restore_object_link = 700

(* Storage *)
let nvme_read_latency = 10_000
let nvme_write_latency = 12_000
let nvme_sync_write_latency = 26_000
let nvme_device_bandwidth = 2_200 * 1024 * 1024
let nvme_stripe_devices = 4
let nvme_stripe_size = 64 * 1024
let journal_stream_bandwidth = 2_600 * 1024 * 1024
let nvme_max_extent_bytes = 4 * 1024 * 1024

(* CRIU / RDB baselines *)
let criu_per_object_inference = 155_000
let criu_copy_bandwidth = 1_270 * 1024 * 1024
let criu_io_bandwidth = 1_500 * 1024 * 1024
let fork_cow_per_page = 60
let rdb_serialize_bandwidth = 1_750 * 1024 * 1024

(* Page-granular checkpointing: content hashing and compression.
   Hashing is xxHash-class single-core throughput on the paper's Xeon
   Silver; compression bandwidths are LZ4-class, split by how hard the
   match finder has to work per input byte: constant pages stream at
   near-memcpy speed, text compresses at a few hundred MiB/s, binary is
   slower, and incompressible data costs only the early-bailout scan. *)
let page_hash_bandwidth = 12 * 1024 * 1024 * 1024
let compress_zero_bandwidth = 6 * 1024 * 1024 * 1024
let compress_text_bandwidth = 680 * 1024 * 1024
let compress_binary_bandwidth = 410 * 1024 * 1024
let compress_random_bandwidth = 1_900 * 1024 * 1024
let decompress_bandwidth = 2_400 * 1024 * 1024

(* Network *)
let net_one_way_latency = 65_000
let net_bandwidth = 1_150 * 1024 * 1024
let net_per_message_cpu = 2_000

let transfer_time ~bandwidth bytes =
  if bytes <= 0 then 0
  else
    (* ns = bytes / (bytes/s) * 1e9, computed in float to avoid overflow on
       multi-GiB transfers. *)
    int_of_float (float_of_int bytes /. float_of_int bandwidth *. 1e9)

let copy_time bytes = transfer_time ~bandwidth:memory_copy_bandwidth bytes
