(* A global mutation log for kernel-object generation stamps.

   Speculative checkpointing (PhoenixOS-style soft quiesce) serializes
   OS objects while the workload keeps running, then must find the
   objects mutated mid-serialize.  Walking the whole object graph and
   dirty-checking every stamp would put an O(objects) pass back inside
   the stop window — exactly the cost speculation exists to remove — so
   while the log is armed, every generation bump also appends a
   (kind, id) note here.  The checkpointer drains the log to re-serialize
   only the O(mutations) conflict set.

   The log is a process-global singleton like the tracer: generation
   bumps happen deep inside kernel object modules that know nothing
   about machines or groups.  Only one speculation phase is ever in
   flight at a time (the simulation is single-threaded and checkpoints
   are serialized on the virtual clock), and a spurious note from an
   unrelated machine merely costs one redundant dirty check, never
   correctness. *)

(* Kind tags for the note's origin module.  Processes and threads are
   absent on purpose: their mutations fold into
   [Process.effective_generation], which the validator diffs directly
   per group member. *)
let kind_pipe = 1
let kind_socket = 2
let kind_kqueue = 3
let kind_pty = 4
let kind_shm = 5
let kind_fdesc = 6

let armed = ref false
let entries : (int * int) list ref = ref []

let arm () =
  armed := true;
  entries := []

let disarm () =
  armed := false;
  entries := []

let note ~kind ~id = if !armed then entries := (kind, id) :: !entries

(* Drain pending notes (deduplicated, oldest first) without disarming:
   the speculation phase drains repeatedly — refinement rounds, then one
   final drain inside the stop window. *)
let drain () =
  let pending = List.rev !entries in
  entries := [];
  let seen = Hashtbl.create 16 in
  List.filter
    (fun e ->
      if Hashtbl.mem seen e then false
      else begin
        Hashtbl.replace seen e ();
        true
      end)
    pending

let pending_count () = List.length !entries
