(** Virtual time.

    Every simulated machine owns one clock.  Operations on the simulated
    kernel, VM system, object store and devices charge their modeled cost
    against the clock with {!advance}; benchmark harnesses read elapsed
    virtual time with {!now} and {!elapsed_since}.

    Time is an [int] count of nanoseconds, which covers ~292 years on a
    63-bit platform. *)

type t

val create : unit -> t
(** A clock at time 0. *)

val now : t -> int

val advance : t -> int -> unit
(** [advance t ns] moves time forward. [ns] must be non-negative. *)

val advance_to : t -> int -> unit
(** [advance_to t when_] moves time forward to [when_] if it is in the
    future; no-op otherwise.  Used when waiting for an asynchronous device
    completion. *)

val on_advance : t -> (int -> unit) -> unit
(** [on_advance t f] registers a watcher called with the new time after
    every forward move.  The torture harness uses this as a virtual-time
    watchdog: a replay run that spins (for example an unbounded retry loop
    against a persistently failing device) trips the watcher's budget
    instead of hanging the sweep.  Watchers must not advance the clock. *)

val clear_watchers : t -> unit
(** Drop all registered watchers. *)

val elapsed_since : t -> int -> int
(** [elapsed_since t start] is [now t - start]. *)
