type t = { name : string; mutable free_at : int }

let create ~name = { name; free_at = 0 }
let name t = t.name
let next_free t = t.free_at
let busy_until t = t.free_at

let submit_timed t ~now ~duration =
  assert (duration >= 0);
  let start = max now t.free_at in
  let completion = start + duration in
  t.free_at <- completion;
  (start, completion)

let submit t ~now ~duration = snd (submit_timed t ~now ~duration)

let reset t = t.free_at <- 0
