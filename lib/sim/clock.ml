type t = { mutable time : int; mutable watchers : (int -> unit) list }

let create () = { time = 0; watchers = [] }
let now t = t.time

let notify t = List.iter (fun f -> f t.time) t.watchers

let advance t ns =
  assert (ns >= 0);
  if ns > 0 then begin
    t.time <- t.time + ns;
    if t.watchers <> [] then notify t
  end

let advance_to t when_ =
  if when_ > t.time then begin
    t.time <- when_;
    if t.watchers <> [] then notify t
  end

let on_advance t f = t.watchers <- f :: t.watchers
let clear_watchers t = t.watchers <- []
let elapsed_since t start = t.time - start
