module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost
module Store = Aurora_objstore.Store
module Wire = Aurora_objstore.Wire
module Vnode = Aurora_kern.Vnode
module Vfs = Aurora_kern.Vfs
module Page = Aurora_vm.Page

(* The global namespace lock serializes file creation (paper 9.1: "file
   creation in Aurora is unoptimized and currently requires grabbing a
   global lock"). *)
let create_lock_cost = 7_500
let namespace_update_cost = 1_100

type t = {
  st : Store.t;
  names : (string, int) Hashtbl.t;
  vnodes : (int, Vnode.t) Hashtbl.t;
  oids : (int, int) Hashtbl.t; (* inode -> store oid *)
  flushed_gens : (int, int) Hashtbl.t;
      (* inode -> Vnode.generation at last staging; catches metadata-only
         mutations (truncate, link-count changes) that leave no dirty page
         but must restage the vnode's serialized meta *)
  mutable next_inode : int;
  mutable namespace_oid : int;
  mutable namespace_dirty : bool;
}

let create ~store =
  {
    st = store;
    names = Hashtbl.create 256;
    vnodes = Hashtbl.create 256;
    oids = Hashtbl.create 256;
    flushed_gens = Hashtbl.create 256;
    next_inode = 0;
    namespace_oid = 0;
    namespace_dirty = true;
  }

let store t = t.st
let clock t = Store.clock t.st

let lookup t path =
  match Hashtbl.find_opt t.names path with
  | None -> None
  | Some ino -> Hashtbl.find_opt t.vnodes ino

let create_file t path =
  Clock.advance (clock t) (create_lock_cost + namespace_update_cost);
  match lookup t path with
  | Some vn ->
      Vnode.set_size vn 0;
      vn
  | None ->
      t.next_inode <- t.next_inode + 1;
      let vn = Vnode.create ~inode:t.next_inode in
      Vnode.link vn;
      Hashtbl.replace t.vnodes t.next_inode vn;
      Hashtbl.replace t.names path t.next_inode;
      t.namespace_dirty <- true;
      vn

let unlink t path =
  match Hashtbl.find_opt t.names path with
  | None -> false
  | Some ino ->
      Clock.advance (clock t) namespace_update_cost;
      Hashtbl.remove t.names path;
      t.namespace_dirty <- true;
      (match Hashtbl.find_opt t.vnodes ino with
      | Some vn ->
          Vnode.unlink vn;
          (* A closed, fully unlinked vnode is garbage; an open one stays
             reachable through its inode (the hidden reference). *)
          if Vnode.links vn = 0 && Vnode.open_count vn = 0 then begin
            Hashtbl.remove t.vnodes ino;
            Hashtbl.remove t.oids ino;
            Hashtbl.remove t.flushed_gens ino
          end
      | None -> ());
      true

let rename t ~src ~dst =
  match Hashtbl.find_opt t.names src with
  | None -> false
  | Some ino ->
      Clock.advance (clock t) namespace_update_cost;
      Hashtbl.remove t.names src;
      Hashtbl.replace t.names dst ino;
      t.namespace_dirty <- true;
      true

let paths t = Hashtbl.fold (fun p _ acc -> p :: acc) t.names [] |> List.sort compare
let vnode_by_inode t ino = Hashtbl.find_opt t.vnodes ino

let write t vn ~off data =
  Clock.advance (clock t) (Cost.copy_time (String.length data));
  Vnode.write vn ~clock:(clock t) ~off data

let read t vn ~off ~len =
  Clock.advance (clock t) (Cost.copy_time len);
  Vnode.read vn ~clock:(clock t) ~off ~len

let fsync t _vn =
  (* Checkpoint consistency: the data is already (or imminently) part of a
     checkpoint; there is nothing to flush synchronously. *)
  Clock.advance (clock t) Cost.syscall_overhead

let oid_of_inode t ino = Hashtbl.find_opt t.oids ino

let vnode_by_oid t oid =
  Hashtbl.fold
    (fun ino o acc ->
      match acc with
      | Some _ -> acc
      | None -> if o = oid then Hashtbl.find_opt t.vnodes ino else None)
    t.oids None

let oid_for t ino =
  match Hashtbl.find_opt t.oids ino with
  | Some oid -> oid
  | None ->
      let oid = Store.alloc_oid t.st in
      Hashtbl.replace t.oids ino oid;
      oid

let serialize_namespace t =
  let w = Wire.writer () in
  Wire.list w
    (fun (path, ino) ->
      Wire.str w path;
      Wire.u64 w ino)
    (Hashtbl.fold (fun p i acc -> (p, i) :: acc) t.names [] |> List.sort compare);
  Wire.u64 w t.next_inode;
  Bytes.to_string (Wire.contents w)

let serialize_vnode_meta vn =
  let w = Wire.writer () in
  Wire.u64 w (Vnode.inode vn);
  Wire.u64 w (Vnode.size vn);
  Wire.u32 w (Vnode.links vn);
  Bytes.to_string (Wire.contents w)

let flush_to_store t =
  if t.namespace_dirty then begin
    if t.namespace_oid = 0 then t.namespace_oid <- Store.alloc_oid t.st;
    Store.put_object t.st ~oid:t.namespace_oid ~kind:"fs.namespace"
      ~meta:(serialize_namespace t);
    t.namespace_dirty <- false
  end;
  (* Stage every vnode with dirty pages — by inode number, not path, so no
     name lookups happen in the stop window.  Unlinked-but-open vnodes are
     in [t.vnodes] and therefore included. *)
  Hashtbl.iter
    (fun ino vn ->
      let dirty = Vnode.take_dirty vn in
      if
        dirty <> []
        || (not (Hashtbl.mem t.oids ino))
        || Hashtbl.find_opt t.flushed_gens ino <> Some (Vnode.generation vn)
      then begin
        let oid = oid_for t ino in
        Hashtbl.replace t.flushed_gens ino (Vnode.generation vn);
        Store.put_object t.st ~oid ~kind:"fs.vnode" ~meta:(serialize_vnode_meta vn);
        let pages =
          List.filter_map
            (fun idx ->
              match Vnode.page vn idx with
              | Some p -> Some (idx, Page.blit_payload p)
              | None -> None)
            dirty
        in
        Store.put_pages t.st ~oid pages
      end)
    t.vnodes

let restore_from_store ~store ~epoch =
  let t = create ~store in
  let objects = Store.objects_at store ~epoch in
  (* Namespace first: paths and the inode allocator. *)
  List.iter
    (fun (oid, kind) ->
      if kind = "fs.namespace" then begin
        t.namespace_oid <- oid;
        let r = Wire.reader (Bytes.of_string (Store.read_meta store ~epoch ~oid)) in
        let entries =
          Wire.rlist r (fun r ->
              let path = Wire.rstr r in
              let ino = Wire.ru64 r in
              (path, ino))
        in
        t.next_inode <- Wire.ru64 r;
        List.iter (fun (path, ino) -> Hashtbl.replace t.names path ino) entries
      end)
    objects;
  (* Vnodes: metadata, link counts and page contents. *)
  List.iter
    (fun (oid, kind) ->
      if kind = "fs.vnode" then begin
        let r = Wire.reader (Bytes.of_string (Store.read_meta store ~epoch ~oid)) in
        let ino = Wire.ru64 r in
        let size = Wire.ru64 r in
        let links = Wire.ru32 r in
        let vn = Vnode.create ~inode:ino in
        for _ = 1 to links do
          Vnode.link vn
        done;
        List.iter
          (fun (idx, payload) -> Vnode.load_page vn idx payload)
          (Store.read_pages store ~epoch ~oid);
        Vnode.set_size vn size;
        ignore (Vnode.take_dirty vn);
        Hashtbl.replace t.vnodes ino vn;
        Hashtbl.replace t.oids ino oid;
        Hashtbl.replace t.flushed_gens ino (Vnode.generation vn);
        t.namespace_dirty <- false
      end)
    objects;
  t

let mark_open_after_restore t ino =
  match Hashtbl.find_opt t.vnodes ino with
  | Some vn -> Vnode.opened vn
  | None -> ()

let vfs_ops t =
  {
    Vfs.lookup = lookup t;
    create = create_file t;
    unlink = unlink t;
    fsync = (fun vn -> fsync t vn);
    sync_cost = (fun () -> Cost.syscall_overhead);
  }
