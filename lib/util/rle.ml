(* Byte-level run-length coding for checkpoint page payloads, plus the
   compressibility classifier the cost model keys on.

   The store compresses page payloads on the flush path; the transform
   must be exactly invertible (restore and the deep-verify pass re-CRC
   the original bytes) and must never grow a stored payload — callers
   get [None] when coding wins nothing and write the raw bytes with the
   flag bit clear.

   Encoding: a sequence of (count, byte) pairs, count in 1..255.  That
   is a factor-2 expansion worst case, which [compress] hides by
   refusing to emit anything not strictly smaller than the input. *)

type cls = Zero | Text | Binary | Random

let cls_name = function
  | Zero -> "zero"
  | Text -> "text"
  | Binary -> "binary"
  | Random -> "random"

(* Number of maximal byte runs, counting a >255 run once per 255-byte
   chunk (what the encoder will actually emit). *)
let runs b =
  let n = Bytes.length b in
  if n = 0 then 0
  else begin
    let runs = ref 0 in
    let i = ref 0 in
    while !i < n do
      let c = Bytes.unsafe_get b !i in
      let j = ref !i in
      while !j < n && Bytes.unsafe_get b !j = c && !j - !i < 255 do
        incr j
      done;
      incr runs;
      i := !j
    done;
    !runs
  end

let classify b =
  let n = Bytes.length b in
  if n = 0 then Zero
  else begin
    let first = Bytes.unsafe_get b 0 in
    let constant = ref true in
    (try
       for i = 1 to n - 1 do
         if Bytes.unsafe_get b i <> first then begin
           constant := false;
           raise Exit
         end
       done
     with Exit -> ());
    if !constant then Zero
    else
      (* Estimated coded size is 2 bytes per run. *)
      let est = 2 * runs b in
      if est * 2 <= n then Text
      else if est * 10 <= n * 9 then Binary
      else Random
  end

let compress b =
  let n = Bytes.length b in
  if n = 0 then None
  else begin
    let out = Buffer.create (n / 4) in
    let i = ref 0 in
    (try
       while !i < n do
         let c = Bytes.unsafe_get b !i in
         let j = ref !i in
         while !j < n && Bytes.unsafe_get b !j = c && !j - !i < 255 do
           incr j
         done;
         Buffer.add_char out (Char.chr (!j - !i));
         Buffer.add_char out c;
         if Buffer.length out >= n then raise Exit;
         i := !j
       done;
       Some (Buffer.to_bytes out)
     with Exit -> None)
  end

let decompress ~olen c =
  let out = Bytes.create olen in
  let n = Bytes.length c in
  if n land 1 <> 0 then invalid_arg "Rle.decompress: odd coded length";
  let pos = ref 0 in
  let i = ref 0 in
  while !i < n do
    let count = Char.code (Bytes.unsafe_get c !i) in
    let byte = Bytes.unsafe_get c (!i + 1) in
    if count = 0 || !pos + count > olen then
      invalid_arg "Rle.decompress: coded stream contradicts olen";
    Bytes.unsafe_fill out !pos count byte;
    pos := !pos + count;
    i := !i + 2
  done;
  if !pos <> olen then invalid_arg "Rle.decompress: short coded stream";
  out
