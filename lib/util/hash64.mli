(** 64-bit-class content hash (FNV-1a folded into a 62-bit native int).

    Used as the content key of the object store's page-dedup index and
    as the per-page digest inside manifest fingerprints.  Values are
    always in [0, 2^62), so they serialize through [Wire.u64] and
    compare as plain ints. *)

val of_bytes : bytes -> int
(** Hash of a byte buffer's full contents. *)

val of_string : string -> int
(** [of_string s] = [of_bytes (Bytes.of_string s)], without the copy. *)

val pair : int -> int -> int
(** [pair a b] hashes the ordered pair [(a, b)]; distinct pairs map to
    well-distributed values, so an XOR fold of [pair idx digest] over a
    page set is order-independent yet sensitive to duplicates. *)

val combine : int -> int -> int
(** [combine h v] folds [v] into running hash [h] (order-sensitive). *)
