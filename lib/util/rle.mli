(** Run-length coding for checkpoint page payloads.

    The object store compresses page payloads on the flush path and the
    cost model charges compression time by compressibility class; both
    live here so the transform and its classifier cannot drift apart. *)

type cls = Zero | Text | Binary | Random
    (** Compressibility class: [Zero] is a constant page (one run),
        [Text] codes to at most half size, [Binary] wins at least 10%,
        [Random] is not worth coding. *)

val cls_name : cls -> string

val classify : bytes -> cls

val compress : bytes -> bytes option
(** [Some coded] iff the coded form is strictly smaller than the input;
    [None] means "store raw".  Empty input is never coded. *)

val decompress : olen:int -> bytes -> bytes
(** Inverse of [compress]; [olen] is the original length recorded in
    the leaf entry.  Raises [Invalid_argument] on a stream that does
    not decode to exactly [olen] bytes. *)
