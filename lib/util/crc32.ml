(* Table-driven CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) —
   the checksum the checkpoint manifests and replication frames carry. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc b ~pos ~len =
  let t = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let of_bytes ?(crc = 0) b = update crc b ~pos:0 ~len:(Bytes.length b)
let of_string ?(crc = 0) s = of_bytes ~crc (Bytes.unsafe_of_string s)
