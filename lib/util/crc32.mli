(** CRC-32 (IEEE, polynomial 0xEDB88320), table-driven.

    Used by the object store's per-page leaf checksums, the checkpoint
    manifests, and the replication frame trailers.  Values fit in 32 bits
    and are returned as non-negative [int]s. *)

val of_string : ?crc:int -> string -> int
(** [of_string s] is the CRC-32 of [s]; [?crc] continues a running
    checksum (so [of_string ~crc:(of_string a) b = of_string (a ^ b)]). *)

val of_bytes : ?crc:int -> bytes -> int

val update : int -> bytes -> pos:int -> len:int -> int
(** Fold a byte range into a running checksum. *)
