(** Sample accumulation and percentile reporting.

    Used by the benchmark harness for latency distributions and by tests for
    statistical assertions.  Samples are stored exactly (growable array), so
    percentiles are exact order statistics rather than bucket approximations;
    the workloads in this repository produce at most a few million samples. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val clear : t -> unit

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a
(** Fold over the samples in insertion order. *)

val mean : t -> float
(** Mean of the samples; 0 when empty. *)

val stddev : t -> float
(** Population standard deviation; 0 when empty. *)

val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0, 100]; nearest-rank order statistic.
    Returns 0 when empty. *)

val percentile_interp : t -> float -> float
(** [percentile_interp t p] with [p] clamped to [0, 100]; linear
    interpolation between the closest order statistics (inclusive
    method), so [p = 0] is the minimum and [p = 100] the maximum even
    for single-sample histograms.  Returns 0 when empty.  Used by the
    observability metrics registry; {!percentile} keeps the historical
    nearest-rank semantics. *)

val merge : t -> t -> unit
(** [merge dst src] adds all samples from [src] into [dst]. *)
