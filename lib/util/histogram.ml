type t = {
  mutable samples : float array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { samples = Array.make 1024 0.0; len = 0; sorted = true }

let add t x =
  if t.len = Array.length t.samples then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.samples 0 bigger 0 t.len;
    t.samples <- bigger
  end;
  t.samples.(t.len) <- x;
  t.len <- t.len + 1;
  t.sorted <- false

let count t = t.len

let clear t =
  t.len <- 0;
  t.sorted <- true

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.samples.(i)
  done;
  !acc

let mean t =
  if t.len = 0 then 0.0 else fold ( +. ) 0.0 t /. float_of_int t.len

let stddev t =
  if t.len = 0 then 0.0
  else begin
    let m = mean t in
    let sq = fold (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 t in
    sqrt (sq /. float_of_int t.len)
  end

let min t = if t.len = 0 then 0.0 else fold Stdlib.min infinity t
let max t = if t.len = 0 then 0.0 else fold Stdlib.max neg_infinity t

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.len in
    Array.sort compare live;
    Array.blit live 0 t.samples 0 t.len;
    t.sorted <- true
  end

let percentile t p =
  if t.len = 0 then 0.0
  else begin
    ensure_sorted t;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.len)) in
    let idx = Stdlib.max 0 (Stdlib.min (t.len - 1) (rank - 1)) in
    t.samples.(idx)
  end

let percentile_interp t p =
  if t.len = 0 then 0.0
  else begin
    ensure_sorted t;
    let p = Stdlib.max 0.0 (Stdlib.min 100.0 p) in
    if t.len = 1 then t.samples.(0)
    else begin
      (* Linear interpolation between closest order statistics
         (inclusive method): rank p maps onto [0, len-1] exactly, so
         p0 is the minimum and p100 the maximum with no clamping
         artifacts on tiny sample sets. *)
      let rank = p /. 100.0 *. float_of_int (t.len - 1) in
      let lo = int_of_float (floor rank) in
      let hi = Stdlib.min (t.len - 1) (lo + 1) in
      let frac = rank -. float_of_int lo in
      t.samples.(lo) +. (frac *. (t.samples.(hi) -. t.samples.(lo)))
    end
  end

let merge dst src =
  for i = 0 to src.len - 1 do
    add dst src.samples.(i)
  done
