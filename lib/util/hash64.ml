(* 64-bit-class content hash, FNV-1a style, folded into OCaml's native
   int.  Values are masked to 62 bits so they stay non-negative and
   round-trip through Wire.u64 unchanged on every host.

   This replaces the ad-hoc CRC/XOR page fingerprints: XOR-folding raw
   CRCs is order-insensitive *and* cancels duplicate pages (two pages
   with equal content contribute nothing), which made the old
   fingerprint blind to exactly the states a dedup store produces.
   [pair] mixes the page index into the per-page digest first, so the
   XOR fold over a page set stays order-independent (required by the
   incremental manifest-row delta maintenance) while duplicate page
   contents at different indices no longer cancel. *)

let mask = (1 lsl 62) - 1

(* FNV prime; fits comfortably in 62 bits. *)
let prime = 0x100000001B3

(* Arbitrary non-zero 62-bit seed (FNV offset basis truncated). *)
let seed = 0xBF29CE484222325

let of_bytes b =
  let h = ref seed in
  for i = 0 to Bytes.length b - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * prime land mask
  done;
  !h

let of_string s = of_bytes (Bytes.unsafe_of_string s)

(* splitmix-style finalizer keeps single-bit input differences from
   producing correlated outputs under XOR folding. *)
let finalize h =
  let h = h lxor (h lsr 30) in
  let h = h * 0x3F58476D1CE4E5B9 land mask in
  let h = h lxor (h lsr 27) in
  let h = h * 0x14D049BB133111EB land mask in
  h lxor (h lsr 31)

let pair a b =
  let h = (seed lxor (a land mask)) * prime land mask in
  let h = (h lxor (b land mask)) * prime land mask in
  finalize h

let combine h v = finalize ((h lxor (v land mask)) * prime land mask)
