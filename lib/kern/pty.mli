(** Pseudoterminals: a master/slave byte-queue pair plus terminal state.

    Restore must recreate the virtual device in the device filesystem,
    which requires devfs locking — the reason ptys are the slowest POSIX
    object to restore in Table 4. *)

type termios = {
  mutable echo : bool;
  mutable canonical : bool;
  mutable baud : int;
}

type t

val create : unit -> t
val id : t -> int
val unit_number : t -> int
(** The /dev/pts/N number. *)

val termios : t -> termios

val set_termios : t -> echo:bool -> canonical:bool -> baud:int -> unit
(** Replace the terminal settings, bumping the generation stamp.  Prefer
    this over mutating the [termios] record directly: direct mutation
    leaves the stamp stale and incremental checkpoints would persist the
    old settings. *)

val generation : t -> int
(** Monotonic mutation stamp over the serialized image (termios + both
    byte queues). *)

val touch : t -> unit

val master_write : t -> string -> unit
(** Bytes typed at the master appear on the slave's input. *)

val slave_read : t -> len:int -> string
val slave_write : t -> string -> unit
val master_read : t -> len:int -> string

val in_buffered : t -> string
val out_buffered : t -> string
val refill : t -> input:string -> output:string -> unit
