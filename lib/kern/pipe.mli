(** Pipes: a bounded in-kernel byte queue with a read end and a write end. *)

type t

val capacity : int
(** 64 KiB, as in FreeBSD. *)

val create : unit -> t
val id : t -> int

val generation : t -> int
(** Monotonic mutation stamp: bumped by every state change that would alter
    the serialized image (writes, reads, end closes).  Incremental
    checkpoints skip re-serializing a pipe whose stamp matches the last
    persisted one. *)

val touch : t -> unit
(** Bump the generation stamp explicitly. *)

val write : t -> string -> int
(** Append up to the free space; returns the number of bytes accepted. *)

val read : t -> len:int -> string
(** Consume up to [len] buffered bytes (may be empty). *)

val buffered : t -> int
val peek_all : t -> string
(** Buffered contents without consuming (checkpoint serialization). *)

val refill : t -> string -> unit
(** Replace the buffer contents (restore path). *)

val close_read : t -> unit
val close_write : t -> unit
val read_open : t -> bool
val write_open : t -> bool

val unstamped_poke_for_tests : t -> string -> unit
(** Replace the buffered bytes WITHOUT bumping the generation — a deliberate
    violation of the stamp discipline, for negative-control tests only. *)
