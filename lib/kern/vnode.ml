module Clock = Aurora_sim.Clock
module Page = Aurora_vm.Page
module Vm_object = Aurora_vm.Vm_object

type t = {
  ino : int;
  vobj : Vm_object.t;
  mutable bytes : int;
  mutable nlinks : int;
  mutable nopen : int;
  dirty : (int, unit) Hashtbl.t; (* page indices written since last flush *)
  mutable gen : int;
}

let create ~inode =
  {
    ino = inode;
    vobj = Vm_object.create (Vm_object.Vnode_backed inode);
    bytes = 0;
    nlinks = 0;
    nopen = 0;
    dirty = Hashtbl.create 16;
    gen = 0;
  }

let inode t = t.ino
let backing t = t.vobj
let size t = t.bytes
let generation t = t.gen
let touch t = t.gen <- t.gen + 1

let set_size t n =
  if t.bytes <> n then touch t;
  t.bytes <- n

let links t = t.nlinks

let link t =
  t.nlinks <- t.nlinks + 1;
  touch t

let unlink t =
  assert (t.nlinks > 0);
  t.nlinks <- t.nlinks - 1;
  touch t

let open_count t = t.nopen
let opened t = t.nopen <- t.nopen + 1

let closed t =
  assert (t.nopen > 0);
  t.nopen <- t.nopen - 1

let is_anonymous t = t.nlinks = 0 && t.nopen > 0

let page_of t idx =
  match Vm_object.find_local t.vobj idx with
  | Some p -> p
  | None ->
      (* File pages carry the faithful full-size payload: file contents
         must survive read/write round trips byte for byte. *)
      let p = Page.alloc_full () in
      Vm_object.insert_page t.vobj idx p;
      p

let read t ~clock ~off ~len =
  ignore clock;
  let len = max 0 (min len (t.bytes - off)) in
  String.init len (fun i ->
      let pos = off + i in
      Page.get (page_of t (pos / Page.logical_size)) (pos mod Page.logical_size))

let write t ~clock ~off data =
  ignore clock;
  String.iteri
    (fun i c ->
      let pos = off + i in
      let idx = pos / Page.logical_size in
      Page.set (page_of t idx) (pos mod Page.logical_size) c;
      Hashtbl.replace t.dirty idx ())
    data;
  t.bytes <- max t.bytes (off + String.length data);
  if String.length data > 0 then touch t

let mark_dirty t idx =
  Hashtbl.replace t.dirty idx ();
  touch t
let dirty_count t = Hashtbl.length t.dirty

let take_dirty t =
  let idxs = Hashtbl.fold (fun idx () acc -> idx :: acc) t.dirty [] in
  Hashtbl.reset t.dirty;
  List.sort compare idxs

let page : t -> int -> Page.t option = fun t idx -> Vm_object.find_local t.vobj idx

let load_page t idx payload =
  let p = page_of t idx in
  Page.load_payload p payload
