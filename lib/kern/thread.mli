(** Kernel threads: CPU state, signal state, scheduling state.

    The register file is real data that round-trips through checkpoints, so
    restore tests can assert bit-exact CPU state.  The [At_boundary] state
    models a thread parked at the kernel/userspace boundary by the quiesce
    IPI; [Sleeping_syscall] threads get interrupted and their program
    counter rewound so the call reissues transparently after restore
    (paper section 5.1, "Quiescing Processes"). *)

type regs = {
  mutable rip : int;
  mutable rsp : int;
  mutable rflags : int;
  gp : int array;  (** 14 general-purpose registers *)
  fpu : bytes;  (** 64 bytes of FPU/vector state *)
}

type run_state =
  | Running_user
  | Running_kernel of string  (** non-sleeping syscall in progress *)
  | Sleeping_syscall of string  (** blocked in e.g. read, poll *)
  | At_boundary  (** quiesced at the kernel/user boundary *)

type t = {
  tid_local : int;
  mutable tid_global : int;
  regs : regs;
  mutable sigmask : int;
  mutable pending_signals : int list;
  mutable priority : int;
  mutable state : run_state;
  mutable syscall_restarts : int;
      (** times a sleeping syscall was transparently restarted *)
  mutable gen : int;
      (** monotonic mutation stamp; use the setters (or [touch]) rather
          than mutating serialized fields in place *)
}

val create : tid:int -> t

val generation : t -> int
(** Monotonic mutation stamp over the serialized image (registers, signal
    mask, pending signals, priority).  The run state is not serialized and
    does not move it. *)

val touch : t -> unit

val set_rip : t -> int -> unit
val set_rsp : t -> int -> unit
val set_sigmask : t -> int -> unit

val post_signal : t -> int -> unit
(** Push a pending signal onto this thread, bumping the stamp. *)

val fresh_regs : unit -> regs

val copy_regs : regs -> regs

val quiesce : t -> clock:Aurora_sim.Clock.t -> unit
(** Force the thread to the boundary: running threads drain their current
    syscall; sleeping syscalls are interrupted and the PC is rewound by the
    length of the syscall instruction so it reissues on resume. *)

val resume : t -> unit

val at_boundary : t -> bool
(** True while the thread is parked at the kernel boundary (between
    quiesce and resume).  A thread at the boundary must not execute:
    the soft-quiesce scheduler asserts this before opening a
    concurrency window. *)

val syscall_insn_len : int
