let capacity = 64 * 1024

type t = {
  pipe_id : int;
  buf : Buffer.t;
  mutable rd_open : bool;
  mutable wr_open : bool;
  mutable gen : int;
}

let next_id = ref 0

let create () =
  incr next_id;
  {
    pipe_id = !next_id;
    buf = Buffer.create 256;
    rd_open = true;
    wr_open = true;
    gen = 0;
  }

let id t = t.pipe_id
let generation t = t.gen
let touch t =
  t.gen <- t.gen + 1;
  Aurora_sim.Genlog.note ~kind:Aurora_sim.Genlog.kind_pipe ~id:t.pipe_id

let write t data =
  let room = capacity - Buffer.length t.buf in
  let n = min room (String.length data) in
  Buffer.add_substring t.buf data 0 n;
  if n > 0 then touch t;
  n

let read t ~len =
  let n = min len (Buffer.length t.buf) in
  let out = Buffer.sub t.buf 0 n in
  let rest = Buffer.sub t.buf n (Buffer.length t.buf - n) in
  Buffer.clear t.buf;
  Buffer.add_string t.buf rest;
  if n > 0 then touch t;
  out

let buffered t = Buffer.length t.buf
let peek_all t = Buffer.contents t.buf

let refill t data =
  Buffer.clear t.buf;
  Buffer.add_string t.buf data;
  touch t

let close_read t =
  t.rd_open <- false;
  touch t

let close_write t =
  t.wr_open <- false;
  touch t

let read_open t = t.rd_open
let write_open t = t.wr_open

(* Test hook: mutate buffered contents WITHOUT bumping the generation, to
   model a kernel subsystem that forgot the stamp discipline.  Incremental
   checkpoints will persist stale state for this pipe; the restore-vs-model
   diff must catch it (negative control in the test suite). *)
let unstamped_poke_for_tests t data =
  Buffer.clear t.buf;
  Buffer.add_string t.buf data
