module Vm_space = Aurora_vm.Vm_space

type state = Alive | Zombie of int

type t = {
  pid_local : int;
  mutable pid_global : int;
  mutable ppid : int;
  mutable pgid : int;
  mutable sid : int;
  mutable name : string;
  mutable threads : Thread.t list;
  fdtable : (int, Fdesc.t) Hashtbl.t;
  mutable next_fd : int;
  space : Vm_space.t;
  mutable proc_state : state;
  mutable children : int list;
  mutable pending_signals : int list;
  mutable ephemeral : bool;
  mutable cwd : string;
  mutable gen : int;
}

let sigchld = 20 (* FreeBSD SIGCHLD *)

let create ~clock ~pid ~tid ~ppid ~name =
  {
    pid_local = pid;
    pid_global = pid;
    ppid;
    pgid = pid;
    sid = pid;
    name;
    threads = [ Thread.create ~tid ];
    fdtable = Hashtbl.create 16;
    next_fd = 0;
    space = Vm_space.create ~clock;
    proc_state = Alive;
    children = [];
    pending_signals = [];
    ephemeral = false;
    cwd = "/";
    gen = 0;
  }

let touch t = t.gen <- t.gen + 1
let generation t = t.gen

(* The serialized process image folds in every thread's CPU/signal state
   and the address-space layout, so the stamp the checkpointer compares is
   the sum of those monotonic counters (a sum of monotonic counters is
   monotonic, and moves whenever any component moves). *)
let effective_generation t =
  List.fold_left
    (fun acc thr -> acc + Thread.generation thr)
    (t.gen + Vm_space.layout_generation t.space)
    t.threads

let set_ephemeral t v =
  if t.ephemeral <> v then touch t;
  t.ephemeral <- v

let set_cwd t path =
  if t.cwd <> path then touch t;
  t.cwd <- path

let set_name t name =
  if t.name <> name then touch t;
  t.name <- name

let alloc_fd t desc =
  let rec free n = if Hashtbl.mem t.fdtable n then free (n + 1) else n in
  let slot = free 0 in
  Hashtbl.replace t.fdtable slot desc;
  touch t;
  slot

let install_fd_at t slot desc =
  (match Hashtbl.find_opt t.fdtable slot with
  | Some old -> Fdesc.release old
  | None -> ());
  Hashtbl.replace t.fdtable slot desc;
  touch t

let fd t slot = Hashtbl.find_opt t.fdtable slot

let close_fd t slot =
  match Hashtbl.find_opt t.fdtable slot with
  | None -> false
  | Some desc ->
      Fdesc.release desc;
      Hashtbl.remove t.fdtable slot;
      touch t;
      true

let fd_count t = Hashtbl.length t.fdtable

let fds t =
  Hashtbl.fold (fun slot desc acc -> (slot, desc) :: acc) t.fdtable []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let main_thread t =
  match t.threads with
  | thr :: _ -> thr
  | [] -> invalid_arg "Process.main_thread: no threads"

let signal t signo =
  if not (List.mem signo t.pending_signals) then begin
    t.pending_signals <- t.pending_signals @ [ signo ];
    touch t
  end

let take_signal t =
  match t.pending_signals with
  | [] -> None
  | signo :: rest ->
      t.pending_signals <- rest;
      touch t;
      Some signo
