(** Kqueues: kernel event queues (FreeBSD's select/poll successor).

    Checkpointing a kqueue must lock and serialize every registered event —
    the reason it is the slowest POSIX object in the paper's Table 4. *)

type filter = Ev_read | Ev_write | Ev_timer | Ev_signal | Ev_proc

type kevent = {
  ident : int;  (** fd, signal number, pid, ... depending on the filter *)
  filter : filter;
  flags : int;
  udata : int;  (** opaque user cookie *)
}

type t

val create : unit -> t
val id : t -> int

val generation : t -> int
(** Monotonic mutation stamp over the registered-event set. *)

val touch : t -> unit

val register : t -> kevent -> unit
val deregister : t -> ident:int -> filter:filter -> unit
val events : t -> kevent list
val event_count : t -> int
val replace_events : t -> kevent list -> unit
(** Restore path. *)
