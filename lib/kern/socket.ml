type domain = Inet | Unix_dom
type proto = Udp | Tcp
type addr = { host : string; port : int }
type msg = { data : string; ctl_fds : int list }

type tcp_state =
  | Tcp_closed
  | Tcp_listening
  | Tcp_established of { mutable snd_seq : int; mutable rcv_seq : int }

type t = {
  sock_id : int;
  dom : domain;
  prot : proto;
  mutable laddr : addr option;
  mutable raddr : addr option;
  mutable opts : (string * int) list;
  mutable state : tcp_state;
  mutable accept_q : t list; (* oldest first *)
  mutable sock_peer : t option;
  recvq : msg Queue.t;
  sendq : msg Queue.t;
  mutable gen : int;
}

let next_id = ref 0

let create dom prot =
  incr next_id;
  {
    sock_id = !next_id;
    dom;
    prot;
    laddr = None;
    raddr = None;
    opts = [];
    state = Tcp_closed;
    accept_q = [];
    sock_peer = None;
    recvq = Queue.create ();
    sendq = Queue.create ();
    gen = 0;
  }

let id t = t.sock_id
let domain t = t.dom
let proto t = t.prot
let generation t = t.gen
let touch t =
  t.gen <- t.gen + 1;
  Aurora_sim.Genlog.note ~kind:Aurora_sim.Genlog.kind_socket ~id:t.sock_id

let bind t a =
  t.laddr <- Some a;
  touch t

let connect t a =
  t.raddr <- Some a;
  touch t

let local_addr t = t.laddr
let remote_addr t = t.raddr

let set_option t k v =
  t.opts <- (k, v) :: List.remove_assoc k t.opts;
  touch t

let options t = t.opts
let tcp_state t = t.state

let set_tcp_state t s =
  t.state <- s;
  touch t

let listen t =
  t.state <- Tcp_listening;
  touch t
let accept_enqueue t conn = t.accept_q <- t.accept_q @ [ conn ]

let accept_dequeue t =
  match t.accept_q with
  | [] -> None
  | conn :: rest ->
      t.accept_q <- rest;
      Some conn

let accept_queue_length t = List.length t.accept_q
let drop_accept_queue t = t.accept_q <- []

let pair a b =
  a.sock_peer <- Some b;
  b.sock_peer <- Some a;
  touch a;
  touch b

let peer t = t.sock_peer

let send t m =
  match t.sock_peer with
  | Some p ->
      Queue.push m p.recvq;
      touch p
  | None ->
      Queue.push m t.sendq;
      touch t

let recv t =
  let m = Queue.take_opt t.recvq in
  (match m with Some _ -> touch t | None -> ());
  m

let recv_buffered t = List.of_seq (Queue.to_seq t.recvq)
let send_buffered t = List.of_seq (Queue.to_seq t.sendq)

let refill t ~recvq ~sendq =
  Queue.clear t.recvq;
  List.iter (fun m -> Queue.push m t.recvq) recvq;
  Queue.clear t.sendq;
  List.iter (fun m -> Queue.push m t.sendq) sendq;
  touch t

let buffered_bytes t =
  let sum q = Queue.fold (fun acc m -> acc + String.length m.data) 0 q in
  sum t.recvq + sum t.sendq
