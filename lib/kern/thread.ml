module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost

type regs = {
  mutable rip : int;
  mutable rsp : int;
  mutable rflags : int;
  gp : int array;
  fpu : bytes;
}

type run_state =
  | Running_user
  | Running_kernel of string
  | Sleeping_syscall of string
  | At_boundary

type t = {
  tid_local : int;
  mutable tid_global : int;
  regs : regs;
  mutable sigmask : int;
  mutable pending_signals : int list;
  mutable priority : int;
  mutable state : run_state;
  mutable syscall_restarts : int;
  mutable gen : int;
}

let syscall_insn_len = 2 (* x86-64 `syscall` *)

let fresh_regs () =
  { rip = 0x400000; rsp = 0x7fff0000; rflags = 0x202; gp = Array.make 14 0; fpu = Bytes.make 64 '\000' }

let copy_regs r =
  { rip = r.rip; rsp = r.rsp; rflags = r.rflags; gp = Array.copy r.gp; fpu = Bytes.copy r.fpu }

let create ~tid =
  {
    tid_local = tid;
    tid_global = tid;
    regs = fresh_regs ();
    sigmask = 0;
    pending_signals = [];
    priority = 120;
    state = Running_user;
    syscall_restarts = 0;
    gen = 0;
  }

let generation t = t.gen
let touch t = t.gen <- t.gen + 1

let set_rip t v =
  t.regs.rip <- v;
  touch t

let set_rsp t v =
  t.regs.rsp <- v;
  touch t

let set_sigmask t v =
  t.sigmask <- v;
  touch t

let post_signal t signo =
  t.pending_signals <- signo :: t.pending_signals;
  touch t

let quiesce t ~clock =
  (match t.state with
  | Running_user | Running_kernel _ | At_boundary -> ()
  | Sleeping_syscall _ ->
      (* Interrupt the sleep and rewind the PC so the call reissues
         immediately when the thread resumes — invisible to userspace,
         unlike delivering SIGSTOP and returning EINTR. *)
      t.regs.rip <- t.regs.rip - syscall_insn_len;
      t.syscall_restarts <- t.syscall_restarts + 1;
      touch t);
  Clock.advance clock Cost.cpu_state_copy;
  t.state <- At_boundary

let resume t = if t.state = At_boundary then t.state <- Running_user
let at_boundary t = t.state = At_boundary
