(** The simulated machine: one kernel instance.

    Owns the virtual clock, the process table, the global shared-memory
    namespaces, the description registry used for SCM_RIGHTS and
    checkpointing, and the mounted file system. *)

type t = {
  clock : Aurora_sim.Clock.t;
  procs : (int, Process.t) Hashtbl.t;  (** keyed by global pid *)
  mutable next_pid : int;
  mutable next_tid : int;
  posix_shm : (string, Shm.t) Hashtbl.t;
  sysv_shm : (int, Shm.t) Hashtbl.t;
  descriptions : (int, Fdesc.t) Hashtbl.t;  (** by [Fdesc.desc_id] *)
  aios : (int, Aio.t * int) Hashtbl.t;
      (** in-flight asynchronous I/O, by [Aio.aio_id]; the second component
          is the issuing process's global pid *)
  aios_by_pid : (int, (int, Aio.t) Hashtbl.t) Hashtbl.t;
      (** secondary index of [aios] keyed by owner pid, maintained by
          [add_aio]/[remove_aio]; lets a consistency group's checkpoint
          visit only its members' AIOs *)
  mutable vfs : Vfs.ops option;
  ncpus : int;
  device_whitelist : string list;
  mutable run_hook : (int -> unit) option;
      (** soft-quiesce scheduling hook; see {!set_run_hook} *)
  mutable hook_depth : int;
  mutable stopped : bool;  (** latched between {!quiesce} and {!resume} *)
}

val create : ?clock:Aurora_sim.Clock.t -> ?ncpus:int -> unit -> t
(** [?clock] shares an existing virtual clock instead of creating a fresh
    one — the multi-tenant fleet runs one machine per tenant on a single
    fleet clock so their checkpoint phases interleave on one timeline. *)

val mount : t -> Vfs.ops -> unit
val vfs_exn : t -> Vfs.ops

val alloc_pid : t -> int
val alloc_tid : t -> int

val register_description : t -> Fdesc.t -> unit
val find_description : t -> int -> Fdesc.t option

val proc : t -> int -> Process.t option
(** By global pid. *)

val proc_by_local_pid : ?scope:Process.t -> t -> int -> Process.t option
(** By the application-visible pid.  Local pids are virtualized per
    consistency group (paper section 5.3), so after restores two
    processes may share one: [?scope] resolves within the caller's
    session first, which is how signals route to the right sibling. *)

val add_proc : t -> Process.t -> unit

val remove_proc : t -> int -> unit
(** Also stamps any process whose parent link pointed at the removed pid:
    its serialized image changes (the parent resolves to nothing). *)

val live_procs : t -> Process.t list

val add_aio : t -> aio:Aio.t -> pid:int -> unit
(** Register an in-flight AIO under its owner, maintaining both the global
    table and the per-pid index. *)

val remove_aio : t -> aio_id:int -> (Aio.t * int) option
(** Unregister; returns the request and its owner pid if it was present. *)

val aios_of_pid : t -> int -> Aio.t list

val quiesce : t -> Process.t list -> unit
(** Drive every thread of the given processes to the kernel boundary:
    one IPI broadcast plus per-thread CPU-state capture. *)

val resume : t -> Process.t list -> unit

val set_run_hook : t -> (int -> unit) option -> unit
(** Install (or clear) the soft-quiesce scheduling hook.  During a
    speculative checkpoint's serialize phase the orchestrator opens
    concurrency windows via {!concurrent_window}; the hook receives the
    window length in virtual ns and may run workload threads — issue
    syscalls, touch memory — exactly as if they had never stopped. *)

val concurrent_window : t -> ns:int -> unit
(** Invoke the run hook for an [ns]-long window.  A no-op while the
    machine is hard-stopped (between {!quiesce} and {!resume}), when no
    hook is installed, or re-entrantly from inside the hook — so the
    workload can never advance inside the stop window. *)

val stopped : t -> bool
(** True between {!quiesce} and {!resume}. *)

val device_allowed : t -> string -> bool
