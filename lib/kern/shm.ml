module Vm_object = Aurora_vm.Vm_object

type kind = Posix_shm of string | Sysv_shm of int

type t = {
  shm_id : int;
  shm_kind : kind;
  pages : int;
  mutable vobj : Vm_object.t;
  mutable gen : int;
}

let next_id = ref 0

let create shm_kind ~npages =
  incr next_id;
  {
    shm_id = !next_id;
    shm_kind;
    pages = npages;
    vobj = Vm_object.create Vm_object.Anonymous;
    gen = 0;
  }

let id t = t.shm_id
let kind t = t.shm_kind
let npages t = t.pages
let backing t = t.vobj
let generation t = t.gen
let touch t =
  t.gen <- t.gen + 1;
  Aurora_sim.Genlog.note ~kind:Aurora_sim.Genlog.kind_shm ~id:t.shm_id

(* No generation bump: system shadowing swings the backmap at EVERY
   checkpoint, but the serialized image names the stable memory-object
   oid, not the transient shadow — stamping here would defeat skipping. *)
let set_backing t o = t.vobj <- o
