type filter = Ev_read | Ev_write | Ev_timer | Ev_signal | Ev_proc
type kevent = { ident : int; filter : filter; flags : int; udata : int }
type t = { kq_id : int; mutable evs : kevent list; mutable gen : int }

let next_id = ref 0

let create () =
  incr next_id;
  { kq_id = !next_id; evs = []; gen = 0 }

let id t = t.kq_id
let generation t = t.gen
let touch t =
  t.gen <- t.gen + 1;
  Aurora_sim.Genlog.note ~kind:Aurora_sim.Genlog.kind_kqueue ~id:t.kq_id

let same_slot a ~ident ~filter = a.ident = ident && a.filter = filter

let register t ev =
  t.evs <- ev :: List.filter (fun e -> not (same_slot e ~ident:ev.ident ~filter:ev.filter)) t.evs;
  touch t

let deregister t ~ident ~filter =
  t.evs <- List.filter (fun e -> not (same_slot e ~ident ~filter)) t.evs;
  touch t

let events t = t.evs
let event_count t = List.length t.evs

let replace_events t evs =
  t.evs <- evs;
  touch t
