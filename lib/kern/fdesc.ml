type kind =
  | Vnode_file of { vn : Vnode.t; mutable offset : int; mutable append : bool }
  | Pipe_read of Pipe.t
  | Pipe_write of Pipe.t
  | Socket_fd of Socket.t
  | Kqueue_fd of Kqueue.t
  | Pty_master_fd of Pty.t
  | Pty_slave_fd of Pty.t
  | Shm_fd of Shm.t
  | Device_fd of string

type t = {
  desc_id : int;
  kind : kind;
  mutable refs : int;
  mutable ext_sync : bool;
  mutable gen : int;
}

let next_id = ref 0

let create kind =
  incr next_id;
  (match kind with
  | Vnode_file { vn; _ } -> Vnode.opened vn
  | Pipe_read _ | Pipe_write _ | Socket_fd _ | Kqueue_fd _ | Pty_master_fd _
  | Pty_slave_fd _ | Shm_fd _ | Device_fd _ ->
      ());
  { desc_id = !next_id; kind; refs = 1; ext_sync = true; gen = 0 }

let generation t = t.gen
let touch t =
  t.gen <- t.gen + 1;
  Aurora_sim.Genlog.note ~kind:Aurora_sim.Genlog.kind_fdesc ~id:t.desc_id

let set_ext_sync t v =
  if t.ext_sync <> v then touch t;
  t.ext_sync <- v

let set_offset t off =
  match t.kind with
  | Vnode_file f ->
      if f.offset <> off then touch t;
      f.offset <- off
  | _ -> invalid_arg "Fdesc.set_offset: not a vnode-backed description"

(* Reference counting is fd-table bookkeeping, not serialized state: no
   stamp.  (When refs hits zero the description stops being checkpointed
   altogether.) *)
let retain t = t.refs <- t.refs + 1

let release t =
  assert (t.refs > 0);
  t.refs <- t.refs - 1;
  if t.refs = 0 then
    match t.kind with
    | Vnode_file { vn; _ } -> Vnode.closed vn
    | Pipe_read p -> Pipe.close_read p
    | Pipe_write p -> Pipe.close_write p
    | Socket_fd _ | Kqueue_fd _ | Pty_master_fd _ | Pty_slave_fd _ | Shm_fd _
    | Device_fd _ ->
        ()

let kind_name t =
  match t.kind with
  | Vnode_file _ -> "vnode"
  | Pipe_read _ -> "pipe(r)"
  | Pipe_write _ -> "pipe(w)"
  | Socket_fd _ -> "socket"
  | Kqueue_fd _ -> "kqueue"
  | Pty_master_fd _ -> "pty(m)"
  | Pty_slave_fd _ -> "pty(s)"
  | Shm_fd _ -> "shm"
  | Device_fd _ -> "device"
