module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost
module Vm_map = Aurora_vm.Vm_map
module Vm_space = Aurora_vm.Vm_space
module Vm_object = Aurora_vm.Vm_object

exception Err of string

let err name = raise (Err name)

let charge m ns = Clock.advance m.Machine.clock ns
let syscall m = charge m Cost.syscall_overhead

let fd_exn p slot =
  match Process.fd p slot with Some d -> d | None -> err "EBADF"

let register m desc =
  Machine.register_description m desc;
  desc

(* Processes ------------------------------------------------------------- *)

let spawn m ~name =
  syscall m;
  let pid = Machine.alloc_pid m in
  let tid = Machine.alloc_tid m in
  let p = Process.create ~clock:m.Machine.clock ~pid ~tid ~ppid:0 ~name in
  Machine.add_proc m p;
  p

let fork m p =
  syscall m;
  let pid = Machine.alloc_pid m in
  let tid = Machine.alloc_tid m in
  (* Page-table duplication and COW marking dominate fork's cost; this is
     the stop time Redis' RDB snapshot pays (Table 7). *)
  let writable_pages = Vm_space.dirty_top_pages p.Process.space in
  charge m (writable_pages * Cost.fork_cow_per_page);
  let child_space = Vm_space.fork p.Process.space in
  let child : Process.t =
    {
      pid_local = pid;
      pid_global = pid;
      ppid = p.Process.pid_global;
      pgid = p.Process.pgid;
      sid = p.Process.sid;
      name = p.Process.name;
      threads = [ Thread.create ~tid ];
      fdtable = Hashtbl.create 16;
      next_fd = 0;
      space = child_space;
      proc_state = Process.Alive;
      children = [];
      pending_signals = [];
      ephemeral = false;
      cwd = p.Process.cwd;
      gen = 0;
    }
  in
  (* fork shares descriptions: both fd tables point at the same objects,
     so offsets move in lockstep — the sharing Table 4's vnode discussion
     centers on. *)
  List.iter
    (fun (slot, desc) ->
      Fdesc.retain desc;
      Hashtbl.replace child.Process.fdtable slot desc)
    (Process.fds p);
  (* The fork duplicates the main thread's register file in the child. *)
  (match (p.Process.threads, child.Process.threads) with
  | parent_thr :: _, child_thr :: _ ->
      let r = Thread.copy_regs parent_thr.Thread.regs in
      child_thr.Thread.regs.Thread.rip <- r.Thread.rip;
      child_thr.Thread.regs.Thread.rsp <- r.Thread.rsp;
      child_thr.Thread.regs.Thread.rflags <- r.Thread.rflags;
      Array.blit r.Thread.gp 0 child_thr.Thread.regs.Thread.gp 0
        (Array.length r.Thread.gp);
      Bytes.blit r.Thread.fpu 0 child_thr.Thread.regs.Thread.fpu 0
        (Bytes.length r.Thread.fpu)
  | _ -> ());
  p.Process.children <- child.pid_global :: p.Process.children;
  Machine.add_proc m child;
  child

let exit m p ~code =
  syscall m;
  List.iter (fun (slot, _) -> ignore (Process.close_fd p slot)) (Process.fds p);
  p.Process.proc_state <- Process.Zombie code;
  match Machine.proc m p.Process.ppid with
  | Some parent -> Process.signal parent Process.sigchld
  | None -> Machine.remove_proc m p.Process.pid_global

let waitpid m p =
  syscall m;
  let zombie =
    List.find_opt
      (fun pid ->
        match Machine.proc m pid with
        | Some c -> c.Process.proc_state <> Process.Alive
        | None -> false)
      p.Process.children
  in
  match zombie with
  | None -> None
  | Some pid ->
      let child = Option.get (Machine.proc m pid) in
      let status =
        match child.Process.proc_state with
        | Process.Zombie code -> code
        | Process.Alive -> assert false
      in
      p.Process.children <- List.filter (fun c -> c <> pid) p.Process.children;
      Machine.remove_proc m pid;
      Some (pid, status)

let spawn_thread m p =
  syscall m;
  let thr = Thread.create ~tid:(Machine.alloc_tid m) in
  p.Process.threads <- p.Process.threads @ [ thr ];
  Process.touch p;
  thr

let setsid p =
  p.Process.sid <- p.Process.pid_local;
  p.Process.pgid <- p.Process.pid_local;
  Process.touch p

let setpgid p ~pgid =
  p.Process.pgid <- pgid;
  Process.touch p

let kill ?by m ~pid ~signo =
  match Machine.proc_by_local_pid ?scope:by m pid with
  | Some p ->
      Process.signal p signo;
      true
  | None -> false

(* Files ------------------------------------------------------------------ *)

let open_file m p ~path ~create =
  syscall m;
  let vfs = Machine.vfs_exn m in
  let vn =
    match vfs.Vfs.lookup path with
    | Some vn -> vn
    | None -> if create then vfs.Vfs.create path else err "ENOENT"
  in
  let desc =
    register m (Fdesc.create (Fdesc.Vnode_file { vn; offset = 0; append = false }))
  in
  Process.alloc_fd p desc

let close p slot = if not (Process.close_fd p slot) then err "EBADF"

let read m p ~fd ~len =
  syscall m;
  let desc = fd_exn p fd in
  match desc.Fdesc.kind with
  | Fdesc.Vnode_file f ->
      let data = Vnode.read f.vn ~clock:m.Machine.clock ~off:f.offset ~len in
      Fdesc.set_offset desc (f.offset + String.length data);
      data
  | Fdesc.Pipe_read pipe -> Pipe.read pipe ~len
  | Fdesc.Pty_master_fd pty -> Pty.master_read pty ~len
  | Fdesc.Pty_slave_fd pty -> Pty.slave_read pty ~len
  | Fdesc.Socket_fd s -> (
      match Socket.recv s with Some msg -> msg.Socket.data | None -> "")
  | Fdesc.Pipe_write _ -> err "EBADF"
  | Fdesc.Kqueue_fd _ | Fdesc.Shm_fd _ | Fdesc.Device_fd _ -> err "EINVAL"

let write m p ~fd data =
  syscall m;
  let desc = fd_exn p fd in
  match desc.Fdesc.kind with
  | Fdesc.Vnode_file f ->
      let off = if f.append then Vnode.size f.vn else f.offset in
      Vnode.write f.vn ~clock:m.Machine.clock ~off data;
      Fdesc.set_offset desc (off + String.length data);
      String.length data
  | Fdesc.Pipe_write pipe -> Pipe.write pipe data
  | Fdesc.Pty_master_fd pty ->
      Pty.master_write pty data;
      String.length data
  | Fdesc.Pty_slave_fd pty ->
      Pty.slave_write pty data;
      String.length data
  | Fdesc.Socket_fd s ->
      Socket.send s { Socket.data; ctl_fds = [] };
      String.length data
  | Fdesc.Pipe_read _ -> err "EBADF"
  | Fdesc.Kqueue_fd _ | Fdesc.Shm_fd _ | Fdesc.Device_fd _ -> err "EINVAL"

let lseek p ~fd ~off =
  let desc = fd_exn p fd in
  match desc.Fdesc.kind with
  | Fdesc.Vnode_file _ ->
      Fdesc.set_offset desc off;
      off
  | Fdesc.Pipe_read _ | Fdesc.Pipe_write _ | Fdesc.Socket_fd _ | Fdesc.Kqueue_fd _
  | Fdesc.Pty_master_fd _ | Fdesc.Pty_slave_fd _ | Fdesc.Shm_fd _
  | Fdesc.Device_fd _ ->
      err "ESPIPE"

let fsync m p ~fd =
  syscall m;
  let desc = fd_exn p fd in
  match desc.Fdesc.kind with
  | Fdesc.Vnode_file f -> (Machine.vfs_exn m).Vfs.fsync f.vn
  | Fdesc.Pipe_read _ | Fdesc.Pipe_write _ | Fdesc.Socket_fd _ | Fdesc.Kqueue_fd _
  | Fdesc.Pty_master_fd _ | Fdesc.Pty_slave_fd _ | Fdesc.Shm_fd _
  | Fdesc.Device_fd _ ->
      err "EINVAL"

let unlink m ~path = (Machine.vfs_exn m).Vfs.unlink path

let dup p ~fd =
  let desc = fd_exn p fd in
  Fdesc.retain desc;
  Process.alloc_fd p desc

let dup2 p ~src ~dst =
  let desc = fd_exn p src in
  Fdesc.retain desc;
  Process.install_fd_at p dst desc

(* Pipes ------------------------------------------------------------------ *)

let pipe m p =
  syscall m;
  let pipe_obj = Pipe.create () in
  let rd = register m (Fdesc.create (Fdesc.Pipe_read pipe_obj)) in
  let wr = register m (Fdesc.create (Fdesc.Pipe_write pipe_obj)) in
  (Process.alloc_fd p rd, Process.alloc_fd p wr)

(* Sockets ---------------------------------------------------------------- *)

let socket m p dom prot =
  syscall m;
  let s = Socket.create dom prot in
  let desc = register m (Fdesc.create (Fdesc.Socket_fd s)) in
  Process.alloc_fd p desc

let socket_of p fd =
  match (fd_exn p fd).Fdesc.kind with
  | Fdesc.Socket_fd s -> s
  | Fdesc.Vnode_file _ | Fdesc.Pipe_read _ | Fdesc.Pipe_write _ | Fdesc.Kqueue_fd _
  | Fdesc.Pty_master_fd _ | Fdesc.Pty_slave_fd _ | Fdesc.Shm_fd _
  | Fdesc.Device_fd _ ->
      err "ENOTSOCK"

let bind p ~fd addr = Socket.bind (socket_of p fd) addr
let listen p ~fd = Socket.listen (socket_of p fd)

let socketpair m p =
  syscall m;
  let a = Socket.create Socket.Unix_dom Socket.Udp in
  let b = Socket.create Socket.Unix_dom Socket.Udp in
  Socket.pair a b;
  let da = register m (Fdesc.create (Fdesc.Socket_fd a)) in
  let db = register m (Fdesc.create (Fdesc.Socket_fd b)) in
  (Process.alloc_fd p da, Process.alloc_fd p db)

(* Find a listening socket bound to [addr] anywhere on the machine. *)
let find_listener m (addr : Socket.addr) =
  Hashtbl.fold
    (fun _ proc acc ->
      match acc with
      | Some _ -> acc
      | None ->
          List.fold_left
            (fun acc (_, d) ->
              match (acc, d.Fdesc.kind) with
              | Some _, _ -> acc
              | None, Fdesc.Socket_fd s
                when Socket.tcp_state s = Socket.Tcp_listening
                     && (match Socket.local_addr s with
                        | Some a -> a.Socket.port = addr.Socket.port
                        | None -> false) ->
                  Some s
              | None, _ -> None)
            None (Process.fds proc))
    m.Machine.procs None

let tcp_connect m p ~fd addr =
  syscall m;
  let client = socket_of p fd in
  match find_listener m addr with
  | None -> false
  | Some listener ->
      Socket.connect client addr;
      (* The SYN lands in the accept queue as a half-open peer socket;
         accept completes the pair. *)
      Socket.accept_enqueue listener client;
      true

let accept m p ~fd =
  syscall m;
  let listener = socket_of p fd in
  if Socket.tcp_state listener <> Socket.Tcp_listening then err "EINVAL";
  match Socket.accept_dequeue listener with
  | None -> None
  | Some client ->
      let conn = Socket.create Socket.Inet Socket.Tcp in
      (match Socket.local_addr listener with
      | Some a -> Socket.bind conn a
      | None -> ());
      Socket.pair conn client;
      let seq = 1000 + Socket.id conn in
      Socket.set_tcp_state conn
        (Socket.Tcp_established { snd_seq = seq; rcv_seq = seq + 1 });
      Socket.set_tcp_state client
        (Socket.Tcp_established { snd_seq = seq + 1; rcv_seq = seq });
      let desc = register m (Fdesc.create (Fdesc.Socket_fd conn)) in
      Some (Process.alloc_fd p desc)

let send_msg m p ~fd ?(fds = []) data =
  syscall m;
  let s = socket_of p fd in
  let ctl_fds =
    List.map
      (fun slot ->
        let desc = fd_exn p slot in
        (* The description travels in the control message; it stays alive
           via an extra reference until received. *)
        Fdesc.retain desc;
        Machine.register_description m desc;
        desc.Fdesc.desc_id)
      fds
  in
  if ctl_fds <> [] && Socket.domain s <> Socket.Unix_dom then err "EINVAL";
  Socket.send s { Socket.data; ctl_fds }

let recv_msg m p ~fd =
  syscall m;
  let s = socket_of p fd in
  match Socket.recv s with
  | None -> None
  | Some msg ->
      let slots =
        List.filter_map
          (fun desc_id ->
            match Machine.find_description m desc_id with
            | Some desc -> Some (Process.alloc_fd p desc)
            | None -> None)
          msg.Socket.ctl_fds
      in
      Some (msg.Socket.data, slots)

(* Kqueues ---------------------------------------------------------------- *)

let kqueue m p =
  syscall m;
  let kq = Kqueue.create () in
  let desc = register m (Fdesc.create (Fdesc.Kqueue_fd kq)) in
  Process.alloc_fd p desc

(* kevent without a timeout: scan the kqueue's registered slots and
   return the ones whose ident (an fd slot in the calling process) is
   ready right now.  Read-readiness means a read would consume data (or
   accept a pending connection) without blocking; write-readiness means
   a write would accept bytes.  Event-loop servers (lib/apps/http_sim)
   dispatch on the returned list. *)
let kevent_poll m p ~fd =
  syscall m;
  match (fd_exn p fd).Fdesc.kind with
  | Fdesc.Kqueue_fd kq ->
      List.filter
        (fun (ev : Kqueue.kevent) ->
          match Process.fd p ev.Kqueue.ident with
          | None -> false
          | Some desc -> (
              match (ev.Kqueue.filter, desc.Fdesc.kind) with
              | Kqueue.Ev_read, Fdesc.Socket_fd s -> (
                  match Socket.tcp_state s with
                  | Socket.Tcp_listening -> Socket.accept_queue_length s > 0
                  | Socket.Tcp_established _ | Socket.Tcp_closed ->
                      Socket.recv_buffered s <> [])
              | Kqueue.Ev_read, Fdesc.Pipe_read pipe -> Pipe.buffered pipe > 0
              | Kqueue.Ev_write, Fdesc.Socket_fd _ -> true
              | Kqueue.Ev_write, Fdesc.Pipe_write pipe ->
                  Pipe.read_open pipe && Pipe.buffered pipe < Pipe.capacity
              | _ -> false))
        (Kqueue.events kq)
  | Fdesc.Vnode_file _ | Fdesc.Pipe_read _ | Fdesc.Pipe_write _ | Fdesc.Socket_fd _
  | Fdesc.Pty_master_fd _ | Fdesc.Pty_slave_fd _ | Fdesc.Shm_fd _
  | Fdesc.Device_fd _ ->
      err "EBADF"

let kevent_register p ~fd ev =
  match (fd_exn p fd).Fdesc.kind with
  | Fdesc.Kqueue_fd kq -> Kqueue.register kq ev
  | Fdesc.Vnode_file _ | Fdesc.Pipe_read _ | Fdesc.Pipe_write _ | Fdesc.Socket_fd _
  | Fdesc.Pty_master_fd _ | Fdesc.Pty_slave_fd _ | Fdesc.Shm_fd _
  | Fdesc.Device_fd _ ->
      err "EBADF"

(* Pseudoterminals --------------------------------------------------------- *)

let posix_openpt m p =
  syscall m;
  let pty = Pty.create () in
  let desc = register m (Fdesc.create (Fdesc.Pty_master_fd pty)) in
  Process.alloc_fd p desc

let open_pty_slave m p ~master_fd =
  syscall m;
  match (fd_exn p master_fd).Fdesc.kind with
  | Fdesc.Pty_master_fd pty ->
      let desc = register m (Fdesc.create (Fdesc.Pty_slave_fd pty)) in
      Process.alloc_fd p desc
  | Fdesc.Vnode_file _ | Fdesc.Pipe_read _ | Fdesc.Pipe_write _ | Fdesc.Socket_fd _
  | Fdesc.Kqueue_fd _ | Fdesc.Pty_slave_fd _ | Fdesc.Shm_fd _ | Fdesc.Device_fd _
    ->
      err "EINVAL"

(* Shared memory ----------------------------------------------------------- *)

let shm_open m p ~name ~npages =
  syscall m;
  let shm =
    match Hashtbl.find_opt m.Machine.posix_shm name with
    | Some shm -> shm
    | None ->
        let shm = Shm.create (Shm.Posix_shm name) ~npages in
        Hashtbl.replace m.Machine.posix_shm name shm;
        shm
  in
  let desc = register m (Fdesc.create (Fdesc.Shm_fd shm)) in
  Process.alloc_fd p desc

let shmget m ~key ~npages =
  match Hashtbl.find_opt m.Machine.sysv_shm key with
  | Some shm -> shm
  | None ->
      let shm = Shm.create (Shm.Sysv_shm key) ~npages in
      Hashtbl.replace m.Machine.sysv_shm key shm;
      shm

let mmap_shm p ~fd =
  match (fd_exn p fd).Fdesc.kind with
  | Fdesc.Shm_fd shm ->
      Vm_space.map_object ~shared:true p.Process.space ~obj:(Shm.backing shm)
        ~obj_pgoff:0 ~npages:(Shm.npages shm) ~prot:Vm_map.prot_rw
  | Fdesc.Vnode_file _ | Fdesc.Pipe_read _ | Fdesc.Pipe_write _ | Fdesc.Socket_fd _
  | Fdesc.Kqueue_fd _ | Fdesc.Pty_master_fd _ | Fdesc.Pty_slave_fd _
  | Fdesc.Device_fd _ ->
      err "EINVAL"

let shmat p shm =
  Vm_space.map_object ~shared:true p.Process.space ~obj:(Shm.backing shm)
    ~obj_pgoff:0 ~npages:(Shm.npages shm) ~prot:Vm_map.prot_rw

(* Memory ------------------------------------------------------------------ *)

let mmap_anon p ~npages =
  Vm_space.map_anonymous p.Process.space ~npages ~prot:Vm_map.prot_rw

let mmap_file p ~fd ~npages =
  match (fd_exn p fd).Fdesc.kind with
  | Fdesc.Vnode_file { vn; _ } ->
      Vm_space.map_object ~shared:true p.Process.space ~obj:(Vnode.backing vn)
        ~obj_pgoff:0 ~npages ~prot:Vm_map.prot_rw
  | Fdesc.Pipe_read _ | Fdesc.Pipe_write _ | Fdesc.Socket_fd _ | Fdesc.Kqueue_fd _
  | Fdesc.Pty_master_fd _ | Fdesc.Pty_slave_fd _ | Fdesc.Shm_fd _
  | Fdesc.Device_fd _ ->
      err "ENODEV"

let munmap p entry = Vm_space.unmap p.Process.space entry

let madvise_dontneed p entry flag =
  ignore p;
  entry.Vm_map.evict_first <- flag

(* Asynchronous I/O --------------------------------------------------------- *)

let aio_completion_delay = 60_000 (* kernel thread wakeup + device *)

let vnode_of p fd =
  match (fd_exn p fd).Fdesc.kind with
  | Fdesc.Vnode_file { vn; _ } -> vn
  | Fdesc.Pipe_read _ | Fdesc.Pipe_write _ | Fdesc.Socket_fd _ | Fdesc.Kqueue_fd _
  | Fdesc.Pty_master_fd _ | Fdesc.Pty_slave_fd _ | Fdesc.Shm_fd _
  | Fdesc.Device_fd _ ->
      err "EINVAL"

let aio_write m p ~fd ~off data =
  syscall m;
  let vn = vnode_of p fd in
  (* The kernel owns the buffer from submission: the data is in the page
     cache immediately; completion is what arrives later. *)
  Vnode.write vn ~clock:m.Machine.clock ~off data;
  let aio =
    Aio.create ~op:Aio.Aio_write ~slot:fd ~off ~len:(String.length data)
      ~done_at:(Clock.now m.Machine.clock + aio_completion_delay)
  in
  Machine.add_aio m ~aio ~pid:p.Process.pid_global;
  Process.touch p;
  aio.Aio.aio_id

let aio_read m p ~fd ~off ~len =
  syscall m;
  let vn = vnode_of p fd in
  let aio =
    Aio.create ~op:Aio.Aio_read ~slot:fd ~off ~len
      ~done_at:(Clock.now m.Machine.clock + aio_completion_delay)
  in
  aio.Aio.result <- Some (Vnode.read vn ~clock:m.Machine.clock ~off ~len);
  Machine.add_aio m ~aio ~pid:p.Process.pid_global;
  Process.touch p;
  aio.Aio.aio_id

let aio_complete m p ~id =
  syscall m;
  ignore p;
  match Machine.remove_aio m ~aio_id:id with
  | None -> err "EINVAL"
  | Some (aio, owner_pid) ->
      Clock.advance_to m.Machine.clock aio.Aio.done_at;
      (* The owner's serialized image lists its in-flight AIOs: completing
         one changes it (the owner may differ from the caller). *)
      (match Machine.proc m owner_pid with
      | Some owner -> Process.touch owner
      | None -> ());
      Option.value ~default:"" aio.Aio.result

let aio_pending m p =
  Machine.aios_of_pid m p.Process.pid_global
  |> List.sort (fun a b -> compare a.Aio.aio_id b.Aio.aio_id)

(* Devices ------------------------------------------------------------------ *)

let open_device m p ~name =
  syscall m;
  if not (Machine.device_allowed m name) then err "EPERM";
  let desc = register m (Fdesc.create (Fdesc.Device_fd name)) in
  Process.alloc_fd p desc
