(** Open-file descriptions (the kernel's [struct file]).

    A description is the object a file-descriptor table slot points at.
    fork and dup make two slots reference the {e same} description (shared
    offset); a second [open] of the same path makes a {e new} description
    over the same vnode (independent offset) — the sharing semantics the
    POSIX object model must reproduce exactly (paper section 5.1). *)

type kind =
  | Vnode_file of { vn : Vnode.t; mutable offset : int; mutable append : bool }
  | Pipe_read of Pipe.t
  | Pipe_write of Pipe.t
  | Socket_fd of Socket.t
  | Kqueue_fd of Kqueue.t
  | Pty_master_fd of Pty.t
  | Pty_slave_fd of Pty.t
  | Shm_fd of Shm.t
  | Device_fd of string  (** whitelisted device, e.g. "hpet0" *)

type t = {
  desc_id : int;
  kind : kind;
  mutable refs : int;  (** fd-table slots referencing this description *)
  mutable ext_sync : bool;
      (** external synchrony enabled ([sls_fdctl]); on by default *)
  mutable gen : int;
      (** monotonic mutation stamp; use the setters below (or [touch])
          rather than mutating serialized fields in place *)
}

val create : kind -> t

val generation : t -> int
(** Monotonic mutation stamp over the serialized image (kind payload —
    offset/append for files — and the ext_sync flag). *)

val touch : t -> unit

val set_ext_sync : t -> bool -> unit
(** Flip external synchrony, bumping the stamp on change. *)

val set_offset : t -> int -> unit
(** Update a vnode-backed description's file offset, bumping the stamp on
    change.  @raise Invalid_argument for other kinds. *)

val retain : t -> unit

val release : t -> unit
(** Decrements; when it reaches zero, closes the underlying object
    (vnode open count, pipe end, ...). *)

val kind_name : t -> string
