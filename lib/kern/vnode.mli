(** Vnodes: the kernel half of files.

    A vnode is shared by every file descriptor open on the same file (each
    `open` gets its own descriptor and offset; all of them reach the same
    vnode).  File data is the page set of the vnode's backing VM object, so
    read/write and mmap share pages — the unification the Aurora object
    store relies on ("memory mapped regions and files are treated
    identically").

    The link count counts directory entries; {!open_count} counts open file
    descriptions.  An anonymous file (open but unlinked) has [links = 0],
    [open_count > 0] — conventional filesystems reclaim it on crash, the
    Aurora FS keeps it alive through a hidden reference (section 5.2). *)

type t

val create : inode:int -> t

val inode : t -> int

val backing : t -> Aurora_vm.Vm_object.t
(** The Vnode_backed VM object holding the file's pages. *)

val size : t -> int
val set_size : t -> int -> unit

val generation : t -> int
(** Monotonic mutation stamp over data and metadata (size, links, page
    contents).  The file system compares it against the stamp of the last
    staged image so metadata-only changes (truncate, link count) restage
    the vnode even when no page is dirty. *)

val touch : t -> unit

val links : t -> int
val link : t -> unit
val unlink : t -> unit

val open_count : t -> int
val opened : t -> unit
val closed : t -> unit

val is_anonymous : t -> bool
(** Open but fully unlinked. *)

val read : t -> clock:Aurora_sim.Clock.t -> off:int -> len:int -> string
(** Read bytes (clamped to the file size). *)

val write : t -> clock:Aurora_sim.Clock.t -> off:int -> string -> unit
(** Write bytes, extending the file if needed, dirtying the pages. *)

val dirty_count : t -> int

val mark_dirty : t -> int -> unit
(** Record page [idx] as modified — used when the MMU dirty bits of a
    memory mapping of this file are harvested at checkpoint time. *)

val take_dirty : t -> int list
(** Page indices written since the last call, sorted; clears the set.  The
    file system uses this to stage only dirty pages into a checkpoint. *)

val page : t -> int -> Aurora_vm.Page.t option
(** Resident page [idx], if any. *)

val load_page : t -> int -> bytes -> unit
(** Install a page payload (restore path). *)
