(** Processes: the unit of the process tree.

    Carries the grouping state POSIX job control needs (process group,
    session), the file-descriptor table (slots point at shared
    {!Fdesc.t} descriptions), the address space, and the thread list.

    PIDs are virtualized exactly as the paper describes (section 5.3):
    [pid_local] is the identifier the application saw at checkpoint time
    and continues to see after restore; [pid_global] is the identifier the
    host kernel allocated, unique machine-wide.  The two coincide until a
    restore makes them diverge. *)

type state = Alive | Zombie of int  (** exit status *)

type t = {
  pid_local : int;
  mutable pid_global : int;
  mutable ppid : int;  (** global pid of the parent *)
  mutable pgid : int;
  mutable sid : int;
  mutable name : string;
  mutable threads : Thread.t list;
  fdtable : (int, Fdesc.t) Hashtbl.t;
  mutable next_fd : int;
  space : Aurora_vm.Vm_space.t;
  mutable proc_state : state;
  mutable children : int list;  (** global pids, newest first *)
  mutable pending_signals : int list;
  mutable ephemeral : bool;
      (** part of a consistency group but not persisted (worker processes
          the application recreates; restore sends the parent SIGCHLD) *)
  mutable cwd : string;
  mutable gen : int;
      (** monotonic mutation stamp; bump via [touch] (or the setters) at
          every mutation that changes the serialized image *)
}

val create :
  clock:Aurora_sim.Clock.t -> pid:int -> tid:int -> ppid:int -> name:string -> t

val touch : t -> unit
val generation : t -> int

val effective_generation : t -> int
(** Stamp over the full serialized process image: the process's own stamp
    plus every thread's stamp plus the address-space layout stamp.
    Incremental checkpoints compare this against the value recorded at the
    last persisted image. *)

val set_ephemeral : t -> bool -> unit
val set_cwd : t -> string -> unit
val set_name : t -> string -> unit

val alloc_fd : t -> Fdesc.t -> int
(** Install a description in the lowest free slot. *)

val install_fd_at : t -> int -> Fdesc.t -> unit
(** dup2-style: closes whatever was in the slot first. *)

val fd : t -> int -> Fdesc.t option
val close_fd : t -> int -> bool
(** Returns false if the slot was empty. *)

val fd_count : t -> int
val fds : t -> (int * Fdesc.t) list
(** Slots in ascending order. *)

val main_thread : t -> Thread.t

val signal : t -> int -> unit
(** Queue a signal (unless already pending). *)

val take_signal : t -> int option

val sigchld : int
