type termios = { mutable echo : bool; mutable canonical : bool; mutable baud : int }

type t = {
  pty_id : int;
  unit_no : int;
  tio : termios;
  input : Buffer.t; (* master -> slave *)
  output : Buffer.t; (* slave -> master *)
  mutable gen : int;
}

let next_id = ref 0

let create () =
  incr next_id;
  {
    pty_id = !next_id;
    unit_no = !next_id - 1;
    tio = { echo = true; canonical = true; baud = 38400 };
    input = Buffer.create 128;
    output = Buffer.create 128;
    gen = 0;
  }

let id t = t.pty_id
let unit_number t = t.unit_no
let termios t = t.tio
let generation t = t.gen
let touch t =
  t.gen <- t.gen + 1;
  Aurora_sim.Genlog.note ~kind:Aurora_sim.Genlog.kind_pty ~id:t.pty_id

let set_termios t ~echo ~canonical ~baud =
  t.tio.echo <- echo;
  t.tio.canonical <- canonical;
  t.tio.baud <- baud;
  touch t

let drain t buf ~len =
  let n = min len (Buffer.length buf) in
  let out = Buffer.sub buf 0 n in
  let rest = Buffer.sub buf n (Buffer.length buf - n) in
  Buffer.clear buf;
  Buffer.add_string buf rest;
  if n > 0 then touch t;
  out

let master_write t s =
  Buffer.add_string t.input s;
  if String.length s > 0 then touch t

let slave_read t ~len = drain t t.input ~len

let slave_write t s =
  Buffer.add_string t.output s;
  if String.length s > 0 then touch t

let master_read t ~len = drain t t.output ~len
let in_buffered t = Buffer.contents t.input
let out_buffered t = Buffer.contents t.output

let refill t ~input ~output =
  Buffer.clear t.input;
  Buffer.add_string t.input input;
  Buffer.clear t.output;
  Buffer.add_string t.output output;
  touch t
