(** The system-call layer: the POSIX-ish API applications in the simulator
    program against.

    Every call takes the machine (kernel state) and usually the calling
    process.  Errors are the exception {!Err} carrying an errno-like name;
    success returns plain values.  The subset implemented is the one the
    paper's applications and the checkpointer exercise: process lifecycle,
    files, pipes, sockets (UDP/TCP/UNIX + SCM_RIGHTS), kqueues,
    pseudoterminals, POSIX and System V shared memory, and mmap. *)

exception Err of string

(** {1 Processes} *)

val spawn : Machine.t -> name:string -> Process.t
(** Create a fresh process (the simulator's fork+exec shorthand for
    creating roots of process trees). *)

val fork : Machine.t -> Process.t -> Process.t
(** POSIX fork: clones the address space copy-on-write (symmetric
    shadowing), shares file descriptions, links the child into the process
    tree, inherits the process group and session. *)

val exit : Machine.t -> Process.t -> code:int -> unit
(** Zombifies the process, closes its descriptors and signals the parent
    with SIGCHLD. *)

val waitpid : Machine.t -> Process.t -> (int * int) option
(** Reap any zombie child: [(global_pid, status)]. *)

val spawn_thread : Machine.t -> Process.t -> Thread.t
(** pthread_create: a new kernel thread in the process. *)

val setsid : Process.t -> unit
val setpgid : Process.t -> pgid:int -> unit
val kill : ?by:Process.t -> Machine.t -> pid:int -> signo:int -> bool
(** Signal by local pid; [?by] scopes the lookup to the caller's session
    (local pids are per-group after restores). *)

(** {1 Files} *)

val open_file : Machine.t -> Process.t -> path:string -> create:bool -> int
val close : Process.t -> int -> unit
val read : Machine.t -> Process.t -> fd:int -> len:int -> string
val write : Machine.t -> Process.t -> fd:int -> string -> int
val lseek : Process.t -> fd:int -> off:int -> int
val fsync : Machine.t -> Process.t -> fd:int -> unit
val unlink : Machine.t -> path:string -> bool
val dup : Process.t -> fd:int -> int
val dup2 : Process.t -> src:int -> dst:int -> unit

(** {1 Pipes} *)

val pipe : Machine.t -> Process.t -> int * int
(** (read end, write end) *)

(** {1 Sockets} *)

val socket : Machine.t -> Process.t -> Socket.domain -> Socket.proto -> int
val bind : Process.t -> fd:int -> Socket.addr -> unit
val listen : Process.t -> fd:int -> unit
val socketpair : Machine.t -> Process.t -> int * int
(** A connected UNIX domain socket pair. *)

val tcp_connect : Machine.t -> Process.t -> fd:int -> Socket.addr -> bool
(** Send a SYN to a listening socket anywhere on the machine: on success
    the connection enters the listener's accept queue and [true] returns;
    with no listener (or after a checkpoint dropped the queue) [false]
    returns and the client retries — paper section 5.3. *)

val accept : Machine.t -> Process.t -> fd:int -> int option
(** Dequeue a pending connection from a listening socket; the new fd is
    an established TCP socket with live sequence numbers. *)

val send_msg : Machine.t -> Process.t -> fd:int -> ?fds:int list -> string -> unit
(** [?fds] sends descriptors over a UNIX domain socket (SCM_RIGHTS). *)

val recv_msg : Machine.t -> Process.t -> fd:int -> (string * int list) option
(** Returns data plus freshly installed fd slots for received rights. *)

(** {1 Kqueues} *)

val kqueue : Machine.t -> Process.t -> int
val kevent_register : Process.t -> fd:int -> Kqueue.kevent -> unit

val kevent_poll : Machine.t -> Process.t -> fd:int -> Kqueue.kevent list
(** kevent with a zero timeout: the registered events whose ident (an fd
    slot in the calling process) is ready — a listening socket with a
    pending connection, an established socket or pipe read end with
    buffered data, a socket or unblocked pipe write end for
    [Ev_write].  The event-loop HTTP tier dispatches on this. *)

(** {1 Pseudoterminals} *)

val posix_openpt : Machine.t -> Process.t -> int
(** Master fd; the slave is opened with {!open_pty_slave}. *)

val open_pty_slave : Machine.t -> Process.t -> master_fd:int -> int

(** {1 Shared memory} *)

val shm_open : Machine.t -> Process.t -> name:string -> npages:int -> int
val shmget : Machine.t -> key:int -> npages:int -> Shm.t
val mmap_shm : Process.t -> fd:int -> Aurora_vm.Vm_map.entry
val shmat : Process.t -> Shm.t -> Aurora_vm.Vm_map.entry

(** {1 Memory} *)

val mmap_anon : Process.t -> npages:int -> Aurora_vm.Vm_map.entry

val mmap_file : Process.t -> fd:int -> npages:int -> Aurora_vm.Vm_map.entry
(** MAP_SHARED mapping of an open file: the mapping's pages ARE the
    file's pages (one page cache), so stores through memory are visible
    to [read] and vice versa — and the object store persists them
    identically (paper section 5.2). *)

val munmap : Process.t -> Aurora_vm.Vm_map.entry -> unit

val madvise_dontneed : Process.t -> Aurora_vm.Vm_map.entry -> bool -> unit
(** Hint that the region is a good eviction victim (or clear the hint);
    the swap policy consults it (paper section 6). *)

(** {1 Asynchronous I/O} *)

val aio_write : Machine.t -> Process.t -> fd:int -> off:int -> string -> int
(** Submit an asynchronous write; returns the request id.  The data
    lands immediately in the file (the kernel owns the buffer) but the
    request completes asynchronously. *)

val aio_read : Machine.t -> Process.t -> fd:int -> off:int -> len:int -> int
(** Submit an asynchronous read; returns the request id. *)

val aio_complete : Machine.t -> Process.t -> id:int -> string
(** Wait for the request: advances the clock to its completion and
    returns the read data ("" for writes).  Raises [Err "EINVAL"] for an
    unknown id. *)

val aio_pending : Machine.t -> Process.t -> Aio.t list

(** {1 Devices} *)

val open_device : Machine.t -> Process.t -> name:string -> int
(** Whitelisted devices only (e.g. the HPET). *)

(** {1 Introspection helpers} *)

val fd_exn : Process.t -> int -> Fdesc.t
