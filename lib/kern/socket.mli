(** Sockets: UDP, TCP, and UNIX domain.

    Checkpointing saves the address, options and buffered data.  UNIX
    domain sockets additionally carry control messages whose file
    descriptors must themselves be checkpointed; Aurora scans the buffer
    for them (section 5.3).  TCP listening sockets drop their accept queue
    on checkpoint (clients retry the SYN); established connections save
    the 5-tuple, sequence numbers, options and buffers. *)

type domain = Inet | Unix_dom
type proto = Udp | Tcp

type addr = { host : string; port : int }

type msg = {
  data : string;
  ctl_fds : int list;
      (** SCM_RIGHTS control payload: file-description registry ids *)
}

type tcp_state =
  | Tcp_closed
  | Tcp_listening
  | Tcp_established of { mutable snd_seq : int; mutable rcv_seq : int }

type t

val create : domain -> proto -> t
val id : t -> int
val domain : t -> domain
val proto : t -> proto

val generation : t -> int
(** Monotonic mutation stamp over the serialized image (addresses, options,
    TCP state, peer link, buffered messages).  [send] to a connected peer
    stamps the {e peer} (whose receive queue changed), not the sender. *)

val touch : t -> unit

val bind : t -> addr -> unit
val connect : t -> addr -> unit
val local_addr : t -> addr option
val remote_addr : t -> addr option

val set_option : t -> string -> int -> unit
val options : t -> (string * int) list

val tcp_state : t -> tcp_state
val set_tcp_state : t -> tcp_state -> unit

val listen : t -> unit
val accept_enqueue : t -> t -> unit
val accept_dequeue : t -> t option
val accept_queue_length : t -> int
val drop_accept_queue : t -> unit
(** Checkpoint behaviour for listeners. *)

val pair : t -> t -> unit
(** Connect two UNIX domain sockets to each other. *)

val peer : t -> t option

val send : t -> msg -> unit
(** Deliver into the peer's receive queue if connected, else queue
    locally in the send buffer. *)

val recv : t -> msg option
val recv_buffered : t -> msg list
val send_buffered : t -> msg list
val refill : t -> recvq:msg list -> sendq:msg list -> unit

val buffered_bytes : t -> int
