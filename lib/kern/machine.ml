module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost

type t = {
  clock : Clock.t;
  procs : (int, Process.t) Hashtbl.t;
  mutable next_pid : int;
  mutable next_tid : int;
  posix_shm : (string, Shm.t) Hashtbl.t;
  sysv_shm : (int, Shm.t) Hashtbl.t;
  descriptions : (int, Fdesc.t) Hashtbl.t;
  aios : (int, Aio.t * int) Hashtbl.t;
  aios_by_pid : (int, (int, Aio.t) Hashtbl.t) Hashtbl.t;
      (* owner pid_global -> (aio_id -> aio); secondary index so the
         checkpoint fold visits only a group's own AIOs instead of scanning
         the machine-wide table *)
  mutable vfs : Vfs.ops option;
  ncpus : int;
  device_whitelist : string list;
  (* Soft-quiesce scheduling hook: while a speculative checkpoint
     serializes, the orchestrator opens concurrency windows during which
     the workload driver may run (the threads are NOT at a boundary).
     [stopped] is latched by quiesce/resume so a window can never open
     inside the hard stop, and [hook_depth] stops a hook that itself
     reaches a yield point from re-entering. *)
  mutable run_hook : (int -> unit) option;
  mutable hook_depth : int;
  mutable stopped : bool;
}

let create ?clock ?(ncpus = 24) () =
  {
    clock = (match clock with Some c -> c | None -> Clock.create ());
    procs = Hashtbl.create 64;
    next_pid = 0;
    next_tid = 0;
    posix_shm = Hashtbl.create 16;
    sysv_shm = Hashtbl.create 16;
    descriptions = Hashtbl.create 256;
    aios = Hashtbl.create 16;
    aios_by_pid = Hashtbl.create 16;
    vfs = None;
    ncpus;
    device_whitelist = [ "hpet0"; "vdso"; "null"; "zero"; "urandom" ];
    run_hook = None;
    hook_depth = 0;
    stopped = false;
  }

let mount t ops = t.vfs <- Some ops

let vfs_exn t =
  match t.vfs with Some ops -> ops | None -> failwith "Machine: no file system mounted"

let alloc_pid t =
  t.next_pid <- t.next_pid + 1;
  t.next_pid

let alloc_tid t =
  t.next_tid <- t.next_tid + 1;
  100_000 + t.next_tid

let register_description t d = Hashtbl.replace t.descriptions d.Fdesc.desc_id d
let find_description t id = Hashtbl.find_opt t.descriptions id
let proc t pid = Hashtbl.find_opt t.procs pid

(* The root of a process's tree by global ppid links — stands in for the
   jail/group boundary that scopes virtualized ids. *)
let rec tree_root t p =
  match Hashtbl.find_opt t.procs p.Process.ppid with
  | Some parent when parent != p -> tree_root t parent
  | Some _ | None -> p.Process.pid_global

let proc_by_local_pid ?scope t pid_local =
  let candidates =
    Hashtbl.fold
      (fun _ p acc -> if p.Process.pid_local = pid_local then p :: acc else acc)
      t.procs []
  in
  match (candidates, scope) with
  | [], _ -> None
  | [ p ], _ -> Some p
  | ps, Some caller -> (
      (* Prefer the caller's own process tree: that is the group whose
         checkpoint-time ids the caller knows. *)
      let root = tree_root t caller in
      match List.find_opt (fun p -> tree_root t p = root) ps with
      | Some p -> Some p
      | None -> Some (List.hd ps))
  | p :: _, None -> Some p

let add_proc t p = Hashtbl.replace t.procs p.Process.pid_global p

let remove_proc t pid =
  Hashtbl.remove t.procs pid;
  (* Orphaned children serialize a different parent link (ppid resolves to
     nothing -> 0 in the image): stamp them so incremental checkpoints
     re-serialize. *)
  Hashtbl.iter
    (fun _ p -> if p.Process.ppid = pid then Process.touch p)
    t.procs

(* AIO table ------------------------------------------------------------ *)

let add_aio t ~aio ~pid =
  Hashtbl.replace t.aios aio.Aio.aio_id (aio, pid);
  let per_pid =
    match Hashtbl.find_opt t.aios_by_pid pid with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.replace t.aios_by_pid pid tbl;
        tbl
  in
  Hashtbl.replace per_pid aio.Aio.aio_id aio

let remove_aio t ~aio_id =
  match Hashtbl.find_opt t.aios aio_id with
  | None -> None
  | Some (aio, pid) ->
      Hashtbl.remove t.aios aio_id;
      (match Hashtbl.find_opt t.aios_by_pid pid with
      | Some tbl ->
          Hashtbl.remove tbl aio_id;
          if Hashtbl.length tbl = 0 then Hashtbl.remove t.aios_by_pid pid
      | None -> ());
      Some (aio, pid)

let aios_of_pid t pid =
  match Hashtbl.find_opt t.aios_by_pid pid with
  | None -> []
  | Some tbl -> Hashtbl.fold (fun _ aio acc -> aio :: acc) tbl []

let live_procs t =
  Hashtbl.fold
    (fun _ p acc -> if p.Process.proc_state = Process.Alive then p :: acc else acc)
    t.procs []
  |> List.sort (fun a b -> compare a.Process.pid_global b.Process.pid_global)

let quiesce t procs =
  t.stopped <- true;
  (* One broadcast IPI reaches all cores running the group, then each
     thread drains to the boundary. *)
  Clock.advance t.clock Cost.ipi_roundtrip;
  List.iter
    (fun p ->
      List.iter (fun thr -> Thread.quiesce thr ~clock:t.clock) p.Process.threads)
    procs

let resume t procs =
  t.stopped <- false;
  List.iter (fun p -> List.iter Thread.resume p.Process.threads) procs

let set_run_hook t hook = t.run_hook <- hook
let stopped t = t.stopped

let concurrent_window t ~ns =
  if ns > 0 && (not t.stopped) && t.hook_depth = 0 then
    match t.run_hook with
    | None -> ()
    | Some hook ->
        t.hook_depth <- t.hook_depth + 1;
        Fun.protect ~finally:(fun () -> t.hook_depth <- t.hook_depth - 1)
          (fun () -> hook ns)

let device_allowed t name = List.mem name t.device_whitelist
