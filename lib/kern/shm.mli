(** Shared memory segments, POSIX ([shm_open]) and System V ([shmget]).

    The descriptor holds a mutable reference to the current backing VM
    object: this is the backmap the paper introduces so that system
    shadowing can swing the descriptor to the newest shadow, making future
    mappings use it (section 6).  System V segments live in a global
    namespace that must be scanned during checkpoint, which is why they
    cost more to checkpoint than POSIX segments in Table 4. *)

type kind = Posix_shm of string  (** name *) | Sysv_shm of int  (** key *)

type t

val create : kind -> npages:int -> t
val id : t -> int
val kind : t -> kind
val npages : t -> int

val backing : t -> Aurora_vm.Vm_object.t
val set_backing : t -> Aurora_vm.Vm_object.t -> unit
(** The backmap update performed by system shadowing.  Deliberately does
    NOT bump the generation stamp: the serialized image references the
    stable memory-object oid, and shadow rotation happens every
    checkpoint. *)

val generation : t -> int
(** Monotonic mutation stamp (kind, size and backing identity are
    immutable, so this only moves if a future mutation site bumps it). *)

val touch : t -> unit
