(** Open-loop HTTP client load: a zipf-distributed request schedule.

    The generator fixes every arrival time up front (Poisson arrivals at
    [rate] requests per second), so offered load is independent of server
    responses — the open-loop discipline under which checkpoint stop
    windows surface as tail latency.  Routes are zipf-popular over a
    combined rank space with each rank deterministically pinned to the
    static (cacheable) or dynamic (mutating) class. *)

type route = Static of int | Dynamic of int

type req = {
  hl_time : int;  (** client send time, virtual ns from schedule start *)
  hl_conn : int;  (** keep-alive connection index in [0, conns) *)
  hl_route : route;
  hl_frag : bool;  (** deliver the request in two TCP segments *)
}

val path_of_route : route -> string
(** ["/static/<i>"] or ["/api/<i>"]. *)

val generate :
  seed:int ->
  rate:float ->
  duration_ns:int ->
  conns:int ->
  static_routes:int ->
  dynamic_routes:int ->
  ?dynamic_ratio:float ->
  ?theta:float ->
  ?frag_prob:float ->
  unit ->
  req list
(** Deterministic for a fixed seed; arrival times strictly increase.
    [dynamic_ratio] (default 0.3) is the probability mass routed to
    mutating handlers, [theta] (default 0.99) the zipf skew, [frag_prob]
    (default 0.15) the fraction of requests split across two segments. *)
