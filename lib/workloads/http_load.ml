module Rng = Aurora_util.Rng

type route = Static of int | Dynamic of int

type req = {
  hl_time : int;
  hl_conn : int;
  hl_route : route;
  hl_frag : bool;
}

let path_of_route = function
  | Static i -> Printf.sprintf "/static/%d" i
  | Dynamic i -> Printf.sprintf "/api/%d" i

(* One schedule entry per request, arrival times fixed up front: the
   client is open-loop (it does not wait for responses before sending the
   next request), which is what makes checkpoint stop windows visible as
   tail latency instead of throughput loss — queued requests pay the stall
   even though the client never slows down.  Route popularity is
   zipf-distributed over a combined rank space; each rank is pinned to the
   static or dynamic class deterministically, so the hot head of the
   distribution contains both cacheable and mutating routes in
   [dynamic_ratio] proportion. *)
let generate ~seed ~rate ~duration_ns ~conns ~static_routes ~dynamic_routes
    ?(dynamic_ratio = 0.3) ?(theta = 0.99) ?(frag_prob = 0.15) () =
  let rng = Rng.create seed in
  let nroutes = static_routes + dynamic_routes in
  let zipf = Zipf.create ~n:nroutes ~theta (Rng.split rng) in
  (* Rank -> class assignment: hash the rank so the zipf head mixes both
     classes rather than making every hot route static. *)
  let class_of_rank rank =
    let h = (rank * 2654435761) land 0x3fffffff in
    if float_of_int (h mod 1000) /. 1000.0 < dynamic_ratio then
      Dynamic (rank mod max 1 dynamic_routes)
    else Static (rank mod max 1 static_routes)
  in
  let reqs = ref [] in
  let t = ref 0 in
  let mean_gap = 1e9 /. rate in
  while !t < duration_ns do
    t := !t + max 1 (int_of_float (Rng.exponential rng ~mean:mean_gap));
    if !t < duration_ns then
      reqs :=
        {
          hl_time = !t;
          hl_conn = Rng.int rng conns;
          hl_route = class_of_rank (Zipf.sample zipf);
          hl_frag = Rng.float rng 1.0 < frag_prob;
        }
        :: !reqs
  done;
  List.rev !reqs
