(** An event-loop HTTP/1.1 server model under continuous checkpointing.

    The server is a real process on the simulated kernel: a listening TCP
    socket, a kqueue the acceptor and readers dispatch on, per-connection
    parse buffers, a static file arena (reads) and a dynamic handler
    arena (writes that dirty pages every epoch), and a worker pool of
    queued resources.  Keep-alive connections close after a request
    budget and clients reconnect through the full SYN/accept path — so a
    checkpoint always finds a realistic mix of listening and established
    sockets, kqueue registrations and half-parsed request fragments.

    {!run} drives it with a zipf-distributed open-loop client over a
    10 GbE {!Aurora_net.Link} and reports SLO tail latencies versus
    checkpoint period, with stop-the-world and speculative arms. *)

type t

type conn = {
  c_id : int;
  c_server_fd : int;  (** established socket in the server process *)
  c_client_fd : int;  (** the client's end *)
  c_buf : Buffer.t;  (** per-connection incremental parse buffer *)
  mutable c_served : int;
  mutable c_closed : bool;
}

val create :
  machine:Aurora_kern.Machine.t ->
  ?workers:int ->
  ?static_pages:int ->
  ?dynamic_pages:int ->
  ?keep_alive_max:int ->
  unit ->
  t
(** Spawn the server ("httpd") and client ("wrk") processes, bind and
    listen on port 80, register the listener with the kqueue, and map and
    warm both arenas. *)

val proc : t -> Aurora_kern.Process.t
(** The server process — the thing a consistency group checkpoints. *)

val served : t -> int
(** Total requests served since {!create}. *)

val live_conns : t -> int

val connect : t -> conn
(** Client-side connect: SYN to the listener, acceptor wakes via
    {!Aurora_kern.Syscall.kevent_poll}, accepts, and registers the new
    connection for reads.  Emits an ["accept"] span under [cat:"http"]. *)

val request : Aurora_workloads.Http_load.route -> string
(** The GET request bytes for a route, keep-alive headers included. *)

type response = {
  r_conn : int;
  r_done : int;  (** virtual time the response left a worker *)
  r_bytes : int;  (** size on the wire *)
  r_closed : bool;  (** the server closed the connection afterwards *)
}

val keepalive : t -> conn -> unit
(** A client-side TCP keepalive probe, read and discarded by the server:
    marks the connection's socket buffers active so a checkpoint's OS
    serialize pass pays for the whole connection table, as it would on a
    loaded server. *)

val feed :
  t -> conn -> now:int -> ?on:Aurora_sim.Resource.t -> string -> response list
(** Deliver request bytes (possibly a fragment) to the server NIC at
    [now]: the bytes traverse the client socket into the server's receive
    queue, the event loop polls the kqueue, drains the connection into
    its parse buffer, and serves every complete request on the
    least-loaded worker ([?on] overrides the worker choice — the
    speculative run hook serves on a spare core).  Emits
    ["parse"]/["route"] spans and a ["respond"] instant per request.
    Returns the responses produced (0 for a fragment that did not
    complete a head). *)

(** {1 Benchmark} *)

type config = {
  seed : int;
  conns : int;
  rate : float;  (** offered load, requests per second *)
  duration_ns : int;
  period_ns : int option;  (** [None] = uncheckpointed baseline *)
  speculative : bool;
  static_routes : int;
  dynamic_routes : int;
  dynamic_ratio : float;
  workers : int;
  dynamic_pages : int;
  probe_interval_ns : int;
      (** keepalive probe period per connection; 0 disables probes *)
}

val default_config : config

type outcome = {
  completed : int;
  throughput_rps : float;
  p50_ns : float;
  p99_ns : float;
  p999_ns : float;
  max_ns : float;
  checkpoints : int;
  avg_stop_ns : float;
  hook_ops : int;  (** requests served inside soft-quiesce yield windows *)
  reconnects : int;
}

val run : config -> outcome
(** Boot an SLS system, run the open-loop schedule against a fresh
    server, checkpointing at [period_ns] (STW, or speculative with a
    run hook that keeps serving background dynamic requests inside yield
    windows).  Latency = request send to response arrival back at the
    client, both directions over the link; the first 20% of the run is
    warm-up and unmeasured. *)
