module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost
module Event_queue = Aurora_sim.Event_queue
module Resource = Aurora_sim.Resource
module Histogram = Aurora_util.Histogram
module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Socket = Aurora_kern.Socket
module Kqueue = Aurora_kern.Kqueue
module Syscall = Aurora_kern.Syscall
module Vm_space = Aurora_vm.Vm_space
module Page = Aurora_vm.Page
module Link = Aurora_net.Link
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Http_load = Aurora_workloads.Http_load
module Trace = Aurora_obs.Trace

let static_service_ns = 600
let dynamic_service_ns = 1_800
let parse_ns_base = 180
let static_body_bytes = 512
let dynamic_body_bytes = 128

type conn = {
  c_id : int;
  c_server_fd : int;
  c_client_fd : int;
  c_buf : Buffer.t;
  mutable c_served : int;
  mutable c_closed : bool;
}

type t = {
  machine : Machine.t;
  http_proc : Process.t;
  client_proc : Process.t;
  listen_fd : int;
  kq_fd : int;
  workers : Resource.t array;
  static_base : int;
  static_pages : int;
  dynamic_base : int;
  dynamic_pages : int;
  keep_alive_max : int;
  conns : (int, conn) Hashtbl.t;
  mutable next_conn_id : int;
  mutable served : int;
}

let create ~machine ?(workers = 4) ?(static_pages = 64) ?(dynamic_pages = 64)
    ?(keep_alive_max = 200) () =
  let proc = Syscall.spawn machine ~name:"httpd" in
  let client = Syscall.spawn machine ~name:"wrk" in
  let listen_fd = Syscall.socket machine proc Socket.Inet Socket.Tcp in
  Syscall.bind proc ~fd:listen_fd { Socket.host = "0.0.0.0"; port = 80 };
  Syscall.listen proc ~fd:listen_fd;
  let kq_fd = Syscall.kqueue machine proc in
  Syscall.kevent_register proc ~fd:kq_fd
    { Kqueue.ident = listen_fd; filter = Kqueue.Ev_read; flags = 0; udata = 0 };
  let sarena = Syscall.mmap_anon proc ~npages:static_pages in
  let darena = Syscall.mmap_anon proc ~npages:dynamic_pages in
  let static_base = Vm_space.addr_of_entry sarena in
  let dynamic_base = Vm_space.addr_of_entry darena in
  (* Populate both arenas so the first checkpoint is the full one and the
     measured epochs see steady-state incremental behaviour. *)
  for i = 0 to static_pages - 1 do
    Vm_space.write_byte proc.Process.space
      ~addr:(static_base + (i * Page.logical_size))
      's'
  done;
  for i = 0 to dynamic_pages - 1 do
    Vm_space.write_byte proc.Process.space
      ~addr:(dynamic_base + (i * Page.logical_size))
      'd'
  done;
  {
    machine;
    http_proc = proc;
    client_proc = client;
    listen_fd;
    kq_fd;
    workers = Array.init (max 1 workers) (fun i ->
        Resource.create ~name:(Printf.sprintf "httpd-worker-%d" i));
    static_base;
    static_pages;
    dynamic_base;
    dynamic_pages;
    keep_alive_max;
    conns = Hashtbl.create 64;
    next_conn_id = 0;
    served = 0;
  }

let proc t = t.http_proc
let served t = t.served
let live_conns t = Hashtbl.fold (fun _ c n -> if c.c_closed then n else n + 1) t.conns 0

let connect t =
  let cfd = Syscall.socket t.machine t.client_proc Socket.Inet Socket.Tcp in
  if
    not
      (Syscall.tcp_connect t.machine t.client_proc ~fd:cfd
         { Socket.host = "10.0.0.1"; port = 80 })
  then failwith "http_sim: SYN to a dead listener";
  let sfd =
    Trace.with_span ~cat:"http" ~name:"accept" (fun () ->
        (* The acceptor wakes from the event loop, not from a blocking
           accept: the listener must show up ready in the kqueue. *)
        let ready = Syscall.kevent_poll t.machine t.http_proc ~fd:t.kq_fd in
        if not (List.exists (fun ev -> ev.Kqueue.ident = t.listen_fd) ready)
        then failwith "http_sim: kqueue missed a pending SYN";
        match Syscall.accept t.machine t.http_proc ~fd:t.listen_fd with
        | Some fd -> fd
        | None -> failwith "http_sim: accept with empty queue")
  in
  Syscall.kevent_register t.http_proc ~fd:t.kq_fd
    { Kqueue.ident = sfd; filter = Kqueue.Ev_read; flags = 0; udata = 0 };
  let id = t.next_conn_id in
  t.next_conn_id <- id + 1;
  let c =
    {
      c_id = id;
      c_server_fd = sfd;
      c_client_fd = cfd;
      c_buf = Buffer.create 256;
      c_served = 0;
      c_closed = false;
    }
  in
  Hashtbl.replace t.conns id c;
  c

let request route =
  Printf.sprintf "GET %s HTTP/1.1\r\nHost: aurora\r\nConnection: keep-alive\r\n\r\n"
    (Http_load.path_of_route route)

(* Parse the request line out of one complete head.  The router only
   needs the path; everything else is keep-alive boilerplate. *)
let route_of_head head =
  match String.split_on_char ' ' head with
  | _meth :: path :: _ -> (
      match String.split_on_char '/' path with
      | [ ""; "static"; n ] -> Some (Http_load.Static (int_of_string n))
      | [ ""; "api"; n ] -> Some (Http_load.Dynamic (int_of_string n))
      | _ -> None)
  | _ -> None

let find_terminator s =
  let n = String.length s in
  let rec go i =
    if i + 3 >= n then None
    else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some (i + 4)
    else go (i + 1)
  in
  go 0

type response = {
  r_conn : int;
  r_done : int;
  r_bytes : int;
  r_closed : bool;
}

let least_loaded t =
  let best = ref t.workers.(0) in
  Array.iter
    (fun w -> if Resource.next_free w < Resource.next_free !best then best := w)
    t.workers;
  !best

(* A TCP keepalive probe: one byte from the client, read and discarded by
   the server.  Its only observable effect is the one a loaded server
   exhibits anyway — every established connection's socket has seen
   buffer activity by the time a checkpoint lands, so the OS serialize
   pass pays for the whole connection table, not just the conns that
   happened to carry a request this epoch. *)
let keepalive t c =
  if not c.c_closed then begin
    ignore (Syscall.write t.machine t.client_proc ~fd:c.c_client_fd "k");
    ignore (Syscall.read t.machine t.http_proc ~fd:c.c_server_fd ~len:1)
  end

(* Run one routed request on the worker pool.  Arena touches happen on the
   real address space, so post-checkpoint PTE downgrades surface as fault
   cost inside the service time, exactly like the memcached sim. *)
let serve_one t c ~now ~head_bytes ?on route =
  let clk = t.machine.Machine.clock in
  let t0 = Clock.now clk in
  let body_bytes, base_ns =
    match route with
    | Http_load.Static i ->
        let page = i mod t.static_pages in
        Vm_space.touch_read t.http_proc.Process.space
          ~addr:(t.static_base + (page * Page.logical_size))
          ~len:static_body_bytes;
        (static_body_bytes, static_service_ns)
    | Http_load.Dynamic i ->
        let page = i mod t.dynamic_pages in
        Vm_space.touch_write t.http_proc.Process.space
          ~addr:(t.dynamic_base + (page * Page.logical_size))
          ~len:dynamic_body_bytes;
        (dynamic_body_bytes, dynamic_service_ns)
  in
  let fault_ns = Clock.now clk - t0 in
  let parse_ns = parse_ns_base + (head_bytes / 8) in
  let service_ns = parse_ns + base_ns + fault_ns in
  let worker =
    match on with Some w -> w | None -> least_loaded t
  in
  let start, completion = Resource.submit_timed worker ~now ~duration:service_ns in
  if Trace.is_on () then begin
    Trace.complete ~ts:start ~dur:parse_ns
      ~args:[ ("conn", Trace.Int c.c_id); ("bytes", Trace.Int head_bytes) ]
      ~cat:"http" "parse";
    Trace.complete ~ts:(start + parse_ns) ~dur:(base_ns + fault_ns)
      ~args:
        [
          ("conn", Trace.Int c.c_id);
          ( "route",
            Trace.Str
              (match route with
              | Http_load.Static i -> Printf.sprintf "static/%d" i
              | Http_load.Dynamic i -> Printf.sprintf "api/%d" i) );
        ]
      ~cat:"http" "route"
  end;
  let body = String.make body_bytes 'x' in
  let resp =
    Printf.sprintf "HTTP/1.1 200 OK\r\nContent-Length: %d\r\n\r\n%s" body_bytes
      body
  in
  ignore (Syscall.write t.machine t.http_proc ~fd:c.c_server_fd resp);
  (* The client side drains its receive queue so socket buffers stay
     bounded across checkpoints. *)
  ignore (Syscall.read t.machine t.client_proc ~fd:c.c_client_fd ~len:(String.length resp));
  if Trace.is_on () then
    Trace.instant ~ts:completion
      ~args:[ ("conn", Trace.Int c.c_id) ]
      ~cat:"http" "respond";
  c.c_served <- c.c_served + 1;
  t.served <- t.served + 1;
  let closed = c.c_served >= t.keep_alive_max in
  if closed then begin
    (match (Syscall.fd_exn t.http_proc t.kq_fd).Aurora_kern.Fdesc.kind with
    | Aurora_kern.Fdesc.Kqueue_fd kq ->
        Kqueue.deregister kq ~ident:c.c_server_fd ~filter:Kqueue.Ev_read
    | _ -> assert false);
    Syscall.close t.http_proc c.c_server_fd;
    Syscall.close t.client_proc c.c_client_fd;
    c.c_closed <- true
  end;
  { r_conn = c.c_id; r_done = completion; r_bytes = String.length resp; r_closed = closed }

let feed t c ~now ?on bytes =
  if c.c_closed then invalid_arg "http_sim: feed on closed conn";
  ignore (Syscall.write t.machine t.client_proc ~fd:c.c_client_fd bytes);
  (* Event-loop dispatch: the connection must be readable in the kqueue
     before the server looks at it. *)
  let ready = Syscall.kevent_poll t.machine t.http_proc ~fd:t.kq_fd in
  if
    not
      (List.exists
         (fun ev ->
           ev.Kqueue.ident = c.c_server_fd && ev.Kqueue.filter = Kqueue.Ev_read)
         ready)
  then []
  else begin
    let rec drain () =
      match Syscall.read t.machine t.http_proc ~fd:c.c_server_fd ~len:4096 with
      | "" -> ()
      | data ->
          Buffer.add_string c.c_buf data;
          drain ()
    in
    drain ();
    (* Per-connection parse buffer: pull out every complete head, leave
       any trailing fragment for the next segment. *)
    let responses = ref [] in
    let continue = ref true in
    while !continue && not c.c_closed do
      let pending = Buffer.contents c.c_buf in
      match find_terminator pending with
      | None -> continue := false
      | Some head_end ->
          Buffer.clear c.c_buf;
          Buffer.add_string c.c_buf
            (String.sub pending head_end (String.length pending - head_end));
          let head = String.sub pending 0 head_end in
          (match route_of_head head with
          | None -> ()
          | Some route ->
              responses :=
                serve_one t c ~now ~head_bytes:head_end ?on route :: !responses)
    done;
    List.rev !responses
  end

(* ------------------------------------------------------------------ *)
(* Benchmark runner: open-loop zipf client over a 10 GbE link.        *)
(* ------------------------------------------------------------------ *)

type config = {
  seed : int;
  conns : int;
  rate : float;
  duration_ns : int;
  period_ns : int option;
  speculative : bool;
  static_routes : int;
  dynamic_routes : int;
  dynamic_ratio : float;
  workers : int;
  dynamic_pages : int;
  probe_interval_ns : int;
}

let default_config =
  {
    seed = 42;
    conns = 32;
    rate = 30_000.0;
    duration_ns = 300_000_000;
    period_ns = None;
    speculative = false;
    static_routes = 96;
    dynamic_routes = 32;
    dynamic_ratio = 0.3;
    workers = 4;
    dynamic_pages = 64;
    probe_interval_ns = 2_500_000;
  }

type outcome = {
  completed : int;
  throughput_rps : float;
  p50_ns : float;
  p99_ns : float;
  p999_ns : float;
  max_ns : float;
  checkpoints : int;
  avg_stop_ns : float;
  hook_ops : int;
  reconnects : int;
}

type event = Deliver of int * string * int | Ckpt_due | Probe of int

let run cfg =
  let sys = Sls.boot () in
  let machine = sys.Sls.machine in
  let clk = machine.Machine.clock in
  let srv =
    create ~machine ~workers:cfg.workers ~dynamic_pages:cfg.dynamic_pages ()
  in
  (* One queued link per direction: requests serialize onto the wire in
     schedule order, responses in completion order.  Sharing one resource
     would make responses queue behind requests scheduled far in the
     future. *)
  let link_up = Link.create ~name:"http-link-up" () in
  let link_down = Link.create ~name:"http-link-down" () in
  (* conn index (schedule space) -> live connection *)
  let slots = Array.init cfg.conns (fun _ -> connect srv) in
  let reconnects = ref 0 in
  let hook_ops = ref 0 in
  let group_opt =
    match cfg.period_ns with
    | None -> None
    | Some period ->
        let group = Sls.attach ~period_ns:period sys [ srv.http_proc ] in
        ignore (Group.checkpoint ~wait_durable:true group);
        if cfg.speculative then begin
          Group.set_speculative group true;
          (* A run hook keeps the service live inside soft-quiesce yield
             windows: background dynamic requests on a dedicated
             connection, served on the spare core rather than the worker
             pool (hook submissions carry mid-checkpoint timestamps; an
             FCFS worker cannot backfill around them).  Each one dirties
             an arena page — the mutation stream conflict validation must
             re-copy. *)
          let spare = Resource.create ~name:"httpd-spare-core" in
          let hook_conn = ref (connect srv) in
          let hook_route = ref 0 in
          Machine.set_run_hook machine
            (Some
               (fun window_ns ->
                 let n = max 1 (window_ns / 150_000) in
                 for _ = 1 to n do
                   if !hook_conn.c_closed then hook_conn := connect srv;
                   let route = Http_load.Dynamic (!hook_route mod cfg.dynamic_routes) in
                   incr hook_route;
                   ignore
                     (feed srv !hook_conn ~now:(Clock.now clk) ~on:spare
                        (request route));
                   incr hook_ops
                 done))
        end;
        Some (group, period)
  in
  let q : event Event_queue.t = Event_queue.create () in
  let latencies = Histogram.create () in
  let stops = Histogram.create () in
  let completed = ref 0 in
  let checkpoints = ref 0 in
  let t_start = Clock.now clk in
  let warmup_until = t_start + (cfg.duration_ns / 5) in
  let t_end = t_start + cfg.duration_ns in
  (* In-order response matching: HTTP/1.1 keep-alive responses come back
     in request order per connection, so a FIFO of send times suffices. *)
  let inflight = Array.make cfg.conns (Queue.create ()) in
  for i = 0 to cfg.conns - 1 do
    inflight.(i) <- Queue.create ()
  done;
  let schedule =
    Http_load.generate ~seed:cfg.seed ~rate:cfg.rate ~duration_ns:cfg.duration_ns
      ~conns:cfg.conns ~static_routes:cfg.static_routes
      ~dynamic_routes:cfg.dynamic_routes ~dynamic_ratio:cfg.dynamic_ratio ()
  in
  List.iter
    (fun r ->
      let send_t = t_start + r.Http_load.hl_time in
      let payload = request r.Http_load.hl_route in
      if r.Http_load.hl_frag then begin
        (* Two TCP segments: the head of the request lands first, the
           tail a little later; only the second completes a parse. *)
        let cut = String.length payload / 2 in
        let seg1 = String.sub payload 0 cut in
        let seg2 = String.sub payload cut (String.length payload - cut) in
        let a1 = Link.delivery_time link_up ~now:send_t ~bytes:cut in
        let a2 =
          Link.delivery_time link_up ~now:(send_t + 1_500)
            ~bytes:(String.length payload - cut)
        in
        Event_queue.schedule q ~time:a1
          (Deliver (r.Http_load.hl_conn, seg1, send_t));
        Event_queue.schedule q ~time:(max a2 (a1 + 1))
          (Deliver (r.Http_load.hl_conn, seg2, send_t))
      end
      else
        let arrival =
          Link.delivery_time link_up ~now:send_t ~bytes:(String.length payload)
        in
        Event_queue.schedule q ~time:arrival
          (Deliver (r.Http_load.hl_conn, payload, send_t)))
    schedule;
  (match group_opt with
  | Some (_, period) -> Event_queue.schedule q ~time:(t_start + period) Ckpt_due
  | None -> ());
  if cfg.probe_interval_ns > 0 then
    for i = 0 to cfg.conns - 1 do
      (* Stagger first probes across one interval so they don't arrive as
         a synchronized burst. *)
      Event_queue.schedule q
        ~time:(t_start + (i * cfg.probe_interval_ns / cfg.conns))
        (Probe i)
    done;
  let handle time = function
    | Deliver (slot, bytes, send_t) ->
        let conn =
          if slots.(slot).c_closed then begin
            (* Keep-alive budget exhausted server-side: the client opens a
               fresh connection (SYN + accept) before resending. *)
            incr reconnects;
            let c = connect srv in
            slots.(slot) <- c;
            c
          end
          else slots.(slot)
        in
        (* The send time enters the FIFO when the segment that will
           complete the request arrives; fragments deliver in order. *)
        let before = conn.c_served in
        let responses = feed srv conn ~now:time bytes in
        let finished = conn.c_served - before in
        if finished > 0 then Queue.push send_t inflight.(slot);
        List.iter
          (fun r ->
            let sent =
              if Queue.is_empty inflight.(slot) then send_t
              else Queue.pop inflight.(slot)
            in
            let back = Link.delivery_time link_down ~now:r.r_done ~bytes:r.r_bytes in
            let latency = back - sent in
            if sent >= warmup_until then begin
              Histogram.add latencies (float_of_int latency);
              incr completed
            end)
          responses
    | Ckpt_due -> (
        match group_opt with
        | None -> ()
        | Some (group, period) ->
            let stats = Group.checkpoint group in
            incr checkpoints;
            if time >= warmup_until then
              Histogram.add stops (float_of_int stats.Group.stop_ns);
            (* The stop window stalls the whole worker pool; under the
               speculative arm stop_ns is just quiesce + validate, so the
               stall collapses. *)
            Array.iter
              (fun w ->
                ignore (Resource.submit w ~now:time ~duration:stats.Group.stop_ns))
              srv.workers;
            if time + period < t_end then
              Event_queue.schedule q ~time:(time + period) Ckpt_due)
    | Probe slot ->
        keepalive srv slots.(slot);
        if time + cfg.probe_interval_ns < t_end then
          Event_queue.schedule q ~time:(time + cfg.probe_interval_ns) (Probe slot)
  in
  Event_queue.run q ~clock:clk ~handler:(fun time ev -> handle time ev) ~until:t_end;
  Machine.set_run_hook machine None;
  let measured_ns = max 1 (min (Clock.now clk) t_end - warmup_until) in
  {
    completed = !completed;
    throughput_rps = float_of_int !completed /. (float_of_int measured_ns /. 1e9);
    p50_ns = Histogram.percentile latencies 50.0;
    p99_ns = Histogram.percentile latencies 99.0;
    p999_ns = Histogram.percentile latencies 99.9;
    max_ns = Histogram.max latencies;
    checkpoints = !checkpoints;
    avg_stop_ns = Histogram.mean stops;
    hook_ops = !hook_ops;
    reconnects = !reconnects;
  }
