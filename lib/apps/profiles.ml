module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Thread = Aurora_kern.Thread
module Syscall = Aurora_kern.Syscall
module Vm_space = Aurora_vm.Vm_space
module Vm_map = Aurora_vm.Vm_map
module Page = Aurora_vm.Page
module Sls = Aurora_core.Sls

type profile = {
  app_name : string;
  mem_mib : int;
  nprocs : int;
  threads_per_proc : int;
  vm_entries : int;
  fds : int;
}

(* Shapes chosen to match the paper's description of each application:
   firefox is multi-process with a large footprint; tomcat is one big JVM
   with many threads; pillow (Python) and vim have modest memory but
   hundreds of mappings (shared libraries, arenas); mosh is small. *)

let firefox =
  { app_name = "firefox"; mem_mib = 198; nprocs = 4; threads_per_proc = 12; vm_entries = 110; fds = 60 }

let mosh =
  { app_name = "mosh"; mem_mib = 24; nprocs = 1; threads_per_proc = 2; vm_entries = 60; fds = 12 }

let pillow =
  { app_name = "pillow"; mem_mib = 75; nprocs = 1; threads_per_proc = 4; vm_entries = 380; fds = 24 }

let tomcat =
  { app_name = "tomcat"; mem_mib = 197; nprocs = 1; threads_per_proc = 60; vm_entries = 340; fds = 160 }

let vim =
  { app_name = "vim"; mem_mib = 48; nprocs = 1; threads_per_proc = 1; vm_entries = 290; fds = 15 }

let all = [ firefox; mosh; pillow; tomcat; vim ]

let build sys profile =
  let machine = sys.Sls.machine in
  let procs =
    List.init profile.nprocs (fun i ->
        Syscall.spawn machine ~name:(Printf.sprintf "%s-%d" profile.app_name i))
  in
  let pages_total = profile.mem_mib * 1024 * 1024 / Page.logical_size in
  let pages_per_proc = pages_total / profile.nprocs in
  List.iter
    (fun p ->
      (* Extra threads beyond the initial one. *)
      for _ = 2 to profile.threads_per_proc do
        p.Process.threads <-
          p.Process.threads @ [ Thread.create ~tid:(Machine.alloc_tid machine) ];
        Process.touch p
      done;
      (* The address space: many mappings sharing the footprint; every
         page resident (the paper's applications are warmed up). *)
      let pages_per_entry = max 1 (pages_per_proc / profile.vm_entries) in
      for _ = 1 to profile.vm_entries do
        let e = Syscall.mmap_anon p ~npages:pages_per_entry in
        Vm_space.touch_write p.Process.space
          ~addr:(Vm_space.addr_of_entry e)
          ~len:(pages_per_entry * Page.logical_size)
      done;
      ignore (Vm_map.entries (Vm_space.map p.Process.space));
      (* Descriptors: a third files, a third sockets, a third pipes and
         event queues. *)
      let n = profile.fds in
      for i = 0 to (n / 3) - 1 do
        ignore
          (Syscall.open_file machine p
             ~path:(Printf.sprintf "/%s/file%d" profile.app_name i)
             ~create:true)
      done;
      for _ = 0 to (n / 3) - 1 do
        ignore (Syscall.socket machine p Aurora_kern.Socket.Inet Aurora_kern.Socket.Tcp)
      done;
      for _ = 0 to (n / 3) - 1 do
        ignore (Syscall.pipe machine p)
      done;
      ignore (Syscall.kqueue machine p))
    procs;
  procs
