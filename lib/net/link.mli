(** A 10 GbE point-to-point link (client machines to the server under
    test, as in the paper's client-server benchmarks).

    Messages pay a one-way latency plus serialization at link bandwidth;
    the link queues (it is a {!Aurora_sim.Resource}), so saturating
    offered load produces realistic queueing delay.

    {2 Fault plane}

    For the HA torture harness the link carries an injectable fault plane
    driven by a deterministic PRNG, in the style of
    [Aurora_block.Fault]: transmissions can be dropped, duplicated,
    reordered (delivered late), corrupted (one byte flipped) or swallowed
    by a network partition that keeps the link dark for a configured
    window of virtual time.  Every run with the same seed and profile
    makes identical decisions. *)

type t

val create : ?name:string -> unit -> t

val delivery_time : t -> now:int -> bytes:int -> int
(** When a message of [bytes] sent at [now] arrives at the other end. *)

val rtt : bytes:int -> int
(** Unloaded round-trip estimate for a request/response pair of the given
    total size. *)

val reset : t -> unit
(** Clear queued-resource state, any active partition and the counters;
    an installed fault plane is re-seeded so the next run replays the
    same decision sequence. *)

(** {1 Fault injection} *)

type fault_profile = {
  p_drop : float;  (** transmission silently lost *)
  p_duplicate : float;  (** delivered twice, second copy late *)
  p_reorder : float;  (** delivery delayed by up to [reorder_ns] *)
  p_corrupt : float;  (** one payload byte flipped in flight *)
  p_partition : float;  (** transmission opens a partition window *)
  partition_ns : int;  (** how long a partition keeps the link dark *)
  reorder_ns : int;  (** max extra delay for reorder/duplicate copies *)
}

val no_faults : fault_profile

val lossy_profile : float -> fault_profile
(** Drop rate [p], with duplicate/reorder/corrupt each at [p/2]. *)

val set_faults : t -> seed:int -> fault_profile -> unit
(** Install a deterministic fault plane; replaces any previous one. *)

val clear_faults : t -> unit

val partition : t -> now:int -> duration:int -> unit
(** Explicitly cut the link for [duration] ns of virtual time; both
    directions drop everything transmitted before the window closes. *)

val partition_at : t -> at:int -> duration:int -> unit
(** Script a partition window [\[at, at+duration)] of virtual time in
    advance.  Unlike {!partition} this does not need the caller to be
    holding the clock at the cut instant: the window arms itself when a
    transmission first lands inside it, so torture scenarios can pin a
    partition to a specific protocol boundary (e.g. the middle of a
    shipping window) instead of fishing for one with seeds.  Scripted
    windows survive {!reset} — they are part of the deterministic
    scenario, like the fault profile. *)

val scheduled_partitions : t -> (int * int) list
(** The scripted [(start, heal)] windows, sorted by start. *)

val partitioned_until : t -> int
(** Virtual time at which the current partition heals (0 if none).
    Scripted windows count only once armed by a transmission inside
    them. *)

(** {1 Transmission} *)

type delivery = { d_payload : string; d_arrival : int }

val transmit : t -> ?retransmit:bool -> now:int -> payload:string -> unit -> delivery list
(** Send [payload] at [now] through the fault plane.  The result is what
    the other end will observe: [] if the message was dropped or eaten by
    a partition, one delivery normally, two if duplicated; payloads may
    differ from [payload] if corrupted.  [~retransmit:true] only marks
    the send in the stats. *)

(** {1 Statistics} *)

type stats = {
  l_sent : int;
  l_delivered : int;
  l_dropped : int;
  l_duplicated : int;
  l_reordered : int;
  l_corrupted : int;
  l_retransmits : int;
  l_partition_drops : int;
}

val stats : t -> stats
