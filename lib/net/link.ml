module Cost = Aurora_sim.Cost
module Resource = Aurora_sim.Resource
module Rng = Aurora_util.Rng

type fault_profile = {
  p_drop : float;
  p_duplicate : float;
  p_reorder : float;
  p_corrupt : float;
  p_partition : float;
  partition_ns : int;
  reorder_ns : int;
}

let no_faults =
  {
    p_drop = 0.;
    p_duplicate = 0.;
    p_reorder = 0.;
    p_corrupt = 0.;
    p_partition = 0.;
    partition_ns = 0;
    reorder_ns = 500_000;
  }

let lossy_profile p =
  {
    no_faults with
    p_drop = p;
    p_duplicate = p /. 2.;
    p_reorder = p /. 2.;
    p_corrupt = p /. 2.;
  }

type stats = {
  l_sent : int;
  l_delivered : int;
  l_dropped : int;
  l_duplicated : int;
  l_reordered : int;
  l_corrupted : int;
  l_retransmits : int;
  l_partition_drops : int;
}

let zero_stats =
  {
    l_sent = 0;
    l_delivered = 0;
    l_dropped = 0;
    l_duplicated = 0;
    l_reordered = 0;
    l_corrupted = 0;
    l_retransmits = 0;
    l_partition_drops = 0;
  }

type delivery = { d_payload : string; d_arrival : int }

type t = {
  wire : Resource.t;
  mutable faults : (Rng.t * fault_profile) option;
  mutable fault_seed : int;
  mutable partition_until : int;
  mutable scheduled : (int * int) list; (* (start, heal), scripted partitions *)
  mutable stats : stats;
}

let create ?(name = "10gbe") () =
  {
    wire = Resource.create ~name;
    faults = None;
    fault_seed = 0;
    partition_until = 0;
    scheduled = [];
    stats = zero_stats;
  }

let delivery_time t ~now ~bytes =
  let serialize = Cost.transfer_time ~bandwidth:Cost.net_bandwidth bytes in
  let sent = Resource.submit t.wire ~now ~duration:serialize in
  sent + Cost.net_one_way_latency

let rtt ~bytes =
  (2 * Cost.net_one_way_latency)
  + Cost.transfer_time ~bandwidth:Cost.net_bandwidth bytes
  + (2 * Cost.net_per_message_cpu)

let set_faults t ~seed profile =
  t.fault_seed <- seed;
  t.faults <- Some (Rng.create seed, profile)

let clear_faults t = t.faults <- None
let stats t = t.stats

(* A scripted window that covers [now] behaves exactly like an active
   probabilistic partition: fold it into [partition_until] so both the
   dark-window check and the sender's deadline extension see it. *)
let activate_scheduled t ~now =
  List.iter
    (fun (start, heal) ->
      if now >= start && now < heal then
        t.partition_until <- max t.partition_until heal)
    t.scheduled

let partitioned_until t = t.partition_until

let partition t ~now ~duration =
  t.partition_until <- max t.partition_until (now + duration)

let partition_at t ~at ~duration =
  if duration > 0 then t.scheduled <- (at, at + duration) :: t.scheduled

let scheduled_partitions t =
  List.sort compare t.scheduled

let corrupt_payload rng payload =
  if String.length payload = 0 then payload
  else begin
    let b = Bytes.of_string payload in
    let i = Rng.int rng (Bytes.length b) in
    let flip = 1 + Rng.int rng 255 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor flip));
    Bytes.to_string b
  end

let transmit t ?(retransmit = false) ~now ~payload () =
  let s = t.stats in
  t.stats <-
    {
      s with
      l_sent = s.l_sent + 1;
      l_retransmits = (s.l_retransmits + if retransmit then 1 else 0);
    };
  activate_scheduled t ~now;
  if now < t.partition_until then begin
    (* Both directions are dark until the partition heals. *)
    t.stats <-
      { t.stats with l_partition_drops = t.stats.l_partition_drops + 1 };
    []
  end
  else
    let arrival = delivery_time t ~now ~bytes:(String.length payload) in
    match t.faults with
    | None ->
        t.stats <- { t.stats with l_delivered = t.stats.l_delivered + 1 };
        [ { d_payload = payload; d_arrival = arrival } ]
    | Some (rng, p) ->
        (* A partition can begin with this message: it is the one that
           discovers the cable is gone. *)
        if p.p_partition > 0. && Rng.float rng 1.0 < p.p_partition then
          t.partition_until <- max t.partition_until (now + p.partition_ns);
        if now < t.partition_until || Rng.float rng 1.0 < p.p_drop then begin
          t.stats <- { t.stats with l_dropped = t.stats.l_dropped + 1 };
          []
        end
        else begin
          let payload =
            if Rng.float rng 1.0 < p.p_corrupt then begin
              t.stats <-
                { t.stats with l_corrupted = t.stats.l_corrupted + 1 };
              corrupt_payload rng payload
            end
            else payload
          in
          let arrival =
            if Rng.float rng 1.0 < p.p_reorder then begin
              t.stats <-
                { t.stats with l_reordered = t.stats.l_reordered + 1 };
              arrival + 1 + Rng.int rng (max 1 p.reorder_ns)
            end
            else arrival
          in
          let deliveries =
            if Rng.float rng 1.0 < p.p_duplicate then begin
              t.stats <-
                { t.stats with l_duplicated = t.stats.l_duplicated + 1 };
              [
                { d_payload = payload; d_arrival = arrival };
                {
                  d_payload = payload;
                  d_arrival = arrival + 1 + Rng.int rng (max 1 p.reorder_ns);
                };
              ]
            end
            else [ { d_payload = payload; d_arrival = arrival } ]
          in
          t.stats <-
            {
              t.stats with
              l_delivered = t.stats.l_delivered + List.length deliveries;
            };
          deliveries
        end

let reset t =
  Resource.reset t.wire;
  t.partition_until <- 0;
  t.stats <- zero_stats;
  match t.faults with
  | None -> ()
  | Some (_, p) -> t.faults <- Some (Rng.create t.fault_seed, p)
