module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost
module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Fdesc = Aurora_kern.Fdesc
module Pipe = Aurora_kern.Pipe
module Socket = Aurora_kern.Socket
module Kqueue = Aurora_kern.Kqueue
module Vm_map = Aurora_vm.Vm_map
module Vm_space = Aurora_vm.Vm_space
module Vm_object = Aurora_vm.Vm_object
module Page = Aurora_vm.Page
module Wire = Aurora_objstore.Wire

type breakdown = {
  os_state_ns : int;
  memory_copy_ns : int;
  total_stop_ns : int;
  io_write_ns : int;
  image_bytes : int;
}

(* Count the kernel objects a process-centric walk must query: every fd of
   every process (shared descriptions are visited once per referencing
   process — the inference pass is what deduplicates them), every VM map
   entry, every thread. *)
let object_visits procs =
  List.fold_left
    (fun acc (p : Process.t) ->
      acc + 1 (* the process itself *)
      + List.length p.Process.threads
      + Process.fd_count p
      + Vm_map.entry_count (Vm_space.map p.Process.space))
    0 procs

(* Unique resident pages across the group (deduplicated by object). *)
let unique_pages procs =
  let seen = Hashtbl.create 64 in
  let total = ref 0 in
  let rec count obj =
    if not (Hashtbl.mem seen (Vm_object.id obj)) then begin
      Hashtbl.replace seen (Vm_object.id obj) ();
      total := !total + Vm_object.resident_pages obj;
      match Vm_object.parent obj with None -> () | Some parent -> count parent
    end
  in
  List.iter
    (fun (p : Process.t) ->
      List.iter
        (fun (e : Vm_map.entry) -> count e.Vm_map.obj)
        (Vm_map.entries (Vm_space.map p.Process.space)))
    procs;
  !total

(* Image serialization: process records plus raw page payloads.  The image
   reuses the SLS wire discipline but with CRIU's flat, per-process layout
   (memory is dumped as a flat range list per mapping). *)

let magic = "CRIUIMG1"

let serialize_desc w (d : Fdesc.t) =
  Wire.u64 w d.Fdesc.desc_id;
  match d.Fdesc.kind with
  | Fdesc.Vnode_file { vn; offset; append } ->
      Wire.u8 w 0;
      Wire.u64 w (Aurora_kern.Vnode.inode vn);
      Wire.u64 w offset;
      Wire.u8 w (if append then 1 else 0)
  | Fdesc.Pipe_read p ->
      Wire.u8 w 1;
      Wire.u64 w (Pipe.id p);
      Wire.str w (Pipe.peek_all p)
  | Fdesc.Pipe_write p ->
      Wire.u8 w 2;
      Wire.u64 w (Pipe.id p)
  | Fdesc.Socket_fd s ->
      Wire.u8 w 3;
      Wire.u64 w (Socket.id s)
  | Fdesc.Kqueue_fd k ->
      Wire.u8 w 4;
      Wire.u64 w (Kqueue.id k);
      Wire.u32 w (Kqueue.event_count k)
  | Fdesc.Pty_master_fd p ->
      Wire.u8 w 5;
      Wire.u64 w (Aurora_kern.Pty.id p)
  | Fdesc.Pty_slave_fd p ->
      Wire.u8 w 6;
      Wire.u64 w (Aurora_kern.Pty.id p)
  | Fdesc.Shm_fd s ->
      Wire.u8 w 7;
      Wire.u64 w (Aurora_kern.Shm.id s)
  | Fdesc.Device_fd name ->
      Wire.u8 w 8;
      Wire.str w name

let serialize_proc w (p : Process.t) =
  Wire.u64 w p.Process.pid_local;
  Wire.str w p.Process.name;
  Wire.u32 w (List.length p.Process.threads);
  Wire.list w
    (fun (slot, d) ->
      Wire.u32 w slot;
      serialize_desc w d)
    (Process.fds p);
  Wire.list w
    (fun (e : Vm_map.entry) ->
      Wire.u64 w e.Vm_map.start_vpn;
      Wire.u64 w e.Vm_map.npages;
      Wire.u8 w (if e.Vm_map.prot.Vm_map.write then 1 else 0);
      (* Flat memory dump: every resident page of the mapping's chain. *)
      let pages = ref [] in
      for vpn = e.Vm_map.start_vpn to e.Vm_map.start_vpn + e.Vm_map.npages - 1 do
        let rel = vpn - e.Vm_map.start_vpn in
        let idx = rel + e.Vm_map.obj_pgoff in
        let rec lookup obj =
          match Vm_object.find_local obj idx with
          | Some page -> Some page
          | None -> (
              match Vm_object.parent obj with
              | None -> None
              | Some parent -> lookup parent)
        in
        match lookup e.Vm_map.obj with
        | Some page -> pages := (rel, Page.blit_payload page) :: !pages
        | None -> ()
      done;
      Wire.list w
        (fun (idx, payload) ->
          Wire.u32 w idx;
          Wire.str w (Bytes.to_string payload))
        (List.rev !pages))
    (Vm_map.entries (Vm_space.map p.Process.space))

let checkpoint machine procs =
  let clk = machine.Machine.clock in
  let stop_begin = Clock.now clk in
  (* Freeze the whole tree for the entire operation: CRIU has no COW
     tracking, so the target cannot run while memory is collected. *)
  Machine.quiesce machine procs;
  (* Phase 1: OS-state collection.  Every object is queried from userspace
     and sharing is inferred by matching ids across processes. *)
  let visits = object_visits procs in
  Clock.advance clk (visits * Cost.criu_per_object_inference);
  let os_state_end = Clock.now clk in
  (* Phase 2: copy application memory while still frozen. *)
  let pages = unique_pages procs in
  let mem_bytes = pages * Page.logical_size in
  Clock.advance clk (Cost.transfer_time ~bandwidth:Cost.criu_copy_bandwidth mem_bytes);
  let copy_end = Clock.now clk in
  (* Build the actual image (content correctness; CPU already charged). *)
  let w = Wire.writer () in
  Wire.str w magic;
  Wire.list w (serialize_proc w) procs;
  let image = Bytes.to_string (Wire.contents w) in
  Machine.resume machine procs;
  let stop_end = Clock.now clk in
  (* Phase 3: write the image out; no flush (Table 1's caveat). *)
  let io_ns =
    Cost.transfer_time ~bandwidth:Cost.criu_io_bandwidth
      (mem_bytes + String.length image)
  in
  Clock.advance clk io_ns;
  ( {
      os_state_ns = os_state_end - stop_begin;
      memory_copy_ns = copy_end - os_state_end;
      total_stop_ns = stop_end - stop_begin;
      io_write_ns = io_ns;
      image_bytes = mem_bytes + String.length image;
    },
    image )

let restore machine image =
  let clk = machine.Machine.clock in
  let r = Wire.reader (Bytes.of_string image) in
  (match Wire.rstr r with
  | m when m = magic -> ()
  | _ -> failwith "Criu.restore: bad image magic");
  let pipes : (int, Pipe.t) Hashtbl.t = Hashtbl.create 8 in
  Wire.rlist r (fun r ->
      let _pid_local = Wire.ru64 r in
      let name = Wire.rstr r in
      let nthreads = Wire.ru32 r in
      let p = Aurora_kern.Syscall.spawn machine ~name in
      for _ = 2 to nthreads do
        p.Process.threads <-
          p.Process.threads @ [ Aurora_kern.Thread.create ~tid:(Machine.alloc_tid machine) ];
        Process.touch p
      done;
      let fds =
        Wire.rlist r (fun r ->
            let slot = Wire.ru32 r in
            let _desc_id = Wire.ru64 r in
            let kind_tag = Wire.ru8 r in
            let desc =
              match kind_tag with
              | 1 ->
                  let id = Wire.ru64 r in
                  let data = Wire.rstr r in
                  let pipe =
                    match Hashtbl.find_opt pipes id with
                    | Some pipe -> pipe
                    | None ->
                        let pipe = Pipe.create () in
                        Hashtbl.replace pipes id pipe;
                        pipe
                  in
                  (* The buffer travels with the read end; the write end
                     may already have created the pipe empty. *)
                  Pipe.refill pipe data;
                  Some (Fdesc.create (Fdesc.Pipe_read pipe))
              | 2 ->
                  let id = Wire.ru64 r in
                  let pipe =
                    match Hashtbl.find_opt pipes id with
                    | Some pipe -> pipe
                    | None ->
                        let pipe = Pipe.create () in
                        Hashtbl.replace pipes id pipe;
                        pipe
                  in
                  Some (Fdesc.create (Fdesc.Pipe_write pipe))
              | 3 ->
                  let _ = Wire.ru64 r in
                  Some (Fdesc.create (Fdesc.Socket_fd (Socket.create Socket.Inet Socket.Udp)))
              | 4 ->
                  let _ = Wire.ru64 r in
                  let _ = Wire.ru32 r in
                  Some (Fdesc.create (Fdesc.Kqueue_fd (Kqueue.create ())))
              | 0 ->
                  let _inode = Wire.ru64 r in
                  let _offset = Wire.ru64 r in
                  let _append = Wire.ru8 r in
                  None (* files need a cooperating filesystem; unsupported *)
              | 8 -> Some (Fdesc.create (Fdesc.Device_fd (Wire.rstr r)))
              | _ ->
                  let _ = Wire.ru64 r in
                  None
            in
            (slot, desc))
      in
      List.iter
        (fun (slot, desc) ->
          match desc with
          | Some d ->
              Clock.advance clk Cost.restore_object_link;
              Process.install_fd_at p slot d
          | None -> ())
        fds;
      let entries =
        Wire.rlist r (fun r ->
            let start_vpn = Wire.ru64 r in
            let npages = Wire.ru64 r in
            let writable = Wire.ru8 r = 1 in
            let pages =
              Wire.rlist r (fun r ->
                  let idx = Wire.ru32 r in
                  let payload = Wire.rstr r in
                  (idx, payload))
            in
            (start_vpn, npages, writable, pages))
      in
      List.iter
        (fun (start_vpn, npages, writable, pages) ->
          let obj = Vm_object.create Vm_object.Anonymous in
          List.iter
            (fun (idx, payload) ->
              let page = Page.alloc_sized ~payload:(String.length payload) in
              Page.load_payload page (Bytes.of_string payload);
              Vm_object.insert_page obj idx page)
            pages;
          Clock.advance clk (Cost.copy_time (List.length pages * Page.logical_size));
          ignore
            (Vm_map.map
               (Vm_space.map p.Process.space)
               ~vpn:start_vpn ~npages
               ~prot:(if writable then Vm_map.prot_rw else Vm_map.prot_ro)
               ~obj ~obj_pgoff:0))
        entries;
      p)
