(** The Aurora application API (paper Table 3).

    Custom applications use these calls to control and optimize their
    persistence — the interface the customized RocksDB is built on
    (section 9.6).  Each call charges the modeled syscall cost and the
    operation's own costs. *)

type journal

val sls_checkpoint : ?full:bool -> Group.t -> Group.ckpt_stats
(** Manually trigger a group checkpoint.  By default the OS-state pass is
    incremental (clean objects are dirty-checked and skipped); [~full:true]
    forces every object to re-serialize and re-stage — the Table 4/Table 7
    measurement path and the escape hatch if stamp discipline is in
    doubt. *)

val sls_restore :
  machine:Aurora_kern.Machine.t ->
  store:Aurora_objstore.Store.t ->
  ?epoch:int ->
  ?lazy_pages:bool ->
  ?group_oid:int ->
  unit ->
  Restore.result
(** Restore a checkpoint (alias of {!Restore.restore}). *)

val sls_memckpt : Group.t -> Aurora_vm.Vm_map.entry -> Group.ckpt_stats
(** Asynchronous atomic checkpoint of one mapped region. *)

val sls_journal_open : Group.t -> size:int -> journal
(** Preallocate a non-COW on-store journal region. *)

val sls_journal : Group.t -> journal -> string -> unit
(** Synchronous append (a 4 KiB page in ~28 µs); durable on return. *)

val sls_journal_truncate : Group.t -> journal -> unit

val sls_journal_recover : Group.t -> journal -> string list
(** Scan the journal's durable records (crash recovery). *)

val journal_of_id : Group.t -> int -> journal option
val journal_id : journal -> int

val sls_barrier : Group.t -> unit
(** Wait until the most recent checkpoint is fully flushed. *)

val sls_mctl : Aurora_vm.Vm_map.entry -> persist:bool -> unit
(** Include or exclude a memory region from checkpoints. *)

val sls_fdctl : Aurora_kern.Process.t -> fd:int -> ext_sync:bool -> unit
(** Enable/disable external synchrony on one descriptor (e.g. disable it
    for read-only connections). *)
