(** Record/replay on top of checkpoints (paper sections 1 and 10).

    Record/replay systems log every non-deterministic input; the log
    grows without bound.  Aurora bounds it: only inputs since the last
    checkpoint need retaining, because re-execution starts from the
    checkpoint, not from the beginning.

    {!Recorder} interposes on the non-deterministic sources (socket
    receives, clock reads), appending each value to a durable non-COW
    journal and truncating the journal at every checkpoint.  After a
    crash, {!recover} restores the checkpoint and parses the surviving
    log; {!Replayer} then feeds the application the exact recorded values,
    so deterministic re-execution reaches the pre-crash state. *)

type entry =
  | Recv_msg of int * string  (** (fd, payload) *)
  | Clock_read of int

val entry_to_string : entry -> string
(** Wire encoding of one log entry (tag byte + payload). *)

val entry_of_string : string -> entry
(** Inverse of {!entry_to_string}; raises [Wire.Corrupt] on a bad tag. *)

module Recorder : sig
  type t

  val attach : Group.t -> t
  (** Opens the recording journal in the group's store. *)

  val recv_msg : t -> Aurora_kern.Process.t -> fd:int -> string option
  (** Receive from a socket, recording the payload. *)

  val read_clock : t -> int
  (** Sample the clock, recording the value. *)

  val on_checkpoint : t -> unit
  (** Call right after a checkpoint: inputs before it are no longer
      needed (the checkpoint supersedes them), so the log truncates —
      this is what keeps recording sustainable indefinitely. *)

  val log_length : t -> int
  (** Entries recorded since the last checkpoint. *)

  val journal_id : t -> int
end

val recover : store:Aurora_objstore.Store.t -> journal_id:int -> entry list
(** Parse the surviving log off the recovered store. *)

module Replayer : sig
  type t

  val create : entry list -> t

  val recv_msg : t -> fd:int -> string option
  (** The next recorded receive for this fd ([None] when the log is
      exhausted — live execution resumes there). *)

  val read_clock : t -> int option
  val remaining : t -> int
end
