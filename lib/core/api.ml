module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost
module Store = Aurora_objstore.Store
module Vm_map = Aurora_vm.Vm_map
module Process = Aurora_kern.Process
module Fdesc = Aurora_kern.Fdesc

type journal = Store.journal

let charge g ns = Clock.advance (Group.clock g) ns

let sls_checkpoint ?full g =
  charge g Cost.syscall_overhead;
  Group.checkpoint ?full g

let sls_restore = Restore.restore

let sls_memckpt g entry = Group.checkpoint_region g entry

let sls_journal_open g ~size =
  charge g Cost.syscall_overhead;
  Store.journal_create (Group.store g) ~size

let sls_journal g j data =
  charge g Cost.syscall_overhead;
  Store.journal_append (Group.store g) j data

let sls_journal_truncate g j =
  charge g Cost.syscall_overhead;
  Store.journal_truncate (Group.store g) j

let sls_journal_recover g j = Store.journal_records (Group.store g) j
let journal_of_id g id = Store.journal_find (Group.store g) id
let journal_id = Store.journal_id

let sls_barrier g =
  charge g Cost.syscall_overhead;
  Store.wait_durable (Group.store g)

let sls_mctl (entry : Vm_map.entry) ~persist = Vm_map.set_excluded entry (not persist)

let sls_fdctl p ~fd ~ext_sync =
  match Process.fd p fd with
  | Some d -> Fdesc.set_ext_sync d ext_sync
  | None -> invalid_arg "sls_fdctl: bad fd"
