module Machine = Aurora_kern.Machine
module Striped = Aurora_block.Striped
module Store = Aurora_objstore.Store
module Fs = Aurora_fs.Fs
module Clock = Aurora_sim.Clock

type system = {
  machine : Machine.t;
  device : Striped.t;
  store : Store.t;
  fs : Fs.t;
}

let boot () =
  let machine = Machine.create () in
  let device = Striped.create () in
  let store = Store.format ~dev:device ~clock:machine.Machine.clock in
  let fs = Fs.create ~store in
  Machine.mount machine (Fs.vfs_ops fs);
  { machine; device; store; fs }

(* Global default checkpoint mode for newly attached groups (the
   speculative soft-quiesce knob; per-group override via
   [Group.set_speculative]). *)
let speculative_default = ref false

let set_speculative v = speculative_default := v
let speculative_enabled () = !speculative_default

let attach ?period_ns sys procs =
  let g =
    Group.attach ~machine:sys.machine ~store:sys.store ~fs:sys.fs ?period_ns procs
  in
  if !speculative_default then Group.set_speculative g true;
  g

let crash sys = Striped.crash sys.device ~now:(Clock.now sys.machine.Machine.clock)

let reboot_and_restore ?lazy_pages sys =
  let old_now = Clock.now sys.machine.Machine.clock in
  crash sys;
  let machine = Machine.create () in
  (* Wall-clock time continues across the reboot. *)
  Clock.advance_to machine.Machine.clock old_now;
  let store = Store.recover ~dev:sys.device ~clock:machine.Machine.clock in
  let result = Restore.restore ~machine ~store ?lazy_pages () in
  let fs =
    match result.Restore.fs with
    | Some fs -> fs
    | None ->
        let fs = Fs.create ~store in
        Machine.mount machine (Fs.vfs_ops fs);
        fs
  in
  ({ machine; device = sys.device; store; fs }, result)
