(** Restore: recreate a consistency group from a store checkpoint.

    Restore inverts the POSIX object model: each store object is recreated
    exactly once and the identifier references between them relink the
    sharing — two fd-table slots that named the same description oid share
    one description again, a description and a memory mapping that named
    the same vnode meet at the same vnode, UNIX socket pairs are re-paired,
    and in-flight SCM_RIGHTS descriptors come back inside their socket
    buffers.

    PIDs and TIDs are virtualized (section 5.3): the restored process
    keeps its checkpoint-time local pid while the machine assigns a fresh
    global pid.  Parents of ephemeral (unpersisted) children receive
    SIGCHLD.  Device mappings are re-injected fresh — the vDSO of the
    restoring platform, not the checkpointed one. *)

type result = {
  group : Group.t;
  procs : Aurora_kern.Process.t list;
  fs : Aurora_fs.Fs.t option;
  restore_ns : int;  (** charged virtual time of the restore itself *)
}

val groups_at :
  store:Aurora_objstore.Store.t -> epoch:int -> (int * int list) list
(** The consistency groups in a checkpoint: [(group oid, member process
    oids)].  A store hosts one group per application or container
    (paper section 3); list them to pick which to restore. *)

val restore :
  machine:Aurora_kern.Machine.t ->
  store:Aurora_objstore.Store.t ->
  ?epoch:int ->
  ?lazy_pages:bool ->
  ?group_oid:int ->
  unit ->
  result
(** Rebuild the group checkpointed in [epoch] (default: the last complete
    checkpoint) into [machine].  When the checkpoint holds several
    consistency groups, [group_oid] selects one (see {!groups_at});
    omitting it with multiple groups raises [Failure].

    With [lazy_pages] (default false) the restore charges only the OS
    state reconstruction — memory pages are brought in after the measured
    window, modeling Aurora's lazy restore where the application pages in
    its working set on demand (section 6, "Memory Overcommitment").
    Contents are identical either way. *)

(** {1 Verified restore}

    Every committed epoch carries a manifest object (per-object metadata
    and page CRCs, see {!Serial.manifest_image}).  Verified restore checks
    an epoch against its manifest before touching it, and falls back
    epoch-by-epoch when the newest checkpoint fails verification —
    degraded recovery instead of a crash on a torn or corrupted epoch. *)

type attempt = { at_epoch : int; at_reason : string }
(** An epoch that failed verification (or restore) and was skipped. *)

type restore_error =
  | No_checkpoints  (** the store holds no complete checkpoint at all *)
  | No_valid_epoch of attempt list
      (** every candidate epoch failed, newest first, with reasons *)

val pp_restore_error : restore_error -> string

val verify_epoch :
  store:Aurora_objstore.Store.t ->
  epoch:int ->
  (Serial.manifest_image, string) Stdlib.result
(** Check [epoch] against its own manifest: exactly one manifest object
    must exist, its entry set must match the epoch's objects, each
    object's metadata CRC, page count, page-set fingerprint, and on-disk
    page payload CRCs must agree, and the metadata must still parse.
    Read-only; never raises. *)

type verified = {
  vr_result : result;
  vr_epoch : int;  (** the epoch actually restored *)
  vr_manifest : Serial.manifest_image;  (** its verified manifest *)
  vr_skipped : attempt list;  (** newer epochs rejected on the way *)
}

val restore_verified :
  machine:Aurora_kern.Machine.t ->
  store:Aurora_objstore.Store.t ->
  ?lazy_pages:bool ->
  ?group_oid:int ->
  ?max_fallback:int ->
  unit ->
  (verified, restore_error) Stdlib.result
(** Restore the newest epoch that passes {!verify_epoch}, falling back to
    older epochs when verification (or the restore itself) fails.
    [max_fallback] bounds how many epochs below the newest may be tried
    (default: all retained epochs).  Never raises on corrupt state: a
    store with no recoverable epoch yields [Error]. *)
