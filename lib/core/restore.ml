module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost
module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Fdesc = Aurora_kern.Fdesc
module Pipe = Aurora_kern.Pipe
module Socket = Aurora_kern.Socket
module Kqueue = Aurora_kern.Kqueue
module Pty = Aurora_kern.Pty
module Shm = Aurora_kern.Shm
module Vnode = Aurora_kern.Vnode
module Vm_map = Aurora_vm.Vm_map
module Vm_object = Aurora_vm.Vm_object
module Vm_space = Aurora_vm.Vm_space
module Page = Aurora_vm.Page
module Store = Aurora_objstore.Store
module Fs = Aurora_fs.Fs
module Otrace = Aurora_obs.Trace

(* Per-kind restore costs beyond [Cost.obj_restore_base] (Table 4). *)
let pipe_restore_extra = 600
let socket_restore_extra = 1_600
let kqueue_restore_extra = 700
let shm_posix_restore_extra = 1_800
let shm_sysv_restore_extra = 800

type result = {
  group : Group.t;
  procs : Process.t list;
  fs : Fs.t option;
  restore_ns : int;
}

type ctx = {
  mach : Machine.t;
  st : Store.t;
  epoch : int;
  lazy_pages : bool;
  kinds : (int, string) Hashtbl.t; (* oid -> kind *)
  memobjs : (int, Vm_object.t) Hashtbl.t; (* oid -> restored object *)
  descs : (int, Fdesc.t) Hashtbl.t; (* oid -> restored description *)
  sockets : (int, Socket.t) Hashtbl.t;
  pipes : (int, Pipe.t) Hashtbl.t;
  kqueues : (int, Kqueue.t) Hashtbl.t;
  ptys : (int, Pty.t) Hashtbl.t;
  shms : (int, Shm.t) Hashtbl.t;
  first_install : (int, unit) Hashtbl.t;
      (* description oids already installed in some fd slot: later slots
         must take an extra reference (fork/dup sharing) *)
  restored_fs : Fs.t option;
}

let charge ctx ns = Clock.advance ctx.mach.Machine.clock ns
let meta ctx oid = Store.read_meta ctx.st ~epoch:ctx.epoch ~oid

(* Memory objects --------------------------------------------------------------- *)

let load_pages ctx oid obj =
  List.iter
    (fun (idx, payload) ->
      let page = Page.alloc_sized ~payload:(Bytes.length payload) in
      Page.load_payload page payload;
      Vm_object.insert_page obj idx page)
    (Store.read_pages ctx.st ~epoch:ctx.epoch ~oid)

let rec memobj ctx oid =
  match Hashtbl.find_opt ctx.memobjs oid with
  | Some obj -> obj
  | None ->
      let image = Serial.memobj_of_string (meta ctx oid) in
      (* Memory objects are plain anonymous objects: cheaper to recreate
         than descriptor-backed kernel objects. *)
      charge ctx (Cost.obj_restore_base / 2);
      let obj = Vm_object.create Vm_object.Anonymous in
      (* Parents first, so chains relink bottom-up. *)
      (match image.Serial.i_parent_oid with
      | Some parent_oid ->
          let parent = memobj ctx parent_oid in
          Vm_object.set_parent obj (Some parent)
      | None -> ());
      Hashtbl.replace ctx.memobjs oid obj;
      if ctx.lazy_pages then begin
        (* Lazy restore: pages come back on demand through the store-backed
           pager — the paper's unified swap path (section 6). *)
        let st = ctx.st and epoch = ctx.epoch in
        Vm_object.set_pager obj (Some (fun idx -> Store.read_page st ~epoch ~oid ~idx))
      end
      else load_pages ctx oid obj;
      obj

(* Sub-objects -------------------------------------------------------------------- *)

let pipe ctx oid =
  match Hashtbl.find_opt ctx.pipes oid with
  | Some p -> p
  | None ->
      charge ctx (Cost.obj_restore_base + pipe_restore_extra);
      let image = Serial.pipe_of_string (meta ctx oid) in
      let p = Pipe.create () in
      Pipe.refill p image.Serial.i_data;
      if not image.Serial.i_rd_open then Pipe.close_read p;
      if not image.Serial.i_wr_open then Pipe.close_write p;
      Hashtbl.replace ctx.pipes oid p;
      p

let kqueue ctx oid =
  match Hashtbl.find_opt ctx.kqueues oid with
  | Some k -> k
  | None ->
      charge ctx (Cost.obj_restore_base + kqueue_restore_extra);
      let images = Serial.kqueue_of_string (meta ctx oid) in
      let k = Kqueue.create () in
      Kqueue.replace_events k
        (List.map
           (fun (e : Serial.kevent_image) ->
             {
               Kqueue.ident = e.Serial.i_ident;
               filter =
                 (match e.Serial.i_filter with
                 | 0 -> Kqueue.Ev_read
                 | 1 -> Kqueue.Ev_write
                 | 2 -> Kqueue.Ev_timer
                 | 3 -> Kqueue.Ev_signal
                 | _ -> Kqueue.Ev_proc);
               flags = e.Serial.i_flags;
               udata = e.Serial.i_udata;
             })
           images);
      Hashtbl.replace ctx.kqueues oid k;
      k

let pty ctx oid =
  match Hashtbl.find_opt ctx.ptys oid with
  | Some p -> p
  | None ->
      (* Recreating the virtual device takes devfs locks — the dominant
         pty restore cost in Table 4. *)
      charge ctx (Cost.obj_restore_base + Cost.devfs_lock);
      let image = Serial.pty_of_string (meta ctx oid) in
      let p = Pty.create () in
      Pty.set_termios p ~echo:image.Serial.i_echo
        ~canonical:image.Serial.i_canonical ~baud:image.Serial.i_baud;
      Pty.refill p ~input:image.Serial.i_input ~output:image.Serial.i_output;
      Hashtbl.replace ctx.ptys oid p;
      p

let shm ctx oid =
  match Hashtbl.find_opt ctx.shms oid with
  | Some s -> s
  | None ->
      let image = Serial.shm_of_string (meta ctx oid) in
      let kind, extra =
        match image.Serial.i_shm_kind with
        | Either.Left name -> (Shm.Posix_shm name, shm_posix_restore_extra)
        | Either.Right key -> (Shm.Sysv_shm key, shm_sysv_restore_extra)
      in
      charge ctx (Cost.obj_restore_base + extra);
      let s = Shm.create kind ~npages:image.Serial.i_npages in
      Shm.set_backing s (memobj ctx image.Serial.i_backing_oid);
      (match kind with
      | Shm.Posix_shm name -> Hashtbl.replace ctx.mach.Machine.posix_shm name s
      | Shm.Sysv_shm key -> Hashtbl.replace ctx.mach.Machine.sysv_shm key s);
      Hashtbl.replace ctx.shms oid s;
      s

(* Sockets need two phases: create + state now, peers and in-flight
   SCM_RIGHTS after every socket/description exists. *)
let rec socket ctx oid =
  match Hashtbl.find_opt ctx.sockets oid with
  | Some s -> s
  | None ->
      charge ctx (Cost.obj_restore_base + socket_restore_extra);
      let image = Serial.socket_of_string (meta ctx oid) in
      let s =
        Socket.create
          (if image.Serial.i_domain = 0 then Socket.Inet else Socket.Unix_dom)
          (if image.Serial.i_proto = 0 then Socket.Udp else Socket.Tcp)
      in
      Hashtbl.replace ctx.sockets oid s;
      (match image.Serial.i_laddr with
      | Some (host, port) -> Socket.bind s { Socket.host; port }
      | None -> ());
      (match image.Serial.i_raddr with
      | Some (host, port) -> Socket.connect s { Socket.host; port }
      | None -> ());
      List.iter (fun (k, v) -> Socket.set_option s k v) (List.rev image.Serial.i_opts);
      (match image.Serial.i_tcp with
      | 1 ->
          (* Listening: the accept queue was dropped at checkpoint; clients
             retry their SYNs. *)
          Socket.listen s
      | 2 ->
          Socket.set_tcp_state s
            (Socket.Tcp_established
               { snd_seq = image.Serial.i_snd_seq; rcv_seq = image.Serial.i_rcv_seq })
      | _ -> ());
      let restore_msg (m : Serial.msg_image) =
        {
          Socket.data = m.Serial.i_msg_data;
          ctl_fds =
            List.map
              (fun ctl_oid -> (desc ctx ctl_oid).Fdesc.desc_id)
              m.Serial.i_ctl_oids;
        }
      in
      Socket.refill s
        ~recvq:(List.map restore_msg image.Serial.i_recvq)
        ~sendq:(List.map restore_msg image.Serial.i_sendq);
      s

(* Descriptions ------------------------------------------------------------------------ *)

and desc ctx oid =
  match Hashtbl.find_opt ctx.descs oid with
  | Some d -> d
  | None ->
      let image = Serial.fdesc_of_string (meta ctx oid) in
      let kind =
        match image.Serial.i_kind with
        | Serial.I_vnode { inode; offset; append } -> (
            charge ctx Cost.obj_restore_base;
            match ctx.restored_fs with
            | Some filesystem -> (
                match Fs.vnode_by_inode filesystem inode with
                | Some vn -> Fdesc.Vnode_file { vn; offset; append }
                | None ->
                    (* An anonymous file whose vnode object exists in the
                       store but not the namespace would land here if the
                       FS failed to restore it; treat as corruption. *)
                    failwith
                      (Printf.sprintf "restore: missing vnode inode %d" inode))
            | None -> failwith "restore: file descriptor but no file system")
        | Serial.I_pipe_r p -> Fdesc.Pipe_read (pipe ctx p)
        | Serial.I_pipe_w p -> Fdesc.Pipe_write (pipe ctx p)
        | Serial.I_socket s -> Fdesc.Socket_fd (socket ctx s)
        | Serial.I_kqueue k -> Fdesc.Kqueue_fd (kqueue ctx k)
        | Serial.I_pty_m p -> Fdesc.Pty_master_fd (pty ctx p)
        | Serial.I_pty_s p -> Fdesc.Pty_slave_fd (pty ctx p)
        | Serial.I_shm s -> Fdesc.Shm_fd (shm ctx s)
        | Serial.I_device name -> Fdesc.Device_fd name
      in
      let d = Fdesc.create kind in
      Fdesc.set_ext_sync d image.Serial.i_ext_sync;
      Machine.register_description ctx.mach d;
      Hashtbl.replace ctx.descs oid d;
      d

(* Processes ---------------------------------------------------------------------------- *)

let restore_proc ctx (image : Serial.proc_image) =
  let pid_global = Machine.alloc_pid ctx.mach in
  let p =
    Process.create ~clock:ctx.mach.Machine.clock ~pid:image.Serial.i_pid_local
      ~tid:0 ~ppid:0 ~name:image.Serial.i_name
  in
  charge ctx Cost.obj_restore_base;
  p.Process.pid_global <- pid_global;
  p.Process.pgid <- image.Serial.i_pgid;
  p.Process.sid <- image.Serial.i_sid;
  p.Process.ephemeral <- image.Serial.i_ephemeral;
  p.Process.cwd <- image.Serial.i_cwd;
  p.Process.pending_signals <- image.Serial.i_proc_pending;
  p.Process.threads <-
    List.map
      (fun ti -> Serial.thread_of_image ti ~tid_global:(Machine.alloc_tid ctx.mach))
      image.Serial.i_threads;
  (* File descriptors: slots naming the same description oid share the
     same restored description. *)
  List.iter
    (fun (slot, d_oid) ->
      charge ctx Cost.restore_object_link;
      let d = desc ctx d_oid in
      (* The description's initial reference covers its first slot; every
         further slot (fork/dup sharing) takes another. *)
      if Hashtbl.mem ctx.first_install d_oid then Fdesc.retain d
      else Hashtbl.replace ctx.first_install d_oid ();
      Process.install_fd_at p slot d)
    image.Serial.i_fds;
  (* Address space. *)
  List.iter
    (fun (e : Serial.entry_image) ->
      charge ctx Cost.restore_object_link;
      let obj =
        if e.Serial.i_obj_oid = 0 then
          (* Device mapping / vDSO: inject the current platform's. *)
          Vm_object.create (Vm_object.Device_backed "vdso")
        else
          match Hashtbl.find_opt ctx.kinds e.Serial.i_obj_oid with
          | Some k when k = Serial.kind_memobj -> memobj ctx e.Serial.i_obj_oid
          | Some "fs.vnode" -> (
              match ctx.restored_fs with
              | Some filesystem -> (
                  match Fs.vnode_by_oid filesystem e.Serial.i_obj_oid with
                  | Some vn -> Vnode.backing vn
                  | None -> Vm_object.create Vm_object.Anonymous)
              | None -> Vm_object.create Vm_object.Anonymous)
          | Some _ | None -> memobj ctx e.Serial.i_obj_oid
      in
      Vm_object.ref_ obj;
      ignore
        (Vm_map.map ~shared:e.Serial.i_shared
           (Vm_space.map p.Process.space)
           ~vpn:e.Serial.i_start_vpn ~npages:e.Serial.i_npages
           ~prot:
             {
               Vm_map.read = e.Serial.i_read;
               write = e.Serial.i_write;
               exec = e.Serial.i_exec;
             }
           ~obj ~obj_pgoff:e.Serial.i_obj_pgoff))
    image.Serial.i_entries;
  Machine.add_proc ctx.mach p;
  (* Reissue the asynchronous reads that were in flight at checkpoint
     time (section 5.3). *)
  List.iter
    (fun (slot, off, len) ->
      try ignore (Aurora_kern.Syscall.aio_read ctx.mach p ~fd:slot ~off ~len)
      with Aurora_kern.Syscall.Err _ -> ())
    image.Serial.i_aio_reads;
  (p, image)

(* Entry point ------------------------------------------------------------------------------ *)

let groups_at ~store ~epoch =
  List.filter_map
    (fun (oid, kind) ->
      if kind = Serial.kind_group then
        let image = Serial.group_of_string (Store.read_meta store ~epoch ~oid) in
        Some (oid, image.Serial.i_proc_oids)
      else None)
    (Store.objects_at store ~epoch)

let restore ~machine ~store ?epoch ?(lazy_pages = false) ?group_oid () =
  let epoch =
    match epoch with Some e -> e | None -> Store.last_complete_epoch store
  in
  let clk = machine.Machine.clock in
  let start_time = Clock.now clk in
  Otrace.with_span ~cat:"restore" ~name:"restore"
    ~args:
      [
        ("epoch", Otrace.Int epoch);
        ("lazy_pages", Otrace.Int (Bool.to_int lazy_pages));
      ]
  @@ fun () ->
  let objects = Store.objects_at store ~epoch in
  let kinds = Hashtbl.create (List.length objects) in
  List.iter (fun (oid, kind) -> Hashtbl.replace kinds oid kind) objects;
  (* The file system comes back first: descriptions reference vnodes. *)
  let has_fs = List.exists (fun (_, kind) -> kind = "fs.namespace") objects in
  let restored_fs =
    if has_fs then Some (Fs.restore_from_store ~store ~epoch) else None
  in
  let ctx =
    {
      mach = machine;
      st = store;
      epoch;
      lazy_pages;
      kinds;
      memobjs = Hashtbl.create 64;
      descs = Hashtbl.create 64;
      sockets = Hashtbl.create 16;
      pipes = Hashtbl.create 16;
      kqueues = Hashtbl.create 16;
      ptys = Hashtbl.create 16;
      shms = Hashtbl.create 16;
      first_install = Hashtbl.create 64;
      restored_fs;
    }
  in
  (match restored_fs with Some filesystem -> Machine.mount machine (Fs.vfs_ops filesystem) | None -> ());
  (* The group object drives everything else. *)
  let group_oid, group_image =
    let candidates =
      List.filter_map
        (fun (oid, kind) ->
          if kind = Serial.kind_group then
            Some (oid, Serial.group_of_string (Store.read_meta store ~epoch ~oid))
          else None)
        objects
    in
    match (candidates, group_oid) with
    | [], _ -> failwith "restore: no consistency group in checkpoint"
    | [ g ], None -> g
    | gs, Some want -> (
        match List.find_opt (fun (oid, _) -> oid = want) gs with
        | Some g -> g
        | None -> failwith (Printf.sprintf "restore: no group with oid %d" want))
    | _ :: _ :: _, None ->
        failwith
          "restore: several consistency groups in this checkpoint; pass \
           ~group_oid (see Restore.groups_at)"
  in

  let restored =
    List.map
      (fun proc_oid ->
        restore_proc ctx
          (Serial.proc_of_string (Store.read_meta store ~epoch ~oid:proc_oid)))
      group_image.Serial.i_proc_oids
  in
  (* Relink the process tree by local pids, now that all exist.  Local
     pids are meaningful only within this group: resolve among the
     processes restored here, never against unrelated processes that
     happen to reuse the same checkpoint-time pid. *)
  List.iter
    (fun ((p : Process.t), (image : Serial.proc_image)) ->
      (match
         List.find_opt
           (fun ((q : Process.t), _) ->
             q.Process.pid_local = image.Serial.i_ppid_local)
           restored
       with
      | Some (parent, _) when parent != p ->
          p.Process.ppid <- parent.Process.pid_global;
          parent.Process.children <- p.Process.pid_global :: parent.Process.children
      | Some _ | None -> ());
      (* Vnode open counts: one per vnode-backed slot. *)
      match ctx.restored_fs with
      | Some filesystem ->
          List.iter
            (fun (_, d) ->
              match d.Fdesc.kind with
              | Fdesc.Vnode_file { vn; _ } ->
                  Fs.mark_open_after_restore filesystem (Vnode.inode vn)
              | _ -> ())
            (Process.fds p)
      | None -> ())
    restored;
  (* Shared-memory segments come back even when no fd references them
     (they live in the global namespaces). *)
  List.iter
    (fun (oid, kind) -> if kind = Serial.kind_shm then ignore (shm ctx oid))
    objects;
  (* UNIX socket pairs: second pass over restored sockets. *)
  List.iter
    (fun (oid, kind) ->
      if kind = Serial.kind_socket then
        match Hashtbl.find_opt ctx.sockets oid with
        | None -> ()
        | Some s -> (
            let image = Serial.socket_of_string (meta ctx oid) in
            if image.Serial.i_peer_oid <> 0 then
              match Hashtbl.find_opt ctx.sockets image.Serial.i_peer_oid with
              | Some p -> Socket.pair s p
              | None -> ()))
    objects;
  (* SIGCHLD for parents of ephemeral children (again scoped to this
     group's processes). *)
  List.iter
    (fun pid_local ->
      match
        List.find_opt
          (fun ((q : Process.t), _) -> q.Process.pid_local = pid_local)
          restored
      with
      | Some (parent, _) -> Process.signal parent Process.sigchld
      | None -> ())
    group_image.Serial.i_ephemeral_parents;
  let procs = List.map fst restored in
  let restore_ns = Clock.elapsed_since clk start_time in
  (* Re-attach a group over the restored processes, seeding identities so
     the next checkpoints stay incremental. *)
  let group =
    Group.attach ~machine ~store ?fs:restored_fs
      ~period_ns:group_image.Serial.i_period ~group_oid procs
  in
  Group.set_ext_sync group group_image.Serial.i_ext_sync_on;
  Group.set_named group group_image.Serial.i_name_ckpts;
  List.iter
    (fun (p : Process.t) ->
      match
        List.find_opt
          (fun (oid, kind) ->
            kind = Serial.kind_proc
            && (Serial.proc_of_string (Store.read_meta store ~epoch ~oid)).Serial.i_pid_local
               = p.Process.pid_local)
          objects
      with
      | Some (oid, _) -> Group.seed_proc_oid group ~pid_local:p.Process.pid_local ~oid
      | None -> ())
    procs;
  Hashtbl.iter
    (fun oid (d : Fdesc.t) -> Group.seed_desc_oid group ~desc_id:d.Fdesc.desc_id ~oid)
    ctx.descs;
  Hashtbl.iter (fun oid p -> Group.seed_sub_oid group ~kind:"pipe" ~id:(Pipe.id p) ~oid) ctx.pipes;
  Hashtbl.iter
    (fun oid s -> Group.seed_sub_oid group ~kind:"socket" ~id:(Socket.id s) ~oid)
    ctx.sockets;
  Hashtbl.iter
    (fun oid k -> Group.seed_sub_oid group ~kind:"kqueue" ~id:(Kqueue.id k) ~oid)
    ctx.kqueues;
  Hashtbl.iter (fun oid p -> Group.seed_sub_oid group ~kind:"pty" ~id:(Pty.id p) ~oid) ctx.ptys;
  Hashtbl.iter (fun oid s -> Group.seed_sub_oid group ~kind:"shm" ~id:(Shm.id s) ~oid) ctx.shms;
  (* Memory objects: parents before children so parent links resolve. *)
  let registered = Hashtbl.create 16 in
  let rec register oid obj =
    if not (Hashtbl.mem registered oid) then begin
      Hashtbl.replace registered oid ();
      (match Vm_object.parent obj with
      | Some parent ->
          Hashtbl.iter
            (fun p_oid p_obj -> if p_obj == parent then register p_oid p_obj)
            ctx.memobjs
      | None -> ());
      Group.register_restored_memobj group ~oid obj
    end
  in
  Hashtbl.iter register ctx.memobjs;
  Group.prepare_after_restore group;
  { group; procs; fs = restored_fs; restore_ns }

(* Verified restore --------------------------------------------------------------- *)

module Crc32 = Aurora_util.Crc32
module Wire = Aurora_objstore.Wire

type attempt = { at_epoch : int; at_reason : string }

type restore_error =
  | No_checkpoints
  | No_valid_epoch of attempt list

let pp_restore_error = function
  | No_checkpoints -> "no complete checkpoint in the store"
  | No_valid_epoch attempts ->
      "no verifiable epoch: "
      ^ String.concat "; "
          (List.map
             (fun a -> Printf.sprintf "epoch %d (%s)" a.at_epoch a.at_reason)
             attempts)

(* Check one epoch against its own manifest: every object the manifest
   names must be present with the recorded kind, its metadata and page
   payloads must hash to the recorded CRCs, and the metadata must still
   parse.  All reads are charged normally but nothing is mutated. *)
let verify_epoch ~store ~epoch =
  Otrace.with_span ~cat:"restore" ~name:"verify"
    ~args:[ ("epoch", Otrace.Int epoch) ]
  @@ fun () ->
  try
    let objects = Store.objects_at store ~epoch in
    match List.filter (fun (_, k) -> k = Serial.kind_manifest) objects with
    | [] -> Error "no manifest object"
    | _ :: _ :: _ -> Error "several manifest objects"
    | [ (moid, _) ] ->
        let m = Serial.manifest_of_string (Store.read_meta store ~epoch ~oid:moid) in
        if m.Serial.i_m_epoch <> epoch then
          Error
            (Printf.sprintf "manifest written for epoch %d, found in epoch %d"
               m.Serial.i_m_epoch epoch)
        else begin
          let others = List.filter (fun (oid, _) -> oid <> moid) objects in
          if List.length others <> m.Serial.i_m_count then
            Error
              (Printf.sprintf "epoch holds %d objects, manifest says %d"
                 (List.length others) m.Serial.i_m_count)
          else begin
            let check (e : Serial.manifest_entry) =
              let oid = e.Serial.i_me_oid in
              match List.find_opt (fun (o, _) -> o = oid) others with
              | None -> Error (Printf.sprintf "oid %d named but absent" oid)
              | Some (_, kind) when kind <> e.Serial.i_me_kind ->
                  Error
                    (Printf.sprintf "oid %d is %S, manifest says %S" oid kind
                       e.Serial.i_me_kind)
              | Some (_, kind) ->
                  let meta = Store.read_meta store ~epoch ~oid in
                  if Crc32.of_string meta <> e.Serial.i_me_meta_crc then
                    Error (Printf.sprintf "oid %d metadata CRC mismatch" oid)
                  else begin
                    let crcs = Store.page_crcs store ~epoch ~oid in
                    if List.length crcs <> e.Serial.i_me_pages then
                      Error
                        (Printf.sprintf "oid %d has %d pages, manifest says %d"
                           oid (List.length crcs) e.Serial.i_me_pages)
                    else if
                      Serial.pages_fingerprint crcs <> e.Serial.i_me_pages_crc
                    then Error (Printf.sprintf "oid %d page-set fingerprint mismatch" oid)
                    else begin
                      match Serial.parse_check ~kind meta with
                      | Error msg ->
                          Error (Printf.sprintf "oid %d metadata unparseable: %s" oid msg)
                      | Ok () ->
                          (* Deep check: the payloads on disk, not just the
                             CRCs the leaves recorded at write time. *)
                          let bad =
                            List.find_opt
                              (fun (idx, payload) ->
                                match List.assoc_opt idx crcs with
                                | Some crc -> Crc32.of_bytes payload <> crc
                                | None -> true)
                              (Store.read_pages store ~epoch ~oid)
                          in
                          (match bad with
                          | Some (idx, _) ->
                              Error
                                (Printf.sprintf "oid %d page %d payload corrupt" oid idx)
                          | None -> Ok ())
                    end
                  end
            in
            let rec all = function
              | [] -> Ok m
              | e :: rest -> (
                  match check e with Ok () -> all rest | Error _ as err -> err)
            in
            all m.Serial.i_m_entries
          end
        end
  with
  | Serial.Malformed msg -> Error ("malformed manifest: " ^ msg)
  | Wire.Corrupt msg -> Error ("corrupt manifest encoding: " ^ msg)
  | Store.Corrupt_store msg -> Error ("corrupt store: " ^ msg)
  | Failure msg -> Error msg

type verified = {
  vr_result : result;
  vr_epoch : int;
  vr_manifest : Serial.manifest_image;
  vr_skipped : attempt list;
}

let restore_verified ~machine ~store ?(lazy_pages = false) ?group_oid
    ?max_fallback () =
  let newest_first = List.rev (Store.checkpoint_epochs store) in
  let epochs =
    match max_fallback with
    | None -> newest_first
    | Some n ->
        List.filteri (fun i _ -> i <= n) newest_first
  in
  match epochs with
  | [] -> Error No_checkpoints
  | _ ->
      let rec go tried = function
        | [] -> Error (No_valid_epoch (List.rev tried))
        | epoch :: rest -> (
            match verify_epoch ~store ~epoch with
            | Error reason ->
                if Otrace.is_on () then
                  Otrace.instant ~cat:"restore" "fallback"
                    ~args:
                      [ ("epoch", Otrace.Int epoch); ("reason", Otrace.Str reason) ];
                go ({ at_epoch = epoch; at_reason = reason } :: tried) rest
            | Ok manifest -> (
                match restore ~machine ~store ~epoch ~lazy_pages ?group_oid () with
                | r ->
                    Ok
                      {
                        vr_result = r;
                        vr_epoch = epoch;
                        vr_manifest = manifest;
                        vr_skipped = List.rev tried;
                      }
                | exception
                    (( Serial.Malformed msg
                     | Wire.Corrupt msg
                     | Store.Corrupt_store msg
                     | Failure msg ) as _e) ->
                    go
                      ({ at_epoch = epoch; at_reason = "restore failed: " ^ msg }
                      :: tried)
                      rest))
      in
      go [] epochs
