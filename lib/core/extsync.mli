(** External synchrony: withhold outgoing messages until the computation
    that produced them is durable (Nightingale et al., applied to
    consistency groups in paper section 3).

    Messages sent outside the consistency group on descriptors with
    external synchrony enabled are buffered here; when a checkpoint
    covering the send becomes durable, the buffered messages are released
    to their destinations with the durability time as their effective send
    time.  Communication {e within} a group is never buffered — the group
    is checkpointed atomically. *)

type t

type release = { tag : string; deliver : release_time:int -> unit }

val create : unit -> t

val buffer : t -> epoch:int -> release -> unit
(** Hold a message produced during checkpoint interval [epoch]. *)

val pending : t -> int

val release_up_to : t -> epoch:int -> now:int -> int
(** A checkpoint covering intervals up to [epoch] became durable at [now]:
    deliver every buffered message from those intervals; returns how many
    were released. *)

val drop_all : t -> int
(** A crash: buffered messages were never visible outside, which is the
    correctness property external synchrony buys. *)

val drop_after : t -> epoch:int -> int
(** Failover recovered [epoch]: discard exactly the messages produced in
    later intervals (the discarded window) and keep the rest eligible for
    release; returns how many were dropped. *)
