module Clock = Aurora_sim.Clock
module Machine = Aurora_kern.Machine
module Store = Aurora_objstore.Store
module Link = Aurora_net.Link
module Otrace = Aurora_obs.Trace
module Ometrics = Aurora_obs.Metrics

let m_ha_attempts = Ometrics.counter "ha.attempts"
let m_ha_retransmits = Ometrics.counter "ha.retransmits"
let h_ha_ship_ns = Ometrics.histogram "ha.ship_ns"

type stats = {
  ha_shipments : int;
  ha_attempts : int;
  ha_retransmits : int;
  ha_dup_acks : int;
  ha_verify_rejects : int;
  ha_backoff_ns : int;
}

let zero_stats =
  {
    ha_shipments = 0;
    ha_attempts = 0;
    ha_retransmits = 0;
    ha_dup_acks = 0;
    ha_verify_rejects = 0;
    ha_backoff_ns = 0;
  }

type t = {
  primary : Group.t;
  standby_store : Store.t;
  link : Link.t;
  outbox : Extsync.t option;
  max_retries : int;
  mutable last_shipped : int; (* primary epoch *)
  mutable total_bytes : int;
  mutable next_seq : int;
  mutable rcv_src_epoch : int; (* newest primary epoch installed on standby *)
  mutable installed : (int * int) list; (* standby epoch -> primary epoch *)
  mutable pending_acks : (int * Migrate.ack) list; (* arrival, ack *)
  mutable stats : stats;
}

let create ?link ?outbox ?(max_retries = 8) ~primary ~standby_store () =
  let link = match link with Some l -> l | None -> Link.create ~name:"ha" () in
  {
    primary;
    standby_store;
    link;
    outbox;
    max_retries;
    last_shipped = 0;
    total_bytes = 0;
    next_seq = 1;
    rcv_src_epoch = 0;
    installed = [];
    pending_acks = [];
    stats = zero_stats;
  }

let link t = t.link
let stats t = t.stats

(* Standby side: one delivery through the fault plane.  A frame that
   fails its CRC earns no ack at all (the sender times out); a duplicate
   of an epoch already installed is re-acked without touching the store;
   anything else is installed through the manifest-digest check.  The
   acks themselves travel back through the same fault plane. *)
let receive t (d : Link.delivery) =
  let sclk = Store.clock t.standby_store in
  Clock.advance_to sclk d.Link.d_arrival;
  match Migrate.open_shipment d.Link.d_payload with
  | Error _ -> [] (* corrupt in flight: silence, sender retransmits *)
  | Ok sh ->
      let ok, reason =
        if sh.Migrate.sh_epoch <= t.rcv_src_epoch then begin
          t.stats <- { t.stats with ha_dup_acks = t.stats.ha_dup_acks + 1 };
          (true, "duplicate")
        end
        else begin
          match Migrate.install_verified ~store:t.standby_store sh with
          | Ok standby_epoch ->
              t.rcv_src_epoch <- sh.Migrate.sh_epoch;
              t.installed <-
                (standby_epoch, sh.Migrate.sh_epoch) :: t.installed;
              (true, "")
          | Error msg ->
              t.stats <-
                { t.stats with ha_verify_rejects = t.stats.ha_verify_rejects + 1 };
              (false, msg)
        end
      in
      if Otrace.is_on () then
        (* Standby-side event: stamped from the standby's clock, not the
           tracer's. *)
        Otrace.instant ~ts:(Clock.now sclk) ~cat:"ha" "receive"
          ~args:
            [
              ("epoch", Otrace.Int sh.Migrate.sh_epoch);
              ("ok", Otrace.Int (Bool.to_int ok));
              ("reason", Otrace.Str reason);
            ];
      let frame =
        Migrate.seal_ack ~seq:sh.Migrate.sh_seq ~epoch:sh.Migrate.sh_epoch ~ok
          ~reason
      in
      Link.transmit t.link ~now:(Clock.now sclk) ~payload:frame ()
      |> List.filter_map (fun (ad : Link.delivery) ->
             match Migrate.open_ack ad.Link.d_payload with
             | Ok a -> Some (ad.Link.d_arrival, a)
             | Error _ -> None (* ack corrupted in flight *))

let replicate_result t =
  let epoch = Group.last_epoch t.primary in
  if epoch = 0 || epoch = t.last_shipped then Ok 0
  else begin
    let store = Group.store t.primary in
    let pclk = Store.clock store in
    let stream =
      if t.last_shipped = 0 then Migrate.serialize ~store ~epoch
      else Migrate.serialize_incremental ~store ~base:t.last_shipped ~epoch
    in
    let bytes = Migrate.stream_size stream in
    (* The shipped digest comes from the primary's own manifest for this
       epoch: the ack will certify that the standby's composed state
       hashes to the same thing. *)
    match
      List.find_opt
        (fun (_, kind) -> kind = Serial.kind_manifest)
        (Store.objects_at store ~epoch)
    with
    | None ->
        Error (Printf.sprintf "primary epoch %d carries no manifest" epoch)
    | Some (moid, _) -> (
        match Serial.manifest_of_string (Store.read_meta store ~epoch ~oid:moid) with
        | exception Serial.Malformed msg ->
            Error ("primary manifest unreadable: " ^ msg)
        | m ->
            let seq = t.next_seq in
            t.next_seq <- seq + 1;
            let frame =
              Migrate.seal_shipment ~seq ~base:t.last_shipped ~epoch
                ~manifest_oid:moid ~count:m.Serial.i_m_count
                ~summary:(Serial.manifest_summary m.Serial.i_m_entries)
                stream
            in
            let fbytes = String.length frame in
            let base_timeout = 2 * Link.rtt ~bytes:fbytes in
            (* Stop-and-wait with exponential backoff in virtual time.
               Acks from older attempts that straggle in are kept in
               [pending_acks] so a late arrival still counts in a later
               wait window. *)
            let rec attempt k =
              if k > t.max_retries then
                Error
                  (Printf.sprintf "epoch %d unacknowledged after %d attempts"
                     epoch t.max_retries)
              else begin
                let now = Clock.now pclk in
                t.stats <- { t.stats with ha_attempts = t.stats.ha_attempts + 1 };
                Ometrics.incr m_ha_attempts;
                if k > 1 then begin
                  t.stats <-
                    { t.stats with ha_retransmits = t.stats.ha_retransmits + 1 };
                  Ometrics.incr m_ha_retransmits;
                  if Otrace.is_on () then
                    Otrace.instant ~cat:"ha" "retransmit"
                      ~args:[ ("seq", Otrace.Int seq); ("k", Otrace.Int k) ]
                end;
                let deliveries =
                  Link.transmit t.link ~retransmit:(k > 1) ~now ~payload:frame ()
                in
                List.iter
                  (fun d -> t.pending_acks <- t.pending_acks @ receive t d)
                  (List.sort
                     (fun a b -> compare a.Link.d_arrival b.Link.d_arrival)
                     deliveries);
                let deadline = now + (base_timeout * (1 lsl (k - 1))) in
                (* A partition that outlives the window cannot be out-waited
                   by backoff alone: extend the deadline past the heal. *)
                let deadline =
                  let heal = Link.partitioned_until t.link in
                  if heal > deadline then heal + base_timeout else deadline
                in
                let usable, later =
                  List.partition
                    (fun (arrival, (a : Migrate.ack)) ->
                      a.Migrate.ack_epoch = epoch && arrival <= deadline)
                    t.pending_acks
                in
                match
                  List.sort (fun (a, _) (b, _) -> compare a b) usable
                with
                | [] ->
                    (* The whole wait window passed without a usable ack:
                       that time is backoff, attributable in benchmarks. *)
                    t.stats <-
                      {
                        t.stats with
                        ha_backoff_ns =
                          t.stats.ha_backoff_ns + (deadline - Clock.now pclk);
                      };
                    Clock.advance_to pclk deadline;
                    if Otrace.is_on () then
                      Otrace.instant ~cat:"ha" "timeout"
                        ~args:[ ("seq", Otrace.Int seq); ("k", Otrace.Int k) ];
                    attempt (k + 1)
                | (arrival, first) :: _ ->
                    t.pending_acks <- later;
                    Clock.advance_to pclk arrival;
                    if Otrace.is_on () then
                      Otrace.instant ~cat:"ha" "ack"
                        ~args:
                          [
                            ("seq", Otrace.Int seq);
                            ("epoch", Otrace.Int epoch);
                            ("ok", Otrace.Int (Bool.to_int first.Migrate.ack_ok));
                          ];
                    if first.Migrate.ack_ok then begin
                      t.last_shipped <- epoch;
                      t.total_bytes <- t.total_bytes + bytes;
                      t.stats <-
                        {
                          t.stats with
                          ha_shipments = t.stats.ha_shipments + 1;
                        };
                      Ok bytes
                    end
                    else
                      (* The standby refused the composed epoch: bytes
                         arrived intact but contradict the manifest.
                         Retransmitting the same frame cannot help. *)
                      Error
                        (Printf.sprintf "standby rejected epoch %d: %s" epoch
                           first.Migrate.ack_reason)
              end
            in
            let ship_begin = Clock.now pclk in
            let r =
              Otrace.with_span ~cat:"ha" ~name:"replicate"
                ~args:
                  [
                    ("epoch", Otrace.Int epoch);
                    ("seq", Otrace.Int seq);
                    ("bytes", Otrace.Int bytes);
                  ]
                (fun () -> attempt 1)
            in
            (match r with
            | Ok _ -> Ometrics.observe_ns h_ha_ship_ns (Clock.now pclk - ship_begin)
            | Error _ -> ());
            r)
  end

let shipped_epoch t = t.last_shipped
let lag_epochs t = Group.last_epoch t.primary - t.last_shipped
let bytes_replicated t = t.total_bytes

type failover_report = {
  fo_restore : Restore.verified;
  fo_source_epoch : int;
  fo_dropped_msgs : int;
}

let failover_verified t ~machine =
  match Restore.restore_verified ~machine ~store:t.standby_store () with
  | Error e -> Error e
  | Ok v ->
      let source =
        match List.assoc_opt v.Restore.vr_epoch t.installed with
        | Some primary_epoch -> primary_epoch
        | None -> 0
      in
      (* Externally-synchronized messages from the discarded window were
         never released — failing over past them must drop them, which is
         exactly the correctness property external synchrony buys. *)
      let dropped =
        match t.outbox with
        | None -> 0
        | Some outbox ->
            if source > 0 then Extsync.drop_after outbox ~epoch:source
            else Extsync.drop_all outbox
      in
      Ok { fo_restore = v; fo_source_epoch = source; fo_dropped_msgs = dropped }

let failover t ~machine =
  match failover_verified t ~machine with
  | Ok r -> r.fo_restore.Restore.vr_result
  | Error e -> failwith ("Ha.failover: " ^ Restore.pp_restore_error e)
