module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost
module Arbiter = Aurora_block.Arbiter
module Striped = Aurora_block.Striped
module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Syscall = Aurora_kern.Syscall
module Vm_space = Aurora_vm.Vm_space
module Page = Aurora_vm.Page
module Store = Aurora_objstore.Store
module Fs = Aurora_fs.Fs
module Histogram = Aurora_util.Histogram
module Otrace = Aurora_obs.Trace
module Ometrics = Aurora_obs.Metrics

let m_fleet_epochs = Ometrics.counter "fleet.epochs"
let m_fleet_delayed = Ometrics.counter "fleet.delayed"
let m_fleet_rejected = Ometrics.counter "fleet.rejected"

type spec = {
  sp_name : string;
  sp_weight : int;
  sp_procs : int;
  sp_pipes_per_proc : int;
  sp_arena_pages : int;
  sp_dirty_pipes : int;
  sp_dirty_pages : int;
}

let default_spec name =
  {
    sp_name = name;
    sp_weight = 1;
    sp_procs = 1;
    sp_pipes_per_proc = 2;
    sp_arena_pages = 4;
    sp_dirty_pipes = 1;
    sp_dirty_pages = 1;
  }

type proc_handle = {
  ph_proc : Process.t;
  ph_pipes : (int * int) array;
  ph_arena_addr : int;
}

type tenant = {
  t_spec : spec;
  t_index : int;
  t_machine : Machine.t;
  t_device : Striped.t;
  t_store : Store.t;
  t_group : Group.t;
  t_arb : Arbiter.tenant;
  t_handles : proc_handle list;
  t_stop : Histogram.t;
  mutable t_epochs : int;
  mutable t_bytes : int;
  mutable t_next_at : int;
  mutable t_retrying : bool; (* delayed epoch: don't re-mutate on wake *)
  mutable t_delay_streak : int; (* consecutive admission delays of this epoch *)
  mutable t_last_flush_bytes : int; (* admission estimate for the next epoch *)
  mutable t_round : int;
}

type t = {
  f_clock : Clock.t;
  f_arbiter : Arbiter.t;
  f_period : int;
  f_tenants : tenant array;
  f_started_at : int;
  (* Every admitted epoch's flush activity interval, for the collision
     report: (flush submission begin, durable end, tenant index). *)
  mutable f_spans : (int * int * int) list;
}

(* The workload surface every tenant (and its solo baseline) is built
   from, in one fixed construction order so pid and oid allocation are
   identical across the two. *)
let build_workload machine ~spec =
  List.init spec.sp_procs (fun i ->
      let p = Syscall.spawn machine ~name:(Printf.sprintf "%s-p%d" spec.sp_name i) in
      let pipes = Array.init spec.sp_pipes_per_proc (fun _ -> Syscall.pipe machine p) in
      let arena = Syscall.mmap_anon p ~npages:(max 1 spec.sp_arena_pages) in
      { ph_proc = p; ph_pipes = pipes; ph_arena_addr = Vm_space.addr_of_entry arena })

let boot_tenant ~clock ~period_ns ~arbiter ~index spec =
  let machine = Machine.create ~clock () in
  let device = Striped.create () in
  let store = Store.format ~dev:device ~clock in
  let fs = Fs.create ~store in
  Machine.mount machine (Fs.vfs_ops fs);
  let handles = build_workload machine ~spec in
  let group =
    Group.attach ~machine ~store ~fs ~period_ns
      (List.map (fun h -> h.ph_proc) handles)
  in
  let arb = Arbiter.register arbiter ~name:spec.sp_name ~weight:spec.sp_weight () in
  Striped.set_arbiter device (Some (arbiter, arb));
  {
    t_spec = spec;
    t_index = index;
    t_machine = machine;
    t_device = device;
    t_store = store;
    t_group = group;
    t_arb = arb;
    t_handles = handles;
    t_stop = Histogram.create ();
    t_epochs = 0;
    t_bytes = 0;
    t_next_at = 0;
    t_retrying = false;
    t_delay_streak = 0;
    t_last_flush_bytes = 0;
    t_round = 0;
  }

let create ?bandwidth ~period_ns specs =
  assert (specs <> []);
  let bandwidth =
    match bandwidth with
    | Some b -> b
    | None -> Cost.nvme_stripe_devices * Cost.nvme_device_bandwidth
  in
  let clock = Clock.create () in
  let arbiter = Arbiter.create ~name:"flushbus" ~bandwidth ~period_ns in
  let tenants =
    Array.of_list
      (List.mapi (fun i spec -> boot_tenant ~clock ~period_ns ~arbiter ~index:i spec) specs)
  in
  (* Stagger: each tenant's first cycle starts at its own window offset. *)
  Array.iter
    (fun tn -> tn.t_next_at <- fst (Arbiter.window arbiter tn.t_arb))
    tenants;
  {
    f_clock = clock;
    f_arbiter = arbiter;
    f_period = period_ns;
    f_tenants = tenants;
    f_started_at = Clock.now clock;
    f_spans = [];
  }

let clock t = t.f_clock
let num_tenants t = Array.length t.f_tenants
let tenant_name t i = t.f_tenants.(i).t_spec.sp_name
let machine t i = t.f_tenants.(i).t_machine
let group t i = t.f_tenants.(i).t_group
let store t i = t.f_tenants.(i).t_store
let device t i = t.f_tenants.(i).t_device
let handles t i = t.f_tenants.(i).t_handles

(* One tenant's checkpoint, with fleet accounting: stop-time histogram,
   flushed bytes, and the flush activity span [submission begin, durable
   end] used by the collision report. *)
let checkpoint_tenant t tn ~wait_durable =
  let stats =
    Otrace.with_span ~cat:"fleet" ~name:"ckpt"
      ~args:
        [
          ("tenant", Otrace.Str tn.t_spec.sp_name);
          ("epoch", Otrace.Int (Group.last_epoch tn.t_group + 1));
        ]
    @@ fun () -> Group.checkpoint ~wait_durable tn.t_group
  in
  Histogram.add tn.t_stop (float_of_int stats.Group.stop_ns);
  tn.t_epochs <- tn.t_epochs + 1;
  tn.t_bytes <- tn.t_bytes + stats.Group.bytes_written;
  tn.t_last_flush_bytes <- stats.Group.bytes_written;
  Ometrics.incr m_fleet_epochs;
  let flush_end = Clock.now t.f_clock in
  let flush_begin = flush_end - stats.Group.flush_ns in
  let durable_end = max flush_end stats.Group.durable_at in
  t.f_spans <- (flush_begin, durable_end, tn.t_index) :: t.f_spans;
  stats

let checkpoint_now ?(wait_durable = false) t i =
  checkpoint_tenant t t.f_tenants.(i) ~wait_durable

(* The built-in mutation workload: a rotating window of pipes gets a
   write+drain and a rotating window of arena pages a store, so each
   period dirties a bounded, deterministic slice of the tenant. *)
let mutate_workload ~spec ~machine ~handles ~round:r =
  let handles = Array.of_list handles in
  let nh = Array.length handles in
  for k = 0 to spec.sp_dirty_pipes - 1 do
    let h = handles.((r + k) mod nh) in
    let np = Array.length h.ph_pipes in
    if np > 0 then begin
      let rd, wr = h.ph_pipes.((r + k) mod np) in
      ignore (Syscall.write machine h.ph_proc ~fd:wr "x");
      ignore (Syscall.read machine h.ph_proc ~fd:rd ~len:1)
    end
  done;
  for k = 0 to spec.sp_dirty_pages - 1 do
    let h = handles.((r + k) mod nh) in
    let page = (r + k) mod max 1 spec.sp_arena_pages in
    Vm_space.touch_write h.ph_proc.Process.space
      ~addr:(h.ph_arena_addr + (page * Page.logical_size))
      ~len:1
  done

let mutate tn =
  mutate_workload ~spec:tn.t_spec ~machine:tn.t_machine ~handles:tn.t_handles
    ~round:tn.t_round;
  tn.t_round <- tn.t_round + 1

(* An epoch is deferred by admission at most this many consecutive
   windows before it is force-admitted.  Bounds checkpoint staleness when
   the fleet is oversubscribed (aggregate stop time exceeds the period):
   without it, phase-unlucky tenants can be delayed every period while
   their neighbours checkpoint, collapsing fairness. *)
let max_delay_streak = 2

(* One scheduled slot of tenant [tn]: mutate (unless waking from an
   admission delay), consult admission, then checkpoint or push the epoch
   out.  Always leaves t_next_at strictly in the future. *)
let run_slot t tn =
  let now = Clock.now t.f_clock in
  if not tn.t_retrying then mutate tn;
  tn.t_retrying <- false;
  let admit () =
    tn.t_delay_streak <- 0;
    ignore (checkpoint_tenant t tn ~wait_durable:false);
    tn.t_next_at <- tn.t_next_at + t.f_period
  in
  match Arbiter.admit t.f_arbiter tn.t_arb ~now ~est_bytes:tn.t_last_flush_bytes with
  | Arbiter.Admit -> admit ()
  | Arbiter.Delay _ when tn.t_delay_streak >= max_delay_streak ->
      Otrace.instant ~cat:"fleet" "admission.force"
        ~args:[ ("tenant", Otrace.Str tn.t_spec.sp_name) ];
      admit ()
  | Arbiter.Delay d ->
      Arbiter.note_delayed t.f_arbiter tn.t_arb;
      Ometrics.incr m_fleet_delayed;
      Otrace.instant ~cat:"fleet" "admission.delay"
        ~args:[ ("tenant", Otrace.Str tn.t_spec.sp_name); ("ns", Otrace.Int d) ];
      tn.t_retrying <- true;
      tn.t_delay_streak <- tn.t_delay_streak + 1;
      tn.t_next_at <- now + d
  | Arbiter.Reject ->
      Arbiter.note_rejected t.f_arbiter tn.t_arb;
      Ometrics.incr m_fleet_rejected;
      Otrace.instant ~cat:"fleet" "admission.reject"
        ~args:[ ("tenant", Otrace.Str tn.t_spec.sp_name) ];
      tn.t_next_at <- tn.t_next_at + t.f_period

let run_for t ~duration =
  let deadline = Clock.now t.f_clock + duration in
  let rec loop () =
    (* Earliest scheduled tenant; ties resolve to the lowest index, which
       is also TDM order. *)
    let next = ref t.f_tenants.(0) in
    Array.iter (fun tn -> if tn.t_next_at < !next.t_next_at then next := tn) t.f_tenants;
    if !next.t_next_at <= deadline then begin
      Clock.advance_to t.f_clock !next.t_next_at;
      run_slot t !next;
      loop ()
    end
    else Clock.advance_to t.f_clock deadline
  in
  loop ()

(* Solo baseline ------------------------------------------------------------- *)

type solo = {
  so_machine : Machine.t;
  so_device : Striped.t;
  so_store : Store.t;
  so_group : Group.t;
  so_handles : proc_handle list;
  so_spec : spec;
  so_stop : Histogram.t;
  mutable so_round : int;
}

let solo ~period_ns spec =
  let clock = Clock.create () in
  let machine = Machine.create ~clock () in
  let device = Striped.create () in
  let store = Store.format ~dev:device ~clock in
  let fs = Fs.create ~store in
  Machine.mount machine (Fs.vfs_ops fs);
  let handles = build_workload machine ~spec in
  let group =
    Group.attach ~machine ~store ~fs ~period_ns
      (List.map (fun h -> h.ph_proc) handles)
  in
  {
    so_machine = machine;
    so_device = device;
    so_store = store;
    so_group = group;
    so_handles = handles;
    so_spec = spec;
    so_stop = Histogram.create ();
    so_round = 0;
  }

let solo_run_for s ~duration =
  let clk = s.so_machine.Machine.clock in
  let period = Group.period_ns s.so_group in
  let deadline = Clock.now clk + duration in
  let next = ref (Clock.now clk) in
  while !next <= deadline do
    Clock.advance_to clk !next;
    mutate_workload ~spec:s.so_spec ~machine:s.so_machine ~handles:s.so_handles
      ~round:s.so_round;
    s.so_round <- s.so_round + 1;
    let stats = Group.checkpoint s.so_group in
    Histogram.add s.so_stop (float_of_int stats.Group.stop_ns);
    next := !next + period
  done;
  Clock.advance_to clk deadline

let solo_stop_p99 s =
  if Histogram.count s.so_stop = 0 then 0.0
  else Histogram.percentile_interp s.so_stop 99.0

(* Reporting ------------------------------------------------------------------ *)

type tenant_report = {
  tr_name : string;
  tr_epochs : int;
  tr_bytes : int;
  tr_stop_p50 : float;
  tr_stop_p99 : float;
  tr_stop_max : float;
  tr_delayed : int;
  tr_rejected : int;
  tr_lane_wait_ns : int;
  tr_lane_busy_ns : int;
}

type report = {
  r_elapsed_ns : int;
  r_epochs : int;
  r_bytes : int;
  r_ckpt_throughput : float;
  r_bytes_per_s : float;
  r_jain : float;
  r_collisions : int;
  r_accounting_ok : bool;
  r_tenants : tenant_report list;
}

let jain xs =
  match xs with
  | [] -> 1.0
  | _ ->
      let n = float_of_int (List.length xs) in
      let s = List.fold_left ( +. ) 0.0 xs in
      let s2 = List.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
      if s2 = 0.0 then 1.0 else s *. s /. (n *. s2)

(* Flush spans of distinct tenants overlapping in time.  Sweep in start
   order, keeping the still-open spans; per-tenant spans are sequential
   (a group waits for durability before its next epoch), so the open set
   stays fleet-sized. *)
let count_collisions spans =
  let sorted = List.sort compare spans in
  let collisions = ref 0 in
  let open_spans = ref [] in
  List.iter
    (fun (s, e, tn) ->
      open_spans := List.filter (fun (_, oe, _) -> oe > s) !open_spans;
      List.iter
        (fun (_, _, otn) -> if otn <> tn then incr collisions)
        !open_spans;
      open_spans := (s, e, tn) :: !open_spans)
    sorted;
  !collisions

let tenant_report t tn =
  let a = Arbiter.stats t.f_arbiter tn.t_arb in
  let pct p = if Histogram.count tn.t_stop = 0 then 0.0 else Histogram.percentile_interp tn.t_stop p in
  {
    tr_name = tn.t_spec.sp_name;
    tr_epochs = tn.t_epochs;
    tr_bytes = tn.t_bytes;
    tr_stop_p50 = pct 50.0;
    tr_stop_p99 = pct 99.0;
    tr_stop_max = (if Histogram.count tn.t_stop = 0 then 0.0 else Histogram.max tn.t_stop);
    tr_delayed = a.Arbiter.ts_delayed;
    tr_rejected = a.Arbiter.ts_rejected;
    tr_lane_wait_ns = a.Arbiter.ts_wait_ns;
    tr_lane_busy_ns = a.Arbiter.ts_busy_ns;
  }

let report t =
  let tenants = Array.to_list (Array.map (fun tn -> tenant_report t tn) t.f_tenants) in
  let epochs = List.fold_left (fun a tr -> a + tr.tr_epochs) 0 tenants in
  let bytes = List.fold_left (fun a tr -> a + tr.tr_bytes) 0 tenants in
  let elapsed = Clock.now t.f_clock - t.f_started_at in
  let secs = float_of_int (max 1 elapsed) /. 1e9 in
  {
    r_elapsed_ns = elapsed;
    r_epochs = epochs;
    r_bytes = bytes;
    r_ckpt_throughput = float_of_int epochs /. secs;
    r_bytes_per_s = float_of_int bytes /. secs;
    r_jain = jain (List.map (fun tr -> float_of_int tr.tr_bytes) tenants);
    r_collisions = count_collisions t.f_spans;
    r_accounting_ok = Arbiter.accounting_ok t.f_arbiter;
    r_tenants = tenants;
  }
