(** [sls send] / [sls recv]: ship checkpoints between machines.

    A checkpoint serializes to a self-contained byte stream (all objects,
    metadata and pages); the receiver installs it as a fresh checkpoint in
    its own store and can then restore it.  {!send_incremental} ships only
    the objects whose version changed since a base epoch, which is the
    building block for live migration and high availability (pre-copy
    iterations of dirty state). *)

val serialize : store:Aurora_objstore.Store.t -> epoch:int -> string
(** The full checkpoint as a portable stream. *)

val serialize_incremental :
  store:Aurora_objstore.Store.t -> base:int -> epoch:int -> string
(** Only objects whose pages or metadata changed between the epochs. *)

val stream_size : string -> int

val install :
  store:Aurora_objstore.Store.t -> string -> int
(** Install a stream as a new checkpoint in the target store; returns its
    epoch there.  Raises [Failure] on a corrupt stream. *)

val transfer_time_ns : bytes:int -> int
(** Time to push a stream over the 10 GbE link of the testbed. *)

(** {1 Replication frames}

    HA shipments wrap a stream in a sequenced frame with a CRC-32
    trailer plus a digest of the sender's epoch manifest.  Manifests
    themselves never cross the wire as stream objects: the receiver
    composes the delta onto its previous epoch, recomputes the manifest
    of the result, and commits (and acks) only if the digests agree. *)

type shipment = {
  sh_seq : int;  (** ARQ sequence number *)
  sh_base : int;  (** base epoch the delta assumes (0 = full stream) *)
  sh_epoch : int;  (** sender epoch the stream materializes *)
  sh_manifest_oid : int;  (** oid the manifest object lives at *)
  sh_count : int;  (** objects in the epoch, manifest excluded *)
  sh_summary : int;  (** {!Serial.manifest_summary} of the sender manifest *)
  sh_body : string;  (** the {!serialize}/{!serialize_incremental} stream *)
}

type ack = { ack_seq : int; ack_epoch : int; ack_ok : bool; ack_reason : string }

val seal_shipment :
  seq:int ->
  base:int ->
  epoch:int ->
  manifest_oid:int ->
  count:int ->
  summary:int ->
  string ->
  string

val open_shipment : string -> (shipment, string) result
(** Checks the CRC trailer before parsing; a flipped bit anywhere in the
    frame is an [Error], never an exception. *)

val seal_ack : seq:int -> epoch:int -> ok:bool -> reason:string -> string
val open_ack : string -> (ack, string) result

val install_verified :
  store:Aurora_objstore.Store.t -> shipment -> (int, string) result
(** Install a shipment: compose, verify against the manifest digest,
    then commit — writing the receiver's own manifest object into the
    new epoch.  On [Error] the store is untouched. *)
