type release = { tag : string; deliver : release_time:int -> unit }

type t = { mutable buffered : (int * release) list (* newest first *) }

let create () = { buffered = [] }
let buffer t ~epoch r = t.buffered <- (epoch, r) :: t.buffered
let pending t = List.length t.buffered

let release_up_to t ~epoch ~now =
  let ready, held = List.partition (fun (e, _) -> e <= epoch) t.buffered in
  t.buffered <- held;
  (* Oldest first, preserving send order per destination. *)
  List.iter (fun (_, r) -> r.deliver ~release_time:now) (List.rev ready);
  List.length ready

let drop_all t =
  let n = List.length t.buffered in
  t.buffered <- [];
  n

let drop_after t ~epoch =
  let dropped, held = List.partition (fun (e, _) -> e > epoch) t.buffered in
  t.buffered <- held;
  List.length dropped
