module Crc32 = Aurora_util.Crc32
module Wire = Aurora_objstore.Wire
module Thread = Aurora_kern.Thread

type regs_image = {
  i_rip : int;
  i_rsp : int;
  i_rflags : int;
  i_gp : int array;
  i_fpu : string;
}

type thread_image = {
  i_tid_local : int;
  i_regs : regs_image;
  i_sigmask : int;
  i_pending : int list;
  i_priority : int;
}

type entry_image = {
  i_start_vpn : int;
  i_npages : int;
  i_read : bool;
  i_write : bool;
  i_exec : bool;
  i_shared : bool;
  i_excluded : bool;
  i_obj_oid : int;
  i_obj_pgoff : int;
}

type proc_image = {
  i_pid_local : int;
  i_ppid_local : int;
  i_pgid : int;
  i_sid : int;
  i_name : string;
  i_ephemeral : bool;
  i_cwd : string;
  i_threads : thread_image list;
  i_fds : (int * int) list;
  i_entries : entry_image list;
  i_proc_pending : int list;
  i_aio_reads : (int * int * int) list;
}

type fdesc_kind_image =
  | I_vnode of { inode : int; offset : int; append : bool }
  | I_pipe_r of int
  | I_pipe_w of int
  | I_socket of int
  | I_kqueue of int
  | I_pty_m of int
  | I_pty_s of int
  | I_shm of int
  | I_device of string

type fdesc_image = { i_kind : fdesc_kind_image; i_ext_sync : bool }
type pipe_image = { i_data : string; i_rd_open : bool; i_wr_open : bool }
type msg_image = { i_msg_data : string; i_ctl_oids : int list }

type socket_image = {
  i_domain : int;
  i_proto : int;
  i_laddr : (string * int) option;
  i_raddr : (string * int) option;
  i_opts : (string * int) list;
  i_tcp : int;
  i_snd_seq : int;
  i_rcv_seq : int;
  i_peer_oid : int;
  i_recvq : msg_image list;
  i_sendq : msg_image list;
}

type kevent_image = { i_ident : int; i_filter : int; i_flags : int; i_udata : int }

type pty_image = {
  i_unit : int;
  i_echo : bool;
  i_canonical : bool;
  i_baud : int;
  i_input : string;
  i_output : string;
}

type shm_image = { i_shm_kind : (string, int) Either.t; i_npages : int; i_backing_oid : int }
type memobj_image = { i_parent_oid : int option; i_anon : bool }

type group_image = {
  i_proc_oids : int list;
  i_period : int;
  i_ext_sync_on : bool;
  i_name_ckpts : (string * int) list;
  i_ephemeral_parents : int list;
}

(* The epoch manifest: object count, epoch id and a per-object checksum
   line for everything the epoch contains.  Written as an ordinary store
   object ([kind_manifest]) into the very epoch it describes, and checked
   on replication install and on restore. *)
type manifest_entry = {
  i_me_oid : int;
  i_me_kind : string;
  i_me_meta_crc : int;
  i_me_pages : int;
  i_me_pages_crc : int;
}

type manifest_image = {
  i_m_epoch : int;
  i_m_count : int;
  i_m_entries : manifest_entry list;
}

let kind_group = "sls.group"
let kind_proc = "sls.proc"
let kind_fdesc = "sls.fdesc"
let kind_pipe = "sls.pipe"
let kind_socket = "sls.socket"
let kind_kqueue = "sls.kqueue"
let kind_pty = "sls.pty"
let kind_shm = "sls.shm"
let kind_memobj = "sls.memobj"
let kind_manifest = "sls.manifest"

exception Malformed of string

(* Every exported parser funnels malformed input through [Malformed]:
   short reads and bad tags (Wire.Corrupt, with the byte offset) as well
   as anything a hostile payload provokes out of the runtime
   (Failure/Invalid_argument from string indexing and conversions). *)
let hardened kind parse s =
  try parse s with
  | Malformed _ as e -> raise e
  | Wire.Corrupt msg -> raise (Malformed (Printf.sprintf "%s: %s" kind msg))
  | Failure msg | Invalid_argument msg ->
      raise (Malformed (Printf.sprintf "%s: %s" kind msg))

let bool_w w b = Wire.u8 w (if b then 1 else 0)
let bool_r r = Wire.ru8 r = 1

let finish w = Bytes.to_string (Wire.contents w)
let start s = Wire.reader (Bytes.of_string s)

(* Registers and threads --------------------------------------------------- *)

let regs_w w (r : regs_image) =
  Wire.u64 w r.i_rip;
  Wire.u64 w r.i_rsp;
  Wire.u64 w r.i_rflags;
  Wire.list w (fun g -> Wire.u64 w g) (Array.to_list r.i_gp);
  Wire.str w r.i_fpu

let regs_r r =
  let i_rip = Wire.ru64 r in
  let i_rsp = Wire.ru64 r in
  let i_rflags = Wire.ru64 r in
  let i_gp = Array.of_list (Wire.rlist r Wire.ru64) in
  let i_fpu = Wire.rstr r in
  { i_rip; i_rsp; i_rflags; i_gp; i_fpu }

let thread_w w (t : thread_image) =
  Wire.u64 w t.i_tid_local;
  regs_w w t.i_regs;
  Wire.u64 w t.i_sigmask;
  Wire.list w (fun s -> Wire.u32 w s) t.i_pending;
  Wire.u32 w t.i_priority

let thread_r r =
  let i_tid_local = Wire.ru64 r in
  let i_regs = regs_r r in
  let i_sigmask = Wire.ru64 r in
  let i_pending = Wire.rlist r Wire.ru32 in
  let i_priority = Wire.ru32 r in
  { i_tid_local; i_regs; i_sigmask; i_pending; i_priority }

(* Processes ----------------------------------------------------------------- *)

let entry_w w (e : entry_image) =
  Wire.u64 w e.i_start_vpn;
  Wire.u64 w e.i_npages;
  bool_w w e.i_read;
  bool_w w e.i_write;
  bool_w w e.i_exec;
  bool_w w e.i_shared;
  bool_w w e.i_excluded;
  Wire.u64 w e.i_obj_oid;
  Wire.u64 w e.i_obj_pgoff

let entry_r r =
  let i_start_vpn = Wire.ru64 r in
  let i_npages = Wire.ru64 r in
  let i_read = bool_r r in
  let i_write = bool_r r in
  let i_exec = bool_r r in
  let i_shared = bool_r r in
  let i_excluded = bool_r r in
  let i_obj_oid = Wire.ru64 r in
  let i_obj_pgoff = Wire.ru64 r in
  {
    i_start_vpn;
    i_npages;
    i_read;
    i_write;
    i_exec;
    i_shared;
    i_excluded;
    i_obj_oid;
    i_obj_pgoff;
  }

let proc_to_string (p : proc_image) =
  let w = Wire.writer () in
  Wire.u64 w p.i_pid_local;
  Wire.u64 w p.i_ppid_local;
  Wire.u64 w p.i_pgid;
  Wire.u64 w p.i_sid;
  Wire.str w p.i_name;
  bool_w w p.i_ephemeral;
  Wire.str w p.i_cwd;
  Wire.list w (thread_w w) p.i_threads;
  Wire.list w
    (fun (slot, oid) ->
      Wire.u32 w slot;
      Wire.u64 w oid)
    p.i_fds;
  Wire.list w (entry_w w) p.i_entries;
  Wire.list w (fun s -> Wire.u32 w s) p.i_proc_pending;
  Wire.list w
    (fun (slot, off, len) ->
      Wire.u32 w slot;
      Wire.u64 w off;
      Wire.u64 w len)
    p.i_aio_reads;
  finish w

let proc_of_string s =
  let r = start s in
  let i_pid_local = Wire.ru64 r in
  let i_ppid_local = Wire.ru64 r in
  let i_pgid = Wire.ru64 r in
  let i_sid = Wire.ru64 r in
  let i_name = Wire.rstr r in
  let i_ephemeral = bool_r r in
  let i_cwd = Wire.rstr r in
  let i_threads = Wire.rlist r thread_r in
  let i_fds =
    Wire.rlist r (fun r ->
        let slot = Wire.ru32 r in
        let oid = Wire.ru64 r in
        (slot, oid))
  in
  let i_entries = Wire.rlist r entry_r in
  let i_proc_pending = Wire.rlist r Wire.ru32 in
  let i_aio_reads =
    Wire.rlist r (fun r ->
        let slot = Wire.ru32 r in
        let off = Wire.ru64 r in
        let len = Wire.ru64 r in
        (slot, off, len))
  in
  {
    i_pid_local;
    i_ppid_local;
    i_pgid;
    i_sid;
    i_name;
    i_ephemeral;
    i_cwd;
    i_threads;
    i_fds;
    i_entries;
    i_proc_pending;
    i_aio_reads;
  }

(* File descriptions ------------------------------------------------------------ *)

let fdesc_to_string (f : fdesc_image) =
  let w = Wire.writer () in
  (match f.i_kind with
  | I_vnode { inode; offset; append } ->
      Wire.u8 w 0;
      Wire.u64 w inode;
      Wire.u64 w offset;
      bool_w w append
  | I_pipe_r oid ->
      Wire.u8 w 1;
      Wire.u64 w oid
  | I_pipe_w oid ->
      Wire.u8 w 2;
      Wire.u64 w oid
  | I_socket oid ->
      Wire.u8 w 3;
      Wire.u64 w oid
  | I_kqueue oid ->
      Wire.u8 w 4;
      Wire.u64 w oid
  | I_pty_m oid ->
      Wire.u8 w 5;
      Wire.u64 w oid
  | I_pty_s oid ->
      Wire.u8 w 6;
      Wire.u64 w oid
  | I_shm oid ->
      Wire.u8 w 7;
      Wire.u64 w oid
  | I_device name ->
      Wire.u8 w 8;
      Wire.str w name);
  bool_w w f.i_ext_sync;
  finish w

let fdesc_of_string s =
  let r = start s in
  let i_kind =
    match Wire.ru8 r with
    | 0 ->
        let inode = Wire.ru64 r in
        let offset = Wire.ru64 r in
        let append = bool_r r in
        I_vnode { inode; offset; append }
    | 1 -> I_pipe_r (Wire.ru64 r)
    | 2 -> I_pipe_w (Wire.ru64 r)
    | 3 -> I_socket (Wire.ru64 r)
    | 4 -> I_kqueue (Wire.ru64 r)
    | 5 -> I_pty_m (Wire.ru64 r)
    | 6 -> I_pty_s (Wire.ru64 r)
    | 7 -> I_shm (Wire.ru64 r)
    | 8 -> I_device (Wire.rstr r)
    | k ->
        raise
          (Wire.Corrupt
             (Printf.sprintf "bad fdesc kind %d at byte %d" k (Wire.pos r - 1)))
  in
  let i_ext_sync = bool_r r in
  { i_kind; i_ext_sync }

(* Pipes, sockets, kqueues, ptys -------------------------------------------------- *)

let pipe_to_string (p : pipe_image) =
  let w = Wire.writer () in
  Wire.str w p.i_data;
  bool_w w p.i_rd_open;
  bool_w w p.i_wr_open;
  finish w

let pipe_of_string s =
  let r = start s in
  let i_data = Wire.rstr r in
  let i_rd_open = bool_r r in
  let i_wr_open = bool_r r in
  { i_data; i_rd_open; i_wr_open }

let addr_w w = function
  | None -> bool_w w false
  | Some (host, port) ->
      bool_w w true;
      Wire.str w host;
      Wire.u32 w port

let addr_r r =
  if bool_r r then begin
    let host = Wire.rstr r in
    let port = Wire.ru32 r in
    Some (host, port)
  end
  else None

let msg_w w (m : msg_image) =
  Wire.str w m.i_msg_data;
  Wire.list w (fun oid -> Wire.u64 w oid) m.i_ctl_oids

let msg_r r =
  let i_msg_data = Wire.rstr r in
  let i_ctl_oids = Wire.rlist r Wire.ru64 in
  { i_msg_data; i_ctl_oids }

let socket_to_string (s : socket_image) =
  let w = Wire.writer () in
  Wire.u8 w s.i_domain;
  Wire.u8 w s.i_proto;
  addr_w w s.i_laddr;
  addr_w w s.i_raddr;
  Wire.list w
    (fun (k, v) ->
      Wire.str w k;
      Wire.u64 w v)
    s.i_opts;
  Wire.u8 w s.i_tcp;
  Wire.u64 w s.i_snd_seq;
  Wire.u64 w s.i_rcv_seq;
  Wire.u64 w s.i_peer_oid;
  Wire.list w (msg_w w) s.i_recvq;
  Wire.list w (msg_w w) s.i_sendq;
  finish w

let socket_of_string str =
  let r = start str in
  let i_domain = Wire.ru8 r in
  let i_proto = Wire.ru8 r in
  let i_laddr = addr_r r in
  let i_raddr = addr_r r in
  let i_opts =
    Wire.rlist r (fun r ->
        let k = Wire.rstr r in
        let v = Wire.ru64 r in
        (k, v))
  in
  let i_tcp = Wire.ru8 r in
  let i_snd_seq = Wire.ru64 r in
  let i_rcv_seq = Wire.ru64 r in
  let i_peer_oid = Wire.ru64 r in
  let i_recvq = Wire.rlist r msg_r in
  let i_sendq = Wire.rlist r msg_r in
  {
    i_domain;
    i_proto;
    i_laddr;
    i_raddr;
    i_opts;
    i_tcp;
    i_snd_seq;
    i_rcv_seq;
    i_peer_oid;
    i_recvq;
    i_sendq;
  }

let kqueue_to_string evs =
  let w = Wire.writer () in
  Wire.list w
    (fun (e : kevent_image) ->
      Wire.u64 w e.i_ident;
      Wire.u8 w e.i_filter;
      Wire.u32 w e.i_flags;
      Wire.u64 w e.i_udata)
    evs;
  finish w

let kqueue_of_string s =
  let r = start s in
  Wire.rlist r (fun r ->
      let i_ident = Wire.ru64 r in
      let i_filter = Wire.ru8 r in
      let i_flags = Wire.ru32 r in
      let i_udata = Wire.ru64 r in
      { i_ident; i_filter; i_flags; i_udata })

let pty_to_string (p : pty_image) =
  let w = Wire.writer () in
  Wire.u32 w p.i_unit;
  bool_w w p.i_echo;
  bool_w w p.i_canonical;
  Wire.u32 w p.i_baud;
  Wire.str w p.i_input;
  Wire.str w p.i_output;
  finish w

let pty_of_string s =
  let r = start s in
  let i_unit = Wire.ru32 r in
  let i_echo = bool_r r in
  let i_canonical = bool_r r in
  let i_baud = Wire.ru32 r in
  let i_input = Wire.rstr r in
  let i_output = Wire.rstr r in
  { i_unit; i_echo; i_canonical; i_baud; i_input; i_output }

(* Shared memory and memory objects ------------------------------------------------ *)

let shm_to_string (s : shm_image) =
  let w = Wire.writer () in
  (match s.i_shm_kind with
  | Either.Left name ->
      Wire.u8 w 0;
      Wire.str w name
  | Either.Right key ->
      Wire.u8 w 1;
      Wire.u64 w key);
  Wire.u64 w s.i_npages;
  Wire.u64 w s.i_backing_oid;
  finish w

let shm_of_string str =
  let r = start str in
  let i_shm_kind =
    match Wire.ru8 r with
    | 0 -> Either.Left (Wire.rstr r)
    | 1 -> Either.Right (Wire.ru64 r)
    | k ->
        raise
          (Wire.Corrupt
             (Printf.sprintf "bad shm kind %d at byte %d" k (Wire.pos r - 1)))
  in
  let i_npages = Wire.ru64 r in
  let i_backing_oid = Wire.ru64 r in
  { i_shm_kind; i_npages; i_backing_oid }

let memobj_to_string (m : memobj_image) =
  let w = Wire.writer () in
  (match m.i_parent_oid with
  | None -> bool_w w false
  | Some oid ->
      bool_w w true;
      Wire.u64 w oid);
  bool_w w m.i_anon;
  finish w

let memobj_of_string s =
  let r = start s in
  let i_parent_oid = if bool_r r then Some (Wire.ru64 r) else None in
  let i_anon = bool_r r in
  { i_parent_oid; i_anon }

(* Group ----------------------------------------------------------------------------- *)

let group_to_string (g : group_image) =
  let w = Wire.writer () in
  Wire.list w (fun oid -> Wire.u64 w oid) g.i_proc_oids;
  Wire.u64 w g.i_period;
  bool_w w g.i_ext_sync_on;
  Wire.list w
    (fun (name, epoch) ->
      Wire.str w name;
      Wire.u64 w epoch)
    g.i_name_ckpts;
  Wire.list w (fun pid -> Wire.u64 w pid) g.i_ephemeral_parents;
  finish w

let group_of_string s =
  let r = start s in
  let i_proc_oids = Wire.rlist r Wire.ru64 in
  let i_period = Wire.ru64 r in
  let i_ext_sync_on = bool_r r in
  let i_name_ckpts =
    Wire.rlist r (fun r ->
        let name = Wire.rstr r in
        let epoch = Wire.ru64 r in
        (name, epoch))
  in
  let i_ephemeral_parents = Wire.rlist r Wire.ru64 in
  { i_proc_oids; i_period; i_ext_sync_on; i_name_ckpts; i_ephemeral_parents }

(* Manifests ------------------------------------------------------------------------- *)

(* v2: pages fingerprint widened to the 62-bit Hash64 fold. *)
let manifest_magic = "AURMANF2"

let manifest_to_string (m : manifest_image) =
  let w = Wire.writer () in
  Wire.str w manifest_magic;
  Wire.u64 w m.i_m_epoch;
  Wire.u32 w m.i_m_count;
  Wire.list w
    (fun e ->
      Wire.u64 w e.i_me_oid;
      Wire.str w e.i_me_kind;
      Wire.u32 w e.i_me_meta_crc;
      Wire.u32 w e.i_me_pages;
      Wire.u64 w e.i_me_pages_crc)
    m.i_m_entries;
  finish w

let manifest_of_string s =
  let r = start s in
  (match Wire.rstr r with
  | m when m = manifest_magic -> ()
  | m -> raise (Wire.Corrupt (Printf.sprintf "bad manifest magic %S" m)));
  let i_m_epoch = Wire.ru64 r in
  let i_m_count = Wire.ru32 r in
  let i_m_entries =
    Wire.rlist r (fun r ->
        let i_me_oid = Wire.ru64 r in
        let i_me_kind = Wire.rstr r in
        let i_me_meta_crc = Wire.ru32 r in
        let i_me_pages = Wire.ru32 r in
        let i_me_pages_crc = Wire.ru64 r in
        { i_me_oid; i_me_kind; i_me_meta_crc; i_me_pages; i_me_pages_crc })
  in
  { i_m_epoch; i_m_count; i_m_entries }

(* Order-independent combination of per-page checksums: manifests compare
   whole page maps without fixing an iteration order.  Each (index, CRC)
   pair is mixed through Hash64 before the XOR fold — a plain XOR of the
   raw values is zeroed by duplicate pages and blind to permutations with
   colliding sums.  Must stay bit-identical to the store's leaf-side fold
   (Store.staging_manifest_entries). *)
let pages_fingerprint crcs =
  List.fold_left
    (fun acc (idx, crc) -> acc lxor Aurora_util.Hash64.pair idx crc)
    0 crcs

let manifest_entry_of_source (oid, kind, meta, crcs) =
  {
    i_me_oid = oid;
    i_me_kind = kind;
    i_me_meta_crc = Crc32.of_string meta;
    i_me_pages = List.length crcs;
    i_me_pages_crc = pages_fingerprint crcs;
  }

(* Whole-manifest digest: shipped in the replication frame (a few bytes)
   so the receiver can check its freshly composed epoch against the
   sender's manifest without the manifest itself crossing the wire. *)
let manifest_summary entries =
  List.fold_left
    (fun acc e ->
      let w = Wire.writer () in
      Wire.u64 w e.i_me_oid;
      Wire.str w e.i_me_kind;
      Wire.u32 w e.i_me_meta_crc;
      Wire.u32 w e.i_me_pages;
      Wire.u64 w e.i_me_pages_crc;
      acc lxor Crc32.of_bytes (Wire.contents w))
    0 entries

(* Hardened exports ------------------------------------------------------------------ *)

let proc_of_string = hardened kind_proc proc_of_string
let fdesc_of_string = hardened kind_fdesc fdesc_of_string
let pipe_of_string = hardened kind_pipe pipe_of_string
let socket_of_string = hardened kind_socket socket_of_string
let kqueue_of_string = hardened kind_kqueue kqueue_of_string
let pty_of_string = hardened kind_pty pty_of_string
let shm_of_string = hardened kind_shm shm_of_string
let memobj_of_string = hardened kind_memobj memobj_of_string
let group_of_string = hardened kind_group group_of_string
let manifest_of_string = hardened kind_manifest manifest_of_string

(* Can [meta] be parsed as a [kind] image?  Restore verification runs this
   over every manifest entry so a corrupt image is rejected *before* the
   restore path starts materializing kernel objects from it. *)
let parse_check ~kind meta =
  let parsers =
    [
      (kind_proc, fun s -> ignore (proc_of_string s));
      (kind_fdesc, fun s -> ignore (fdesc_of_string s));
      (kind_pipe, fun s -> ignore (pipe_of_string s));
      (kind_socket, fun s -> ignore (socket_of_string s));
      (kind_kqueue, fun s -> ignore (kqueue_of_string s));
      (kind_pty, fun s -> ignore (pty_of_string s));
      (kind_shm, fun s -> ignore (shm_of_string s));
      (kind_memobj, fun s -> ignore (memobj_of_string s));
      (kind_group, fun s -> ignore (group_of_string s));
      (kind_manifest, fun s -> ignore (manifest_of_string s));
    ]
  in
  match List.assoc_opt kind parsers with
  | None -> Ok () (* fs.* and raw memory objects have their own parsers *)
  | Some p -> ( try Ok (p meta) with Malformed msg -> Error msg)

(* Capture helpers --------------------------------------------------------------------- *)

let image_of_regs (r : Thread.regs) =
  {
    i_rip = r.Thread.rip;
    i_rsp = r.Thread.rsp;
    i_rflags = r.Thread.rflags;
    i_gp = Array.copy r.Thread.gp;
    i_fpu = Bytes.to_string r.Thread.fpu;
  }

let regs_of_image (i : regs_image) =
  {
    Thread.rip = i.i_rip;
    rsp = i.i_rsp;
    rflags = i.i_rflags;
    gp = Array.copy i.i_gp;
    fpu = Bytes.of_string i.i_fpu;
  }

let image_of_thread (t : Thread.t) =
  {
    i_tid_local = t.Thread.tid_local;
    i_regs = image_of_regs t.Thread.regs;
    i_sigmask = t.Thread.sigmask;
    i_pending = t.Thread.pending_signals;
    i_priority = t.Thread.priority;
  }

let thread_of_image (i : thread_image) ~tid_global =
  let t = Thread.create ~tid:i.i_tid_local in
  t.Thread.tid_global <- tid_global;
  let r = regs_of_image i.i_regs in
  t.Thread.regs.Thread.rip <- r.Thread.rip;
  t.Thread.regs.Thread.rsp <- r.Thread.rsp;
  t.Thread.regs.Thread.rflags <- r.Thread.rflags;
  Array.blit r.Thread.gp 0 t.Thread.regs.Thread.gp 0 (Array.length r.Thread.gp);
  Bytes.blit r.Thread.fpu 0 t.Thread.regs.Thread.fpu 0 (Bytes.length r.Thread.fpu);
  t.Thread.sigmask <- i.i_sigmask;
  t.Thread.pending_signals <- i.i_pending;
  t.Thread.priority <- i.i_priority;
  t
