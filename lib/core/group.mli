(** Consistency groups and the checkpoint path — the SLS orchestrator.

    A consistency group is the unit of atomic persistence (paper section 3):
    a set of processes checkpointed together, by default 100 times per
    second.  {!checkpoint} implements the full continuous-checkpointing
    cycle:

    + quiesce every thread at the kernel boundary (IPI; sleeping syscalls
      transparently restart);
    + collapse the previous epoch's flushed system shadows into their
      parents (Aurora's reverse collapse);
    + serialize every POSIX object reachable from the group into its own
      store object — processes, threads, descriptions, pipes, sockets
      (in-flight SCM_RIGHTS descriptors included), kqueues, ptys, shared
      memory — deduplicated structurally by object identity;
    + interpose fresh system shadows above every writable anonymous VM
      object in the group (one shadow per object, shared mappings
      included, shm backmaps updated) and downgrade the dirty PTEs;
    + resume the group (end of the stop window);
    + flush the frozen shadows' pages and the file system's dirty vnodes
      into the store and commit the checkpoint asynchronously.

    The store's write ordering guarantees a crash during the flush leaves
    the previous checkpoint intact. *)

type t

type ckpt_stats = {
  stop_ns : int;  (** application stop time *)
  quiesce_ns : int;  (** thread quiesce + orchestrator barrier *)
  os_serialize_ns : int;
  mem_mark_ns : int;  (** shadowing + PTE downgrades + TLB *)
  flush_ns : int;
      (** virtual time of the synchronous flush-submission phase (staging,
          manifest, commit); the asynchronous tail runs to [durable_at] *)
  pages_flushed : int;
  pages_serialized : int;
      (** distinct dirty pages whose payloads the store actually wrote
          this epoch (staged minus dedup hits); 0 for memory-only cycles *)
  pages_deduped : int;
      (** staged pages resolved against the store's content-addressed
          index — recorded as references, never re-flushed *)
  bytes_written : int;
      (** device bytes the epoch's flush wrote end to end: packed data
          extents, radix leaves, records and superblock *)
  epoch : int;
  durable_at : int;  (** virtual time the checkpoint is fully durable *)
  flush : Aurora_objstore.Store.flush_stats option;
      (** the store's coalesced-flush statistics for this epoch ([None]
          for memory-only checkpoints, which skip the store flush) *)
  objects_serialized : int;
      (** OS-state objects serialized and staged this cycle (the group
          object and the manifest are bookkeeping, not counted) *)
  objects_skipped : int;
      (** OS-state objects whose generation stamp matched their last
          persisted image: dirty-checked and skipped, carried into the new
          epoch by the store's composed read path *)
  meta_bytes_written : int;
      (** serialized OS metadata staged this cycle (skipped objects
          contribute nothing) *)
  speculate_ns : int;
      (** virtual duration of the speculation window (phase 0): soft
          serialize, page harvest and pre-stop refinement rounds, all
          concurrent with execution.  0 on stop-the-world cycles. *)
  validate_ns : int;
      (** in-stop time spent validating the speculative image: the
          conflict-set drain, the page splices and the file-backed
          capture.  0 on stop-the-world cycles.

          Semantics of the timing fields under speculation: [stop_ns]
          still measures the full application stop window, which now
          contains quiesce + collapse + {e validation} + shadow + resume
          instead of a full serialize — so
          [stop_ns >= quiesce_ns + validate_ns] always holds, and the
          conflict re-copy is bounded by the mutations the soft window
          admitted, not by the object count.  [os_serialize_ns] reports
          the serialize CPU's busy time on the spare core (charged to the
          ["ckpt-spec-cpu"] resource), not in-stop time. *)
  conflict_objects : int;
      (** OS objects re-serialized after the initial soft pass because
          they mutated underneath it (refinement rounds + final in-stop
          drain); 0 on stop-the-world cycles *)
  conflict_pages : int;
      (** pages re-copied over the speculative harvest because their
          speculative dirty bit was set after harvest; 0 on
          stop-the-world cycles *)
}

val attach :
  machine:Aurora_kern.Machine.t ->
  store:Aurora_objstore.Store.t ->
  ?fs:Aurora_fs.Fs.t ->
  ?period_ns:int ->
  ?group_oid:int ->
  Aurora_kern.Process.t list ->
  t
(** Create a consistency group over the given processes.  [period_ns]
    defaults to 10 ms (100 Hz).  [group_oid] is passed by the restore path
    so the restored group keeps its store identity. *)

val machine : t -> Aurora_kern.Machine.t
val store : t -> Aurora_objstore.Store.t
val fs : t -> Aurora_fs.Fs.t option
val clock : t -> Aurora_sim.Clock.t
val period_ns : t -> int
val set_period_ns : t -> int -> unit

val members : t -> Aurora_kern.Process.t list

val add_process : t -> Aurora_kern.Process.t -> unit
val detach_process : t -> Aurora_kern.Process.t -> unit
(** [sls detach]: the process becomes ephemeral from the next checkpoint. *)

val ext_sync_enabled : t -> bool
val set_ext_sync : t -> bool -> unit

val speculative_enabled : t -> bool

val set_speculative : t -> bool -> unit
(** Make speculative soft-quiesce the group's default checkpoint mode
    (equivalent to passing [~speculative:true] to every {!checkpoint}). *)

val checkpoint :
  ?wait_durable:bool -> ?full:bool -> ?speculative:bool -> t -> ckpt_stats
(** One full checkpoint cycle.  With [wait_durable] (default false) the
    clock additionally advances until the checkpoint is on stable storage
    ([sls_barrier] semantics).

    The OS-state pass is incremental by default: each object carries a
    monotonic generation stamp bumped at every mutation, and an object
    whose stamp matches its last persisted image is dirty-checked
    ([Cost.ckpt_dirty_check]) and skipped — not re-serialized, not
    re-staged; the store's epoch-composed read path resolves it from the
    prior epoch and the manifest folds in its cached checksums.
    [~full:true] forces every object to re-serialize and re-stage (the
    measurement path for Tables 4 and 7, and a safety valve).

    [~speculative:true] (default: the group's {!set_speculative} mode)
    runs the speculative soft-quiesce cycle: the serialize and harvest
    work happens {e before} the stop window, concurrent with execution
    (the workload keeps running through the machine's run hook on the
    virtual clock), and the stop window shrinks to quiesce + a
    validation pass that re-copies only what mutated underneath the
    speculation — conflicts detected through generation stamps, the
    kernel-object mutation log and the pmap's speculative dirty-bit
    plane.  The committed image is byte-identical to what a
    stop-the-world checkpoint at the same stop point would have written.
    Speculation silently degrades to stop-the-world for [~full:true] and
    memory-only cycles, where stamps respectively carry no meaning or
    nothing is staged. *)

val checkpoint_mem_only : t -> ckpt_stats
(** Stop, serialize and shadow, but skip the store flush — the "Mem"
    checkpoint rows of Table 6 (used to isolate stop time from I/O). *)

val checkpoint_region : t -> Aurora_vm.Vm_map.entry -> ckpt_stats
(** [sls_memckpt]: atomically checkpoint a single memory region without
    quiescing the whole group or serializing OS state — shadow the
    region's object and flush it asynchronously (Table 5's "Atomic"
    column).  On restore the region composes on top of the last full
    checkpoint. *)

val last_epoch : t -> int
val name_checkpoint : t -> string -> unit
(** [sls checkpoint <name>]: associate a name with the latest epoch. *)

val named_checkpoints : t -> (string * int) list

val suspend : t -> int
(** [sls suspend]: checkpoint the group durably, then remove its
    processes from the machine (the application exists only in the store).
    Returns the suspension epoch; {!Restore.restore} (or [sls resume])
    brings it back. *)

val run_for : t -> int -> unit
(** Advance virtual time by the given duration, taking periodic
    checkpoints on schedule (the transparent-persistence driver used when
    no workload is generating its own timeline). *)

(** {1 Memory overcommitment (paper section 6)}

    Aurora subsumes swap: pages already covered by a durable checkpoint
    are clean and can be evicted without I/O; a fault brings the most
    recent version back from the object store through the VM pager.  The
    same path implements lazy restore. *)

val install_pagers : t -> unit
(** Attach store-backed pagers to every flushed memory object. *)

val evict_clean_pages : t -> target:int -> int
(** Evict up to [target] clean resident pages (zero-copy: they are
    already in the store); waits for the covering checkpoint to be
    durable first.  Returns the number evicted. *)

val resident_group_pages : t -> int

(** {1 Used by the restore path and the API} *)

val group_oid : t -> int
val oid_of_desc : t -> Aurora_kern.Fdesc.t -> int option
val memrec_oid_of_object : t -> Aurora_vm.Vm_object.t -> int option
val register_restored_memobj :
  t -> oid:int -> Aurora_vm.Vm_object.t -> unit
(** Seed the group's memory-object table after a restore so subsequent
    checkpoints stay incremental. *)

val prepare_after_restore : t -> unit
(** Interpose clean system shadows above every restored writable object so
    post-restore writes are tracked incrementally.  Called by the restore
    path once the group is assembled. *)

val seed_proc_oid : t -> pid_local:int -> oid:int -> unit
val seed_desc_oid : t -> desc_id:int -> oid:int -> unit
val seed_sub_oid : t -> kind:string -> id:int -> oid:int -> unit
val set_named : t -> (string * int) list -> unit
(** Restore-path hooks: keep store identities stable across a restore so
    the next checkpoints stay incremental. *)
