module Cost = Aurora_sim.Cost
module Crc32 = Aurora_util.Crc32
module Store = Aurora_objstore.Store
module Wire = Aurora_objstore.Wire

let magic = "AURSTRM1"

(* Manifests never cross the wire as stream objects: each side writes its
   own (the receiver after verifying the composed state, see
   [install_verified]), so incremental streams stay page-sized. *)
let streamable (_, kind) = kind <> Serial.kind_manifest

let serialize_objects ~store ~epoch ~pages_of oids =
  let w = Wire.writer () in
  Wire.str w magic;
  Wire.u64 w epoch;
  Wire.list w
    (fun (oid, kind) ->
      Wire.u64 w oid;
      Wire.str w kind;
      Wire.str w (Store.read_meta store ~epoch ~oid);
      Wire.list w
        (fun (idx, payload) ->
          Wire.u32 w idx;
          Wire.str w (Bytes.to_string payload))
        (pages_of oid))
    oids;
  Bytes.to_string (Wire.contents w)

let serialize ~store ~epoch =
  serialize_objects ~store ~epoch
    ~pages_of:(fun oid -> Store.read_pages store ~epoch ~oid)
    (List.filter streamable (Store.objects_at store ~epoch))

(* Page-granular deltas: an object appears if it is new, its metadata
   changed, or some of its pages changed — and only the changed pages are
   shipped (the receiver composes them onto the base it already holds). *)
let serialize_incremental ~store ~base ~epoch =
  let base_objects = Store.objects_at store ~epoch:base in
  let delta_pages oid =
    let exists_in_base = List.exists (fun (o, _) -> o = oid) base_objects in
    let current = Store.read_pages store ~epoch ~oid in
    if not exists_in_base then current
    else begin
      let old = Store.read_pages store ~epoch:base ~oid in
      List.filter
        (fun (idx, payload) ->
          match List.assoc_opt idx old with
          | Some old_payload -> not (Bytes.equal payload old_payload)
          | None -> true)
        current
    end
  in
  let changed_meta (oid, _) =
    (not (List.exists (fun (o, _) -> o = oid) base_objects))
    || Store.read_meta store ~epoch ~oid <> Store.read_meta store ~epoch:base ~oid
  in
  let page_deltas = Hashtbl.create 32 in
  let objects =
    List.filter
      (fun (oid, _) ->
        let pages = delta_pages oid in
        Hashtbl.replace page_deltas oid pages;
        pages <> [] || changed_meta (oid, ""))
      (List.filter streamable (Store.objects_at store ~epoch))
  in
  serialize_objects ~store ~epoch
    ~pages_of:(fun oid -> Option.value ~default:[] (Hashtbl.find_opt page_deltas oid))
    objects

let stream_size s = String.length s

let parse_stream stream =
  let r = Wire.reader (Bytes.of_string stream) in
  (match Wire.rstr r with
  | m when m = magic -> ()
  | _ -> failwith "Migrate.install: bad stream magic"
  | exception Wire.Corrupt msg -> failwith ("Migrate.install: " ^ msg));
  let src_epoch = Wire.ru64 r in
  let objects =
    Wire.rlist r (fun r ->
        let oid = Wire.ru64 r in
        let kind = Wire.rstr r in
        let meta = Wire.rstr r in
        let pages =
          Wire.rlist r (fun r ->
              let idx = Wire.ru32 r in
              let payload = Bytes.of_string (Wire.rstr r) in
              (idx, payload))
        in
        (oid, kind, meta, pages))
  in
  (src_epoch, objects)

let install_objects ~store objects =
  let epoch = Store.begin_checkpoint store in
  List.iter
    (fun (oid, kind, meta, pages) ->
      Store.reserve_oids store ~upto:oid;
      Store.put_object store ~oid ~kind ~meta;
      Store.put_pages store ~oid pages)
    objects;
  epoch

let install ~store stream =
  let _src_epoch, objects = parse_stream stream in
  let epoch = install_objects ~store objects in
  ignore (Store.commit_checkpoint store);
  Store.wait_durable store;
  epoch

let transfer_time_ns ~bytes =
  Cost.net_one_way_latency + Cost.transfer_time ~bandwidth:Cost.net_bandwidth bytes

(* Replication frames --------------------------------------------------------------- *)

(* HA shipments wrap a stream in a sequenced frame with a CRC-32 trailer,
   so a corrupted delivery is rejected (and retransmitted) instead of
   parsed.  Alongside the stream travels a digest of the sender's epoch
   manifest: the receiver composes the delta onto its own previous epoch,
   recomputes the manifest of the result, and only commits — and acks —
   if the digests agree.  That makes the ack a statement about the
   *composed standby state*, not just about the bytes that crossed. *)

let shipment_magic = "AURSHIP1"
let ack_magic = "AURACK01"

type shipment = {
  sh_seq : int;
  sh_base : int;
  sh_epoch : int;
  sh_manifest_oid : int;
  sh_count : int;
  sh_summary : int;
  sh_body : string;
}

type ack = { ack_seq : int; ack_epoch : int; ack_ok : bool; ack_reason : string }

let seal frame_of =
  let w = Wire.writer () in
  frame_of w;
  let crc = Crc32.of_bytes (Wire.contents w) in
  Wire.u32 w crc;
  Bytes.to_string (Wire.contents w)

let open_sealed ~what parse s =
  if String.length s < 4 then Error (what ^ ": frame too short")
  else begin
    let body_len = String.length s - 4 in
    let r = Wire.reader (Bytes.of_string s) in
    let expect =
      let tr = Wire.reader (Bytes.of_string (String.sub s body_len 4)) in
      Wire.ru32 tr
    in
    if Crc32.of_string (String.sub s 0 body_len) <> expect then
      Error (what ^ ": frame CRC mismatch")
    else
      try Ok (parse r) with
      | Wire.Corrupt msg -> Error (what ^ ": " ^ msg)
      | Failure msg -> Error (what ^ ": " ^ msg)
  end

let seal_shipment ~seq ~base ~epoch ~manifest_oid ~count ~summary body =
  seal (fun w ->
      Wire.str w shipment_magic;
      Wire.u64 w seq;
      Wire.u64 w base;
      Wire.u64 w epoch;
      Wire.u64 w manifest_oid;
      Wire.u32 w count;
      Wire.u32 w summary;
      Wire.str w body)

let open_shipment s =
  open_sealed ~what:"shipment"
    (fun r ->
      (match Wire.rstr r with
      | m when m = shipment_magic -> ()
      | m -> failwith (Printf.sprintf "bad magic %S" m));
      let sh_seq = Wire.ru64 r in
      let sh_base = Wire.ru64 r in
      let sh_epoch = Wire.ru64 r in
      let sh_manifest_oid = Wire.ru64 r in
      let sh_count = Wire.ru32 r in
      let sh_summary = Wire.ru32 r in
      let sh_body = Wire.rstr r in
      { sh_seq; sh_base; sh_epoch; sh_manifest_oid; sh_count; sh_summary; sh_body })
    s

let seal_ack ~seq ~epoch ~ok ~reason =
  seal (fun w ->
      Wire.str w ack_magic;
      Wire.u64 w seq;
      Wire.u64 w epoch;
      Wire.u8 w (if ok then 1 else 0);
      Wire.str w reason)

let open_ack s =
  open_sealed ~what:"ack"
    (fun r ->
      (match Wire.rstr r with
      | m when m = ack_magic -> ()
      | m -> failwith (Printf.sprintf "bad magic %S" m));
      let ack_seq = Wire.ru64 r in
      let ack_epoch = Wire.ru64 r in
      let ack_ok = Wire.ru8 r = 1 in
      let ack_reason = Wire.rstr r in
      { ack_seq; ack_epoch; ack_ok; ack_reason })
    s

(* Install a shipment, verifying the composed epoch against the sender's
   manifest digest before committing anything.  On [Error] the standby
   store is untouched (the composition is computed read-only first). *)
let install_verified ~store (sh : shipment) =
  match parse_stream sh.sh_body with
  | exception Failure msg -> Error msg
  | exception Wire.Corrupt msg -> Error msg
  | src_epoch, objects ->
      if src_epoch <> sh.sh_epoch then
        Error
          (Printf.sprintf "stream epoch %d contradicts frame epoch %d" src_epoch
             sh.sh_epoch)
      else begin
        (* Composed state = previous standby epoch overridden by the
           delta, mirroring how commit merges staged pages into leaves. *)
        let composed = Hashtbl.create 64 in
        let prev = Store.last_complete_epoch store in
        if prev <> 0 then
          List.iter
            (fun (oid, kind) ->
              if kind <> Serial.kind_manifest then begin
                let crcs = Hashtbl.create 8 in
                List.iter
                  (fun (idx, crc) -> Hashtbl.replace crcs idx crc)
                  (Store.page_crcs store ~epoch:prev ~oid);
                Hashtbl.replace composed oid
                  (kind, Store.read_meta store ~epoch:prev ~oid, crcs)
              end)
            (Store.objects_at store ~epoch:prev);
        List.iter
          (fun (oid, kind, meta, pages) ->
            let crcs =
              match Hashtbl.find_opt composed oid with
              | Some (_, _, crcs) -> crcs
              | None -> Hashtbl.create 8
            in
            List.iter
              (fun (idx, payload) ->
                Hashtbl.replace crcs idx (Crc32.of_bytes payload))
              pages;
            Hashtbl.replace composed oid (kind, meta, crcs))
          objects;
        let entries =
          Hashtbl.fold
            (fun oid (kind, meta, crcs) acc ->
              let pages =
                Hashtbl.fold (fun i c a -> (i, c) :: a) crcs []
                |> List.sort compare
              in
              Serial.manifest_entry_of_source (oid, kind, meta, pages) :: acc)
            composed []
          |> List.sort (fun a b ->
                 compare a.Serial.i_me_oid b.Serial.i_me_oid)
        in
        if List.length entries <> sh.sh_count then
          Error
            (Printf.sprintf "composed epoch has %d objects, manifest says %d"
               (List.length entries) sh.sh_count)
        else if Serial.manifest_summary entries <> sh.sh_summary then
          Error "composed epoch contradicts the shipped manifest digest"
        else begin
          let epoch = install_objects ~store objects in
          Store.reserve_oids store ~upto:sh.sh_manifest_oid;
          (* The standby's manifest names its own epoch (epochs are local
             to a store); the primary-epoch correspondence is the
             shipping layer's to remember. *)
          Store.put_object store ~oid:sh.sh_manifest_oid
            ~kind:Serial.kind_manifest
            ~meta:
              (Serial.manifest_to_string
                 {
                   Serial.i_m_epoch = epoch;
                   i_m_count = List.length entries;
                   i_m_entries = entries;
                 });
          ignore (Store.commit_checkpoint store);
          Store.wait_durable store;
          Ok epoch
        end
      end
