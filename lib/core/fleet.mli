(** Multi-tenant fleet checkpointing: N consistency groups interleaved on
    one virtual clock.

    Production SLS is not one group — it is hundreds of tenants
    continuously checkpointing against shared devices.  The fleet runs one
    {!Group} per tenant (each on its own machine and store, all machines
    sharing the fleet clock) with staggered per-tenant checkpoint phases:
    tenant [i]'s epoch is scheduled inside its own flush window of the
    weighted TDM schedule ({!Aurora_block.Arbiter}), so flush windows of
    distinct tenants partition the period instead of colliding.  Every
    tenant's device writes drain through the shared arbiter lane, which
    bills lane wait and service to the submitting tenant — the per-group
    queue-wait/service split the obs spans report.

    Admission control guards the shared flush budget: before an epoch
    starts, the tenant's previous flush footprint is checked against the
    remaining budget of its window — an epoch that no longer fits is
    delayed to the tenant's next window, and one that could never fit is
    rejected for this period. *)

type spec = {
  sp_name : string;
  sp_weight : int;  (** TDM window share (relative) *)
  sp_procs : int;
  sp_pipes_per_proc : int;
  sp_arena_pages : int;  (** anonymous pages per process *)
  sp_dirty_pipes : int;  (** pipes mutated per period (rotating) *)
  sp_dirty_pages : int;  (** arena pages touched per period (rotating) *)
}

val default_spec : string -> spec
(** 1 proc, 2 pipe pairs, a 4-page arena, 1 pipe + 1 page dirtied per
    period, weight 1. *)

type t

val create : ?bandwidth:int -> period_ns:int -> spec list -> t
(** Boot one machine + striped array + store + group per spec, all on one
    fresh fleet clock, registered in TDM order with a shared arbiter of
    the given aggregate [bandwidth] (default: the striped array's
    aggregate, [nvme_stripe_devices * nvme_device_bandwidth]). *)

val clock : t -> Aurora_sim.Clock.t
val num_tenants : t -> int
val tenant_name : t -> int -> string
val machine : t -> int -> Aurora_kern.Machine.t
val group : t -> int -> Group.t
val store : t -> int -> Aurora_objstore.Store.t
val device : t -> int -> Aurora_block.Striped.t

type proc_handle = {
  ph_proc : Aurora_kern.Process.t;
  ph_pipes : (int * int) array;  (** (read fd, write fd) pairs *)
  ph_arena_addr : int;  (** base address of the anonymous arena *)
}

val handles : t -> int -> proc_handle list
(** The tenant's workload surface, for callers driving their own mutation
    traces (the isolation tests). *)

val checkpoint_now : ?wait_durable:bool -> t -> int -> Group.ckpt_stats
(** Checkpoint tenant [i] immediately (no admission control), recording
    its stop time and flush span in the fleet accounting.  The
    building block for externally driven interleavings. *)

val run_for : t -> duration:int -> unit
(** The fleet scheduler: advance virtual time by [duration], running each
    tenant's periodic cycle at its staggered window offset — mutate its
    built-in workload, consult admission control, checkpoint (or delay /
    reject), and account the flush span.  Checkpoint staleness is
    bounded: an epoch deferred by admission for two consecutive windows
    is force-admitted, so an oversubscribed fleet degrades fairly
    instead of starving phase-unlucky tenants. *)

(** {1 A solo baseline}

    The same tenant run alone: private clock, private store and devices,
    no arbitration — the reference for both the isolation property (the
    interleaved store must match this one byte for byte) and the
    interference gate (fleet p99 stop must stay within a small factor of
    solo p99). *)

type solo = {
  so_machine : Aurora_kern.Machine.t;
  so_device : Aurora_block.Striped.t;
  so_store : Aurora_objstore.Store.t;
  so_group : Group.t;
  so_handles : proc_handle list;
  so_spec : spec;
  so_stop : Aurora_util.Histogram.t;  (** stop-time samples from [solo_run_for] *)
  mutable so_round : int;  (** built-in workload rotation counter *)
}

val solo : period_ns:int -> spec -> solo
(** Built with the identical construction order as a fleet tenant, so pid
    and oid allocation — and therefore the serialized images — coincide
    exactly with the fleet run of the same spec and trace. *)

val solo_run_for : solo -> duration:int -> unit
(** Drive the solo tenant's built-in workload at the same period, for the
    interference baseline. *)

val solo_stop_p99 : solo -> float

(** {1 Accounting} *)

type tenant_report = {
  tr_name : string;
  tr_epochs : int;
  tr_bytes : int;  (** device bytes this tenant's flushes wrote *)
  tr_stop_p50 : float;
  tr_stop_p99 : float;
  tr_stop_max : float;
  tr_delayed : int;
  tr_rejected : int;
  tr_lane_wait_ns : int;
  tr_lane_busy_ns : int;
}

type report = {
  r_elapsed_ns : int;
  r_epochs : int;
  r_bytes : int;
  r_ckpt_throughput : float;  (** aggregate checkpoint epochs per second *)
  r_bytes_per_s : float;
  r_jain : float;  (** fairness over per-tenant flushed bytes *)
  r_collisions : int;
      (** flush spans of distinct tenants that overlapped in time; the
          staggered schedule must keep this at zero *)
  r_accounting_ok : bool;  (** {!Aurora_block.Arbiter.accounting_ok} *)
  r_tenants : tenant_report list;
}

val report : t -> report

val jain : float list -> float
(** The Jain fairness index [(sum x)^2 / (n * sum x^2)]; 1.0 is perfectly
    fair, 1/n is maximally unfair.  Empty or all-zero input counts as
    perfectly fair. *)
