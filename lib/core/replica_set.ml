module Clock = Aurora_sim.Clock
module Machine = Aurora_kern.Machine
module Store = Aurora_objstore.Store
module Link = Aurora_net.Link
module Rng = Aurora_util.Rng
module Otrace = Aurora_obs.Trace
module Ometrics = Aurora_obs.Metrics

let m_rs_ships = Ometrics.counter "rset.ships"
let m_rs_retransmits = Ometrics.counter "rset.retransmits"
let m_rs_timeouts = Ometrics.counter "rset.timeouts"
let m_rs_evictions = Ometrics.counter "rset.evictions"
let h_rs_ack_ns = Ometrics.histogram "rset.ack_ns"

type health = Healthy | Degraded | Evicted | Rejoining

let health_name = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Evicted -> "evicted"
  | Rejoining -> "rejoining"

(* One sequenced frame of the shared epoch log: the delta from the
   previous logged epoch (full stream for the first).  Frames are the
   same bytes for every standby because every standby follows the same
   chain; only catch-up shipments are built per standby. *)
type log_entry = {
  le_idx : int;
  le_epoch : int;
  le_frame : string;
  le_bytes : int; (* stream (body) size, for lag accounting *)
}

type inflight = {
  if_epoch : int;
  if_frame : string;
  if_bytes : int;
  if_sent_at : int;
  mutable if_attempts : int;
  mutable if_deadline : int;
}

type standby = {
  sb_idx : int;
  sb_store : Store.t;
  sb_link : Link.t;
  sb_rng : Rng.t; (* retransmit jitter, seeded per standby *)
  g_lag : Ometrics.gauge;
  g_lag_bytes : Ometrics.gauge;
  mutable sb_health : health;
  mutable sb_dead : bool;
  (* sender side *)
  mutable sb_next : int; (* log index of the next epoch to put in flight *)
  mutable sb_inflight : inflight list; (* oldest epoch first *)
  mutable sb_acked : int; (* newest primary epoch verified-acked *)
  mutable sb_acked_bytes : int;
  mutable sb_consec_timeouts : int;
  mutable sb_pending_acks : (int * Migrate.ack) list; (* arrival, ack *)
  mutable sb_catchup : inflight option; (* the Rejoining shipment *)
  mutable sb_catchup_target : int;
  (* receiver side (the standby proper) *)
  mutable sb_rcv_epoch : int; (* newest primary epoch installed *)
  mutable sb_gap : (int * Migrate.shipment) list; (* epoch -> buffered frame *)
  mutable sb_installed : (int * int) list; (* standby epoch -> primary epoch *)
  (* counters *)
  mutable sb_retransmits : int;
  mutable sb_timeouts : int;
  mutable sb_dup_acks : int;
  mutable sb_verify_rejects : int;
}

type stats = {
  rs_epochs_logged : int;
  rs_acked_total : int;
  rs_attempts : int;
  rs_retransmits : int;
  rs_timeouts : int;
  rs_dup_acks : int;
  rs_verify_rejects : int;
  rs_evictions : int;
  rs_rejoins : int;
  rs_released_msgs : int;
}

type t = {
  primary : Group.t;
  outbox : Extsync.t option;
  window : int;
  max_retries : int;
  degrade_after : int;
  evict_after : int;
  standbys : standby array;
  mutable log : log_entry list; (* newest first *)
  mutable log_len : int;
  mutable last_logged : int; (* newest primary epoch in the log *)
  mutable quorum_released : int; (* outbox released up to this epoch *)
  mutable st_attempts : int;
  mutable st_acked_total : int;
  mutable st_evictions : int;
  mutable st_rejoins : int;
  mutable st_released : int;
}

let create ?(window = 4) ?(max_retries = 8) ?(degrade_after = 2)
    ?(evict_after = 6) ?(seed = 1) ?outbox ~primary ~standbys () =
  if standbys = [] then invalid_arg "Replica_set.create: no standbys";
  if window < 1 then invalid_arg "Replica_set.create: window < 1";
  let mk i (store, link) =
    {
      sb_idx = i;
      sb_store = store;
      sb_link = link;
      sb_rng = Rng.create ((seed * 1_000_003) + (i * 7919) + 17);
      g_lag = Ometrics.gauge (Printf.sprintf "rset.standby%d.lag_epochs" i);
      g_lag_bytes =
        Ometrics.gauge (Printf.sprintf "rset.standby%d.lag_bytes" i);
      sb_health = Healthy;
      sb_dead = false;
      sb_next = 0;
      sb_inflight = [];
      sb_acked = 0;
      sb_acked_bytes = 0;
      sb_consec_timeouts = 0;
      sb_pending_acks = [];
      sb_catchup = None;
      sb_catchup_target = 0;
      sb_rcv_epoch = 0;
      sb_gap = [];
      sb_installed = [];
      sb_retransmits = 0;
      sb_timeouts = 0;
      sb_dup_acks = 0;
      sb_verify_rejects = 0;
    }
  in
  {
    primary;
    outbox;
    window;
    max_retries;
    degrade_after;
    evict_after;
    standbys = Array.of_list (List.mapi mk standbys);
    log = [];
    log_len = 0;
    last_logged = 0;
    quorum_released = 0;
    st_attempts = 0;
    st_acked_total = 0;
    st_evictions = 0;
    st_rejoins = 0;
    st_released = 0;
  }

let standby_count t = Array.length t.standbys
let quorum t = (Array.length t.standbys / 2) + 1
let last_logged_epoch t = t.last_logged
let pclock t = Store.clock (Group.store t.primary)

(* The q-th largest cumulative ack over all standbys.  Acks from standbys
   that later died still count: the ack certified the epoch was durably
   installed there at the time, which is what made the epoch
   quorum-committed; killing a minority afterwards cannot un-commit it
   (a majority acked, so some survivor still holds it). *)
let quorum_epoch t =
  let acked =
    Array.to_list (Array.map (fun sb -> sb.sb_acked) t.standbys)
    |> List.sort (fun a b -> compare b a)
  in
  List.nth acked (quorum t - 1)

(* Frame construction ---------------------------------------------------- *)

let manifest_of_epoch ~store ~epoch =
  match
    List.find_opt
      (fun (_, kind) -> kind = Serial.kind_manifest)
      (Store.objects_at store ~epoch)
  with
  | None -> Error (Printf.sprintf "epoch %d carries no manifest" epoch)
  | Some (moid, _) -> (
      match Serial.manifest_of_string (Store.read_meta store ~epoch ~oid:moid) with
      | exception Serial.Malformed msg ->
          Error ("manifest unreadable: " ^ msg)
      | m -> Ok (moid, m))

let build_frame ~store ~base ~epoch =
  let stream =
    if base = 0 then Migrate.serialize ~store ~epoch
    else Migrate.serialize_incremental ~store ~base ~epoch
  in
  match manifest_of_epoch ~store ~epoch with
  | Error e -> Error e
  | Ok (moid, m) ->
      let frame =
        (* The epoch doubles as the ARQ sequence number: the log is a
           totally ordered chain, so no separate counter is needed and
           every standby's selective acks name epochs directly. *)
        Migrate.seal_shipment ~seq:epoch ~base ~epoch ~manifest_oid:moid
          ~count:m.Serial.i_m_count
          ~summary:(Serial.manifest_summary m.Serial.i_m_entries)
          stream
      in
      Ok (frame, Migrate.stream_size stream)

(* Receiver -------------------------------------------------------------- *)

(* Install shipments strictly in epoch order: a frame whose base is ahead
   of what the standby holds waits in the gap buffer until the missing
   epochs land (selective repeat).  Every install is digest-verified
   before commit; each produces its own ack carrying the cumulative
   installed epoch, so one ack can confirm a whole drained gap. *)
let rs_receive sb (d : Link.delivery) =
  let sclk = Store.clock sb.sb_store in
  Clock.advance_to sclk d.Link.d_arrival;
  match Migrate.open_shipment d.Link.d_payload with
  | Error _ -> [] (* corrupt in flight: silence, the sender retransmits *)
  | Ok sh ->
      let acks = ref [] in
      let ack ~epoch ~ok ~reason =
        acks :=
          Migrate.seal_ack ~seq:sb.sb_rcv_epoch ~epoch ~ok ~reason :: !acks
      in
      let install sh =
        match Migrate.install_verified ~store:sb.sb_store sh with
        | Ok standby_epoch ->
            sb.sb_rcv_epoch <- sh.Migrate.sh_epoch;
            sb.sb_installed <-
              (standby_epoch, sh.Migrate.sh_epoch) :: sb.sb_installed;
            ack ~epoch:sh.Migrate.sh_epoch ~ok:true ~reason:""
        | Error msg ->
            sb.sb_verify_rejects <- sb.sb_verify_rejects + 1;
            ack ~epoch:sh.Migrate.sh_epoch ~ok:false ~reason:msg
      in
      if sh.Migrate.sh_epoch <= sb.sb_rcv_epoch then begin
        sb.sb_dup_acks <- sb.sb_dup_acks + 1;
        ack ~epoch:sh.Migrate.sh_epoch ~ok:true ~reason:"duplicate"
      end
      else if sh.Migrate.sh_base > sb.sb_rcv_epoch then begin
        (* The chain has a hole: hold the frame, ack nothing for it. *)
        if not (List.mem_assoc sh.Migrate.sh_epoch sb.sb_gap) then
          sb.sb_gap <- (sh.Migrate.sh_epoch, sh) :: sb.sb_gap
      end
      else begin
        install sh;
        (* The install may have filled the hole in front of buffered
           frames: drain everything now continguous, oldest first. *)
        let rec drain_gap () =
          let ready, held =
            List.partition
              (fun (_, g) ->
                g.Migrate.sh_base <= sb.sb_rcv_epoch
                && g.Migrate.sh_epoch > sb.sb_rcv_epoch)
              sb.sb_gap
          in
          sb.sb_gap <-
            List.filter (fun (e, _) -> e > sb.sb_rcv_epoch) held;
          match List.sort compare ready with
          | [] -> ()
          | (_, g) :: rest ->
              sb.sb_gap <- sb.sb_gap @ rest;
              install g;
              drain_gap ()
        in
        drain_gap ()
      end;
      if Otrace.is_on () then
        Otrace.instant ~ts:(Clock.now sclk) ~cat:"rset" "receive"
          ~args:
            [
              ("standby", Otrace.Int sb.sb_idx);
              ("epoch", Otrace.Int sh.Migrate.sh_epoch);
              ("installed", Otrace.Int sb.sb_rcv_epoch);
            ];
      (* Acks travel back through the same fault plane. *)
      List.concat_map
        (fun frame ->
          Link.transmit sb.sb_link ~now:(Clock.now sclk) ~payload:frame ()
          |> List.filter_map (fun (ad : Link.delivery) ->
                 match Migrate.open_ack ad.Link.d_payload with
                 | Ok a -> Some (ad.Link.d_arrival, a)
                 | Error _ -> None))
        (List.rev !acks)

(* Sender ---------------------------------------------------------------- *)

let idx_of_epoch t epoch =
  if epoch = 0 then 0
  else
    match List.find_opt (fun le -> le.le_epoch = epoch) t.log with
    | Some le -> le.le_idx + 1
    | None -> t.log_len (* unknown epoch: ship nothing until re-synced *)

let log_nth t idx =
  List.find_opt (fun le -> le.le_idx = idx) t.log

let alive_active sb =
  (not sb.sb_dead) && sb.sb_health <> Evicted

let evict t sb ~reason =
  if sb.sb_health <> Evicted then begin
    sb.sb_health <- Evicted;
    sb.sb_inflight <- [];
    sb.sb_catchup <- None;
    t.st_evictions <- t.st_evictions + 1;
    Ometrics.incr m_rs_evictions;
    if Otrace.is_on () then
      Otrace.instant ~cat:"rset" "evict"
        ~args:
          [ ("standby", Otrace.Int sb.sb_idx); ("reason", Otrace.Str reason) ]
  end

let base_timeout frame = 2 * Link.rtt ~bytes:(String.length frame)

(* Exponential backoff with per-standby jitter: deadline k doubles the
   base and adds up to half a base of seeded noise, so two standbys that
   lost the same frame do not retransmit in lockstep.  A deadline inside
   a known partition is extended past the heal — backoff alone cannot
   out-wait a dark link. *)
let next_deadline sb ~now ~frame ~attempts =
  let base = base_timeout frame in
  let backoff = base * (1 lsl min (attempts - 1) 10) in
  let jitter = Rng.int sb.sb_rng (1 + (base / 2)) in
  let deadline = now + backoff + jitter in
  let heal = Link.partitioned_until sb.sb_link in
  if heal > deadline then heal + base + jitter else deadline

let transmit_frame t sb ~now ~retransmit inf =
  t.st_attempts <- t.st_attempts + 1;
  if retransmit then begin
    sb.sb_retransmits <- sb.sb_retransmits + 1;
    Ometrics.incr m_rs_retransmits
  end
  else Ometrics.incr m_rs_ships;
  let deliveries =
    Link.transmit sb.sb_link ~retransmit ~now ~payload:inf.if_frame ()
  in
  List.iter
    (fun d -> sb.sb_pending_acks <- sb.sb_pending_acks @ rs_receive sb d)
    (List.sort (fun a b -> compare a.Link.d_arrival b.Link.d_arrival) deliveries)

(* Apply one ack.  [ack_seq] carries the receiver's cumulative installed
   epoch, so a single surviving ack can advance past several lost ones
   (in-order install makes cumulative acks sound). *)
let apply_ack t sb ~arrival (a : Migrate.ack) =
  if not a.Migrate.ack_ok then begin
    (* The frame arrived intact but the composed epoch contradicts the
       manifest digest: the standby has diverged, retransmitting the
       same bytes cannot help.  Evict; a rejoin catch-up resyncs it. *)
    evict t sb ~reason:("diverged: " ^ a.Migrate.ack_reason)
  end
  else begin
    let cum = max a.Migrate.ack_seq a.Migrate.ack_epoch in
    if cum <= sb.sb_acked then sb.sb_dup_acks <- sb.sb_dup_acks + 1
    else begin
      (match
         List.find_opt (fun inf -> inf.if_epoch <= cum) sb.sb_inflight
       with
      | Some inf ->
          Ometrics.observe_ns h_rs_ack_ns (max 0 (arrival - inf.if_sent_at))
      | None -> ());
      (match sb.sb_catchup with
      | Some inf when cum >= inf.if_epoch ->
          (* The catch-up stream covers the whole (acked, target] gap in
             one cumulative delta; count its bytes, not the log's. *)
          sb.sb_catchup <- None;
          sb.sb_acked_bytes <- sb.sb_acked_bytes + inf.if_bytes;
          t.st_acked_total <- t.st_acked_total + 1
      | _ ->
          List.iter
            (fun le ->
              if le.le_epoch > sb.sb_acked && le.le_epoch <= cum then begin
                sb.sb_acked_bytes <- sb.sb_acked_bytes + le.le_bytes;
                t.st_acked_total <- t.st_acked_total + 1
              end)
            t.log);
      sb.sb_acked <- cum;
      sb.sb_consec_timeouts <- 0;
      sb.sb_inflight <-
        List.filter (fun inf -> inf.if_epoch > cum) sb.sb_inflight;
      (match sb.sb_health with
      | Degraded -> sb.sb_health <- Healthy
      | Rejoining when sb.sb_catchup = None && cum >= sb.sb_catchup_target ->
          sb.sb_health <- Healthy;
          sb.sb_next <- idx_of_epoch t cum
      | _ -> ());
      if Otrace.is_on () then
        Otrace.instant ~cat:"rset" "ack"
          ~args:
            [
              ("standby", Otrace.Int sb.sb_idx);
              ("cum", Otrace.Int cum);
              ("health", Otrace.Str (health_name sb.sb_health));
            ]
    end
  end

let on_timeout t sb ~what =
  sb.sb_timeouts <- sb.sb_timeouts + 1;
  sb.sb_consec_timeouts <- sb.sb_consec_timeouts + 1;
  Ometrics.incr m_rs_timeouts;
  if sb.sb_consec_timeouts >= t.evict_after then
    evict t sb
      ~reason:(Printf.sprintf "%d consecutive timeouts" sb.sb_consec_timeouts)
  else if sb.sb_consec_timeouts >= t.degrade_after && sb.sb_health = Healthy
  then begin
    sb.sb_health <- Degraded;
    if Otrace.is_on () then
      Otrace.instant ~cat:"rset" "degrade"
        ~args:[ ("standby", Otrace.Int sb.sb_idx); ("what", Otrace.Str what) ]
  end

let pump_standby t sb ~now =
  if alive_active sb then begin
    (* 1. Acks that have arrived by now, oldest first. *)
    let usable, later =
      List.partition (fun (arrival, _) -> arrival <= now) sb.sb_pending_acks
    in
    sb.sb_pending_acks <- later;
    List.iter
      (fun (arrival, a) -> apply_ack t sb ~arrival a)
      (List.sort (fun (a, _) (b, _) -> compare a b) usable);
    if alive_active sb then begin
      (* 2. Expired frames: back off and retransmit, unless the frame is
         out of attempts — then the standby cannot make in-order
         progress and is evicted. *)
      let retransmit inf ~what =
        if alive_active sb && inf.if_deadline <= now then begin
          on_timeout t sb ~what;
          if alive_active sb then begin
            if inf.if_attempts >= t.max_retries then
              evict t sb
                ~reason:
                  (Printf.sprintf "epoch %d unacked after %d attempts"
                     inf.if_epoch inf.if_attempts)
            else begin
              inf.if_attempts <- inf.if_attempts + 1;
              inf.if_deadline <-
                next_deadline sb ~now ~frame:inf.if_frame
                  ~attempts:inf.if_attempts;
              transmit_frame t sb ~now ~retransmit:true inf
            end
          end
        end
      in
      List.iter (fun inf -> retransmit inf ~what:"window") sb.sb_inflight;
      (match sb.sb_catchup with
      | Some inf -> retransmit inf ~what:"catchup"
      | None -> ());
      (* 3. Fill the window with the next epochs of the chain. *)
      if sb.sb_health = Healthy || sb.sb_health = Degraded then begin
        while
          List.length sb.sb_inflight < t.window && sb.sb_next < t.log_len
        do
          match log_nth t sb.sb_next with
          | None -> sb.sb_next <- t.log_len
          | Some le ->
              let inf =
                {
                  if_epoch = le.le_epoch;
                  if_frame = le.le_frame;
                  if_bytes = le.le_bytes;
                  if_sent_at = now;
                  if_attempts = 1;
                  if_deadline = now + base_timeout le.le_frame;
                }
              in
              sb.sb_inflight <- sb.sb_inflight @ [ inf ];
              sb.sb_next <- sb.sb_next + 1;
              transmit_frame t sb ~now ~retransmit:false inf
        done
      end
    end
  end;
  Ometrics.set_gauge sb.g_lag (max 0 (t.last_logged - sb.sb_acked));
  let total_bytes =
    List.fold_left (fun a le -> a + le.le_bytes) 0 t.log
  in
  Ometrics.set_gauge sb.g_lag_bytes (max 0 (total_bytes - sb.sb_acked_bytes))

let release_at_quorum t ~now =
  match t.outbox with
  | None -> ()
  | Some outbox ->
      let qe = quorum_epoch t in
      if qe > t.quorum_released then begin
        t.st_released <-
          t.st_released + Extsync.release_up_to outbox ~epoch:qe ~now;
        t.quorum_released <- qe
      end

let pump t =
  let now = Clock.now (pclock t) in
  Array.iter (fun sb -> pump_standby t sb ~now) t.standbys;
  release_at_quorum t ~now;
  if Otrace.is_on () then
    Otrace.instant ~cat:"rset" "window"
      ~args:
        (( "quorum_epoch", Otrace.Int (quorum_epoch t) )
        :: Array.to_list
             (Array.map
                (fun sb ->
                  ( Printf.sprintf "occ%d" sb.sb_idx,
                    Otrace.Int (List.length sb.sb_inflight) ))
                t.standbys))

let ship t =
  let newest = Group.last_epoch t.primary in
  if newest > t.last_logged then begin
    let store = Group.store t.primary in
    (* Every epoch checkpointed since the last call becomes one frame;
       when the caller skipped rounds the single delta base..newest is
       the whole gap, exactly like Ha's lag catch-up. *)
    match build_frame ~store ~base:t.last_logged ~epoch:newest with
    | Error msg -> failwith ("Replica_set.ship: " ^ msg)
    | Ok (frame, bytes) ->
        let le =
          { le_idx = t.log_len; le_epoch = newest; le_frame = frame;
            le_bytes = bytes }
        in
        t.log <- le :: t.log;
        t.log_len <- t.log_len + 1;
        t.last_logged <- newest
  end;
  pump t

(* Drain: walk the primary clock through the next protocol event (an ack
   arrival or a retransmit deadline) until the target holds or no event
   can change anything. *)
let drained t = function
  | `Quorum -> quorum_epoch t >= t.last_logged
  | `All ->
      Array.for_all
        (fun sb ->
          (not (alive_active sb))
          || (sb.sb_acked >= t.last_logged && sb.sb_catchup = None))
        t.standbys

let next_event t =
  Array.fold_left
    (fun acc sb ->
      if not (alive_active sb) then acc
      else begin
        let fold_min acc x = match acc with
          | None -> Some x
          | Some y -> Some (min x y)
        in
        let acc =
          List.fold_left
            (fun acc (arrival, _) -> fold_min acc arrival)
            acc sb.sb_pending_acks
        in
        let acc =
          List.fold_left
            (fun acc inf -> fold_min acc inf.if_deadline)
            acc sb.sb_inflight
        in
        match sb.sb_catchup with
        | Some inf -> fold_min acc inf.if_deadline
        | None -> acc
      end)
    None t.standbys

let drain t target =
  let clk = pclock t in
  pump t;
  let rec go () =
    if drained t target then true
    else
      match next_event t with
      | None -> drained t target
      | Some ev ->
          Clock.advance_to clk (max ev (Clock.now clk + 1));
          pump t;
          go ()
  in
  go ()

(* Harness hooks --------------------------------------------------------- *)

let check_idx t i =
  if i < 0 || i >= Array.length t.standbys then
    invalid_arg (Printf.sprintf "Replica_set: no standby %d" i)

let kill t i =
  check_idx t i;
  let sb = t.standbys.(i) in
  if not sb.sb_dead then begin
    sb.sb_dead <- true;
    evict t sb ~reason:"killed";
    sb.sb_health <- Evicted;
    sb.sb_pending_acks <- [];
    (* The machine is gone: its link never carries anything again
       (max_int/2 avoids overflowing the heal instant). *)
    Link.partition sb.sb_link ~now:(Clock.now (pclock t))
      ~duration:(max_int / 2)
  end

let rejoin t i =
  check_idx t i;
  let sb = t.standbys.(i) in
  if (not sb.sb_dead) && sb.sb_health = Evicted && t.last_logged > 0 then begin
    let now = Clock.now (pclock t) in
    let store = Group.store t.primary in
    (* Catch-up shipment: the cumulative delta from the standby's last
       acked epoch (the full checkpoint stream when it never acked
       anything).  One verified ack covers the whole gap and returns the
       standby to normal window shipping. *)
    match build_frame ~store ~base:sb.sb_acked ~epoch:t.last_logged with
    | Error msg -> failwith ("Replica_set.rejoin: " ^ msg)
    | Ok (frame, bytes) ->
        let inf =
          {
            if_epoch = t.last_logged;
            if_frame = frame;
            if_bytes = bytes;
            if_sent_at = now;
            if_attempts = 1;
            if_deadline = now + base_timeout frame;
          }
        in
        sb.sb_health <- Rejoining;
        sb.sb_consec_timeouts <- 0;
        sb.sb_catchup <- Some inf;
        sb.sb_catchup_target <- t.last_logged;
        sb.sb_next <- t.log_len;
        t.st_rejoins <- t.st_rejoins + 1;
        if Otrace.is_on () then
          Otrace.instant ~cat:"rset" "rejoin"
            ~args:
              [
                ("standby", Otrace.Int i);
                ("base", Otrace.Int sb.sb_acked);
                ("target", Otrace.Int t.last_logged);
              ];
        transmit_frame t sb ~now ~retransmit:false inf
  end

(* Introspection --------------------------------------------------------- *)

type standby_view = {
  sv_idx : int;
  sv_health : health;
  sv_dead : bool;
  sv_acked_epoch : int;
  sv_installed_epoch : int;
  sv_lag_epochs : int;
  sv_lag_bytes : int;
  sv_window_occupancy : int;
  sv_consec_timeouts : int;
  sv_retransmits : int;
  sv_timeouts : int;
  sv_dup_acks : int;
  sv_verify_rejects : int;
  sv_shipped_bytes : int;
}

let view t i =
  check_idx t i;
  let sb = t.standbys.(i) in
  let lag_epochs =
    List.length (List.filter (fun le -> le.le_epoch > sb.sb_acked) t.log)
  in
  let lag_bytes =
    List.fold_left
      (fun a le -> if le.le_epoch > sb.sb_acked then a + le.le_bytes else a)
      0 t.log
  in
  {
    sv_idx = i;
    sv_health = sb.sb_health;
    sv_dead = sb.sb_dead;
    sv_acked_epoch = sb.sb_acked;
    sv_installed_epoch = sb.sb_rcv_epoch;
    sv_lag_epochs = lag_epochs;
    sv_lag_bytes = lag_bytes;
    sv_window_occupancy = List.length sb.sb_inflight;
    sv_consec_timeouts = sb.sb_consec_timeouts;
    sv_retransmits = sb.sb_retransmits;
    sv_timeouts = sb.sb_timeouts;
    sv_dup_acks = sb.sb_dup_acks;
    sv_verify_rejects = sb.sb_verify_rejects;
    sv_shipped_bytes = sb.sb_acked_bytes;
  }

let views t = List.init (Array.length t.standbys) (view t)

let stats t =
  let sum sel = Array.fold_left (fun a sb -> a + sel sb) 0 t.standbys in
  {
    rs_epochs_logged = t.log_len;
    rs_acked_total = t.st_acked_total;
    rs_attempts = t.st_attempts;
    rs_retransmits = sum (fun sb -> sb.sb_retransmits);
    rs_timeouts = sum (fun sb -> sb.sb_timeouts);
    rs_dup_acks = sum (fun sb -> sb.sb_dup_acks);
    rs_verify_rejects = sum (fun sb -> sb.sb_verify_rejects);
    rs_evictions = t.st_evictions;
    rs_rejoins = t.st_rejoins;
    rs_released_msgs = t.st_released;
  }

(* Election and failover ------------------------------------------------- *)

type vote = {
  vt_idx : int;
  vt_primary_epoch : int;
  vt_standby_epoch : int;
}

type election_report = {
  el_votes : vote list;
  el_winner : int;
  el_source_epoch : int;
  el_dropped_msgs : int;
  el_restore : Restore.verified;
}

(* A survivor's vote: the newest local epoch that passes manifest
   verification and whose primary-epoch correspondence the shipping
   layer remembers.  Verification happens before voting so a survivor
   with a corrupt newest epoch advertises what it can actually serve. *)
let vote_of sb =
  let epochs =
    Store.checkpoint_epochs sb.sb_store |> List.sort (fun a b -> compare b a)
  in
  let rec scan = function
    | [] -> None
    | e :: rest -> (
        match List.assoc_opt e sb.sb_installed with
        | None -> scan rest
        | Some pe -> (
            match Restore.verify_epoch ~store:sb.sb_store ~epoch:e with
            | Ok _ -> Some { vt_idx = sb.sb_idx; vt_primary_epoch = pe;
                             vt_standby_epoch = e }
            | Error _ -> scan rest))
  in
  scan epochs

let elect_and_failover t ~survivors ~machine =
  List.iter (check_idx t) survivors;
  let clk = machine.Machine.clock in
  let votes =
    List.filter_map
      (fun i ->
        let sb = t.standbys.(i) in
        if sb.sb_dead then None
        else begin
          (* One round-trip per survivor to exchange votes. *)
          Clock.advance clk (Link.rtt ~bytes:64);
          vote_of sb
        end)
      (List.sort_uniq compare survivors)
  in
  match
    List.sort
      (fun a b ->
        match compare b.vt_primary_epoch a.vt_primary_epoch with
        | 0 -> compare a.vt_idx b.vt_idx
        | c -> c)
      votes
  with
  | [] -> Error "election: no survivor holds a verified epoch"
  | winner :: _ -> (
      if Otrace.is_on () then
        Otrace.instant ~cat:"rset" "elect"
          ~args:
            [
              ("winner", Otrace.Int winner.vt_idx);
              ("epoch", Otrace.Int winner.vt_primary_epoch);
              ("votes", Otrace.Int (List.length votes));
            ];
      let sb = t.standbys.(winner.vt_idx) in
      match Restore.restore_verified ~machine ~store:sb.sb_store () with
      | Error e -> Error ("election restore: " ^ Restore.pp_restore_error e)
      | Ok v ->
          let source =
            match List.assoc_opt v.Restore.vr_epoch sb.sb_installed with
            | Some pe -> pe
            | None -> 0
          in
          (* Messages buffered for the discarded window were never
             released (release stops at quorum_epoch <= source); drop
             them now so they never escape. *)
          let dropped =
            match t.outbox with
            | None -> 0
            | Some outbox ->
                if source > 0 then Extsync.drop_after outbox ~epoch:source
                else Extsync.drop_all outbox
          in
          Ok
            {
              el_votes = votes;
              el_winner = winner.vt_idx;
              el_source_epoch = source;
              el_dropped_msgs = dropped;
              el_restore = v;
            })

(* Byte-identity of two checkpoints -------------------------------------- *)

let stores_identical ~src ~src_epoch ~dst ~dst_epoch =
  let objs store epoch =
    Store.objects_at store ~epoch
    |> List.filter (fun (_, kind) -> kind <> Serial.kind_manifest)
    |> List.sort compare
  in
  let a = objs src src_epoch and b = objs dst dst_epoch in
  List.length a = List.length b
  && List.for_all2
       (fun (oa, ka) (ob, kb) ->
         oa = ob && ka = kb
         && Store.read_meta src ~epoch:src_epoch ~oid:oa
            = Store.read_meta dst ~epoch:dst_epoch ~oid:ob
         && List.sort compare (Store.page_crcs src ~epoch:src_epoch ~oid:oa)
            = List.sort compare (Store.page_crcs dst ~epoch:dst_epoch ~oid:ob))
       a b

(* Live migration -------------------------------------------------------- *)

type migration_report = {
  mig_rounds : int;
  mig_precopy_bytes : int;
  mig_final_bytes : int;
  mig_downtime_ns : int;
  mig_total_ns : int;
  mig_source_epoch : int;
  mig_identical : bool;
}

let migrate_live ?(window = 4) ?(max_rounds = 8) ?(stop_ratio = 0.1) ?link
    ~primary ~target_store ~machine ~workload () =
  let link =
    match link with Some l -> l | None -> Link.create ~name:"migrate" ()
  in
  let t =
    create ~window ~primary ~standbys:[ (target_store, link) ] ()
  in
  let clk = pclock t in
  let t_begin = Clock.now clk in
  Otrace.with_span ~cat:"rset" ~name:"migrate"
    ~args:[ ("max_rounds", Otrace.Int max_rounds) ]
  @@ fun () ->
  (* Pre-copy: the service keeps running (the workload mutates between
     rounds, modeling execution concurrent with the previous round's
     shipment); each round checkpoints and pipelines the delta. *)
  let first_bytes = ref 0 in
  let precopy = ref 0 in
  let rounds = ref 0 in
  (try
     for r = 1 to max_rounds do
       rounds := r;
       workload r;
       ignore (Group.checkpoint ~wait_durable:true primary);
       let before = (view t 0).sv_shipped_bytes in
       ship t;
       if not (drain t `All) then raise Exit;
       let shipped = (view t 0).sv_shipped_bytes - before in
       if r = 1 then first_bytes := max 1 shipped;
       precopy := !precopy + shipped;
       (* Converged: the last delta is a small fraction of the full
          stream, so the stop-and-copy tail will be short. *)
       if r > 1 && float_of_int shipped < stop_ratio *. float_of_int !first_bytes
       then raise Exit
     done
   with Exit -> ());
  let sb = t.standbys.(0) in
  if sb.sb_health = Evicted then
    Error "migration: target evicted during pre-copy"
  else begin
    (* Cut-over: the workload stops here; everything after this instant
       is downtime until the target machine is restored. *)
    let t_stop = Clock.now clk in
    ignore (Group.checkpoint ~wait_durable:true primary);
    let before = (view t 0).sv_shipped_bytes in
    ship t;
    if not (drain t `All) then Error "migration: final delta never acked"
    else begin
      let final_bytes = (view t 0).sv_shipped_bytes - before in
      match Restore.restore_verified ~machine ~store:target_store () with
      | Error e -> Error ("migration restore: " ^ Restore.pp_restore_error e)
      | Ok v ->
          let source =
            match List.assoc_opt v.Restore.vr_epoch sb.sb_installed with
            | Some pe -> pe
            | None -> 0
          in
          let downtime =
            Clock.now clk - t_stop + v.Restore.vr_result.Restore.restore_ns
          in
          let identical =
            source > 0
            && stores_identical ~src:(Group.store primary) ~src_epoch:source
                 ~dst:target_store ~dst_epoch:v.Restore.vr_epoch
          in
          if Otrace.is_on () then
            Otrace.instant ~cat:"rset" "cutover"
              ~args:
                [
                  ("downtime_ns", Otrace.Int downtime);
                  ("source_epoch", Otrace.Int source);
                ];
          Ok
            {
              mig_rounds = !rounds;
              mig_precopy_bytes = !precopy;
              mig_final_bytes = final_bytes;
              mig_downtime_ns = downtime;
              mig_total_ns = Clock.now clk - t_begin;
              mig_source_epoch = source;
              mig_identical = identical;
            }
    end
  end
