(** Quorum replication to N standbys with pipelined shipping, election
    failover and live migration (paper sections 3 and 10, scaled out from
    the one-standby stop-and-wait of {!Ha}).

    One primary ships sequenced, CRC-framed epoch deltas to N standbys
    over independent faultable {!Aurora_net.Link}s.  Shipping is a
    sliding-window pipeline: up to [window] epochs are in flight per
    standby, acks are selective (the standby acks each epoch it installs,
    carrying its cumulative installed epoch), and retransmissions back
    off exponentially with per-standby seeded jitter so retries do not
    synchronize across replicas.  The receiver installs epochs strictly
    in order — a delta whose base it has not installed yet is buffered
    until the gap fills — and every install is verified against the
    shipped manifest digest before it is acked, exactly as in {!Ha}.

    {b Quorum.}  [quorum_epoch] is the newest primary epoch that
    ⌈(N+1)/2⌉ standbys have verified-acked; it advances monotonically
    and is the replication point failover can always recover: kill any
    minority of standbys and at least one survivor still holds every
    quorum-committed epoch.  When an external-synchrony [outbox] is
    attached, buffered messages are released only up to [quorum_epoch] —
    persistence is the protocol, not the local state.

    {b Health.}  Each standby runs a health state machine
    [Healthy → Degraded → Evicted → Rejoining]: consecutive ack
    timeouts degrade and then evict (eviction discards the standby's
    window so a dead or partitioned minority degrades throughput instead
    of stalling the pipeline); an evicted standby rejoins via a single
    catch-up shipment — the cumulative delta from its last acked epoch
    (a full checkpoint stream if it never acked anything) — and returns
    to [Healthy] when the catch-up is verified-acked.  A standby that
    {e nacks} a composed epoch has diverged and is evicted immediately;
    retransmitting cannot help it.

    {b Failover.}  {!elect_and_failover} is the partition-tolerant
    election: the surviving standbys exchange their newest
    manifest-verified epochs, the maximum wins (ties break to the lowest
    index), the winner restores it via {!Restore.restore_verified} with
    epoch fallback, and the primary's outbox drops every buffered
    message from the discarded window ({!Extsync.drop_after}).  Because
    the winner's epoch is the maximum over a majority, it is never older
    than [quorum_epoch] — no released message can come from a window
    failover discards.

    {b Migration.}  {!migrate_live} reuses the same pipeline for the
    paper's live-migration use case: iterative pre-copy of epoch deltas
    to the target while the workload keeps running, then a final
    stop-and-copy delta and cut-over, reporting the measured
    virtual-time downtime and verifying the migrated machine restores
    byte-identically (objects, metadata and page CRCs). *)

type t

type health = Healthy | Degraded | Evicted | Rejoining

val create :
  ?window:int ->
  ?max_retries:int ->
  ?degrade_after:int ->
  ?evict_after:int ->
  ?seed:int ->
  ?outbox:Extsync.t ->
  primary:Group.t ->
  standbys:(Aurora_objstore.Store.t * Aurora_net.Link.t) list ->
  unit ->
  t
(** [window] (default 4) bounds in-flight epochs per standby;
    [max_retries] (default 8) bounds attempts per frame before the
    standby is evicted; [degrade_after]/[evict_after] (defaults 2/6) are
    the consecutive-timeout thresholds of the health state machine;
    [seed] (default 1) drives the per-standby retransmit jitter.
    [outbox] is the primary's external-synchrony buffer: messages are
    released as [quorum_epoch] advances and dropped past the failover
    point. *)

val standby_count : t -> int

val quorum : t -> int
(** ⌈(N+1)/2⌉ — acks needed before an epoch is quorum-committed. *)

val ship : t -> unit
(** Pick up every primary epoch checkpointed since the last call (each
    becomes one sequenced delta frame in the shared epoch log), then pump
    each standby's window: process acks that have arrived by now,
    retransmit expired frames with jittered backoff, fill windows.
    Non-blocking — the primary's clock never waits on the network. *)

val pump : t -> unit
(** The pump half of {!ship} alone (no new epochs logged); call when
    virtual time advanced for other reasons and acks may have landed. *)

val drain : t -> [ `Quorum | `All ] -> bool
(** Advance the primary's clock through ack arrivals and retransmit
    deadlines until the target is reached: [`Quorum] — [quorum_epoch]
    has caught up to the newest logged epoch; [`All] — every standby is
    either current or evicted.  Returns whether the target was met
    (false when too many standbys died to ever reach quorum). *)

val quorum_epoch : t -> int
(** Newest primary epoch verified-acked by a majority of standbys. *)

val last_logged_epoch : t -> int
(** Newest primary epoch entered into the shipping log by {!ship}. *)

val kill : t -> int -> unit
(** The standby's machine is gone (harness hook): its link goes dark,
    its window is discarded, and it is excluded from elections.  Distinct
    from eviction — an evicted standby can {!rejoin}, a killed one
    cannot. *)

val rejoin : t -> int -> unit
(** Bring an evicted standby back: state [Rejoining], one catch-up
    shipment (cumulative delta from its last acked epoch, or the full
    checkpoint stream if it never acked) replaces its window; a verified
    ack returns it to [Healthy] and normal window shipping resumes.
    No-op unless the standby is evicted and alive. *)

(** {1 Introspection} *)

type standby_view = {
  sv_idx : int;
  sv_health : health;
  sv_dead : bool;
  sv_acked_epoch : int;  (** newest primary epoch verified-acked *)
  sv_installed_epoch : int;  (** receiver side: newest epoch installed *)
  sv_lag_epochs : int;  (** logged epochs not yet acked *)
  sv_lag_bytes : int;  (** stream bytes not yet acked *)
  sv_window_occupancy : int;  (** frames currently in flight *)
  sv_consec_timeouts : int;
  sv_retransmits : int;
  sv_timeouts : int;
  sv_dup_acks : int;
  sv_verify_rejects : int;
  sv_shipped_bytes : int;  (** stream bytes verified-acked *)
}

val view : t -> int -> standby_view
val views : t -> standby_view list

type stats = {
  rs_epochs_logged : int;
  rs_acked_total : int;  (** epoch installs acked across all standbys *)
  rs_attempts : int;  (** frames sent, retransmissions included *)
  rs_retransmits : int;
  rs_timeouts : int;
  rs_dup_acks : int;
  rs_verify_rejects : int;
  rs_evictions : int;
  rs_rejoins : int;
  rs_released_msgs : int;  (** outbox messages released at quorum *)
}

val stats : t -> stats

(** {1 Election and failover} *)

type vote = {
  vt_idx : int;
  vt_primary_epoch : int;  (** newest verified epoch it can serve *)
  vt_standby_epoch : int;  (** that epoch's local name in its store *)
}

type election_report = {
  el_votes : vote list;  (** every survivor's advertisement *)
  el_winner : int;  (** standby index that restores *)
  el_source_epoch : int;  (** primary epoch actually restored *)
  el_dropped_msgs : int;  (** outbox messages from the discarded window *)
  el_restore : Restore.verified;
}

val elect_and_failover :
  t ->
  survivors:int list ->
  machine:Aurora_kern.Machine.t ->
  (election_report, string) result
(** The primary is gone and [survivors] (standby indexes) can still talk
    to each other: exchange newest verified epochs, restore the maximum
    on the winner, drop the discarded outbox window.  [Error] when no
    survivor holds any verified epoch. *)

(** {1 Live migration} *)

type migration_report = {
  mig_rounds : int;  (** pre-copy iterations before the cut-over *)
  mig_precopy_bytes : int;  (** stream bytes shipped while running *)
  mig_final_bytes : int;  (** stream bytes in the stop-and-copy delta *)
  mig_downtime_ns : int;
      (** virtual time from workload stop to the target restored *)
  mig_total_ns : int;  (** whole migration, first pre-copy included *)
  mig_source_epoch : int;  (** primary epoch the target came up from *)
  mig_identical : bool;
      (** target epoch byte-identical to the source: same objects, same
          metadata, same page CRCs *)
}

val migrate_live :
  ?window:int ->
  ?max_rounds:int ->
  ?stop_ratio:float ->
  ?link:Aurora_net.Link.t ->
  primary:Group.t ->
  target_store:Aurora_objstore.Store.t ->
  machine:Aurora_kern.Machine.t ->
  workload:(int -> unit) ->
  unit ->
  (migration_report, string) result
(** Iterative pre-copy: round [r] runs [workload r] (the still-live
    service dirtying state), checkpoints, and pipelines the delta to the
    target; rounds stop when the delta shrinks below [stop_ratio]
    (default 0.1) of the first full stream or [max_rounds] (default 8)
    is hit.  Cut-over: the workload stops, a final delta ships, and the
    target machine restores the verified epoch; downtime is that whole
    tail, measured in virtual time.  [Error] if the target store ends up
    evicted (link too hostile) or the restore fails. *)

val stores_identical :
  src:Aurora_objstore.Store.t ->
  src_epoch:int ->
  dst:Aurora_objstore.Store.t ->
  dst_epoch:int ->
  bool
(** Byte-identity of two checkpoints: equal non-manifest object sets,
    equal kinds and metadata, equal page CRC sets.  (Manifests are
    excluded — each store writes its own, naming its local epoch.) *)
