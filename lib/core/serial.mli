(** Serialization of POSIX objects to and from store images.

    Each kernel object kind has an image record (what restore needs), a
    serializer to the store's wire format, and a parser back.  References
    between objects — a file-descriptor slot pointing at a description, a
    description pointing at a pipe, a VM entry pointing at a memory object —
    are encoded as 64-bit object identifiers, which is the heart of the
    POSIX object model: sharing is represented structurally, never
    re-inferred.

    Serializers are pure; the checkpoint path charges the modeled
    serialization costs separately. *)

(** {1 Images} *)

type regs_image = {
  i_rip : int;
  i_rsp : int;
  i_rflags : int;
  i_gp : int array;
  i_fpu : string;
}

type thread_image = {
  i_tid_local : int;
  i_regs : regs_image;
  i_sigmask : int;
  i_pending : int list;
  i_priority : int;
}

type entry_image = {
  i_start_vpn : int;
  i_npages : int;
  i_read : bool;
  i_write : bool;
  i_exec : bool;
  i_shared : bool;
  i_excluded : bool;
  i_obj_oid : int;
  i_obj_pgoff : int;
}

type proc_image = {
  i_pid_local : int;
  i_ppid_local : int;
  i_pgid : int;
  i_sid : int;
  i_name : string;
  i_ephemeral : bool;
  i_cwd : string;
  i_threads : thread_image list;
  i_fds : (int * int) list;  (** (slot, description oid) *)
  i_entries : entry_image list;
  i_proc_pending : int list;
  i_aio_reads : (int * int * int) list;
      (** in-flight asynchronous reads [(fd slot, offset, length)]: they
          are recorded in the checkpoint and reissued at restore (paper
          section 5.3); in-flight writes are not recorded — the checkpoint
          instead waits for them before completing *)
}

type fdesc_kind_image =
  | I_vnode of { inode : int; offset : int; append : bool }
  | I_pipe_r of int
  | I_pipe_w of int
  | I_socket of int
  | I_kqueue of int
  | I_pty_m of int
  | I_pty_s of int
  | I_shm of int
  | I_device of string

type fdesc_image = { i_kind : fdesc_kind_image; i_ext_sync : bool }

type pipe_image = { i_data : string; i_rd_open : bool; i_wr_open : bool }

type msg_image = { i_msg_data : string; i_ctl_oids : int list }

type socket_image = {
  i_domain : int;
  i_proto : int;
  i_laddr : (string * int) option;
  i_raddr : (string * int) option;
  i_opts : (string * int) list;
  i_tcp : int;  (** 0 closed, 1 listening, 2 established *)
  i_snd_seq : int;
  i_rcv_seq : int;
  i_peer_oid : int;  (** 0 when unconnected *)
  i_recvq : msg_image list;
  i_sendq : msg_image list;
}

type kevent_image = { i_ident : int; i_filter : int; i_flags : int; i_udata : int }

type pty_image = {
  i_unit : int;
  i_echo : bool;
  i_canonical : bool;
  i_baud : int;
  i_input : string;
  i_output : string;
}

type shm_image = { i_shm_kind : (string, int) Either.t; i_npages : int; i_backing_oid : int }

type memobj_image = { i_parent_oid : int option; i_anon : bool }

type group_image = {
  i_proc_oids : int list;
  i_period : int;
  i_ext_sync_on : bool;
  i_name_ckpts : (string * int) list;  (** named checkpoints -> epoch *)
  i_ephemeral_parents : int list;
      (** local pids to signal with SIGCHLD after restore: their ephemeral
          children were not persisted and look exited (section 3) *)
}

(** The epoch manifest (one per committed epoch, stored as an object of
    [kind_manifest] inside the epoch it describes): object count, epoch
    id, and per-object checksums — metadata CRC-32 plus a fingerprint of
    the per-page CRC-32s the store keeps in its radix leaves.  Checked
    when a replicated checkpoint installs and again on restore, so
    corruption is detected instead of deserialized. *)
type manifest_entry = {
  i_me_oid : int;
  i_me_kind : string;
  i_me_meta_crc : int;  (** CRC-32 of the serialized metadata *)
  i_me_pages : int;  (** resident page count *)
  i_me_pages_crc : int;  (** {!pages_fingerprint} of the page CRCs *)
}

type manifest_image = {
  i_m_epoch : int;  (** the epoch id at the machine that wrote it *)
  i_m_count : int;  (** objects in the epoch, manifest excluded *)
  i_m_entries : manifest_entry list;  (** sorted by oid *)
}

(** {1 Object kind tags used in the store} *)

val kind_group : string
val kind_proc : string
val kind_fdesc : string
val kind_pipe : string
val kind_socket : string
val kind_kqueue : string
val kind_pty : string
val kind_shm : string
val kind_memobj : string
val kind_manifest : string

exception Malformed of string
(** The single typed error every [*_of_string] parser raises on malformed
    input (object kind and byte offset in the message) — short reads, bad
    tags, and anything a hostile payload would otherwise provoke out of
    the runtime as [Failure]/[Invalid_argument]. *)

(** {1 Serializers} *)

val proc_to_string : proc_image -> string
val proc_of_string : string -> proc_image
val fdesc_to_string : fdesc_image -> string
val fdesc_of_string : string -> fdesc_image
val pipe_to_string : pipe_image -> string
val pipe_of_string : string -> pipe_image
val socket_to_string : socket_image -> string
val socket_of_string : string -> socket_image
val kqueue_to_string : kevent_image list -> string
val kqueue_of_string : string -> kevent_image list
val pty_to_string : pty_image -> string
val pty_of_string : string -> pty_image
val shm_to_string : shm_image -> string
val shm_of_string : string -> shm_image
val memobj_to_string : memobj_image -> string
val memobj_of_string : string -> memobj_image
val group_to_string : group_image -> string
val group_of_string : string -> group_image
val manifest_to_string : manifest_image -> string
val manifest_of_string : string -> manifest_image

(** {1 Manifest helpers} *)

val pages_fingerprint : (int * int) list -> int
(** Order-independent combination of [(page index, CRC-32)] pairs. *)

val manifest_entry_of_source : int * string * string * (int * int) list -> manifest_entry
(** Build an entry from one row of
    {!Aurora_objstore.Store.staging_manifest_source} (or the equivalent
    committed-epoch accessors). *)

val manifest_summary : manifest_entry list -> int
(** Order-independent digest of a whole manifest; travels in replication
    frames so the receiver can verify its composed epoch against the
    sender's manifest without shipping the manifest body. *)

val parse_check : kind:string -> string -> (unit, string) result
(** Try parsing [meta] as a [kind] image; [Ok ()] for kinds serialized
    elsewhere (file-system objects, raw memory). *)

(** {1 Capture helpers (kernel object -> image)} *)

val image_of_regs : Aurora_kern.Thread.regs -> regs_image
val regs_of_image : regs_image -> Aurora_kern.Thread.regs
val image_of_thread : Aurora_kern.Thread.t -> thread_image
val thread_of_image : thread_image -> tid_global:int -> Aurora_kern.Thread.t
