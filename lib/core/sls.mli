(** The Aurora single level store: public facade.

    Typical use:

    {[
      let sys = Sls.boot () in
      let p = Aurora_kern.Syscall.spawn sys.Sls.machine ~name:"app" in
      (* ... the application builds state ... *)
      let group = Sls.attach sys [ p ] in
      ignore (Aurora_core.Group.checkpoint group);
      (* ... crash! ... *)
      let sys', restored = Sls.reboot_and_restore sys in
      ignore (sys', restored)
    ]}

    The submodules hold the full API: {!Group} (consistency groups and
    checkpointing), {!Api} (the Table 3 application API), {!Restore},
    {!Migrate} ([sls send]/[sls recv]), {!Coredump} ([sls dump]) and
    {!Extsync} (external synchrony). *)

type system = {
  machine : Aurora_kern.Machine.t;
  device : Aurora_block.Striped.t;
  store : Aurora_objstore.Store.t;
  fs : Aurora_fs.Fs.t;
}

val boot : unit -> system
(** A fresh machine: 4-way striped NVMe array, formatted object store, and
    the Aurora file system mounted. *)

val attach : ?period_ns:int -> system -> Aurora_kern.Process.t list -> Group.t
(** [sls attach]: put processes under transparent persistence.  Groups
    attached while {!set_speculative} is on default to speculative
    soft-quiesce checkpoints. *)

val set_speculative : bool -> unit
(** Process-wide default checkpoint mode for groups attached from now on:
    [true] makes them serialize speculatively, concurrent with execution,
    and validate in a short stop window (see {!Group.checkpoint}). *)

val speculative_enabled : unit -> bool

val crash : system -> unit
(** Power failure now: all volatile state is lost; only device-durable
    bytes survive. *)

val reboot_and_restore : ?lazy_pages:bool -> system -> system * Restore.result
(** Crash the machine, then boot a fresh kernel, recover the store from
    the devices, and restore the last complete checkpoint. *)
