(** High availability by continuous checkpoint shipping (paper sections 3
    and 10): the primary's incremental checkpoints stream to a standby's
    store over the network; on primary failure the standby restores the
    last shipped checkpoint and takes over.  The recovery point is the
    last replicated epoch — with 10 ms checkpoints and page-granular
    deltas, typically a handful of milliseconds of work.

    Shipping is a stop-and-wait protocol over a faultable
    {!Aurora_net.Link}: every shipment is a sequenced, CRC-framed frame
    carrying the stream plus a digest of the primary's epoch manifest;
    the standby installs only if its composed state hashes to the same
    digest, and only then acks.  Unacknowledged frames are retransmitted
    with exponential backoff in virtual time, extended across network
    partitions; duplicates and reordered deliveries are idempotent.
    [shipped_epoch] advances exclusively on a verified ack. *)

type t

val create :
  ?link:Aurora_net.Link.t ->
  ?outbox:Extsync.t ->
  ?max_retries:int ->
  primary:Group.t ->
  standby_store:Aurora_objstore.Store.t ->
  unit ->
  t
(** [link] defaults to a fresh fault-free link; inject one with a fault
    profile to exercise the protocol.  [outbox] is the primary's
    external-synchrony buffer, consulted on failover to drop messages
    from the discarded window.  [max_retries] (default 8) bounds
    retransmissions per epoch. *)

val replicate_result : t -> (int, string) result
(** Ship everything the standby has not seen (the first call ships the
    full checkpoint, later calls page-granular deltas); installs it in
    the standby store and charges the transfer to the standby's clock.
    [Ok bytes] is the size shipped ([Ok 0] iff the standby was already
    current); [Error] surfaces why a shipment failed — retries exhausted
    (possibly across a partition) or the standby rejecting a composed
    epoch that contradicts the manifest digest.  The old [replicate]
    wrapper returned 0 for both "current" and "failed"; callers go
    through this result type instead. *)

val shipped_epoch : t -> int
(** The primary epoch the standby could fail over to right now; advances
    only on a verified acknowledgement. *)

val lag_epochs : t -> int
(** Primary epochs not yet replicated. *)

val bytes_replicated : t -> int

val link : t -> Aurora_net.Link.t

type stats = {
  ha_shipments : int;  (** epochs successfully shipped and acked *)
  ha_attempts : int;  (** frames sent, including retransmissions *)
  ha_retransmits : int;
  ha_dup_acks : int;  (** duplicate deliveries re-acked without install *)
  ha_verify_rejects : int;  (** composed epochs the standby refused *)
  ha_backoff_ns : int;
      (** total virtual time spent waiting out ack deadlines that expired
          with no usable ack — the retry cost attributable in benchmarks *)
}

val stats : t -> stats

(** {1 Failover} *)

type failover_report = {
  fo_restore : Restore.verified;
  fo_source_epoch : int;
      (** the {e primary} epoch the restored state corresponds to (0 when
          the mapping is unknown, e.g. a store populated out of band) *)
  fo_dropped_msgs : int;
      (** externally-synchronized messages discarded with the lost window *)
}

val failover_verified :
  t ->
  machine:Aurora_kern.Machine.t ->
  (failover_report, Restore.restore_error) result
(** The primary is gone: restore the newest manifest-verified epoch on
    the standby machine, falling back past corrupt epochs
    ({!Restore.restore_verified}), and drop buffered externally-
    synchronized messages from the discarded window. *)

val failover : t -> machine:Aurora_kern.Machine.t -> Restore.result
(** {!failover_verified} unwrapped; raises [Failure] when no epoch on the
    standby verifies. *)
