module Clock = Aurora_sim.Clock
module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Syscall = Aurora_kern.Syscall
module Store = Aurora_objstore.Store
module Wire = Aurora_objstore.Wire

type entry = Recv_msg of int * string | Clock_read of int

let entry_to_string e =
  let w = Wire.writer () in
  (match e with
  | Recv_msg (fd, payload) ->
      Wire.u8 w 0;
      Wire.u32 w fd;
      Wire.str w payload
  | Clock_read v ->
      Wire.u8 w 1;
      Wire.u64 w v);
  Bytes.to_string (Wire.contents w)

let entry_of_string s =
  let r = Wire.reader (Bytes.of_string s) in
  match Wire.ru8 r with
  | 0 ->
      let fd = Wire.ru32 r in
      let payload = Wire.rstr r in
      Recv_msg (fd, payload)
  | 1 -> Clock_read (Wire.ru64 r)
  | k -> raise (Wire.Corrupt (Printf.sprintf "bad replay entry kind %d" k))

module Recorder = struct
  type t = {
    group : Group.t;
    journal : Api.journal;
    mutable since_checkpoint : int;
  }

  let attach group =
    {
      group;
      journal = Api.sls_journal_open group ~size:(4 * 1024 * 1024);
      since_checkpoint = 0;
    }

  let log t e =
    if Aurora_obs.Trace.is_on () then
      Aurora_obs.Trace.instant ~cat:"replay" "record"
        ~args:
          [
            ( "kind",
              Aurora_obs.Trace.Str
                (match e with Recv_msg _ -> "recv_msg" | Clock_read _ -> "clock_read") );
          ];
    Api.sls_journal t.group t.journal (entry_to_string e);
    t.since_checkpoint <- t.since_checkpoint + 1

  let recv_msg t p ~fd =
    let machine = Group.machine t.group in
    match Syscall.recv_msg machine p ~fd with
    | Some (payload, _fds) ->
        log t (Recv_msg (fd, payload));
        Some payload
    | None -> None

  let read_clock t =
    let v = Clock.now (Group.clock t.group) in
    log t (Clock_read v);
    v

  let on_checkpoint t =
    if Aurora_obs.Trace.is_on () then
      Aurora_obs.Trace.instant ~cat:"replay" "truncate"
        ~args:[ ("entries", Aurora_obs.Trace.Int t.since_checkpoint) ];
    Api.sls_journal_truncate t.group t.journal;
    t.since_checkpoint <- 0

  let log_length t = t.since_checkpoint
  let journal_id t = Api.journal_id t.journal
end

let recover ~store ~journal_id =
  match Store.journal_find store journal_id with
  | None -> []
  | Some j -> List.map entry_of_string (Store.journal_records store j)

module Replayer = struct
  type t = { mutable entries : entry list }

  let create entries = { entries }

  let recv_msg t ~fd =
    (* Re-execution is deterministic, so the next receive on [fd] is the
       next Recv_msg entry for it. *)
    let rec take acc = function
      | [] -> None
      | Recv_msg (f, payload) :: rest when f = fd ->
          t.entries <- List.rev_append acc rest;
          Some payload
      | other :: rest -> take (other :: acc) rest
    in
    take [] t.entries

  let read_clock t =
    let rec take acc = function
      | [] -> None
      | Clock_read v :: rest ->
          t.entries <- List.rev_append acc rest;
          Some v
      | other :: rest -> take (other :: acc) rest
    in
    take [] t.entries

  let remaining t = List.length t.entries
end
