module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost
module Resource = Aurora_sim.Resource
module Genlog = Aurora_sim.Genlog
module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Fdesc = Aurora_kern.Fdesc
module Pipe = Aurora_kern.Pipe
module Socket = Aurora_kern.Socket
module Kqueue = Aurora_kern.Kqueue
module Pty = Aurora_kern.Pty
module Shm = Aurora_kern.Shm
module Vnode = Aurora_kern.Vnode
module Vm_map = Aurora_vm.Vm_map
module Vm_object = Aurora_vm.Vm_object
module Vm_space = Aurora_vm.Vm_space
module Pmap = Aurora_vm.Pmap
module Page = Aurora_vm.Page
module Store = Aurora_objstore.Store
module Fs = Aurora_fs.Fs
module Otrace = Aurora_obs.Trace
module Ometrics = Aurora_obs.Metrics

let h_ckpt_stop = Ometrics.histogram "ckpt.stop_ns"
let h_ckpt_quiesce = Ometrics.histogram "ckpt.quiesce_ns"
let h_ckpt_serialize = Ometrics.histogram "ckpt.serialize_ns"
let h_ckpt_shadow = Ometrics.histogram "ckpt.shadow_ns"
let h_ckpt_flush = Ometrics.histogram "ckpt.flush_ns"
let h_ckpt_speculate = Ometrics.histogram "ckpt.speculate_ns"
let h_ckpt_validate = Ometrics.histogram "ckpt.validate_ns"
let h_ckpt_durable_lag = Ometrics.histogram "ckpt.durable_lag_ns"
let m_ckpt_epochs = Ometrics.counter "ckpt.epochs"
let m_ckpt_objects = Ometrics.counter "ckpt.objects_serialized"
let m_ckpt_skipped = Ometrics.counter "ckpt.objects_skipped"
let m_ckpt_meta_bytes = Ometrics.counter "ckpt.meta_bytes"
let m_ckpt_pages = Ometrics.counter "ckpt.pages_flushed"

(* Extra per-kind serialization costs beyond [Cost.obj_serialize_base],
   calibrated to Table 4. *)
let vnode_extra = 500
let pipe_extra = 500
let socket_extra = 600
let pty_ckpt_extra = 1_900
let shm_posix_extra = 500

(* One logical memory object: a stable store identity for a VM object whose
   top shadow rotates every checkpoint.  [logical] is the base that
   survives reverse collapses; [top] is where writes currently land;
   [frozen] is the previous epoch's dirty set being flushed. *)
type memrec = {
  mo_oid : int;
  mutable logical : Vm_object.t;
  mutable top : Vm_object.t;
  mutable frozen : Vm_object.t option;
  mutable parent_oid : int option;
  mutable ever_flushed : bool;
}

type ckpt_stats = {
  stop_ns : int;
  quiesce_ns : int;
  os_serialize_ns : int;
  mem_mark_ns : int;
  flush_ns : int;
  pages_flushed : int;
  pages_serialized : int;
  pages_deduped : int;
  bytes_written : int;
  epoch : int;
  durable_at : int;
  flush : Store.flush_stats option;
  objects_serialized : int;
  objects_skipped : int;
  meta_bytes_written : int;
  speculate_ns : int;
  validate_ns : int;
  conflict_objects : int;
  conflict_pages : int;
}

type t = {
  mach : Machine.t;
  st : Store.t;
  filesystem : Fs.t option;
  mutable member_pids : int list; (* global pids *)
  mutable period : int;
  mutable ext_sync : bool;
  grp_oid : int;
  proc_oids : (int, int) Hashtbl.t; (* pid_local -> oid *)
  desc_oids : (int, int) Hashtbl.t; (* desc_id -> oid *)
  sub_oids : (string * int, int) Hashtbl.t; (* (kind, kernel id) -> oid *)
  memrecs : (int, memrec) Hashtbl.t; (* logical object id -> memrec *)
  top_index : (int, memrec) Hashtbl.t; (* current top object id -> memrec *)
  mutable named : (string * int) list;
  mutable last_epoch_committed : int;
  mutable last_ckpt_time : int;
  seen : (int, unit) Hashtbl.t;
      (* oids serialized in the current cycle: each object is serialized
         exactly once per checkpoint no matter how many references reach
         it — the POSIX-object-model property. *)
  mutable persist : bool; (* false during memory-only checkpoints *)
  mutable manifest_oid : int; (* 0 until first flushed checkpoint *)
  last_gen : (int, int) Hashtbl.t;
      (* oid -> generation stamp at the object's last persisted image;
         an object whose current stamp still matches is skipped by the
         incremental OS-state pass (the store's epoch-composed read path
         resolves it from the prior epoch) *)
  mutable full_cycle : bool; (* [~full:true]: disable skipping this cycle *)
  mutable c_serialized : int; (* OS objects serialized this cycle *)
  mutable c_skipped : int; (* OS objects dirty-checked and skipped *)
  mutable c_meta_bytes : int; (* serialized OS metadata staged this cycle *)
  (* Speculative soft-quiesce state (see checkpoint_common).  All of it is
     cycle-scoped except [speculative], the group's default mode. *)
  mutable speculative : bool;
  mutable spec_phase : bool; (* inside the soft serialize window *)
  mutable spec_last_yield : int;
  mutable spec_busy_ns : int; (* serialize CPU attributed to spec_cpu *)
  mutable c_spec_base : int; (* c_serialized after the initial soft pass *)
  mutable c_conflict_pages : int; (* pages re-copied after the harvest *)
  spec_cpu : Resource.t; (* the spare core running speculative serialize *)
  spec_thunks : (int * int, unit -> unit) Hashtbl.t;
      (* (Genlog kind, kernel id) -> re-serialize closure recorded when
         the speculation pass visited the object; the validator re-runs
         exactly the logged conflict set instead of re-walking the graph *)
  spec_pages : (int, (int, unit) Hashtbl.t) Hashtbl.t;
      (* mo_oid -> page indexes staged speculatively; flush skips these *)
  spec_proc_snap : (int, int) Hashtbl.t;
      (* pid_global -> effective generation at the last speculation round *)
}

let attach ~machine ~store ?fs ?(period_ns = 10_000_000) ?group_oid procs =
  let t =
    {
      mach = machine;
      st = store;
      filesystem = fs;
      member_pids = List.map (fun p -> p.Process.pid_global) procs;
      period = period_ns;
      ext_sync = true;
      grp_oid =
        (match group_oid with Some oid -> oid | None -> Store.alloc_oid store);
      proc_oids = Hashtbl.create 16;
      desc_oids = Hashtbl.create 64;
      sub_oids = Hashtbl.create 64;
      memrecs = Hashtbl.create 64;
      top_index = Hashtbl.create 64;
      named = [];
      last_epoch_committed = 0;
      last_ckpt_time = Clock.now machine.Machine.clock;
      seen = Hashtbl.create 128;
      persist = true;
      manifest_oid = 0;
      last_gen = Hashtbl.create 128;
      full_cycle = false;
      c_serialized = 0;
      c_skipped = 0;
      c_meta_bytes = 0;
      speculative = false;
      spec_phase = false;
      spec_last_yield = 0;
      spec_busy_ns = 0;
      c_spec_base = 0;
      c_conflict_pages = 0;
      spec_cpu = Resource.create ~name:"ckpt-spec-cpu";
      spec_thunks = Hashtbl.create 64;
      spec_pages = Hashtbl.create 16;
      spec_proc_snap = Hashtbl.create 16;
    }
  in
  t

let machine t = t.mach
let store t = t.st
let fs t = t.filesystem
let clock t = t.mach.Machine.clock
let period_ns t = t.period
let set_period_ns t p = t.period <- p

let members t =
  List.filter_map (fun pid -> Machine.proc t.mach pid) t.member_pids

let add_process t p =
  if not (List.mem p.Process.pid_global t.member_pids) then
    t.member_pids <- t.member_pids @ [ p.Process.pid_global ]

let detach_process t p =
  t.member_pids <- List.filter (fun pid -> pid <> p.Process.pid_global) t.member_pids

let ext_sync_enabled t = t.ext_sync
let set_ext_sync t v = t.ext_sync <- v
let speculative_enabled t = t.speculative
let set_speculative t v = t.speculative <- v
let group_oid t = t.grp_oid
let last_epoch t = t.last_epoch_committed

let name_checkpoint t name =
  t.named <- (name, t.last_epoch_committed) :: List.remove_assoc name t.named

let named_checkpoints t = t.named

(* Oid allocation, deduplicated by kernel object identity ------------------- *)

let sub_oid t kind id =
  match Hashtbl.find_opt t.sub_oids (kind, id) with
  | Some oid -> oid
  | None ->
      let oid = Store.alloc_oid t.st in
      Hashtbl.replace t.sub_oids (kind, id) oid;
      oid

let desc_oid t (d : Fdesc.t) =
  match Hashtbl.find_opt t.desc_oids d.Fdesc.desc_id with
  | Some oid -> oid
  | None ->
      let oid = Store.alloc_oid t.st in
      Hashtbl.replace t.desc_oids d.Fdesc.desc_id oid;
      oid

let oid_of_desc t d = Hashtbl.find_opt t.desc_oids d.Fdesc.desc_id

(* Memory records ------------------------------------------------------------ *)

let memrec_of_top t obj = Hashtbl.find_opt t.top_index (Vm_object.id obj)

let memrec_oid_of_object t obj =
  match memrec_of_top t obj with
  | Some r -> Some r.mo_oid
  | None -> (
      match Hashtbl.find_opt t.memrecs (Vm_object.id obj) with
      | Some r -> Some r.mo_oid
      | None -> None)

(* Find the memrec owning [obj] anywhere in its role (logical, top or
   frozen); used to resolve parent links of fork-created shadows. *)
let owning_memrec t obj =
  let id = Vm_object.id obj in
  match Hashtbl.find_opt t.top_index id with
  | Some r -> Some r
  | None -> (
      match Hashtbl.find_opt t.memrecs id with
      | Some r -> Some r
      | None ->
          Hashtbl.fold
            (fun _ r acc ->
              match acc with
              | Some _ -> acc
              | None -> (
                  match r.frozen with
                  | Some f when Vm_object.id f = id -> Some r
                  | Some _ | None -> None))
            t.memrecs None)

(* Ensure a memrec exists for the chain rooted at [obj] (an entry's current
   object).  Parents discovered along the chain get their own records; the
   first ancestor already owned by a record becomes the parent link. *)
let rec ensure_memrec t obj =
  match memrec_of_top t obj with
  | Some r -> r
  | None -> (
      match Hashtbl.find_opt t.memrecs (Vm_object.id obj) with
      | Some r -> r
      | None ->
          let parent_oid =
            match Vm_object.parent obj with
            | None -> None
            | Some p -> (
                match owning_memrec t p with
                | Some pr -> Some pr.mo_oid
                | None ->
                    let pr = ensure_memrec t p in
                    Some pr.mo_oid)
          in
          let r =
            {
              mo_oid = Store.alloc_oid t.st;
              logical = obj;
              top = obj;
              frozen = None;
              parent_oid;
              ever_flushed = false;
            }
          in
          Hashtbl.replace t.memrecs (Vm_object.id obj) r;
          Hashtbl.replace t.top_index (Vm_object.id obj) r;
          r)

let seed_proc_oid t ~pid_local ~oid = Hashtbl.replace t.proc_oids pid_local oid
let seed_desc_oid t ~desc_id ~oid = Hashtbl.replace t.desc_oids desc_id oid
let seed_sub_oid t ~kind ~id ~oid = Hashtbl.replace t.sub_oids (kind, id) oid
let set_named t named = t.named <- named

let register_restored_memobj t ~oid obj =
  let r =
    {
      mo_oid = oid;
      logical = obj;
      top = obj;
      frozen = None;
      parent_oid =
        (match Vm_object.parent obj with
        | None -> None
        | Some p -> (
            match owning_memrec t p with Some pr -> Some pr.mo_oid | None -> None));
      ever_flushed = true;
    }
  in
  Hashtbl.replace t.memrecs (Vm_object.id obj) r;
  Hashtbl.replace t.top_index (Vm_object.id obj) r

(* Serialization of POSIX objects --------------------------------------------- *)

let charge t ns = Clock.advance (clock t) ns

(* Soft-quiesce yields -------------------------------------------------------

   During the speculation phase the serialize CPU is a spare core, not
   the application's: every [spec_yield_quantum] ns of accumulated
   serialize work we account that time to [spec_cpu] and open a
   concurrency window so the workload driver runs the threads forward.
   Mutations landing in such a window are exactly what the validator
   later re-copies. *)

let spec_yield_quantum = 50_000

(* Fold the serialize time since the last yield into the spec core's
   occupancy. *)
let spec_account t =
  let now = Clock.now (clock t) in
  let dt = now - t.spec_last_yield in
  if dt > 0 then begin
    t.spec_busy_ns <- t.spec_busy_ns + dt;
    ignore (Resource.submit t.spec_cpu ~now ~duration:dt);
    t.spec_last_yield <- now
  end

let spec_maybe_yield t =
  if t.spec_phase then begin
    let now = Clock.now (clock t) in
    let dt = now - t.spec_last_yield in
    if dt >= spec_yield_quantum then begin
      spec_account t;
      Machine.concurrent_window t.mach ~ns:dt;
      (* Whatever the hook ran was application time, not serialize time. *)
      t.spec_last_yield <- Clock.now (clock t)
    end
  end

(* Record how to revisit a kernel object so a Genlog conflict note can be
   resolved without re-walking the object graph. *)
let spec_register t ~kind ~id thunk =
  if t.spec_phase then Hashtbl.replace t.spec_thunks (kind, id) thunk

let put_obj t ~oid ~kind ~meta =
  if t.persist then Store.put_object t.st ~oid ~kind ~meta

(* The manifest object keeps one stable oid per store: after a restore the
   group discovers it in the last committed epoch instead of allocating a
   second one. *)
let manifest_oid t =
  if t.manifest_oid <> 0 then t.manifest_oid
  else begin
    let oid =
      let e = Store.last_complete_epoch t.st in
      let found =
        if e = 0 then None
        else
          List.find_opt
            (fun (_, kind) -> kind = Serial.kind_manifest)
            (Store.objects_at t.st ~epoch:e)
      in
      match found with Some (oid, _) -> oid | None -> Store.alloc_oid t.st
    in
    t.manifest_oid <- oid;
    oid
  end

(* Stage the epoch's manifest as the last object before commit: count,
   epoch id and per-object checksums of everything the commit will
   contain (the manifest itself excluded), built from the merged
   staged-plus-carried state the store will actually write.  The rows come
   from the store's delta-aware summary, so a mostly-skipped incremental
   checkpoint doesn't pay a full per-page manifest walk; entries for
   skipped objects carry the cached CRCs of their prior image, keeping
   verified shipping and restore verification over the full composed
   state. *)
let stage_manifest t ~epoch =
  if t.persist then begin
    let moid = manifest_oid t in
    let entries =
      Store.staging_manifest_entries t.st
      |> List.filter (fun (oid, _, _, _, _) -> oid <> moid)
      |> List.map (fun (oid, kind, meta_crc, npages, fp) ->
             {
               Serial.i_me_oid = oid;
               i_me_kind = kind;
               i_me_meta_crc = meta_crc;
               i_me_pages = npages;
               i_me_pages_crc = fp;
             })
    in
    Store.put_object t.st ~oid:moid ~kind:Serial.kind_manifest
      ~meta:
        (Serial.manifest_to_string
           {
             Serial.i_m_epoch = epoch;
             i_m_count = List.length entries;
             i_m_entries = entries;
           })
  end

let put_pgs t ~oid pages = if t.persist then Store.put_pages t.st ~oid pages

(* [once t oid f]: run [f] only the first time [oid] is reached this
   cycle. *)
let once t oid f = if not (Hashtbl.mem t.seen oid) then begin Hashtbl.replace t.seen oid (); f () end

(* The incremental OS-state pass.  An object whose generation stamp still
   matches its last persisted image is dirty-checked and skipped: no
   serialization charge, nothing staged — the store's epoch-composed read
   path resolves it from the prior epoch.  [children] always runs on the
   skip path: a clean composite can still reach dirty children (a process
   whose fd table is unchanged may hold a pipe that filled up), and the
   serialize path reaches them through [serialize] itself. *)
let ckpt_obj t ~oid ~gen ~children ~serialize =
  once t oid (fun () ->
      if (not t.full_cycle) && Hashtbl.find_opt t.last_gen oid = Some gen then begin
        charge t Cost.ckpt_dirty_check;
        t.c_skipped <- t.c_skipped + 1;
        if Otrace.is_on () then
          Otrace.instant ~cat:"ckpt.obj" "skip" ~args:[ ("oid", Otrace.Int oid) ];
        children ()
      end
      else begin
        let kind, meta = serialize () in
        put_obj t ~oid ~kind ~meta;
        if t.persist then begin
          Hashtbl.replace t.last_gen oid gen;
          t.c_meta_bytes <- t.c_meta_bytes + String.length meta
        end;
        t.c_serialized <- t.c_serialized + 1;
        if Otrace.is_on () then
          Otrace.instant ~cat:"ckpt.obj" "serialize"
            ~args:
              [
                ("oid", Otrace.Int oid);
                ("kind", Otrace.Str kind);
                ("bytes", Otrace.Int (String.length meta));
              ];
        spec_maybe_yield t
      end)

let rec checkpoint_pipe t pipe =
  spec_register t ~kind:Genlog.kind_pipe ~id:(Pipe.id pipe) (fun () ->
      ignore (checkpoint_pipe t pipe));
  let oid = sub_oid t "pipe" (Pipe.id pipe) in
  ckpt_obj t ~oid ~gen:(Pipe.generation pipe)
    ~children:(fun () -> ())
    ~serialize:(fun () ->
      charge t (Cost.obj_serialize_base + pipe_extra);
      ( Serial.kind_pipe,
        Serial.pipe_to_string
          {
            Serial.i_data = Pipe.peek_all pipe;
            i_rd_open = Pipe.read_open pipe;
            i_wr_open = Pipe.write_open pipe;
          } ));
  oid

let rec checkpoint_kqueue t kq =
  spec_register t ~kind:Genlog.kind_kqueue ~id:(Kqueue.id kq) (fun () ->
      ignore (checkpoint_kqueue t kq));
  let oid = sub_oid t "kqueue" (Kqueue.id kq) in
  ckpt_obj t ~oid ~gen:(Kqueue.generation kq)
    ~children:(fun () -> ())
    ~serialize:(fun () ->
  charge t (Cost.obj_serialize_base + (Kqueue.event_count kq * Cost.kqueue_per_event));
  let evs =
    List.map
      (fun (e : Kqueue.kevent) ->
        {
          Serial.i_ident = e.Kqueue.ident;
          i_filter =
            (match e.Kqueue.filter with
            | Kqueue.Ev_read -> 0
            | Kqueue.Ev_write -> 1
            | Kqueue.Ev_timer -> 2
            | Kqueue.Ev_signal -> 3
            | Kqueue.Ev_proc -> 4);
          i_flags = e.Kqueue.flags;
          i_udata = e.Kqueue.udata;
        })
      (Kqueue.events kq)
  in
  (Serial.kind_kqueue, Serial.kqueue_to_string evs));
  oid

let rec checkpoint_pty t pty =
  spec_register t ~kind:Genlog.kind_pty ~id:(Pty.id pty) (fun () ->
      ignore (checkpoint_pty t pty));
  let oid = sub_oid t "pty" (Pty.id pty) in
  ckpt_obj t ~oid ~gen:(Pty.generation pty)
    ~children:(fun () -> ())
    ~serialize:(fun () ->
      charge t (Cost.obj_serialize_base + pty_ckpt_extra);
      let tio = Pty.termios pty in
      ( Serial.kind_pty,
        Serial.pty_to_string
          {
            Serial.i_unit = Pty.unit_number pty;
            i_echo = tio.Pty.echo;
            i_canonical = tio.Pty.canonical;
            i_baud = tio.Pty.baud;
            i_input = Pty.in_buffered pty;
            i_output = Pty.out_buffered pty;
          } ));
  oid

let addr_image = function
  | None -> None
  | Some { Socket.host; port } -> Some (host, port)

(* Sockets reference in-flight SCM_RIGHTS descriptions, so serializing one
   may recursively serialize descriptions not present in any fd table. *)
let rec checkpoint_socket t sock =
  spec_register t ~kind:Genlog.kind_socket ~id:(Socket.id sock) (fun () ->
      ignore (checkpoint_socket t sock));
  let oid = sub_oid t "socket" (Socket.id sock) in
  ckpt_obj t ~oid ~gen:(Socket.generation sock)
    ~children:(fun () ->
      (* Even when the socket is clean its buffered SCM_RIGHTS descriptions
         may have mutated independently: visit them. *)
      List.iter
        (fun (m : Socket.msg) ->
          List.iter
            (fun desc_id ->
              match Machine.find_description t.mach desc_id with
              | Some d -> ignore (checkpoint_desc t d)
              | None -> ())
            m.Socket.ctl_fds)
        (Socket.recv_buffered sock @ Socket.send_buffered sock))
    ~serialize:(fun () ->
  let buffered_kib = (Socket.buffered_bytes sock + 1023) / 1024 in
  charge t
    (Cost.obj_serialize_base + socket_extra
    + (buffered_kib * Cost.socket_buffer_scan_per_kib));
  let msg_image (m : Socket.msg) =
    {
      Serial.i_msg_data = m.Socket.data;
      i_ctl_oids =
        List.filter_map
          (fun desc_id ->
            match Machine.find_description t.mach desc_id with
            | Some d -> Some (checkpoint_desc t d)
            | None -> None)
          m.Socket.ctl_fds;
    }
  in
  let tcp, snd, rcv =
    match Socket.tcp_state sock with
    | Socket.Tcp_closed -> (0, 0, 0)
    | Socket.Tcp_listening -> (1, 0, 0)
    | Socket.Tcp_established e -> (2, e.snd_seq, e.rcv_seq)
  in
  let peer_oid =
    match Socket.peer sock with
    | None -> 0
    | Some p -> sub_oid t "socket" (Socket.id p)
  in
  ( Serial.kind_socket,
    Serial.socket_to_string
      {
        Serial.i_domain =
          (match Socket.domain sock with Socket.Inet -> 0 | Socket.Unix_dom -> 1);
        i_proto = (match Socket.proto sock with Socket.Udp -> 0 | Socket.Tcp -> 1);
        i_laddr = addr_image (Socket.local_addr sock);
        i_raddr = addr_image (Socket.remote_addr sock);
        i_opts = Socket.options sock;
        i_tcp = tcp;
        i_snd_seq = snd;
        i_rcv_seq = rcv;
        i_peer_oid = peer_oid;
        (* Listening sockets omit the accept queue (clients retry the
           SYN): nothing of the queue is serialized. *)
        i_recvq = List.map msg_image (Socket.recv_buffered sock);
        i_sendq = List.map msg_image (Socket.send_buffered sock);
      } ));
  oid

and checkpoint_shm t shm =
  spec_register t ~kind:Genlog.kind_shm ~id:(Shm.id shm) (fun () ->
      ignore (checkpoint_shm t shm));
  let oid = sub_oid t "shm" (Shm.id shm) in
  ckpt_obj t ~oid ~gen:(Shm.generation shm)
    ~children:(fun () ->
      (* The backing rotates shadows every checkpoint (stable store oid):
         its memrec must exist for the mark phase even when the segment's
         own image is clean. *)
      ignore (ensure_memrec t (Shm.backing shm)))
    ~serialize:(fun () ->
  (match Shm.kind shm with
  | Shm.Posix_shm _ -> charge t (Cost.obj_serialize_base + Cost.shm_shadow_setup + shm_posix_extra)
  | Shm.Sysv_shm _ ->
      charge t
        (Cost.obj_serialize_base + Cost.shm_shadow_setup + shm_posix_extra
        + Cost.sysv_namespace_scan));
  let backing = ensure_memrec t (Shm.backing shm) in
  ( Serial.kind_shm,
    Serial.shm_to_string
      {
        Serial.i_shm_kind =
          (match Shm.kind shm with
          | Shm.Posix_shm name -> Either.Left name
          | Shm.Sysv_shm key -> Either.Right key);
        i_npages = Shm.npages shm;
        i_backing_oid = backing.mo_oid;
      } ));
  oid

and checkpoint_vnode_ref t vn =
  (* Vnodes are referenced by inode number: no path lookups in the stop
     window (the Figure 3 / section 5.2 optimization). *)
  charge t (Cost.obj_serialize_base + vnode_extra);
  match t.filesystem with
  | Some filesystem -> (
      match Fs.oid_of_inode filesystem (Vnode.inode vn) with
      | Some oid -> oid
      | None -> 0 (* flushed later in this same checkpoint by the FS *))
  | None -> 0

and checkpoint_desc t (d : Fdesc.t) =
  spec_register t ~kind:Genlog.kind_fdesc ~id:d.Fdesc.desc_id (fun () ->
      ignore (checkpoint_desc t d));
  let oid = desc_oid t d in
  ckpt_obj t ~oid ~gen:(Fdesc.generation d)
    ~children:(fun () ->
      (* A clean description can still point at a dirty object: descend. *)
      match d.Fdesc.kind with
      | Fdesc.Vnode_file _ | Fdesc.Device_fd _ -> ()
      | Fdesc.Pipe_read p | Fdesc.Pipe_write p -> ignore (checkpoint_pipe t p)
      | Fdesc.Socket_fd s -> ignore (checkpoint_socket t s)
      | Fdesc.Kqueue_fd k -> ignore (checkpoint_kqueue t k)
      | Fdesc.Pty_master_fd p | Fdesc.Pty_slave_fd p ->
          ignore (checkpoint_pty t p)
      | Fdesc.Shm_fd s -> ignore (checkpoint_shm t s))
    ~serialize:(fun () ->
      let kind_image =
        match d.Fdesc.kind with
        | Fdesc.Vnode_file { vn; offset; append } ->
            ignore (checkpoint_vnode_ref t vn);
            Serial.I_vnode { inode = Vnode.inode vn; offset; append }
        | Fdesc.Pipe_read p -> Serial.I_pipe_r (checkpoint_pipe t p)
        | Fdesc.Pipe_write p -> Serial.I_pipe_w (checkpoint_pipe t p)
        | Fdesc.Socket_fd s -> Serial.I_socket (checkpoint_socket t s)
        | Fdesc.Kqueue_fd k -> Serial.I_kqueue (checkpoint_kqueue t k)
        | Fdesc.Pty_master_fd p -> Serial.I_pty_m (checkpoint_pty t p)
        | Fdesc.Pty_slave_fd p -> Serial.I_pty_s (checkpoint_pty t p)
        | Fdesc.Shm_fd s -> Serial.I_shm (checkpoint_shm t s)
        | Fdesc.Device_fd name -> Serial.I_device name
      in
      ( Serial.kind_fdesc,
        Serial.fdesc_to_string
          { Serial.i_kind = kind_image; i_ext_sync = d.Fdesc.ext_sync } ));
  oid

let entry_image t (e : Vm_map.entry) =
  charge t Cost.vm_entry_serialize;
  let obj_oid =
    match Vm_object.kind e.Vm_map.obj with
    | Vm_object.Device_backed _ -> 0
    | Vm_object.Vnode_backed inode -> (
        match t.filesystem with
        | Some filesystem ->
            Option.value ~default:0 (Fs.oid_of_inode filesystem inode)
        | None -> 0)
    | Vm_object.Anonymous -> (ensure_memrec t e.Vm_map.obj).mo_oid
  in
  {
    Serial.i_start_vpn = e.Vm_map.start_vpn;
    i_npages = e.Vm_map.npages;
    i_read = e.Vm_map.prot.Vm_map.read;
    i_write = e.Vm_map.prot.Vm_map.write;
    i_exec = e.Vm_map.prot.Vm_map.exec;
    i_shared = e.Vm_map.shared;
    i_excluded = e.Vm_map.excluded;
    i_obj_oid = obj_oid;
    i_obj_pgoff = e.Vm_map.obj_pgoff;
  }

let proc_oid t (p : Process.t) =
  match Hashtbl.find_opt t.proc_oids p.Process.pid_local with
  | Some oid -> oid
  | None ->
      let oid = Store.alloc_oid t.st in
      Hashtbl.replace t.proc_oids p.Process.pid_local oid;
      oid

let checkpoint_proc t (p : Process.t) =
  let oid = proc_oid t p in
  (* The process image folds in thread CPU state and the vm layout, so the
     stamp compared is the composite one.  In-flight AIO reads are part of
     the image too, but every AIO transition touches the owner process. *)
  ckpt_obj t ~oid ~gen:(Process.effective_generation p)
    ~children:(fun () ->
      List.iter (fun (_, d) -> ignore (checkpoint_desc t d)) (Process.fds p);
      (* Anonymous mappings need their memrecs live for the mark phase even
         when the layout (and so the image) is unchanged. *)
      List.iter
        (fun (e : Vm_map.entry) ->
          if not e.Vm_map.excluded then
            match Vm_object.kind e.Vm_map.obj with
            | Vm_object.Anonymous -> ignore (ensure_memrec t e.Vm_map.obj)
            | Vm_object.Vnode_backed _ | Vm_object.Device_backed _ -> ())
        (Vm_map.entries (Vm_space.map p.Process.space)))
    ~serialize:(fun () ->
      charge t Cost.proc_serialize;
      List.iter
        (fun _thr -> charge t (Cost.thread_serialize + Cost.cpu_state_copy))
        p.Process.threads;
      let fds =
        List.map (fun (slot, d) -> (slot, checkpoint_desc t d)) (Process.fds p)
      in
      let entries =
        List.filter_map
          (fun (e : Vm_map.entry) ->
            if e.Vm_map.excluded then None else Some (entry_image t e))
          (Vm_map.entries (Vm_space.map p.Process.space))
      in
      let ppid_local =
        match Machine.proc t.mach p.Process.ppid with
        | Some parent -> parent.Process.pid_local
        | None -> 0
      in
      let aio_reads =
        List.filter_map
          (fun (a : Aurora_kern.Aio.t) ->
            match a.Aurora_kern.Aio.aio_op with
            | Aurora_kern.Aio.Aio_read ->
                Some (a.Aurora_kern.Aio.aio_slot, a.Aurora_kern.Aio.aio_off, a.Aurora_kern.Aio.aio_len)
            | Aurora_kern.Aio.Aio_write -> None)
          (Aurora_kern.Syscall.aio_pending t.mach p)
      in
      let image =
        {
          Serial.i_pid_local = p.Process.pid_local;
          i_ppid_local = ppid_local;
          i_pgid = p.Process.pgid;
          i_sid = p.Process.sid;
          i_name = p.Process.name;
          i_ephemeral = p.Process.ephemeral;
          i_cwd = p.Process.cwd;
          i_threads = List.map Serial.image_of_thread p.Process.threads;
          i_fds = fds;
          i_entries = entries;
          i_proc_pending = p.Process.pending_signals;
          i_aio_reads = aio_reads;
        }
      in
      (Serial.kind_proc, Serial.proc_to_string image));
  oid

(* System shadowing ------------------------------------------------------------- *)

(* Re-point every object that shadowed [old_parent] (fork children created
   since the last checkpoint) at [survivor]. *)
let repoint_children t ~old_parent ~survivor =
  let fix obj =
    match Vm_object.parent obj with
    | Some p when p == old_parent -> Vm_object.set_parent obj (Some survivor)
    | Some _ | None -> ()
  in
  Hashtbl.iter
    (fun _ r ->
      fix r.logical;
      fix r.top;
      match r.frozen with Some f -> fix f | None -> ())
    t.memrecs

(* Collapse the flushed frozen shadow of [r] into its parent. *)
let collapse_frozen t r =
  match r.frozen with
  | None -> ()
  | Some f when f == r.logical ->
      (* First epoch: the logical object itself was "frozen" for the full
         flush; nothing to merge. *)
      r.frozen <- None
  | Some f ->
      let survivor =
        Vm_object.collapse ~clock:(clock t) ~direction:Vm_object.Aurora_reverse f
      in
      repoint_children t ~old_parent:f ~survivor;
      (* An inactive chain was frozen in place (top == frozen): the
         survivor takes over as the resting top. *)
      if r.top == f then begin
        Hashtbl.remove t.top_index (Vm_object.id f);
        Hashtbl.replace t.top_index (Vm_object.id survivor) r;
        r.top <- survivor
      end;
      r.frozen <- None

(* Interpose a fresh shadow above [r.top]; all spaces in the group that map
   the old top are re-pointed, dirty PTEs are downgraded (charged), and
   shm backmaps swing to the new shadow. *)
let interpose_shadow t spaces r =
  let old_top = r.top in
  let fresh = Vm_object.shadow ~clock:(clock t) old_top in
  List.iter
    (fun space -> ignore (Vm_space.replace_object space ~old_obj:old_top ~new_obj:fresh))
    spaces;
  Hashtbl.iter
    (fun _ shm ->
      if Shm.backing shm == old_top then Shm.set_backing shm fresh)
    t.mach.Machine.posix_shm;
  Hashtbl.iter
    (fun _ shm ->
      if Shm.backing shm == old_top then Shm.set_backing shm fresh)
    t.mach.Machine.sysv_shm;
  Hashtbl.remove t.top_index (Vm_object.id old_top);
  Hashtbl.replace t.top_index (Vm_object.id fresh) r;
  r.frozen <- Some old_top;
  r.top <- fresh

(* Flush ---------------------------------------------------------------------------- *)

let flush_frozen t r =
  match r.frozen with
  | None -> 0
  | Some _ when Hashtbl.mem t.spec_pages r.mo_oid ->
      (* Speculatively harvested: the staged image already holds every
         local page of the frozen shadow (harvest + conflict splices);
         staging it again would only repeat identical put_pages. *)
      Hashtbl.length (Hashtbl.find t.spec_pages r.mo_oid)
  | Some f ->
      let pages = ref [] in
      Vm_object.iter_local f (fun idx page ->
          pages := (idx, Page.blit_payload page) :: !pages);
      if not r.ever_flushed then begin
        (* First flush of this object: the logical base has never been
           written out (e.g. a memory-only checkpoint rotated the shadow
           before any persisted one ran), so include its pages too —
           frozen-shadow versions win. *)
        if f != r.logical then
          Vm_object.iter_local r.logical (fun idx page ->
              if Vm_object.find_local f idx = None then
                pages := (idx, Page.blit_payload page) :: !pages);
        put_obj t ~oid:r.mo_oid ~kind:Serial.kind_memobj
          ~meta:
            (Serial.memobj_to_string
               { Serial.i_parent_oid = r.parent_oid; i_anon = true });
        r.ever_flushed <- true;
        put_pgs t ~oid:r.mo_oid !pages
      end
      else if !pages <> [] then put_pgs t ~oid:r.mo_oid !pages;
      List.length !pages

(* Read-only ancestors (fork backings, memrecs not under any entry) flush
   once: all their resident pages. *)
let flush_static t r =
  if (not r.ever_flushed) && r.frozen = None then begin
    let pages = ref [] in
    Vm_object.iter_local r.logical (fun idx page ->
        pages := (idx, Page.blit_payload page) :: !pages);
    put_pgs t ~oid:r.mo_oid !pages;
    put_obj t ~oid:r.mo_oid ~kind:Serial.kind_memobj
      ~meta:
        (Serial.memobj_to_string { Serial.i_parent_oid = r.parent_oid; i_anon = true });
    r.ever_flushed <- true;
    List.length !pages
  end
  else 0

(* The memrecs to shadow this cycle: every object currently mapped by a
   member space, deduplicated by store oid with an int-keyed table (shared
   objects appear once per mapping space; no polymorphic compares on the
   stop path).  Anonymous objects get their memrec created here if the
   OS-state pass skipped their owning process before it ever serialized
   them. *)
let mark_targets t spaces =
  let seen_oids = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (fun space ->
      List.iter
        (fun obj ->
          (* [unique_objects] yields only shadowable objects (writable,
             anonymous, non-excluded), so each deserves a memrec even if
             the OS-state pass never serialized its owning process. *)
          let r = ensure_memrec t obj in
          if not (Hashtbl.mem seen_oids r.mo_oid) then begin
            Hashtbl.replace seen_oids r.mo_oid ();
            out := r :: !out
          end)
        (Vm_space.unique_objects space))
    spaces;
  List.rev !out

(* The checkpoint cycle --------------------------------------------------------------- *)

let live_members t =
  List.filter (fun p -> p.Process.proc_state = Process.Alive) (members t)

let persistent_members t =
  List.filter (fun p -> not p.Process.ephemeral) (live_members t)

(* Harvest the MMU dirty bits of file-backed mappings into the vnodes'
   dirty sets: stores through memory persist exactly like write(2)s
   (files and memory are one in the object store, section 5.2). *)
let harvest_file_dirty t procs =
  match t.filesystem with
  | None -> ()
  | Some filesystem ->
      List.iter
        (fun p ->
          let space = p.Process.space in
          List.iter
            (fun (e : Vm_map.entry) ->
              match Vm_object.kind e.Vm_map.obj with
              | Vm_object.Vnode_backed inode -> (
                  match Fs.vnode_by_inode filesystem inode with
                  | Some vn ->
                      Pmap.iter (Vm_space.pmap space) (fun vpn pte ->
                          if
                            pte.Pmap.dirty
                            && vpn >= e.Vm_map.start_vpn
                            && vpn < e.Vm_map.start_vpn + e.Vm_map.npages
                          then begin
                            Vnode.mark_dirty vn
                              (vpn - e.Vm_map.start_vpn + e.Vm_map.obj_pgoff);
                            pte.Pmap.dirty <- false
                          end)
                  | None -> ())
              | Vm_object.Anonymous | Vm_object.Device_backed _ -> ())
            (Vm_map.entries (Vm_space.map space)))
        procs

(* The group object references the members' process images; staged every
   flushed cycle (no generation stamp: it is tiny and always current). *)
let stage_group_obj t ~proc_oids =
  let ephemeral_parents =
    List.filter_map
      (fun p ->
        if p.Process.ephemeral then
          match Machine.proc t.mach p.Process.ppid with
          | Some parent -> Some parent.Process.pid_local
          | None -> None
        else None)
      (live_members t)
    |> List.sort_uniq compare
  in
  put_obj t ~oid:t.grp_oid ~kind:Serial.kind_group
    ~meta:
      (Serial.group_to_string
         {
           Serial.i_proc_oids = proc_oids;
           i_period = t.period;
           i_ext_sync_on = t.ext_sync;
           i_name_ckpts = t.named;
           i_ephemeral_parents = ephemeral_parents;
         })

(* The OS-state serialize pass, shared between the stop-the-world path
   and the speculation phase.  [fs] gates the file-backed work (vnode
   dirty-bit harvest plus FS staging): the speculative pass runs with
   [~fs:false] because file state must be captured at the stop, not
   mid-execution.  [group_obj] likewise gates the group-object staging,
   which the validation window redoes from stop-time membership. *)
let serialize_os t procs ~flush ~fs ~group_obj =
  if fs then begin
    harvest_file_dirty t procs;
    match t.filesystem with
    | Some filesystem when flush -> Fs.flush_to_store filesystem
    | Some _ | None -> ()
  end;
  let proc_oids = List.map (fun p -> checkpoint_proc t p) procs in
  (* Shared-memory segments live in global namespaces, not fd tables: the
     System V namespace is scanned every checkpoint (its Table 4 cost),
     and named POSIX segments are persisted even when no descriptor is
     currently open. *)
  Hashtbl.iter (fun _ shm -> ignore (checkpoint_shm t shm)) t.mach.Machine.sysv_shm;
  Hashtbl.iter (fun _ shm -> ignore (checkpoint_shm t shm)) t.mach.Machine.posix_shm;
  if group_obj && flush then stage_group_obj t ~proc_oids;
  proc_oids

(* Speculative soft-quiesce ---------------------------------------------------

   The expensive OS-object serialize runs on a spare core while the
   workload keeps executing in concurrency windows; generation stamps,
   the Genlog mutation log and the pmap's speculative dirty-bit plane
   record what changed underneath it.  Pre-stop refinement rounds chase
   the conflict set down while still soft; the short validation pass
   inside the stop window then re-copies only what moved since and
   splices it over the staged image (the store's staging layer replaces
   rows in place, so the newest copy wins). *)

let spec_max_rounds = 4
let spec_converged = 2 (* refine again only above this many conflicts *)

(* Harvest every local page of an ever-flushed memrec's writable top into
   the staged image.  Never-flushed memrecs keep the normal first-flush
   path: their base-merge logic stays in [flush_frozen]. *)
let spec_harvest_memrec t r =
  if r.ever_flushed then begin
    let set = Hashtbl.create 32 in
    let pages = ref [] in
    Vm_object.iter_local r.top (fun idx page ->
        Hashtbl.replace set idx ();
        pages := (idx, Page.blit_payload page) :: !pages);
    if !pages <> [] then put_pgs t ~oid:r.mo_oid !pages;
    Hashtbl.replace t.spec_pages r.mo_oid set
  end

(* Drain the speculative dirty plane and re-stage the conflict pages.
   Only sound while the address-space structure is unchanged; after a
   fork or unmap the caller discards the speculative staging instead
   ([flush_frozen]'s normal path then rewrites every row with stop-time
   content). *)
let spec_splice_pages t spaces =
  let count = ref 0 in
  List.iter
    (fun space ->
      List.iter
        (fun vpn ->
          match Vm_map.find (Vm_space.map space) vpn with
          | Some e when not e.Vm_map.excluded -> (
              match memrec_of_top t e.Vm_map.obj with
              | Some r when Hashtbl.mem t.spec_pages r.mo_oid -> (
                  let idx = vpn - e.Vm_map.start_vpn + e.Vm_map.obj_pgoff in
                  match Vm_object.find_local e.Vm_map.obj idx with
                  | Some page ->
                      charge t Cost.page_copy;
                      put_pgs t ~oid:r.mo_oid [ (idx, Page.blit_payload page) ];
                      Hashtbl.replace (Hashtbl.find t.spec_pages r.mo_oid) idx ();
                      incr count
                  | None -> ())
              | Some _ | None -> ())
          | Some _ | None -> ())
        (Vm_space.spec_drain space))
    spaces;
  t.c_conflict_pages <- t.c_conflict_pages + !count;
  !count

(* One conflict-chasing round over the OS objects: processes whose
   composite stamp moved since their last visit, the logged kernel-object
   mutations, and shared-memory segments created mid-window (they have no
   thunk and may have no open descriptor).  Work is proportional to the
   mutation count, not the object count — clean objects cost one
   dirty-check for procs and nothing at all otherwise. *)
let spec_refine_round t procs =
  Hashtbl.reset t.seen;
  let s0 = t.c_serialized in
  List.iter
    (fun p ->
      let g = Process.effective_generation p in
      if Hashtbl.find_opt t.spec_proc_snap p.Process.pid_global <> Some g then begin
        ignore (checkpoint_proc t p);
        Hashtbl.replace t.spec_proc_snap p.Process.pid_global g
      end
      else charge t Cost.ckpt_dirty_check)
    procs;
  List.iter
    (fun key ->
      match Hashtbl.find_opt t.spec_thunks key with
      | Some thunk -> thunk ()
      | None -> ())
    (Genlog.drain ());
  let scan _ shm =
    if not (Hashtbl.mem t.spec_thunks (Genlog.kind_shm, Shm.id shm)) then
      ignore (checkpoint_shm t shm)
  in
  Hashtbl.iter scan t.mach.Machine.sysv_shm;
  Hashtbl.iter scan t.mach.Machine.posix_shm;
  t.c_serialized - s0

(* The soft window: serialize and harvest concurrently with execution,
   then refine until the conflict set converges (or give up and let the
   stop window drain the rest). *)
let speculate t procs spaces =
  List.iter Vm_space.spec_begin spaces;
  Hashtbl.reset t.spec_thunks;
  Hashtbl.reset t.spec_proc_snap;
  Genlog.arm ();
  t.spec_phase <- true;
  t.spec_busy_ns <- 0;
  t.spec_last_yield <- Clock.now (clock t);
  List.iter
    (fun p ->
      Hashtbl.replace t.spec_proc_snap p.Process.pid_global
        (Process.effective_generation p))
    procs;
  Otrace.with_span ~cat:"ckpt" ~name:"speculate.serialize" (fun () ->
      ignore (serialize_os t procs ~flush:t.persist ~fs:false ~group_obj:false : int list);
      spec_account t);
  Otrace.with_span ~cat:"ckpt" ~name:"speculate.harvest" (fun () ->
      List.iter
        (fun r ->
          spec_harvest_memrec t r;
          spec_maybe_yield t)
        (mark_targets t spaces);
      spec_account t);
  t.c_spec_base <- t.c_serialized;
  t.c_conflict_pages <- 0;
  let rec refine round =
    if round < spec_max_rounds then begin
      let conflicts =
        Otrace.with_span ~cat:"ckpt" ~name:"speculate.round" (fun () ->
            let objs = spec_refine_round t procs in
            let pgs =
              if List.exists Vm_space.spec_structural spaces then 0
              else spec_splice_pages t spaces
            in
            spec_account t;
            objs + pgs)
      in
      if conflicts > spec_converged then refine (round + 1)
    end
  in
  refine 0;
  t.spec_phase <- false

(* The validation pass, inside the stop window: capture file-backed state
   (never speculated), drain the last conflicts, splice the final page
   set, and restage the group object from stop-time membership.  On a
   structural change (fork/unmap mid-window) the speculative page staging
   is discarded wholesale: the normal flush path rewrites every row from
   the frozen shadows with stop-time content, exactly as stop-the-world
   would have. *)
let spec_validate t procs spaces =
  harvest_file_dirty t procs;
  (match t.filesystem with
  | Some filesystem when t.persist -> Fs.flush_to_store filesystem
  | Some _ | None -> ());
  ignore (spec_refine_round t procs : int);
  if List.exists Vm_space.spec_structural spaces then
    Hashtbl.reset t.spec_pages
  else ignore (spec_splice_pages t spaces : int);
  if t.persist then stage_group_obj t ~proc_oids:(List.map (proc_oid t) procs);
  List.iter Vm_space.spec_end spaces;
  Genlog.disarm ()

let checkpoint_common t ~flush ~full ~speculative =
  let clk = clock t in
  (* The previous checkpoint must be durable before we start another
     (section 7: "Aurora waits for a checkpoint to fully persist before
     initiating another one"). *)
  if flush then Store.wait_durable t.st;
  t.persist <- flush;
  t.full_cycle <- full;
  t.c_serialized <- 0;
  t.c_skipped <- 0;
  t.c_meta_bytes <- 0;
  t.c_spec_base <- 0;
  t.c_conflict_pages <- 0;
  Hashtbl.reset t.seen;
  Hashtbl.reset t.spec_pages;
  (* Speculation needs generation stamps to carry meaning (incremental)
     and a staged image to splice over (flushed). *)
  let spec = speculative && flush && not full in
  let epoch = if flush then Store.begin_checkpoint t.st else Store.last_complete_epoch t.st in
  (* The epoch span covers the synchronous work of the cycle: the
     speculation window (phase 0, concurrent with execution), the stop
     window (phases 1-5) and the flush submission (phase 6).  Every
     clock advance below happens inside one of the phase sub-spans, so
     the children's virtual durations sum exactly to the epoch's. *)
  Otrace.with_span ~cat:"ckpt" ~name:"epoch"
    ~args:[ ("epoch", Otrace.Int epoch); ("flush", Otrace.Int (Bool.to_int flush)) ]
  @@ fun () ->
  (* 0. Speculate: soft serialize + harvest, concurrently with execution. *)
  let spec_t0 = Clock.now clk in
  if spec then begin
    let procs = persistent_members t in
    let spaces = List.map (fun p -> p.Process.space) procs in
    Otrace.with_span ~cat:"ckpt" ~name:"speculate" (fun () ->
        speculate t procs spaces)
  end;
  let speculate_ns = Clock.elapsed_since clk spec_t0 in
  (* Membership is re-read at the stop: the soft window may have forked
     or exited processes while the workload ran. *)
  let procs = persistent_members t in
  let spaces = List.map (fun p -> p.Process.space) procs in
  let stop_begin = Clock.now clk in
  (* 1. Quiesce. *)
  let quiesce_begin = Clock.now clk in
  Otrace.with_span ~cat:"ckpt" ~name:"quiesce" (fun () ->
      Machine.quiesce t.mach procs;
      charge t Cost.orchestrator_barrier);
  let quiesce_ns = Clock.elapsed_since clk quiesce_begin in
  (* 2. Collapse the flushed shadows of the previous epoch. *)
  Otrace.with_span ~cat:"ckpt" ~name:"collapse" (fun () ->
      Hashtbl.iter (fun _ r -> collapse_frozen t r) t.memrecs);
  (* 3. Serialize OS state (each POSIX object into its own store object),
     or — under speculation — validate the staged image against what
     moved during the soft window. *)
  let os_begin = Clock.now clk in
  if spec then
    Otrace.with_span ~cat:"ckpt" ~name:"validate" (fun () ->
        spec_validate t procs spaces)
  else
    ignore
      (Otrace.with_span ~cat:"ckpt" ~name:"serialize" (fun () ->
           serialize_os t procs ~flush ~fs:true ~group_obj:true)
        : int list);
  let os_ns = Clock.elapsed_since clk os_begin in
  let validate_ns = if spec then os_ns else 0 in
  (* 4. System shadowing: freeze the dirty sets, one shadow per writable
     object across the whole group. *)
  let mark_begin = Clock.now clk in
  Otrace.with_span ~cat:"ckpt" ~name:"shadow" (fun () ->
      let to_shadow = mark_targets t spaces in
      List.iter (fun r -> interpose_shadow t spaces r) to_shadow;
      (* Chains no mapping writes anymore (e.g. a shadow that became a fork
         backing mid-epoch) still hold unflushed dirty pages: freeze their
         immutable top in place so the flush below persists it.  Every active
         object was just interposed (frozen set), so what remains with a bare
         shadow top is exactly the inactive set. *)
      Hashtbl.iter
        (fun _ r ->
          if r.frozen = None && r.top != r.logical then r.frozen <- Some r.top)
        t.memrecs;
      charge t Cost.tlb_shootdown;
      charge t Cost.async_flush_setup);
  let mark_ns = Clock.elapsed_since clk mark_begin in
  (* 5. Resume: end of the stop window. *)
  Otrace.with_span ~cat:"ckpt" ~name:"resume" (fun () ->
      Machine.resume t.mach procs);
  let stop_ns = Clock.elapsed_since clk stop_begin in
  (* 6. Flush concurrently with execution. *)
  let flush_begin = Clock.now clk in
  let pages_flushed =
    if flush then begin
      Otrace.with_span ~cat:"ckpt" ~name:"flush" @@ fun () ->
      let frozen_pages =
        Otrace.with_span ~cat:"ckpt" ~name:"flush.frozen" (fun () ->
            Hashtbl.fold (fun _ r acc -> acc + flush_frozen t r) t.memrecs 0)
      in
      let static_pages =
        Otrace.with_span ~cat:"ckpt" ~name:"flush.static" (fun () ->
            Hashtbl.fold (fun _ r acc -> acc + flush_static t r) t.memrecs 0)
      in
      Otrace.with_span ~cat:"ckpt" ~name:"manifest" (fun () ->
          stage_manifest t ~epoch);
      charge t Cost.ckpt_record_write;
      Otrace.with_span ~cat:"ckpt" ~name:"commit" (fun () ->
          ignore (Store.commit_checkpoint t.st));
      t.last_epoch_committed <- epoch;
      frozen_pages + static_pages
    end
    else 0
  in
  let flush_ns = Clock.elapsed_since clk flush_begin in
  (* In-flight asynchronous writes belong to this checkpoint: it is not
     complete until they are incorporated (section 5.3).  The per-pid AIO
     index makes this a walk over the members' own requests instead of a
     scan of the machine-wide table. *)
  let aio_write_done =
    List.fold_left
      (fun acc pid ->
        List.fold_left
          (fun acc (a : Aurora_kern.Aio.t) ->
            if a.Aurora_kern.Aio.aio_op = Aurora_kern.Aio.Aio_write then
              max acc a.Aurora_kern.Aio.done_at
            else acc)
          acc
          (Machine.aios_of_pid t.mach pid))
      0 t.member_pids
  in
  t.persist <- true;
  t.last_ckpt_time <- Clock.now clk;
  let durable_at =
    if flush then max (Store.durable_at t.st) aio_write_done else Clock.now clk
  in
  (* Under speculation the serialize CPU ran on the spare core: report
     its busy time, not the (tiny) validate elapsed. *)
  let serialize_ns = if spec then t.spec_busy_ns else os_ns in
  if Ometrics.is_enabled () then begin
    Ometrics.incr m_ckpt_epochs;
    Ometrics.incr ~by:t.c_serialized m_ckpt_objects;
    Ometrics.incr ~by:t.c_skipped m_ckpt_skipped;
    Ometrics.incr ~by:t.c_meta_bytes m_ckpt_meta_bytes;
    Ometrics.incr ~by:pages_flushed m_ckpt_pages;
    Ometrics.observe_ns h_ckpt_stop stop_ns;
    Ometrics.observe_ns h_ckpt_quiesce quiesce_ns;
    Ometrics.observe_ns h_ckpt_serialize serialize_ns;
    Ometrics.observe_ns h_ckpt_shadow mark_ns;
    Ometrics.observe_ns h_ckpt_flush flush_ns;
    if spec then begin
      Ometrics.observe_ns h_ckpt_speculate speculate_ns;
      Ometrics.observe_ns h_ckpt_validate validate_ns
    end;
    Ometrics.observe_ns h_ckpt_durable_lag
      (Stdlib.max 0 (durable_at - Clock.now clk))
  end;
  {
    stop_ns;
    quiesce_ns;
    os_serialize_ns = serialize_ns;
    mem_mark_ns = mark_ns;
    flush_ns;
    pages_flushed;
    pages_serialized =
      (if flush then
         let f = Store.flush_stats t.st in
         f.fs_pages - f.fs_pages_deduped
       else 0);
    pages_deduped = (if flush then (Store.flush_stats t.st).fs_pages_deduped else 0);
    bytes_written = (if flush then (Store.flush_stats t.st).fs_bytes_written else 0);
    epoch;
    durable_at;
    flush = (if flush then Some (Store.flush_stats t.st) else None);
    objects_serialized = t.c_serialized;
    objects_skipped = t.c_skipped;
    meta_bytes_written = t.c_meta_bytes;
    speculate_ns;
    validate_ns;
    conflict_objects = (if spec then t.c_serialized - t.c_spec_base else 0);
    conflict_pages = t.c_conflict_pages;
  }

(* After a restore, entries point directly at the restored logical
   objects.  Interpose clean shadows so that post-restore writes are
   tracked and the next checkpoint stays incremental. *)
let prepare_after_restore t =
  let spaces = List.map (fun p -> p.Process.space) (persistent_members t) in
  let to_shadow = mark_targets t spaces in
  List.iter
    (fun r ->
      interpose_shadow t spaces r;
      (* The "frozen" old top is the fully-flushed restored object: there
         is nothing to write for it. *)
      r.frozen <- None)
    to_shadow

let checkpoint_region t (entry : Vm_map.entry) =
  let clk = clock t in
  Store.wait_durable t.st;
  Hashtbl.reset t.seen;
  t.persist <- true;
  let epoch = Store.begin_checkpoint t.st in
  let stop_begin = Clock.now clk in
  Otrace.with_span ~cat:"ckpt" ~name:"region" ~args:[ ("epoch", Otrace.Int epoch) ]
  @@ fun () ->
  charge t Cost.syscall_overhead;
  let r = ensure_memrec t entry.Vm_map.obj in
  collapse_frozen t r;
  let spaces = List.map (fun p -> p.Process.space) (persistent_members t) in
  interpose_shadow t spaces r;
  charge t Cost.async_flush_setup;
  let mark_ns = Clock.elapsed_since clk stop_begin in
  let pages = flush_frozen t r in
  stage_manifest t ~epoch;
  charge t Cost.ckpt_record_write;
  ignore (Store.commit_checkpoint t.st);
  t.last_epoch_committed <- epoch;
  let stop_ns = Clock.elapsed_since clk stop_begin in
  {
    stop_ns;
    quiesce_ns = 0;
    os_serialize_ns = 0;
    mem_mark_ns = mark_ns;
    flush_ns = stop_ns - mark_ns;
    pages_flushed = pages;
    pages_serialized =
      (let f = Store.flush_stats t.st in
       f.fs_pages - f.fs_pages_deduped);
    pages_deduped = (Store.flush_stats t.st).fs_pages_deduped;
    bytes_written = (Store.flush_stats t.st).fs_bytes_written;
    epoch;
    durable_at = Store.durable_at t.st;
    flush = Some (Store.flush_stats t.st);
    objects_serialized = 0;
    objects_skipped = 0;
    meta_bytes_written = 0;
    speculate_ns = 0;
    validate_ns = 0;
    conflict_objects = 0;
    conflict_pages = 0;
  }

(* Memory overcommitment: the unified zero-copy swap path. ------------------ *)

let pager_for t oid =
  fun idx ->
    let epoch = Store.last_complete_epoch t.st in
    if epoch = 0 then None else Store.read_page t.st ~epoch ~oid ~idx

let install_pagers t =
  Hashtbl.iter
    (fun _ r ->
      if r.ever_flushed then Vm_object.set_pager r.logical (Some (pager_for t r.mo_oid)))
    t.memrecs

let evict_clean_pages t ~target =
  (* Only durably checkpointed pages are clean. *)
  Store.wait_durable t.st;
  install_pagers t;
  (* madvise hints: regions marked evict-first are preferred victims. *)
  let preferred = Hashtbl.create 16 in
  List.iter
    (fun p ->
      List.iter
        (fun (e : Vm_map.entry) ->
          if e.Vm_map.evict_first then
            match memrec_of_top t e.Vm_map.obj with
            | Some r -> Hashtbl.replace preferred r.mo_oid ()
            | None -> ())
        (Vm_map.entries (Vm_space.map p.Process.space)))
    (persistent_members t);
  let evicted = ref 0 in
  let evict_from r =
    if r.ever_flushed && !evicted < target then begin
      (* Pages resident in the logical object sit below the current top
         shadow: their content is exactly what the last complete
         checkpoint holds. *)
      let victims = ref [] in
      Vm_object.iter_local r.logical (fun idx _ ->
          if !evicted + List.length !victims < target then
            victims := idx :: !victims);
      List.iter (fun idx -> Vm_object.remove_page r.logical idx) !victims;
      evicted := !evicted + List.length !victims
    end
  in
  Hashtbl.iter (fun _ r -> if Hashtbl.mem preferred r.mo_oid then evict_from r) t.memrecs;
  Hashtbl.iter
    (fun _ r -> if not (Hashtbl.mem preferred r.mo_oid) then evict_from r)
    t.memrecs;
  !evicted

let resident_group_pages t =
  List.fold_left
    (fun acc p -> acc + Vm_space.resident_pages p.Process.space)
    0 (persistent_members t)

let checkpoint ?(wait_durable = false) ?(full = false) ?speculative t =
  let speculative =
    match speculative with Some v -> v | None -> t.speculative
  in
  let stats = checkpoint_common t ~flush:true ~full ~speculative in
  if wait_durable then Store.wait_durable t.st;
  stats

let checkpoint_mem_only t =
  checkpoint_common t ~flush:false ~full:false ~speculative:false

let suspend t =
  let stats = checkpoint ~wait_durable:true t in
  List.iter
    (fun p -> Machine.remove_proc t.mach p.Process.pid_global)
    (live_members t);
  stats.epoch

let run_for t duration =
  let clk = clock t in
  let deadline = Clock.now clk + duration in
  let rec loop () =
    let next = t.last_ckpt_time + t.period in
    if next <= deadline then begin
      Clock.advance_to clk next;
      ignore (checkpoint t);
      loop ()
    end
    else Clock.advance_to clk deadline
  in
  loop ()
