(* Pure in-OCaml reference model of the object store's durable contents.

   The model applies the same ops the runner feeds the real store and
   renders its state in the same canonical form Torture.observe extracts
   from a recovered store, so "recovered store == some model snapshot" is
   a byte-equality check.  Committed epochs are frozen as render chunks at
   commit time — the store's epochs are immutable after commit, so their
   canonical form never changes either. *)

type live = {
  mutable l_kind : string;
  mutable l_meta : string;
  l_pages : (int, string) Hashtbl.t; (* page index -> payload *)
}

type mjournal = {
  mj_id : int;
  mj_capacity : int;
  mutable mj_head : int;
  mutable mj_records : string list; (* newest first *)
}

type t = {
  live : (int, live) Hashtbl.t; (* oid -> newest committed version *)
  mutable epochs : (int * string) list; (* (epoch, frozen chunk), oldest first *)
  mutable next_epoch : int;
  mutable journals : mjournal list; (* ascending id *)
}

let create () =
  { live = Hashtbl.create 32; epochs = []; next_epoch = 0; journals = [] }

let escaped s = String.escaped s

let render_object oid l =
  let pages =
    Hashtbl.fold (fun idx payload acc -> (idx, payload) :: acc) l.l_pages []
    |> List.sort compare
    |> List.map (fun (idx, payload) -> Printf.sprintf "%d:%s" idx (escaped payload))
    |> String.concat ","
  in
  Printf.sprintf "O%d|%s|%s|%s;\n" oid l.l_kind (escaped l.l_meta) pages

let freeze_epoch t epoch =
  let objs =
    Hashtbl.fold (fun oid l acc -> (oid, l) :: acc) t.live []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "E%d\n" epoch);
  List.iter (fun (oid, l) -> Buffer.add_string b (render_object oid l)) objs;
  Buffer.contents b

let apply t (op : Workload.op) =
  match op with
  | Checkpoint objs ->
      t.next_epoch <- t.next_epoch + 1;
      (* Mirror staging: the last put_object for an oid wins wholesale,
         pages accumulate newest-wins across all of its entries. *)
      let staged = Hashtbl.create 8 in
      List.iter
        (fun (oid, kind, meta, pages) ->
          let kref, mref, ptbl =
            match Hashtbl.find_opt staged oid with
            | Some e -> e
            | None ->
                let e = (ref "", ref "", Hashtbl.create 8) in
                Hashtbl.replace staged oid e;
                e
          in
          kref := kind;
          mref := meta;
          List.iter
            (fun (idx, c) ->
              Hashtbl.replace ptbl idx (Bytes.to_string (Workload.page_payload c)))
            pages)
        objs;
      Hashtbl.iter
        (fun oid (kref, mref, ptbl) ->
          let l =
            match Hashtbl.find_opt t.live oid with
            | Some l -> l
            | None ->
                let l = { l_kind = "memory"; l_meta = ""; l_pages = Hashtbl.create 16 } in
                Hashtbl.replace t.live oid l;
                l
          in
          if !kref <> "" then l.l_kind <- !kref;
          if !mref <> "" then l.l_meta <- !mref;
          Hashtbl.iter (fun idx payload -> Hashtbl.replace l.l_pages idx payload) ptbl)
        staged;
      t.epochs <- t.epochs @ [ (t.next_epoch, freeze_epoch t t.next_epoch) ]
  | Prune keep ->
      let keep = max 1 keep in
      let n = List.length t.epochs in
      if n > keep then
        t.epochs <-
          (let rec drop i = function
             | l when i = 0 -> l
             | _ :: rest -> drop (i - 1) rest
             | [] -> []
           in
           drop (n - keep) t.epochs)
  | Journal_create size ->
      let id = List.length t.journals + 1 in
      t.journals <-
        t.journals
        @ [
            {
              mj_id = id;
              mj_capacity = Workload.journal_capacity_of_size size;
              mj_head = 0;
              mj_records = [];
            };
          ]
  | Journal_append (id, data) -> (
      match List.find_opt (fun j -> j.mj_id = id) t.journals with
      | Some j ->
          let len = Workload.journal_record_len data in
          if j.mj_head + len <= j.mj_capacity then begin
            j.mj_head <- j.mj_head + len;
            j.mj_records <- data :: j.mj_records
          end
      | None -> ())
  | Journal_truncate id -> (
      match List.find_opt (fun j -> j.mj_id = id) t.journals with
      | Some j ->
          j.mj_head <- 0;
          j.mj_records <- []
      | None -> ())
  | Wait | Advance _ -> ()

let render_journal j =
  Printf.sprintf "J%d|%s;\n" j.mj_id
    (String.concat "," (List.rev_map escaped j.mj_records))

(* Epoch and journal state render separately because they crash
   independently: checkpoint durability is asynchronous while journal
   appends are synchronous, so a crash can legitimately observe the
   journals of a later snapshot than the epochs. *)
let render_parts t =
  let eb = Buffer.create 1024 in
  List.iter (fun (_, chunk) -> Buffer.add_string eb chunk) t.epochs;
  let jb = Buffer.create 256 in
  List.iter (fun j -> Buffer.add_string jb (render_journal j)) t.journals;
  (Buffer.contents eb, Buffer.contents jb)

let render t =
  let e, j = render_parts t in
  e ^ j
