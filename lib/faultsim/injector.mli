(** Fault handlers for the block layer.

    Each constructor returns an {!Aurora_block.Fault.t} ready to install
    with [Striped.set_fault] (one handler shared by every member device,
    so submission indices are global, 1-based boundaries of the array). *)

val crash_at : index:int -> Aurora_block.Fault.t
(** Raise [Fault.Crash_point] when the [index]-th global device submission
    is about to be issued; neither it nor anything after it lands. *)

val counting : unit -> Aurora_block.Fault.t * (int, int) Hashtbl.t
(** Pass-through handler that records submission index -> acknowledged
    completion time (the crash-point enumerator's timeline). *)

type profile = {
  p_drop : float;
  p_torn : float;
  p_delay : float;
  max_delay_ns : int;
  p_read_fail : float;
  p_flip : float;
}

val no_faults : profile
val read_errors_profile : float -> profile
val write_loss_profile : float -> profile

val random : seed:int -> profile -> Aurora_block.Fault.t
(** PRNG-driven injector: every run with the same seed and profile makes
    identical decisions, so any failure reproduces from its seed. *)

val failing_reads : n:int -> Aurora_block.Fault.t
(** Fail the first [n] charged reads with [Fault.Io_error], then pass
    through — deterministic retry/backoff exercise. *)
