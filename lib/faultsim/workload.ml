module Clock = Aurora_sim.Clock
module Rng = Aurora_util.Rng
module Store = Aurora_objstore.Store

type op =
  | Checkpoint of (int * string * string * (int * char) list) list
  | Prune of int
  | Journal_create of int
  | Journal_append of int * string
  | Journal_truncate of int
  | Wait
  | Advance of int

let payload_size = 64
let page_payload c = Bytes.make payload_size c

(* Wire size of one journal record (tag u8 + gen u32 + length-prefixed
   string); the model mirrors the store's capacity check with it. *)
let journal_record_len data = 9 + String.length data

let journal_capacity_of_size size =
  let nblocks = max 1 ((size + Store.block_size - 1) / Store.block_size) in
  nblocks * Store.block_size

(* Printing: every op renders as a line that reads back as OCaml-ish
   construction syntax, so a failing qcheck case is a replayable script. *)

let op_to_string = function
  | Checkpoint objs ->
      let obj (oid, kind, meta, pages) =
        Printf.sprintf "(%d, %S, %S, [%s])" oid kind meta
          (String.concat "; "
             (List.map (fun (i, c) -> Printf.sprintf "(%d, %C)" i c) pages))
      in
      Printf.sprintf "Checkpoint [%s]" (String.concat "; " (List.map obj objs))
  | Prune keep -> Printf.sprintf "Prune %d" keep
  | Journal_create size -> Printf.sprintf "Journal_create %d" size
  | Journal_append (id, data) -> Printf.sprintf "Journal_append (%d, %S)" id data
  | Journal_truncate id -> Printf.sprintf "Journal_truncate %d" id
  | Wait -> "Wait"
  | Advance ns -> Printf.sprintf "Advance %d" ns

let ops_to_string ops =
  String.concat "\n" (List.mapi (fun i op -> Printf.sprintf "  %2d: %s" i (op_to_string op)) ops)

(* Running an op list against a real store ---------------------------------- *)

type runner = {
  store : Store.t;
  journals : (int, Store.journal) Hashtbl.t;
  mutable journal_heads : (int * int * int) list; (* id, head bytes, capacity *)
}

let runner store = { store; journals = Hashtbl.create 4; journal_heads = [] }

let journal_fits t id len =
  match List.find_opt (fun (i, _, _) -> i = id) t.journal_heads with
  | None -> false
  | Some (_, head, cap) -> head + len <= cap

let note_append t id len =
  t.journal_heads <-
    List.map
      (fun ((i, head, cap) as e) -> if i = id then (i, head + len, cap) else e)
      t.journal_heads

let run_op t op =
  match op with
  | Checkpoint objs ->
      ignore (Store.begin_checkpoint t.store);
      List.iter
        (fun (oid, kind, meta, pages) ->
          Store.reserve_oids t.store ~upto:oid;
          Store.put_object t.store ~oid ~kind ~meta;
          if pages <> [] then
            Store.put_pages t.store ~oid
              (List.map (fun (i, c) -> (i, page_payload c)) pages))
        objs;
      ignore (Store.commit_checkpoint t.store)
  | Prune keep -> ignore (Store.prune_history t.store ~keep:(max 1 keep))
  | Journal_create size ->
      let j = Store.journal_create t.store ~size in
      Hashtbl.replace t.journals (Store.journal_id j) j;
      t.journal_heads <-
        (Store.journal_id j, 0, journal_capacity_of_size size) :: t.journal_heads
  | Journal_append (id, data) -> (
      (* Appends that would overflow are skipped deterministically; the
         model applies the identical predicate. *)
      match Hashtbl.find_opt t.journals id with
      | Some j when journal_fits t id (journal_record_len data) ->
          Store.journal_append t.store j data;
          note_append t id (journal_record_len data)
      | Some _ | None -> ())
  | Journal_truncate id -> (
      match Hashtbl.find_opt t.journals id with
      | Some j ->
          Store.journal_truncate t.store j;
          t.journal_heads <-
            List.map
              (fun ((i, _, cap) as e) -> if i = id then (i, 0, cap) else e)
              t.journal_heads
      | None -> ())
  | Wait -> Store.wait_durable t.store
  | Advance ns -> Clock.advance (Store.clock t.store) ns

(* Random workloads ----------------------------------------------------------- *)

let gen_checkpoint rng ~max_oid ~max_pages =
  let nobjs = Rng.int_in rng 1 (max 1 (max_oid / 2)) in
  Checkpoint
    (List.init nobjs (fun _ ->
         let oid = Rng.int_in rng 1 max_oid in
         let npages = Rng.int_in rng 0 max_pages in
         let pages =
           List.init npages (fun _ ->
               (Rng.int_in rng 0 900, Char.chr (Rng.int_in rng 33 122)))
         in
         (oid, "memory", Printf.sprintf "m%d" (Rng.int_in rng 0 9999), pages)))

let gen_op rng ~max_oid ~max_pages =
  match Rng.int rng 10 with
  | 0 -> Prune (Rng.int_in rng 1 3)
  | 1 -> Journal_create ((1 + Rng.int rng 16) * 4096)
  | 2 | 3 -> Journal_append (Rng.int_in rng 1 3, Printf.sprintf "r%d" (Rng.int rng 100000))
  | 4 -> Journal_truncate (Rng.int_in rng 1 3)
  | 5 -> if Rng.bool rng then Wait else Advance (Rng.int_in rng 1_000 200_000)
  | _ -> gen_checkpoint rng ~max_oid ~max_pages

let gen_ops rng ~n ~max_oid ~max_pages =
  List.init n (fun _ -> gen_op rng ~max_oid ~max_pages)

(* Speculative-checkpoint arm: a soft-quiesce cycle stages every object
   speculatively while the workload keeps running, then the validator
   re-puts the conflict set over the staged image, relying on the store's
   newest-wins staging (last put_object wins wholesale, duplicate
   put_pages rows replace).  At the store level that is a checkpoint whose
   object list carries a stale prelude superseded row-by-row by the real
   content — so rewriting every Checkpoint op this way puts the exact
   splice mechanism under crash-point enumeration: recovery must land on
   a model snapshot, never a half-spliced blend of prelude and
   correction. *)
let speculative_arm ops =
  let stale_char c = Char.chr (33 + ((Char.code c + 7 - 33) mod 90)) in
  List.map
    (function
      | Checkpoint objs ->
          let prelude =
            List.map
              (fun (oid, kind, meta, pages) ->
                ( oid,
                  kind,
                  "spec:" ^ meta,
                  List.map (fun (i, c) -> (i, stale_char c)) pages ))
              objs
          in
          Checkpoint (prelude @ objs)
      | op -> op)
    ops

(* The acceptance-criteria workload: three checkpoints with cross-leaf
   page spreads, journal traffic, and a prune — replayed back-to-back with
   no waits, so the commit pipeline stays as deep as it ever gets. *)
let standard =
  let pages lo n step c =
    List.init n (fun i -> (lo + (i * step), Char.chr (Char.code c + (i mod 20))))
  in
  [
    Journal_create (64 * 1024);
    Checkpoint
      [
        (1, "memory", "proc-1", pages 0 40 7 'a');
        (2, "vnode", "file-2", pages 200 30 11 'A');
      ];
    Journal_append (1, "record-one");
    Checkpoint
      [
        (1, "memory", "proc-1b", pages 0 25 13 'g');
        (3, "memory", "proc-3", pages 500 35 9 'p');
      ];
    Journal_append (1, "record-two");
    Journal_append (1, "record-three");
    Checkpoint
      [ (2, "vnode", "file-2b", pages 240 20 17 'M'); (3, "memory", "", pages 510 15 23 'q') ];
    Prune 2;
    Journal_truncate 1;
    Journal_append (1, "post-truncate");
    Checkpoint [ (4, "memory", "wide", pages 0 40 101 'W') ];
    Journal_append (1, "record-four");
    Checkpoint
      [ (4, "memory", "wide2", pages 20 40 97 'X'); (5, "vnode", "tail", pages 1000 25 3 'Y') ];
    Checkpoint [ (1, "memory", "final", pages 3 12 31 'z') ];
    (* Second phase: with payloads packed into coalesced extents a
       checkpoint submits a handful of device writes, so boundary coverage
       needs operations, not pages.  These cycles mix exact repeats of
       earlier content (dedup hits: leaf references, no data write) with
       fresh content, plus a second journal, so the enumerator crashes
       inside dedup-heavy and dedup-free flushes alike. *)
    Journal_create (32 * 1024);
    Checkpoint
      [
        (* Byte-identical to epoch 1's object 1 pages: all dedup hits. *)
        (6, "memory", "twin", pages 0 40 7 'a');
        (7, "vnode", "fresh-7", pages 50 30 19 '0');
      ];
    Journal_append (2, "second-journal-one");
    Journal_append (1, "interleaved");
    Checkpoint
      [ (7, "vnode", "fresh-7b", pages 80 25 29 '5'); (6, "memory", "", pages 7 18 41 'k') ];
    Journal_append (2, "second-journal-two");
    Prune 3;
    Checkpoint
      [
        (8, "memory", "mixed", pages 0 30 7 'a');
        (* Repeats of object 5's tail plus new indices. *)
        (5, "vnode", "tail2", pages 1000 25 3 'Y');
      ];
    Journal_truncate 2;
    Journal_append (2, "post-truncate-two");
    Checkpoint [ (8, "memory", "mixed2", pages 60 22 13 'C') ];
    Journal_append (1, "record-five");
    Checkpoint [ (2, "vnode", "file-2c", pages 240 20 17 'M'); (9, "memory", "ninth", pages 2000 28 5 'e') ];
  ]
