module Clock = Aurora_sim.Clock
module Rng = Aurora_util.Rng
module Store = Aurora_objstore.Store
module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Syscall = Aurora_kern.Syscall
module Fdesc = Aurora_kern.Fdesc
module Pipe = Aurora_kern.Pipe
module Vm_space = Aurora_vm.Vm_space
module Page = Aurora_vm.Page

type op =
  | Checkpoint of (int * string * string * (int * char) list) list
  | Prune of int
  | Journal_create of int
  | Journal_append of int * string
  | Journal_truncate of int
  | Wait
  | Advance of int

let payload_size = 64
let page_payload c = Bytes.make payload_size c

(* Wire size of one journal record (tag u8 + gen u32 + length-prefixed
   string); the model mirrors the store's capacity check with it. *)
let journal_record_len data = 9 + String.length data

let journal_capacity_of_size size =
  let nblocks = max 1 ((size + Store.block_size - 1) / Store.block_size) in
  nblocks * Store.block_size

(* Printing: every op renders as a line that reads back as OCaml-ish
   construction syntax, so a failing qcheck case is a replayable script. *)

let op_to_string = function
  | Checkpoint objs ->
      let obj (oid, kind, meta, pages) =
        Printf.sprintf "(%d, %S, %S, [%s])" oid kind meta
          (String.concat "; "
             (List.map (fun (i, c) -> Printf.sprintf "(%d, %C)" i c) pages))
      in
      Printf.sprintf "Checkpoint [%s]" (String.concat "; " (List.map obj objs))
  | Prune keep -> Printf.sprintf "Prune %d" keep
  | Journal_create size -> Printf.sprintf "Journal_create %d" size
  | Journal_append (id, data) -> Printf.sprintf "Journal_append (%d, %S)" id data
  | Journal_truncate id -> Printf.sprintf "Journal_truncate %d" id
  | Wait -> "Wait"
  | Advance ns -> Printf.sprintf "Advance %d" ns

let ops_to_string ops =
  String.concat "\n" (List.mapi (fun i op -> Printf.sprintf "  %2d: %s" i (op_to_string op)) ops)

(* Running an op list against a real store ---------------------------------- *)

type runner = {
  store : Store.t;
  journals : (int, Store.journal) Hashtbl.t;
  mutable journal_heads : (int * int * int) list; (* id, head bytes, capacity *)
}

let runner store = { store; journals = Hashtbl.create 4; journal_heads = [] }

let journal_fits t id len =
  match List.find_opt (fun (i, _, _) -> i = id) t.journal_heads with
  | None -> false
  | Some (_, head, cap) -> head + len <= cap

let note_append t id len =
  t.journal_heads <-
    List.map
      (fun ((i, head, cap) as e) -> if i = id then (i, head + len, cap) else e)
      t.journal_heads

let run_op t op =
  match op with
  | Checkpoint objs ->
      ignore (Store.begin_checkpoint t.store);
      List.iter
        (fun (oid, kind, meta, pages) ->
          Store.reserve_oids t.store ~upto:oid;
          Store.put_object t.store ~oid ~kind ~meta;
          if pages <> [] then
            Store.put_pages t.store ~oid
              (List.map (fun (i, c) -> (i, page_payload c)) pages))
        objs;
      ignore (Store.commit_checkpoint t.store)
  | Prune keep -> ignore (Store.prune_history t.store ~keep:(max 1 keep))
  | Journal_create size ->
      let j = Store.journal_create t.store ~size in
      Hashtbl.replace t.journals (Store.journal_id j) j;
      t.journal_heads <-
        (Store.journal_id j, 0, journal_capacity_of_size size) :: t.journal_heads
  | Journal_append (id, data) -> (
      (* Appends that would overflow are skipped deterministically; the
         model applies the identical predicate. *)
      match Hashtbl.find_opt t.journals id with
      | Some j when journal_fits t id (journal_record_len data) ->
          Store.journal_append t.store j data;
          note_append t id (journal_record_len data)
      | Some _ | None -> ())
  | Journal_truncate id -> (
      match Hashtbl.find_opt t.journals id with
      | Some j ->
          Store.journal_truncate t.store j;
          t.journal_heads <-
            List.map
              (fun ((i, _, cap) as e) -> if i = id then (i, 0, cap) else e)
              t.journal_heads
      | None -> ())
  | Wait -> Store.wait_durable t.store
  | Advance ns -> Clock.advance (Store.clock t.store) ns

(* Random workloads ----------------------------------------------------------- *)

let gen_checkpoint rng ~max_oid ~max_pages =
  let nobjs = Rng.int_in rng 1 (max 1 (max_oid / 2)) in
  Checkpoint
    (List.init nobjs (fun _ ->
         let oid = Rng.int_in rng 1 max_oid in
         let npages = Rng.int_in rng 0 max_pages in
         let pages =
           List.init npages (fun _ ->
               (Rng.int_in rng 0 900, Char.chr (Rng.int_in rng 33 122)))
         in
         (oid, "memory", Printf.sprintf "m%d" (Rng.int_in rng 0 9999), pages)))

let gen_op rng ~max_oid ~max_pages =
  match Rng.int rng 10 with
  | 0 -> Prune (Rng.int_in rng 1 3)
  | 1 -> Journal_create ((1 + Rng.int rng 16) * 4096)
  | 2 | 3 -> Journal_append (Rng.int_in rng 1 3, Printf.sprintf "r%d" (Rng.int rng 100000))
  | 4 -> Journal_truncate (Rng.int_in rng 1 3)
  | 5 -> if Rng.bool rng then Wait else Advance (Rng.int_in rng 1_000 200_000)
  | _ -> gen_checkpoint rng ~max_oid ~max_pages

let gen_ops rng ~n ~max_oid ~max_pages =
  List.init n (fun _ -> gen_op rng ~max_oid ~max_pages)

(* Speculative-checkpoint arm: a soft-quiesce cycle stages every object
   speculatively while the workload keeps running, then the validator
   re-puts the conflict set over the staged image, relying on the store's
   newest-wins staging (last put_object wins wholesale, duplicate
   put_pages rows replace).  At the store level that is a checkpoint whose
   object list carries a stale prelude superseded row-by-row by the real
   content — so rewriting every Checkpoint op this way puts the exact
   splice mechanism under crash-point enumeration: recovery must land on
   a model snapshot, never a half-spliced blend of prelude and
   correction. *)
let speculative_arm ops =
  let stale_char c = Char.chr (33 + ((Char.code c + 7 - 33) mod 90)) in
  List.map
    (function
      | Checkpoint objs ->
          let prelude =
            List.map
              (fun (oid, kind, meta, pages) ->
                ( oid,
                  kind,
                  "spec:" ^ meta,
                  List.map (fun (i, c) -> (i, stale_char c)) pages ))
              objs
          in
          Checkpoint (prelude @ objs)
      | op -> op)
    ops

(* The acceptance-criteria workload: three checkpoints with cross-leaf
   page spreads, journal traffic, and a prune — replayed back-to-back with
   no waits, so the commit pipeline stays as deep as it ever gets. *)
let standard =
  let pages lo n step c =
    List.init n (fun i -> (lo + (i * step), Char.chr (Char.code c + (i mod 20))))
  in
  [
    Journal_create (64 * 1024);
    Checkpoint
      [
        (1, "memory", "proc-1", pages 0 40 7 'a');
        (2, "vnode", "file-2", pages 200 30 11 'A');
      ];
    Journal_append (1, "record-one");
    Checkpoint
      [
        (1, "memory", "proc-1b", pages 0 25 13 'g');
        (3, "memory", "proc-3", pages 500 35 9 'p');
      ];
    Journal_append (1, "record-two");
    Journal_append (1, "record-three");
    Checkpoint
      [ (2, "vnode", "file-2b", pages 240 20 17 'M'); (3, "memory", "", pages 510 15 23 'q') ];
    Prune 2;
    Journal_truncate 1;
    Journal_append (1, "post-truncate");
    Checkpoint [ (4, "memory", "wide", pages 0 40 101 'W') ];
    Journal_append (1, "record-four");
    Checkpoint
      [ (4, "memory", "wide2", pages 20 40 97 'X'); (5, "vnode", "tail", pages 1000 25 3 'Y') ];
    Checkpoint [ (1, "memory", "final", pages 3 12 31 'z') ];
    (* Second phase: with payloads packed into coalesced extents a
       checkpoint submits a handful of device writes, so boundary coverage
       needs operations, not pages.  These cycles mix exact repeats of
       earlier content (dedup hits: leaf references, no data write) with
       fresh content, plus a second journal, so the enumerator crashes
       inside dedup-heavy and dedup-free flushes alike. *)
    Journal_create (32 * 1024);
    Checkpoint
      [
        (* Byte-identical to epoch 1's object 1 pages: all dedup hits. *)
        (6, "memory", "twin", pages 0 40 7 'a');
        (7, "vnode", "fresh-7", pages 50 30 19 '0');
      ];
    Journal_append (2, "second-journal-one");
    Journal_append (1, "interleaved");
    Checkpoint
      [ (7, "vnode", "fresh-7b", pages 80 25 29 '5'); (6, "memory", "", pages 7 18 41 'k') ];
    Journal_append (2, "second-journal-two");
    Prune 3;
    Checkpoint
      [
        (8, "memory", "mixed", pages 0 30 7 'a');
        (* Repeats of object 5's tail plus new indices. *)
        (5, "vnode", "tail2", pages 1000 25 3 'Y');
      ];
    Journal_truncate 2;
    Journal_append (2, "post-truncate-two");
    Checkpoint [ (8, "memory", "mixed2", pages 60 22 13 'C') ];
    Journal_append (1, "record-five");
    Checkpoint [ (2, "vnode", "file-2c", pages 240 20 17 'M'); (9, "memory", "ninth", pages 2000 28 5 'e') ];
  ]

(* Kernel-driven recorded profiles -------------------------------------------

   The two POSIX surfaces the object model uniquely handles — fork's COW
   sharing and POSIX shm — are exercised by running a REAL kernel model
   (Aurora_kern.Machine, no store attached) and projecting its state into
   plain ops after every epoch of activity.  The projection reads page
   bytes through each process's own address space, so what lands in the
   recorded Checkpoint is the genuine COW resolution: a child that has
   not diverged from its parent records byte-identical pages (store dedup
   hits), and divergence after a fork shows up as differing fill chars on
   the same page index.  The resulting op list is a pure value — the
   crash-point enumerator replays it with no kernel in the loop. *)

let fork_oid_base = 10
let pipe_oid_base = 100
let fork_arena_pages = 8

type fam_proc = {
  fp_id : int;  (* recorder-stable id: kernel pids vary with history *)
  fp_parent : int;
  fp_proc : Process.t;
  fp_base : int;
  fp_written : (int, unit) Hashtbl.t;
}

type fam_pipe = {
  pp_id : int;
  pp_reader : int;  (* fam id of the child holding the read end *)
  pp_writer : int;  (* fam id of the parent holding the write end *)
  pp_rd_fd : int;
  pp_wr_fd : int;
}

let fork_bomb ?(seed = 11) ?(epochs = 6) () =
  let rng = Rng.create seed in
  let m = Machine.create () in
  let root_proc = Syscall.spawn m ~name:"sh" in
  let root_arena = Syscall.mmap_anon root_proc ~npages:fork_arena_pages in
  let root =
    {
      fp_id = 0;
      fp_parent = -1;
      fp_proc = root_proc;
      fp_base = Vm_space.addr_of_entry root_arena;
      fp_written = Hashtbl.create 8;
    }
  in
  let live = ref [ root ] in
  let pipes = ref [] in
  let next_id = ref 1 in
  let next_pipe = ref 0 in
  let rev_ops = ref [ Journal_create (16 * 1024) ] in
  let emit op = rev_ops := op :: !rev_ops in
  let log fmt = Printf.ksprintf (fun s -> emit (Journal_append (1, s))) fmt in
  let write_page fp =
    let vpn = Rng.int rng fork_arena_pages in
    let c = Char.chr (Rng.int_in rng 97 122) in
    Vm_space.write_byte fp.fp_proc.Process.space
      ~addr:(fp.fp_base + (vpn * Page.logical_size))
      c;
    Hashtbl.replace fp.fp_written vpn ()
  in
  let pick l = List.nth l (Rng.int rng (List.length l)) in
  let is_leaf fp = not (List.exists (fun o -> o.fp_parent = fp.fp_id) !live) in
  let do_fork () =
    let parent = pick !live in
    (* The pipe is created before the fork so its two descriptions span
       the parent/child boundary — the shell-pipeline shape. *)
    let rd, wr = Syscall.pipe m parent.fp_proc in
    let child_proc = Syscall.fork m parent.fp_proc in
    let child =
      {
        fp_id = !next_id;
        fp_parent = parent.fp_id;
        fp_proc = child_proc;
        fp_base = parent.fp_base;
        fp_written = Hashtbl.copy parent.fp_written;
      }
    in
    incr next_id;
    Syscall.close parent.fp_proc rd;
    Syscall.close child_proc wr;
    let p =
      { pp_id = !next_pipe; pp_reader = child.fp_id; pp_writer = parent.fp_id;
        pp_rd_fd = rd; pp_wr_fd = wr }
    in
    incr next_pipe;
    ignore (Syscall.write m parent.fp_proc ~fd:wr (Printf.sprintf "f%d" child.fp_id));
    live := !live @ [ child ];
    pipes := !pipes @ [ p ];
    log "fork %d->%d pipe %d" parent.fp_id child.fp_id p.pp_id
  in
  let do_exit () =
    match List.filter (fun fp -> fp.fp_id <> 0 && is_leaf fp) !live with
    | [] -> ()
    | leaves ->
        let fp = pick leaves in
        Syscall.exit m fp.fp_proc ~code:0;
        (match List.find_opt (fun o -> o.fp_id = fp.fp_parent) !live with
        | Some parent -> ignore (Syscall.waitpid m parent.fp_proc)
        | None -> ());
        live := List.filter (fun o -> o.fp_id <> fp.fp_id) !live;
        pipes :=
          List.filter
            (fun p -> p.pp_reader <> fp.fp_id && p.pp_writer <> fp.fp_id)
            !pipes;
        log "exit %d" fp.fp_id
  in
  let do_pipe_traffic () =
    match !pipes with
    | [] -> ()
    | ps ->
        let p = pick ps in
        (match List.find_opt (fun o -> o.fp_id = p.pp_writer) !live with
        | Some w ->
            ignore
              (Syscall.write m w.fp_proc ~fd:p.pp_wr_fd
                 (Printf.sprintf "m%d" (Rng.int rng 100)))
        | None -> ());
        (match List.find_opt (fun o -> o.fp_id = p.pp_reader) !live with
        | Some r ->
            if Rng.bool rng then
              ignore (Syscall.read m r.fp_proc ~fd:p.pp_rd_fd ~len:2)
        | None -> ())
  in
  let checkpoint_objects () =
    let procs =
      List.map
        (fun fp ->
          let pages =
            Hashtbl.fold (fun vpn () acc -> vpn :: acc) fp.fp_written []
            |> List.sort compare
            |> List.map (fun vpn ->
                   ( vpn,
                     Vm_space.read_byte fp.fp_proc.Process.space
                       ~addr:(fp.fp_base + (vpn * Page.logical_size)) ))
          in
          ( fork_oid_base + fp.fp_id,
            "memory",
            Printf.sprintf "sh-%d/pp%d" fp.fp_id fp.fp_parent,
            pages ))
        (List.sort (fun a b -> compare a.fp_id b.fp_id) !live)
    in
    let pipe_objs =
      List.map
        (fun p ->
          let content =
            match List.find_opt (fun o -> o.fp_id = p.pp_reader) !live with
            | Some r -> (
                match (Syscall.fd_exn r.fp_proc p.pp_rd_fd).Fdesc.kind with
                | Fdesc.Pipe_read pipe -> Pipe.peek_all pipe
                | _ -> "")
            | None -> ""
          in
          ( pipe_oid_base + p.pp_id,
            "pipe",
            Printf.sprintf "r%d-w%d:%s" p.pp_reader p.pp_writer content,
            [] ))
        !pipes
    in
    procs @ pipe_objs
  in
  for _epoch = 1 to epochs do
    let actions = Rng.int_in rng 3 6 in
    for _ = 1 to actions do
      match Rng.int rng 10 with
      | 0 | 1 | 2 when List.length !live < 7 -> do_fork ()
      | 3 when List.length !live > 2 -> do_exit ()
      | 4 | 5 -> do_pipe_traffic ()
      | _ -> write_page (pick !live)
    done;
    emit (Checkpoint (checkpoint_objects ()));
    (match Rng.int rng 6 with
    | 0 -> emit (Advance (Rng.int_in rng 10_000 120_000))
    | 1 -> emit Wait
    | 2 when Rng.bool rng -> emit (Prune (Rng.int_in rng 2 4))
    | _ -> ())
  done;
  List.rev !rev_ops

(* POSIX-shm producer/consumer ring ------------------------------------- *)

let shm_oid = 7
let shm_nslots = 4

(* One field per page so a torn flush can separate a slot's sequence
   stamp from its body: page 0 = head, page 1 = tail, pages 2..5 = the
   per-slot seqlock stamps, pages 6..9 = the per-slot bodies. *)
let shm_npages = 2 + (2 * shm_nslots)

(* Ring fields render as page fill chars; the checker inverts them, so
   the alphabet avoids every character the render format treats as
   structure (',' ':' ';' '|' and anything [String.escaped] rewrites)
   and its even length means sequence parity — the seqlock's
   published/in-flight bit — survives the wrap. *)
let shm_alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwx"
let shm_enc v = shm_alphabet.[v mod String.length shm_alphabet]
let shm_enc_body r = shm_alphabet.[r * 7 mod String.length shm_alphabet]
let shm_empty_body = '-'

let shm_ring ?(seed = 23) ?(epochs = 8) () =
  let rng = Rng.create seed in
  let m = Machine.create () in
  let prod = Syscall.spawn m ~name:"ring-prod" in
  let cons = Syscall.spawn m ~name:"ring-cons" in
  let pfd = Syscall.shm_open m prod ~name:"/aurora-ring" ~npages:shm_npages in
  let cfd = Syscall.shm_open m cons ~name:"/aurora-ring" ~npages:shm_npages in
  let pbase = Vm_space.addr_of_entry (Syscall.mmap_shm prod ~fd:pfd) in
  let cbase = Vm_space.addr_of_entry (Syscall.mmap_shm cons ~fd:cfd) in
  (* Producer-side stores and consumer-side loads go through each
     process's own mapping of the one shared object; head/seq/body
     written here must be visible over there. *)
  let wr_prod vpn c =
    Vm_space.write_byte prod.Process.space
      ~addr:(pbase + (vpn * Page.logical_size))
      c
  in
  let wr_cons vpn c =
    Vm_space.write_byte cons.Process.space
      ~addr:(cbase + (vpn * Page.logical_size))
      c
  in
  let rd_cons vpn =
    Vm_space.read_byte cons.Process.space ~addr:(cbase + (vpn * Page.logical_size))
  in
  wr_prod 0 (shm_enc 0);
  wr_cons 1 (shm_enc 0);
  for s = 0 to shm_nslots - 1 do
    wr_prod (2 + s) (shm_enc 0);
    wr_prod (2 + shm_nslots + s) shm_empty_body
  done;
  let head = ref 0 in
  let tail = ref 0 in
  (* (record, stage): stage 1 = seq marked odd, body still old; stage 2 =
     body written, seq still odd.  Either way a crash must restore a ring
     whose reader skips the slot. *)
  let publishing = ref None in
  let rev_ops = ref [ Journal_create (8 * 1024) ] in
  let emit op = rev_ops := op :: !rev_ops in
  let log fmt = Printf.ksprintf (fun s -> emit (Journal_append (1, s))) fmt in
  let finish_publish () =
    match !publishing with
    | None -> ()
    | Some (r, stage) ->
        if stage < 2 then wr_prod (2 + shm_nslots + (r mod shm_nslots)) (shm_enc_body r);
        wr_prod (2 + (r mod shm_nslots)) (shm_enc ((2 * r) + 2));
        head := r + 1;
        wr_prod 0 (shm_enc !head);
        publishing := None;
        log "pub %d" r
  in
  let start_publish r stage =
    wr_prod (2 + (r mod shm_nslots)) (shm_enc ((2 * r) + 1));
    if stage >= 2 then wr_prod (2 + shm_nslots + (r mod shm_nslots)) (shm_enc_body r);
    publishing := Some (r, stage)
  in
  let consume () =
    if !tail < !head then begin
      let r = !tail in
      let c = rd_cons (2 + shm_nslots + (r mod shm_nslots)) in
      (* The consumer observes through its own mapping: a mismatch here
         would mean the two mappings are not one object. *)
      assert (c = shm_enc_body r);
      tail := r + 1;
      wr_cons 1 (shm_enc !tail);
      log "cons %d" r
    end
  in
  for _epoch = 1 to epochs do
    finish_publish ();
    let pubs = Rng.int_in rng 0 2 in
    for _ = 1 to pubs do
      if !head - !tail < shm_nslots then begin
        start_publish !head 2;
        finish_publish ()
      end
    done;
    let cons_n = Rng.int_in rng 0 2 in
    for _ = 1 to cons_n do
      consume ()
    done;
    (* Some epochs checkpoint mid-publish: the seqlock stamp is odd and
       the head unmoved, so the recorded snapshot is exactly the torn
       window a crash could land in. *)
    if !head - !tail < shm_nslots && Rng.int rng 10 < 4 then
      start_publish !head (Rng.int_in rng 1 2);
    let meta =
      Printf.sprintf "head=%d;tail=%d;slots=%d;pub=%s" !head !tail shm_nslots
        (match !publishing with
        | None -> "-"
        | Some (r, stage) -> Printf.sprintf "%d@%d" r stage)
    in
    let pages = List.init shm_npages (fun vpn -> (vpn, rd_cons vpn)) in
    emit (Checkpoint [ (shm_oid, "shm", meta, pages) ]);
    match Rng.int rng 5 with
    | 0 -> emit (Advance (Rng.int_in rng 10_000 80_000))
    | 1 -> emit Wait
    | _ -> ()
  done;
  finish_publish ();
  List.rev !rev_ops

(* Seqlock invariant over a rendered snapshot: given head/tail/pub from
   the meta line, every ring page is reconstructible — so a recovered
   snapshot either matches the reference ring exactly or it has exposed
   a torn record. *)
let shm_ring_check render =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_chunk epoch line =
    match String.split_on_char '|' line with
    | [ _o7; _kind; meta; pages_str ] -> (
        let field name =
          let prefix = name ^ "=" in
          String.split_on_char ';' meta
          |> List.find_map (fun kv ->
                 if String.length kv > String.length prefix
                    && String.sub kv 0 (String.length prefix) = prefix
                 then
                   Some
                     (String.sub kv (String.length prefix)
                        (String.length kv - String.length prefix))
                 else None)
        in
        match (field "head", field "tail", field "pub") with
        | Some h, Some t, Some pub -> (
            let head = int_of_string h and tail = int_of_string t in
            let pub =
              if pub = "-" then None
              else
                match String.split_on_char '@' pub with
                | [ r; st ] -> Some (int_of_string r, int_of_string st)
                | _ -> None
            in
            let pages_str =
              let s = String.trim pages_str in
              if String.length s > 0 && s.[String.length s - 1] = ';' then
                String.sub s 0 (String.length s - 1)
              else s
            in
            let page_char =
              let tbl = Hashtbl.create 16 in
              List.iter
                (fun part ->
                  match String.index_opt part ':' with
                  | Some i ->
                      let idx = int_of_string (String.sub part 0 i) in
                      if String.length part > i + 1 then
                        Hashtbl.replace tbl idx part.[i + 1]
                  | None -> ())
                (String.split_on_char ',' pages_str);
              fun vpn -> Hashtbl.find_opt tbl vpn
            in
            if tail > head then fail "E%d: tail %d ahead of head %d" epoch tail head
            else if head - tail > shm_nslots then
              fail "E%d: occupancy %d overflows %d slots" epoch (head - tail)
                shm_nslots
            else if page_char 0 <> Some (shm_enc head) then
              fail "E%d: head page disagrees with head=%d" epoch head
            else if page_char 1 <> Some (shm_enc tail) then
              fail "E%d: tail page disagrees with tail=%d" epoch tail
            else begin
              (* Reconstruct each slot: the newest record it held, or the
                 in-flight publication.  A published (even) stamp whose
                 body differs from its record is an exposed torn write. *)
              let result = ref (Ok ()) in
              for slot = 0 to shm_nslots - 1 do
                let expect_seq, expect_body =
                  match pub with
                  | Some (r, stage) when r mod shm_nslots = slot ->
                      let prev = r - shm_nslots in
                      ( shm_enc ((2 * r) + 1),
                        if stage >= 2 then shm_enc_body r
                        else if prev >= 0 then shm_enc_body prev
                        else shm_empty_body )
                  | _ ->
                      let last =
                        (* Newest completed record in this slot. *)
                        let rec go r = if r < 0 then None
                          else if r mod shm_nslots = slot then Some r
                          else go (r - 1)
                        in
                        go (head - 1)
                      in
                      (match last with
                      | Some r -> (shm_enc ((2 * r) + 2), shm_enc_body r)
                      | None -> (shm_enc 0, shm_empty_body))
                in
                (match !result with
                | Error _ -> ()
                | Ok () ->
                    if page_char (2 + slot) <> Some expect_seq then
                      result :=
                        fail "E%d: slot %d seq stamp torn (head=%d tail=%d)"
                          epoch slot head tail
                    else if page_char (2 + shm_nslots + slot) <> Some expect_body
                    then
                      result :=
                        fail
                          "E%d: slot %d body does not match its seq stamp \
                           (half-written record exposed)"
                          epoch slot)
              done;
              !result
            end)
        | _ -> fail "E%d: shm meta missing head/tail/pub" epoch)
    | _ -> fail "E%d: malformed shm object line" epoch
  in
  let epoch = ref 0 in
  let prefix = Printf.sprintf "O%d|shm|" shm_oid in
  List.fold_left
    (fun acc line ->
      match acc with
      | Error _ -> acc
      | Ok checked ->
          if String.length line > 1 && line.[0] = 'E' then begin
            (match int_of_string_opt (String.sub line 1 (String.length line - 1)) with
            | Some e -> epoch := e
            | None -> ());
            acc
          end
          else if
            String.length line >= String.length prefix
            && String.sub line 0 (String.length prefix) = prefix
          then
            match check_chunk !epoch line with
            | Ok () -> Ok (checked + 1)
            | Error e -> Error e
          else acc)
    (Ok 0)
    (String.split_on_char '\n' render)
