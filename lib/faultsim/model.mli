(** Pure reference model of the object store's durable contents.

    {!apply} mirrors, op for op, what a {!Workload.runner} does to the
    real store; {!render} produces the canonical form that
    {!Torture.observe} extracts from a recovered store, so model/store
    agreement is plain string equality.  The model has no device, no
    timing and no caches — it is the specification the torture harness
    checks the store against. *)

type t

val create : unit -> t
val apply : t -> Workload.op -> unit

val render : t -> string
(** Canonical state: every retained epoch (its full object table — kind,
    meta, resident pages), then every journal's replayable records, each
    on "E"/"O"/"J"-prefixed lines with escaped payloads. *)

val render_parts : t -> string * string
(** [(epochs, journals)] rendered separately.  The crash-point enumerator
    matches the two components against possibly different snapshots:
    checkpoints become durable asynchronously while journal appends are
    synchronous, so a crash may observe a later journal state than epoch
    state — a legitimate, linearizable outcome. *)
