(** Recorded store workloads for crash-consistency torture.

    A workload is a list of {!op} values — the unit the crash-point
    enumerator replays deterministically and the reference {!Model}
    applies in parallel.  Ops print as replayable OCaml-ish constructor
    syntax so a failing qcheck counterexample is a script. *)

type op =
  | Checkpoint of (int * string * string * (int * char) list) list
      (** [(oid, kind, meta, [(page index, fill char)])] per object; pages
          are {!payload_size}-byte runs of the fill character.  Staged with
          [begin_checkpoint] .. [commit_checkpoint], no wait: commits
          pipeline. *)
  | Prune of int  (** [Store.prune_history ~keep] (clamped to >= 1). *)
  | Journal_create of int  (** [Store.journal_create ~size]. *)
  | Journal_append of int * string
      (** Append to the journal with this id; skipped (deterministically,
          both in the runner and the model) when the journal does not exist
          or the record would overflow it. *)
  | Journal_truncate of int  (** Skipped when the journal does not exist. *)
  | Wait  (** [Store.wait_durable]. *)
  | Advance of int  (** Advance the virtual clock. *)

val payload_size : int
val page_payload : char -> bytes

val journal_record_len : string -> int
(** On-device bytes of one journal record carrying this data (the wire
    overhead is 9 bytes: tag, generation, length prefix). *)

val journal_capacity_of_size : int -> int
(** Usable bytes of a journal created with [~size] (rounded up to whole
    blocks, as the store does). *)

val op_to_string : op -> string
val ops_to_string : op list -> string

(** {1 Replaying against a real store} *)

type runner

val runner : Aurora_objstore.Store.t -> runner
val run_op : runner -> op -> unit

(** {1 Workload generation} *)

val gen_op : Aurora_util.Rng.t -> max_oid:int -> max_pages:int -> op
val gen_ops : Aurora_util.Rng.t -> n:int -> max_oid:int -> max_pages:int -> op list

val speculative_arm : op list -> op list
(** Rewrite every [Checkpoint] into a speculative soft-quiesce shape: a
    stale prelude of the same objects (shifted fill chars, tagged meta)
    followed by the real content, so each row is superseded through the
    store's newest-wins staging — the mechanism the validator's conflict
    splice uses.  Crash-point enumeration over the transformed workload
    demands recovery never observes a half-spliced image. *)

val standard : op list
(** The acceptance workload: three-plus pipelined checkpoints with
    cross-leaf page spreads, journal create/append/truncate traffic and a
    prune — a few hundred device-submission boundaries. *)

(** {1 Kernel-driven recorded profiles}

    These run a real kernel model ({!Aurora_kern.Machine}, no store
    attached) and project its state into plain ops after every epoch, so
    the crash-point enumerator replays genuine POSIX behaviour — fork's
    COW resolution, pipes spanning process boundaries, a shared-memory
    ring — with no kernel in the loop. *)

val fork_bomb : ?seed:int -> ?epochs:int -> unit -> op list
(** A shell-pipeline process tree: the root "sh" forks children mid-epoch
    (each fork creates a pipe whose ends span parent and child), children
    write into a COW'd 8-page arena, leaves exit and are reaped.  Each
    epoch checkpoints every live process's written pages — read through
    that process's own address space, so undiverged children record
    byte-identical pages (store dedup hits) — plus every live pipe's
    unread residue. *)

val shm_ring : ?seed:int -> ?epochs:int -> unit -> op list
(** A POSIX-shm producer/consumer ring: two processes map the same shm
    object ([shm_open]/[mmap_shm]) at different addresses; the producer
    publishes records under a per-slot seqlock (stamp odd, write body,
    stamp even, bump head) and the consumer reads through its own
    mapping.  Some epochs checkpoint mid-publish — the recorded snapshot
    is exactly the torn window a crash could land in.  Checkpoint pages
    are read through the {e consumer's} mapping, proving the two mappings
    are one object. *)

val shm_ring_check : string -> (int, string) result
(** Seqlock invariant over a rendered snapshot (a {!Model.render} or
    {!Torture.observe} string): for every epoch's shm object, reconstruct
    the ring from its [head=..;tail=..;slots=..;pub=..] meta and demand
    every page matches — published slots carry an even stamp and the body
    of their record; an in-flight publication carries an odd stamp and
    (depending on its stage) the old or new body, so a reader skips it.
    [Ok n] = [n] snapshots checked; [Error _] names the first exposed
    half-written record. *)
