(** Recorded store workloads for crash-consistency torture.

    A workload is a list of {!op} values — the unit the crash-point
    enumerator replays deterministically and the reference {!Model}
    applies in parallel.  Ops print as replayable OCaml-ish constructor
    syntax so a failing qcheck counterexample is a script. *)

type op =
  | Checkpoint of (int * string * string * (int * char) list) list
      (** [(oid, kind, meta, [(page index, fill char)])] per object; pages
          are {!payload_size}-byte runs of the fill character.  Staged with
          [begin_checkpoint] .. [commit_checkpoint], no wait: commits
          pipeline. *)
  | Prune of int  (** [Store.prune_history ~keep] (clamped to >= 1). *)
  | Journal_create of int  (** [Store.journal_create ~size]. *)
  | Journal_append of int * string
      (** Append to the journal with this id; skipped (deterministically,
          both in the runner and the model) when the journal does not exist
          or the record would overflow it. *)
  | Journal_truncate of int  (** Skipped when the journal does not exist. *)
  | Wait  (** [Store.wait_durable]. *)
  | Advance of int  (** Advance the virtual clock. *)

val payload_size : int
val page_payload : char -> bytes

val journal_record_len : string -> int
(** On-device bytes of one journal record carrying this data (the wire
    overhead is 9 bytes: tag, generation, length prefix). *)

val journal_capacity_of_size : int -> int
(** Usable bytes of a journal created with [~size] (rounded up to whole
    blocks, as the store does). *)

val op_to_string : op -> string
val ops_to_string : op list -> string

(** {1 Replaying against a real store} *)

type runner

val runner : Aurora_objstore.Store.t -> runner
val run_op : runner -> op -> unit

(** {1 Workload generation} *)

val gen_op : Aurora_util.Rng.t -> max_oid:int -> max_pages:int -> op
val gen_ops : Aurora_util.Rng.t -> n:int -> max_oid:int -> max_pages:int -> op list

val speculative_arm : op list -> op list
(** Rewrite every [Checkpoint] into a speculative soft-quiesce shape: a
    stale prelude of the same objects (shifted fill chars, tagged meta)
    followed by the real content, so each row is superseded through the
    store's newest-wins staging — the mechanism the validator's conflict
    splice uses.  Crash-point enumeration over the transformed workload
    demands recovery never observes a half-spliced image. *)

val standard : op list
(** The acceptance workload: three-plus pipelined checkpoints with
    cross-leaf page spreads, journal create/append/truncate traffic and a
    prune — a few hundred device-submission boundaries. *)
