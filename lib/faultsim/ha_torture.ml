module Rng = Aurora_util.Rng
module Clock = Aurora_sim.Clock
module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Syscall = Aurora_kern.Syscall
module Vm_space = Aurora_vm.Vm_space
module Store = Aurora_objstore.Store
module Link = Aurora_net.Link
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Ha = Aurora_core.Ha
module Restore = Aurora_core.Restore
module Extsync = Aurora_core.Extsync
module Replica_set = Aurora_core.Replica_set

(* One torture run: a primary service mutating memory under continuous
   checkpointing, shipping every epoch to a standby over a faulty link,
   killed at a random round; the standby fails over and its recovered
   state must match the reference model at the epoch the failover
   reports.  The reference model is the per-round state string — each
   round r overwrites the service's state page with "state-r", so the
   store state at the primary epoch committed in round r renders as
   "state-r" exactly. *)

let npages = 16
let state_of_round r = Printf.sprintf "state-%06d" r
let state_len = String.length (state_of_round 0)

type run_report = {
  hr_seed : int;
  hr_rate : float;
  hr_rounds : int;  (** rounds the primary completed before the kill *)
  hr_shipped : int;  (** primary epochs acked by the standby *)
  hr_source_epoch : int;  (** primary epoch the failover recovered *)
  hr_fallbacks : int;  (** epochs skipped by the fallback loop *)
  hr_retransmits : int;
  hr_dup_acks : int;
  hr_verify_rejects : int;
  hr_outcome : string;  (** "match" or the failure detail *)
  hr_ok : bool;
}

let run ?(speculative = false) ~seed ~rounds ~rate () =
  let rng = Rng.create seed in
  let primary = Sls.boot () in
  let p = Syscall.spawn primary.Sls.machine ~name:"svc" in
  let e = Syscall.mmap_anon p ~npages in
  let addr = Vm_space.addr_of_entry e in
  Vm_space.touch_write p.Process.space ~addr ~len:(npages * 4096);
  (* In the speculative arm the service carries enough kernel objects
     that each soft serialize pass exceeds the yield quantum, so
     concurrency windows really open mid-checkpoint. *)
  let pipes =
    if speculative then Array.init 48 (fun _ -> Syscall.pipe primary.Sls.machine p)
    else [||]
  in
  let group = Sls.attach primary [ p ] in
  let hook_fired = ref 0 in
  if speculative then begin
    Group.set_speculative group true;
    (* Mutate a scratch page and a pipe whenever the soft-quiesce window
       opens: the validator must splice these conflicts before the epoch
       ships, and the shipped image must still byte-match the model
       (which only reads the round's state page). *)
    Machine.set_run_hook primary.Sls.machine
      (Some
         (fun _ns ->
           incr hook_fired;
           let n = !hook_fired in
           Vm_space.write_string p.Process.space
             ~addr:(addr + (((n mod (npages - 2)) + 2) * 4096))
             (Printf.sprintf "mid-%d" n);
           ignore
             (Syscall.write primary.Sls.machine p
                ~fd:(snd pipes.(n mod Array.length pipes))
                "mid")))
  end;
  let standby = Sls.boot () in
  let link = Link.create ~name:"ha-torture" () in
  Link.set_faults link ~seed:(seed * 7919) (Link.lossy_profile rate);
  let ha = Ha.create ~link ~primary:group ~standby_store:standby.Sls.store () in
  let pclk = primary.Sls.machine.Machine.clock in
  (* primary epoch -> round whose state it committed *)
  let round_of_epoch = Hashtbl.create 32 in
  let kill_round = 1 + Rng.int rng rounds in
  (* Sometimes the primary dies with lag: the last round checkpoints but
     never replicates, so failover must land on an older epoch. *)
  let killed_before_replicate = Rng.bool rng in
  let completed = ref 0 in
  (try
     for r = 1 to kill_round do
       Vm_space.write_string p.Process.space ~addr (state_of_round r);
       (* Touch a second, rotating page so deltas vary in shape. *)
       Vm_space.write_string p.Process.space
         ~addr:(addr + ((1 + (r mod (npages - 1))) * 4096))
         (Printf.sprintf "fill-%d" r);
       (* Keep every pipe dirty so the speculative pass re-serializes
          them all and accumulates enough work to yield. *)
       Array.iter
         (fun (_, wr) -> ignore (Syscall.write primary.Sls.machine p ~fd:wr "r"))
         pipes;
       ignore (Group.checkpoint ~wait_durable:true group);
       Hashtbl.replace round_of_epoch (Group.last_epoch group) r;
       (* Occasional hard partition on top of the probabilistic faults. *)
       if Rng.int rng 10 = 0 then
         Link.partition link ~now:(Clock.now pclk)
           ~duration:(500_000 + Rng.int rng 2_000_000);
       if not (r = kill_round && killed_before_replicate) then
         ignore (Ha.replicate_result ha);
       incr completed
     done
   with _ -> ());
  (* The primary machine and devices are gone; only the standby's store
     survives.  Failover must recover a manifest-verified epoch. *)
  let takeover = Machine.create () in
  let hstats = Ha.stats ha in
  let base =
    {
      hr_seed = seed;
      hr_rate = rate;
      hr_rounds = !completed;
      hr_shipped = hstats.Ha.ha_shipments;
      hr_source_epoch = 0;
      hr_fallbacks = 0;
      hr_retransmits = hstats.Ha.ha_retransmits;
      hr_dup_acks = hstats.Ha.ha_dup_acks;
      hr_verify_rejects = hstats.Ha.ha_verify_rejects;
      hr_outcome = "match";
      hr_ok = true;
    }
  in
  match Ha.failover_verified ha ~machine:takeover with
  | exception exn ->
      { base with hr_outcome = "uncaught: " ^ Printexc.to_string exn; hr_ok = false }
  | Error err ->
      if Ha.shipped_epoch ha = 0 then
        (* Nothing was ever acknowledged (possible at brutal rates with a
           short run): no epoch to recover is the honest answer. *)
        { base with hr_outcome = "nothing shipped"; hr_ok = true }
      else
        {
          base with
          hr_outcome = "no valid epoch: " ^ Restore.pp_restore_error err;
          hr_ok = false;
        }
  | Ok report -> (
      let source = report.Ha.fo_source_epoch in
      let base =
        {
          base with
          hr_source_epoch = source;
          hr_fallbacks = List.length report.Ha.fo_restore.Restore.vr_skipped;
        }
      in
      match Hashtbl.find_opt round_of_epoch source with
      | None ->
          {
            base with
            hr_outcome = Printf.sprintf "recovered unknown epoch %d" source;
            hr_ok = false;
          }
      | Some round -> (
          if source < Ha.shipped_epoch ha then
            {
              base with
              hr_outcome =
                Printf.sprintf "recovered epoch %d older than acked %d" source
                  (Ha.shipped_epoch ha);
              hr_ok = false;
            }
          else
            match report.Ha.fo_restore.Restore.vr_result.Restore.procs with
            | [ p' ] ->
                let got =
                  Vm_space.read_string p'.Process.space ~addr ~len:state_len
                in
                let want = state_of_round round in
                if got = want then base
                else
                  {
                    base with
                    hr_outcome =
                      Printf.sprintf "epoch %d rendered %S, model says %S"
                        source got want;
                    hr_ok = false;
                  }
            | procs ->
                {
                  base with
                  hr_outcome =
                    Printf.sprintf "expected 1 process, restored %d"
                      (List.length procs);
                  hr_ok = false;
                }))

(* Negative control: corrupt the standby's newest epoch after clean
   replication and demand the fallback loop skips it — recovering the
   previous round's state, never the corrupted bytes. *)
type control = Meta | Page

let negative_control ~seed ~mode =
  let primary = Sls.boot () in
  let p = Syscall.spawn primary.Sls.machine ~name:"svc" in
  let e = Syscall.mmap_anon p ~npages in
  let addr = Vm_space.addr_of_entry e in
  Vm_space.touch_write p.Process.space ~addr ~len:(npages * 4096);
  let group = Sls.attach primary [ p ] in
  let standby = Sls.boot () in
  let link = Link.create ~name:"ha-control" () in
  ignore seed;
  let ha = Ha.create ~link ~primary:group ~standby_store:standby.Sls.store () in
  let rounds = 3 in
  for r = 1 to rounds do
    Vm_space.write_string p.Process.space ~addr (state_of_round r);
    ignore (Group.checkpoint ~wait_durable:true group);
    match Ha.replicate_result ha with
    | Ok _ -> ()
    | Error msg -> failwith ("control replication failed: " ^ msg)
  done;
  let store = standby.Sls.store in
  let newest = Store.last_complete_epoch store in
  (* Corrupt a non-manifest object in the newest standby epoch. *)
  let victim =
    match
      List.find_opt
        (fun (_, kind) -> kind = Aurora_core.Serial.kind_memobj)
        (Store.objects_at store ~epoch:newest)
    with
    | Some (oid, _) -> oid
    | None -> failwith "control: no memory object in newest epoch"
  in
  (match mode with
  | Meta -> Store.corrupt_meta_for_tests store ~epoch:newest ~oid:victim
  | Page -> Store.corrupt_page_for_tests store ~epoch:newest ~oid:victim);
  let takeover = Machine.create () in
  match Ha.failover_verified ha ~machine:takeover with
  | Error err -> Error ("no epoch recovered: " ^ Restore.pp_restore_error err)
  | Ok report -> (
      let v = report.Ha.fo_restore in
      let skipped_newest =
        List.exists
          (fun (a : Restore.attempt) -> a.Restore.at_epoch = newest)
          v.Restore.vr_skipped
      in
      if not skipped_newest then
        Error
          (Printf.sprintf "corrupted epoch %d was not skipped (restored %d)"
             newest v.Restore.vr_epoch)
      else
        match v.Restore.vr_result.Restore.procs with
        | [ p' ] ->
            let got = Vm_space.read_string p'.Process.space ~addr ~len:state_len in
            let want = state_of_round (rounds - 1) in
            if got = want then Ok ()
            else
              Error
                (Printf.sprintf "fallback rendered %S, model says %S" got want)
        | procs ->
            Error (Printf.sprintf "expected 1 process, restored %d" (List.length procs)))

(* Sweeps ------------------------------------------------------------------------- *)

type sweep_report = {
  h_runs : int;
  h_ok : int;
  h_shipments : int;
  h_retransmits : int;
  h_dup_acks : int;
  h_verify_rejects : int;
  h_fallbacks : int;
  h_failures : run_report list;
}

let sweep ?(speculative = false) ~seed ~runs_per_rate ~rates ~rounds () =
  let reports =
    List.concat_map
      (fun rate ->
        List.init runs_per_rate (fun i ->
            run ~speculative
              ~seed:(seed + (i * 131) + int_of_float (rate *. 10_000.))
              ~rounds ~rate ()))
      rates
  in
  {
    h_runs = List.length reports;
    h_ok = List.length (List.filter (fun r -> r.hr_ok) reports);
    h_shipments = List.fold_left (fun a r -> a + r.hr_shipped) 0 reports;
    h_retransmits = List.fold_left (fun a r -> a + r.hr_retransmits) 0 reports;
    h_dup_acks = List.fold_left (fun a r -> a + r.hr_dup_acks) 0 reports;
    h_verify_rejects =
      List.fold_left (fun a r -> a + r.hr_verify_rejects) 0 reports;
    h_fallbacks = List.fold_left (fun a r -> a + r.hr_fallbacks) 0 reports;
    h_failures = List.filter (fun r -> not r.hr_ok) reports;
  }

let pp_run r =
  Printf.sprintf
    "seed=%d rate=%.3f rounds=%d shipped=%d source=%d fallbacks=%d \
     retx=%d dups=%d rejects=%d: %s"
    r.hr_seed r.hr_rate r.hr_rounds r.hr_shipped r.hr_source_epoch
    r.hr_fallbacks r.hr_retransmits r.hr_dup_acks r.hr_verify_rejects
    r.hr_outcome

(* Quorum torture ------------------------------------------------------------------ *)

(* One quorum run: a primary pipelining epochs to N standbys over N
   independently-faulty links (probabilistic faults plus scripted
   partition windows), a random minority killed at random rounds,
   evicted survivors rejoining, externally-synchronized messages
   buffered per epoch and released only at quorum.  At the end the
   primary dies, the survivors elect, and the run passes only if the
   election converges on an epoch at least as new as the quorum commit
   point, the restored state matches the reference model, and no
   released message came from the discarded window. *)

type quorum_report = {
  qr_seed : int;
  qr_rate : float;
  qr_n : int;
  qr_rounds : int;
  qr_killed : int list;  (** standby indexes killed mid-run *)
  qr_quorum_epoch : int;  (** quorum commit point when the primary died *)
  qr_source_epoch : int;  (** primary epoch the election restored *)
  qr_winner : int;
  qr_votes : int;
  qr_evictions : int;
  qr_rejoins : int;
  qr_retransmits : int;
  qr_released : int;  (** outbox messages released at quorum *)
  qr_dropped : int;  (** outbox messages dropped with the lost window *)
  qr_outcome : string;
  qr_ok : bool;
}

let quorum_run ~seed ~rounds ~rate ~n =
  if n < 1 then invalid_arg "quorum_run: n < 1";
  let rng = Rng.create seed in
  let primary = Sls.boot () in
  let p = Syscall.spawn primary.Sls.machine ~name:"svc" in
  let e = Syscall.mmap_anon p ~npages in
  let addr = Vm_space.addr_of_entry e in
  Vm_space.touch_write p.Process.space ~addr ~len:(npages * 4096);
  let group = Sls.attach primary [ p ] in
  let links =
    List.init n (fun i ->
        let link = Link.create ~name:(Printf.sprintf "quorum-%d" i) () in
        Link.set_faults link
          ~seed:((seed * 7919) + (i * 131) + 7)
          {
            (Link.lossy_profile rate) with
            Link.p_partition = rate /. 4.;
            partition_ns = 400_000;
          };
        (* Scripted partition windows (satellite: deterministic fault
           scenarios pinned to virtual time, on top of the dice). *)
        if Rng.int rng 3 = 0 then
          Link.partition_at link
            ~at:(500_000 + Rng.int rng 4_000_000)
            ~duration:(200_000 + Rng.int rng 600_000);
        link)
  in
  let standbys =
    List.map (fun link -> ((Sls.boot ()).Sls.store, link)) links
  in
  let outbox = Extsync.create () in
  let released = ref [] in
  let rs =
    Replica_set.create ~window:4 ~seed:(seed + 1) ~outbox ~primary:group
      ~standbys ()
  in
  (* Kill a random minority at random rounds: quorum survives by
     construction, so the run must always converge. *)
  let minority = (n - 1) / 2 in
  let kills =
    if minority = 0 then []
    else begin
      let k = 1 + Rng.int rng minority in
      (* Fisher–Yates prefix: k distinct victims, any of the n. *)
      let all = Array.init n Fun.id in
      for i = n - 1 downto 1 do
        let j = Rng.int rng (i + 1) in
        let tmp = all.(i) in
        all.(i) <- all.(j);
        all.(j) <- tmp
      done;
      List.init k (fun i -> (1 + Rng.int rng rounds, all.(i)))
    end
  in
  let round_of_epoch = Hashtbl.create 64 in
  (* Sometimes the primary dies abruptly, mid-window: the final drain
     never happens, quorum lags the newest epoch, and failover must
     drop the buffered messages of the lost window. *)
  let abrupt_death = Rng.bool rng in
  let uncaught = ref "" in
  (try
     for r = 1 to rounds do
       Vm_space.write_string p.Process.space ~addr (state_of_round r);
       Vm_space.write_string p.Process.space
         ~addr:(addr + ((1 + (r mod (npages - 1))) * 4096))
         (Printf.sprintf "fill-%d" r);
       ignore (Group.checkpoint ~wait_durable:true group);
       let epoch = Group.last_epoch group in
       Hashtbl.replace round_of_epoch epoch r;
       (* One externally-synchronized message per round, held until the
          epoch that covers it is quorum-committed. *)
       Extsync.buffer outbox ~epoch
         {
           Extsync.tag = Printf.sprintf "msg-%d" r;
           deliver = (fun ~release_time:_ -> released := epoch :: !released);
         };
       List.iter
         (fun (kr, idx) -> if kr = r then Replica_set.kill rs idx)
         kills;
       (* In abrupt-death runs the last epoch checkpoints but never
          ships: its buffered message is in the discarded window and
          failover must drop it. *)
       if not (abrupt_death && r = rounds) then Replica_set.ship rs;
       (* Evicted survivors come back with catch-up shipments. *)
       if Rng.int rng 3 = 0 then
         List.iter
           (fun (v : Replica_set.standby_view) ->
             if v.Replica_set.sv_health = Replica_set.Evicted
                && not v.Replica_set.sv_dead
             then Replica_set.rejoin rs v.Replica_set.sv_idx)
           (Replica_set.views rs)
     done;
     (* Unless death is abrupt, let the pipeline reach the quorum
        commit point, rejoining any survivor the fault plane evicted
        along the way. *)
     if not abrupt_death then begin
       let tries = ref 0 in
       while (not (Replica_set.drain rs `Quorum)) && !tries < 10 do
         incr tries;
         List.iter
           (fun (v : Replica_set.standby_view) ->
             if v.Replica_set.sv_health = Replica_set.Evicted
                && not v.Replica_set.sv_dead
             then Replica_set.rejoin rs v.Replica_set.sv_idx)
           (Replica_set.views rs)
       done
     end
   with exn -> uncaught := Printexc.to_string exn);
  let quorum_epoch = Replica_set.quorum_epoch rs in
  let st = Replica_set.stats rs in
  let killed = List.map snd kills in
  let survivors =
    List.filter (fun i -> not (List.mem i killed)) (List.init n Fun.id)
  in
  let base =
    {
      qr_seed = seed;
      qr_rate = rate;
      qr_n = n;
      qr_rounds = rounds;
      qr_killed = killed;
      qr_quorum_epoch = quorum_epoch;
      qr_source_epoch = 0;
      qr_winner = -1;
      qr_votes = 0;
      qr_evictions = st.Replica_set.rs_evictions;
      qr_rejoins = st.Replica_set.rs_rejoins;
      qr_retransmits = st.Replica_set.rs_retransmits;
      qr_released = st.Replica_set.rs_released_msgs;
      qr_dropped = 0;
      qr_outcome = "match";
      qr_ok = true;
    }
  in
  if !uncaught <> "" then
    { base with qr_outcome = "uncaught: " ^ !uncaught; qr_ok = false }
  else
    (* The primary machine dies here; the survivors hold an election. *)
    let takeover = Machine.create () in
    match Replica_set.elect_and_failover rs ~survivors ~machine:takeover with
    | exception exn ->
        {
          base with
          qr_outcome = "uncaught in election: " ^ Printexc.to_string exn;
          qr_ok = false;
        }
    | Error msg -> { base with qr_outcome = "election: " ^ msg; qr_ok = false }
    | Ok rep -> (
        let source = rep.Replica_set.el_source_epoch in
        let base =
          {
            base with
            qr_source_epoch = source;
            qr_winner = rep.Replica_set.el_winner;
            qr_votes = List.length rep.Replica_set.el_votes;
            qr_dropped = rep.Replica_set.el_dropped_msgs;
          }
        in
        let fail fmt = Printf.ksprintf (fun s -> { base with qr_outcome = s; qr_ok = false }) fmt in
        if source < quorum_epoch then
          fail "restored epoch %d older than quorum commit %d" source
            quorum_epoch
        else if
          List.exists
            (fun (v : Replica_set.vote) ->
              v.Replica_set.vt_primary_epoch > source)
            rep.Replica_set.el_votes
        then fail "a survivor advertised an epoch newer than the winner's"
        else if List.exists (fun e -> e > source) !released then
          fail "a message from the discarded window (> epoch %d) escaped"
            source
        else if
          base.qr_released + base.qr_dropped + Extsync.pending outbox
          <> rounds
        then
          fail "outbox accounting: %d released + %d dropped + %d pending <> %d"
            base.qr_released base.qr_dropped (Extsync.pending outbox) rounds
        else
          match Hashtbl.find_opt round_of_epoch source with
          | None -> fail "restored unknown epoch %d" source
          | Some round -> (
              match
                rep.Replica_set.el_restore.Restore.vr_result.Restore.procs
              with
              | [ p' ] ->
                  let got =
                    Vm_space.read_string p'.Process.space ~addr ~len:state_len
                  in
                  let want = state_of_round round in
                  if got = want then base
                  else
                    fail "epoch %d rendered %S, model says %S" source got want
              | procs ->
                  fail "expected 1 process, restored %d" (List.length procs)))

let pp_quorum r =
  Printf.sprintf
    "seed=%d n=%d rate=%.3f rounds=%d killed=[%s] quorum=%d source=%d \
     winner=%d votes=%d evict=%d rejoin=%d retx=%d released=%d dropped=%d: %s"
    r.qr_seed r.qr_n r.qr_rate r.qr_rounds
    (String.concat ";" (List.map string_of_int r.qr_killed))
    r.qr_quorum_epoch r.qr_source_epoch r.qr_winner r.qr_votes r.qr_evictions
    r.qr_rejoins r.qr_retransmits r.qr_released r.qr_dropped r.qr_outcome

type quorum_sweep_report = {
  q_runs : int;
  q_ok : int;
  q_evictions : int;
  q_rejoins : int;
  q_retransmits : int;
  q_released : int;
  q_dropped : int;
  q_failures : quorum_report list;
}

let quorum_sweep ~seed ~runs_per_cell ~rates ~ns ~rounds =
  let reports =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun rate ->
            List.init runs_per_cell (fun i ->
                quorum_run
                  ~seed:
                    (seed + (i * 131) + (n * 17)
                    + int_of_float (rate *. 10_000.))
                  ~rounds ~rate ~n))
          rates)
      ns
  in
  {
    q_runs = List.length reports;
    q_ok = List.length (List.filter (fun r -> r.qr_ok) reports);
    q_evictions = List.fold_left (fun a r -> a + r.qr_evictions) 0 reports;
    q_rejoins = List.fold_left (fun a r -> a + r.qr_rejoins) 0 reports;
    q_retransmits = List.fold_left (fun a r -> a + r.qr_retransmits) 0 reports;
    q_released = List.fold_left (fun a r -> a + r.qr_released) 0 reports;
    q_dropped = List.fold_left (fun a r -> a + r.qr_dropped) 0 reports;
    q_failures = List.filter (fun r -> not r.qr_ok) reports;
  }

(* Pipelined vs stop-and-wait ------------------------------------------------------ *)

(* Replication-plane cost of R rounds to N standbys, both ways, same
   fault profile and seeds.  Plane time is the virtual time the primary
   spends blocked in the replication protocol: for stop-and-wait that is
   every [replicate_result] (each waits out its own acks, standby after
   standby); for the pipeline it is [ship] (non-blocking) plus the final
   drain to every standby current.  Checkpoint production is identical
   on both sides and excluded — it is the plane the pipeline does not
   change. *)
type pipeline_report = {
  pl_rounds : int;
  pl_n : int;
  pl_rate : float;
  pl_sw_plane_ns : int;  (** stop-and-wait: primary time blocked shipping *)
  pl_pipe_plane_ns : int;  (** pipelined: ship calls plus the final drain *)
  pl_sw_total_ns : int;
  pl_pipe_total_ns : int;
  pl_speedup : float;  (** plane-time ratio, the figure the gate checks *)
  pl_sw_ok : bool;  (** every stop-and-wait shipment eventually acked *)
  pl_pipe_ok : bool;  (** pipeline drained with no standby evicted *)
}

let pipeline_vs_stop_and_wait ~seed ~rounds ~rate ~n =
  let mk_links tag =
    List.init n (fun i ->
        let link = Link.create ~name:(Printf.sprintf "%s-%d" tag i) () in
        Link.set_faults link
          ~seed:((seed * 104_729) + (i * 131) + 29)
          (Link.lossy_profile rate);
        link)
  in
  let boot_primary () =
    let primary = Sls.boot () in
    let p = Syscall.spawn primary.Sls.machine ~name:"svc" in
    let e = Syscall.mmap_anon p ~npages in
    let addr = Vm_space.addr_of_entry e in
    Vm_space.touch_write p.Process.space ~addr ~len:(npages * 4096);
    let group = Sls.attach primary [ p ] in
    (primary, p, addr, group)
  in
  let mutate p addr r =
    Vm_space.write_string p.Process.space ~addr (state_of_round r);
    Vm_space.write_string p.Process.space
      ~addr:(addr + ((1 + (r mod (npages - 1))) * 4096))
      (Printf.sprintf "fill-%d" r)
  in
  (* Stop-and-wait: N independent Ha instances, each shipment blocking
     the primary until its ack (or retry exhaustion), in series. *)
  let sw_plane, sw_total, sw_ok =
    let primary, p, addr, group = boot_primary () in
    let clk = primary.Sls.machine.Machine.clock in
    let has =
      List.map
        (fun link ->
          Ha.create ~link ~primary:group
            ~standby_store:(Sls.boot ()).Sls.store ())
        (mk_links "sw")
    in
    let t_begin = Clock.now clk in
    let plane = ref 0 in
    let ok = ref true in
    for r = 1 to rounds do
      mutate p addr r;
      ignore (Group.checkpoint ~wait_durable:true group);
      List.iter
        (fun ha ->
          let t0 = Clock.now clk in
          (match Ha.replicate_result ha with
          | Ok _ -> ()
          | Error _ -> ok := false);
          plane := !plane + (Clock.now clk - t0))
        has
    done;
    (!plane, Clock.now clk - t_begin, !ok)
  in
  (* Pipelined: one replica set, ship never blocks, one drain at the
     end waits for every standby to be current. *)
  let pipe_plane, pipe_total, pipe_ok =
    let primary, p, addr, group = boot_primary () in
    let clk = primary.Sls.machine.Machine.clock in
    let standbys =
      List.map (fun link -> ((Sls.boot ()).Sls.store, link)) (mk_links "pl")
    in
    let rs = Replica_set.create ~window:4 ~seed ~primary:group ~standbys () in
    (* Stop-and-wait never gives up for good (every round retries from
       the newer base), so the fair pipeline run rejoins standbys the
       fault plane evicts instead of silently shipping to fewer. *)
    let rejoin_evicted () =
      List.iter
        (fun (v : Replica_set.standby_view) ->
          if v.Replica_set.sv_health = Replica_set.Evicted then
            Replica_set.rejoin rs v.Replica_set.sv_idx)
        (Replica_set.views rs)
    in
    let t_begin = Clock.now clk in
    let plane = ref 0 in
    for r = 1 to rounds do
      mutate p addr r;
      ignore (Group.checkpoint ~wait_durable:true group);
      let t0 = Clock.now clk in
      Replica_set.ship rs;
      rejoin_evicted ();
      plane := !plane + (Clock.now clk - t0)
    done;
    let t0 = Clock.now clk in
    let drained = ref (Replica_set.drain rs `All) in
    let behind () =
      List.exists
        (fun (v : Replica_set.standby_view) ->
          v.Replica_set.sv_health = Replica_set.Evicted)
        (Replica_set.views rs)
    in
    let tries = ref 0 in
    while behind () && !tries < 10 do
      incr tries;
      rejoin_evicted ();
      drained := Replica_set.drain rs `All
    done;
    plane := !plane + (Clock.now clk - t0);
    (!plane, Clock.now clk - t_begin, !drained && not (behind ()))
  in
  {
    pl_rounds = rounds;
    pl_n = n;
    pl_rate = rate;
    pl_sw_plane_ns = sw_plane;
    pl_pipe_plane_ns = pipe_plane;
    pl_sw_total_ns = sw_total;
    pl_pipe_total_ns = pipe_total;
    pl_speedup = float_of_int sw_plane /. float_of_int (max 1 pipe_plane);
    pl_sw_ok = sw_ok;
    pl_pipe_ok = pipe_ok;
  }

(* Live migration ------------------------------------------------------------------ *)

type migration_check = {
  mc_report : Replica_set.migration_report;
  mc_period_ns : int;  (** the group's checkpoint period, the gate unit *)
  mc_downtime_periods : float;
  mc_ok : bool;  (** identical, verified source, downtime ≤ 2 periods *)
  mc_outcome : string;
}

let migration_run ~seed ~rate =
  let primary = Sls.boot () in
  let p = Syscall.spawn primary.Sls.machine ~name:"svc" in
  let e = Syscall.mmap_anon p ~npages in
  let addr = Vm_space.addr_of_entry e in
  Vm_space.touch_write p.Process.space ~addr ~len:(npages * 4096);
  let group = Sls.attach primary [ p ] in
  let target = Sls.boot () in
  let link = Link.create ~name:"migrate" () in
  if rate > 0. then
    Link.set_faults link ~seed:(seed * 7919) (Link.lossy_profile rate);
  let takeover = Machine.create () in
  let workload r =
    Vm_space.write_string p.Process.space ~addr (state_of_round r);
    (* Dirty a shrinking set of extra pages so pre-copy converges the
       way a real workload's working set does. *)
    for i = 1 to max 1 (npages / (1 + r)) do
      Vm_space.write_string p.Process.space
        ~addr:(addr + (((1 + ((r + i) mod (npages - 1))) * 4096)))
        (Printf.sprintf "dirty-%d-%d" r i)
    done
  in
  match
    Replica_set.migrate_live ~primary:group ~target_store:target.Sls.store
      ~machine:takeover ~workload ()
  with
  | Error msg ->
      {
        mc_report =
          {
            Replica_set.mig_rounds = 0;
            mig_precopy_bytes = 0;
            mig_final_bytes = 0;
            mig_downtime_ns = 0;
            mig_total_ns = 0;
            mig_source_epoch = 0;
            mig_identical = false;
          };
        mc_period_ns = Group.period_ns group;
        mc_downtime_periods = infinity;
        mc_ok = false;
        mc_outcome = msg;
      }
  | Ok rep ->
      let period = Group.period_ns group in
      let periods = float_of_int rep.Replica_set.mig_downtime_ns /. float_of_int period in
      let ok =
        rep.Replica_set.mig_identical
        && rep.Replica_set.mig_source_epoch > 0
        && periods <= 2.0
      in
      let outcome =
        if ok then "match"
        else if not rep.Replica_set.mig_identical then
          "migrated state not byte-identical"
        else if rep.Replica_set.mig_source_epoch = 0 then
          "restored epoch has no primary mapping"
        else
          Printf.sprintf "downtime %.2f checkpoint periods exceeds 2" periods
      in
      {
        mc_report = rep;
        mc_period_ns = period;
        mc_downtime_periods = periods;
        mc_ok = ok;
        mc_outcome = outcome;
      }
