module Rng = Aurora_util.Rng
module Clock = Aurora_sim.Clock
module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Syscall = Aurora_kern.Syscall
module Vm_space = Aurora_vm.Vm_space
module Store = Aurora_objstore.Store
module Link = Aurora_net.Link
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Ha = Aurora_core.Ha
module Restore = Aurora_core.Restore

(* One torture run: a primary service mutating memory under continuous
   checkpointing, shipping every epoch to a standby over a faulty link,
   killed at a random round; the standby fails over and its recovered
   state must match the reference model at the epoch the failover
   reports.  The reference model is the per-round state string — each
   round r overwrites the service's state page with "state-r", so the
   store state at the primary epoch committed in round r renders as
   "state-r" exactly. *)

let npages = 16
let state_of_round r = Printf.sprintf "state-%06d" r
let state_len = String.length (state_of_round 0)

type run_report = {
  hr_seed : int;
  hr_rate : float;
  hr_rounds : int;  (** rounds the primary completed before the kill *)
  hr_shipped : int;  (** primary epochs acked by the standby *)
  hr_source_epoch : int;  (** primary epoch the failover recovered *)
  hr_fallbacks : int;  (** epochs skipped by the fallback loop *)
  hr_retransmits : int;
  hr_dup_acks : int;
  hr_verify_rejects : int;
  hr_outcome : string;  (** "match" or the failure detail *)
  hr_ok : bool;
}

let run ~seed ~rounds ~rate =
  let rng = Rng.create seed in
  let primary = Sls.boot () in
  let p = Syscall.spawn primary.Sls.machine ~name:"svc" in
  let e = Syscall.mmap_anon p ~npages in
  let addr = Vm_space.addr_of_entry e in
  Vm_space.touch_write p.Process.space ~addr ~len:(npages * 4096);
  let group = Sls.attach primary [ p ] in
  let standby = Sls.boot () in
  let link = Link.create ~name:"ha-torture" () in
  Link.set_faults link ~seed:(seed * 7919) (Link.lossy_profile rate);
  let ha = Ha.create ~link ~primary:group ~standby_store:standby.Sls.store () in
  let pclk = primary.Sls.machine.Machine.clock in
  (* primary epoch -> round whose state it committed *)
  let round_of_epoch = Hashtbl.create 32 in
  let kill_round = 1 + Rng.int rng rounds in
  (* Sometimes the primary dies with lag: the last round checkpoints but
     never replicates, so failover must land on an older epoch. *)
  let killed_before_replicate = Rng.bool rng in
  let completed = ref 0 in
  (try
     for r = 1 to kill_round do
       Vm_space.write_string p.Process.space ~addr (state_of_round r);
       (* Touch a second, rotating page so deltas vary in shape. *)
       Vm_space.write_string p.Process.space
         ~addr:(addr + ((1 + (r mod (npages - 1))) * 4096))
         (Printf.sprintf "fill-%d" r);
       ignore (Group.checkpoint ~wait_durable:true group);
       Hashtbl.replace round_of_epoch (Group.last_epoch group) r;
       (* Occasional hard partition on top of the probabilistic faults. *)
       if Rng.int rng 10 = 0 then
         Link.partition link ~now:(Clock.now pclk)
           ~duration:(500_000 + Rng.int rng 2_000_000);
       if not (r = kill_round && killed_before_replicate) then
         ignore (Ha.replicate_result ha);
       incr completed
     done
   with _ -> ());
  (* The primary machine and devices are gone; only the standby's store
     survives.  Failover must recover a manifest-verified epoch. *)
  let takeover = Machine.create () in
  let hstats = Ha.stats ha in
  let base =
    {
      hr_seed = seed;
      hr_rate = rate;
      hr_rounds = !completed;
      hr_shipped = hstats.Ha.ha_shipments;
      hr_source_epoch = 0;
      hr_fallbacks = 0;
      hr_retransmits = hstats.Ha.ha_retransmits;
      hr_dup_acks = hstats.Ha.ha_dup_acks;
      hr_verify_rejects = hstats.Ha.ha_verify_rejects;
      hr_outcome = "match";
      hr_ok = true;
    }
  in
  match Ha.failover_verified ha ~machine:takeover with
  | exception exn ->
      { base with hr_outcome = "uncaught: " ^ Printexc.to_string exn; hr_ok = false }
  | Error err ->
      if Ha.shipped_epoch ha = 0 then
        (* Nothing was ever acknowledged (possible at brutal rates with a
           short run): no epoch to recover is the honest answer. *)
        { base with hr_outcome = "nothing shipped"; hr_ok = true }
      else
        {
          base with
          hr_outcome = "no valid epoch: " ^ Restore.pp_restore_error err;
          hr_ok = false;
        }
  | Ok report -> (
      let source = report.Ha.fo_source_epoch in
      let base =
        {
          base with
          hr_source_epoch = source;
          hr_fallbacks = List.length report.Ha.fo_restore.Restore.vr_skipped;
        }
      in
      match Hashtbl.find_opt round_of_epoch source with
      | None ->
          {
            base with
            hr_outcome = Printf.sprintf "recovered unknown epoch %d" source;
            hr_ok = false;
          }
      | Some round -> (
          if source < Ha.shipped_epoch ha then
            {
              base with
              hr_outcome =
                Printf.sprintf "recovered epoch %d older than acked %d" source
                  (Ha.shipped_epoch ha);
              hr_ok = false;
            }
          else
            match report.Ha.fo_restore.Restore.vr_result.Restore.procs with
            | [ p' ] ->
                let got =
                  Vm_space.read_string p'.Process.space ~addr ~len:state_len
                in
                let want = state_of_round round in
                if got = want then base
                else
                  {
                    base with
                    hr_outcome =
                      Printf.sprintf "epoch %d rendered %S, model says %S"
                        source got want;
                    hr_ok = false;
                  }
            | procs ->
                {
                  base with
                  hr_outcome =
                    Printf.sprintf "expected 1 process, restored %d"
                      (List.length procs);
                  hr_ok = false;
                }))

(* Negative control: corrupt the standby's newest epoch after clean
   replication and demand the fallback loop skips it — recovering the
   previous round's state, never the corrupted bytes. *)
type control = Meta | Page

let negative_control ~seed ~mode =
  let primary = Sls.boot () in
  let p = Syscall.spawn primary.Sls.machine ~name:"svc" in
  let e = Syscall.mmap_anon p ~npages in
  let addr = Vm_space.addr_of_entry e in
  Vm_space.touch_write p.Process.space ~addr ~len:(npages * 4096);
  let group = Sls.attach primary [ p ] in
  let standby = Sls.boot () in
  let link = Link.create ~name:"ha-control" () in
  ignore seed;
  let ha = Ha.create ~link ~primary:group ~standby_store:standby.Sls.store () in
  let rounds = 3 in
  for r = 1 to rounds do
    Vm_space.write_string p.Process.space ~addr (state_of_round r);
    ignore (Group.checkpoint ~wait_durable:true group);
    match Ha.replicate_result ha with
    | Ok _ -> ()
    | Error msg -> failwith ("control replication failed: " ^ msg)
  done;
  let store = standby.Sls.store in
  let newest = Store.last_complete_epoch store in
  (* Corrupt a non-manifest object in the newest standby epoch. *)
  let victim =
    match
      List.find_opt
        (fun (_, kind) -> kind = Aurora_core.Serial.kind_memobj)
        (Store.objects_at store ~epoch:newest)
    with
    | Some (oid, _) -> oid
    | None -> failwith "control: no memory object in newest epoch"
  in
  (match mode with
  | Meta -> Store.corrupt_meta_for_tests store ~epoch:newest ~oid:victim
  | Page -> Store.corrupt_page_for_tests store ~epoch:newest ~oid:victim);
  let takeover = Machine.create () in
  match Ha.failover_verified ha ~machine:takeover with
  | Error err -> Error ("no epoch recovered: " ^ Restore.pp_restore_error err)
  | Ok report -> (
      let v = report.Ha.fo_restore in
      let skipped_newest =
        List.exists
          (fun (a : Restore.attempt) -> a.Restore.at_epoch = newest)
          v.Restore.vr_skipped
      in
      if not skipped_newest then
        Error
          (Printf.sprintf "corrupted epoch %d was not skipped (restored %d)"
             newest v.Restore.vr_epoch)
      else
        match v.Restore.vr_result.Restore.procs with
        | [ p' ] ->
            let got = Vm_space.read_string p'.Process.space ~addr ~len:state_len in
            let want = state_of_round (rounds - 1) in
            if got = want then Ok ()
            else
              Error
                (Printf.sprintf "fallback rendered %S, model says %S" got want)
        | procs ->
            Error (Printf.sprintf "expected 1 process, restored %d" (List.length procs)))

(* Sweeps ------------------------------------------------------------------------- *)

type sweep_report = {
  h_runs : int;
  h_ok : int;
  h_shipments : int;
  h_retransmits : int;
  h_dup_acks : int;
  h_verify_rejects : int;
  h_fallbacks : int;
  h_failures : run_report list;
}

let sweep ~seed ~runs_per_rate ~rates ~rounds =
  let reports =
    List.concat_map
      (fun rate ->
        List.init runs_per_rate (fun i ->
            run ~seed:(seed + (i * 131) + int_of_float (rate *. 10_000.)) ~rounds
              ~rate))
      rates
  in
  {
    h_runs = List.length reports;
    h_ok = List.length (List.filter (fun r -> r.hr_ok) reports);
    h_shipments = List.fold_left (fun a r -> a + r.hr_shipped) 0 reports;
    h_retransmits = List.fold_left (fun a r -> a + r.hr_retransmits) 0 reports;
    h_dup_acks = List.fold_left (fun a r -> a + r.hr_dup_acks) 0 reports;
    h_verify_rejects =
      List.fold_left (fun a r -> a + r.hr_verify_rejects) 0 reports;
    h_fallbacks = List.fold_left (fun a r -> a + r.hr_fallbacks) 0 reports;
    h_failures = List.filter (fun r -> not r.hr_ok) reports;
  }

let pp_run r =
  Printf.sprintf
    "seed=%d rate=%.3f rounds=%d shipped=%d source=%d fallbacks=%d \
     retx=%d dups=%d rejects=%d: %s"
    r.hr_seed r.hr_rate r.hr_rounds r.hr_shipped r.hr_source_epoch
    r.hr_fallbacks r.hr_retransmits r.hr_dup_acks r.hr_verify_rejects
    r.hr_outcome
