(** HA torture: checkpoint shipping and failover under network faults.

    Each run boots a primary service under continuous checkpointing,
    ships every epoch to a standby store through a {!Aurora_net.Link}
    with an injected fault profile (drops, duplicates, reordering,
    corruption, hard partitions), kills the primary at a random round —
    sometimes before the final replicate, leaving the standby lagging —
    and fails over.  The recovered state must byte-match the reference
    model at exactly the primary epoch the failover reports, the
    reported epoch must be no older than the last acknowledged one, and
    nothing may escape as an uncaught exception.

    The negative control corrupts the standby's newest epoch after a
    clean replication and demands the epoch-fallback loop demonstrably
    skip it.  Everything is deterministic from the seed. *)

type run_report = {
  hr_seed : int;
  hr_rate : float;
  hr_rounds : int;  (** rounds the primary completed before the kill *)
  hr_shipped : int;  (** primary epochs acked by the standby *)
  hr_source_epoch : int;  (** primary epoch the failover recovered *)
  hr_fallbacks : int;  (** epochs skipped by the fallback loop *)
  hr_retransmits : int;
  hr_dup_acks : int;
  hr_verify_rejects : int;
  hr_outcome : string;  (** "match" or the failure detail *)
  hr_ok : bool;
}

val run :
  ?speculative:bool -> seed:int -> rounds:int -> rate:float -> unit -> run_report
(** One deterministic torture run at the given link fault rate
    ({!Aurora_net.Link.lossy_profile}).  With [~speculative:true] the
    primary checkpoints in soft-quiesce mode and a run hook mutates a
    scratch page inside every speculation window, so each shipped epoch
    carries validated conflict splices; when the primary dies with lag
    (or mid-speculation), failover must still land on a previous
    model-consistent epoch — never a half-spliced image. *)

type control = Meta | Page

val negative_control : seed:int -> mode:control -> (unit, string) result
(** Replicate cleanly, corrupt the standby's newest epoch (object
    metadata or a page payload), fail over: [Ok ()] iff the corrupted
    epoch was skipped and the previous round's state came back intact. *)

type sweep_report = {
  h_runs : int;
  h_ok : int;
  h_shipments : int;
  h_retransmits : int;
  h_dup_acks : int;
  h_verify_rejects : int;
  h_fallbacks : int;
  h_failures : run_report list;
}

val sweep :
  ?speculative:bool ->
  seed:int ->
  runs_per_rate:int ->
  rates:float list ->
  rounds:int ->
  unit ->
  sweep_report
(** [runs_per_rate] independent runs at every fault rate in [rates]. *)

val pp_run : run_report -> string

(** {1 Quorum torture}

    The N-standby generalisation: a primary pipelines epochs through
    {!Aurora_core.Replica_set} to N standbys over independently faulty
    links (probabilistic faults plus scripted
    {!Aurora_net.Link.partition_at} windows), a random minority is
    killed at random rounds, evicted survivors rejoin via catch-up, and
    externally-synchronized messages buffer until quorum.  When the
    primary dies the survivors elect; the run passes only if the
    election converges on an epoch no older than the quorum commit
    point, every survivor's vote is no newer than the winner's, the
    restored state matches the reference model, and no released message
    came from the discarded window. *)

type quorum_report = {
  qr_seed : int;
  qr_rate : float;
  qr_n : int;
  qr_rounds : int;
  qr_killed : int list;  (** standby indexes killed mid-run *)
  qr_quorum_epoch : int;  (** quorum commit point when the primary died *)
  qr_source_epoch : int;  (** primary epoch the election restored *)
  qr_winner : int;
  qr_votes : int;
  qr_evictions : int;
  qr_rejoins : int;
  qr_retransmits : int;
  qr_released : int;  (** outbox messages released at quorum *)
  qr_dropped : int;  (** outbox messages dropped with the lost window *)
  qr_outcome : string;
  qr_ok : bool;
}

val quorum_run : seed:int -> rounds:int -> rate:float -> n:int -> quorum_report

val pp_quorum : quorum_report -> string

type quorum_sweep_report = {
  q_runs : int;
  q_ok : int;
  q_evictions : int;
  q_rejoins : int;
  q_retransmits : int;
  q_released : int;
  q_dropped : int;
  q_failures : quorum_report list;
}

val quorum_sweep :
  seed:int ->
  runs_per_cell:int ->
  rates:float list ->
  ns:int list ->
  rounds:int ->
  quorum_sweep_report
(** [runs_per_cell] independent runs for every (replica count, fault
    rate) cell. *)

(** {1 Pipelined vs stop-and-wait} *)

type pipeline_report = {
  pl_rounds : int;
  pl_n : int;
  pl_rate : float;
  pl_sw_plane_ns : int;  (** stop-and-wait: primary time blocked shipping *)
  pl_pipe_plane_ns : int;  (** pipelined: ship calls plus the final drain *)
  pl_sw_total_ns : int;
  pl_pipe_total_ns : int;
  pl_speedup : float;  (** plane-time ratio, the figure the gate checks *)
  pl_sw_ok : bool;  (** every stop-and-wait shipment eventually acked *)
  pl_pipe_ok : bool;  (** pipeline drained with no standby evicted *)
}

val pipeline_vs_stop_and_wait :
  seed:int -> rounds:int -> rate:float -> n:int -> pipeline_report
(** Same workload, same fault profile, N standbys: replication-plane
    time (primary virtual time blocked in the shipping protocol) under
    the stop-and-wait {!Aurora_core.Ha} versus the pipelined
    {!Aurora_core.Replica_set}.  Checkpoint production is excluded — it
    is identical on both sides. *)

(** {1 Live migration} *)

type migration_check = {
  mc_report : Aurora_core.Replica_set.migration_report;
  mc_period_ns : int;  (** the group's checkpoint period, the gate unit *)
  mc_downtime_periods : float;
  mc_ok : bool;  (** identical, verified source, downtime ≤ 2 periods *)
  mc_outcome : string;
}

val migration_run : seed:int -> rate:float -> migration_check
(** One live migration of a service with a shrinking dirty set over a
    link at the given fault rate: pre-copy must converge, the cut-over
    downtime must fit in two checkpoint periods, and the migrated
    epoch must be byte-identical to the source. *)
