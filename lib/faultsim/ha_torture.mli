(** HA torture: checkpoint shipping and failover under network faults.

    Each run boots a primary service under continuous checkpointing,
    ships every epoch to a standby store through a {!Aurora_net.Link}
    with an injected fault profile (drops, duplicates, reordering,
    corruption, hard partitions), kills the primary at a random round —
    sometimes before the final replicate, leaving the standby lagging —
    and fails over.  The recovered state must byte-match the reference
    model at exactly the primary epoch the failover reports, the
    reported epoch must be no older than the last acknowledged one, and
    nothing may escape as an uncaught exception.

    The negative control corrupts the standby's newest epoch after a
    clean replication and demands the epoch-fallback loop demonstrably
    skip it.  Everything is deterministic from the seed. *)

type run_report = {
  hr_seed : int;
  hr_rate : float;
  hr_rounds : int;  (** rounds the primary completed before the kill *)
  hr_shipped : int;  (** primary epochs acked by the standby *)
  hr_source_epoch : int;  (** primary epoch the failover recovered *)
  hr_fallbacks : int;  (** epochs skipped by the fallback loop *)
  hr_retransmits : int;
  hr_dup_acks : int;
  hr_verify_rejects : int;
  hr_outcome : string;  (** "match" or the failure detail *)
  hr_ok : bool;
}

val run : seed:int -> rounds:int -> rate:float -> run_report
(** One deterministic torture run at the given link fault rate
    ({!Aurora_net.Link.lossy_profile}). *)

type control = Meta | Page

val negative_control : seed:int -> mode:control -> (unit, string) result
(** Replicate cleanly, corrupt the standby's newest epoch (object
    metadata or a page payload), fail over: [Ok ()] iff the corrupted
    epoch was skipped and the previous round's state came back intact. *)

type sweep_report = {
  h_runs : int;
  h_ok : int;
  h_shipments : int;
  h_retransmits : int;
  h_dup_acks : int;
  h_verify_rejects : int;
  h_fallbacks : int;
  h_failures : run_report list;
}

val sweep :
  seed:int ->
  runs_per_rate:int ->
  rates:float list ->
  rounds:int ->
  sweep_report
(** [runs_per_rate] independent runs at every fault rate in [rates]. *)

val pp_run : run_report -> string
