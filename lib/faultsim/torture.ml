module Clock = Aurora_sim.Clock
module Fault = Aurora_block.Fault
module Striped = Aurora_block.Striped
module Store = Aurora_objstore.Store
module Rng = Aurora_util.Rng

(* Virtual time a single recovery may consume before the watchdog trips:
   generous for any sane read-retry schedule, small enough to catch a
   recovery that spins. *)
let recovery_budget_ns = 10_000_000_000

(* Canonical observation of a (typically just-recovered) store, in exactly
   the format Model.render_parts produces: (epochs, journals). *)
let observe_parts store =
  let eb = Buffer.create 1024 in
  List.iter
    (fun epoch ->
      Buffer.add_string eb (Printf.sprintf "E%d\n" epoch);
      List.iter
        (fun (oid, kind) ->
          let meta = Store.read_meta store ~epoch ~oid in
          let pages =
            Store.read_pages store ~epoch ~oid
            |> List.map (fun (idx, payload) ->
                   Printf.sprintf "%d:%s" idx (String.escaped (Bytes.to_string payload)))
            |> String.concat ","
          in
          Buffer.add_string eb
            (Printf.sprintf "O%d|%s|%s|%s;\n" oid kind (String.escaped meta) pages))
        (Store.objects_at store ~epoch))
    (Store.checkpoint_epochs store);
  let jb = Buffer.create 256 in
  let rec probe id =
    match Store.journal_find store id with
    | None -> ()
    | Some j ->
        Buffer.add_string jb
          (Printf.sprintf "J%d|%s;\n" id
             (String.concat ","
                (List.map String.escaped (Store.journal_records store j))));
        probe (id + 1)
  in
  probe 1;
  (Buffer.contents eb, Buffer.contents jb)

let observe store =
  let e, j = observe_parts store in
  e ^ j

(* Recording run ------------------------------------------------------------ *)

type recording = {
  rc_eps : string array; (* model epoch render after first k ops, k in 0..N *)
  rc_jrn : string array; (* model journal render after first k ops *)
  rc_guarantees : int array;
      (* rc_guarantees.(k): crash at T >= it implies snapshot k is durable.
         Running max of per-op durability times — Store.durable_at for
         asynchronous checkpoints, the post-op clock for synchronous ops. *)
  rc_timeline : (int, int) Hashtbl.t; (* submission index -> ack completion *)
  rc_submissions : int;
}

let record ?(misorder = false) ops =
  let ops_a = Array.of_list ops in
  let n = Array.length ops_a in
  let clock = Clock.create () in
  let dev = Striped.create () in
  let store = Store.format ~dev ~clock in
  if misorder then Store.set_torture_misorder store true;
  (* The fault handler goes in after format: submission 1 is the first
     workload write, and the enumerator never crashes inside format. *)
  let fault, timeline = Injector.counting () in
  Striped.set_fault dev (Some fault);
  let runner = Workload.runner store in
  let model = Model.create () in
  let eps = Array.make (n + 1) "" in
  let jrn = Array.make (n + 1) "" in
  let gua = Array.make (n + 1) 0 in
  let e0, j0 = Model.render_parts model in
  eps.(0) <- e0;
  jrn.(0) <- j0;
  Array.iteri
    (fun i op ->
      Workload.run_op runner op;
      Model.apply model op;
      let e, j = Model.render_parts model in
      eps.(i + 1) <- e;
      jrn.(i + 1) <- j;
      let g_op =
        match op with
        | Workload.Checkpoint _ -> Store.durable_at store
        | Workload.Advance _ -> gua.(i)
        | _ -> Clock.now clock
      in
      gua.(i + 1) <- max gua.(i) g_op)
    ops_a;
  Striped.set_fault dev None;
  {
    rc_eps = eps;
    rc_jrn = jrn;
    rc_guarantees = gua;
    rc_timeline = timeline;
    rc_submissions = Fault.submissions fault;
  }

(* Replay [ops] against a fresh store with a crash planted at global device
   submission [stop]; returns the crashed device, the virtual time at which
   Crash_point fired (None if the workload completed first) and how many
   ops finished. *)
let replay_to_crash ?(misorder = false) ops ~stop =
  let clock = Clock.create () in
  let dev = Striped.create () in
  let store = Store.format ~dev ~clock in
  if misorder then Store.set_torture_misorder store true;
  Striped.set_fault dev (Some (Injector.crash_at ~index:stop));
  let runner = Workload.runner store in
  let ops_done = ref 0 in
  let crash_now =
    try
      List.iter
        (fun op ->
          Workload.run_op runner op;
          incr ops_done)
        ops;
      None
    with Fault.Crash_point { now; _ } -> Some now
  in
  Striped.set_fault dev None;
  (dev, crash_now, !ops_done)

(* Crash-point enumeration --------------------------------------------------- *)

type failure = {
  f_boundary : int;
  f_mode : string;
  f_crash_time : int;
  f_detail : string;
}

type report = {
  r_boundaries : int;
  r_crash_points : int;
  r_failures : failure list;
}

let pp_failure f =
  Printf.sprintf "boundary %d (%s, T=%d): %s" f.f_boundary f.f_mode f.f_crash_time
    f.f_detail

let recover_observed dev ~crash_time =
  let rclock = Clock.create () in
  Clock.on_advance rclock (fun t ->
      if t > crash_time + recovery_budget_ns then
        failwith "recovery watchdog: virtual-time budget exhausted");
  let store = Store.recover ~dev ~clock:rclock in
  observe_parts store

(* One crash scenario: replay to [stop], cut durability at [crash_time],
   recover, and demand the observation equals some model snapshot in the
   window the durability guarantees allow.  Epochs and journals may match
   different snapshots: checkpoint durability is asynchronous while journal
   appends are synchronous, so the journals legitimately run ahead. *)
let check_point rc ops ~misorder ~nops ~boundary ~mode ~stop ~time =
  let dev, crash_now, ops_done = replay_to_crash ~misorder ops ~stop in
  let crash_time =
    match time with
    | `At_raise -> ( match crash_now with Some t -> t | None -> 0)
    | `Fixed t -> t
  in
  Striped.crash dev ~now:crash_time;
  (* An op interrupted mid-flight may have made its decisive write durable
     already (e.g. a truncate's generation bump), so the in-progress op's
     snapshot stays in the window. *)
  let ub = match crash_now with Some _ -> min nops (ops_done + 1) | None -> nops in
  (* Durability guarantees assume the op issued all of its writes, so they
     bind only up to the last op that finished: the in-progress op's
     submissions were cut off, and [crash_time] can lie far past the cut
     (a crashed host whose device drained its queue). *)
  let lb =
    let glimit = match crash_now with Some _ -> ops_done | None -> nops in
    let rec go best k =
      if k > glimit then best
      else if rc.rc_guarantees.(k) <= crash_time then go k (k + 1)
      else best
    in
    go 0 0
  in
  match recover_observed dev ~crash_time with
  | eobs, jobs ->
      let find arr target =
        let rec go k =
          if k > ub then None else if arr.(k) = target then Some k else go (k + 1)
        in
        go lb
      in
      let me = find rc.rc_eps eobs and mj = find rc.rc_jrn jobs in
      if me <> None && mj <> None then None
      else
        let side name = function
          | Some k -> Printf.sprintf "%s = snapshot %d" name k
          | None -> Printf.sprintf "%s matches none" name
        in
        Some
          {
            f_boundary = boundary;
            f_mode = mode;
            f_crash_time = crash_time;
            f_detail =
              Printf.sprintf "no snapshot in [%d,%d] fits (%s; %s)" lb ub
                (side "epochs" me) (side "journals" mj);
          }
  | exception exn ->
      Some
        {
          f_boundary = boundary;
          f_mode = mode;
          f_crash_time = crash_time;
          f_detail = "recovery raised " ^ Printexc.to_string exn;
        }

let enumerate ?(misorder = false) ops =
  let rc = record ~misorder ops in
  let nops = List.length ops in
  let failures = ref [] in
  let points = ref 0 in
  let run ~boundary ~mode ~stop ~time =
    incr points;
    match check_point rc ops ~misorder ~nops ~boundary ~mode ~stop ~time with
    | None -> ()
    | Some f -> failures := f :: !failures
  in
  for k = 1 to rc.rc_submissions do
    let completion =
      match Hashtbl.find_opt rc.rc_timeline k with
      | Some c -> c
      | None -> invalid_arg "Torture.enumerate: missing timeline entry"
    in
    (* Three durability horizons around boundary k: before its submission
       is issued, after it is issued but before it completes, and exactly
       at its completion. *)
    run ~boundary:k ~mode:"pre-submit" ~stop:k ~time:`At_raise;
    run ~boundary:k ~mode:"pre-complete" ~stop:(k + 1) ~time:(`Fixed (completion - 1));
    run ~boundary:k ~mode:"post-complete" ~stop:(k + 1) ~time:(`Fixed completion)
  done;
  {
    r_boundaries = rc.rc_submissions;
    r_crash_points = !points;
    r_failures = List.rev !failures;
  }

(* Two-group interleaved enumeration ----------------------------------------- *)

type side = A | B

let side_name = function A -> "A" | B -> "B"

let interleave a b =
  let rec zip acc xs ys =
    match (xs, ys) with
    | [], [] -> List.rev acc
    | x :: xs', [] -> zip ((A, x) :: acc) xs' []
    | [], y :: ys' -> zip ((B, y) :: acc) [] ys'
    | x :: xs', y :: ys' -> zip ((B, y) :: (A, x) :: acc) xs' ys'
  in
  zip [] a b

type pair_recording = {
  pc_eps : string array array; (* side -> render after first k combined ops *)
  pc_jrn : string array array;
  pc_gua : int array array; (* per-side durability guarantees, combined index *)
  pc_timeline : (int, int) Hashtbl.t;
  pc_submissions : int;
}

let sidx = function A -> 0 | B -> 1

(* Record the interleaved workload once: two stores on two striped arrays
   sharing one clock and ONE counting fault handler, so a submission index
   names a global boundary across both tenants' devices. *)
let record_pair ops =
  let ops_a = Array.of_list ops in
  let n = Array.length ops_a in
  let clock = Clock.create () in
  let dev_a = Striped.create () and dev_b = Striped.create () in
  let store_a = Store.format ~dev:dev_a ~clock in
  let store_b = Store.format ~dev:dev_b ~clock in
  let fault, timeline = Injector.counting () in
  Striped.set_fault dev_a (Some fault);
  Striped.set_fault dev_b (Some fault);
  let runners = [| Workload.runner store_a; Workload.runner store_b |] in
  let stores = [| store_a; store_b |] in
  let models = [| Model.create (); Model.create () |] in
  let eps = Array.init 2 (fun _ -> Array.make (n + 1) "") in
  let jrn = Array.init 2 (fun _ -> Array.make (n + 1) "") in
  let gua = Array.init 2 (fun _ -> Array.make (n + 1) 0) in
  for s = 0 to 1 do
    let e0, j0 = Model.render_parts models.(s) in
    eps.(s).(0) <- e0;
    jrn.(s).(0) <- j0
  done;
  Array.iteri
    (fun i (side, op) ->
      let s = sidx side in
      Workload.run_op runners.(s) op;
      Model.apply models.(s) op;
      for s' = 0 to 1 do
        if s' = s then begin
          let e, j = Model.render_parts models.(s') in
          eps.(s').(i + 1) <- e;
          jrn.(s').(i + 1) <- j;
          let g_op =
            match op with
            | Workload.Checkpoint _ -> Store.durable_at stores.(s')
            | Workload.Advance _ -> gua.(s').(i)
            | _ -> Clock.now clock
          in
          gua.(s').(i + 1) <- max gua.(s').(i) g_op
        end
        else begin
          (* The other tenant's state is untouched by this op. *)
          eps.(s').(i + 1) <- eps.(s').(i);
          jrn.(s').(i + 1) <- jrn.(s').(i);
          gua.(s').(i + 1) <- gua.(s').(i)
        end
      done)
    ops_a;
  Striped.set_fault dev_a None;
  Striped.set_fault dev_b None;
  {
    pc_eps = eps;
    pc_jrn = jrn;
    pc_gua = gua;
    pc_timeline = timeline;
    pc_submissions = Fault.submissions fault;
  }

let replay_pair_to_crash ops ~stop =
  let clock = Clock.create () in
  let dev_a = Striped.create () and dev_b = Striped.create () in
  let store_a = Store.format ~dev:dev_a ~clock in
  let store_b = Store.format ~dev:dev_b ~clock in
  let fault = Injector.crash_at ~index:stop in
  Striped.set_fault dev_a (Some fault);
  Striped.set_fault dev_b (Some fault);
  let runners = [| Workload.runner store_a; Workload.runner store_b |] in
  let ops_done = ref 0 in
  let crash_now =
    try
      List.iter
        (fun (side, op) ->
          Workload.run_op runners.(sidx side) op;
          incr ops_done)
        ops;
      None
    with Fault.Crash_point { now; _ } -> Some now
  in
  Striped.set_fault dev_a None;
  Striped.set_fault dev_b None;
  ([| dev_a; dev_b |], crash_now, !ops_done)

(* One pair crash scenario: the host crash cuts BOTH tenants' devices at
   the same durability horizon; each tenant must then recover to one of
   its own model snapshots inside its own durability window.  A crash
   planted mid-flush of tenant A exercises exactly the cross-tenant
   hazard: B's recovery runs against a device whose last writes were cut
   by A's activity pattern, and must still land on a consistent epoch. *)
let check_pair_point rc ops ~nops ~boundary ~mode ~stop ~time =
  let devs, crash_now, ops_done = replay_pair_to_crash ops ~stop in
  let crash_time =
    match time with
    | `At_raise -> ( match crash_now with Some t -> t | None -> 0)
    | `Fixed t -> t
  in
  Array.iter (fun dev -> Striped.crash dev ~now:crash_time) devs;
  let ub = match crash_now with Some _ -> min nops (ops_done + 1) | None -> nops in
  let glimit = match crash_now with Some _ -> ops_done | None -> nops in
  let check_side side =
    let s = sidx side in
    let lb =
      let rec go best k =
        if k > glimit then best
        else if rc.pc_gua.(s).(k) <= crash_time then go k (k + 1)
        else best
      in
      go 0 0
    in
    match recover_observed devs.(s) ~crash_time with
    | eobs, jobs ->
        let find arr target =
          let rec go k =
            if k > ub then None
            else if arr.(k) = target then Some k
            else go (k + 1)
          in
          go lb
        in
        let me = find rc.pc_eps.(s) eobs and mj = find rc.pc_jrn.(s) jobs in
        if me <> None && mj <> None then None
        else
          let part name = function
            | Some k -> Printf.sprintf "%s = snapshot %d" name k
            | None -> Printf.sprintf "%s matches none" name
          in
          Some
            {
              f_boundary = boundary;
              f_mode = mode;
              f_crash_time = crash_time;
              f_detail =
                Printf.sprintf "tenant %s: no snapshot in [%d,%d] fits (%s; %s)"
                  (side_name side) lb ub (part "epochs" me) (part "journals" mj);
            }
    | exception exn ->
        Some
          {
            f_boundary = boundary;
            f_mode = mode;
            f_crash_time = crash_time;
            f_detail =
              Printf.sprintf "tenant %s: recovery raised %s" (side_name side)
                (Printexc.to_string exn);
          }
  in
  match (check_side A, check_side B) with
  | None, None -> []
  | fa, fb -> List.filter_map (fun x -> x) [ fa; fb ]

let enumerate_pair ops_a ops_b =
  let ops = interleave ops_a ops_b in
  let rc = record_pair ops in
  let nops = List.length ops in
  let failures = ref [] in
  let points = ref 0 in
  let run ~boundary ~mode ~stop ~time =
    incr points;
    match check_pair_point rc ops ~nops ~boundary ~mode ~stop ~time with
    | [] -> ()
    | fs -> failures := List.rev_append fs !failures
  in
  for k = 1 to rc.pc_submissions do
    let completion =
      match Hashtbl.find_opt rc.pc_timeline k with
      | Some c -> c
      | None -> invalid_arg "Torture.enumerate_pair: missing timeline entry"
    in
    run ~boundary:k ~mode:"pre-submit" ~stop:k ~time:`At_raise;
    run ~boundary:k ~mode:"pre-complete" ~stop:(k + 1) ~time:(`Fixed (completion - 1));
    run ~boundary:k ~mode:"post-complete" ~stop:(k + 1) ~time:(`Fixed completion)
  done;
  {
    r_boundaries = rc.pc_submissions;
    r_crash_points = !points;
    r_failures = List.rev !failures;
  }

(* Randomized fault sweeps ---------------------------------------------------- *)

type sweep_report = {
  s_runs : int;
  s_final_matches : int; (* recovered/observed state == the model's final state *)
  s_detected : int; (* recovery or observation raised: corruption detected *)
  s_degraded : int;
      (* parseable but different state.  Without block checksums the store
         cannot always detect silently dropped writes; these are counted,
         not failed. *)
  s_read_faults : int; (* transient read errors absorbed by store retries *)
}

let read_only_profile (p : Injector.profile) =
  p.p_drop = 0. && p.p_torn = 0. && p.p_delay = 0.

let sweep ~seed ~runs (profile : Injector.profile) =
  let final_matches = ref 0 in
  let detected = ref 0 in
  let degraded = ref 0 in
  let read_faults = ref 0 in
  for r = 0 to runs - 1 do
    let rng = Rng.create (seed + (r * 7919)) in
    let ops = Workload.gen_ops rng ~n:12 ~max_oid:6 ~max_pages:20 in
    let model = Model.create () in
    List.iter (Model.apply model) ops;
    let want = Model.render model in
    let clock = Clock.create () in
    let dev = Striped.create () in
    let store = Store.format ~dev ~clock in
    if profile.p_read_fail > 0. || profile.p_flip > 0. then
      (* Deep retry budget so a sweep-scale observation survives unlucky
         streaks; persistence past it still surfaces as Io_error. *)
      Store.set_read_policy store ~retries:8 ~backoff_ns:20_000;
    Striped.set_fault dev (Some (Injector.random ~seed:(seed lxor (r * 31)) profile));
    let runner = Workload.runner store in
    List.iter (Workload.run_op runner) ops;
    Store.wait_durable store;
    Striped.settle dev ~clock;
    if read_only_profile profile then begin
      (* Read-path faults leave the media intact: observing the live store
         through the installed fault must still reproduce the model, with
         the retry policy absorbing the transient errors. *)
      (match observe store with
      | obs -> if obs = want then incr final_matches else incr degraded
      | exception _ -> incr detected);
      read_faults := !read_faults + Store.read_faults store
    end
    else begin
      Striped.set_fault dev None;
      Striped.crash dev ~now:(Clock.now clock);
      match
        let eobs, jobs = recover_observed dev ~crash_time:(Clock.now clock) in
        eobs ^ jobs
      with
      | obs -> if obs = want then incr final_matches else incr degraded
      | exception _ -> incr detected
    end
  done;
  {
    s_runs = runs;
    s_final_matches = !final_matches;
    s_detected = !detected;
    s_degraded = !degraded;
    s_read_faults = !read_faults;
  }
