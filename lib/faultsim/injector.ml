module Fault = Aurora_block.Fault
module Rng = Aurora_util.Rng

(* Crash exactly at a device-submission boundary: the [index]-th global
   submission (1-based) is about to be issued when Crash_point fires, so
   nothing of it — or anything after it — reaches the device. *)
let crash_at ~index =
  let f = Fault.create () in
  f.Fault.on_write <-
    (fun (info : Fault.write_info) ->
      if info.w_index >= index then
        raise (Fault.Crash_point { index = info.w_index; now = info.w_now });
      Fault.Land);
  f

(* Observe-only handler: records each submission's acknowledged completion
   time, indexed by the shared 1-based submission counter. *)
let counting () =
  let timeline : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let f = Fault.create () in
  f.Fault.on_complete <-
    (fun (info : Fault.write_info) ~completion ->
      Hashtbl.replace timeline info.w_index completion);
  (f, timeline)

type profile = {
  p_drop : float;  (** acknowledged write silently lost *)
  p_torn : float;  (** only a prefix of the submission lands *)
  p_delay : float;  (** durability lags the acknowledged completion *)
  max_delay_ns : int;
  p_read_fail : float;  (** charged read raises [Fault.Io_error] *)
  p_flip : float;  (** charged read returns corrupted bytes *)
}

let no_faults =
  {
    p_drop = 0.;
    p_torn = 0.;
    p_delay = 0.;
    max_delay_ns = 0;
    p_read_fail = 0.;
    p_flip = 0.;
  }

let read_errors_profile p = { no_faults with p_read_fail = p }
let write_loss_profile p = { no_faults with p_drop = p /. 2.; p_torn = p /. 2. }

let random ~seed profile =
  let wrng = Rng.create seed in
  let rrng = Rng.create (seed lxor 0x5deece66d) in
  let f = Fault.create () in
  f.Fault.on_write <-
    (fun (info : Fault.write_info) ->
      let roll = Rng.float wrng 1.0 in
      if roll < profile.p_drop then Fault.Drop
      else if roll < profile.p_drop +. profile.p_torn then
        (* Tear inside the submission: extents keep a strict prefix of
           their segments, plain writes a prefix of whole sectors. *)
        Fault.Torn
          (if info.w_segments > 1 then Rng.int wrng info.w_segments
           else Rng.int wrng (max 1 (info.w_len / 4096)))
      else if
        roll < profile.p_drop +. profile.p_torn +. profile.p_delay
        && profile.max_delay_ns > 0
      then Fault.Delay (Rng.int_in wrng 1 profile.max_delay_ns)
      else Fault.Land);
  f.Fault.on_read <-
    (fun (info : Fault.read_info) ->
      let roll = Rng.float rrng 1.0 in
      if roll < profile.p_read_fail then Fault.Fail
      else if roll < profile.p_read_fail +. profile.p_flip then
        Fault.Flip [ Rng.int rrng (max 1 info.r_len) ]
      else Fault.Clean);
  f

(* Fail the first [n] charged reads, then behave; exercises the store's
   retry/backoff policy deterministically. *)
let failing_reads ~n =
  let remaining = ref n in
  let f = Fault.create () in
  f.Fault.on_read <-
    (fun _ ->
      if !remaining > 0 then begin
        decr remaining;
        Fault.Fail
      end
      else Fault.Clean);
  f
