(** Crash-consistency torture: systematic crash-point enumeration and
    randomized fault sweeps over the object store.

    {2 Enumeration}

    {!enumerate} records a workload once against a fault-free store (with
    the reference {!Model} applied op for op), noting every global
    device-submission boundary and its acknowledged completion time.  It
    then replays the workload from scratch for every boundary [k] under
    three durability horizons — before submission [k] is issued
    ([pre-submit]), after it is issued but one tick before it completes
    ([pre-complete]), and exactly at its completion ([post-complete]) —
    cuts the device there ([Striped.crash]), runs [Store.recover], and
    demands the recovered state byte-match a model snapshot inside the
    window the durability guarantees allow.  Epoch and journal state may
    match different snapshots in that window: checkpoint durability is
    asynchronous while journal appends are synchronous, so journals
    legitimately run ahead of epochs.

    Everything is deterministic: a failure names its boundary, mode and
    crash time, and re-running the same workload reproduces it. *)

val observe : Aurora_objstore.Store.t -> string
(** Canonical render of the store's visible state (same format as
    {!Model.render}); reads go through the charged, retrying read path. *)

type failure = {
  f_boundary : int;  (** 1-based global device-submission index *)
  f_mode : string;  (** pre-submit | pre-complete | post-complete *)
  f_crash_time : int;  (** durability horizon passed to [Striped.crash] *)
  f_detail : string;
}

type report = {
  r_boundaries : int;  (** device submissions the workload issued *)
  r_crash_points : int;  (** crash scenarios executed (3 per boundary) *)
  r_failures : failure list;
}

val pp_failure : failure -> string

val enumerate : ?misorder:bool -> Workload.op list -> report
(** Crash everywhere, recover everywhere, compare everywhere.  With
    [~misorder:true] the store's deliberate metadata-before-data bug knob
    ({!Aurora_objstore.Store.set_torture_misorder}) is switched on — the
    enumeration is then expected to return failures; that expectation is
    itself a test that the harness can catch ordering bugs. *)

(** {2 Two-group interleaved enumeration}

    The multi-tenant variant: two stores on two striped arrays share one
    virtual clock and ONE counting fault handler, so a submission index
    names a global device-submission boundary across both tenants.  The
    two workloads are interleaved round-robin and each boundary is crashed
    under the same three durability horizons; the host crash cuts both
    devices at the same time, and each tenant's recovery must
    independently land on one of its own model snapshots inside its own
    durability window.  A crash planted mid-flush of tenant A must never
    leave tenant B unrecoverable — any such corruption shows up as a
    [tenant B] failure. *)

type side = A | B

val interleave : Workload.op list -> Workload.op list -> (side * Workload.op) list
(** Round-robin merge (A first); the tail of the longer list runs out
    solo. *)

val enumerate_pair : Workload.op list -> Workload.op list -> report
(** Enumerate every crash point of the interleaved two-tenant workload.
    Failures carry the affected tenant in [f_detail]. *)

(** {2 Randomized sweeps} *)

type sweep_report = {
  s_runs : int;
  s_final_matches : int;
  s_detected : int;
  s_degraded : int;
      (** parseable-but-different outcomes under silent write loss; counted
          rather than failed because the store has no block checksums *)
  s_read_faults : int;
}

val sweep : seed:int -> runs:int -> Injector.profile -> sweep_report
(** Run [runs] random workloads (deterministic from [seed]) under the
    given fault profile.  Read-only profiles observe the live store
    through the injector and must reproduce the model exactly (retries
    absorbing every transient error); write-loss profiles crash and
    recover, classifying each outcome. *)
