(** Shared flush-bandwidth arbitration across consistency groups.

    Hundreds of tenants checkpointing against the same striped array all
    drain through one physical bus.  The arbiter models that bus as a
    single FCFS lane at the array's aggregate bandwidth, with per-tenant
    attribution (bytes, lane service time, lane wait time) and a weighted
    TDM schedule of per-tenant flush windows used for admission control:
    a tenant whose next epoch cannot fit the remaining budget of its own
    window is delayed to its next window, and an epoch that could never
    fit any window is rejected outright.

    The lane never reorders: each grant occupies it for
    [bytes / bandwidth] and the grant's completion lower-bounds the
    write's durability on the member devices.  A device with no arbiter
    installed behaves exactly as before, so single-tenant workloads (and
    every pre-fleet golden trace) are unchanged. *)

type t

type tenant
(** A registered consumer of the lane; carries its own attribution. *)

type decision =
  | Admit
  | Delay of int  (** wait this many ns for the tenant's next window *)
  | Reject  (** the epoch can never fit the tenant's window *)

val create : name:string -> bandwidth:int -> period_ns:int -> t
(** [bandwidth] is the aggregate array bandwidth in bytes/s; [period_ns]
    the fleet checkpoint period the TDM windows divide. *)

val register : t -> name:string -> ?weight:int -> unit -> tenant
(** Add a tenant with the given scheduling weight (default 1).  Window
    offsets and widths are recomputed over all registered tenants:
    tenant [i]'s window is [period * w_i / sum_w] wide, placed after the
    windows of the tenants registered before it. *)

val tenant_name : tenant -> string
val window : t -> tenant -> int * int
(** [(offset, width)] of the tenant's flush window within the period. *)

val submit : t -> tenant -> now:int -> bytes:int -> int
(** Occupy the shared lane for [bytes] at the lane bandwidth; returns the
    grant's completion time.  Queue wait (start - now) is billed to this
    tenant and no other. *)

val admit : t -> tenant -> now:int -> est_bytes:int -> decision
(** Admission control for an epoch expected to flush [est_bytes]: fits
    the remaining budget of the tenant's current window -> [Admit]; fits
    a full window -> [Delay] until the next window opens; larger than
    the window itself -> [Reject]. *)

val note_delayed : t -> tenant -> unit
val note_rejected : t -> tenant -> unit

(** {1 Attribution} *)

type tenant_stats = {
  ts_name : string;
  ts_weight : int;
  ts_grants : int;
  ts_bytes : int;
  ts_busy_ns : int;  (** lane service time consumed by this tenant *)
  ts_wait_ns : int;  (** lane queueing delay suffered by this tenant *)
  ts_delayed : int;  (** epochs pushed to a later window by admission *)
  ts_rejected : int;  (** epochs refused outright *)
}

val stats : t -> tenant -> tenant_stats
val all_stats : t -> tenant_stats list

val lane_busy_ns : t -> int
(** Total service time the lane has granted. *)

val accounting_ok : t -> bool
(** The per-tenant attribution identity: the tenants' [ts_busy_ns] sum to
    exactly {!lane_busy_ns} (no lane time is billed twice or dropped). *)
