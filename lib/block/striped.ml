module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost
module Resource = Aurora_sim.Resource
module Otrace = Aurora_obs.Trace

type t = { devs : Device.t array; stripe : int }

let create ?(devices = Cost.nvme_stripe_devices) ?(stripe = Cost.nvme_stripe_size)
    () =
  assert (devices > 0 && stripe > 0);
  let devs =
    Array.init devices (fun i -> Device.create ~name:(Printf.sprintf "nvme%d" i))
  in
  { devs; stripe }

(* Split [off, off+len) into per-device fragments on stripe boundaries and
   apply [f dev dev_off frag_off frag_len] to each. *)
let iter_fragments t ~off ~len f =
  let n = Array.length t.devs in
  let pos = ref off in
  let remaining = ref len in
  while !remaining > 0 do
    let stripe_idx = !pos / t.stripe in
    let within = !pos mod t.stripe in
    let frag_len = min !remaining (t.stripe - within) in
    let dev = t.devs.(stripe_idx mod n) in
    (* The device-local offset places consecutive stripes of this device
       contiguously, as a RAID-0 layout does. *)
    let dev_off = ((stripe_idx / n) * t.stripe) + within in
    f dev dev_off (!pos - off) frag_len;
    pos := !pos + frag_len;
    remaining := !remaining - frag_len
  done

(* A fragment of a [charge]-sized logical extent carries whatever slice of
   the (possibly shorter) payload overlaps it; devices are charged for the
   full logical fragment. *)
let payload_slice data frag_off frag_len =
  let avail = Bytes.length data - frag_off in
  if avail <= 0 then Bytes.empty else Bytes.sub data frag_off (min avail frag_len)

let write ?charge t ~now ~off data =
  let len = max (Bytes.length data) (match charge with Some c -> c | None -> 0) in
  let completion = ref now in
  iter_fragments t ~off ~len (fun dev dev_off frag_off frag_len ->
      let frag = payload_slice data frag_off frag_len in
      let c = Device.write ~charge:frag_len dev ~now ~off:dev_off frag in
      if c > !completion then completion := c);
  !completion

(* Vectored extent write: one queued submission per member device for the
   whole logical range [off, off+len).  In the RAID-0 layout consecutive
   stripes of one device are device-contiguous, so any extent maps to at
   most one contiguous range per device — a 40 MiB extent costs 4 device
   submissions, not 10k block writes. *)
let write_vec t ~now ~off ~len segments =
  if len <= 0 then now
  else begin
    if Otrace.is_on () then
      Otrace.instant ~cat:"blk" "write_vec"
        ~args:
          [
            ("off", Otrace.Int off);
            ("len", Otrace.Int len);
            ("segments", Otrace.Int (Array.length segments));
          ];
    let n = Array.length t.devs in
    (* The flush pipeline hands us segments already in ascending order;
       only sort (on a copy) when a caller didn't. *)
    let sorted = ref true in
    Array.iteri
      (fun i (o, _) -> if i > 0 && fst segments.(i - 1) > o then sorted := false)
      segments;
    let segs =
      if !sorted then segments
      else begin
        let c = Array.copy segments in
        Array.sort (fun (a, _) (b, _) -> compare a b) c;
        c
      end
    in
    let dstart = Array.make n (-1) in
    let dend = Array.make n 0 in
    let dsegs = Array.make n [] in
    let cursor = ref 0 in
    let pos = ref off and remaining = ref len in
    while !remaining > 0 do
      let stripe_idx = !pos / t.stripe in
      let within = !pos mod t.stripe in
      let frag_len = min !remaining (t.stripe - within) in
      let d = stripe_idx mod n in
      let dev_off = ((stripe_idx / n) * t.stripe) + within in
      let frag_off = !pos - off in
      let frag_end = frag_off + frag_len in
      if dstart.(d) < 0 then dstart.(d) <- dev_off;
      dend.(d) <- dev_off + frag_len;
      (* Fragments and segments are both walked in ascending order: slice
         every segment overlapping this fragment, advancing the shared
         cursor past fully consumed ones. *)
      let c = ref !cursor in
      let scanning = ref true in
      while !scanning && !c < Array.length segs do
        let rel, data = segs.(!c) in
        let seg_end = rel + Bytes.length data in
        if seg_end <= frag_off then begin
          incr c;
          cursor := !c
        end
        else if rel >= frag_end then scanning := false
        else begin
          let s = max rel frag_off and e = min seg_end frag_end in
          if e > s then
            dsegs.(d) <-
              (dev_off + (s - frag_off), Bytes.sub data (s - rel) (e - s))
              :: dsegs.(d);
          if seg_end <= frag_end then begin
            incr c;
            cursor := !c
          end
          else scanning := false
        end
      done;
      pos := !pos + frag_len;
      remaining := !remaining - frag_len
    done;
    let completion = ref now in
    for d = 0 to n - 1 do
      if dstart.(d) >= 0 then begin
        let doff = dstart.(d) in
        let dlen = dend.(d) - doff in
        let local = List.rev_map (fun (o, b) -> (o - doff, b)) dsegs.(d) in
        let c = Device.submit_extent t.devs.(d) ~now ~off:doff ~len:dlen local in
        if c > !completion then completion := c
      end
    done;
    !completion
  end

(* Priority-lane write (see Device.write_priority): fragments share the
   caller-supplied completion. *)
let write_priority t ~now ~off data ~completion =
  iter_fragments t ~off ~len:(Bytes.length data) (fun dev dev_off frag_off frag_len ->
      let frag = payload_slice data frag_off frag_len in
      ignore (Device.write_priority dev ~now ~off:dev_off frag ~completion));
  completion

let write_sync ?charge t ~clock ~off data =
  let len = max (Bytes.length data) (match charge with Some c -> c | None -> 0) in
  iter_fragments t ~off ~len (fun dev dev_off frag_off frag_len ->
      let frag = payload_slice data frag_off frag_len in
      Device.write_sync ~charge:frag_len dev ~clock ~off:dev_off frag)

let read t ~clock ~off ~len =
  let out = Bytes.make len '\000' in
  iter_fragments t ~off ~len (fun dev dev_off frag_off frag_len ->
      let frag = Device.read dev ~clock ~off:dev_off ~len:frag_len in
      Bytes.blit frag 0 out frag_off frag_len);
  out

let read_nocharge t ~off ~len =
  let out = Bytes.make len '\000' in
  iter_fragments t ~off ~len (fun dev dev_off frag_off frag_len ->
      let frag = Device.read_nocharge dev ~off:dev_off ~len:frag_len in
      Bytes.blit frag 0 out frag_off frag_len);
  out

let charge_read t ~clock ~bytes =
  if bytes > 0 then begin
    let n = Array.length t.devs in
    let per_dev = (bytes + n - 1) / n in
    let duration =
      Cost.nvme_read_latency
      + Cost.transfer_time ~bandwidth:Cost.nvme_device_bandwidth per_dev
    in
    let now = Clock.now clock in
    let completion =
      Array.fold_left
        (fun acc d -> max acc (Device.charge_read_raw d ~now ~duration))
        now t.devs
    in
    Clock.advance_to clock completion
  end

let settle t ~clock = Array.iter (fun d -> Device.settle d ~clock) t.devs

let durable_until t =
  Array.fold_left (fun acc d -> max acc (Device.durable_until d)) 0 t.devs

let apply_durable t ~now = Array.iter (fun d -> Device.apply_durable d ~now) t.devs
let crash t ~now = Array.iter (fun d -> Device.crash d ~now) t.devs

(* One handler shared by every member device: the submission counter is
   global, so an index names a boundary of the whole array. *)
let set_fault t f = Array.iter (fun d -> Device.set_fault d f) t.devs
let fault t = Device.fault t.devs.(0)

(* One (arbiter, tenant) pair shared by every member device: each
   fragment's bytes occupy the shared lane, so an extent spanning the
   array charges the lane exactly once per byte. *)
let set_arbiter t a = Array.iter (fun d -> Device.set_arbiter d a) t.devs

let image_magic = "AURIMAGE"

let save_file t ~clock path =
  settle t ~clock;
  let oc = open_out_bin path in
  output_string oc image_magic;
  output_binary_int oc (Array.length t.devs);
  output_binary_int oc t.stripe;
  (* The virtual clock continues across invocations, like wall time. *)
  output_string oc (Printf.sprintf "%020d" (Clock.now clock));
  Array.iter
    (fun d ->
      let sectors = Device.export_sectors d in
      output_binary_int oc (List.length sectors);
      List.iter
        (fun (idx, sector) ->
          output_binary_int oc idx;
          output_binary_int oc (Bytes.length sector);
          output_bytes oc sector)
        sectors)
    t.devs;
  close_out oc

let load_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let magic = really_input_string ic (String.length image_magic) in
      if magic <> image_magic then failwith "Striped.load_file: not a machine image";
      let devices = input_binary_int ic in
      let stripe = input_binary_int ic in
      let saved_time = int_of_string (really_input_string ic 20) in
      let t = create ~devices ~stripe () in
      Array.iter
        (fun d ->
          let n = input_binary_int ic in
          let sectors =
            List.init n (fun _ ->
                let idx = input_binary_int ic in
                let len = input_binary_int ic in
                let sector = Bytes.create len in
                really_input ic sector 0 len;
                (idx, sector))
          in
          Device.import_sectors d sectors)
        t.devs;
      (t, saved_time))

let sum f t = Array.fold_left (fun acc d -> acc + f d) 0 t.devs
let bytes_written t = sum Device.bytes_written t
let bytes_read t = sum Device.bytes_read t
let write_ops t = sum Device.write_ops t
let reset_stats t = Array.iter Device.reset_stats t.devs
