module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost
module Resource = Aurora_sim.Resource
module Otrace = Aurora_obs.Trace
module Ometrics = Aurora_obs.Metrics

let sector_size = 4096

let m_dev_submissions = Ometrics.counter "dev.submissions"
let m_dev_bytes = Ometrics.counter "dev.bytes_written"
let h_dev_qwait = Ometrics.histogram "dev.queue_wait_ns"
let h_dev_service = Ometrics.histogram "dev.service_ns"


type pending = { completion : int; off : int; data : bytes }

type t = {
  dev_name : string;
  queue : Resource.t;
  committed : (int, bytes) Hashtbl.t; (* sector index -> sector bytes *)
  mutable inflight : pending list; (* newest first *)
  mutable written : int;
  mutable read_bytes : int;
  mutable ops : int;
  mutable fault : Fault.t option;
  mutable arb : (Arbiter.t * Arbiter.tenant) option;
}

let create ~name =
  {
    dev_name = name;
    queue = Resource.create ~name;
    committed = Hashtbl.create 4096;
    inflight = [];
    written = 0;
    read_bytes = 0;
    ops = 0;
    fault = None;
    arb = None;
  }

let name t = t.dev_name
let set_fault t f = t.fault <- f
let fault t = t.fault
let set_arbiter t a = t.arb <- a

(* With a fleet arbiter installed, every write additionally occupies the
   shared flush lane for its bytes at the array's aggregate bandwidth;
   the grant's completion lower-bounds this write's completion, and the
   lane wait is billed to the submitting tenant — not to whichever group
   happens to trace the next submission. *)
let arbitrate t ~now ~bytes ~completion =
  match t.arb with
  | None -> completion
  | Some (arb, tn) -> Stdlib.max completion (Arbiter.submit arb tn ~now ~bytes)

(* One explicit-timestamp trace event per write submission, split into
   queue wait and service.  [qwait] is this submission's own queueing
   delay ([Resource.submit_timed]'s start - now), so an interleaved
   group's backlog is never billed to another group's span.  Off the
   instrumented path this is a single branch. *)
let trace_submit t ~now ~qwait ~completion ~off ~len ~segments ~kind =
  if Otrace.is_on () || Ometrics.is_enabled () then begin
    let service = completion - now - qwait in
    Ometrics.incr m_dev_submissions;
    Ometrics.incr ~by:len m_dev_bytes;
    Ometrics.observe_ns h_dev_qwait qwait;
    Ometrics.observe_ns h_dev_service service;
    let args =
      [
        ("dev", Otrace.Str t.dev_name);
        ("off", Otrace.Int off);
        ("len", Otrace.Int len);
        ("segments", Otrace.Int segments);
        ("qwait", Otrace.Int qwait);
        ("service", Otrace.Int service);
      ]
    in
    let args =
      match t.arb with
      | None -> args
      | Some (_, tn) -> args @ [ ("tenant", Otrace.Str (Arbiter.tenant_name tn)) ]
    in
    Otrace.complete ~ts:now ~dur:(completion - now) ~cat:"dev" kind ~args
  end

(* Apply a byte-range write onto the sector map.  Sectors store only
   their materialized prefix (the suffix is implicitly zero), so a store
   full of short stand-in payloads doesn't pin sector_size bytes of
   zeros per page — that padding dominated the heap, and with it the
   GC cost of large simulated working sets. *)
let apply_committed t ~off data =
  let len = Bytes.length data in
  let first = off / sector_size and last = (off + len - 1) / sector_size in
  for s = first to last do
    let sector_off = s * sector_size in
    let copy_start = max off sector_off in
    let copy_end = min (off + len) (sector_off + sector_size) in
    let need = copy_end - sector_off in
    let sector =
      match Hashtbl.find_opt t.committed s with
      | Some b when Bytes.length b >= need -> b
      | Some b ->
          let nb = Bytes.make need '\000' in
          Bytes.blit b 0 nb 0 (Bytes.length b);
          Hashtbl.replace t.committed s nb;
          nb
      | None ->
          let nb = Bytes.make need '\000' in
          Hashtbl.replace t.committed s nb;
          nb
    in
    Bytes.blit data (copy_start - off) sector (copy_start - sector_off)
      (copy_end - copy_start)
  done

(* The device queue is occupied for the transfer only; each I/O's
   completion additionally trails by the device latency.  A lone 4 KiB
   write therefore costs latency + transfer, while a deep queue of writes
   streams at full bandwidth — as a real NVMe pipeline does. *)
(* Ask the installed fault handler (if any) what this submission's fate
   is; may raise Fault.Crash_point to stop the run at this boundary. *)
let consult_fault t ~now ~off ~len ~segments =
  match t.fault with
  | None -> (Fault.Land, None)
  | Some f ->
      let outcome, info =
        Fault.write_outcome f ~dev:t.dev_name ~now ~off ~len ~segments
      in
      (outcome, Some (f, info))

let report_completion faulted ~completion =
  match faulted with
  | None -> ()
  | Some (f, info) -> Fault.write_complete f info ~completion

(* Land a plain write under the fault outcome.  The caller always sees the
   acknowledged completion; what reaches media — and when it becomes
   durable — is the outcome's business. *)
let land_write t ~outcome ~completion ~off data =
  match outcome with
  | Fault.Drop -> ()
  | Fault.Torn nsectors ->
      let keep = min (Bytes.length data) (nsectors * sector_size) in
      if keep > 0 then
        t.inflight <- { completion; off; data = Bytes.sub data 0 keep } :: t.inflight
  | Fault.Delay d ->
      t.inflight <- { completion = completion + d; off; data = Bytes.copy data } :: t.inflight
  | Fault.Land ->
      t.inflight <- { completion; off; data = Bytes.copy data } :: t.inflight

let submit_write ?charge t ~now ~off data ~latency =
  let len = Bytes.length data in
  let charged = match charge with Some c -> c | None -> len in
  let outcome, faulted = consult_fault t ~now ~off ~len:charged ~segments:1 in
  let transfer = Cost.transfer_time ~bandwidth:Cost.nvme_device_bandwidth charged in
  let start, qcomp = Resource.submit_timed t.queue ~now ~duration:transfer in
  let completion = arbitrate t ~now ~bytes:charged ~completion:(qcomp + latency) in
  land_write t ~outcome ~completion ~off data;
  t.written <- t.written + charged;
  t.ops <- t.ops + 1;
  trace_submit t ~now ~qwait:(start - now) ~completion ~off ~len:charged ~segments:1
    ~kind:"write";
  report_completion faulted ~completion;
  completion

let write ?charge t ~now ~off data =
  submit_write ?charge t ~now ~off data ~latency:Cost.nvme_write_latency

(* One vectored submission covering the device range [off, off+len):
   the queue is occupied for the whole transfer once and a single write
   latency trails it, so a coalesced extent of n blocks costs one latency
   instead of n.  Each segment carries its payload at [off + rel]; the
   device takes ownership of the payload bytes (callers pass fresh
   slices), so the hot path does one copy, not two. *)
let submit_extent t ~now ~off ~len segments =
  let outcome, faulted =
    consult_fault t ~now ~off ~len ~segments:(List.length segments)
  in
  let transfer = Cost.transfer_time ~bandwidth:Cost.nvme_device_bandwidth len in
  let start, qcomp = Resource.submit_timed t.queue ~now ~duration:transfer in
  let completion =
    arbitrate t ~now ~bytes:len ~completion:(qcomp + Cost.nvme_write_latency)
  in
  let land_segs completion segments =
    List.iter
      (fun (rel, data) ->
        if Bytes.length data > 0 then
          t.inflight <- { completion; off = off + rel; data } :: t.inflight)
      segments
  in
  (match outcome with
  | Fault.Land -> land_segs completion segments
  | Fault.Drop -> ()
  | Fault.Torn n -> land_segs completion (List.filteri (fun i _ -> i < n) segments)
  | Fault.Delay d -> land_segs (completion + d) segments);
  t.written <- t.written + len;
  t.ops <- t.ops + 1;
  trace_submit t ~now ~qwait:(start - now) ~completion ~off ~len
    ~segments:(List.length segments) ~kind:"extent";
  report_completion faulted ~completion;
  completion

(* Priority-lane write: occupies the shared queue for the transfer (the
   bytes still consume device bandwidth) but completes — and becomes
   durable — at the caller-supplied [completion] from the priority lane's
   own arbitration.  The synchronous journal append path uses this so a
   record acknowledged at its sync completion really is durable then,
   rather than whenever the background flush queue drains. *)
let write_priority t ~now ~off data ~completion =
  let len = Bytes.length data in
  let outcome, faulted = consult_fault t ~now ~off ~len ~segments:1 in
  let transfer = Cost.transfer_time ~bandwidth:Cost.nvme_device_bandwidth len in
  ignore (Resource.submit t.queue ~now ~duration:transfer);
  land_write t ~outcome ~completion ~off data;
  t.written <- t.written + len;
  t.ops <- t.ops + 1;
  (* The priority lane completes at its own arbitration, not when the
     shared queue drains: its whole [now, completion) window is service.
     Deriving a wait from the shared queue's busy_until here billed
     another consumer's backlog to this submission's span — under
     interleaved groups, another tenant's. *)
  trace_submit t ~now ~qwait:0 ~completion ~off ~len ~segments:1 ~kind:"priority";
  report_completion faulted ~completion;
  completion

let write_sync ?charge t ~clock ~off data =
  let completion =
    submit_write ?charge t ~now:(Clock.now clock) ~off data
      ~latency:Cost.nvme_sync_write_latency
  in
  Clock.advance_to clock completion

(* Fold inflight writes whose completion is at or before [now] into the
   committed store.  Inflight is newest-first, so replay oldest-first to keep
   last-writer-wins semantics. *)
let commit_until t now =
  let durable, pending =
    List.partition (fun p -> p.completion <= now) t.inflight
  in
  List.iter (fun p -> apply_committed t ~off:p.off p.data) (List.rev durable);
  t.inflight <- pending

let read_committed t ~off ~len =
  let out = Bytes.make len '\000' in
  let first = off / sector_size and last = (off + len - 1) / sector_size in
  for s = first to last do
    match Hashtbl.find_opt t.committed s with
    | None -> ()
    | Some sector ->
        let sector_off = s * sector_size in
        let copy_start = max off sector_off in
        let copy_end = min (off + len) (sector_off + Bytes.length sector) in
        if copy_end > copy_start then
          Bytes.blit sector (copy_start - sector_off) out (copy_start - off)
            (copy_end - copy_start)
  done;
  out

(* Newest-data read: committed state overlaid with inflight writes in
   submission order. *)
let read_nocharge t ~off ~len =
  let out = read_committed t ~off ~len in
  let overlay p =
    let p_end = p.off + Bytes.length p.data in
    let copy_start = max off p.off and copy_end = min (off + len) p_end in
    if copy_start < copy_end then
      Bytes.blit p.data (copy_start - p.off) out (copy_start - off)
        (copy_end - copy_start)
  in
  List.iter overlay (List.rev t.inflight);
  out

let charge_read_raw t ~now ~duration = Resource.submit t.queue ~now ~duration

let read t ~clock ~off ~len =
  let transfer = Cost.transfer_time ~bandwidth:Cost.nvme_device_bandwidth len in
  let now = Clock.now clock in
  let start, qcomp = Resource.submit_timed t.queue ~now ~duration:transfer in
  let completion = qcomp + Cost.nvme_read_latency in
  if Otrace.is_on () then
    Otrace.complete ~ts:now ~dur:(completion - now) ~cat:"dev" "read"
      ~args:
        [
          ("dev", Otrace.Str t.dev_name);
          ("off", Otrace.Int off);
          ("len", Otrace.Int len);
          ("qwait", Otrace.Int (start - now));
        ];
  Clock.advance_to clock completion;
  t.read_bytes <- t.read_bytes + len;
  match t.fault with
  | None -> read_nocharge t ~off ~len
  | Some f -> (
      (* The attempt's device time is charged above whatever the outcome:
         a failed or corrupted read still occupied the queue. *)
      match Fault.read_outcome f ~dev:t.dev_name ~now:(Clock.now clock) ~off ~len with
      | Fault.Clean -> read_nocharge t ~off ~len
      | Fault.Fail ->
          raise
            (Fault.Io_error
               (Printf.sprintf "%s: transient read error at %d+%d" t.dev_name off len))
      | Fault.Flip offs ->
          let out = read_nocharge t ~off ~len in
          List.iter
            (fun o ->
              if o >= 0 && o < len then
                Bytes.set out o (Char.chr (Char.code (Bytes.get out o) lxor 0x40)))
            offs;
          out)

let durable_until t =
  List.fold_left (fun acc p -> max acc p.completion) 0 t.inflight

let settle t ~clock =
  Clock.advance_to clock (durable_until t);
  commit_until t (Clock.now clock)

let apply_durable t ~now = commit_until t now

let reset_stats t =
  t.written <- 0;
  t.read_bytes <- 0;
  t.ops <- 0

let crash t ~now =
  commit_until t now;
  t.inflight <- [];
  Resource.reset t.queue;
  (* The machine is rebooting: host-side counters restart with it, and with
     the in-flight list empty durable_until is 0 again — a fresh submission
     on the recovered device starts from a consistent baseline instead of
     inheriting the dead run's accounting. *)
  reset_stats t

let export_sectors t =
  Hashtbl.fold (fun idx sector acc -> (idx, Bytes.copy sector) :: acc) t.committed []
  |> List.sort compare

let import_sectors t sectors =
  (* Importing an image replaces the device's state wholesale: dropping
     stale committed sectors, queued writes and counters makes the call
     safe on a used device, not only on a freshly created one. *)
  Hashtbl.reset t.committed;
  t.inflight <- [];
  Resource.reset t.queue;
  reset_stats t;
  List.iter (fun (idx, sector) -> Hashtbl.replace t.committed idx (Bytes.copy sector)) sectors

let bytes_written t = t.written
let bytes_read t = t.read_bytes
let write_ops t = t.ops
