(** A striped array of devices (RAID-0), as in the paper's testbed: four
    Optane 900P namespaces striped at 64 KiB.

    Writes are split on stripe boundaries and submitted to the member
    devices' independent queues, so a large sequential write approaches the
    aggregate bandwidth of the array while a 4 KiB write pays a single
    device's latency. *)

type t

val create : ?devices:int -> ?stripe:int -> unit -> t
(** Defaults come from {!Cost.nvme_stripe_devices} and
    {!Cost.nvme_stripe_size}. *)

val write : ?charge:int -> t -> now:int -> off:int -> bytes -> int
(** Submit a write; returns the completion time of its last fragment.
    [?charge] gives the logical length used both for stripe fragmentation
    and timing when it exceeds the payload length (see {!Device.write}). *)

val write_vec : t -> now:int -> off:int -> len:int -> (int * bytes) array -> int
(** [write_vec t ~now ~off ~len segments] submits one coalesced extent
    covering the logical range [[off, off+len)] as a single vectored
    submission per member device ({!Device.submit_extent}), returning the
    completion time of the last fragment.  [segments] are
    [(extent-relative offset, payload)] pairs, ideally in ascending offset
    order (unsorted input is sorted on a copy); gaps between payloads are
    charged (they stand for the logical remainder of partially materialized
    blocks) but carry no data.  The checkpoint flush pipeline uses this to
    turn an epoch's dirty pages into a handful of stripe-spanning
    sequential writes. *)

val write_sync : ?charge:int -> t -> clock:Aurora_sim.Clock.t -> off:int -> bytes -> unit

val write_priority : t -> now:int -> off:int -> bytes -> completion:int -> int
(** Priority-lane write ({!Device.write_priority}): all fragments become
    durable at the caller-supplied [completion], which is also returned. *)

val read : t -> clock:Aurora_sim.Clock.t -> off:int -> len:int -> bytes
val read_nocharge : t -> off:int -> len:int -> bytes

val set_fault : t -> Fault.t option -> unit
(** Install one fault handler on every member device.  The handler's
    submission counter is shared, so a submission index identifies a global
    device-submission boundary of the array. *)

val fault : t -> Fault.t option

val set_arbiter : t -> (Arbiter.t * Arbiter.tenant) option -> unit
(** Install one shared flush-bandwidth arbiter lane on every member
    device ({!Device.set_arbiter}); fragment writes each charge the lane
    for their own bytes, so a striped extent consumes lane bandwidth
    exactly once. *)

val charge_read : t -> clock:Aurora_sim.Clock.t -> bytes:int -> unit
(** Charge a bulk streamed read of [bytes], spread across the member
    devices (deep-queue sequential read); advances the clock to its
    completion.  Used by bulk restore paths that fetch many small blocks
    with high queue depth, where per-block latency amortizes away. *)

val settle : t -> clock:Aurora_sim.Clock.t -> unit
val durable_until : t -> int
val apply_durable : t -> now:int -> unit
val crash : t -> now:int -> unit

val save_file : t -> clock:Aurora_sim.Clock.t -> string -> unit
(** Settle the queues, then write the array's durable image (all member
    devices' committed sectors plus the virtual-time high-water mark) to
    a host file. *)

val load_file : string -> t * int
(** Rebuild an array from a host image file; returns it with the saved
    virtual time (to resume the clock from).  Raises [Sys_error] or
    [Failure] on a missing or corrupt image. *)

val bytes_written : t -> int
val bytes_read : t -> int
val write_ops : t -> int
val reset_stats : t -> unit
