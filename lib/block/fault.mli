(** First-class fault injection for the block layer.

    A fault handler installed on a device ({!Device.set_fault}) or a whole
    striped array ({!Striped.set_fault}) is consulted at every device
    submission and every charged read.  The handler decides what actually
    reaches the media — the caller's timing, statistics and acknowledgement
    are unchanged, exactly like a device that lies about persistence.

    All submissions across the devices sharing one handler draw from a
    single monotonically increasing submission counter, so an index
    identifies a global device-submission boundary; the crash-point
    enumerator ({!module:Aurora_faultsim.Torture}) replays a workload and
    stops it at each boundary by raising {!Crash_point} from [on_write]. *)

exception Io_error of string
(** Transient I/O failure surfaced to the reader.  The object store's read
    path retries with backoff (see {!Aurora_objstore.Store.set_read_policy}). *)

exception Crash_point of { index : int; now : int }
(** Raised by an [on_write] hook to stop a run at a submission boundary.
    Never raised by the block layer itself. *)

type write_outcome =
  | Land  (** the write reaches media normally *)
  | Drop  (** acknowledged but never reaches media *)
  | Torn of int
      (** partial landing: for a vectored extent, only the first [n]
          segments (in device order) land; for a plain write, only the
          first [n] sectors' worth of bytes land *)
  | Delay of int
      (** completion postponed by [ns]: the write becomes durable after
          later submissions, reordering inside the non-durable window *)

type read_outcome =
  | Clean
  | Flip of int list
      (** corrupt the returned data by flipping one bit (xor 0x40) at each
          listed byte offset within the read *)
  | Fail  (** raise {!Io_error} after charging the attempt's device time *)

type write_info = {
  w_dev : string;  (** device name *)
  w_index : int;  (** global submission index, 1-based *)
  w_now : int;  (** submission time *)
  w_off : int;  (** device offset *)
  w_len : int;  (** logical length charged *)
  w_segments : int;  (** segment count (1 for plain writes) *)
}

type read_info = { r_dev : string; r_now : int; r_off : int; r_len : int }

type t = {
  mutable on_write : write_info -> write_outcome;
  mutable on_complete : write_info -> completion:int -> unit;
      (** called after the submission is queued, with its completion time;
          recorders use it to build the crash-point timeline *)
  mutable on_read : read_info -> read_outcome;
  mutable submissions : int;
}

val create : unit -> t
(** A pass-through handler (every hook defaults to no-op). *)

val submissions : t -> int
(** Submissions observed so far. *)

(** {1 Device-side entry points} (called by {!Device}; not for injector use) *)

val write_outcome :
  t -> dev:string -> now:int -> off:int -> len:int -> segments:int ->
  write_outcome * write_info

val write_complete : t -> write_info -> completion:int -> unit
val read_outcome : t -> dev:string -> now:int -> off:int -> len:int -> read_outcome
