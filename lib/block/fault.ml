exception Io_error of string
exception Crash_point of { index : int; now : int }

type write_outcome =
  | Land
  | Drop
  | Torn of int
  | Delay of int

type read_outcome =
  | Clean
  | Flip of int list
  | Fail

type write_info = {
  w_dev : string;
  w_index : int;
  w_now : int;
  w_off : int;
  w_len : int;
  w_segments : int;
}

type read_info = { r_dev : string; r_now : int; r_off : int; r_len : int }

type t = {
  mutable on_write : write_info -> write_outcome;
  mutable on_complete : write_info -> completion:int -> unit;
  mutable on_read : read_info -> read_outcome;
  mutable submissions : int;
}

let create () =
  {
    on_write = (fun _ -> Land);
    on_complete = (fun _ ~completion:_ -> ());
    on_read = (fun _ -> Clean);
    submissions = 0;
  }

let submissions t = t.submissions

(* Device-side entry points ------------------------------------------------- *)

let write_outcome t ~dev ~now ~off ~len ~segments =
  t.submissions <- t.submissions + 1;
  let info =
    {
      w_dev = dev;
      w_index = t.submissions;
      w_now = now;
      w_off = off;
      w_len = len;
      w_segments = segments;
    }
  in
  (t.on_write info, info)

let write_complete t info ~completion = t.on_complete info ~completion

let read_outcome t ~dev ~now ~off ~len =
  t.on_read { r_dev = dev; r_now = now; r_off = off; r_len = len }
