(** A simulated NVMe namespace.

    The device stores real bytes (so recovery tests can verify durability
    bit-for-bit) behind a queued timing model.  Writes are submitted to the
    device's queue and become durable at their completion time; a simulated
    power failure ({!crash}) discards every write whose completion time is
    still in the future, exactly like losing a volatile device queue.

    Reads return the newest submitted data (the device services reads from
    its internal buffers), but durability is decided strictly by completion
    times. *)

type t

val create : name:string -> t

val name : t -> string

(** {1 Fault injection} *)

val set_fault : t -> Fault.t option -> unit
(** Install (or clear) a fault handler consulted at every submission and
    every charged read; see {!Fault}. *)

val fault : t -> Fault.t option

(** {1 Fleet arbitration} *)

val set_arbiter : t -> (Arbiter.t * Arbiter.tenant) option -> unit
(** Route this device's writes through a shared flush-bandwidth arbiter,
    billed to the given tenant.  Every write then also occupies the
    arbiter's lane for its bytes, and its completion is the later of the
    device-queue completion and the lane grant.  Reads and the priority
    lane (synchronous journal appends) bypass arbitration.  With no
    arbiter installed the device behaves exactly as before. *)

(** {1 Data path} *)

val write : ?charge:int -> t -> now:int -> off:int -> bytes -> int
(** [write t ~now ~off data] submits a write and returns its completion
    time.  The caller chooses whether to wait (synchronous) or not.

    [?charge] is the logical transfer size used for timing when it differs
    from [Bytes.length data]; the object store uses it because pages carry a
    64-byte payload standing in for a logical 4 KiB of data (see
    DESIGN.md).  Defaults to the data length. *)

val write_sync : ?charge:int -> t -> clock:Aurora_sim.Clock.t -> off:int -> bytes -> unit
(** Submit with the flush-included synchronous latency and advance the clock
    to completion. *)

val submit_extent : t -> now:int -> off:int -> len:int -> (int * bytes) list -> int
(** [submit_extent t ~now ~off ~len segments] submits one vectored write
    covering the device range [[off, off+len)]: the queue is charged for
    one [len]-byte transfer plus a single write latency, and every
    [(rel, payload)] segment lands at [off + rel] with that shared
    completion time.  The device takes ownership of the payload bytes —
    callers must pass freshly allocated slices (as {!Striped.write_vec}
    does) and not mutate them afterwards.  Counts as one device
    operation.  This is the unit the coalesced checkpoint flush pipeline
    submits per device per extent. *)

val write_priority : t -> now:int -> off:int -> bytes -> completion:int -> int
(** [write_priority t ~now ~off data ~completion] submits through the
    priority lane: the shared queue is occupied for the transfer (bandwidth
    accounting) but the write completes — and becomes durable — at the
    caller-supplied [completion].  The synchronous journal append path uses
    this so its acknowledgement time and durability time coincide. *)

val read : t -> clock:Aurora_sim.Clock.t -> off:int -> len:int -> bytes
(** Read [len] bytes at [off], charging read latency + transfer time.
    Unwritten ranges read as zeroes, as on a trimmed flash namespace.
    With a fault handler installed this may raise {!Fault.Io_error} or
    return deliberately corrupted bytes; the device time is charged either
    way. *)

val read_nocharge : t -> off:int -> len:int -> bytes
(** Read without charging time; used by integrity checks in tests. *)

val charge_read_raw : t -> now:int -> duration:int -> int
(** Occupy the device queue for a read of the given duration without
    transferring data; returns the completion time ({!Striped.charge_read}
    uses this for bulk streamed reads). *)

(** {1 Durability} *)

val settle : t -> clock:Aurora_sim.Clock.t -> unit
(** Advance the clock until the device queue is drained and make all
    submitted writes durable. *)

val durable_until : t -> int
(** Completion time of the last submitted write (0 if none). *)

val apply_durable : t -> now:int -> unit
(** Fold writes whose completion is at or before [now] into the committed
    store without touching the queue; keeps the in-flight list short on
    long runs.  Durability semantics are unchanged. *)

val crash : t -> now:int -> unit
(** Power failure at virtual time [now]: writes with completion <= [now]
    are durable, all others vanish.  The queue resets, {!durable_until}
    returns 0 again, and the accounting counters restart — the rebooted
    machine's measurements start from a consistent baseline. *)

(** {1 Host-file persistence}

    A device's durable (committed) bytes can be exported and re-imported,
    which lets a whole simulated machine image live in a host file across
    tool invocations.  Only committed state is exported: the caller
    settles the queue first, exactly like powering a machine down
    cleanly. *)

val export_sectors : t -> (int * bytes) list
(** [(sector index, 4 KiB sector)] of every committed sector. *)

val import_sectors : t -> (int * bytes) list -> unit
(** Replace the device's state with the given committed sectors.  Existing
    committed sectors, queued writes and statistics are discarded first, so
    the call is consistent on a used device as well as a fresh one. *)

(** {1 Accounting} *)

val bytes_written : t -> int
(** Logical bytes written: the [?charge] size when given. *)


val bytes_read : t -> int
val write_ops : t -> int
val reset_stats : t -> unit
